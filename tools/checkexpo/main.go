// Command checkexpo validates OpenMetrics text exposition — the format
// the live monitoring endpoint serves on /metrics. It reads a file (or
// stdin with "-"), runs the same structural validator the live package's
// tests use, and reports the sample count; any malformed family, sample
// line, or missing # EOF terminator is a non-zero exit. CI curls a
// running sweep's /metrics through it.
//
// Usage:
//
//	checkexpo metrics.txt
//	curl -s localhost:9090/metrics | go run ./tools/checkexpo -
package main

import (
	"fmt"
	"io"
	"os"

	"rocc/internal/obs/live"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checkexpo <file|->")
		os.Exit(2)
	}
	var r io.Reader
	name := os.Args[1]
	if name == "-" {
		r = os.Stdin
		name = "stdin"
	} else {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkexpo:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	n, err := live.ParseExposition(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkexpo: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid OpenMetrics exposition, %d samples\n", name, n)
}
