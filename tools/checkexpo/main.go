// Command checkexpo validates OpenMetrics text exposition — the format
// the live monitoring endpoint serves on /metrics. It reads a file (or
// stdin with "-"), runs the same structural validator the live package's
// tests use, and reports the sample count; any malformed family, sample
// line, or missing # EOF terminator is a non-zero exit. CI curls a
// running sweep's /metrics through it.
//
// With -require, the exposition must additionally declare at least one
// family whose name starts with each given prefix (flag repeats), so CI
// can assert that e.g. the rocc_latency_stage_* provenance families made
// it into a scrape.
//
// Usage:
//
//	checkexpo metrics.txt
//	curl -s localhost:9090/metrics | go run ./tools/checkexpo -
//	checkexpo -require rocc_latency_stage_ metrics.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rocc/internal/obs/live"
)

// prefixList collects repeated -require flags.
type prefixList []string

func (p *prefixList) String() string { return strings.Join(*p, ",") }
func (p *prefixList) Set(s string) error {
	*p = append(*p, s)
	return nil
}

func main() {
	var require prefixList
	flag.Var(&require, "require", "family name prefix that must appear (repeatable)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: checkexpo [-require prefix]... <file|->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var r io.Reader
	name := flag.Arg(0)
	if name == "-" {
		r = os.Stdin
		name = "stdin"
	} else {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkexpo:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	n, families, err := live.ParseExpositionFamilies(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkexpo: %s: %v\n", name, err)
		os.Exit(1)
	}
	for _, prefix := range require {
		found := 0
		for _, f := range families {
			if strings.HasPrefix(f, prefix) {
				found++
			}
		}
		if found == 0 {
			fmt.Fprintf(os.Stderr, "checkexpo: %s: no family with prefix %q (have %d families)\n",
				name, prefix, len(families))
			os.Exit(1)
		}
		fmt.Printf("%s: %d families with prefix %q\n", name, found, prefix)
	}
	fmt.Printf("%s: valid OpenMetrics exposition, %d samples, %d families\n", name, n, len(families))
}
