// Package rocc is the public API of the ROCC (Resource OCCupancy) library,
// a reproduction of "Modeling, Evaluation, and Testing of Paradyn
// Instrumentation System" (Waheed, Rover, Hollingsworth — SC 1996).
//
// It models the data-collection services (the instrumentation system, IS)
// of the Paradyn parallel performance tool: application processes,
// Paradyn daemons that collect samples through bounded pipes and forward
// them under the collect-and-forward (CF) or batch-and-forward (BF)
// policy, and the main Paradyn process — competing for CPUs and the
// interconnect of a NOW, SMP, or MPP system.
//
// Three evaluation routes are exposed:
//
//   - Simulate / SimulateReplications: discrete-event simulation of the
//     ROCC model (Section 4 of the paper).
//   - Analytic: closed-form operational analysis, equations (1)-(16)
//     (Section 3).
//   - Measure: a real mini-IS — instrumented NAS-like kernels forwarding
//     samples over loopback TCP (Section 5).
//
// The experiment harness regenerating every table and figure of the paper
// is available through Experiments / ExperimentByID and the roccbench
// command.
package rocc

import (
	"context"
	"io"

	"rocc/internal/adaptive"
	"rocc/internal/analytic"
	"rocc/internal/consultant"
	"rocc/internal/core"
	"rocc/internal/dist"
	"rocc/internal/experiments"
	"rocc/internal/forward"
	"rocc/internal/par"
	"rocc/internal/scenario"
	"rocc/internal/testbed"
	"rocc/internal/trace"
	"rocc/internal/workload"
	"rocc/internal/xval"
)

// Simulation model configuration and results (see internal/core for the
// field documentation).
type (
	// Config describes one ROCC simulation scenario.
	Config = core.Config
	// Result holds the metrics of one simulation run.
	Result = core.Result
	// Replicated holds results from repeated replications with CIs.
	Replicated = core.Replicated
	// Metric extracts one scalar from a Result.
	Metric = core.Metric
	// Workload is the stochastic workload parameterization (Table 2).
	Workload = core.Workload
	// Arch selects NOW, SMP, or MPP.
	Arch = core.Arch
	// AppType selects compute- vs communication-intensive applications.
	AppType = core.AppType
	// Model is an assembled simulation (exposed for inspection).
	Model = core.Model
)

// Architectures.
const (
	NOW = core.NOW
	SMP = core.SMP
	MPP = core.MPP
)

// Application types (the §4.2.1 factor).
const (
	ComputeIntensive = core.ComputeIntensive
	CommIntensive    = core.CommIntensive
)

// Forwarding policies and configurations.
type (
	// Policy is CF or BF.
	Policy = forward.Policy
	// Forwarding is Direct or Tree.
	Forwarding = forward.Config
)

// Policy and forwarding-configuration values.
const (
	CF     = forward.CF
	BF     = forward.BF
	Direct = forward.Direct
	Tree   = forward.Tree
)

// Pluggable forwarding strategies: the open surface behind Config.Strategy.
// A Strategy decides, at every daemon decision point, whether to forward a
// batch, keep accumulating, or flush, and receives completion feedback per
// forwarded batch (see internal/forward for the contract).
type (
	// ForwardStrategy schedules a daemon's forwarding decisions.
	ForwardStrategy = forward.Strategy
	// ForwardStrategySpec is the parsed form of a -policy spec
	// ("cf", "bf:32", "abf", "abf:1.5").
	ForwardStrategySpec = forward.StrategySpec
	// ForwardFeedback is the completion report fed back per batch.
	ForwardFeedback = forward.Feedback
	// AdaptiveBFConfig parameterizes the adaptive batch-size controller.
	AdaptiveBFConfig = forward.ControllerConfig
	// AdaptiveBF is the feedback-controlled batch-and-forward strategy.
	AdaptiveBF = forward.AdaptiveBFStrategy
)

// NewCFStrategy returns the collect-and-forward strategy (one message per
// sample).
func NewCFStrategy() ForwardStrategy { return forward.NewCF() }

// NewFixedBFStrategy returns batch-and-forward at a fixed batch size.
func NewFixedBFStrategy(batch int) ForwardStrategy { return forward.NewFixedBF(batch) }

// NewAdaptiveBFStrategy returns the adaptive batch-size controller; the
// zero AdaptiveBFConfig selects the scenario-free defaults.
func NewAdaptiveBFStrategy(cfg AdaptiveBFConfig) *AdaptiveBF { return forward.NewAdaptiveBF(cfg) }

// ParsePolicy parses a bare policy name ("cf", "bf").
func ParsePolicy(s string) (Policy, error) { return forward.ParsePolicy(s) }

// ParseForwarding parses a forwarding configuration ("direct", "tree").
func ParseForwarding(s string) (Forwarding, error) { return forward.ParseConfig(s) }

// ParseStrategySpec parses a -policy spec ("cf", "bf", "bf:<n>", "abf",
// "abf:<ms>") with descriptive errors; Spec.NewStrategy materializes it.
func ParseStrategySpec(s string) (ForwardStrategySpec, error) {
	return forward.ParseStrategySpec(s)
}

// DefaultConfig returns the paper's "typical" configuration: NOW, 8 nodes,
// one application process and daemon per node, 40 ms sampling, CF policy,
// 100 simulated seconds.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultWorkload returns the Table 2 workload parameterization.
func DefaultWorkload() Workload { return core.DefaultWorkload() }

// NewModel assembles (but does not run) a simulation model.
func NewModel(cfg Config) (*Model, error) { return core.New(cfg) }

// Simulate runs one replication of the ROCC model.
func Simulate(cfg Config) (Result, error) {
	m, err := core.New(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run(), nil
}

// SimulateReplications runs reps independent replications (the paper uses
// r=50 with 90% confidence intervals; see Replicated.CI). Replications fan
// out across one worker per core by default — each model is share-nothing
// and seeds are pre-derived, so results are identical to the serial path
// for a fixed cfg.Seed; see SetParallelism.
func SimulateReplications(cfg Config, reps int) (Replicated, error) {
	return core.RunReplications(cfg, reps)
}

// SimulateReplicationsParallel is SimulateReplications with an explicit
// worker-pool size: 1 forces the serial path, 0 uses the default.
func SimulateReplicationsParallel(cfg Config, reps, workers int) (Replicated, error) {
	return core.RunReplicationsParallel(cfg, reps, workers)
}

// SetParallelism sets the default worker-pool size used by replication and
// sweep fan-out throughout the library; n <= 0 restores the one-worker-
// per-core default. Determinism is unaffected: any pool size produces the
// same results for a fixed seed.
func SetParallelism(n int) { par.SetWorkers(n) }

// Operational analysis (Section 3).
type (
	// AnalyticParams parameterizes equations (1)-(16).
	AnalyticParams = analytic.Params
	// AnalyticMetrics holds the closed-form outputs.
	AnalyticMetrics = analytic.Metrics
)

// DefaultAnalyticParams returns the Table 2 analytic parameterization.
func DefaultAnalyticParams() AnalyticParams { return analytic.DefaultParams() }

// Measurement testbed (Section 5).
type (
	// MeasureConfig describes one real measurement run.
	MeasureConfig = testbed.ExpConfig
	// MeasureResult is its outcome.
	MeasureResult = testbed.ExpResult
)

// Measure runs the real mini instrumentation system: an instrumented
// kernel ("bt" or "is"), a forwarding daemon, and a TCP collector.
func Measure(cfg MeasureConfig) (MeasureResult, error) { return testbed.Run(cfg) }

// Adaptive IS self-regulation (the Section 6 extension).
type (
	// RegulatorConfig parameterizes the overhead feedback controller.
	RegulatorConfig = adaptive.Config
	// RegulationResult records a closed-loop regulation run.
	RegulationResult = adaptive.RegulationResult
)

// Regulate runs the ROCC simulation in closed loop with a feedback
// controller that adjusts the sampling period to hold the direct IS
// overhead at a user-specified budget (the paper's §6 direction and
// Paradyn's dynamic cost model).
func Regulate(simCfg Config, ctrl RegulatorConfig, intervalUS float64, intervals int) (RegulationResult, error) {
	return adaptive.Regulate(simCfg, ctrl, intervalUS, intervals)
}

// Performance Consultant: the W3 bottleneck search the IS feeds.
type (
	// ConsultantConfig parameterizes the search (thresholds, window).
	ConsultantConfig = consultant.Config
	// SearchResult holds the confirmed bottleneck hypotheses.
	SearchResult = consultant.SearchResult
	// Finding is one confirmed hypothesis.
	Finding = consultant.Finding
	// Why is the bottleneck-hypothesis axis (CPU/communication/sync bound).
	Why = consultant.Why
)

// Bottleneck hypothesis kinds.
const (
	CPUBound  = consultant.CPUBound
	CommBound = consultant.CommBound
	SyncBound = consultant.SyncBound
)

// SearchBottlenecks runs the miniature Performance Consultant over a live
// simulation of the configured system, confirming and refining bottleneck
// hypotheses from the periodically collected instrumentation data.
func SearchBottlenecks(simCfg Config, cCfg ConsultantConfig, intervalUS float64, intervals int) (SearchResult, error) {
	return consultant.Search(simCfg, cCfg, intervalUS, intervals)
}

// Multi-node measurement testbed (the Figure 29 setup over real sockets).
type (
	// ClusterConfig describes a multi-node measurement experiment.
	ClusterConfig = testbed.ClusterConfig
	// ClusterResult is its outcome.
	ClusterResult = testbed.ClusterResult
)

// MeasureCluster runs the multi-node real testbed: one instrumented
// application and daemon per node forwarding to a single collector,
// directly or through a binary tree of relays.
func MeasureCluster(cfg ClusterConfig) (ClusterResult, error) { return testbed.RunCluster(cfg) }

// Experiment harness: regenerate the paper's tables and figures.
type (
	// Experiment is one table/figure generator.
	Experiment = experiments.Experiment
	// ExperimentOptions scales the experiments.
	ExperimentOptions = experiments.Options
)

// Workload characterization (§2.3): traces and the fitting pipeline.
type (
	// TraceRecord is one resource-occupancy interval of an AIX-like trace.
	TraceRecord = trace.Record
	// TraceGenConfig parameterizes synthetic trace generation.
	TraceGenConfig = trace.GenConfig
	// Characterization is the output of the §2.3 pipeline: Table 1
	// statistics, Figure 8 fits, and Table 2 parameters.
	Characterization = workload.Characterization
)

// GenerateTrace produces a synthetic AIX-like occupancy trace.
func GenerateTrace(cfg TraceGenConfig) ([]TraceRecord, error) { return trace.Generate(cfg) }

// CharacterizeTrace runs the workload-characterization pipeline over a
// trace; Characterization.Workload() yields the Table 2 parameters ready
// for Simulate.
func CharacterizeTrace(recs []TraceRecord) (*Characterization, error) {
	return workload.Characterize(recs)
}

// Scenario files: declarative JSON experiment specifications.
type (
	// Scenario is the JSON form of a simulation configuration.
	Scenario = scenario.Spec
	// ScenarioCell is one operating point of a scenario grid.
	ScenarioCell = scenario.Cell
	// ScenarioGrid is an ordered set of scenario operating points.
	ScenarioGrid = scenario.Grid
)

// PaperGrid returns the paper's NOW evaluation operating points (the
// Table 4 factorial plus the instrumented points of Figures 17-19) in
// deterministic order.
func PaperGrid() ScenarioGrid { return scenario.PaperGrid() }

// FullGrid extends PaperGrid with the SMP and MPP factorial designs.
func FullGrid() ScenarioGrid { return scenario.FullGrid() }

// Cross-validation: the unified Evaluator API and the dashboard built on
// it (see internal/xval).
type (
	// Evaluator is one evaluation backend mapping a scenario to estimates.
	Evaluator = xval.Evaluator
	// Estimates is the common output schema of every backend.
	Estimates = xval.Estimates
	// SimEvaluator evaluates by discrete-event simulation.
	SimEvaluator = xval.SimEvaluator
	// AnalyticEvaluator evaluates equations (1)-(16).
	AnalyticEvaluator = xval.AnalyticEvaluator
	// PaperDataEvaluator serves the embedded dataset of the paper's values.
	PaperDataEvaluator = xval.PaperDataEvaluator
	// CrossValidationOptions scales a cross-validation run.
	CrossValidationOptions = xval.Options
	// CrossValidationReport is the resulting error surface.
	CrossValidationReport = xval.Report
)

// DefaultCrossValidationOptions returns the default dashboard scaling.
func DefaultCrossValidationOptions() CrossValidationOptions { return xval.DefaultOptions() }

// DefaultEvaluators returns the three standard backends — analytic,
// simulation, paper — at the option scale.
func DefaultEvaluators(opt CrossValidationOptions) []Evaluator { return xval.DefaultEvaluators(opt) }

// CrossValidate runs every evaluator over every grid cell and assembles
// the error surface: per-metric relative error against the reference
// backend, CI coverage, and worst-case divergence per architecture/policy
// cell. Output is deterministic for a fixed Options.Seed at any
// Options.Workers setting.
func CrossValidate(g ScenarioGrid, evals []Evaluator, opt CrossValidationOptions) (*CrossValidationReport, error) {
	return xval.Run(g, evals, opt)
}

// Distributed sweeps: the fault-tolerant fan-out engine behind roccsweep
// and roccbench -dist (see internal/dist and DESIGN.md).
type (
	// SweepJob is one distributable simulation unit: a scenario plus its
	// pre-derived model seed.
	SweepJob = dist.Job
	// SweepRunner is one worker slot (subprocess, ssh host, or in-process).
	SweepRunner = dist.Runner
	// SweepDistOptions tunes sharding, retry/backoff, deadlines,
	// checkpointing, and the local fallback.
	SweepDistOptions = dist.Options
	// SweepGridOptions selects a grid-level distributed sweep.
	SweepGridOptions = dist.SweepOptions
	// SweepGridReport is the merged per-cell output of a grid sweep.
	SweepGridReport = dist.SweepReport
)

// LocalSweepWorkers returns n worker slots that re-execute the current
// binary with -worker (the binary must dispatch that flag to
// ServeSweepWorker, as roccsweep and roccbench do).
func LocalSweepWorkers(n int) []SweepRunner { return dist.LocalRunners(n) }

// SSHSweepWorker returns a worker slot on an ssh-reachable host running
// `roccsweep -worker` (or command, if non-empty).
func SSHSweepWorker(host, command string) SweepRunner {
	return dist.SSHRunner{Host: host, Command: command}
}

// SweepDistributed fans jobs across the given workers with retry,
// speculative re-dispatch, checkpointing, and graceful degradation to
// local execution, returning one Result per job in job order. Seeds are
// pre-derived, so output is byte-identical to the local path at any
// worker topology and under worker faults. With no runners configured
// the jobs run on this host.
func SweepDistributed(jobs []SweepJob, opt SweepDistOptions) ([]Result, error) {
	return dist.Run(context.Background(), jobs, opt)
}

// SweepGrid runs a whole scenario grid (by name: "smoke", "paper",
// "full", "table4", "table5", "table6") through the distributed engine
// and folds the results into per-cell replication blocks.
func SweepGrid(opt SweepGridOptions) (SweepGridReport, error) {
	return dist.Sweep(context.Background(), opt)
}

// ServeSweepWorker runs the worker side of the sweep protocol on r/w
// (normally os.Stdin/os.Stdout) until the driver disconnects.
func ServeSweepWorker(r io.Reader, w io.Writer) error { return dist.ServeWorker(r, w) }

// LoadScenario reads a JSON scenario.
func LoadScenario(r io.Reader) (Scenario, error) { return scenario.Load(r) }

// SaveScenario writes a JSON scenario.
func SaveScenario(w io.Writer, s Scenario) error { return scenario.Save(w, s) }

// ScenarioOf converts a configuration into its JSON form.
func ScenarioOf(cfg Config) Scenario { return scenario.FromConfig(cfg) }

// Experiments returns every registered table/figure generator.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks up one experiment (e.g. "fig17", "table4").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// DefaultExperimentOptions returns the fast default experiment scaling.
func DefaultExperimentOptions() ExperimentOptions { return experiments.Default() }

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments(w io.Writer, opt ExperimentOptions) error {
	return experiments.RunAll(w, opt)
}
