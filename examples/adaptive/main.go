// Adaptive regulation example: the Section 6 extension. The IS holds its
// direct overhead at a user-specified budget by adjusting the sampling
// period in closed loop — seeded from the operational model (equation 2
// inverted) and corrected by feedback from the running system.
package main

import (
	"fmt"
	"log"

	"rocc"
)

func main() {
	simCfg := rocc.DefaultConfig()
	simCfg.Nodes = 4

	fmt.Println("Regulating Paradyn IS overhead on a 4-node NOW (CF policy):")
	for _, budget := range []float64{0.005, 0.02, 0.05} {
		res, err := rocc.Regulate(simCfg, rocc.RegulatorConfig{
			TargetOverhead: budget,
			MinPeriodUS:    200,
			MaxPeriodUS:    1e6,
			Gain:           0.7,
		}, 2e6 /* 2 s control interval */, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n  budget %.1f%% -> final sampling period %.2f ms, overhead %.2f%% (converged: %v)\n",
			budget*100, res.FinalPeriodUS/1000, res.FinalOverhead*100, res.Converged)
		fmt.Println("  interval trace (observed overhead %, next period ms):")
		for i, obs := range res.Intervals {
			fmt.Printf("    t=%2ds  %6.3f%%  %8.2f\n", (i+1)*2, obs.OverheadFraction*100, obs.NewPeriodUS/1000)
		}
	}
	fmt.Println("\nA tighter budget drives the period up; a looser one lets the tool")
	fmt.Println("sample faster — the trade-off users control per §6 of the paper.")
}
