// Pipeline example: the paper's methodology loop, end to end.
//
//  1. "Measure" a system: generate an AIX-like occupancy trace.
//  2. Characterize it (§2.3): Table 1 statistics and fitted distributions.
//  3. Parameterize and run the ROCC simulation with the fitted workload.
//  4. Trace the *simulation* with the same tracer interface.
//  5. Re-characterize the simulation's trace and compare — the Table 3
//     validation, reproduced in one program.
package main

import (
	"fmt"
	"log"

	"rocc"
)

func main() {
	// 1. The "measured" system: 100 simulated seconds of an instrumented
	// NAS pvmbt node under PVM on one SP-2 node.
	recs, err := rocc.GenerateTrace(rocc.TraceGenConfig{Seed: 7, DurationUS: 100e6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. measured trace: %d occupancy records\n", len(recs))

	// 2. Characterize.
	c, err := rocc.CharacterizeTrace(recs)
	if err != nil {
		log.Fatal(err)
	}
	w := c.Workload()
	fmt.Printf("2. characterized: app CPU mean %.0f us, sampling period %.0f ms\n",
		w.AppCPU.Mean(), c.SamplingPeriod()/1000)

	// 3. Simulate the same single-node case with the fitted workload.
	cfg := rocc.DefaultConfig()
	cfg.Nodes = 1
	cfg.Duration = 100e6
	cfg.SamplingPeriod = c.SamplingPeriod()
	cfg.Workload = w
	m, err := rocc.NewModel(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Attach the tracer to the simulation (Figure 29's setup, but the
	// "system" is now the model).
	rec, err := m.EnableTraceRecording(0)
	if err != nil {
		log.Fatal(err)
	}
	res := m.Run()
	fmt.Printf("3. simulated: app %.2f s CPU, Pd %.2f s CPU over %.0f s\n",
		res.AppCPUTimePerNodeSec, res.PdCPUTimePerNodeSec, res.DurationSec)
	fmt.Printf("4. simulation trace: %d records\n", rec.Len())

	// 5. Re-characterize and compare (Table 3).
	c2, err := rocc.CharacterizeTrace(rec.Records())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("5. measured vs simulated CPU time (the Table 3 check):")
	fmt.Printf("   %-22s %-12s %-12s\n", "", "application", "Pd daemon")
	fmt.Printf("   %-22s %-12.2f %-12.3f\n", "trace (measured)",
		c.CPUSeconds("application"), c.CPUSeconds("pd"))
	fmt.Printf("   %-22s %-12.2f %-12.3f\n", "simulation",
		c2.CPUSeconds("application"), c2.CPUSeconds("pd"))
	rel := func(a, b float64) float64 { return (a - b) / a * 100 }
	fmt.Printf("   disagreement: app %.1f%%, Pd %.1f%% — the model reproduces its inputs\n",
		rel(c.CPUSeconds("application"), c2.CPUSeconds("application")),
		rel(c.CPUSeconds("pd"), c2.CPUSeconds("pd")))
}
