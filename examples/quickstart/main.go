// Quickstart: simulate the Paradyn instrumentation system on an 8-node
// network of workstations under both forwarding policies and print the
// direct overhead each imposes.
package main

import (
	"fmt"
	"log"

	"rocc"
)

func main() {
	// The paper's "typical" configuration: 8 nodes, one instrumented
	// application process per node, samples collected every 40 ms.
	cfg := rocc.DefaultConfig()
	cfg.Duration = 20e6       // 20 simulated seconds
	cfg.SamplingPeriod = 5000 // 5 ms: sample fast enough for overhead to matter

	// Collect-and-forward: the daemon makes one forwarding system call per
	// sample (the pre-release Paradyn policy).
	cfg.Policy = rocc.CF
	cf, err := rocc.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Batch-and-forward: 32 samples per system call (the policy this
	// study's feedback added to Paradyn release 1.0).
	cfg.Policy = rocc.BF
	cfg.BatchSize = 32
	bf, err := rocc.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Paradyn IS direct overhead, 8-node NOW, 5 ms sampling:")
	fmt.Printf("  CF: daemon %.3f s/node, main %.3f s, latency %.2f ms, %d samples received\n",
		cf.PdCPUTimePerNodeSec, cf.MainCPUTimeSec, cf.MonitoringLatencySec*1000, cf.SamplesReceived)
	fmt.Printf("  BF: daemon %.3f s/node, main %.3f s, latency %.2f ms, %d samples received\n",
		bf.PdCPUTimePerNodeSec, bf.MainCPUTimeSec, bf.MonitoringLatencySec*1000, bf.SamplesReceived)
	fmt.Printf("  -> BF cuts daemon overhead by %.0f%% (the paper measured >60%%)\n",
		(1-bf.PdCPUTimePerNodeSec/cf.PdCPUTimePerNodeSec)*100)
}
