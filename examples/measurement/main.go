// Measurement example: run the real mini instrumentation system of
// Section 5 — an instrumented NAS-like kernel forwarding timestamped
// samples over loopback TCP — and compare the measured direct overheads
// of the CF and BF policies on two applications, like Figure 31.
package main

import (
	"fmt"
	"log"
	"time"

	"rocc"
)

func main() {
	for _, kernel := range []string{"bt", "is"} {
		fmt.Printf("== %s kernel (real execution, 1 ms sampling, 1 s run) ==\n", kernel)
		var cf rocc.MeasureResult
		for _, policy := range []rocc.Policy{rocc.CF, rocc.BF} {
			cfg := rocc.MeasureConfig{
				Kernel:         kernel,
				Policy:         policy,
				BatchSize:      32,
				SamplingPeriod: time.Millisecond,
				Duration:       time.Second,
				Seed:           1,
			}
			res, err := rocc.Measure(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s: daemon %.4f s (%d write syscalls), collector %.4f s, "+
				"%d samples, mean latency %.3f ms\n",
				policy, res.Daemon.BusySec, res.Daemon.Writes, res.Collector.BusySec,
				res.Collector.Samples, res.Collector.MeanLatencySec*1000)
			if policy == rocc.CF {
				cf = res
			} else if cf.Daemon.BusySec > 0 {
				fmt.Printf("  -> BF: %.0f%% fewer syscalls, %.0f%% less daemon overhead\n",
					(1-float64(res.Daemon.Writes)/float64(cf.Daemon.Writes))*100,
					(1-res.Daemon.BusySec/cf.Daemon.BusySec)*100)
			}
		}
		fmt.Println()
	}
	fmt.Println("The overhead reduction is driven by the forwarding policy, not by")
	fmt.Println("which application is instrumented — the paper's Table 8 conclusion.")
}
