// NOW study: reproduce the shape of Figures 18 and 19 — how the direct IS
// overhead and monitoring latency respond to the sampling period and the
// batch size on a network of workstations — with replicated runs and 90%
// confidence intervals, using the public API.
package main

import (
	"fmt"
	"log"

	"rocc"
)

func main() {
	fmt.Println("== Sampling-period sweep (8 nodes, CF vs BF batch 32) ==")
	fmt.Printf("%-8s  %-26s  %-26s\n", "SP(ms)", "CF Pd util/node (%)", "BF Pd util/node (%)")
	for _, spMS := range []float64{1, 2, 4, 8, 16, 32, 64} {
		var cells []string
		for _, policy := range []rocc.Policy{rocc.CF, rocc.BF} {
			cfg := rocc.DefaultConfig()
			cfg.Duration = 10e6
			cfg.SamplingPeriod = spMS * 1000
			cfg.Policy = policy
			cfg.BatchSize = 32
			rep, err := rocc.SimulateReplications(cfg, 5)
			if err != nil {
				log.Fatal(err)
			}
			ci := rep.CI(func(r rocc.Result) float64 { return r.PdCPUUtilPct }, 0.90)
			cells = append(cells, fmt.Sprintf("%6.3f ± %.3f", ci.Mean, ci.HalfWidth))
		}
		fmt.Printf("%-8.0f  %-26s  %-26s\n", spMS, cells[0], cells[1])
	}

	fmt.Println("\n== Batch-size sweep (8 nodes, SP = 5 ms): the Figure 19 knee ==")
	fmt.Printf("%-8s  %-22s  %-22s\n", "batch", "Pd util/node (%)", "latency (ms)")
	for _, batch := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		cfg := rocc.DefaultConfig()
		cfg.Duration = 10e6
		cfg.SamplingPeriod = 5000
		if batch > 1 {
			cfg.Policy = rocc.BF
			cfg.BatchSize = batch
		}
		res, err := rocc.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d  %-22.4f  %-22.2f\n", batch, res.PdCPUUtilPct, res.MonitoringLatencySec*1000)
	}
	fmt.Println("\nOverhead drops super-linearly at small batches, then levels off;")
	fmt.Println("latency grows with batch accumulation — pick the knee (§4.2.4).")
}
