// SMP study: how many Paradyn daemons does a shared-memory multiprocessor
// need? Reproduces the shape of Figure 21 (daemon forwarding throughput vs
// CPU count for 1-4 daemons under CF and BF) and checks the bus-saturation
// effect of §4.3.3.
package main

import (
	"fmt"
	"log"

	"rocc"
)

func throughput(cpus, pds int, policy rocc.Policy) float64 {
	cfg := rocc.DefaultConfig()
	cfg.Arch = rocc.SMP
	cfg.Nodes = cpus
	cfg.AppProcs = cpus // one application process per CPU
	if pds > cpus {
		pds = cpus
	}
	cfg.Pds = pds
	cfg.Policy = policy
	cfg.BatchSize = 32
	cfg.SamplingPeriod = 5000
	cfg.Duration = 10e6
	res, err := rocc.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res.PdThroughputPerSec
}

func main() {
	for _, policy := range []rocc.Policy{rocc.CF, rocc.BF} {
		fmt.Printf("== Daemon forwarding throughput (samples/sec), %s policy ==\n", policy)
		fmt.Printf("%-6s", "CPUs")
		for pds := 1; pds <= 4; pds++ {
			fmt.Printf("  %8d Pd", pds)
		}
		fmt.Println()
		for _, cpus := range []int{1, 2, 4, 8, 16} {
			fmt.Printf("%-6d", cpus)
			for pds := 1; pds <= 4; pds++ {
				fmt.Printf("  %11.1f", throughput(cpus, pds, policy))
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Bus saturation: application CPU utilization collapses as CPU count
	// grows on a fixed-bandwidth bus (§4.3.3).
	fmt.Println("== Bus saturation with communication-intensive applications ==")
	for _, cpus := range []int{2, 8, 32} {
		cfg := rocc.DefaultConfig()
		cfg.Arch = rocc.SMP
		cfg.Nodes = cpus
		cfg.AppProcs = cpus
		cfg.Workload = rocc.CommIntensive.Apply(rocc.DefaultWorkload())
		cfg.Duration = 10e6
		res, err := rocc.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d CPUs: app CPU util %5.1f%%, bus util %5.1f%%\n",
			cpus, res.AppCPUUtilPct, res.NetUtilPct)
	}
}
