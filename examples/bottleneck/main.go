// Bottleneck example: run the miniature Performance Consultant — the W3
// search that the Paradyn instrumentation system exists to feed — over two
// live simulations with known bottlenecks, and watch it diagnose them from
// the periodically collected data.
package main

import (
	"fmt"
	"log"

	"rocc"
)

func diagnose(name string, cfg rocc.Config, cons rocc.ConsultantConfig) {
	res, err := rocc.SearchBottlenecks(cfg, cons, 1e6 /* 1 s intervals */, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s ==\n", name)
	if len(res.Findings) == 0 {
		fmt.Println("  no bottleneck confirmed")
	}
	for _, f := range res.Findings {
		fmt.Printf("  confirmed %-34s evidence %5.1f%%  (interval %d)\n",
			f.Hypothesis, f.MeanValue*100, f.ConfirmedAt)
	}
	fmt.Printf("  peak simultaneous hypothesis tests: %d\n\n", res.PeakActiveTests)
}

func main() {
	// A compute-intensive NOW: the search should confirm CPU-bound and
	// refine to the individual nodes.
	cpuCfg := rocc.DefaultConfig()
	cpuCfg.Nodes = 4
	cpuCfg.Workload = rocc.ComputeIntensive.Apply(rocc.DefaultWorkload())
	diagnose("compute-intensive NOW", cpuCfg, rocc.ConsultantConfig{
		Window:     3,
		Thresholds: map[rocc.Why]float64{rocc.CPUBound: 0.8},
	})

	// A bus-saturated SMP (the §4.3.3 pathology): communication-bound.
	busCfg := rocc.DefaultConfig()
	busCfg.Arch = rocc.SMP
	busCfg.Nodes = 32
	busCfg.AppProcs = 32
	busCfg.Workload = rocc.CommIntensive.Apply(rocc.DefaultWorkload())
	diagnose("bus-saturated SMP", busCfg, rocc.ConsultantConfig{Nodes: 1, Window: 3})
}
