// MPP study: direct vs binary-tree forwarding on a massively parallel
// system (Figures 26-28): tree forwarding costs extra daemon CPU for
// merging, the trade-off Paradyn resolves in favor of low direct overhead,
// and frequent barrier operations change who gets the CPU.
package main

import (
	"fmt"
	"log"

	"rocc"
)

func run(nodes int, fwd rocc.Forwarding, barrierMS float64) rocc.Result {
	cfg := rocc.DefaultConfig()
	cfg.Arch = rocc.MPP
	cfg.Nodes = nodes
	cfg.Policy = rocc.BF
	cfg.BatchSize = 32
	cfg.SamplingPeriod = 10000
	cfg.Forwarding = fwd
	cfg.BarrierPeriod = barrierMS * 1000
	cfg.Duration = 10e6
	res, err := rocc.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("== Direct vs tree forwarding (BF batch 32, SP = 10 ms) ==")
	fmt.Printf("%-7s  %-10s  %-18s  %-14s  %-10s\n",
		"nodes", "config", "Pd CPU util (%)", "latency (ms)", "merges")
	for _, nodes := range []int{15, 63, 127} {
		for _, fwd := range []rocc.Forwarding{rocc.Direct, rocc.Tree} {
			res := run(nodes, fwd, 0)
			fmt.Printf("%-7d  %-10s  %-18.4f  %-14.2f  %-10d\n",
				nodes, fwd, res.PdCPUUtilPct, res.MonitoringLatencySec*1000, res.MessagesMerged)
		}
	}
	fmt.Println("\nTree forwarding spends extra daemon CPU merging children's data")
	fmt.Println("(§4.4.2); Paradyn prefers direct forwarding with BF batching.")

	fmt.Println("\n== Barrier-frequency effect (63 nodes, direct, BF) ==")
	fmt.Printf("%-18s  %-18s  %-18s\n", "barrier period", "app CPU util (%)", "Pd CPU util (%)")
	for _, ms := range []float64{0.5, 5, 50, 500} {
		res := run(63, rocc.Direct, ms)
		fmt.Printf("%-18s  %-18.2f  %-18.4f\n",
			fmt.Sprintf("%.1f ms", ms), res.AppCPUUtilPct, res.PdCPUUtilPct)
	}
	fmt.Println("\nFrequent barriers idle the application, so its CPU share falls")
	fmt.Println("while the daemon finds the CPU more available (Figure 28).")
}
