package rocc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestPublicAPISimulate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 2e6
	cfg.Nodes = 2
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesReceived == 0 || res.PdCPUTimePerNodeSec <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestPublicAPIHeadline(t *testing.T) {
	// The paper's headline through the public API: BF cuts daemon
	// overhead by more than 60% versus CF at a fast sampling rate.
	base := DefaultConfig()
	base.Duration = 5e6
	base.Nodes = 4
	base.SamplingPeriod = 5000

	cf := base
	cf.Policy = CF
	rcf, err := Simulate(cf)
	if err != nil {
		t.Fatal(err)
	}
	bf := base
	bf.Policy = BF
	bf.BatchSize = 32
	rbf, err := Simulate(bf)
	if err != nil {
		t.Fatal(err)
	}
	if red := 1 - rbf.PdCPUTimePerNodeSec/rcf.PdCPUTimePerNodeSec; red < 0.6 {
		t.Fatalf("BF reduction %.0f%%, want >60%%", red*100)
	}
}

func TestPublicAPIReplications(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 1e6
	cfg.Nodes = 2
	rep, err := SimulateReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	ci := rep.CI(func(r Result) float64 { return r.PdCPUUtilPct }, 0.90)
	if ci.Mean <= 0 {
		t.Fatalf("CI %+v", ci)
	}
}

func TestPublicAPIAnalytic(t *testing.T) {
	p := DefaultAnalyticParams()
	m := p.NOW()
	if m.PdCPUUtil <= 0 || m.LatencyUS <= 0 {
		t.Fatalf("analytic metrics %+v", m)
	}
	if p.MPPTree().PdCPUUtil <= p.MPPDirect().PdCPUUtil {
		t.Fatal("tree should cost more daemon CPU")
	}
}

func TestPublicAPIMeasure(t *testing.T) {
	res, err := Measure(MeasureConfig{
		Kernel:         "is",
		Policy:         CF,
		SamplingPeriod: 2 * time.Millisecond,
		Duration:       50 * time.Millisecond,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collector.Samples == 0 {
		t.Fatal("no samples measured")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(Experiments()) < 30 {
		t.Fatalf("only %d experiments exposed", len(Experiments()))
	}
	e, ok := ExperimentByID("fig9")
	if !ok {
		t.Fatal("fig9 missing")
	}
	opt := DefaultExperimentOptions()
	opt.DurationUS = 1e5
	var buf bytes.Buffer
	if err := e.Run(&buf, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Fatal("figure output missing title")
	}
}

func TestPublicAPICharacterization(t *testing.T) {
	recs, err := GenerateTrace(TraceGenConfig{Seed: 1, DurationUS: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := CharacterizeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	w := c.Workload()
	if w.AppCPU == nil || w.AppCPU.Mean() < 1500 || w.AppCPU.Mean() > 3000 {
		t.Fatalf("characterized AppCPU mean %v", w.AppCPU.Mean())
	}
	// The characterized workload drives a simulation directly.
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.Duration = 1e6
	cfg.Workload = w
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIScenario(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	var buf bytes.Buffer
	if err := SaveScenario(&buf, ScenarioOf(cfg)); err != nil {
		t.Fatal(err)
	}
	s, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != 3 {
		t.Fatalf("round trip nodes %d", got.Nodes)
	}
}

func TestModelInspection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 1e6
	cfg.Nodes = 2
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Daemons) != 2 || len(m.Apps) != 2 {
		t.Fatalf("model shape: %d daemons, %d apps", len(m.Daemons), len(m.Apps))
	}
	res := m.Run()
	if res.DurationSec != 1 {
		t.Fatalf("duration %v", res.DurationSec)
	}
}

func TestPublicAPIForwardStrategy(t *testing.T) {
	// A custom strategy spec drives a simulation through Config.Strategy.
	spec, err := ParseStrategySpec("abf")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Duration = 1e6
	cfg.Nodes = 2
	cfg.Strategy = spec.NewStrategy(0)
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesReceived == 0 {
		t.Fatal("adaptive run delivered no samples")
	}
	if res.AdaptiveFinalBatchMean <= 0 {
		t.Fatalf("adaptive telemetry missing: %+v", res)
	}
	// The fixed-batch strategy is the deprecation shim's explicit form.
	if got := NewFixedBFStrategy(16).String(); got != "bf:16" {
		t.Fatalf("fixed strategy renders %q", got)
	}
	if got := NewCFStrategy().String(); got != "cf" {
		t.Fatalf("cf strategy renders %q", got)
	}
	if _, err := ParseStrategySpec("bf:0"); err == nil {
		t.Fatal("bf:0 must be rejected")
	}
}

func TestPublicAPISweepDistributed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 0.5e6
	cfg.Nodes = 2
	jobs := []SweepJob{
		{Spec: ScenarioOf(cfg), Seed: 42},
		{Spec: ScenarioOf(cfg), Seed: 43},
	}
	got, err := SweepDistributed(jobs, SweepDistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	cfg.Seed = 42
	want, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Fatal("SweepDistributed job 0 diverges from Simulate at the same seed")
	}
	if reflect.DeepEqual(got[1], want) {
		t.Fatal("distinct seeds produced identical results")
	}
}
