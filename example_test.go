package rocc_test

import (
	"fmt"
	"log"
	"time"

	"rocc"
)

// Simulate the paper's typical scenario and inspect the direct IS
// overhead metrics.
func ExampleSimulate() {
	cfg := rocc.DefaultConfig() // 8-node NOW, 40 ms sampling, Table 2 workload
	cfg.Duration = 10e6         // 10 simulated seconds
	cfg.Policy = rocc.BF
	cfg.BatchSize = 32
	res, err := rocc.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon overhead under BF stays below 0.1%%: %v\n", res.PdCPUUtilPct < 0.1)
	// Output: daemon overhead under BF stays below 0.1%: true
}

// Evaluate the Section 3 closed-form equations without simulating.
func ExampleAnalyticParams() {
	p := rocc.DefaultAnalyticParams() // 8 nodes, 40 ms sampling, CF
	m := p.NOW()
	fmt.Printf("Pd CPU utilization/node: %.3f%%\n", m.PdCPUUtil*100)
	// Output: Pd CPU utilization/node: 0.667%
}

// Replicated runs give confidence intervals, as in the paper's 2^k·r
// factorial experiments.
func ExampleSimulateReplications() {
	cfg := rocc.DefaultConfig()
	cfg.Nodes = 2
	cfg.Duration = 5e6
	rep, err := rocc.SimulateReplications(cfg, 5)
	if err != nil {
		log.Fatal(err)
	}
	ci := rep.CI(func(r rocc.Result) float64 { return r.PdCPUUtilPct }, 0.90)
	fmt.Printf("interval is positive and brackets its mean: %v\n",
		ci.HalfWidth > 0 && ci.Low() < ci.Mean && ci.Mean < ci.High())
	// Output: interval is positive and brackets its mean: true
}

// Run the real measurement testbed: an instrumented integer-sort kernel
// forwarding samples over loopback TCP.
func ExampleMeasure() {
	res, err := rocc.Measure(rocc.MeasureConfig{
		Kernel:         "is",
		Policy:         rocc.CF,
		SamplingPeriod: 2 * time.Millisecond,
		Duration:       100 * time.Millisecond,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("every forwarded sample arrived: %v\n",
		res.Collector.Samples == res.Daemon.SamplesForwarded)
	// Output: every forwarded sample arrived: true
}

// Characterize a trace and drive a simulation with the fitted workload —
// the full §2.3 pipeline.
func ExampleCharacterizeTrace() {
	recs, err := rocc.GenerateTrace(rocc.TraceGenConfig{Seed: 1, DurationUS: 20e6})
	if err != nil {
		log.Fatal(err)
	}
	c, err := rocc.CharacterizeTrace(recs)
	if err != nil {
		log.Fatal(err)
	}
	cfg := rocc.DefaultConfig()
	cfg.Nodes = 1
	cfg.Duration = 2e6
	cfg.Workload = c.Workload()
	_, err = rocc.Simulate(cfg)
	fmt.Printf("characterized workload simulates: %v\n", err == nil)
	// Output: characterized workload simulates: true
}
