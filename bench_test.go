// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B per experiment (see DESIGN.md's
// per-experiment index). Each iteration reruns the full experiment —
// workload characterization, operational analysis, ROCC simulation, or
// the real measurement testbed — at a reduced scale chosen so the whole
// suite completes in minutes. For paper-scale output, run
//
//	go run ./cmd/roccbench -exp all -paper
package rocc

import (
	"io"
	"testing"
	"time"

	"rocc/internal/experiments"
)

// benchOptions scales experiments for benchmarking: long enough for the
// effects to be visible, short enough for the suite to be quick.
func benchOptions() experiments.Options {
	return experiments.Options{
		Seed:            1,
		DurationUS:      5e5, // 0.5 simulated seconds per run
		Reps:            2,
		TestbedDuration: 60 * time.Millisecond,
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opt := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, opt); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// Section 2: workload characterization.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// Section 3: operational analysis.
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// Section 4.2: NOW simulation.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }

// Section 4.3: SMP simulation.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "fig22") }
func BenchmarkFig23(b *testing.B)  { benchExperiment(b, "fig23") }
func BenchmarkFig24(b *testing.B)  { benchExperiment(b, "fig24") }

// Section 4.4: MPP simulation.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkFig25(b *testing.B)  { benchExperiment(b, "fig25") }
func BenchmarkFig26(b *testing.B)  { benchExperiment(b, "fig26") }
func BenchmarkFig27(b *testing.B)  { benchExperiment(b, "fig27") }
func BenchmarkFig28(b *testing.B)  { benchExperiment(b, "fig28") }

// Section 5: measurement-based validation (real testbed).
func BenchmarkFig30(b *testing.B)  { benchExperiment(b, "fig30") }
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }
func BenchmarkFig31(b *testing.B)  { benchExperiment(b, "fig31") }
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }

// Multi-node measurement testbed (Figure 29 setup, direct vs tree).
func BenchmarkExtCluster(b *testing.B) { benchExperiment(b, "ext-cluster") }

// Extensions: adaptive IS overhead regulation (§6 future work) and the
// W3 bottleneck search the IS feeds.
func BenchmarkExtAdaptive(b *testing.B)   { benchExperiment(b, "ext-adaptive") }
func BenchmarkExtConsultant(b *testing.B) { benchExperiment(b, "ext-consultant") }
func BenchmarkExtTracing(b *testing.B)    { benchExperiment(b, "ext-tracing") }
func BenchmarkExtPhases(b *testing.B)     { benchExperiment(b, "ext-phases") }

// Ablations of design choices (DESIGN.md).
func BenchmarkAblationPipeCapacity(b *testing.B)  { benchExperiment(b, "ablation-pipecap") }
func BenchmarkAblationQuantum(b *testing.B)       { benchExperiment(b, "ablation-quantum") }
func BenchmarkAblationEventQueue(b *testing.B)    { benchExperiment(b, "ablation-eventqueue") }
func BenchmarkAblationNetContention(b *testing.B) { benchExperiment(b, "ablation-netcontention") }
func BenchmarkAblationFitting(b *testing.B)       { benchExperiment(b, "ablation-fitting") }
func BenchmarkAblationDetailed(b *testing.B)      { benchExperiment(b, "ablation-detailed") }
