module rocc

go 1.22
