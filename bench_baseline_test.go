package rocc

import (
	"encoding/json"
	"os"
	"testing"

	"rocc/internal/experiments"
)

// benchBaseline mirrors cmd/roccbench's perf-record schema (schema_version 1).
type benchBaseline struct {
	SchemaVersion int     `json:"schema_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Parallel      int     `json:"parallel"`
	Seed          uint64  `json:"seed"`
	DurationUS    float64 `json:"duration_us"`
	Reps          int     `json:"reps"`
	Experiments   []struct {
		ID           string  `json:"id"`
		SerialNsOp   int64   `json:"serial_ns_per_op"`
		ParallelNsOp int64   `json:"parallel_ns_per_op"`
		Speedup      float64 `json:"speedup"`
		AllocsPerOp  uint64  `json:"allocs_per_op"`
		BytesPerOp   uint64  `json:"bytes_per_op"`
	} `json:"experiments"`
}

// loadBench reads a committed perf record and checks it is well-formed:
// valid schema-1 JSON, rerun context present, every tracked experiment
// still registered, and no empty measurements.
func loadBench(t *testing.T, path string) benchBaseline {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s must be committed at the repo root: %v", path, err)
	}
	var b benchBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if b.SchemaVersion != 1 {
		t.Fatalf("%s schema_version %d, tooling expects 1", path, b.SchemaVersion)
	}
	if len(b.Experiments) == 0 {
		t.Fatalf("%s records no experiments", path)
	}
	if b.Seed == 0 || b.DurationUS <= 0 || b.Reps < 1 {
		t.Fatalf("%s missing rerun context: %+v", path, b)
	}
	for _, e := range b.Experiments {
		if _, ok := experiments.ByID(e.ID); !ok {
			t.Errorf("%s tracks %q, which is no longer registered", path, e.ID)
		}
		if e.SerialNsOp <= 0 || e.ParallelNsOp <= 0 || e.AllocsPerOp == 0 || e.BytesPerOp == 0 {
			t.Errorf("%s record %q has empty measurements: %+v", path, e.ID, e)
		}
		if e.Speedup <= 0 {
			t.Errorf("%s record %q has non-positive speedup", path, e.ID)
		}
	}
	return b
}

// serialAndAllocs indexes one record's (serial ns/op, allocs/op) by
// experiment id.
func serialAndAllocs(b benchBaseline) map[string][2]float64 {
	out := make(map[string][2]float64, len(b.Experiments))
	for _, e := range b.Experiments {
		out[e.ID] = [2]float64{float64(e.SerialNsOp), float64(e.AllocsPerOp)}
	}
	return out
}

// The committed benchmark baseline (regenerate with
// `roccbench -exp bench -json -out BENCH_baseline.json`) must stay
// well-formed and track experiments that still exist, so future PRs can
// regress ns/op and allocs/op against it.
func TestBenchBaselineTracked(t *testing.T) {
	b := loadBench(t, "BENCH_baseline.json")
	seen := map[string]bool{}
	for _, e := range b.Experiments {
		seen[e.ID] = true
	}
	// The DES- and replication-heavy anchors must stay tracked: they are
	// the records the alloc-cut and fan-out work regresses against.
	for _, anchor := range []string{"table4", "fig16", "fault-survivability"} {
		if !seen[anchor] {
			t.Errorf("baseline no longer tracks anchor experiment %q", anchor)
		}
	}
}

// BENCH_PR7.json is the perf record after the calendar-queue and
// hot-path batching work (regenerate with
// `GOMAXPROCS=1 roccbench -exp bench -json -duration 2 -reps 3 -parallel 1 -out BENCH_PR7.json`).
// It must stay well-formed and must hold the measured wins over the
// BENCH_PR3.json anchor on the DES-bound experiments: at least 25% less
// serial time and 30% fewer allocations per run on table4 and fig16.
// Allocation counts are deterministic for a fixed seed, so the alloc
// bound is exact; the ns bound has ~35 points of measured headroom
// (PR7 landed at ~61% of PR3) to absorb machine-to-machine variance
// in the committed numbers.
func TestBenchPR7ImprovesOnPR3(t *testing.T) {
	pr3 := loadBench(t, "BENCH_PR3.json")
	pr7 := loadBench(t, "BENCH_PR7.json")
	if pr3.Seed != pr7.Seed || pr3.DurationUS != pr7.DurationUS || pr3.Reps != pr7.Reps {
		t.Fatalf("PR3 and PR7 records were measured under different configs: %+v vs %+v",
			pr3, pr7)
	}
	old := serialAndAllocs(pr3)
	cur := serialAndAllocs(pr7)
	for _, id := range []string{"table4", "fig16"} {
		o, ok := old[id]
		if !ok {
			t.Errorf("BENCH_PR3.json no longer tracks %q", id)
			continue
		}
		c, ok := cur[id]
		if !ok {
			t.Errorf("BENCH_PR7.json does not track %q", id)
			continue
		}
		if nsRatio := c[0] / o[0]; nsRatio > 0.75 {
			t.Errorf("%s: PR7 serial ns/op is %.1f%% of PR3, want <= 75%%", id, nsRatio*100)
		}
		if allocRatio := c[1] / o[1]; allocRatio > 0.70 {
			t.Errorf("%s: PR7 allocs/op is %.1f%% of PR3, want <= 70%%", id, allocRatio*100)
		}
	}
}
