package rocc

import (
	"encoding/json"
	"os"
	"testing"

	"rocc/internal/experiments"
)

// benchBaseline mirrors cmd/roccbench's perf-record schema (schema_version 1).
type benchBaseline struct {
	SchemaVersion int     `json:"schema_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Parallel      int     `json:"parallel"`
	Seed          uint64  `json:"seed"`
	DurationUS    float64 `json:"duration_us"`
	Reps          int     `json:"reps"`
	Experiments   []struct {
		ID           string  `json:"id"`
		SerialNsOp   int64   `json:"serial_ns_per_op"`
		ParallelNsOp int64   `json:"parallel_ns_per_op"`
		Speedup      float64 `json:"speedup"`
		AllocsPerOp  uint64  `json:"allocs_per_op"`
		BytesPerOp   uint64  `json:"bytes_per_op"`
	} `json:"experiments"`
}

// The committed benchmark baseline (regenerate with
// `roccbench -exp bench -json -out BENCH_baseline.json`) must stay
// well-formed and track experiments that still exist, so future PRs can
// regress ns/op and allocs/op against it.
func TestBenchBaselineTracked(t *testing.T) {
	raw, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatalf("BENCH_baseline.json must be committed at the repo root: %v", err)
	}
	var b benchBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if b.SchemaVersion != 1 {
		t.Fatalf("baseline schema_version %d, tooling expects 1", b.SchemaVersion)
	}
	if len(b.Experiments) == 0 {
		t.Fatal("baseline records no experiments")
	}
	if b.Seed == 0 || b.DurationUS <= 0 || b.Reps < 1 {
		t.Fatalf("baseline missing rerun context: %+v", b)
	}
	seen := map[string]bool{}
	for _, e := range b.Experiments {
		if _, ok := experiments.ByID(e.ID); !ok {
			t.Errorf("baseline tracks %q, which is no longer registered", e.ID)
		}
		if e.SerialNsOp <= 0 || e.ParallelNsOp <= 0 || e.AllocsPerOp == 0 || e.BytesPerOp == 0 {
			t.Errorf("baseline record %q has empty measurements: %+v", e.ID, e)
		}
		if e.Speedup <= 0 {
			t.Errorf("baseline record %q has non-positive speedup", e.ID)
		}
		seen[e.ID] = true
	}
	// The DES- and replication-heavy anchors must stay tracked: they are
	// the records the alloc-cut and fan-out work regresses against.
	for _, anchor := range []string{"table4", "fig16", "fault-survivability"} {
		if !seen[anchor] {
			t.Errorf("baseline no longer tracks anchor experiment %q", anchor)
		}
	}
}
