// Command roccviz renders an instrumented simulation run as telemetry
// reports: sample-lifecycle counters, monitoring-latency quantiles, a
// windowed CPU occupancy timeline, and the periodic sampler series. It
// also exports and validates Chrome trace-event JSON (the Perfetto /
// chrome://tracing format), which is what the CI smoke step checks.
//
// Examples:
//
//	roccviz -nodes 8 -sp 40
//	roccviz -nodes 8 -windows 20 -series
//	roccviz -nodes 4 -export run.json      # Chrome trace for Perfetto
//	roccviz -check run.json                # validate an exported trace
//	roccviz -check sweep-timeline.json     # roccsweep -trace output validates too
//	roccviz -lat run.json                  # latency waterfall from an exported trace
//	roccviz -nodes 8 -http :0              # live /metrics + pprof during the run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rocc/internal/cli"
	"rocc/internal/core"
	"rocc/internal/obs"
	"rocc/internal/obs/live"
	"rocc/internal/obs/prov"
	"rocc/internal/report"
	"rocc/internal/trace"
)

func main() {
	var (
		arch    = flag.String("arch", "now", "architecture: now, smp, mpp")
		nodes   = flag.Int("nodes", 8, "number of nodes (CPUs for SMP)")
		spMS    = flag.Float64("sp", 40, "sampling period in milliseconds")
		policy  = cli.Policy(flag.CommandLine)
		batch   = flag.Int("batch", 32, "batch size under the BF policy")
		dur     = flag.Float64("duration", 10, "simulated seconds")
		seed    = flag.Uint64("seed", 1, "random seed")
		windows = flag.Int("windows", 10, "occupancy timeline windows")
		series  = flag.Bool("series", false, "also print the periodic sampler series")
		csv     = flag.Bool("csv", false, "emit figures as CSV")
		export  = flag.String("export", "", "write the run's Chrome trace JSON to this file")
		check   = flag.String("check", "", "validate a Chrome trace JSON file and exit")
		lat     = flag.String("lat", "", "reconstruct the latency-decomposition waterfall from a Chrome trace JSON file and exit")
		http    = cli.HTTP(flag.CommandLine)
	)
	flag.Parse()

	if *lat != "" {
		if err := runLat(*lat); err != nil {
			fatal("%v", err)
		}
		return
	}

	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			fatal("%v", err)
		}
		n, err := obs.ValidateChrome(f)
		f.Close()
		if err != nil {
			fatal("%s: %v", *check, err)
		}
		fmt.Printf("%s: valid Chrome trace, %d events\n", *check, n)
		return
	}

	cfg := core.DefaultConfig()
	switch strings.ToLower(*arch) {
	case "now":
		cfg.Arch = core.NOW
	case "smp":
		cfg.Arch = core.SMP
	case "mpp":
		cfg.Arch = core.MPP
	default:
		fatal("unknown architecture %q", *arch)
	}
	cfg.Nodes = *nodes
	cfg.SamplingPeriod = *spMS * 1000
	policy.Apply(&cfg.Policy, &cfg.BatchSize, &cfg.Strategy, *batch)
	cfg.Duration = *dur * 1e6
	cfg.Seed = *seed

	m, err := core.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	c, err := m.EnableObservability(core.ObsOptions{Trace: true, Metrics: true, Provenance: true})
	if err != nil {
		fatal("%v", err)
	}
	if *http != "" {
		srv := live.NewServer(nil)
		srv.Exporter().SetRun(c.Metrics)
		if eng := m.Provenance(); eng != nil {
			for st := prov.Stage(0); st < prov.NumStages; st++ {
				srv.Exporter().AddHistogram(eng.Histogram(st),
					"per-sample dwell in stage "+st.String())
			}
		}
		addr, err := srv.Start(*http)
		if err != nil {
			fatal("%v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "roccviz: monitoring on http://%s (/metrics /healthz /debug/pprof/)\n", addr)
	}
	res := m.Run()

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fatal("%v", err)
		}
		if err := c.Sink.WriteChrome(f); err != nil {
			f.Close()
			fatal("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote Chrome trace (%d spans + %d events) to %s\n",
			len(c.Sink.Spans()), len(c.Sink.Events()), *export)
	}

	policyName := fmt.Sprint(cfg.Policy)
	if cfg.Strategy != nil {
		policyName = cfg.Strategy.String()
	}
	ct := report.NewTable(
		fmt.Sprintf("Telemetry: %s, %d nodes, SP=%.1f ms, %s", cfg.Arch, cfg.Nodes, cfg.SamplingPeriod/1000, policyName),
		"counter", "count")
	for _, cnt := range c.Metrics.Counters() {
		ct.AddRow(cnt.Name, fmt.Sprint(cnt.Value()))
	}
	if err := ct.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}

	qt := report.NewTable("Monitoring latency (sec)", "stat", "value")
	qt.AddRow("p50", report.F(res.MonitoringLatencyP50Sec))
	qt.AddRow("p95", report.F(c.Metrics.Latency.Quantile(0.95)/1e6))
	qt.AddRow("p99", report.F(res.MonitoringLatencyP99Sec))
	qt.AddRow("mean", report.F(res.MonitoringLatencySec))
	qt.AddRow("max", report.F(res.MonitoringLatencyMaxSec))
	if err := qt.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}

	if len(res.LatencyStages) > 0 {
		wf := report.Waterfall{Title: "latency decomposition (per-stage dwell)"}
		for _, s := range res.LatencyStages {
			wf.Rows = append(wf.Rows, report.StageRow{
				Stage:    s.Stage,
				MeanUS:   s.MeanSec * 1e6,
				P50US:    s.P50Sec * 1e6,
				P95US:    s.P95Sec * 1e6,
				P99US:    s.P99Sec * 1e6,
				SharePct: s.SharePct,
			})
		}
		if err := wf.Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
	}

	if err := renderTimeline(c, *windows, *csv); err != nil {
		fatal("%v", err)
	}

	if *series {
		if err := renderSeries(c, *csv); err != nil {
			fatal("%v", err)
		}
	}
}

// renderTimeline recovers the occupancy timeline from the run's own trace
// records — the same analysis rocctrace applies to measured traces.
func renderTimeline(c *obs.Collector, windows int, csv bool) error {
	recs := c.Sink.TraceRecords()
	if len(recs) == 0 {
		fmt.Println("(no occupancy records: timeline skipped)")
		return nil
	}
	classes, shares, err := trace.Timeline(recs, trace.CPU, windows)
	if err != nil {
		return err
	}
	an, err := trace.Analyze(recs)
	if err != nil {
		return err
	}
	width := an.DurationUS / float64(windows)
	xs := make([]float64, windows)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) * width / 1e6
	}
	fig := report.NewFigure(
		fmt.Sprintf("CPU occupancy share per %.3f-s window", width/1e6),
		"t_sec", "share", xs)
	for i, class := range classes {
		if err := fig.Add(class, shares[i]); err != nil {
			return err
		}
	}
	if csv {
		return fig.RenderCSV(os.Stdout)
	}
	return fig.Render(os.Stdout)
}

// renderSeries prints each periodic sampler series as a figure grouped by
// shared timestamps (all probes tick together, so one x-axis serves all).
func renderSeries(c *obs.Collector, csv bool) error {
	all := c.Metrics.Series()
	if len(all) == 0 || len(all[0].T) == 0 {
		fmt.Println("(no sampler series recorded)")
		return nil
	}
	xs := make([]float64, len(all[0].T))
	for i, t := range all[0].T {
		xs[i] = t / 1e6
	}
	fig := report.NewFigure("Periodic sampler series", "t_sec", "value", xs)
	for _, s := range all {
		if len(s.V) != len(xs) {
			continue // defensive: mismatched probe, skip rather than abort
		}
		if err := fig.Add(s.Name, s.V); err != nil {
			return err
		}
	}
	if csv {
		return fig.RenderCSV(os.Stdout)
	}
	return fig.Render(os.Stdout)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "roccviz: "+format+"\n", args...)
	os.Exit(1)
}
