package main

import (
	"bytes"
	"math"
	"testing"

	"rocc/internal/core"
	"rocc/internal/faults"
	"rocc/internal/forward"
	"rocc/internal/obs/prov"
)

// latTestConfigs exercises the reconstruction on a dense direct batch run,
// a tree topology (relay merge legs), and a faulty direct run with losses
// and injected duplicates.
func latTestConfigs() map[string]core.Config {
	base := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Nodes = 4
		cfg.AppProcs = 2
		cfg.SamplingPeriod = 5000
		cfg.Duration = 2e6
		cfg.Warmup = 0 // full paths in the trace: reconstruction is exact
		cfg.Seed = 21
		cfg.Policy = forward.BF
		cfg.BatchSize = 8
		return cfg
	}

	direct := base()

	tree := base()
	tree.Arch = core.MPP
	tree.Nodes = 8
	tree.Forwarding = forward.Tree

	chaos := base()
	chaos.Faults = &faults.Plan{Seed: 3, Loss: 0.1, Dup: 0.1, CrashMTBF: 1e6}

	return map[string]core.Config{"direct": direct, "tree": tree, "chaos": chaos}
}

// The -lat guarantee: replaying an exported Chrome trace through
// reconstructLatency reproduces the live provenance engine's decomposition
// of the same run — identical delivery/loss/duplicate accounting and
// bit-for-bit per-stage dwell totals (JSON float64 round-trips exactly,
// and both fold deliveries in the same event order).
func TestLatReconstructionMatchesEngine(t *testing.T) {
	for name, cfg := range latTestConfigs() {
		t.Run(name, func(t *testing.T) {
			m, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := m.EnableObservability(core.ObsOptions{Trace: true, Provenance: true})
			if err != nil {
				t.Fatal(err)
			}
			m.Run()
			eng := m.Provenance()
			if eng.Delivered() == 0 {
				t.Fatal("no deliveries; nothing to reconstruct")
			}

			var buf bytes.Buffer
			if err := c.Sink.WriteChrome(&buf); err != nil {
				t.Fatal(err)
			}
			rc, err := reconstructLatency(&buf)
			if err != nil {
				t.Fatal(err)
			}

			if got, want := rc.delivered, int(eng.Delivered()); got != want {
				t.Errorf("delivered: trace %d, engine %d", got, want)
			}
			if got, want := rc.dup, int(eng.DupDelivered()); got != want {
				t.Errorf("duplicate deliveries: trace %d, engine %d", got, want)
			}
			if got, want := rc.lost, int(eng.LostTotal()); got != want {
				t.Errorf("lost: trace %d, engine %d", got, want)
			}
			if got, want := rc.dropped, int(eng.Dropped()); got != want {
				t.Errorf("dropped: trace %d, engine %d", got, want)
			}
			if rc.incomplete != 0 {
				t.Errorf("%d incomplete paths in a warmup-free trace", rc.incomplete)
			}
			if rc.maxCloseErrUS > 1e-6 {
				t.Errorf("per-sample closure error %v us", rc.maxCloseErrUS)
			}
			for i, st := range eng.Stages() {
				if diff := math.Abs(rc.sums[i] - st.SumUS); diff > 1e-9*(1+math.Abs(st.SumUS)) {
					t.Errorf("stage %s: trace sum %v, engine sum %v", st.Stage, rc.sums[i], st.SumUS)
				}
			}
			rows := rc.Rows()
			total := 0.0
			for _, r := range rows {
				total += r.SharePct
				if r.P50US > r.P95US || r.P95US > r.P99US {
					t.Errorf("stage %s: quantiles not monotone: %v %v %v", r.Stage, r.P50US, r.P95US, r.P99US)
				}
			}
			if total < 99.999 || total > 100.001 {
				t.Errorf("shares sum to %v%%", total)
			}
			if name == "tree" && rc.sums[prov.StageMerge] <= 0 {
				t.Error("tree run reconstructed no merge dwell")
			}
			if name == "chaos" && (rc.dup == 0 || rc.lost == 0) {
				t.Errorf("chaos run delivered dup=%d lost=%d; faults not exercised", rc.dup, rc.lost)
			}
		})
	}
}

func TestParseFlowID(t *testing.T) {
	if k, ok := parseFlowID("n3.p1.s42"); !ok || k != (latKey{3, 1, 42}) {
		t.Fatalf("parseFlowID: got %+v ok=%v", k, ok)
	}
	if _, ok := parseFlowID("bogus"); ok {
		t.Fatal("parseFlowID accepted garbage")
	}
}
