package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rocc/internal/obs"
	"rocc/internal/obs/prov"
	"rocc/internal/report"
	"rocc/internal/stats"
)

// Offline latency decomposition: roccviz -lat replays an exported Chrome
// trace through the same stage state machine the live provenance engine
// runs (internal/obs/prov), so a waterfall can be recovered from a trace
// file long after the run — no re-simulation. The flow events WriteChrome
// emits carry everything the state machine needs: the "s" flow start is
// generation, pipe-put/pipe-get instants bound the pipe dwell,
// "sample-forwarded"/"sample-arrived" flow steps (with pd and hops args)
// bound the network and merge legs, and the delivered sample's "X" span
// (ts = generation, dur = latency) closes the path. Reconstruction is
// exact for every sample whose full path is in the trace; paths truncated
// by warmup removal are counted as incomplete and excluded.

// latEvent is the subset of a Chrome trace event the reconstruction
// reads. Args uses pointers so "present with value 0" is distinguishable
// from "absent".
type latEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	ID   string  `json:"id"`
	Args struct {
		Node *int `json:"node"`
		Proc *int `json:"proc"`
		Seq  *int `json:"seq"`
		Pd   *int `json:"pd"`
		Hops *int `json:"hops"`
	} `json:"args"`
}

// latKey is a sample's identity (Seq never resets, so it is unique).
type latKey struct{ node, proc, seq int }

// latRecord mirrors prov's in-flight record: the boundary instants and
// leg accumulators of one sample's path.
type latRecord struct {
	genT, putT, getT, maxPut, fwdT, lastT float64
	net, merge                            float64
	hops                                  int
	inTransit, hasGen, hasPut             bool
	hasGet, hasFwd                        bool
}

// latRecon accumulates the reconstruction: per-stage dwell samples (for
// exact sorted quantiles) plus path accounting.
type latRecon struct {
	dwells        [prov.NumStages][]float64
	sums          [prov.NumStages]float64
	delivered     int
	lost          int
	dropped       int
	dup           int
	incomplete    int
	maxCloseErrUS float64
}

func parseFlowID(id string) (latKey, bool) {
	var k latKey
	if _, err := fmt.Sscanf(id, "n%d.p%d.s%d", &k.node, &k.proc, &k.seq); err != nil {
		return latKey{}, false
	}
	return k, true
}

// reconstructLatency replays a Chrome trace through the provenance stage
// state machine. Events are processed in array order, which WriteChrome
// guarantees is simulation-event order.
func reconstructLatency(r io.Reader) (*latRecon, error) {
	var events []latEvent
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return nil, fmt.Errorf("not a trace-event JSON array: %w", err)
	}

	// Pass 1: recover batch membership. All hops==1 forward steps of one
	// message share (pd, ts); the latest pipe admission over the group is
	// the maxPut that splits pipe dwell into residency and wait proper.
	type groupKey struct {
		pd int
		ts float64
	}
	groups := map[groupKey][]latKey{}
	for _, e := range events {
		if e.Ph == "t" && e.Name == "sample-forwarded" &&
			e.Args.Hops != nil && *e.Args.Hops == 1 && e.Args.Pd != nil {
			if k, ok := parseFlowID(e.ID); ok {
				gk := groupKey{*e.Args.Pd, e.TS}
				groups[gk] = append(groups[gk], k)
			}
		}
	}

	// Pass 2: replay the state machine in event order.
	rc := &latRecon{}
	recs := map[latKey]*latRecord{}
	groupMax := map[groupKey]float64{}
	get := func(k latKey) *latRecord {
		if r, ok := recs[k]; ok {
			return r
		}
		r := &latRecord{}
		recs[k] = r
		return r
	}
	for _, e := range events {
		switch {
		case e.Ph == "s" && e.Cat == "sampleflow":
			k, ok := parseFlowID(e.ID)
			if !ok {
				continue
			}
			r := get(k)
			r.genT = e.TS
			r.hasGen = true
			if !r.hasPut { // pipe hooks fire before generation in the write path
				r.putT, r.maxPut = e.TS, e.TS
			}
		case e.Cat == "pipe" && e.Args.Node != nil && e.Args.Proc != nil && e.Args.Seq != nil:
			k := latKey{*e.Args.Node, *e.Args.Proc, *e.Args.Seq}
			switch e.Name {
			case "pipe-put":
				r := get(k)
				r.putT, r.maxPut, r.hasPut = e.TS, e.TS, true
			case "pipe-get":
				r := get(k)
				r.getT, r.hasGet = e.TS, true
			case "pipe-dropped":
				if _, ok := recs[k]; ok {
					delete(recs, k)
					rc.dropped++
				}
			}
		case e.Ph == "t" && e.Cat == "sampleflow" && e.Args.Hops != nil:
			k, ok := parseFlowID(e.ID)
			if !ok {
				continue
			}
			r, open := recs[k]
			if !open {
				continue
			}
			hops := *e.Args.Hops
			switch e.Name {
			case "sample-forwarded":
				if hops == 1 && e.Args.Pd != nil {
					gk := groupKey{*e.Args.Pd, e.TS}
					mp, seen := groupMax[gk]
					if !seen {
						for _, mk := range groups[gk] {
							if mr, ok := recs[mk]; ok && mr.putT > mp {
								mp = mr.putT
							}
						}
						groupMax[gk] = mp
					}
					if !r.hasGet {
						r.getT = e.TS
					}
					if !r.hasFwd { // first forward wins; retransmits re-occupy the net
						r.hasFwd = true
						r.fwdT = e.TS
						if mp > r.maxPut {
							r.maxPut = mp
						}
						r.lastT = e.TS
						r.hops = 1
						r.inTransit = true
					}
				} else if r.hasFwd && !r.inTransit && hops == r.hops+1 {
					r.merge += e.TS - r.lastT
					r.lastT = e.TS
					r.hops = hops
					r.inTransit = true
				}
			case "sample-arrived":
				if r.hasFwd && r.inTransit && hops == r.hops {
					r.net += e.TS - r.lastT
					r.lastT = e.TS
					r.inTransit = false
				}
			}
		case e.Ph == "X" && e.Cat == "sample":
			var proc, seq int
			if _, err := fmt.Sscanf(e.Name, "sample p%d #%d", &proc, &seq); err != nil {
				continue
			}
			k := latKey{e.PID - obs.ChromePIDSample, proc, seq}
			r, open := recs[k]
			if !open {
				rc.dup++ // injected duplicate: first delivery already closed it
				continue
			}
			delete(recs, k)
			if !r.hasGen {
				rc.incomplete++ // warmup-truncated path: not decomposable
				continue
			}
			rc.closeDelivered(r, e.TS+e.Dur, e.Dur)
		case e.Ph == "f" && e.Cat == "sampleflow":
			// A flow end with the record still open is a loss (delivered
			// paths were already closed by their "X" span just above).
			if k, ok := parseFlowID(e.ID); ok {
				if _, open := recs[k]; open {
					delete(recs, k)
					rc.lost++
				}
			}
		}
	}
	return rc, nil
}

// closeDelivered folds one delivered path into the six stages — the same
// telescoping decomposition prov.Engine.SampleDelivered applies, so the
// per-sample sum equals the recorded latency exactly.
func (rc *latRecon) closeDelivered(r *latRecord, devT, latencyUS float64) {
	if !r.hasFwd { // degenerate path: attribute everything to pipe-wait
		r.fwdT, r.getT, r.maxPut, r.lastT = devT, devT, r.putT, devT
	}
	r.net += devT - r.lastT

	var d [prov.NumStages]float64
	d[prov.StagePipeWait] = (r.putT - r.genT) + (r.getT - r.maxPut)
	d[prov.StageBatchResidency] = r.maxPut - r.putT
	d[prov.StageDaemonService] = r.fwdT - r.getT
	d[prov.StageNetworkTransit] = r.net
	d[prov.StageMerge] = r.merge
	d[prov.StageMainReceipt] = 0

	sum := 0.0
	for st, v := range d {
		sum += v
		if v < 0 {
			v = 0 // float cancellation residue at zero-width stages
		}
		rc.dwells[st] = append(rc.dwells[st], v)
		rc.sums[st] += v
	}
	if err := sum - latencyUS; err > rc.maxCloseErrUS || -err > rc.maxCloseErrUS {
		if err < 0 {
			err = -err
		}
		rc.maxCloseErrUS = err
	}
	rc.delivered++
}

// Rows summarizes the reconstruction as waterfall rows in stage order,
// with exact sorted quantiles over the per-sample dwells.
func (rc *latRecon) Rows() []report.StageRow {
	total := 0.0
	for _, s := range rc.sums {
		total += s
	}
	rows := make([]report.StageRow, 0, prov.NumStages)
	for st := prov.Stage(0); st < prov.NumStages; st++ {
		row := report.StageRow{Stage: st.String()}
		if xs := rc.dwells[st]; len(xs) > 0 {
			row.MeanUS = rc.sums[st] / float64(len(xs))
			row.P50US, _ = stats.Quantile(xs, 0.50)
			row.P95US, _ = stats.Quantile(xs, 0.95)
			row.P99US, _ = stats.Quantile(xs, 0.99)
		}
		if total > 0 {
			row.SharePct = rc.sums[st] / total * 100
		}
		rows = append(rows, row)
	}
	return rows
}

// runLat is the -lat entry point: reconstruct and render.
func runLat(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	rc, err := reconstructLatency(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rc.delivered == 0 {
		return fmt.Errorf("%s: no decomposable delivered samples in trace", path)
	}
	wf := report.Waterfall{
		Title: fmt.Sprintf("latency decomposition reconstructed from %s", path),
		Rows:  rc.Rows(),
	}
	if err := wf.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("%d delivered samples decomposed (%d lost, %d dropped, %d duplicate deliveries, %d incomplete); max closure error %.3g us\n",
		rc.delivered, rc.lost, rc.dropped, rc.dup, rc.incomplete, rc.maxCloseErrUS)
	return nil
}
