// Command roccxval runs the cross-validation dashboard: it evaluates the
// analytic model, the discrete-event simulation, and the paper's values
// over a shared scenario grid and reports the error surface — per-metric
// relative error, CI coverage, and worst-case divergence per
// architecture/policy cell.
//
// Usage:
//
//	roccxval [-grid paper|smoke|full] [-duration SEC] [-reps N]
//	         [-seed N] [-parallel N] [-json] [-out FILE]
//	roccxval -check XVAL_tolerance.json
//
// Output is deterministic: for a fixed seed the error surface is
// byte-identical at any -parallel setting. With -check, the run
// parameters come from the tolerance file and the exit status reports
// whether the analytic-vs-simulation error stays within the committed
// bounds.
package main

import (
	"flag"
	"fmt"
	"os"

	"rocc/internal/cli"
	"rocc/internal/scenario"
	"rocc/internal/xval"
)

func gridByName(name string) (scenario.Grid, error) {
	switch name {
	case "paper":
		return scenario.PaperGrid(), nil
	case "smoke":
		return scenario.SmokeGrid(), nil
	case "full":
		return scenario.FullGrid(), nil
	}
	return scenario.Grid{}, fmt.Errorf("unknown grid %q (want paper, smoke, or full)", name)
}

func main() {
	fs := flag.NewFlagSet("roccxval", flag.ExitOnError)
	grid := fs.String("grid", "paper", "scenario grid: paper, smoke, or full")
	duration := fs.Float64("duration", 10, "simulated seconds per replication")
	reps := fs.Int("reps", 3, "simulation replications per grid cell")
	check := fs.String("check", "", "tolerance file: run at its recorded parameters and fail if exceeded")
	jsonOut := cli.JSON(fs)
	outPath := cli.Out(fs)
	parallel := cli.Parallel(fs)
	seed := cli.Seed(fs)
	fs.Parse(os.Args[1:])

	opt := xval.DefaultOptions()
	opt.Seed = *seed
	opt.DurationUS = *duration * 1e6
	opt.Reps = *reps
	opt.Workers = *parallel

	var tol xval.Tolerance
	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			fatal(err)
		}
		tol, err = xval.LoadTolerance(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		// The gate reproduces the committed run exactly.
		*grid = tol.Grid
		opt.Seed = tol.Seed
		opt.DurationUS = tol.DurationSec * 1e6
		opt.Reps = tol.Reps
	}

	g, err := gridByName(*grid)
	if err != nil {
		fatal(err)
	}
	rep, err := xval.Run(g, xval.DefaultEvaluators(opt), opt)
	if err != nil {
		fatal(err)
	}

	w, err := cli.Output(*outPath)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		err = rep.WriteJSON(w)
	} else {
		err = rep.RenderText(w)
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}

	if *check != "" {
		if err := rep.Check(tol); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "roccxval: tolerance check passed (grid=%s backend=%s)\n",
			tol.Grid, tol.Backend)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roccxval:", err)
	os.Exit(1)
}
