// Command roccanalytic evaluates the operational-analysis equations
// (1)-(16) of Section 3 for one parameterization, or sweeps a parameter.
//
// Examples:
//
//	roccanalytic -case now -nodes 8 -sp 40
//	roccanalytic -case mpp-tree -nodes 256 -batch 32
//	roccanalytic -case smp -nodes 16 -procs 32 -pds 2 -sweep sp -from 1 -to 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rocc/internal/analytic"
	"rocc/internal/report"
)

func main() {
	var (
		kase  = flag.String("case", "now", "model case: now, smp, mpp-direct, mpp-tree")
		nodes = flag.Float64("nodes", 8, "number of nodes")
		procs = flag.Float64("procs", 1, "application processes per node (total for SMP)")
		pds   = flag.Float64("pds", 1, "Paradyn daemons (SMP)")
		spMS  = flag.Float64("sp", 40, "sampling period in milliseconds")
		batch = flag.Float64("batch", 1, "batch size (1 = CF)")
		sweep = flag.String("sweep", "", "sweep a parameter: sp, nodes, batch, procs, pds")
		from  = flag.Float64("from", 1, "sweep start")
		to    = flag.Float64("to", 64, "sweep end (doubling steps)")
	)
	flag.Parse()

	base := analytic.DefaultParams()
	base.Nodes = *nodes
	base.AppProcs = *procs
	base.Pds = *pds
	base.SamplingPeriod = *spMS * 1000
	base.BatchSize = *batch
	if err := base.Validate(); err != nil {
		fatal("%v", err)
	}

	eval := func(p analytic.Params) analytic.Metrics {
		switch strings.ToLower(*kase) {
		case "now":
			return p.NOW()
		case "smp":
			return p.SMP()
		case "mpp-direct":
			return p.MPPDirect()
		case "mpp-tree":
			return p.MPPTree()
		}
		fatal("unknown case %q", *kase)
		panic("unreachable")
	}

	if *sweep == "" {
		m := eval(base)
		t := report.NewTable(fmt.Sprintf("Operational analysis (%s)", *kase), "metric", "value")
		t.AddRow("lambda (messages/sec/node)", report.F(base.Lambda()*1e6))
		t.AddRow("Pd CPU utilization/node (%)", report.F(m.PdCPUUtil*100))
		t.AddRow("main Paradyn CPU utilization (%)", report.F(m.ParadynCPUUtil*100))
		t.AddRow("IS CPU utilization (%)", report.F(m.ISCPUUtil*100))
		t.AddRow("application CPU utilization/node (%)", report.F(m.AppCPUUtil*100))
		t.AddRow("IS network utilization (%)", report.F(m.PdNetUtil*100))
		t.AddRow("monitoring latency/sample (sec)", report.F(m.LatencyUS/1e6))
		if err := t.Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
		return
	}

	var xs []float64
	for x := *from; x <= *to; x *= 2 {
		xs = append(xs, x)
	}
	fig := report.NewFigure(fmt.Sprintf("Sweep of %s (%s case)", *sweep, *kase), *sweep,
		"PdCPU%% / Paradyn%% / App%% / latency_s", xs)
	series := map[string][]float64{"PdCPU%": nil, "Paradyn%": nil, "App%": nil, "latency_s": nil}
	for _, x := range xs {
		p := base
		switch strings.ToLower(*sweep) {
		case "sp":
			p.SamplingPeriod = x * 1000
		case "nodes":
			p.Nodes = x
		case "batch":
			p.BatchSize = x
		case "procs":
			p.AppProcs = x
		case "pds":
			p.Pds = x
		default:
			fatal("unknown sweep parameter %q", *sweep)
		}
		m := eval(p)
		series["PdCPU%"] = append(series["PdCPU%"], m.PdCPUUtil*100)
		series["Paradyn%"] = append(series["Paradyn%"], m.ParadynCPUUtil*100)
		series["App%"] = append(series["App%"], m.AppCPUUtil*100)
		series["latency_s"] = append(series["latency_s"], m.LatencyUS/1e6)
	}
	for _, name := range []string{"PdCPU%", "Paradyn%", "App%", "latency_s"} {
		if err := fig.Add(name, series[name]); err != nil {
			fatal("%v", err)
		}
	}
	if err := fig.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "roccanalytic: "+format+"\n", args...)
	os.Exit(1)
}
