// Command roccanalytic evaluates the operational-analysis equations
// (1)-(16) of Section 3 for one parameterization, or sweeps a parameter.
//
// Examples:
//
//	roccanalytic -case now -nodes 8 -sp 40
//	roccanalytic -case mpp-tree -nodes 256 -batch 32
//	roccanalytic -case smp -nodes 16 -procs 32 -pds 2 -sweep sp -from 1 -to 64
//	roccanalytic -case now -json -out metrics.json
//
// The closed form is deterministic, so the -seed and -parallel flags of
// the simulation commands do not apply here; -json and -out are spelled
// the same as everywhere else.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rocc/internal/analytic"
	"rocc/internal/cli"
	"rocc/internal/report"
	"rocc/internal/xval"
)

func main() {
	var (
		kase  = flag.String("case", "now", "model case: now, smp, mpp-direct, mpp-tree")
		nodes = flag.Float64("nodes", 8, "number of nodes")
		procs = flag.Float64("procs", 1, "application processes per node (total for SMP)")
		pds   = flag.Float64("pds", 1, "Paradyn daemons (SMP)")
		spMS  = flag.Float64("sp", 40, "sampling period in milliseconds")
		batch = flag.Float64("batch", 1, "batch size (1 = CF)")
		sweep = flag.String("sweep", "", "sweep a parameter: sp, nodes, batch, procs, pds")
		from  = flag.Float64("from", 1, "sweep start")
		to    = flag.Float64("to", 64, "sweep end (doubling steps)")

		jsonOut = cli.JSON(flag.CommandLine)
		outPath = cli.Out(flag.CommandLine)
	)
	flag.Parse()

	out, err := cli.Output(*outPath)
	if err != nil {
		fatal("%v", err)
	}
	defer out.Close()

	base := analytic.DefaultParams()
	base.Nodes = *nodes
	base.AppProcs = *procs
	base.Pds = *pds
	base.SamplingPeriod = *spMS * 1000
	base.BatchSize = *batch
	if err := base.Validate(); err != nil {
		fatal("%v", err)
	}

	eval := func(p analytic.Params) analytic.Metrics {
		switch strings.ToLower(*kase) {
		case "now":
			return p.NOW()
		case "smp":
			return p.SMP()
		case "mpp-direct":
			return p.MPPDirect()
		case "mpp-tree":
			return p.MPPTree()
		}
		fatal("unknown case %q", *kase)
		panic("unreachable")
	}

	if *sweep == "" {
		m := eval(base)
		if *jsonOut {
			writeJSON(out, struct {
				Case    string          `json:"case"`
				Params  analytic.Params `json:"params"`
				Metrics jsonMetrics     `json:"metrics"`
			}{*kase, base, metricsJSON(m)})
			return
		}
		t := report.NewTable(fmt.Sprintf("Operational analysis (%s)", *kase), "metric", "value")
		t.AddRow("lambda (messages/sec/node)", report.F(base.Lambda()*1e6))
		t.AddRow("Pd CPU utilization/node (%)", report.F(m.PdCPUUtil*100))
		t.AddRow("main Paradyn CPU utilization (%)", report.F(m.ParadynCPUUtil*100))
		t.AddRow("IS CPU utilization (%)", report.F(m.ISCPUUtil*100))
		t.AddRow("application CPU utilization/node (%)", report.F(m.AppCPUUtil*100))
		t.AddRow("IS network utilization (%)", report.F(m.PdNetUtil*100))
		t.AddRow("monitoring latency/sample (sec)", report.F(m.LatencyUS/1e6))
		if err := t.Render(out); err != nil {
			fatal("%v", err)
		}
		return
	}

	var xs []float64
	for x := *from; x <= *to; x *= 2 {
		xs = append(xs, x)
	}
	fig := report.NewFigure(fmt.Sprintf("Sweep of %s (%s case)", *sweep, *kase), *sweep,
		"PdCPU%% / Paradyn%% / App%% / latency_s", xs)
	series := map[string][]float64{"PdCPU%": nil, "Paradyn%": nil, "App%": nil, "latency_s": nil}
	for _, x := range xs {
		p := base
		switch strings.ToLower(*sweep) {
		case "sp":
			p.SamplingPeriod = x * 1000
		case "nodes":
			p.Nodes = x
		case "batch":
			p.BatchSize = x
		case "procs":
			p.AppProcs = x
		case "pds":
			p.Pds = x
		default:
			fatal("unknown sweep parameter %q", *sweep)
		}
		m := eval(p)
		series["PdCPU%"] = append(series["PdCPU%"], m.PdCPUUtil*100)
		series["Paradyn%"] = append(series["Paradyn%"], m.ParadynCPUUtil*100)
		series["App%"] = append(series["App%"], m.AppCPUUtil*100)
		series["latency_s"] = append(series["latency_s"], m.LatencyUS/1e6)
	}
	for _, name := range []string{"PdCPU%", "Paradyn%", "App%", "latency_s"} {
		if err := fig.Add(name, series[name]); err != nil {
			fatal("%v", err)
		}
	}
	if *jsonOut {
		js := make(map[string][]xval.OptFloat, len(series))
		for name, ys := range series {
			vs := make([]xval.OptFloat, len(ys))
			for i, y := range ys {
				vs[i] = xval.OptFloat(y)
			}
			js[name] = vs
		}
		writeJSON(out, struct {
			Case   string                     `json:"case"`
			Sweep  string                     `json:"sweep"`
			X      []float64                  `json:"x"`
			Series map[string][]xval.OptFloat `json:"series"`
		}{*kase, *sweep, xs, js})
		return
	}
	if err := fig.Render(out); err != nil {
		fatal("%v", err)
	}
}

// jsonMetrics mirrors analytic.Metrics with infinity-safe encoding: the
// closed-form latency diverges to +Inf at saturation, which plain JSON
// numbers cannot carry.
type jsonMetrics struct {
	PdCPUUtil      xval.OptFloat `json:"pd_cpu_util"`
	ParadynCPUUtil xval.OptFloat `json:"paradyn_cpu_util"`
	ISCPUUtil      xval.OptFloat `json:"is_cpu_util"`
	AppCPUUtil     xval.OptFloat `json:"app_cpu_util"`
	PdNetUtil      xval.OptFloat `json:"pd_net_util"`
	LatencyUS      xval.OptFloat `json:"latency_us"`
}

func metricsJSON(m analytic.Metrics) jsonMetrics {
	return jsonMetrics{
		PdCPUUtil:      xval.OptFloat(m.PdCPUUtil),
		ParadynCPUUtil: xval.OptFloat(m.ParadynCPUUtil),
		ISCPUUtil:      xval.OptFloat(m.ISCPUUtil),
		AppCPUUtil:     xval.OptFloat(m.AppCPUUtil),
		PdNetUtil:      xval.OptFloat(m.PdNetUtil),
		LatencyUS:      xval.OptFloat(m.LatencyUS),
	}
}

// writeJSON emits one indented JSON document.
func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "roccanalytic: "+format+"\n", args...)
	os.Exit(1)
}
