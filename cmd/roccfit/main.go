// Command roccfit runs the workload-characterization pipeline: it
// generates a synthetic AIX-like trace (or reads a real one) and produces
// the paper's Table 1 statistics, Figure 8 distribution fits, and Table 2
// model parameters.
//
// Examples:
//
//	roccfit -gen trace.txt -seconds 100          # write a synthetic trace
//	roccfit -in trace.txt                        # characterize it
//	roccfit -gen trace.bin -format binary
//	roccfit -seconds 100                         # generate + characterize in memory
package main

import (
	"flag"
	"fmt"
	"os"

	"rocc/internal/report"
	"rocc/internal/trace"
	"rocc/internal/workload"
)

func main() {
	var (
		gen     = flag.String("gen", "", "generate a synthetic trace to this file and exit")
		in      = flag.String("in", "", "characterize an existing trace file")
		format  = flag.String("format", "text", "trace file format: text or binary")
		seconds = flag.Float64("seconds", 100, "trace duration in seconds (generation)")
		seed    = flag.Uint64("seed", 1, "random seed (generation)")
		spMS    = flag.Float64("sp", 40, "sampling period in milliseconds (generation)")
	)
	flag.Parse()

	var recs []trace.Record
	var err error
	switch {
	case *in != "":
		recs, err = readTrace(*in, *format)
	default:
		recs, err = trace.Generate(trace.GenConfig{
			Seed:             *seed,
			DurationUS:       *seconds * 1e6,
			SamplingPeriodUS: *spMS * 1000,
			IncludeMainTrace: true,
		})
	}
	if err != nil {
		fatal("%v", err)
	}

	if *gen != "" {
		if err := writeTrace(*gen, *format, recs); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %d records to %s (%s format)\n", len(recs), *gen, *format)
		return
	}

	c, err := workload.Characterize(recs)
	if err != nil {
		fatal("%v", err)
	}

	t1 := report.NewTable("Table 1: occupancy statistics (microseconds)",
		"process", "resource", "n", "mean", "sd", "min", "max")
	for _, class := range c.Classes() {
		for _, res := range []trace.Resource{trace.CPU, trace.Network} {
			s, ok := c.Stats[workload.ClassResource{Class: class, Resource: res}]
			if !ok {
				continue
			}
			t1.AddRow(class, res.String(), fmt.Sprint(s.N),
				report.F(s.Mean), report.F(s.SD), report.F(s.Min), report.F(s.Max))
		}
	}
	if err := t1.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}

	t2 := report.NewTable("Table 2: fitted distributions (best of exponential/lognormal/weibull by K-S)",
		"process/resource", "best fit", "KS", "Q-Q r")
	for _, class := range c.Classes() {
		for _, res := range []trace.Resource{trace.CPU, trace.Network} {
			f, ok := c.Fits[workload.ClassResource{Class: class, Resource: res}]
			if !ok {
				continue
			}
			t2.AddRow(fmt.Sprintf("%s/%s", class, res), f.Best.Dist.String(),
				report.F(f.Best.KS), report.F(f.Best.QQvsR))
		}
	}
	if err := t2.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}
	if sp := c.SamplingPeriod(); sp > 0 {
		fmt.Printf("estimated sampling period: %.1f ms\n", sp/1000)
	}
}

func readTrace(path, format string) ([]trace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "binary" {
		return trace.ReadBinary(f)
	}
	return trace.ReadText(f)
}

func writeTrace(path, format string, recs []trace.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "binary" {
		return trace.WriteBinary(f, recs)
	}
	return trace.WriteText(f, recs)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "roccfit: "+format+"\n", args...)
	os.Exit(1)
}
