// Command rocctrace inspects AIX-like occupancy trace files: per-process
// totals (the execution statistics the Section 5 experiments extract from
// trace files) and windowed utilization timelines.
//
// Examples:
//
//	rocctrace -in trace.txt
//	rocctrace -in trace.txt -timeline 20
//	rocctrace -in trace.txt -json
//	rocctrace -in trace.bin -format binary -timeline 12 -resource net
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rocc/internal/report"
	"rocc/internal/trace"
)

func main() {
	var (
		in       = flag.String("in", "", "trace file to inspect (required)")
		format   = flag.String("format", "text", "trace format: text or binary")
		timeline = flag.Int("timeline", 0, "render an N-window utilization timeline")
		resource = flag.String("resource", "cpu", "timeline resource: cpu or net")
		asJSON   = flag.Bool("json", false, "emit the analysis as JSON instead of a table")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "rocctrace: -in required")
		os.Exit(2)
	}
	recs, err := readTrace(*in, *format)
	if err != nil {
		fatal("%v", err)
	}
	an, err := trace.Analyze(recs)
	if err != nil {
		fatal("%v", err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(an); err != nil {
			fatal("%v", err)
		}
		return
	}

	t := report.NewTable(
		fmt.Sprintf("%s: %d records over %.3f s", *in, an.Records, an.DurationUS/1e6),
		"process", "pids", "cpu time (s)", "cpu reqs", "cpu share", "net time (s)", "net reqs")
	for _, tot := range an.Totals {
		t.AddRow(tot.Class, fmt.Sprint(len(tot.PIDs)),
			report.F(tot.CPUTimeUS/1e6), fmt.Sprint(tot.CPUCount),
			report.Pct(an.CPUShare(tot.Class)*100),
			report.F(tot.NetTimeUS/1e6), fmt.Sprint(tot.NetCount))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}

	if *timeline > 0 {
		res, err := trace.ParseResource(strings.ToLower(*resource))
		if err != nil {
			fatal("%v", err)
		}
		classes, shares, err := trace.Timeline(recs, res, *timeline)
		if err != nil {
			fatal("%v", err)
		}
		width := an.DurationUS / float64(*timeline)
		xs := make([]float64, *timeline)
		for i := range xs {
			xs[i] = (float64(i) + 0.5) * width / 1e6
		}
		fig := report.NewFigure(
			fmt.Sprintf("%s occupancy share per %.3f-s window", res, width/1e6),
			"t_sec", "share", xs)
		for i, class := range classes {
			if err := fig.Add(class, shares[i]); err != nil {
				fatal("%v", err)
			}
		}
		if err := fig.Plot(os.Stdout, report.PlotOptions{}); err != nil {
			fatal("%v", err)
		}
	}
}

func readTrace(path, format string) ([]trace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "binary" {
		return trace.ReadBinary(f)
	}
	return trace.ReadText(f)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rocctrace: "+format+"\n", args...)
	os.Exit(1)
}
