// Command roccsim runs a single ROCC simulation scenario and prints its
// metrics. Every factor of the paper's experiments is a flag.
//
// Examples:
//
//	roccsim -arch now -nodes 8 -sp 40 -policy cf
//	roccsim -arch mpp -nodes 256 -policy bf -batch 32 -forward tree
//	roccsim -arch smp -nodes 16 -procs 32 -pds 2 -policy bf -batch 32
//	roccsim -nodes 8 -reps 5 -json -out run.json  # scenario + results as JSON
//	roccsim -nodes 8 -trace run.json            # Chrome/Perfetto trace
//	roccsim -nodes 8 -trace run.txt             # AIX-like text trace
//	roccsim -nodes 64 -duration 1000 -http :0   # live /metrics + pprof while it runs
//	roccsim -nodes 8 -policy bf -batch 64 -stages  # per-stage latency waterfall
//	roccsim -cpuprofile cpu.pprof -log - -loglevel debug
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"

	"rocc/internal/cli"
	"rocc/internal/core"
	"rocc/internal/des"
	"rocc/internal/forward"
	"rocc/internal/obs"
	"rocc/internal/obs/live"
	"rocc/internal/obs/prov"
	"rocc/internal/report"
	"rocc/internal/scenario"
	"rocc/internal/trace"
)

func main() {
	var (
		arch     = flag.String("arch", "now", "architecture: now, smp, mpp")
		nodes    = flag.Int("nodes", 8, "number of nodes (CPUs for SMP)")
		procs    = flag.Int("procs", 1, "application processes per node (total for SMP)")
		pds      = flag.Int("pds", 1, "Paradyn daemons (per node; total for SMP)")
		spMS     = flag.Float64("sp", 40, "sampling period in milliseconds (0 = uninstrumented)")
		policy   = cli.Policy(flag.CommandLine)
		batch    = flag.Int("batch", 32, "batch size under the BF policy")
		fwd      = flag.String("forward", "direct", "forwarding configuration: direct or tree (MPP)")
		dur      = flag.Float64("duration", 100, "simulated seconds")
		seed     = cli.Seed(flag.CommandLine)
		pipeCap  = flag.Int("pipe", 256, "pipe capacity in samples")
		quantum  = flag.Float64("quantum", 10000, "CPU scheduling quantum in microseconds")
		barrier  = flag.Float64("barrier", 0, "barrier period in milliseconds (0 = none)")
		commApp  = flag.Bool("comm", false, "communication-intensive application type")
		noBg     = flag.Bool("nobg", false, "disable PVM daemon and other background processes")
		reps     = flag.Int("reps", 1, "replications (CI printed when > 1)")
		parallel = cli.Parallel(flag.CommandLine)
		jsonOut  = cli.JSON(flag.CommandLine)
		outPath  = cli.Out(flag.CommandLine)
		warmup   = flag.Float64("warmup", 0, "warmup seconds discarded before measurement")
		traceOut = flag.String("trace", "", "export the run's trace (.json = Chrome/Perfetto, else AIX-like text)")
		stages   = flag.Bool("stages", false, "decompose sample latency per stage (waterfall; LatencyStages in -json)")
		httpAddr = cli.HTTP(flag.CommandLine)
		cfgIn    = flag.String("config", "", "load the scenario from a JSON file (other flags ignored)")
		cfgOut   = flag.String("save-config", "", "write the scenario as JSON and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator itself")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit")
		execTr   = flag.String("exectrace", "", "write a Go runtime execution trace")
		logDest  = flag.String("log", "", "write structured run logs to this file (\"-\" = stderr)")
		logLevel = flag.String("loglevel", "info", "log level: debug, info, warn, error")
		calName  = flag.String("calendar", "auto", "event calendar: auto, heap, bucket, list (results identical; perf only)")
	)
	flag.Parse()

	calKind, err := des.ParseCalendarKind(*calName)
	if err != nil {
		fatal("%v", err)
	}

	stopProf := startProfiling(*cpuProf, *execTr)
	logger := openLogger(*logDest, *logLevel)

	if *cfgIn != "" {
		runFromFile(*cfgIn, calKind, *reps, *parallel, *jsonOut, *outPath)
		stopProf()
		writeMemProfile(*memProf)
		return
	}

	cfg := core.DefaultConfig()
	switch strings.ToLower(*arch) {
	case "now":
		cfg.Arch = core.NOW
	case "smp":
		cfg.Arch = core.SMP
	case "mpp":
		cfg.Arch = core.MPP
	default:
		fatal("unknown architecture %q", *arch)
	}
	cfg.Nodes = *nodes
	cfg.AppProcs = *procs
	cfg.Pds = *pds
	cfg.SamplingPeriod = *spMS * 1000
	policy.Apply(&cfg.Policy, &cfg.BatchSize, &cfg.Strategy, *batch)
	fwdCfg, err := forward.ParseConfig(*fwd)
	if err != nil {
		fatal("%v", err)
	}
	cfg.Forwarding = fwdCfg
	cfg.Duration = *dur * 1e6
	cfg.Seed = *seed
	cfg.PipeCapacity = *pipeCap
	cfg.Quantum = *quantum
	cfg.BarrierPeriod = *barrier * 1000
	cfg.Background = !*noBg
	cfg.Warmup = *warmup * 1e6
	cfg.Calendar = calKind
	if *commApp {
		cfg.Workload = core.CommIntensive.Apply(core.DefaultWorkload())
	}

	if *cfgOut != "" {
		f, err := os.Create(*cfgOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := scenario.Save(f, scenario.FromConfig(cfg)); err != nil {
			f.Close()
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote scenario to %s\n", *cfgOut)
		return
	}

	var res core.Result
	var rep core.Replicated
	if *traceOut != "" || *httpAddr != "" || *stages {
		// Tracing, live monitoring, and stage decomposition require direct
		// model access; single run with the full observability layer (all
		// CPUs + sample lifecycle + metrics).
		m, err := core.New(cfg)
		if err != nil {
			fatal("%v", err)
		}
		c, err := m.EnableObservability(core.ObsOptions{Trace: true, Metrics: true, Provenance: *stages})
		if err != nil {
			fatal("%v", err)
		}
		if *httpAddr != "" {
			// The run's counters, histogram, and sampler series are
			// race-safe by construction, so scraping mid-run is sound.
			srv := live.NewServer(nil)
			srv.Exporter().SetRun(c.Metrics)
			if eng := m.Provenance(); eng != nil {
				for st := prov.Stage(0); st < prov.NumStages; st++ {
					srv.Exporter().AddHistogram(eng.Histogram(st),
						"per-sample dwell in stage "+st.String())
				}
			}
			addr, err := srv.Start(*httpAddr)
			if err != nil {
				fatal("%v", err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "roccsim: monitoring on http://%s (/metrics /healthz /debug/pprof/)\n", addr)
		}
		logger.SetClock(func() float64 { return float64(m.Sim.Now()) })
		logger.Info("run started", "arch", cfg.Arch.String(), "nodes", cfg.Nodes,
			"policy", cfg.Policy.String(), "duration_sec", cfg.Duration/1e6, "seed", cfg.Seed)
		res = m.Run()
		logger.Info("run finished",
			"generated", c.Metrics.Generated.Value(),
			"delivered", c.Metrics.Delivered.Value(),
			"dropped", c.Metrics.Dropped.Value(),
			"events", c.Metrics.Events.Value())
		rep = core.Replicated{Results: []core.Result{res}}
		if *traceOut != "" {
			if err := writeTrace(*traceOut, c); err != nil {
				fatal("writing trace: %v", err)
			}
		}
		*reps = 1
	} else {
		logger.Info("run started", "arch", cfg.Arch.String(), "nodes", cfg.Nodes,
			"policy", cfg.Policy.String(), "duration_sec", cfg.Duration/1e6,
			"seed", cfg.Seed, "reps", *reps)
		var err error
		rep, err = core.RunReplicationsParallel(cfg, *reps, *parallel)
		if err != nil {
			fatal("%v", err)
		}
		res = rep.Results[0]
		logger.Info("run finished", "generated", res.SamplesGenerated, "delivered", res.SamplesReceived)
	}

	emitResult(cfg, rep, *reps, *jsonOut, *outPath)
	stopProf()
	writeMemProfile(*memProf)
}

// emitResult writes the run's metrics to the -out destination: a text
// table, or with -json a machine-readable {scenario, results} record.
func emitResult(cfg core.Config, rep core.Replicated, reps int, asJSON bool, outPath string) {
	w, err := cli.Output(outPath)
	if err != nil {
		fatal("%v", err)
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		err = enc.Encode(struct {
			Scenario scenario.Spec `json:"scenario"`
			Results  []core.Result `json:"results"`
		}{scenario.FromConfig(cfg), rep.Results})
	} else {
		err = printResult(w, cfg, rep, reps)
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal("%v", err)
	}
}

// writeTrace exports the collected trace: Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing) when the path ends in .json, the AIX-like
// text format (readable by rocctrace) otherwise.
func writeTrace(path string, c *obs.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		if err := c.Sink.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace (%d spans + %d events) to %s\n",
			len(c.Sink.Spans()), len(c.Sink.Events()), path)
		return nil
	}
	recs := c.Sink.TraceRecords()
	if err := trace.WriteText(f, recs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d occupancy records to %s\n", len(recs), path)
	return nil
}

// startProfiling begins the requested runtime profiles and returns a stop
// function (a no-op when no profiling flags were given).
func startProfiling(cpu, exec string) func() {
	var stops []func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("%v", err)
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if exec != "" {
		f, err := os.Create(exec)
		if err != nil {
			fatal("%v", err)
		}
		if err := rtrace.Start(f); err != nil {
			fatal("%v", err)
		}
		stops = append(stops, func() { rtrace.Stop(); f.Close() })
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
}

// writeMemProfile dumps a heap profile after a GC, if requested.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		fatal("%v", err)
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}
}

// openLogger builds the structured run logger; nil (safe to call) when -log
// was not given.
func openLogger(dest, level string) *obs.Logger {
	if dest == "" {
		return nil
	}
	lv, err := obs.ParseLevel(level)
	if err != nil {
		fatal("%v", err)
	}
	if dest == "-" {
		return obs.NewLogger(os.Stderr, lv)
	}
	f, err := os.Create(dest)
	if err != nil {
		fatal("%v", err)
	}
	return obs.NewLogger(f, lv)
}

// policyLabel renders the forwarding policy for titles: the strategy's
// -policy spec when one is wired, the legacy "CF(batch 1)"/"BF(batch n)"
// form otherwise (so legacy output is unchanged).
func policyLabel(cfg core.Config) string {
	if cfg.Strategy != nil {
		return cfg.Strategy.String()
	}
	return fmt.Sprintf("%s(batch %d)", cfg.Policy, cfg.BatchSize)
}

// printResult renders the metric table for a (possibly replicated) run.
func printResult(w io.Writer, cfg core.Config, rep core.Replicated, reps int) error {
	res := rep.Results[0]
	t := report.NewTable(fmt.Sprintf("ROCC simulation: %s, %d nodes, SP=%.1f ms, %s, %s forwarding",
		cfg.Arch, cfg.Nodes, cfg.SamplingPeriod/1000, policyLabel(cfg), cfg.Forwarding),
		"metric", "value")
	row := func(name string, m core.Metric) {
		if reps > 1 {
			ci := rep.CI(m, 0.90)
			t.AddRow(name, fmt.Sprintf("%s ± %s (90%% CI)", report.F(ci.Mean), report.F(ci.HalfWidth)))
		} else {
			t.AddRow(name, report.F(m(res)))
		}
	}
	row("Pd CPU time/node (sec)", core.MetricPdCPUTime)
	row("Pd CPU utilization/node (%)", core.MetricPdCPUUtil)
	row("main Paradyn CPU time (sec)", core.MetricMainCPUTime)
	row("main Paradyn CPU utilization (%)", core.MetricMainCPUUtil)
	row("IS CPU utilization/node (%)", core.MetricISCPUUtil)
	row("application CPU utilization/node (%)", core.MetricAppCPUUtil)
	row("monitoring latency/sample (sec)", core.MetricLatency)
	if res.MonitoringLatencyP50Sec > 0 {
		// Histogram quantiles exist only when the observability layer ran.
		t.AddRow("monitoring latency P50 (sec)", report.F(res.MonitoringLatencyP50Sec))
		t.AddRow("monitoring latency P99 (sec)", report.F(res.MonitoringLatencyP99Sec))
	}
	row("monitoring latency P95 (sec)", core.MetricLatencyP95)
	row("monitoring latency max (sec)", core.MetricLatencyMax)
	row("forwarding latency/sample (sec)", core.MetricFwdLatency)
	row("throughput at main (samples/sec)", core.MetricThroughput)
	row("Pd forwarding throughput (samples/sec)", core.MetricPdThroughput)
	row("network utilization (%)", core.MetricNetUtil)
	t.AddRow("samples generated", fmt.Sprint(res.SamplesGenerated))
	t.AddRow("samples received", fmt.Sprint(res.SamplesReceived))
	t.AddRow("messages merged (tree)", fmt.Sprint(res.MessagesMerged))
	t.AddRow("blocked pipe writes", fmt.Sprint(res.BlockedPuts))
	if res.AdaptiveFinalBatchMean > 0 {
		t.AddRow("adaptive batch target (final mean)", report.F(res.AdaptiveFinalBatchMean))
		t.AddRow("adaptive batch target (final min-max)",
			fmt.Sprintf("%d-%d", res.AdaptiveFinalBatchMin, res.AdaptiveFinalBatchMax))
		t.AddRow("adaptive adjustments", fmt.Sprint(res.AdaptiveAdjustments))
	}
	if res.BarrierReleases > 0 {
		t.AddRow("barrier releases", fmt.Sprint(res.BarrierReleases))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if len(res.LatencyStages) > 0 {
		wf := report.Waterfall{Title: "latency decomposition (per-stage dwell)"}
		for _, s := range res.LatencyStages {
			wf.Rows = append(wf.Rows, report.StageRow{
				Stage:    s.Stage,
				MeanUS:   s.MeanSec * 1e6,
				P50US:    s.P50Sec * 1e6,
				P95US:    s.P95Sec * 1e6,
				P99US:    s.P99Sec * 1e6,
				SharePct: s.SharePct,
			})
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		return wf.Render(w)
	}
	return nil
}

// runFromFile loads a JSON scenario, runs it, and prints the metrics.
// The calendar kind comes from the -calendar flag: scenarios never carry
// it (it cannot change results), so the CLI choice applies here too.
func runFromFile(path string, cal des.CalendarKind, reps, parallel int, asJSON bool, outPath string) {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	spec, err := scenario.Load(f)
	f.Close()
	if err != nil {
		fatal("%v", err)
	}
	cfg, err := spec.Config()
	if err != nil {
		fatal("%v", err)
	}
	cfg.Calendar = cal
	rep, err := core.RunReplicationsParallel(cfg, reps, parallel)
	if err != nil {
		fatal("%v", err)
	}
	emitResult(cfg, rep, reps, asJSON, outPath)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "roccsim: "+format+"\n", args...)
	os.Exit(1)
}
