// Command roccsim runs a single ROCC simulation scenario and prints its
// metrics. Every factor of the paper's experiments is a flag.
//
// Examples:
//
//	roccsim -arch now -nodes 8 -sp 40 -policy cf
//	roccsim -arch mpp -nodes 256 -policy bf -batch 32 -forward tree
//	roccsim -arch smp -nodes 16 -procs 32 -pds 2 -policy bf -batch 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/report"
	"rocc/internal/scenario"
	"rocc/internal/trace"
)

func main() {
	var (
		arch     = flag.String("arch", "now", "architecture: now, smp, mpp")
		nodes    = flag.Int("nodes", 8, "number of nodes (CPUs for SMP)")
		procs    = flag.Int("procs", 1, "application processes per node (total for SMP)")
		pds      = flag.Int("pds", 1, "Paradyn daemons (per node; total for SMP)")
		spMS     = flag.Float64("sp", 40, "sampling period in milliseconds (0 = uninstrumented)")
		policy   = flag.String("policy", "cf", "forwarding policy: cf or bf")
		batch    = flag.Int("batch", 32, "batch size under the BF policy")
		fwd      = flag.String("forward", "direct", "forwarding configuration: direct or tree (MPP)")
		dur      = flag.Float64("duration", 100, "simulated seconds")
		seed     = flag.Uint64("seed", 1, "random seed")
		pipeCap  = flag.Int("pipe", 256, "pipe capacity in samples")
		quantum  = flag.Float64("quantum", 10000, "CPU scheduling quantum in microseconds")
		barrier  = flag.Float64("barrier", 0, "barrier period in milliseconds (0 = none)")
		commApp  = flag.Bool("comm", false, "communication-intensive application type")
		noBg     = flag.Bool("nobg", false, "disable PVM daemon and other background processes")
		reps     = flag.Int("reps", 1, "replications (CI printed when > 1)")
		parallel = flag.Int("parallel", 0, "replication worker pool size (0 = one per core, 1 = serial)")
		warmup   = flag.Float64("warmup", 0, "warmup seconds discarded before measurement")
		traceOut = flag.String("trace", "", "record node 0's occupancy to this AIX-like trace file")
		cfgIn    = flag.String("config", "", "load the scenario from a JSON file (other flags ignored)")
		cfgOut   = flag.String("save-config", "", "write the scenario as JSON and exit")
	)
	flag.Parse()

	if *cfgIn != "" {
		runFromFile(*cfgIn, *reps, *parallel)
		return
	}

	cfg := core.DefaultConfig()
	switch strings.ToLower(*arch) {
	case "now":
		cfg.Arch = core.NOW
	case "smp":
		cfg.Arch = core.SMP
	case "mpp":
		cfg.Arch = core.MPP
	default:
		fatal("unknown architecture %q", *arch)
	}
	cfg.Nodes = *nodes
	cfg.AppProcs = *procs
	cfg.Pds = *pds
	cfg.SamplingPeriod = *spMS * 1000
	switch strings.ToLower(*policy) {
	case "cf":
		cfg.Policy = forward.CF
	case "bf":
		cfg.Policy = forward.BF
		cfg.BatchSize = *batch
	default:
		fatal("unknown policy %q", *policy)
	}
	switch strings.ToLower(*fwd) {
	case "direct":
		cfg.Forwarding = forward.Direct
	case "tree":
		cfg.Forwarding = forward.Tree
	default:
		fatal("unknown forwarding %q", *fwd)
	}
	cfg.Duration = *dur * 1e6
	cfg.Seed = *seed
	cfg.PipeCapacity = *pipeCap
	cfg.Quantum = *quantum
	cfg.BarrierPeriod = *barrier * 1000
	cfg.Background = !*noBg
	cfg.Warmup = *warmup * 1e6
	if *commApp {
		cfg.Workload = core.CommIntensive.Apply(core.DefaultWorkload())
	}

	if *cfgOut != "" {
		f, err := os.Create(*cfgOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := scenario.Save(f, scenario.FromConfig(cfg)); err != nil {
			f.Close()
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote scenario to %s\n", *cfgOut)
		return
	}

	var res core.Result
	var rep core.Replicated
	if *traceOut != "" {
		// Trace recording requires direct model access; single run.
		m, err := core.New(cfg)
		if err != nil {
			fatal("%v", err)
		}
		rec, err := m.EnableTraceRecording(0)
		if err != nil {
			fatal("%v", err)
		}
		res = m.Run()
		rep = core.Replicated{Results: []core.Result{res}}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := trace.WriteText(f, rec.Records()); err != nil {
			f.Close()
			fatal("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("recorded %d occupancy records to %s\n", rec.Len(), *traceOut)
		*reps = 1
	} else {
		var err error
		rep, err = core.RunReplicationsParallel(cfg, *reps, *parallel)
		if err != nil {
			fatal("%v", err)
		}
		res = rep.Results[0]
	}

	printResult(cfg, rep, *reps)
}

// printResult renders the metric table for a (possibly replicated) run.
func printResult(cfg core.Config, rep core.Replicated, reps int) {
	res := rep.Results[0]
	t := report.NewTable(fmt.Sprintf("ROCC simulation: %s, %d nodes, SP=%.1f ms, %s(batch %d), %s forwarding",
		cfg.Arch, cfg.Nodes, cfg.SamplingPeriod/1000, cfg.Policy, cfg.BatchSize, cfg.Forwarding),
		"metric", "value")
	row := func(name string, m core.Metric) {
		if reps > 1 {
			ci := rep.CI(m, 0.90)
			t.AddRow(name, fmt.Sprintf("%s ± %s (90%% CI)", report.F(ci.Mean), report.F(ci.HalfWidth)))
		} else {
			t.AddRow(name, report.F(m(res)))
		}
	}
	row("Pd CPU time/node (sec)", core.MetricPdCPUTime)
	row("Pd CPU utilization/node (%)", core.MetricPdCPUUtil)
	row("main Paradyn CPU time (sec)", core.MetricMainCPUTime)
	row("main Paradyn CPU utilization (%)", core.MetricMainCPUUtil)
	row("IS CPU utilization/node (%)", core.MetricISCPUUtil)
	row("application CPU utilization/node (%)", core.MetricAppCPUUtil)
	row("monitoring latency/sample (sec)", core.MetricLatency)
	row("monitoring latency P95 (sec)", core.MetricLatencyP95)
	row("monitoring latency max (sec)", core.MetricLatencyMax)
	row("forwarding latency/sample (sec)", core.MetricFwdLatency)
	row("throughput at main (samples/sec)", core.MetricThroughput)
	row("Pd forwarding throughput (samples/sec)", core.MetricPdThroughput)
	row("network utilization (%)", core.MetricNetUtil)
	t.AddRow("samples generated", fmt.Sprint(res.SamplesGenerated))
	t.AddRow("samples received", fmt.Sprint(res.SamplesReceived))
	t.AddRow("messages merged (tree)", fmt.Sprint(res.MessagesMerged))
	t.AddRow("blocked pipe writes", fmt.Sprint(res.BlockedPuts))
	if res.BarrierReleases > 0 {
		t.AddRow("barrier releases", fmt.Sprint(res.BarrierReleases))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}
}

// runFromFile loads a JSON scenario, runs it, and prints the metrics.
func runFromFile(path string, reps, parallel int) {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	spec, err := scenario.Load(f)
	f.Close()
	if err != nil {
		fatal("%v", err)
	}
	cfg, err := spec.Config()
	if err != nil {
		fatal("%v", err)
	}
	rep, err := core.RunReplicationsParallel(cfg, reps, parallel)
	if err != nil {
		fatal("%v", err)
	}
	printResult(cfg, rep, reps)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "roccsim: "+format+"\n", args...)
	os.Exit(1)
}
