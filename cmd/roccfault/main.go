// Command roccfault sweeps deterministic fault injection over the ROCC
// model and prints a survivability table: for every architecture (NOW,
// SMP, MPP) × forwarding policy (CF, BF) × configuration (direct, tree)
// and every fault-intensity level, it reports how much instrumentation
// data survives to the main Paradyn process without resilience and with
// ack/retransmission plus graceful degradation.
//
// Runs are exactly reproducible: two invocations with the same flags and
// seed emit byte-identical tables.
//
// Examples:
//
//	roccfault
//	roccfault -loss 2,10,20 -duration 20
//	roccfault -loss 5 -crash-mtbf 2000 -squeeze-mtbf 5000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rocc/internal/cli"
	"rocc/internal/experiments"
)

func main() {
	var (
		loss    = flag.String("loss", "1,5,10", "comma-separated loss intensities in percent")
		dupFrac = flag.Float64("dup", 0.5, "duplication probability as a fraction of the loss probability")
		crash   = flag.Float64("crash-mtbf", 0, "daemon crash mean up-time in milliseconds (0 = no crashes)")
		squeeze = flag.Float64("squeeze-mtbf", 0, "pipe capacity-squeeze mean interval in milliseconds (0 = none)")
		nodes   = flag.Int("nodes", 8, "number of nodes (CPUs for SMP)")
		spMS    = flag.Float64("sp", 20, "sampling period in milliseconds")
		batch   = flag.Int("batch", 16, "batch size under the BF policy")
		policy  = cli.Policy(flag.CommandLine)
		dur     = flag.Float64("duration", 10, "simulated seconds per run")
		seed    = flag.Uint64("seed", 1, "random seed (model and fault schedules)")
	)
	flag.Parse()

	levels, err := parseLevels(*loss)
	if err != nil {
		fatal("bad -loss: %v", err)
	}

	opt := experiments.Default()
	opt.Seed = *seed
	opt.DurationUS = *dur * 1e6

	sw := experiments.FaultSweepOptions{
		LossLevels:       levels,
		DupFraction:      *dupFrac,
		CrashMTBFUS:      *crash * 1000,
		SqueezeMTBFUS:    *squeeze * 1000,
		SamplingPeriodUS: *spMS * 1000,
		Nodes:            *nodes,
		BatchSize:        *batch,
	}
	if policy.Given() {
		spec := policy.Spec()
		sw.Policy = &spec
	}
	if err := experiments.FaultSweep(os.Stdout, opt, sw); err != nil {
		fatal("%v", err)
	}
}

// parseLevels converts "1,5,10" (percent) into probabilities.
func parseLevels(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 100 {
			return nil, fmt.Errorf("loss %v%% out of [0,100]", v)
		}
		out = append(out, v/100)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no levels given")
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "roccfault: "+format+"\n", args...)
	os.Exit(1)
}
