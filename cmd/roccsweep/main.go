// Command roccsweep runs replication sweeps of the scenario grids
// through the fault-tolerant distributed engine (internal/dist).
//
// Usage:
//
//	roccsweep -grid smoke -reps 3 -out results.json        # this host only
//	roccsweep -grid table4 -reps 50 -workers 4             # 4 local worker processes
//	roccsweep -grid full -hosts big1,big2,big3             # ssh fleet
//	roccsweep -grid paper -workers 8 -journal sweep.journal
//	roccsweep -grid paper -workers 8 -journal sweep.journal -resume
//	roccsweep -grid paper -workers 8 -http :9090            # live /metrics /healthz /progress /debug/pprof
//	roccsweep -grid paper -workers 8 -trace timeline.json   # merged per-worker Chrome timeline
//	roccsweep -worker                                       # worker mode (started by a driver)
//
// Workers are plain roccsweep processes in -worker mode: the driver
// starts them itself (locally, or via ssh for -hosts) and speaks
// length-prefixed JSON over their stdin/stdout — no daemon, port, or
// shared filesystem. Every model seed is pre-derived from -seed, so the
// merged JSON is byte-identical at any -workers/-hosts topology, under
// worker crashes and hangs, and across -resume — and identical to the
// -workers 0 run on a single host.
//
// -chaos injects deterministic worker faults (for testing the engine
// itself): e.g. -chaos crash=0.25,hang=0.1,start=0.2,seed=7.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rocc/internal/cli"
	"rocc/internal/dist"
	"rocc/internal/obs"
	"rocc/internal/obs/live"
)

func main() {
	var (
		worker     = flag.Bool("worker", false, "run as a worker process: serve shard requests on stdin/stdout")
		grid       = flag.String("grid", "smoke", "scenario grid: smoke, paper, full, table4, table5, or table6")
		reps       = flag.Int("reps", 3, "replications per grid cell (paper: 50)")
		duration   = flag.Float64("duration", 10, "simulated seconds per run")
		workers    = flag.Int("workers", 0, "local worker processes (0 = run in-process with -parallel)")
		hosts      = flag.String("hosts", "", "comma-separated ssh hosts to run workers on")
		remoteCmd  = flag.String("remote-cmd", "", "worker command on -hosts (default \"roccsweep -worker\")")
		shard      = flag.Int("shard", 1, "jobs per shard (the unit of dispatch, retry, and checkpointing)")
		retries    = flag.Int("retries", 3, "failed attempts per shard before it falls back to local execution")
		deadline   = flag.Duration("deadline", 2*time.Minute, "per-shard deadline before the first shard completes")
		journal    = flag.String("journal", "", "checkpoint completed shards to this file")
		resume     = flag.Bool("resume", false, "resume from -journal, recomputing only incomplete shards")
		noFallback = flag.Bool("no-fallback", false, "fail instead of degrading to local execution when workers are lost")
		chaos      = flag.String("chaos", "", "inject worker faults, e.g. crash=0.25,hang=0.1,start=0.2,seed=7")
		quiet      = flag.Bool("quiet", false, "suppress the fault-handling summary on stderr")
		traceOut   = flag.String("trace", "", "write the merged sweep timeline (per-worker dispatch/run/retry spans) as Chrome trace JSON")
		httpAddr   = cli.HTTP(flag.CommandLine)
		seed       = cli.Seed(flag.CommandLine)
		parallel   = cli.Parallel(flag.CommandLine)
		outPath    = cli.Out(flag.CommandLine)
	)
	flag.Parse()

	if *worker {
		if err := dist.ServeWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "roccsweep worker:", err)
			os.Exit(1)
		}
		return
	}

	runners := make([]dist.Runner, 0, *workers)
	for _, r := range dist.LocalRunners(*workers) {
		runners = append(runners, r)
	}
	for _, h := range strings.Split(*hosts, ",") {
		if h = strings.TrimSpace(h); h != "" {
			runners = append(runners, dist.SSHRunner{Host: h, Command: *remoteCmd})
		}
	}
	if *chaos != "" {
		spec, err := parseChaos(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roccsweep: -chaos:", err)
			os.Exit(2)
		}
		for i, r := range runners {
			runners[i] = &dist.Chaos{
				Inner:     r,
				Seed:      spec.seed + uint64(i),
				Crash:     spec.crash,
				Hang:      spec.hang,
				StartFail: spec.start,
			}
		}
	}

	metrics := obs.NewSweepMetrics()
	var (
		monitor  *dist.Monitor
		recorder *dist.TraceRecorder
	)
	if *httpAddr != "" {
		monitor = dist.NewMonitor()
		srv := live.NewServer(nil)
		srv.Exporter().SetSweep(metrics)
		srv.SetProgress(func() any { return monitor.Snapshot() })
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roccsweep:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "roccsweep: monitoring on http://%s (/metrics /healthz /progress /debug/pprof/)\n", addr)
	}
	if *traceOut != "" {
		recorder = dist.NewTraceRecorder()
	}
	opt := dist.SweepOptions{
		Grid:        *grid,
		Reps:        *reps,
		DurationSec: *duration,
		Seed:        *seed,
		Dist: dist.Options{
			Runners:         runners,
			ShardSize:       *shard,
			LocalParallel:   *parallel,
			MaxShardRetries: *retries,
			InitialDeadline: *deadline,
			NoLocalFallback: *noFallback,
			Journal:         *journal,
			Resume:          *resume,
			Seed:            *seed,
			Log:             os.Stderr,
			Metrics:         metrics,
			Monitor:         monitor,
			Trace:           recorder,
		},
	}

	rep, err := dist.Sweep(context.Background(), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roccsweep:", err)
		os.Exit(1)
	}

	if recorder != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roccsweep:", err)
			os.Exit(1)
		}
		if err := recorder.WriteChrome(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "roccsweep: writing trace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "roccsweep:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "roccsweep: wrote sweep timeline (%d events) to %s\n", recorder.Len(), *traceOut)
	}

	out, err := cli.Output(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roccsweep:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "roccsweep:", err)
		os.Exit(1)
	}
	if err := out.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "roccsweep:", err)
		os.Exit(1)
	}

	if !*quiet && len(runners) > 0 {
		var b strings.Builder
		for i, c := range metrics.Counters() {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%d", c.Name, c.Value())
		}
		fmt.Fprintln(os.Stderr, "roccsweep:", b.String())
	}
}

// chaosSpec is the parsed -chaos flag.
type chaosSpec struct {
	seed               uint64
	crash, hang, start float64
}

// parseChaos decodes "crash=0.25,hang=0.1,start=0.2,seed=7".
func parseChaos(s string) (chaosSpec, error) {
	var c chaosSpec
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return c, fmt.Errorf("want key=value, got %q", kv)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return c, fmt.Errorf("seed: %v", err)
			}
			c.seed = n
		case "crash", "hang", "start":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return c, fmt.Errorf("%s: want a probability in [0,1], got %q", k, v)
			}
			switch k {
			case "crash":
				c.crash = p
			case "hang":
				c.hang = p
			case "start":
				c.start = p
			}
		default:
			return c, fmt.Errorf("unknown key %q (want crash, hang, start, seed)", k)
		}
	}
	return c, nil
}
