// Command paradyn runs the real measurement testbed of Section 5: an
// instrumented NAS-like kernel forwards samples through a daemon over
// loopback TCP to a collector, under the CF or BF policy, and reports the
// measured direct overheads.
//
// Examples:
//
//	paradyn -kernel bt -policy cf -sp 10ms -duration 5s
//	paradyn -kernel is -policy bf -batch 32 -sp 10ms -duration 5s
//	paradyn -compare -duration 2s     # CF vs BF side by side
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rocc/internal/forward"
	"rocc/internal/report"
	"rocc/internal/testbed"
)

func main() {
	var (
		kernel   = flag.String("kernel", "bt", "application kernel: bt (pvmbt) or is (pvmis)")
		size     = flag.Int("size", 0, "kernel size (0 = default)")
		policy   = flag.String("policy", "cf", "forwarding policy: cf or bf")
		batch    = flag.Int("batch", 32, "batch size under bf")
		sp       = flag.Duration("sp", 10*time.Millisecond, "sampling period")
		duration = flag.Duration("duration", 2*time.Second, "run duration")
		pipeCap  = flag.Int("pipe", 256, "pipe capacity (samples)")
		seed     = flag.Uint64("seed", 1, "kernel seed")
		compare  = flag.Bool("compare", false, "run CF and BF back to back and report the reduction")
		nodes    = flag.Int("nodes", 1, "number of nodes (app+daemon pairs); >1 runs the cluster testbed")
		tree     = flag.Bool("tree", false, "route cluster traffic through a binary tree of relays")
	)
	flag.Parse()

	if *nodes > 1 || *tree {
		runCluster(*nodes, *kernel, *size, *policy, *batch, *sp, *duration, *pipeCap, *seed, *tree)
		return
	}

	mkCfg := func(p forward.Policy) testbed.ExpConfig {
		return testbed.ExpConfig{
			Kernel:         *kernel,
			KernelSize:     *size,
			Policy:         p,
			BatchSize:      *batch,
			SamplingPeriod: *sp,
			Duration:       *duration,
			PipeCapacity:   *pipeCap,
			Seed:           *seed,
		}
	}

	if *compare {
		cf, err := testbed.Run(mkCfg(forward.CF))
		if err != nil {
			fatal("%v", err)
		}
		bf, err := testbed.Run(mkCfg(forward.BF))
		if err != nil {
			fatal("%v", err)
		}
		t := report.NewTable(fmt.Sprintf("CF vs BF on %s (SP=%v, batch=%d, %v run)", *kernel, *sp, *batch, *duration),
			"metric", "CF", "BF")
		t.AddRow("daemon CPU time (sec)", report.F(cf.Daemon.BusySec), report.F(bf.Daemon.BusySec))
		t.AddRow("main CPU time (sec)", report.F(cf.Collector.BusySec), report.F(bf.Collector.BusySec))
		t.AddRow("write syscalls", fmt.Sprint(cf.Daemon.Writes), fmt.Sprint(bf.Daemon.Writes))
		t.AddRow("samples received", fmt.Sprint(cf.Collector.Samples), fmt.Sprint(bf.Collector.Samples))
		t.AddRow("mean latency (sec)", report.F(cf.Collector.MeanLatencySec), report.F(bf.Collector.MeanLatencySec))
		t.AddRow("app steps", fmt.Sprint(cf.App.Steps), fmt.Sprint(bf.App.Steps))
		if err := t.Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
		if cf.Daemon.BusySec > 0 {
			fmt.Printf("\nBF reduces daemon overhead by %.0f%% and syscalls by %.0f%%\n",
				(1-bf.Daemon.BusySec/cf.Daemon.BusySec)*100,
				(1-float64(bf.Daemon.Writes)/float64(cf.Daemon.Writes))*100)
		}
		return
	}

	p, err := forward.ParsePolicy(*policy)
	if err != nil {
		fatal("%v", err)
	}
	res, err := testbed.Run(mkCfg(p))
	if err != nil {
		fatal("%v", err)
	}
	t := report.NewTable(fmt.Sprintf("Measurement run: %s under %s (SP=%v, %v)", *kernel, p, *sp, *duration),
		"metric", "value")
	t.AddRow("application steps", fmt.Sprint(res.App.Steps))
	t.AddRow("application ops", fmt.Sprint(res.App.Ops))
	t.AddRow("samples generated", fmt.Sprint(res.App.SamplesGenerated))
	t.AddRow("app blocked on pipe (sec)", report.F(res.App.BlockedSec))
	t.AddRow("daemon CPU time (sec)", report.F(res.Daemon.BusySec))
	t.AddRow("daemon write syscalls", fmt.Sprint(res.Daemon.Writes))
	t.AddRow("messages forwarded", fmt.Sprint(res.Daemon.MessagesForwarded))
	t.AddRow("collector CPU time (sec)", report.F(res.Collector.BusySec))
	t.AddRow("samples received", fmt.Sprint(res.Collector.Samples))
	t.AddRow("mean monitoring latency (sec)", report.F(res.Collector.MeanLatencySec))
	t.AddRow("max monitoring latency (sec)", report.F(res.Collector.MaxLatencySec))
	t.AddRow("normalized Pd occupancy (%)", report.F(res.NormalizedPdPct))
	if err := t.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}
}

// runCluster executes the multi-node testbed (the Figure 29 setup) and
// prints per-node and aggregate overheads.
func runCluster(nodes int, kernel string, size int, policy string, batch int,
	sp, duration time.Duration, pipeCap int, seed uint64, tree bool) {
	p, err := forward.ParsePolicy(policy)
	if err != nil {
		fatal("%v", err)
	}
	res, err := testbed.RunCluster(testbed.ClusterConfig{
		Nodes:          nodes,
		Kernel:         kernel,
		KernelSize:     size,
		Policy:         p,
		BatchSize:      batch,
		SamplingPeriod: sp,
		Duration:       duration,
		PipeCapacity:   pipeCap,
		Seed:           seed,
		Tree:           tree,
	})
	if err != nil {
		fatal("%v", err)
	}
	cfgName := "direct"
	if tree {
		cfgName = "tree"
	}
	t := report.NewTable(fmt.Sprintf("Cluster run: %d nodes, %s under %s (%s forwarding)", nodes, kernel, p, cfgName),
		"node", "app steps", "samples", "daemon CPU (sec)", "writes", "blocked (sec)")
	for i, nr := range res.Nodes {
		t.AddRow(fmt.Sprint(i), fmt.Sprint(nr.App.Steps), fmt.Sprint(nr.App.SamplesGenerated),
			report.F(nr.Daemon.BusySec), fmt.Sprint(nr.Daemon.Writes), report.F(nr.App.BlockedSec))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("\naverage direct daemon overhead: %s sec/node\n", report.F(res.MeanDaemonBusySec))
	if tree {
		fmt.Printf("relay merge work (tree forwarding extra cost): %s sec total\n", report.F(res.TotalRelayBusySec))
	}
	fmt.Printf("collector: %d samples in %d messages, mean latency %s sec\n",
		res.Collector.Samples, res.Collector.Messages, report.F(res.Collector.MeanLatencySec))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paradyn: "+format+"\n", args...)
	os.Exit(1)
}
