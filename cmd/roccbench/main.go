// Command roccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	roccbench -list
//	roccbench -exp fig17
//	roccbench -exp all -duration 100 -reps 50   # paper scale
//	roccbench -exp fig9 -csv                    # CSV series for plotting
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rocc/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list      = flag.Bool("list", false, "list available experiments")
		duration  = flag.Float64("duration", 10, "simulated seconds per run")
		reps      = flag.Int("reps", 3, "replications for factorial designs (paper: 50)")
		testbedMS = flag.Int("testbed-ms", 250, "wall-clock milliseconds per measurement run")
		csv       = flag.Bool("csv", false, "emit figures as CSV")
		plot      = flag.Bool("plot", false, "additionally render figures as ASCII charts")
		paper     = flag.Bool("paper", false, "paper-scale options (100 s, r=50, 5 s testbed; slow)")
		seed      = flag.Uint64("seed", 1, "master random seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "roccbench: -exp required (or -list); e.g. roccbench -exp fig17")
		os.Exit(2)
	}

	opt := experiments.Options{
		Seed:            *seed,
		DurationUS:      *duration * 1e6,
		Reps:            *reps,
		TestbedDuration: time.Duration(*testbedMS) * time.Millisecond,
		CSV:             *csv,
		Plot:            *plot,
	}
	if *paper {
		opt = experiments.Paper()
		opt.CSV = *csv
		opt.Plot = *plot
		opt.Seed = *seed
	}

	if *exp == "all" {
		if err := experiments.RunAll(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "roccbench:", err)
			os.Exit(1)
		}
		return
	}
	// Comma-separated lists run in order: roccbench -exp fig17,fig18,fig19
	for _, id := range strings.Split(*exp, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "roccbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("# %s — %s\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "roccbench:", err)
			os.Exit(1)
		}
	}
}
