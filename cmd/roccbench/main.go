// Command roccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	roccbench -list
//	roccbench -exp fig17
//	roccbench -exp all -duration 100 -reps 50   # paper scale
//	roccbench -exp fig9 -csv                    # CSV series for plotting
//	roccbench -exp fig16 -parallel 8            # fan replications over 8 workers
//	roccbench -exp table4 -dist 4               # fan factorial runs over 4 worker processes
//	roccbench -exp table4 -dist 4 -http :9090   # live /metrics and /progress while it runs
//	roccbench -exp bench -json -out BENCH_baseline.json   # perf record
//	roccbench -compare BENCH_PR3.json -baseline BENCH_baseline.json
//	roccbench -exp fig17 -cpuprofile cpu.pprof  # profile the regeneration
//
// -parallel N fans the independent simulation runs of an experiment
// (replications, factorial rows, sweep points) over N worker goroutines;
// 0 means one per core, 1 forces the serial path. Output is byte-identical
// at any setting. -dist N instead fans the factorial designs over N worker
// processes through the fault-tolerant distributed engine (internal/dist);
// the workers are this binary re-executed with -worker, and output is
// byte-identical to the in-process paths. -json measures each experiment serial and parallel and
// writes a machine-readable perf record (ns/op, allocs/op, speedup) used
// to track the engine's trajectory in BENCH_baseline.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rocc/internal/cli"
	"rocc/internal/des"
	"rocc/internal/dist"
	"rocc/internal/experiments"
	"rocc/internal/obs"
	"rocc/internal/obs/live"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list), or 'all'")
		worker    = flag.Bool("worker", false, "run as a distributed-sweep worker on stdin/stdout (started by -dist drivers)")
		distN     = flag.Int("dist", 0, "fan factorial designs over this many worker processes (0 = in-process)")
		list      = flag.Bool("list", false, "list available experiments")
		duration  = flag.Float64("duration", 10, "simulated seconds per run")
		reps      = flag.Int("reps", 3, "replications for factorial designs (paper: 50)")
		testbedMS = flag.Int("testbed-ms", 250, "wall-clock milliseconds per measurement run")
		csv       = flag.Bool("csv", false, "emit figures as CSV")
		plot      = flag.Bool("plot", false, "additionally render figures as ASCII charts")
		paper     = flag.Bool("paper", false, "paper-scale options (100 s, r=50, 5 s testbed; slow)")
		seed      = cli.Seed(flag.CommandLine)
		policy    = cli.Policy(flag.CommandLine)
		parallel  = cli.Parallel(flag.CommandLine)
		jsonOut   = cli.JSON(flag.CommandLine)
		outPath   = cli.Out(flag.CommandLine)
		httpAddr  = cli.HTTP(flag.CommandLine)
		calName   = flag.String("calendar", "auto", "event calendar: auto, heap, bucket, list (results identical; perf only)")
		compare   = flag.String("compare", "", "check this -json perf record against -baseline and exit")
		baseline  = flag.String("baseline", "", "baseline perf record for -compare")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit")
	)
	flag.Parse()

	if *worker {
		if err := dist.ServeWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "roccbench worker:", err)
			os.Exit(1)
		}
		return
	}

	if *compare != "" {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "roccbench: -compare requires -baseline")
			os.Exit(2)
		}
		if err := comparePerf(*compare, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "roccbench:", err)
			os.Exit(1)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roccbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "roccbench:", err)
			os.Exit(1)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "roccbench:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "roccbench:", err)
			}
			f.Close()
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "roccbench: -exp required (or -list); e.g. roccbench -exp fig17")
		os.Exit(2)
	}

	opt := experiments.Options{
		Seed:            *seed,
		DurationUS:      *duration * 1e6,
		Reps:            *reps,
		TestbedDuration: time.Duration(*testbedMS) * time.Millisecond,
		CSV:             *csv,
		Plot:            *plot,
	}
	if *paper {
		opt = experiments.Paper()
		opt.CSV = *csv
		opt.Plot = *plot
		opt.Seed = *seed
	}
	opt.Parallel = *parallel
	opt.DistWorkers = *distN
	if policy.Given() {
		spec := policy.Spec()
		opt.Policy = &spec
	}
	if *httpAddr != "" {
		opt.SweepMetrics = obs.NewSweepMetrics()
		opt.Monitor = dist.NewMonitor()
		srv := live.NewServer(nil)
		srv.Exporter().SetSweep(opt.SweepMetrics)
		srv.SetProgress(func() any { return opt.Monitor.Snapshot() })
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roccbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "roccbench: monitoring on http://%s (/metrics /healthz /progress /debug/pprof/)\n", addr)
	}
	cal, err := des.ParseCalendarKind(*calName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roccbench:", err)
		os.Exit(2)
	}
	opt.Calendar = cal

	if *jsonOut {
		ids := expandIDs(*exp)
		rep, err := measurePerf(ids, opt, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roccbench:", err)
			os.Exit(1)
		}
		if err := writePerf(rep, *outPath); err != nil {
			fmt.Fprintln(os.Stderr, "roccbench:", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "all" {
		if err := experiments.RunAll(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "roccbench:", err)
			os.Exit(1)
		}
		return
	}
	// Comma-separated lists run in order: roccbench -exp fig17,fig18,fig19
	for _, id := range expandIDs(*exp) {
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "roccbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("# %s — %s\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "roccbench:", err)
			os.Exit(1)
		}
	}
}

// trackedBenchIDs is the replication- and DES-heavy experiment set whose
// perf record is committed as BENCH_baseline.json: the NOW/SMP/MPP
// factorial tables (reps × rows fan-out), the NOW sweeps, and the
// fault-survivability matrix.
var trackedBenchIDs = []string{
	"table4", "fig16", "fig17", "fig18", "fig19",
	"table5", "table6", "fault-survivability",
}

// expandIDs resolves the -exp argument: "all" is every registered
// experiment, "bench" the tracked benchmark set, otherwise a
// comma-separated id list.
func expandIDs(exp string) []string {
	switch exp {
	case "all":
		var ids []string
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		return ids
	case "bench":
		return append([]string(nil), trackedBenchIDs...)
	}
	var ids []string
	for _, id := range strings.Split(exp, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}
