package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Regression tolerance bands for -compare. Wall-clock is measured on
// whatever machine CI lands on, so its band is loose — it catches
// order-of-magnitude blowups, not percent-level drift. Allocation counts
// are deterministic for a fixed seed and configuration, so their band is
// tight.
const (
	nsTolerance    = 10.0
	allocTolerance = 1.5
)

// readPerf loads a perf record written by -json.
func readPerf(path string) (perfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return perfReport{}, err
	}
	var rep perfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return perfReport{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// comparePerf checks a current perf record against a committed baseline:
// the two records must cover the same experiment set (an ID present in
// only one file is reported by name, whichever side it is missing from),
// and neither ns/op nor allocs/op may exceed its tolerance band. Returns
// an error listing every violation (the CI regression gate).
func comparePerf(curPath, basePath string) error {
	cur, err := readPerf(curPath)
	if err != nil {
		return err
	}
	base, err := readPerf(basePath)
	if err != nil {
		return err
	}
	violations, err := diffPerf(cur, base, os.Stdout)
	if err != nil {
		return err
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "roccbench: "+v)
		}
		return fmt.Errorf("%d perf violation(s) vs %s", len(violations), basePath)
	}
	return nil
}

// diffPerf compares two loaded perf records, printing the per-experiment
// ratio table to w and returning one line per violation: tolerance-band
// regressions, plus experiments present in one record but missing from
// the other (in each record's own order).
func diffPerf(cur, base perfReport, w io.Writer) ([]string, error) {
	if cur.SchemaVersion != base.SchemaVersion {
		return nil, fmt.Errorf("schema mismatch: current v%d, baseline v%d", cur.SchemaVersion, base.SchemaVersion)
	}
	if cur.DurationUS != base.DurationUS || cur.Reps != base.Reps || cur.Seed != base.Seed {
		return nil, fmt.Errorf("config mismatch: current (dur=%v reps=%d seed=%d) vs baseline (dur=%v reps=%d seed=%d) — records are not comparable",
			cur.DurationUS, cur.Reps, cur.Seed, base.DurationUS, base.Reps, base.Seed)
	}
	byID := map[string]perfRecord{}
	for _, r := range cur.Experiments {
		byID[r.ID] = r
	}
	baseIDs := map[string]bool{}
	var violations []string
	for _, b := range base.Experiments {
		baseIDs[b.ID] = true
		c, ok := byID[b.ID]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: in baseline but missing from current record", b.ID))
			continue
		}
		nsRatio := ratio(float64(c.SerialNsOp), float64(b.SerialNsOp))
		allocRatio := ratio(float64(c.AllocsPerOp), float64(b.AllocsPerOp))
		status := "ok"
		if nsRatio > nsTolerance {
			status = "REGRESSION"
			violations = append(violations, fmt.Sprintf(
				"%s: serial ns/op %d vs baseline %d (%.2fx > %.1fx band)",
				b.ID, c.SerialNsOp, b.SerialNsOp, nsRatio, nsTolerance))
		}
		if allocRatio > allocTolerance {
			status = "REGRESSION"
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op %d vs baseline %d (%.2fx > %.1fx band)",
				b.ID, c.AllocsPerOp, b.AllocsPerOp, allocRatio, allocTolerance))
		}
		fmt.Fprintf(w, "%-22s ns/op %.2fx  allocs/op %.2fx  %s\n", b.ID, nsRatio, allocRatio, status)
	}
	for _, c := range cur.Experiments {
		if !baseIDs[c.ID] {
			violations = append(violations, fmt.Sprintf("%s: in current record but missing from baseline", c.ID))
		}
	}
	if len(violations) == 0 {
		fmt.Fprintf(w, "all %d experiments within tolerance (ns/op %.1fx, allocs/op %.1fx)\n",
			len(base.Experiments), nsTolerance, allocTolerance)
	}
	return violations, nil
}

// ratio is current/baseline, treating a zero baseline as no change.
func ratio(cur, base float64) float64 {
	if base == 0 {
		return 1
	}
	return cur / base
}
