package main

import (
	"io"
	"strings"
	"testing"
)

func perfWith(recs ...perfRecord) perfReport {
	return perfReport{
		SchemaVersion: 1,
		Seed:          1,
		DurationUS:    2e6,
		Reps:          3,
		Experiments:   recs,
	}
}

func rec(id string, ns int64, allocs uint64) perfRecord {
	return perfRecord{ID: id, SerialNsOp: ns, AllocsPerOp: allocs}
}

// Identical records compare clean.
func TestDiffPerfClean(t *testing.T) {
	base := perfWith(rec("table4", 1000, 100), rec("fig16", 2000, 200))
	violations, err := diffPerf(base, base, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("identical records produced violations: %v", violations)
	}
}

// IDs present in only one record are violations naming the missing side:
// baseline-only IDs as missing from current, current-only IDs as missing
// from baseline. Both directions must be reported in one pass.
func TestDiffPerfReportsMissingIDsBothWays(t *testing.T) {
	cur := perfWith(rec("table4", 1000, 100), rec("fig99", 10, 1))
	base := perfWith(rec("table4", 1000, 100), rec("fig16", 2000, 200))
	violations, err := diffPerf(cur, base, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 2 {
		t.Fatalf("want 2 violations, got %d: %v", len(violations), violations)
	}
	joined := strings.Join(violations, "\n")
	if !strings.Contains(joined, "fig16: in baseline but missing from current record") {
		t.Errorf("baseline-only id not reported: %v", violations)
	}
	if !strings.Contains(joined, "fig99: in current record but missing from baseline") {
		t.Errorf("current-only id not reported: %v", violations)
	}
}

// Tolerance bands: ns/op has the loose wall-clock band, allocs/op the
// tight deterministic one. A value just inside passes; just outside fails.
func TestDiffPerfToleranceBands(t *testing.T) {
	base := perfWith(rec("table4", 1000, 100))

	ok := perfWith(rec("table4", int64(1000*nsTolerance), uint64(100*allocTolerance)))
	violations, err := diffPerf(ok, base, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("at-band record should pass, got: %v", violations)
	}

	bad := perfWith(rec("table4", int64(1000*nsTolerance)+1, uint64(100*allocTolerance)+1))
	violations, err = diffPerf(bad, base, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 2 {
		t.Fatalf("want ns and alloc regressions, got: %v", violations)
	}
}

// Records measured under different configs refuse to compare at all.
func TestDiffPerfConfigMismatch(t *testing.T) {
	cur := perfWith(rec("table4", 1000, 100))
	cur.Reps = 50
	if _, err := diffPerf(cur, perfWith(rec("table4", 1000, 100)), io.Discard); err == nil {
		t.Fatal("config mismatch not rejected")
	}
	cur = perfWith(rec("table4", 1000, 100))
	cur.SchemaVersion = 2
	if _, err := diffPerf(cur, perfWith(rec("table4", 1000, 100)), io.Discard); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}
