package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"rocc/internal/experiments"
	"rocc/internal/par"
)

// perfSchemaVersion identifies the BENCH_*.json record layout; bump on
// incompatible changes so regression tooling can refuse stale baselines.
const perfSchemaVersion = 1

// perfRecord is the machine-readable performance record of one experiment:
// wall-clock per regeneration serial and parallel, the speedup, and the
// serial run's allocation profile.
type perfRecord struct {
	ID           string  `json:"id"`
	SerialNsOp   int64   `json:"serial_ns_per_op"`
	ParallelNsOp int64   `json:"parallel_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	BytesPerOp   uint64  `json:"bytes_per_op"`
}

// perfReport is the file written by -json (and committed as
// BENCH_baseline.json): enough context to rerun the measurement plus one
// record per experiment.
type perfReport struct {
	SchemaVersion int          `json:"schema_version"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Parallel      int          `json:"parallel"`
	Seed          uint64       `json:"seed"`
	DurationUS    float64      `json:"duration_us"`
	Reps          int          `json:"reps"`
	Experiments   []perfRecord `json:"experiments"`
}

// measurePerf regenerates each experiment twice — serial (pool size 1)
// and with the configured pool — timing each pass and profiling the
// serial pass's allocations. Both passes produce byte-identical output
// (discarded here); only the clock differs.
func measurePerf(ids []string, opt experiments.Options, parallel int) (perfReport, error) {
	if parallel <= 0 {
		parallel = par.Workers()
	}
	rep := perfReport{
		SchemaVersion: perfSchemaVersion,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Parallel:      parallel,
		Seed:          opt.Seed,
		DurationUS:    opt.DurationUS,
		Reps:          opt.Reps,
	}
	for _, id := range ids {
		e, ok := experiments.ByID(id)
		if !ok {
			return perfReport{}, fmt.Errorf("unknown experiment %q", id)
		}
		serial := opt
		serial.Parallel = 1
		serialNs, allocs, bytes, err := timedRun(e, serial)
		if err != nil {
			return perfReport{}, fmt.Errorf("%s (serial): %w", id, err)
		}
		wide := opt
		wide.Parallel = parallel
		parallelNs, _, _, err := timedRun(e, wide)
		if err != nil {
			return perfReport{}, fmt.Errorf("%s (parallel): %w", id, err)
		}
		speedup := 0.0
		if parallelNs > 0 {
			speedup = float64(serialNs) / float64(parallelNs)
		}
		rep.Experiments = append(rep.Experiments, perfRecord{
			ID:           id,
			SerialNsOp:   serialNs,
			ParallelNsOp: parallelNs,
			Speedup:      speedup,
			AllocsPerOp:  allocs,
			BytesPerOp:   bytes,
		})
		fmt.Fprintf(os.Stderr, "%-22s serial %8.1f ms  parallel %8.1f ms  speedup %.2fx  %d allocs\n",
			id, float64(serialNs)/1e6, float64(parallelNs)/1e6, speedup, allocs)
	}
	return rep, nil
}

// timedRun regenerates one experiment into io.Discard, returning the
// wall-clock nanoseconds and the run's allocation deltas.
func timedRun(e experiments.Experiment, opt experiments.Options) (ns int64, allocs, bytes uint64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := e.Run(io.Discard, opt); err != nil {
		return 0, 0, 0, err
	}
	ns = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	return ns, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
}

// writePerf emits the report as indented JSON to path, or stdout when
// path is empty.
func writePerf(rep perfReport, path string) error {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
