package adaptive

import (
	"errors"

	"rocc/internal/core"
	"rocc/internal/procs"
)

// RegulationResult records one closed-loop regulation run.
type RegulationResult struct {
	// Intervals holds the controller's observation history.
	Intervals []Observation
	// FinalPeriodUS is the sampling period after the last interval.
	FinalPeriodUS float64
	// FinalOverhead is the overhead fraction observed in the last interval.
	FinalOverhead float64
	// Converged reports whether the last three intervals were on target.
	Converged bool
}

// Regulate runs the ROCC simulation in closed loop with the overhead
// controller: the model executes one control interval, the daemon CPU
// utilization over that interval is fed to the controller, and the
// sampling period of every application process is updated in place. This
// demonstrates model-based IS self-regulation on top of the same
// simulation core used for the open-loop studies.
func Regulate(simCfg core.Config, ctrlCfg Config, intervalUS float64, intervals int) (RegulationResult, error) {
	if intervalUS <= 0 {
		return RegulationResult{}, errors.New("adaptive: intervalUS must be positive")
	}
	if intervals < 1 {
		return RegulationResult{}, errors.New("adaptive: need at least one interval")
	}
	ctrl, err := New(ctrlCfg, simCfg.Cost.PerMsgCPU.Mean()*float64(maxInt(simCfg.AppProcs, 1)))
	if err != nil {
		return RegulationResult{}, err
	}

	simCfg.SamplingPeriod = ctrl.Period()
	simCfg.Duration = intervalUS * float64(intervals)
	m, err := core.New(simCfg)
	if err != nil {
		return RegulationResult{}, err
	}
	m.Start()

	var res RegulationResult
	prevBusy := 0.0
	capacity := cpuCapacityPerInterval(m, intervalUS)
	for i := 0; i < intervals; i++ {
		m.Sim.Run(intervalUS * float64(i+1))
		busy := 0.0
		for _, cpu := range m.NodeCPUs {
			busy += cpu.Busy(procs.OwnerPd)
		}
		overhead := (busy - prevBusy) / capacity
		prevBusy = busy
		newPeriod := ctrl.Observe(overhead)
		for _, app := range m.Apps {
			app.SamplingPeriod = newPeriod
		}
		res.FinalOverhead = overhead
	}
	res.Intervals = ctrl.Observations
	res.FinalPeriodUS = ctrl.Period()
	res.Converged = ctrl.Converged(3)
	return res, nil
}

// cpuCapacityPerInterval returns total CPU microseconds available per
// control interval across the node CPUs the daemons run on.
func cpuCapacityPerInterval(m *core.Model, intervalUS float64) float64 {
	if m.Cfg.Arch == core.SMP {
		return float64(m.Cfg.Nodes) * intervalUS
	}
	return float64(len(m.NodeCPUs)) * intervalUS
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
