// Package adaptive implements the extension the paper's Discussion
// (Section 6) points to: with a model of the instrumentation system,
// "users can specify tolerable limits for IS overheads relative to the
// needs of their applications. The IS can use the model to adapt its
// behavior in order to regulate overheads" — the direction of Paradyn's
// dynamic cost model (Hollingsworth & Miller, EuroPar '96).
//
// Controller is a feedback regulator that observes the direct IS overhead
// (daemon CPU utilization) over successive control intervals and adjusts
// the sampling period multiplicatively to keep the overhead at a
// user-specified target, within configured sampling-period bounds. It is
// deliberately model-assisted: the initial sampling period is seeded from
// the operational-analysis prediction (equation 2 inverted), and feedback
// then corrects for everything the closed-form model misses.
package adaptive

import (
	"errors"
	"math"
)

// Config parameterizes the overhead regulator.
type Config struct {
	// TargetOverhead is the tolerable direct IS overhead as a fraction of
	// CPU time (e.g. 0.01 for 1%).
	TargetOverhead float64
	// MinPeriodUS and MaxPeriodUS bound the sampling period (microseconds).
	MinPeriodUS, MaxPeriodUS float64
	// Gain damps the multiplicative correction per control interval;
	// 1 applies the full proportional correction, smaller values react
	// more slowly but oscillate less. Default 0.5.
	Gain float64
	// Deadband suppresses corrections when the observed overhead is
	// within this relative distance of the target (default 0.1 = ±10%).
	Deadband float64
}

// Validate checks the configuration and fills defaults.
func (c Config) Validate() (Config, error) {
	if c.TargetOverhead <= 0 || c.TargetOverhead >= 1 {
		return c, errors.New("adaptive: TargetOverhead must be in (0, 1)")
	}
	if c.MinPeriodUS <= 0 || c.MaxPeriodUS < c.MinPeriodUS {
		return c, errors.New("adaptive: need 0 < MinPeriodUS <= MaxPeriodUS")
	}
	if c.Gain <= 0 || c.Gain > 1 {
		c.Gain = 0.5
	}
	if c.Deadband <= 0 || c.Deadband >= 1 {
		c.Deadband = 0.1 // use a tiny positive value for "no deadband"
	}
	return c, nil
}

// Controller regulates the sampling period from overhead observations.
type Controller struct {
	cfg    Config
	period float64

	// History of (observed overhead, period) pairs for inspection.
	Observations []Observation
}

// Observation is one control-interval record.
type Observation struct {
	OverheadFraction float64
	PeriodUS         float64 // period in force during the interval
	NewPeriodUS      float64 // period chosen for the next interval
}

// New creates a controller. The initial sampling period is seeded from
// the ROCC operational model: utilization = perSampleCPUDemand / period
// (equation 2 with batch 1 and one process), inverted at the target and
// clamped to the configured bounds. perSampleCPUDemandUS of zero seeds at
// the maximum period.
func New(cfg Config, perSampleCPUDemandUS float64) (*Controller, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	period := cfg.MaxPeriodUS
	if perSampleCPUDemandUS > 0 {
		period = perSampleCPUDemandUS / cfg.TargetOverhead
	}
	c := &Controller{cfg: cfg, period: clamp(period, cfg.MinPeriodUS, cfg.MaxPeriodUS)}
	return c, nil
}

// Period returns the sampling period currently in force (microseconds).
func (c *Controller) Period() float64 { return c.period }

// Observe feeds one control interval's measured overhead fraction and
// returns the sampling period for the next interval. Overhead is
// proportional to sampling rate (1/period), so the proportional correction
// is multiplicative in the period: period *= overhead/target, damped by
// the gain and bounded.
func (c *Controller) Observe(overheadFraction float64) float64 {
	if math.IsNaN(overheadFraction) || overheadFraction < 0 {
		overheadFraction = 0
	}
	obs := Observation{OverheadFraction: overheadFraction, PeriodUS: c.period}
	ratio := overheadFraction / c.cfg.TargetOverhead
	if math.Abs(ratio-1) > c.cfg.Deadband {
		factor := 1 + c.cfg.Gain*(ratio-1)
		if factor < 0.1 {
			factor = 0.1 // never shrink/grow more than 10x per interval
		}
		if factor > 10 {
			factor = 10
		}
		c.period = clamp(c.period*factor, c.cfg.MinPeriodUS, c.cfg.MaxPeriodUS)
	}
	obs.NewPeriodUS = c.period
	c.Observations = append(c.Observations, obs)
	return c.period
}

// Converged reports whether the last n observations were all inside the
// deadband (or pinned at a period bound, the best the controller can do).
func (c *Controller) Converged(n int) bool {
	if len(c.Observations) < n {
		return false
	}
	for _, obs := range c.Observations[len(c.Observations)-n:] {
		ratio := obs.OverheadFraction / c.cfg.TargetOverhead
		if math.Abs(ratio-1) <= c.cfg.Deadband {
			continue // inside the band
		}
		// Pinned: overhead off-target but the period cannot move further
		// in the needed direction.
		if ratio > 1 && obs.NewPeriodUS >= c.cfg.MaxPeriodUS {
			continue
		}
		if ratio < 1 && obs.NewPeriodUS <= c.cfg.MinPeriodUS {
			continue
		}
		return false
	}
	return true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
