package adaptive

import (
	"math"
	"testing"
	"testing/quick"

	"rocc/internal/core"
)

func ctrlCfg() Config {
	return Config{
		TargetOverhead: 0.01,
		MinPeriodUS:    1000,
		MaxPeriodUS:    1e6,
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{TargetOverhead: 0, MinPeriodUS: 1, MaxPeriodUS: 2},
		{TargetOverhead: 1.5, MinPeriodUS: 1, MaxPeriodUS: 2},
		{TargetOverhead: 0.1, MinPeriodUS: 0, MaxPeriodUS: 2},
		{TargetOverhead: 0.1, MinPeriodUS: 5, MaxPeriodUS: 2},
	}
	for i, c := range bad {
		if _, err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	good, err := ctrlCfg().Validate()
	if err != nil {
		t.Fatal(err)
	}
	if good.Gain != 0.5 || good.Deadband != 0.1 {
		t.Fatalf("defaults not applied: %+v", good)
	}
}

func TestModelSeededInitialPeriod(t *testing.T) {
	// Equation 2 inverted: period = demand/target = 267/0.01 = 26700 us.
	c, err := New(ctrlCfg(), 267)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Period()-26700) > 1e-9 {
		t.Fatalf("seed period %v, want 26700", c.Period())
	}
	// Zero demand seeds at the maximum (most conservative) period.
	c2, _ := New(ctrlCfg(), 0)
	if c2.Period() != 1e6 {
		t.Fatalf("zero-demand seed %v", c2.Period())
	}
	// Seed clamps to bounds.
	cfg := ctrlCfg()
	cfg.MaxPeriodUS = 10000
	c3, _ := New(cfg, 267)
	if c3.Period() != 10000 {
		t.Fatalf("clamped seed %v", c3.Period())
	}
}

func TestObserveRaisesPeriodWhenOverBudget(t *testing.T) {
	c, _ := New(ctrlCfg(), 267)
	p0 := c.Period()
	p1 := c.Observe(0.05) // 5x over the 1% target
	if p1 <= p0 {
		t.Fatalf("period should grow: %v -> %v", p0, p1)
	}
	if len(c.Observations) != 1 || c.Observations[0].OverheadFraction != 0.05 {
		t.Fatal("observation not recorded")
	}
}

func TestObserveLowersPeriodWhenUnderBudget(t *testing.T) {
	c, _ := New(ctrlCfg(), 267)
	p0 := c.Period()
	p1 := c.Observe(0.001) // well under target: sample faster
	if p1 >= p0 {
		t.Fatalf("period should shrink: %v -> %v", p0, p1)
	}
}

func TestDeadbandSuppressesJitter(t *testing.T) {
	c, _ := New(ctrlCfg(), 267)
	p0 := c.Period()
	if got := c.Observe(0.0105); got != p0 { // within ±10% of target
		t.Fatalf("deadband violated: %v -> %v", p0, got)
	}
}

func TestObserveBounds(t *testing.T) {
	c, _ := New(ctrlCfg(), 267)
	for i := 0; i < 50; i++ {
		c.Observe(0.9) // massively over budget
	}
	if c.Period() != 1e6 {
		t.Fatalf("period should pin at max: %v", c.Period())
	}
	for i := 0; i < 200; i++ {
		c.Observe(0)
	}
	if c.Period() != 1000 {
		t.Fatalf("period should pin at min: %v", c.Period())
	}
	// NaN and negatives are treated as zero overhead.
	if got := c.Observe(math.NaN()); got != 1000 {
		t.Fatalf("NaN handling: %v", got)
	}
}

func TestConverged(t *testing.T) {
	c, _ := New(ctrlCfg(), 267)
	if c.Converged(3) {
		t.Fatal("no observations yet")
	}
	for i := 0; i < 3; i++ {
		c.Observe(0.01)
	}
	if !c.Converged(3) {
		t.Fatal("on-target observations should converge")
	}
	c.Observe(0.5)
	if c.Converged(1) {
		t.Fatal("off-target should not converge")
	}
	// Pinned at max while over budget counts as converged (can't do more).
	for i := 0; i < 60; i++ {
		c.Observe(0.5)
	}
	if !c.Converged(3) {
		t.Fatal("pinned at max should count as converged")
	}
}

// Property: the controller's period always stays within bounds for any
// observation sequence.
func TestQuickPeriodBounded(t *testing.T) {
	f := func(raw []float64) bool {
		c, err := New(ctrlCfg(), 267)
		if err != nil {
			return false
		}
		for _, v := range raw {
			c.Observe(math.Abs(v))
			if c.Period() < 1000 || c.Period() > 1e6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Closed loop against the real ROCC simulation: the regulator drives the
// observed overhead toward the target.
func TestRegulateClosedLoop(t *testing.T) {
	simCfg := core.DefaultConfig()
	simCfg.Nodes = 2
	ctrl := Config{
		TargetOverhead: 0.02, // 2%
		MinPeriodUS:    500,
		MaxPeriodUS:    500000,
		Gain:           0.7,
	}
	res, err := Regulate(simCfg, ctrl, 2e6, 12) // 12 x 2-second intervals
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 12 {
		t.Fatalf("%d intervals", len(res.Intervals))
	}
	// The final overhead should be within a factor of two of the target
	// (generous: stochastic workload, short intervals).
	if res.FinalOverhead < 0.005 || res.FinalOverhead > 0.06 {
		t.Fatalf("final overhead %.4f not regulated toward 0.02 (period %v)",
			res.FinalOverhead, res.FinalPeriodUS)
	}
}

func TestRegulateRespondsToTarget(t *testing.T) {
	simCfg := core.DefaultConfig()
	simCfg.Nodes = 2
	run := func(target float64) float64 {
		res, err := Regulate(simCfg, Config{
			TargetOverhead: target, MinPeriodUS: 200, MaxPeriodUS: 1e6, Gain: 0.7,
		}, 2e6, 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalPeriodUS
	}
	tight := run(0.005) // 0.5% budget
	loose := run(0.05)  // 5% budget
	if loose >= tight {
		t.Fatalf("looser budget should sample faster: period %v (5%%) vs %v (0.5%%)", loose, tight)
	}
}

func TestRegulateErrors(t *testing.T) {
	simCfg := core.DefaultConfig()
	if _, err := Regulate(simCfg, ctrlCfg(), 0, 5); err == nil {
		t.Fatal("zero interval should fail")
	}
	if _, err := Regulate(simCfg, ctrlCfg(), 1e6, 0); err == nil {
		t.Fatal("zero intervals should fail")
	}
	if _, err := Regulate(simCfg, Config{}, 1e6, 1); err == nil {
		t.Fatal("bad controller config should fail")
	}
	bad := simCfg
	bad.Nodes = 0
	if _, err := Regulate(bad, ctrlCfg(), 1e6, 1); err == nil {
		t.Fatal("bad sim config should fail")
	}
}
