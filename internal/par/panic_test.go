package par

import (
	"errors"
	"strings"
	"testing"
)

// A panicking worker function must not crash the process; it must surface
// as the lowest-index *PanicError, exactly like an ordinary error, at any
// pool size.
func TestMapRecoversWorkerPanic(t *testing.T) {
	items := make([]int, 32)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 4, 32} {
		out, err := Map(workers, items, func(i int, v int) (int, error) {
			if i == 7 || i == 19 {
				panic("boom")
			}
			return v * 2, nil
		})
		if out != nil {
			t.Errorf("workers=%d: partial results not discarded", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v, want *PanicError", workers, err)
		}
		if pe.Index != 7 {
			t.Errorf("workers=%d: panic index = %d, want lowest (7)", workers, pe.Index)
		}
		if pe.Value != "boom" {
			t.Errorf("workers=%d: panic value = %v, want boom", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic stack not captured", workers)
		}
		if !strings.Contains(err.Error(), "item 7") {
			t.Errorf("workers=%d: error %q does not name the item", workers, err)
		}
	}
}

// A panic on one item must not prevent other items from completing their
// work (Map processes every item even when some fail).
func TestMapPanicDoesNotPoisonPool(t *testing.T) {
	var processed [16]bool
	_, err := Map(4, make([]int, 16), func(i int, _ int) (int, error) {
		if i == 0 {
			panic(errors.New("first item"))
		}
		processed[i] = true
		return 0, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 0 {
		t.Fatalf("got %v, want *PanicError on item 0", err)
	}
	for i := 1; i < len(processed); i++ {
		if !processed[i] {
			t.Errorf("item %d was skipped after the panic", i)
		}
	}
}
