// Package par provides the bounded, order-preserving parallel execution
// primitives used by the simulation layer. The paper's evaluation is
// embarrassingly parallel — independent replications, factorial designs,
// and multi-point sweeps — and every core.Model is share-nothing (it owns
// its simulator, RNG streams, and resources), so scenarios can fan out one
// goroutine per run with no synchronization beyond result collection.
//
// Determinism is the hard constraint: callers pre-derive every seed before
// fanning out, and Map writes each result at its item's index, so output
// is byte-identical to the serial path for a fixed seed at any worker
// count. Only the standard library is used.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the pool size when positive; zero falls back to
// runtime.GOMAXPROCS.
var defaultWorkers atomic.Int32

// Workers returns the default pool size: the value set by SetWorkers, or
// GOMAXPROCS when unset.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the default pool size for subsequent Map calls with
// workers <= 0. Passing n <= 0 restores the GOMAXPROCS default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Map applies fn to every item on a bounded pool of worker goroutines and
// returns the results in item order. workers <= 0 uses Workers(); workers
// is additionally capped at len(items). With one worker (or one item) Map
// degenerates to a plain serial loop on the calling goroutine.
//
// Every item is processed even when some fail, and the error reported is
// the one with the lowest item index — the same error the serial loop
// would hit first — so failures are deterministic regardless of goroutine
// scheduling. On error the partial results are discarded.
//
// A panicking fn does not crash the process: the panic is recovered in
// the worker (or on the calling goroutine in the serial path) and
// converted to a *PanicError carrying the item index, panic value, and
// stack, reported under the same lowest-index rule as ordinary errors —
// so a panic behaves identically at every pool size.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	if workers == 1 {
		for i, item := range items {
			r, err := call(fn, i, item)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = -1
		retErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := call(fn, i, items[i])
				if err != nil {
					mu.Lock()
					if errIdx == -1 || i < errIdx {
						errIdx, retErr = i, err
					}
					mu.Unlock()
					continue
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if errIdx != -1 {
		return nil, retErr
	}
	return out, nil
}

// PanicError is a fn panic recovered by Map, with the panicking worker's
// stack preserved for debugging.
type PanicError struct {
	Index int    // the item fn panicked on
	Value any    // the recovered panic value
	Stack []byte // the worker's stack at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: panic on item %d: %v", e.Index, e.Value)
}

// call invokes fn guarded against panics, so one bad item cannot take
// down the pool (or, serially, the caller).
func call[T, R any](fn func(int, T) (R, error), i int, item T) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Index: i, Value: p, Stack: debug.Stack()}
		}
	}()
	return fn(i, item)
}
