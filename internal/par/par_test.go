package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		out, err := Map(workers, items, func(i, v int) (int, error) {
			if i%5 == 0 {
				time.Sleep(time.Duration(i%3) * time.Millisecond) // scramble completion order
			}
			return v * v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(items) {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, nil, func(i, v int) (int, error) { return v, nil })
	if err != nil || out != nil {
		t.Fatalf("empty input: %v, %v", out, err)
	}
}

// The reported error must be the lowest-index failure — what the serial
// loop would hit first — regardless of scheduling.
func TestMapErrorDeterministic(t *testing.T) {
	items := make([]int, 100)
	for trial := 0; trial < 20; trial++ {
		_, err := Map(8, items, func(i, _ int) (int, error) {
			if i == 13 || i == 77 {
				return 0, fmt.Errorf("fail at %d", i)
			}
			return 0, nil
		})
		if err == nil || err.Error() != "fail at 13" {
			t.Fatalf("trial %d: error %v, want fail at 13", trial, err)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	items := make([]int, 64)
	_, err := Map(workers, items, func(i, _ int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent workers, cap %d", p, workers)
	}
}

func TestWorkersOverride(t *testing.T) {
	defer SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Workers() = %d, want GOMAXPROCS", Workers())
	}
	SetWorkers(5)
	if Workers() != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", Workers())
	}
	SetWorkers(-3)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetWorkers(-3) did not restore the default")
	}
}

// A single-worker Map must run entirely on the calling goroutine so that
// serial fallbacks have zero scheduling overhead and identical stack
// behavior to a plain loop.
func TestMapSerialFastPath(t *testing.T) {
	var calls int // no atomics: the race detector verifies single-threading
	out, err := Map(1, []int{1, 2, 3}, func(i, v int) (int, error) {
		calls++
		return v + 1, nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
	if out[0] != 2 || out[2] != 4 {
		t.Fatalf("out %v", out)
	}
}

func TestMapSerialErrorStopsEarly(t *testing.T) {
	calls := 0
	_, err := Map(1, []int{0, 1, 2, 3}, func(i, _ int) (int, error) {
		calls++
		if i == 1 {
			return 0, errors.New("boom")
		}
		return 0, nil
	})
	if err == nil || calls != 2 {
		t.Fatalf("serial path should stop at first error: calls=%d err=%v", calls, err)
	}
}
