package report

import (
	"strings"
	"testing"
)

func TestWaterfallRender(t *testing.T) {
	wf := &Waterfall{
		Title: "latency decomposition",
		Rows: []StageRow{
			{Stage: "pipe-wait", MeanUS: 120, P50US: 80, P95US: 400, P99US: 900, SharePct: 10},
			{Stage: "batch-residency", MeanUS: 800, P50US: 700, P95US: 1900, P99US: 2400, SharePct: 62.5},
			{Stage: "network-transit", MeanUS: 30, P50US: 25, P95US: 60, P99US: 90, SharePct: 2.5},
			{Stage: "main-receipt", MeanUS: 0, P50US: 0, P95US: 0, P99US: 0, SharePct: 0},
		},
		BarWidth: 40,
	}
	out := wf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+len(wf.Rows) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), 2+len(wf.Rows), out)
	}
	if !strings.HasPrefix(lines[0], "== latency decomposition ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	// 62.5% of a 40-wide bar = 25 hashes; 10% = 4; 2.5% = 1; 0% = none.
	for _, tc := range []struct {
		stage string
		bar   int
	}{
		{"batch-residency", 25}, {"pipe-wait", 4}, {"network-transit", 1}, {"main-receipt", 0},
	} {
		var line string
		for _, l := range lines {
			if strings.HasPrefix(l, tc.stage) {
				line = l
			}
		}
		if line == "" {
			t.Fatalf("stage %s missing:\n%s", tc.stage, out)
		}
		if got := strings.Count(line, "#"); got != tc.bar {
			t.Errorf("%s bar = %d hashes, want %d: %q", tc.stage, got, tc.bar, line)
		}
	}
	if !strings.Contains(out, "62.5%") || !strings.Contains(out, "mean_us") {
		t.Fatalf("missing share or header:\n%s", out)
	}
}

func TestWaterfallTinyShareStillVisible(t *testing.T) {
	wf := &Waterfall{Rows: []StageRow{{Stage: "merge", SharePct: 0.1}}}
	if strings.Count(wf.String(), "#") != 1 {
		t.Fatalf("nonzero share must render at least one hash:\n%s", wf.String())
	}
}
