package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// heatRamp is the intensity ramp, lowest to highest: '.' is zero or
// effectively zero, '@' the hottest finite cell. (Space is reserved for
// "no data", '!' for diverged.)
const heatRamp = ".:-=+*#%@"

// Heatmap renders a dense numeric matrix as an ASCII intensity grid —
// the cross-validation dashboard uses it for the relative-error surface
// (rows: grid cells, columns: metrics). NaN cells render as blank,
// infinite cells as '!'.
type Heatmap struct {
	Title     string
	RowLabels []string
	ColLabels []string
	// Values is row-major: Values[r][c] pairs with RowLabels[r] and
	// ColLabels[c].
	Values [][]float64
	// Max anchors the top of the ramp; 0 means auto (the maximum finite
	// value present).
	Max float64
}

// cellRune maps one value onto the ramp.
func (h *Heatmap) cellRune(v, max float64) byte {
	switch {
	case math.IsNaN(v):
		return ' '
	case math.IsInf(v, 0):
		return '!'
	case max <= 0 || v <= 0:
		return heatRamp[0]
	}
	idx := int(v / max * float64(len(heatRamp)-1))
	if idx >= len(heatRamp) {
		idx = len(heatRamp) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return heatRamp[idx]
}

// Render writes the heatmap: a numbered-column legend, one character per
// cell, and a ramp legend giving the value scale.
func (h *Heatmap) Render(w io.Writer) error {
	if len(h.Values) != len(h.RowLabels) {
		return fmt.Errorf("report: heatmap has %d rows of values, %d row labels",
			len(h.Values), len(h.RowLabels))
	}
	max := h.Max
	if max <= 0 {
		for _, row := range h.Values {
			for _, v := range row {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && v > max {
					max = v
				}
			}
		}
	}
	if h.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", h.Title); err != nil {
			return err
		}
	}
	rowWidth := 0
	for _, l := range h.RowLabels {
		if len(l) > rowWidth {
			rowWidth = len(l)
		}
	}
	// Column header: column numbers 1..n, one character wide each (mod 10
	// keeps wide maps aligned), with the legend mapping numbers to labels.
	var head strings.Builder
	head.WriteString(strings.Repeat(" ", rowWidth))
	head.WriteString("  ")
	for c := range h.ColLabels {
		head.WriteByte(byte('1' + (c % 9)))
	}
	if _, err := fmt.Fprintln(w, head.String()); err != nil {
		return err
	}
	for r, row := range h.Values {
		var b strings.Builder
		b.WriteString(h.RowLabels[r])
		b.WriteString(strings.Repeat(" ", rowWidth-len(h.RowLabels[r])))
		b.WriteString("  ")
		for c := range h.ColLabels {
			v := math.NaN()
			if c < len(row) {
				v = row[c]
			}
			b.WriteByte(h.cellRune(v, max))
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	for c, l := range h.ColLabels {
		if _, err := fmt.Fprintf(w, "  col %d: %s\n", c+1, l); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  scale: '%s' = 0 .. %s, '!' = diverged, ' ' = no data\n",
		string(heatRamp[0]), F(max)); err != nil {
		return err
	}
	return nil
}

// String renders the heatmap to a string.
func (h *Heatmap) String() string {
	var b strings.Builder
	_ = h.Render(&b)
	return b.String()
}
