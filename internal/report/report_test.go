package report

import (
	"math"
	"strings"
	"testing"
)

func TestFFormats(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{math.NaN(), "nan"},
		{math.Inf(1), "+inf"},
		{math.Inf(-1), "-inf"},
		{1234567, "1.235e+06"},
		{0.00001, "1.000e-05"},
		{123.4, "123.4"},
		{1.5, "1.500"},
		{0.5, "0.50000"},
	}
	for _, c := range cases {
		if got := F(c.v); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if Pct(12.345) != "12.35%" && Pct(12.345) != "12.34%" {
		t.Errorf("Pct = %q", Pct(12.345))
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddFloats("beta", 2.5)
	tb.AddRow("short") // padded
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Fatalf("lines: %v", lines)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[2], "---") {
		t.Fatal("header/separator wrong")
	}
	if !strings.Contains(out, "2.500") {
		t.Fatal("AddFloats formatting missing")
	}
}

func TestFigureCSVAndRender(t *testing.T) {
	f := NewFigure("Fig X", "nodes", "util %", []float64{2, 4, 8})
	if err := f.Add("CF", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("BF", []float64{0.5, 1, 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("bad", []float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	var csv strings.Builder
	if err := f.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "nodes,CF,BF\n2,1,0.5\n4,2,1\n8,3,1.5\n"
	if csv.String() != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", csv.String(), want)
	}
	var txt strings.Builder
	if err := f.Render(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "Fig X") || !strings.Contains(txt.String(), "CF") {
		t.Fatal("render missing content")
	}
}

func TestFigureZeroWindows(t *testing.T) {
	// A timeline with no windows still renders: CSV is header-only and
	// the table form is title + header + separator with no data rows.
	f := NewFigure("Empty timeline", "t_us", "share", nil)
	if err := f.Add("application", nil); err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := f.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if csv.String() != "t_us,application\n" {
		t.Fatalf("csv: %q", csv.String())
	}
	var txt strings.Builder
	if err := f.Render(&txt); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(txt.String()), "\n")
	if len(lines) != 3 { // title, header, separator
		t.Fatalf("empty figure rendered %d lines: %v", len(lines), lines)
	}
}

func TestFigureSingleWindow(t *testing.T) {
	f := NewFigure("One-bin timeline", "t_us", "share", []float64{500})
	if err := f.Add("pd", []float64{0.25}); err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := f.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if csv.String() != "t_us,pd\n500,0.25\n" {
		t.Fatalf("csv: %q", csv.String())
	}
	var txt strings.Builder
	if err := f.Render(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "0.25000") {
		t.Fatalf("render missing single data row:\n%s", txt.String())
	}
}

func TestFigureManySparseWindows(t *testing.T) {
	// Windows outnumbering the underlying records: most bins are zero,
	// and every bin still gets its own row.
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = float64(i) * 10
	}
	y[0], y[63] = 1, 1
	f := NewFigure("Sparse timeline", "t_us", "share", x)
	if err := f.Add("app", y); err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	if err := f.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 65 { // header + 64 rows
		t.Fatalf("got %d lines, want 65", len(lines))
	}
	if lines[1] != "0,1" || lines[64] != "630,1" {
		t.Fatalf("edge rows wrong: %q / %q", lines[1], lines[64])
	}
}
