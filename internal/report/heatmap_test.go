package report

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapRender(t *testing.T) {
	h := &Heatmap{
		Title:     "test surface",
		RowLabels: []string{"row-a", "b"},
		ColLabels: []string{"m1", "m2", "m3"},
		Values: [][]float64{
			{0, 0.5, 1.0},
			{math.NaN(), math.Inf(1), 0.25},
		},
	}
	out := h.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "== test surface ==" {
		t.Fatalf("title line = %q", lines[0])
	}
	// Row lines: padded label, two spaces, one rune per column.
	if got, want := lines[2], "row-a  .+@"; got != want {
		t.Errorf("row 1 = %q, want %q", got, want)
	}
	if got, want := lines[3], "b"+strings.Repeat(" ", 7)+"!-"; got != want {
		t.Errorf("row 2 = %q, want %q", got, want)
	}
	for _, want := range []string{"col 1: m1", "col 3: m3", "scale:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHeatmapRowMismatch(t *testing.T) {
	h := &Heatmap{RowLabels: []string{"a"}, Values: nil}
	if err := h.Render(&strings.Builder{}); err == nil {
		t.Fatal("mismatched rows must error")
	}
}
