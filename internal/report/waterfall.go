package report

import (
	"fmt"
	"io"
	"strings"
)

// StageRow is one stage of a latency decomposition, ready to render:
// label, dwell statistics in microseconds, and the stage's share of the
// total (percent). The provenance engine's StageSummary maps onto it
// field for field; roccviz reconstructs the same rows from a trace.
type StageRow struct {
	Stage    string
	MeanUS   float64
	P50US    float64
	P95US    float64
	P99US    float64
	SharePct float64
}

// Waterfall renders a latency-decomposition waterfall: one line per
// stage with mean/p50/p95/p99 dwell and a '#' bar proportional to the
// stage's share of total latency, so the dominant stage is visible at a
// glance. Stages render in the order given (the pipeline order), shares
// need not sum to exactly 100.
type Waterfall struct {
	Title string
	Rows  []StageRow
	// BarWidth is the width of a 100% bar (default 40 columns).
	BarWidth int
}

// Render writes the waterfall.
func (wf *Waterfall) Render(w io.Writer) error {
	width := wf.BarWidth
	if width <= 0 {
		width = 40
	}
	if wf.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", wf.Title); err != nil {
			return err
		}
	}
	label, mean, p50, p95, p99 := len("stage"), len("mean_us"), len("p50"), len("p95"), len("p99")
	cells := make([][5]string, len(wf.Rows))
	for i, r := range wf.Rows {
		cells[i] = [5]string{r.Stage, F(r.MeanUS), F(r.P50US), F(r.P95US), F(r.P99US)}
		for j, w := range []*int{&label, &mean, &p50, &p95, &p99} {
			if len(cells[i][j]) > *w {
				*w = len(cells[i][j])
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %*s  %*s  %*s  %*s  %6s\n",
		label, "stage", mean, "mean_us", p50, "p50", p95, "p95", p99, "p99", "share"); err != nil {
		return err
	}
	for i, r := range wf.Rows {
		bar := int(r.SharePct/100*float64(width) + 0.5)
		if bar < 1 && r.SharePct > 0 {
			bar = 1 // a nonzero stage always shows
		}
		if bar > width {
			bar = width
		}
		c := cells[i]
		hashes := ""
		if bar > 0 {
			hashes = " " + strings.Repeat("#", bar)
		}
		if _, err := fmt.Fprintf(w, "%-*s  %*s  %*s  %*s  %*s  %5.1f%%%s\n",
			label, c[0], mean, c[1], p50, c[2], p95, c[3], p99, c[4],
			r.SharePct, hashes); err != nil {
			return err
		}
	}
	return nil
}

// String renders the waterfall to a string.
func (wf *Waterfall) String() string {
	var b strings.Builder
	_ = wf.Render(&b)
	return b.String()
}
