// Package report renders experiment outputs: aligned ASCII tables (for
// the paper's Tables 1-8) and multi-series figures as CSV and aligned
// columns (for Figures 8-31). Every experiment in cmd/roccbench and
// bench_test.go prints through this package so outputs are uniform and
// diffable.
package report

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// F formats a float compactly: fixed precision for moderate magnitudes,
// scientific for very small or large values, "inf"/"nan" passed through.
func F(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == 0:
		return "0"
	}
	av := math.Abs(v)
	if av >= 1e6 || av < 1e-4 {
		return strconv.FormatFloat(v, 'e', 3, 64)
	}
	if av >= 100 {
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	if av >= 1 {
		return strconv.FormatFloat(v, 'f', 3, 64)
	}
	return strconv.FormatFloat(v, 'f', 5, 64)
}

// Pct renders a percentage with two decimals.
func Pct(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) + "%" }

// Table is an aligned-column text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddFloats appends a row of formatted floats after a leading label cell.
func (t *Table) AddFloats(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, F(v))
	}
	t.AddRow(cells...)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		_, err := fmt.Fprintln(w, b.String())
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Series is one named line of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Figure is a multi-series plot rendered as data columns: one X column
// shared by all series, exactly the rows/series a plotting tool would
// consume to regenerate the paper's figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// NewFigure creates a figure with the shared x-axis values.
func NewFigure(title, xlabel, ylabel string, x []float64) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel, X: x}
}

// Add appends a series; its length must match the x-axis.
func (f *Figure) Add(name string, y []float64) error {
	if len(y) != len(f.X) {
		return fmt.Errorf("report: series %q has %d points, x-axis has %d", name, len(y), len(f.X))
	}
	f.Series = append(f.Series, Series{Name: name, Y: y})
	return nil
}

// RenderCSV writes the figure as CSV: header then one row per x value.
func (f *Figure) RenderCSV(w io.Writer) error {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := range f.X {
		cells := []string{strconv.FormatFloat(f.X[i], 'g', -1, 64)}
		for _, s := range f.Series {
			cells = append(cells, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Render writes the figure as an aligned table with a title block.
func (f *Figure) Render(w io.Writer) error {
	t := NewTable(fmt.Sprintf("%s  [y: %s]", f.Title, f.YLabel), append([]string{f.XLabel}, seriesNames(f.Series)...)...)
	for i := range f.X {
		vals := make([]float64, len(f.Series))
		for j, s := range f.Series {
			vals[j] = s.Y[i]
		}
		t.AddFloats(F(f.X[i]), vals...)
	}
	return t.Render(w)
}

func seriesNames(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}
