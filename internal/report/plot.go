package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotOptions controls ASCII line-plot rendering.
type PlotOptions struct {
	Width  int  // plot area columns (default 64)
	Height int  // plot area rows (default 16)
	LogX   bool // logarithmic x axis
	LogY   bool // logarithmic y axis
}

// markers assigns one glyph per series, in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Plot renders the figure as an ASCII line chart: one glyph per series,
// a y-axis scale on the left, and the x range below. Non-finite values
// are skipped. It complements RenderCSV/Render for quick terminal
// inspection of the paper's figures.
func (f *Figure) Plot(w io.Writer, opt PlotOptions) error {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	if len(f.X) == 0 || len(f.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", f.Title)
		return err
	}

	tx := func(v float64) float64 { return v }
	ty := tx
	if opt.LogX {
		tx = safeLog10
	}
	if opt.LogY {
		ty = safeLog10
	}

	// Bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	for _, x := range f.X {
		v := tx(x)
		if !finite(v) {
			continue
		}
		xmin, xmax = math.Min(xmin, v), math.Max(xmax, v)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, y := range s.Y {
			v := ty(y)
			if !finite(v) {
				continue
			}
			ymin, ymax = math.Min(ymin, v), math.Max(ymax, v)
		}
	}
	if !finite(xmin) || !finite(ymin) {
		_, err := fmt.Fprintf(w, "%s: (no finite data)\n", f.Title)
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, opt.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opt.Width))
	}
	col := func(x float64) int {
		c := int(math.Round((tx(x) - xmin) / (xmax - xmin) * float64(opt.Width-1)))
		return clampInt(c, 0, opt.Width-1)
	}
	rowOf := func(y float64) int {
		r := int(math.Round((ty(y) - ymin) / (ymax - ymin) * float64(opt.Height-1)))
		return clampInt(opt.Height-1-r, 0, opt.Height-1)
	}

	for si, s := range f.Series {
		mark := markers[si%len(markers)]
		prevC, prevR := -1, -1
		for i, y := range s.Y {
			if !finite(ty(y)) || !finite(tx(f.X[i])) {
				prevC = -1
				continue
			}
			c, r := col(f.X[i]), rowOf(y)
			if prevC >= 0 {
				drawLine(grid, prevC, prevR, c, r, '.')
			}
			grid[r][c] = mark
			prevC, prevR = c, r
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", f.Title); err != nil {
		return err
	}
	legend := make([]string, 0, len(f.Series))
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if _, err := fmt.Fprintf(w, "  [%s]  y: %s\n", strings.Join(legend, "   "), f.YLabel); err != nil {
		return err
	}
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = axisLabel(ymax, opt.LogY)
		case opt.Height - 1:
			label = axisLabel(ymin, opt.LogY)
		case (opt.Height - 1) / 2:
			label = axisLabel((ymin+ymax)/2, opt.LogY)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", opt.Width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%10s  %-*s%s   (x: %s)\n", "",
		opt.Width-len(axisLabel(xmax, opt.LogX)), axisLabel(xmin, opt.LogX),
		axisLabel(xmax, opt.LogX), f.XLabel)
	return err
}

// axisLabel formats an axis tick, undoing the log transform for display.
func axisLabel(v float64, logged bool) string {
	if logged {
		return F(math.Pow(10, v))
	}
	return F(v)
}

// drawLine draws a Bresenham segment with a light glyph, not overwriting
// existing data markers.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, glyph byte) {
	dx, dy := absInt(x1-x0), -absInt(y1-y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if grid[y0][x0] == ' ' {
			grid[y0][x0] = glyph
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func safeLog10(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return math.Log10(v)
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
