package report

import (
	"math"
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	f := NewFigure("Overhead vs SP", "sp_ms", "util %", []float64{1, 2, 4, 8})
	if err := f.Add("CF", []float64{26, 13, 7, 3.4}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("BF", []float64{1.6, 0.8, 0.4, 0.2}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f.Plot(&b, PlotOptions{Width: 40, Height: 10}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Overhead vs SP") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* CF") || !strings.Contains(out, "+ BF") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("missing data markers")
	}
	// y axis labels: max 26 at the top line, min 0.2 at the bottom.
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines = append(plotLines, l)
		}
	}
	if len(plotLines) != 10 {
		t.Fatalf("%d plot rows, want 10", len(plotLines))
	}
	if !strings.Contains(plotLines[0], "26") {
		t.Fatalf("top label missing: %q", plotLines[0])
	}
}

func TestPlotLogAxes(t *testing.T) {
	f := NewFigure("log", "x", "y", []float64{1, 10, 100, 1000})
	if err := f.Add("s", []float64{1, 10, 100, 1000}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f.Plot(&b, PlotOptions{Width: 30, Height: 8, LogX: true, LogY: true}); err != nil {
		t.Fatal(err)
	}
	// On log-log a power law is a straight diagonal: marker column should
	// advance with row. Just verify all four markers are present and the
	// axis labels show the original (unlogged) values.
	out := b.String()
	if strings.Count(out, "*") < 4 {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "1000") {
		t.Fatal("unlogged axis label missing")
	}
}

func TestPlotHandlesNonFinite(t *testing.T) {
	f := NewFigure("inf", "x", "y", []float64{1, 2, 3})
	if err := f.Add("s", []float64{1, math.Inf(1), 2}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f.Plot(&b, PlotOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Fatal("finite points should still plot")
	}
	// All-infinite series: graceful message.
	f2 := NewFigure("allinf", "x", "y", []float64{1})
	if err := f2.Add("s", []float64{math.NaN()}); err != nil {
		t.Fatal(err)
	}
	var b2 strings.Builder
	if err := f2.Plot(&b2, PlotOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "no finite data") {
		t.Fatalf("got %q", b2.String())
	}
}

func TestPlotEmpty(t *testing.T) {
	f := NewFigure("empty", "x", "y", nil)
	var b strings.Builder
	if err := f.Plot(&b, PlotOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty figure message missing")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	f := NewFigure("const", "x", "y", []float64{1, 2, 3})
	if err := f.Add("s", []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f.Plot(&b, PlotOptions{Width: 20, Height: 6}); err != nil {
		t.Fatal(err)
	}
	stars := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.Contains(line, "|") {
			stars += strings.Count(line, "*")
		}
	}
	if stars != 3 {
		t.Fatalf("constant series should plot 3 points, got %d:\n%s", stars, b.String())
	}
}
