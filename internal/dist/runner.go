package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"rocc/internal/core"
)

// Runner is one worker slot: a recipe for starting (and, after a
// failure, restarting) a worker process. The driver runs one slot
// goroutine per Runner; a slot whose workers keep failing is quarantined
// and the rest of the fleet absorbs its shards.
type Runner interface {
	// Name identifies the slot in warnings and quarantine decisions
	// ("worker-0", "ssh host3").
	Name() string
	// Start launches a fresh worker. The context covers the worker's
	// whole lifetime, not just startup.
	Start(ctx context.Context) (Worker, error)
}

// Worker executes shards one at a time. Implementations must honor ctx
// cancellation in Run — a hung worker is killed through it — and must
// tolerate Close being called more than once, including concurrently
// with Run.
type Worker interface {
	// Run executes one shard (jobs in order, one Result per job). The id
	// is the shard index; protocol-based workers echo it so a desynced
	// stream is detected instead of mismerged.
	Run(ctx context.Context, id int, jobs []Job) ([]core.Result, error)
	// Close tears the worker down (kills the process for subprocess
	// workers). Safe to call multiple times.
	Close() error
}

// SubprocessRunner starts workers as local child processes speaking the
// length-prefixed JSON protocol on stdin/stdout — the `roccsweep -worker`
// mode. The zero value re-executes the current binary with -worker,
// which is what roccsweep and roccbench use for local fan-out.
type SubprocessRunner struct {
	// Binary is the worker executable; empty means the current binary
	// (os.Executable).
	Binary string
	// Args are the worker arguments; nil means ["-worker"].
	Args []string
	// Env is the child environment; nil inherits the parent's.
	Env []string
	// Stderr receives the worker's stderr; nil means the parent's.
	Stderr io.Writer
	// Label distinguishes slots in logs; empty means "subprocess".
	Label string
}

// Name implements Runner.
func (r SubprocessRunner) Name() string {
	if r.Label != "" {
		return r.Label
	}
	return "subprocess"
}

// Start implements Runner.
func (r SubprocessRunner) Start(ctx context.Context) (Worker, error) {
	bin := r.Binary
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("dist: resolve current binary: %w", err)
		}
		bin = exe
	}
	args := r.Args
	if args == nil {
		args = []string{"-worker"}
	}
	cmd := exec.Command(bin, args...)
	cmd.Env = r.Env
	if r.Stderr != nil {
		cmd.Stderr = r.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	return startProcWorker(ctx, cmd, r.Name())
}

// SSHRunner starts workers on a remote host through the ssh binary: the
// same stdin/stdout protocol, tunneled over `ssh host <command>`. The
// remote host needs a roccsweep binary on its PATH (or Command pointing
// at one); no daemon, port, or shared filesystem is required.
type SSHRunner struct {
	// Host is the ssh destination (host or user@host).
	Host string
	// Command is the remote worker command line; empty means
	// "roccsweep -worker".
	Command string
	// SSH is the client binary; empty means "ssh".
	SSH string
	// ExtraArgs precede the host (e.g. -o BatchMode=yes -i key).
	ExtraArgs []string
	// Stderr receives the ssh client's stderr; nil means the parent's.
	Stderr io.Writer
}

// Name implements Runner.
func (r SSHRunner) Name() string { return "ssh " + r.Host }

// Start implements Runner.
func (r SSHRunner) Start(ctx context.Context) (Worker, error) {
	ssh := r.SSH
	if ssh == "" {
		ssh = "ssh"
	}
	command := r.Command
	if command == "" {
		command = "roccsweep -worker"
	}
	args := append(append([]string{}, r.ExtraArgs...), r.Host, command)
	cmd := exec.Command(ssh, args...)
	if r.Stderr != nil {
		cmd.Stderr = r.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	return startProcWorker(ctx, cmd, r.Name())
}

// procWorker drives one worker process over the wire protocol.
type procWorker struct {
	name string
	cmd  *exec.Cmd
	in   io.WriteCloser
	out  *bufio.Reader

	closeOnce sync.Once
	closeErr  error
}

func startProcWorker(ctx context.Context, cmd *exec.Cmd, name string) (Worker, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: %s: stdin: %w", name, err)
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: %s: stdout: %w", name, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: %s: start: %w", name, err)
	}
	return &procWorker{name: name, cmd: cmd, in: in, out: bufio.NewReader(out)}, nil
}

// Run implements Worker: one request/response exchange, with the process
// killed if ctx expires first (a hung or wedged worker holds no locks we
// need — a fresh one takes its place).
func (w *procWorker) Run(ctx context.Context, id int, jobs []Job) ([]core.Result, error) {
	tc := traceContextFrom(ctx)
	req := request{V: wireVersion, ID: id, Jobs: jobs}
	if tc != nil {
		req.Trace = &wireTrace{Shard: tc.Shard, Attempt: tc.Attempt, Base: tc.Base}
	}
	if err := writeFrame(w.in, req); err != nil {
		w.Close()
		return nil, fmt.Errorf("dist: %s: send shard %d: %w", w.name, id, err)
	}
	type reply struct {
		resp response
		err  error
	}
	ch := make(chan reply, 1)
	go func() {
		var resp response
		err := readFrame(w.out, &resp)
		ch <- reply{resp, err}
	}()
	select {
	case <-ctx.Done():
		// Killing the process unblocks the reader goroutine via pipe EOF.
		w.Close()
		return nil, ctx.Err()
	case r := <-ch:
		if r.err != nil {
			w.Close()
			return nil, fmt.Errorf("dist: %s: shard %d: %w", w.name, id, r.err)
		}
		if r.resp.ID != id {
			w.Close()
			return nil, fmt.Errorf("dist: %s: response for shard %d, want %d (stream desynced)", w.name, r.resp.ID, id)
		}
		if r.resp.Error != "" {
			return nil, errors.New(r.resp.Error)
		}
		if tc != nil && tc.collect != nil {
			tc.collect(r.resp.Spans)
		}
		return r.resp.Results, nil
	}
}

// Close implements Worker: kill the process and reap it.
func (w *procWorker) Close() error {
	w.closeOnce.Do(func() {
		w.in.Close()
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
		w.closeErr = w.cmd.Wait()
	})
	return w.closeErr
}

// InProcessRunner executes shards on the driver's own goroutines — no
// subprocess, no serialization. It is the reference Runner for tests
// (wrap it in Chaos for fault injection) and a way to mix local cores
// into a remote fleet.
type InProcessRunner struct {
	// ID distinguishes slots in logs.
	ID int
}

// Name implements Runner.
func (r InProcessRunner) Name() string { return fmt.Sprintf("inproc-%d", r.ID) }

// Start implements Runner.
func (r InProcessRunner) Start(ctx context.Context) (Worker, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return inProcWorker{}, nil
}

type inProcWorker struct{}

func (inProcWorker) Run(ctx context.Context, _ int, jobs []Job) ([]core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if tc := traceContextFrom(ctx); tc != nil {
		// Same traced path the wire-protocol worker runs, minus the pipes.
		res, spans, err := executeShard(jobs, &wireTrace{Shard: tc.Shard, Attempt: tc.Attempt, Base: tc.Base})
		if err == nil && tc.collect != nil {
			tc.collect(spans)
		}
		return res, err
	}
	out := make([]core.Result, 0, len(jobs))
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := Execute(j)
		if err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func (inProcWorker) Close() error { return nil }

// LocalRunners returns n subprocess runners that re-execute the current
// binary with -worker — the standard local multi-process fleet.
func LocalRunners(n int) []Runner {
	rs := make([]Runner, n)
	for i := range rs {
		rs[i] = SubprocessRunner{Label: fmt.Sprintf("worker-%d", i)}
	}
	return rs
}
