package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"testing"
	"time"

	"rocc/internal/obs"
)

// slowEveryAttempt makes a Chaos runner delay every surviving attempt by
// d. The chaos fixtures use it on the healthy workers so the doomed slot
// is guaranteed dispatches (and hence its quarantine) before the fast
// in-process shards drain the queue — without it the tests race the
// scheduler.
func slowEveryAttempt(c *Chaos, d time.Duration) *Chaos {
	c.Delay = 1.0
	c.DelayFor = func(ctx context.Context) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
		}
	}
	return c
}

// tracedChaosOpts is the shared fixture: a doomed worker (guarantees
// retry and quarantine spans) plus healthy-but-slowed ones.
func tracedChaosOpts(tr *TraceRecorder) Options {
	opt := fastOpts()
	opt.ShardSize = 2
	opt.QuarantineAfter = 2
	opt.Log = io.Discard
	opt.Trace = tr
	opt.Runners = []Runner{
		&Chaos{Inner: InProcessRunner{ID: 0}, Seed: 7, Crash: 1.0},
		slowEveryAttempt(&Chaos{Inner: InProcessRunner{ID: 1}, Seed: 11}, 5*time.Millisecond),
		slowEveryAttempt(&Chaos{Inner: InProcessRunner{ID: 2}, Seed: 13}, 5*time.Millisecond),
	}
	return opt
}

// Tracing must be purely observational: a traced chaotic sweep returns
// the same bytes as the untraced local baseline, while the merged
// timeline contains every lifecycle category — dispatch, run, per-job,
// retry backoff, quarantine, and the final merge.
func TestTraceDoesNotChangeResults(t *testing.T) {
	jobs := testJobs(t, 12)
	want := mustJSON(t, baseline(t, jobs))

	tr := NewTraceRecorder()
	got, err := Run(context.Background(), jobs, tracedChaosOpts(tr))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), want) {
		t.Fatal("traced sweep diverges from local baseline")
	}

	cats := tr.Categories()
	for _, want := range []string{"dispatch", "run", "job", "retry", "quarantine", "merge"} {
		if cats[want] == 0 {
			t.Errorf("merged timeline has no %q spans: %v", want, cats)
		}
	}
	if cats["merge"] != 1 {
		t.Errorf("merge spans = %d, want exactly 1", cats["merge"])
	}
}

// The wire protocol must carry trace context out and spans back: a
// traced sweep over real subprocess workers produces worker-side run and
// per-job spans in the merged timeline, with results still byte-equal to
// the baseline.
func TestTraceOverWireProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess workers in -short mode")
	}
	jobs := testJobs(t, 8)
	want := mustJSON(t, baseline(t, jobs))

	tr := NewTraceRecorder()
	opt := fastOpts()
	opt.ShardSize = 2
	opt.MaxShardAttempts = 1 // no speculation: exactly one attempt per shard
	opt.Trace = tr
	opt.Runners = testSubprocessRunners(t, 2)
	got, err := Run(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), want) {
		t.Fatal("traced subprocess sweep diverges from local baseline")
	}
	cats := tr.Categories()
	if cats["run"] != 4 {
		t.Errorf("run spans = %d, want 4 (one per shard)", cats["run"])
	}
	if cats["job"] != 8 {
		t.Errorf("job spans = %d, want 8 (one per job)", cats["job"])
	}
}

// The exported timeline must be valid Chrome trace-event JSON (the same
// validator roccviz -check applies) with one process track per worker
// slot plus the coordinator track.
func TestTraceWriteChromeValidates(t *testing.T) {
	jobs := testJobs(t, 12)
	tr := NewTraceRecorder()
	if _, err := Run(context.Background(), jobs, tracedChaosOpts(tr)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("WriteChrome output invalid: %v", err)
	}
	if n < tr.Len() {
		t.Fatalf("exported %d events for %d recorded", n, tr.Len())
	}

	var events []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	tracks := map[string]int{}
	for _, e := range events {
		if e.Ph == "M" && e.Name == "process_name" {
			tracks[e.Args["name"].(string)] = e.PID
		}
	}
	if _, ok := tracks[trackCoordinator]; !ok {
		t.Fatalf("no coordinator track in %v", tracks)
	}
	workerTracks := 0
	pids := map[int]bool{}
	for name, pid := range tracks {
		if pids[pid] {
			t.Fatalf("pid %d reused across tracks: %v", pid, tracks)
		}
		pids[pid] = true
		if name != trackCoordinator && name != trackLocal {
			workerTracks++
		}
	}
	if workerTracks < 2 {
		t.Fatalf("want per-worker tracks for the fleet, got %v", tracks)
	}
}

// An untraced sweep must carry no trace context: the wire request omits
// the trace field entirely, which is what keeps old workers compatible
// and the disabled path free.
func TestUntracedRequestOmitsTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, request{V: wireVersion, ID: 3, Jobs: nil}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("trace")) {
		t.Fatalf("untraced request leaks a trace field: %s", buf.Bytes()[4:])
	}
	var req request
	if err := readFrame(bytes.NewReader(buf.Bytes()), &req); err != nil {
		t.Fatal(err)
	}
	if req.Trace != nil {
		t.Fatal("round-trip invented a trace context")
	}
}
