package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rocc/internal/core"
	"rocc/internal/obs"
	"rocc/internal/scenario"
)

// TestMain doubles as the worker binary: when re-executed with
// ROCC_DIST_WORKER=1 the process speaks the wire protocol on
// stdin/stdout instead of running tests — the same self-exec trick
// roccsweep uses in production.
func TestMain(m *testing.M) {
	if os.Getenv("ROCC_DIST_WORKER") == "1" {
		if err := ServeWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testJobs builds a small deterministic job list from the smoke grid —
// real simulations, short durations.
func testJobs(t testing.TB, n int) []Job {
	t.Helper()
	jobs := SweepJobs(scenario.SmokeGrid(), 1, 1, 0.02)
	if len(jobs) < n {
		t.Fatalf("smoke grid yields %d jobs, test wants %d", len(jobs), n)
	}
	return jobs[:n]
}

// baseline runs the jobs on the pure local path — the reference every
// distributed configuration must reproduce byte for byte.
func baseline(t testing.TB, jobs []Job) []core.Result {
	t.Helper()
	res, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatalf("local baseline: %v", err)
	}
	return res
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fastOpts are fault-handling options tuned for test wall-clock: quick
// retries, deadlines generous enough for a real shard but short enough
// that an injected hang dies fast.
func fastOpts() Options {
	return Options{
		RetryBaseDelay:  time.Millisecond,
		RetryMaxDelay:   5 * time.Millisecond,
		InitialDeadline: 5 * time.Second,
		MinDeadline:     time.Second,
	}
}

// TestLocalMatchesReplicationPath pins the determinism contract at its
// root: the dist job chain reproduces core.RunReplications exactly.
func TestLocalMatchesReplicationPath(t *testing.T) {
	g := scenario.SmokeGrid()
	const reps = 3
	jobs := SweepJobs(g, 7, reps, 0.02)
	got, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range g.Cells[:4] {
		cfg, err := cell.Spec.Config()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Duration = 0.02 * 1e6
		cfg.Seed = core.DeriveSeed(7, core.SeedStreamFactorial, uint64(i))
		want, err := core.RunReplications(cfg, reps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i*reps:(i+1)*reps], want.Results) {
			t.Fatalf("cell %d (%s): dist results diverge from core.RunReplications", i, cell.ID)
		}
	}
}

// TestDeterministicUnderFaults is the headline guarantee: with crashes,
// hangs, delays, and start failures injected deterministically, the
// merged output is byte-identical to the single-host run at every worker
// count.
func TestDeterministicUnderFaults(t *testing.T) {
	jobs := testJobs(t, 12)
	want := mustJSON(t, baseline(t, jobs))

	for _, workers := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			runners := make([]Runner, workers)
			for i := range runners {
				runners[i] = &Chaos{
					Inner:     InProcessRunner{ID: i},
					Seed:      uint64(100 + i),
					Crash:     0.25,
					Hang:      0.05,
					StartFail: 0.2,
				}
			}
			opt := fastOpts()
			opt.Runners = runners
			opt.MinDeadline = 500 * time.Millisecond
			opt.Metrics = obs.NewSweepMetrics()
			var log bytes.Buffer
			opt.Log = &log
			got, err := Run(context.Background(), jobs, opt)
			if err != nil {
				t.Fatalf("Run: %v\nlog:\n%s", err, log.String())
			}
			if !bytes.Equal(mustJSON(t, got), want) {
				t.Fatalf("output diverges from local baseline under faults\nlog:\n%s", log.String())
			}
		})
	}
}

// attemptLog counts attempts per shard across all workers.
type attemptLog struct {
	mu sync.Mutex
	n  map[int]int
}

func (a *attemptLog) next(shard int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == nil {
		a.n = make(map[int]int)
	}
	k := a.n[shard]
	a.n[shard]++
	return k
}

// hookRunner injects scripted behavior per (shard, attempt).
type hookRunner struct {
	name string
	log  *attemptLog
	hook func(ctx context.Context, shard, attempt int) error
}

func (r hookRunner) Name() string { return r.name }
func (r hookRunner) Start(ctx context.Context) (Worker, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return hookWorker{r}, nil
}

type hookWorker struct{ r hookRunner }

func (w hookWorker) Run(ctx context.Context, id int, jobs []Job) ([]core.Result, error) {
	if w.r.hook != nil {
		if err := w.r.hook(ctx, id, w.r.log.next(id)); err != nil {
			return nil, err
		}
	}
	return inProcWorker{}.Run(ctx, id, jobs)
}

func (hookWorker) Close() error { return nil }

// TestSpeculativeRedispatch wedges shard 0's first attempt forever (no
// deadline pressure) and checks an idle worker duplicates it: the sweep
// completes through speculation, and the straggler's eventual death
// changes nothing.
func TestSpeculativeRedispatch(t *testing.T) {
	jobs := testJobs(t, 6)
	want := mustJSON(t, baseline(t, jobs))

	log := &attemptLog{}
	hook := func(ctx context.Context, shard, attempt int) error {
		if shard == 0 && attempt == 0 {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
	opt := fastOpts()
	opt.InitialDeadline = time.Minute // speculation, not the deadline, must resolve the straggler
	opt.MinDeadline = time.Minute
	opt.Runners = []Runner{
		hookRunner{name: "stall", log: log, hook: hook},
		hookRunner{name: "fast", log: log, hook: hook},
	}
	opt.Metrics = obs.NewSweepMetrics()
	got, err := Run(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), want) {
		t.Fatal("output diverges from local baseline with a wedged straggler")
	}
	if n := opt.Metrics.Redispatches.Value(); n < 1 {
		t.Fatalf("Redispatches = %d, want >= 1", n)
	}
}

// TestHangKilledByDeadline wedges one attempt until its per-attempt
// deadline expires; the driver must count the timeout, retry the shard,
// and still match the baseline.
func TestHangKilledByDeadline(t *testing.T) {
	jobs := testJobs(t, 5)
	want := mustJSON(t, baseline(t, jobs))

	log := &attemptLog{}
	opt := fastOpts()
	opt.Runners = []Runner{hookRunner{name: "hang-once", log: log,
		hook: func(ctx context.Context, shard, attempt int) error {
			if shard == 2 && attempt == 0 {
				<-ctx.Done()
				return ctx.Err()
			}
			return nil
		}}}
	opt.MinDeadline = 300 * time.Millisecond
	opt.InitialDeadline = 2 * time.Second
	opt.Metrics = obs.NewSweepMetrics()
	got, err := Run(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), want) {
		t.Fatal("output diverges from local baseline after a deadline-killed hang")
	}
	if n := opt.Metrics.Timeouts.Value(); n < 1 {
		t.Fatalf("Timeouts = %d, want >= 1", n)
	}
	if n := opt.Metrics.Retries.Value(); n < 1 {
		t.Fatalf("Retries = %d, want >= 1", n)
	}
}

// TestQuarantineAndLocalFallback retires every worker (all attempts
// fail), forcing graceful degradation: the sweep completes locally with
// a warning, still byte-identical.
func TestQuarantineAndLocalFallback(t *testing.T) {
	jobs := testJobs(t, 6)
	want := mustJSON(t, baseline(t, jobs))

	alwaysFail := func(ctx context.Context, shard, attempt int) error {
		return fmt.Errorf("injected failure (shard %d attempt %d)", shard, attempt)
	}
	log := &attemptLog{}
	opt := fastOpts()
	opt.Runners = []Runner{
		hookRunner{name: "bad-0", log: log, hook: alwaysFail},
		hookRunner{name: "bad-1", log: log, hook: alwaysFail},
	}
	opt.QuarantineAfter = 2
	opt.Metrics = obs.NewSweepMetrics()
	var buf bytes.Buffer
	opt.Log = &buf
	got, err := Run(context.Background(), jobs, opt)
	if err != nil {
		t.Fatalf("Run: %v\nlog:\n%s", err, buf.String())
	}
	if !bytes.Equal(mustJSON(t, got), want) {
		t.Fatal("fallback output diverges from local baseline")
	}
	if n := opt.Metrics.Quarantines.Value(); n != 2 {
		t.Fatalf("Quarantines = %d, want 2", n)
	}
	if n := opt.Metrics.LocalShards.Value(); n == 0 {
		t.Fatal("LocalShards = 0, want > 0 after fallback")
	}
	if !strings.Contains(buf.String(), "quarantined") {
		t.Fatalf("log lacks quarantine warning:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "locally") {
		t.Fatalf("log lacks local-fallback warning:\n%s", buf.String())
	}
}

// TestNoLocalFallback: with degradation disabled, losing the fleet is an
// error, not a silent local run.
func TestNoLocalFallback(t *testing.T) {
	jobs := testJobs(t, 3)
	log := &attemptLog{}
	opt := fastOpts()
	opt.Runners = []Runner{hookRunner{name: "bad", log: log,
		hook: func(ctx context.Context, shard, attempt int) error {
			return fmt.Errorf("injected failure")
		}}}
	opt.QuarantineAfter = 2
	opt.NoLocalFallback = true
	if _, err := Run(context.Background(), jobs, opt); err == nil {
		t.Fatal("Run succeeded, want error with NoLocalFallback and no live workers")
	}
}

// TestShardSizes: shard granularity is invisible in the output,
// including the ragged final shard.
func TestShardSizes(t *testing.T) {
	jobs := testJobs(t, 8)
	want := mustJSON(t, baseline(t, jobs))
	for _, size := range []int{2, 3, 8, 100} {
		opt := fastOpts()
		opt.ShardSize = size
		opt.Runners = []Runner{InProcessRunner{ID: 0}, InProcessRunner{ID: 1}}
		got, err := Run(context.Background(), jobs, opt)
		if err != nil {
			t.Fatalf("ShardSize=%d: %v", size, err)
		}
		if !bytes.Equal(mustJSON(t, got), want) {
			t.Fatalf("ShardSize=%d: output diverges from baseline", size)
		}
	}
}

func TestMakeShards(t *testing.T) {
	shards := makeShards(7, 3)
	want := []shardRange{{0, 3}, {3, 6}, {6, 7}}
	if !reflect.DeepEqual(shards, want) {
		t.Fatalf("makeShards(7,3) = %v, want %v", shards, want)
	}
	if got := makeShards(0, 3); len(got) != 0 {
		t.Fatalf("makeShards(0,3) = %v, want empty", got)
	}
}

// countRunner records which shards actually execute — the resume tests'
// probe that recovered shards are not recomputed.
type countRunner struct {
	id  int
	mu  *sync.Mutex
	ran map[int]int
}

func (r countRunner) Name() string { return fmt.Sprintf("count-%d", r.id) }
func (r countRunner) Start(ctx context.Context) (Worker, error) {
	return countWorker{r}, nil
}

type countWorker struct{ r countRunner }

func (w countWorker) Run(ctx context.Context, id int, jobs []Job) ([]core.Result, error) {
	w.r.mu.Lock()
	w.r.ran[id]++
	w.r.mu.Unlock()
	return inProcWorker{}.Run(ctx, id, jobs)
}
func (countWorker) Close() error { return nil }

// TestJournalResume interrupts a sweep (simulated by truncating the
// journal to a prefix plus a garbage half-line, as a crash mid-append
// leaves it), then resumes: only the missing shards recompute, the
// garbage tail is cut, and the output is byte-identical.
func TestJournalResume(t *testing.T) {
	jobs := testJobs(t, 8)
	want := mustJSON(t, baseline(t, jobs))
	path := filepath.Join(t.TempDir(), "sweep.journal")

	// Full run, journaled (pure local: journaling is path-independent).
	opt := Options{Journal: path}
	if _, err := Run(context.Background(), jobs, opt); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(full), "\n"), "\n")
	if len(lines) != 1+len(jobs) { // header + one entry per shard (ShardSize 1)
		t.Fatalf("journal has %d lines, want %d", len(lines), 1+len(jobs))
	}

	// Keep the header and two completed shards; add a torn half-entry.
	const keep = 2
	var recovered []int
	for _, ln := range lines[1 : 1+keep] {
		var e journalEntry
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatal(err)
		}
		recovered = append(recovered, e.Shard)
	}
	prefix := strings.Join(lines[:1+keep], "") + `{"shard":5,"TORN`
	if err := os.WriteFile(path, []byte(prefix), 0o644); err != nil {
		t.Fatal(err)
	}

	mu := &sync.Mutex{}
	ran := map[int]int{}
	opt2 := fastOpts()
	opt2.Journal = path
	opt2.Resume = true
	opt2.Runners = []Runner{countRunner{id: 0, mu: mu, ran: ran}}
	var log bytes.Buffer
	opt2.Log = &log
	got, err := Run(context.Background(), jobs, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), want) {
		t.Fatal("resumed output diverges from baseline")
	}
	if len(ran) != len(jobs)-keep {
		t.Fatalf("resume recomputed %d shards, want %d\nlog:\n%s", len(ran), len(jobs)-keep, log.String())
	}
	for _, si := range recovered {
		if ran[si] != 0 {
			t.Fatalf("resume recomputed already-journaled shard %d", si)
		}
	}
	if !strings.Contains(log.String(), "resumed 2/8 shards") {
		t.Fatalf("log lacks resume note:\n%s", log.String())
	}

	// The finished journal must again cover every shard, garbage gone.
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(final), `"TORN`) {
		t.Fatal("garbage tail survived resume")
	}
	seen := map[int]bool{}
	for i, ln := range strings.Split(strings.TrimRight(string(final), "\n"), "\n")[1:] {
		var e journalEntry
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("final journal line %d: %v", i+1, err)
		}
		if seen[e.Shard] {
			t.Fatalf("shard %d journaled twice", e.Shard)
		}
		seen[e.Shard] = true
	}
	if len(seen) != len(jobs) {
		t.Fatalf("final journal covers %d shards, want %d", len(seen), len(jobs))
	}
}

// TestJournalRejectsForeignSweep: a journal from different jobs (seed,
// grid, reps, or duration) must refuse to resume, not silently merge
// wrong results.
func TestJournalRejectsForeignSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	jobsA := SweepJobs(scenario.SmokeGrid(), 1, 1, 0.02)[:3]
	jobsB := SweepJobs(scenario.SmokeGrid(), 2, 1, 0.02)[:3]
	if _, err := Run(context.Background(), jobsA, Options{Journal: path}); err != nil {
		t.Fatal(err)
	}
	opt := Options{Journal: path, Resume: true}
	if _, err := Run(context.Background(), jobsB, opt); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("resume against foreign journal: err = %v, want 'different sweep'", err)
	}
}

// TestResumeWithoutJournalFile: -resume with no existing journal starts
// fresh rather than failing.
func TestResumeWithoutJournalFile(t *testing.T) {
	jobs := testJobs(t, 3)
	path := filepath.Join(t.TempDir(), "fresh.journal")
	opt := Options{Journal: path, Resume: true}
	got, err := Run(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, got), mustJSON(t, baseline(t, jobs))) {
		t.Fatal("resume-from-nothing diverges from baseline")
	}
}

// TestServeWorkerProtocol drives the worker loop over in-memory buffers:
// normal execution, in-band job errors, and version mismatch.
func TestServeWorkerProtocol(t *testing.T) {
	jobs := testJobs(t, 2)

	var in, out bytes.Buffer
	if err := writeFrame(&in, request{V: wireVersion, ID: 3, Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	bad := Job{Spec: scenario.Spec{Arch: "no-such-arch", Nodes: 1, Duration: 1000}}
	if err := writeFrame(&in, request{V: wireVersion, ID: 4, Jobs: []Job{bad}}); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&in, request{V: 99, ID: 5}); err != nil {
		t.Fatal(err)
	}
	if err := ServeWorker(&in, &out); err != nil {
		t.Fatalf("ServeWorker: %v", err)
	}

	var resp response
	if err := readFrame(&out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 3 || resp.Error != "" || len(resp.Results) != 2 {
		t.Fatalf("shard 3 response: %+v", resp)
	}
	want, err := executeAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Results, want) {
		t.Fatal("worker results diverge from in-process execution")
	}
	resp = response{}
	if err := readFrame(&out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 4 || resp.Error == "" {
		t.Fatalf("bad-job response: %+v, want in-band error", resp)
	}
	resp = response{}
	if err := readFrame(&out, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != 5 || !strings.Contains(resp.Error, "protocol version") {
		t.Fatalf("version-mismatch response: %+v", resp)
	}
}

// testSubprocessRunners re-executes this test binary as real worker
// processes (see TestMain).
func testSubprocessRunners(t *testing.T, n int) []Runner {
	t.Helper()
	rs := make([]Runner, n)
	for i := range rs {
		rs[i] = SubprocessRunner{
			Binary: os.Args[0],
			Args:   []string{},
			Env:    append(os.Environ(), "ROCC_DIST_WORKER=1"),
			Label:  fmt.Sprintf("worker-%d", i),
		}
	}
	return rs
}

// TestSubprocessWorkers runs the full stack — self-exec, wire protocol,
// process teardown — with two real worker processes, and again with
// crash injection killing workers mid-sweep; both must match the local
// baseline byte for byte.
func TestSubprocessWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess fan-out in -short mode")
	}
	jobs := testJobs(t, 8)
	want := mustJSON(t, baseline(t, jobs))

	t.Run("clean", func(t *testing.T) {
		opt := fastOpts()
		opt.Runners = testSubprocessRunners(t, 2)
		got, err := Run(context.Background(), jobs, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustJSON(t, got), want) {
			t.Fatal("subprocess output diverges from local baseline")
		}
	})

	t.Run("crashy", func(t *testing.T) {
		inner := testSubprocessRunners(t, 2)
		opt := fastOpts()
		opt.MinDeadline = 2 * time.Second
		opt.Runners = []Runner{
			&Chaos{Inner: inner[0], Seed: 11, Crash: 0.3},
			&Chaos{Inner: inner[1], Seed: 12, Crash: 0.3},
		}
		opt.Metrics = obs.NewSweepMetrics()
		got, err := Run(context.Background(), jobs, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mustJSON(t, got), want) {
			t.Fatal("crashy subprocess output diverges from local baseline")
		}
	})
}

// TestSweepGridAPI checks the grid-level wrapper: cell blocks line up
// with the flat job order and the per-cell replication seed chain.
func TestSweepGridAPI(t *testing.T) {
	rep, err := Sweep(context.Background(), SweepOptions{
		Grid: "table4", Reps: 2, DurationSec: 0.02, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid != "table4" || rep.Reps != 2 || len(rep.Cells) != 16 {
		t.Fatalf("report shape: grid=%q reps=%d cells=%d", rep.Grid, rep.Reps, len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if len(c.Results) != 2 {
			t.Fatalf("cell %s has %d results, want 2", c.ID, len(c.Results))
		}
	}
	// Spot-check cell 0 against the shared seed chain.
	g := scenario.Table4Grid()
	cfg, err := g.Cells[0].Spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Duration = 0.02 * 1e6
	cfg.Seed = core.DeriveSeed(3, core.SeedStreamFactorial, 0)
	want, err := core.RunReplications(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Cells[0].Results, want.Results) {
		t.Fatal("Sweep cell 0 diverges from core.RunReplications seed chain")
	}
	if _, err := GridByName("nope"); err == nil {
		t.Fatal("GridByName accepted unknown grid")
	}
}

// TestContextCancel: cancellation surfaces as ctx.Err, not a hang.
func TestContextCancel(t *testing.T) {
	jobs := testJobs(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	log := &attemptLog{}
	opt := fastOpts()
	opt.Runners = []Runner{hookRunner{name: "w", log: log,
		hook: func(ctx context.Context, shard, attempt int) error {
			if shard == 2 {
				cancel()
				<-ctx.Done()
				return ctx.Err()
			}
			return nil
		}}}
	done := make(chan struct{})
	var err error
	go func() { _, err = Run(ctx, jobs, opt); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
