package dist

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Monitor tracks a sweep's live progress for the monitoring endpoint
// (/progress on roccsweep -http): shard lifecycle counts, per-worker
// state, and an ETA derived from observed shard durations. The
// coordinator feeds it on every transition; Snapshot may be called from
// any goroutine at any moment. A nil *Monitor is valid and free — every
// method no-ops — so the engine pays nothing when telemetry is off.
//
// Two invariants the chaos tests pin: Done never decreases (duplicate
// completions and worker failures cannot un-complete a shard), and
// ETASec is always finite (no NaN/Inf leaks into the JSON, whatever the
// fleet is doing).
type Monitor struct {
	mu          sync.Mutex
	start       time.Time
	shards      int
	done        int
	inflight    int // active attempts, speculative twins included
	waiting     int // shards in retry backoff
	local       int // shards routed to the local fallback
	retries     int
	speculative int
	duplicates  int
	timeouts    int
	failures    int
	durSum      time.Duration
	durN        int
	workers     map[string]*workerInfo
	quarantined []string
	finished    bool
}

type workerInfo struct {
	state     string // starting, idle, running, quarantined, retired
	shard     int    // shard being run; -1 otherwise
	completed int
	failures  int
}

// WorkerState is one worker slot's live state in a Progress snapshot.
type WorkerState struct {
	Name string `json:"name"`
	// State is one of starting, idle, running, quarantined, retired.
	State string `json:"state"`
	// Shard is the shard index being run, -1 when not running.
	Shard     int `json:"shard"`
	Completed int `json:"completed"`
	Failures  int `json:"failures"`
}

// Progress is a point-in-time view of a sweep, JSON-shaped for the
// /progress endpoint.
type Progress struct {
	Shards   int `json:"shards"`
	Done     int `json:"done"`
	Inflight int `json:"inflight"`
	// Waiting counts shards sitting out a retry backoff.
	Waiting int `json:"waiting"`
	// LocalFallback counts shards routed to local execution after their
	// remote retry budget was exhausted (or when the fleet was lost).
	LocalFallback int `json:"local_fallback"`
	Retries       int `json:"retries"`
	Speculative   int `json:"speculative"`
	Duplicates    int `json:"duplicates"`
	Timeouts      int `json:"timeouts"`
	Failures      int `json:"failures"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	// AvgShardSec is the mean observed duration of completed shards
	// (0 until the first completion).
	AvgShardSec float64 `json:"avg_shard_sec"`
	// ETASec estimates the remaining wall-clock seconds from observed
	// shard durations and the live worker count. Always finite; 0 until
	// the first shard completes (no basis for an estimate) and 0 once
	// the sweep is finished.
	ETASec      float64       `json:"eta_sec"`
	Finished    bool          `json:"finished"`
	Workers     []WorkerState `json:"workers"`
	Quarantined []string      `json:"quarantined,omitempty"`
}

// NewMonitor returns a monitor ready to attach to Options.Monitor.
func NewMonitor() *Monitor {
	return &Monitor{start: time.Now(), workers: make(map[string]*workerInfo)}
}

// begin records the sweep's shape: total shards and how many arrived
// pre-completed from a resumed journal. A monitor may outlive one sweep
// (roccbench runs several experiments through one endpoint): begin
// resets the per-sweep shape while the cumulative fault counters and
// worker histories carry over.
func (m *Monitor) begin(shards, recovered int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.shards = shards
	m.done = recovered
	m.finished = false
	m.durSum = 0
	m.durN = 0
	m.mu.Unlock()
}

func (m *Monitor) worker(name string) *workerInfo {
	w := m.workers[name]
	if w == nil {
		w = &workerInfo{state: "starting", shard: -1}
		m.workers[name] = w
	}
	return w
}

// workerStarting records a slot attempting to start a worker process.
func (m *Monitor) workerStarting(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.worker(name).state = "starting"
	m.mu.Unlock()
}

// workerReady records a slot's worker up and waiting for a shard.
func (m *Monitor) workerReady(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	w := m.worker(name)
	w.state = "idle"
	w.shard = -1
	m.mu.Unlock()
}

// dispatched records one attempt handed to a worker.
func (m *Monitor) dispatched(name string, shard int, speculative bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.inflight++
	if speculative {
		m.speculative++
	}
	w := m.worker(name)
	w.state = "running"
	w.shard = shard
	m.mu.Unlock()
}

// completed records a shard's first completion (remote path).
func (m *Monitor) completed(name string, shard int, dur time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.done++
	m.inflight--
	m.durSum += dur
	m.durN++
	w := m.worker(name)
	w.state = "idle"
	w.shard = -1
	w.completed++
	m.mu.Unlock()
}

// duplicate records a completion discarded because a speculative twin
// already finished the shard; Done must not move.
func (m *Monitor) duplicate(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.duplicates++
	m.inflight--
	w := m.worker(name)
	w.state = "idle"
	w.shard = -1
	m.mu.Unlock()
}

// failed records one failed attempt.
func (m *Monitor) failed(name string, timedOut bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.failures++
	m.inflight--
	if timedOut {
		m.timeouts++
	}
	w := m.worker(name)
	if w.state == "running" {
		w.state = "idle"
	}
	w.shard = -1
	w.failures++
	m.mu.Unlock()
}

// backoff records a shard entering its retry-wait window.
func (m *Monitor) backoff() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.retries++
	m.waiting++
	m.mu.Unlock()
}

// requeued records a shard leaving retry-wait for the dispatch queue.
func (m *Monitor) requeued() {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.waiting > 0 {
		m.waiting--
	}
	m.mu.Unlock()
}

// toLocal records a shard routed to the local fallback.
func (m *Monitor) toLocal() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.local++
	m.mu.Unlock()
}

// completedLocal records a local-fallback (or pure-local) completion.
func (m *Monitor) completedLocal(dur time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.done++
	m.durSum += dur
	m.durN++
	m.mu.Unlock()
}

// quarantine marks a worker slot retired after repeated failures.
func (m *Monitor) quarantine(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	w := m.worker(name)
	w.state = "quarantined"
	w.shard = -1
	m.quarantined = append(m.quarantined, name)
	m.mu.Unlock()
}

// workerRetired marks a slot done for any non-quarantine reason
// (shutdown, persistent start failure).
func (m *Monitor) workerRetired(name string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	w := m.worker(name)
	if w.state != "quarantined" {
		w.state = "retired"
		w.shard = -1
	}
	m.mu.Unlock()
}

// finish marks the sweep complete; ETA pins to zero.
func (m *Monitor) finish() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.finished = true
	m.mu.Unlock()
}

// Snapshot returns the current progress; safe from any goroutine, and
// safe on a nil monitor (zero Progress).
func (m *Monitor) Snapshot() Progress {
	if m == nil {
		return Progress{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p := Progress{
		Shards:        m.shards,
		Done:          m.done,
		Inflight:      m.inflight,
		Waiting:       m.waiting,
		LocalFallback: m.local,
		Retries:       m.retries,
		Speculative:   m.speculative,
		Duplicates:    m.duplicates,
		Timeouts:      m.timeouts,
		Failures:      m.failures,
		ElapsedSec:    time.Since(m.start).Seconds(),
		Finished:      m.finished,
		Quarantined:   append([]string(nil), m.quarantined...),
	}
	if m.durN > 0 {
		p.AvgShardSec = (m.durSum / time.Duration(m.durN)).Seconds()
	}
	// ETA: remaining shards at the observed average rate over the
	// workers that can still take work; guarded so the estimate stays
	// finite whatever state the fleet is in.
	active := 0
	for name := range m.workers {
		switch m.workers[name].state {
		case "starting", "idle", "running":
			active++
		}
	}
	if !m.finished && m.durN > 0 && m.shards > m.done {
		lanes := active
		if lanes < 1 {
			lanes = 1 // local fallback still drains on this host
		}
		eta := p.AvgShardSec * float64(m.shards-m.done) / float64(lanes)
		if !math.IsInf(eta, 0) && !math.IsNaN(eta) && eta >= 0 {
			p.ETASec = eta
		}
	}
	names := make([]string, 0, len(m.workers))
	for name := range m.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	p.Workers = make([]WorkerState, 0, len(names))
	for _, name := range names {
		w := m.workers[name]
		p.Workers = append(p.Workers, WorkerState{
			Name: name, State: w.state, Shard: w.shard,
			Completed: w.completed, Failures: w.failures,
		})
	}
	return p
}
