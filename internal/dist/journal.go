package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"rocc/internal/core"
)

// The journal checkpoints completed shards so an interrupted sweep
// resumes without recomputation. Format: one JSON document per line — a
// header identifying the job list (count, shard size, and a fingerprint
// of every job's canonical JSON), then one entry per completed shard.
// Entries are appended and fsynced as shards finish, so after a crash
// the file is a valid prefix plus at most one truncated line; resume
// truncates the garbage tail and recomputes only what is missing.
//
// Because every shard's seeds are pre-derived from the master seed, a
// resumed sweep merges journaled and fresh results into output
// byte-identical to an uninterrupted run.

type journalHeader struct {
	V           int    `json:"v"`
	Jobs        int    `json:"jobs"`
	ShardSize   int    `json:"shard_size"`
	Fingerprint string `json:"fingerprint"`
}

type journalEntry struct {
	Shard   int           `json:"shard"`
	Results []core.Result `json:"results"`
}

// fingerprint hashes the canonical JSON of every job, so a journal can
// never be resumed against a different grid, seed, reps, or duration.
func fingerprint(jobs []Job) string {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	for _, j := range jobs {
		enc.Encode(j) // writing to a hash cannot fail
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// journal is the append side; appends are serialized and fsynced.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (or creates) the journal at path. With resume set it
// first replays any existing file: the header must match, and every
// well-formed entry marks its shard recovered. A truncated tail —
// the mark of a crash mid-append — is cut off and overwritten. Without
// resume an existing file is truncated and started fresh.
func openJournal(path string, resume bool, hdr journalHeader, shardLen func(int) int, nShards int) (*journal, map[int][]core.Result, error) {
	recovered := map[int][]core.Result{}
	if resume {
		if got, err := replayJournal(path, hdr, shardLen, nShards, recovered); err != nil {
			return nil, nil, err
		} else if got {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, fmt.Errorf("dist: journal: %w", err)
			}
			return &journal{f: f}, recovered, nil
		}
		// No existing journal: fall through and start one.
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: journal: %w", err)
	}
	j := &journal{f: f}
	if err := j.writeLine(hdr); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, recovered, nil
}

// replayJournal loads a journal's completed shards into recovered,
// truncating any garbage tail. Returns false (and no error) when the
// file does not exist.
func replayJournal(path string, hdr journalHeader, shardLen func(int) int, nShards int, recovered map[int][]core.Result) (bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("dist: journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxFrame)
	if !sc.Scan() {
		return false, fmt.Errorf("dist: journal %s: missing header", path)
	}
	good := int64(len(sc.Bytes())) + 1 // include the newline
	var have journalHeader
	if err := json.Unmarshal(sc.Bytes(), &have); err != nil {
		return false, fmt.Errorf("dist: journal %s: bad header: %w", path, err)
	}
	if have != hdr {
		return false, fmt.Errorf("dist: journal %s was written by a different sweep (header %+v, want %+v); refusing to resume", path, have, hdr)
	}
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			break // truncated tail from a crash mid-append
		}
		if e.Shard < 0 || e.Shard >= nShards || len(e.Results) != shardLen(e.Shard) {
			break // same: a partial or corrupt entry ends the valid prefix
		}
		if _, dup := recovered[e.Shard]; !dup {
			recovered[e.Shard] = e.Results
		}
		good += int64(len(sc.Bytes())) + 1
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		return false, fmt.Errorf("dist: journal %s: %w", path, err)
	}
	// good assumes every accepted line ended in \n (ours do); clamp so an
	// externally edited file can never make truncate extend the file.
	if st, err := f.Stat(); err == nil && good > st.Size() {
		good = st.Size()
	}
	if err := os.Truncate(path, good); err != nil {
		return false, fmt.Errorf("dist: journal %s: truncate garbage tail: %w", path, err)
	}
	return true, nil
}

// append checkpoints one completed shard.
func (j *journal) append(shard int, results []core.Result) error {
	return j.writeLine(journalEntry{Shard: shard, Results: results})
}

func (j *journal) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dist: journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("dist: journal: %w", err)
	}
	// The fsync is the checkpoint guarantee: a shard acknowledged in the
	// journal survives a crash of the driver host.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dist: journal: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
