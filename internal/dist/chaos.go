package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"rocc/internal/core"
)

// Chaos wraps a Runner with deterministic fault injection: worker
// crashes mid-shard, hangs (until the driver's deadline kills the
// attempt), artificial delays, and start failures. Faults are drawn from
// per-(shard, attempt) substreams of core.DeriveSeed, so a chaos
// schedule is exactly reproducible across runs, worker counts, and
// placements — the harness the determinism tests stand on, following the
// internal/faults seeding idiom.
type Chaos struct {
	// Inner is the wrapped runner.
	Inner Runner
	// Seed selects the fault schedule.
	Seed uint64
	// Crash is the per-attempt probability the worker dies mid-shard.
	Crash float64
	// Hang is the per-attempt probability the worker wedges until its
	// context (the driver's per-attempt deadline) expires.
	Hang float64
	// Delay is the per-attempt probability the shard is delayed by
	// DelayFor before executing (exercises straggler re-dispatch).
	Delay float64
	// DelayFor is the straggler delay; zero means no artificial delay.
	DelayFor func(ctx context.Context)
	// StartFail is the per-start probability Start returns an error.
	StartFail float64

	mu       sync.Mutex
	attempts map[int]int // per-shard attempt counter
	starts   int
}

// Substream salts for the fault draws; arbitrary but fixed.
const (
	chaosStreamRun   uint64 = 0x6368616f73 // "chaos"
	chaosStreamStart uint64 = 0x7374617274 // "start"
)

// ErrInjectedCrash marks a chaos-injected worker crash.
var ErrInjectedCrash = errors.New("dist: chaos: injected worker crash")

// draw maps a derived seed to a uniform float in [0, 1).
func chaosDraw(seed, stream, index uint64) float64 {
	return float64(core.DeriveSeed(seed, stream, index)>>11) / (1 << 53)
}

// Name implements Runner.
func (c *Chaos) Name() string { return "chaos(" + c.Inner.Name() + ")" }

// Start implements Runner, occasionally refusing to.
func (c *Chaos) Start(ctx context.Context) (Worker, error) {
	c.mu.Lock()
	k := c.starts
	c.starts++
	c.mu.Unlock()
	if chaosDraw(c.Seed, chaosStreamStart, uint64(k)) < c.StartFail {
		return nil, fmt.Errorf("dist: chaos: injected start failure (start %d)", k)
	}
	w, err := c.Inner.Start(ctx)
	if err != nil {
		return nil, err
	}
	return &chaosWorker{c: c, inner: w}, nil
}

type chaosWorker struct {
	c     *Chaos
	inner Worker
}

// Run implements Worker. One fault draw per (shard, attempt), partitioned
// crash → hang → delay so at most one fault fires per attempt.
func (w *chaosWorker) Run(ctx context.Context, id int, jobs []Job) ([]core.Result, error) {
	c := w.c
	c.mu.Lock()
	if c.attempts == nil {
		c.attempts = make(map[int]int)
	}
	attempt := c.attempts[id]
	c.attempts[id]++
	c.mu.Unlock()

	// Shard index and attempt packed into one substream index; attempts
	// beyond 2^20 per shard would alias, far past any retry budget.
	u := chaosDraw(c.Seed, chaosStreamRun, uint64(id)<<20|uint64(attempt))
	switch {
	case u < c.Crash:
		return nil, ErrInjectedCrash
	case u < c.Crash+c.Hang:
		<-ctx.Done() // wedge until the driver's deadline kills us
		return nil, ctx.Err()
	case u < c.Crash+c.Hang+c.Delay && c.DelayFor != nil:
		c.DelayFor(ctx)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return w.inner.Run(ctx, id, jobs)
}

// Close implements Worker.
func (w *chaosWorker) Close() error { return w.inner.Close() }
