package dist

import (
	"bytes"
	"context"
	"io"
	"math"
	"testing"
	"time"
)

// TestMonitorSnapshotBasics pins the monitor's arithmetic on a scripted
// transition sequence: recovered shards count as done, the ETA follows
// observed durations and live lanes, finish pins it to zero, and a nil
// monitor is a safe no-op throughout.
func TestMonitorSnapshotBasics(t *testing.T) {
	var nilMon *Monitor
	nilMon.begin(3, 0)
	nilMon.dispatched("w", 0, false)
	nilMon.completed("w", 0, time.Second)
	nilMon.finish()
	if p := nilMon.Snapshot(); p.Shards != 0 || p.Workers != nil {
		t.Fatalf("nil monitor snapshot = %+v, want zero", p)
	}

	m := NewMonitor()
	m.begin(4, 1)
	m.workerStarting("b")
	m.workerReady("b")
	m.workerStarting("a")
	m.workerReady("a")
	m.dispatched("a", 1, false)
	p := m.Snapshot()
	if p.Done != 1 || p.Inflight != 1 || p.Shards != 4 {
		t.Fatalf("after dispatch: %+v", p)
	}
	if p.ETASec != 0 {
		t.Fatalf("ETA before any completion = %v, want 0", p.ETASec)
	}
	if len(p.Workers) != 2 || p.Workers[0].Name != "a" || p.Workers[1].Name != "b" {
		t.Fatalf("workers not sorted by name: %+v", p.Workers)
	}
	if p.Workers[0].State != "running" || p.Workers[0].Shard != 1 {
		t.Fatalf("worker a = %+v, want running shard 1", p.Workers[0])
	}

	m.completed("a", 1, 100*time.Millisecond)
	p = m.Snapshot()
	if p.Done != 2 || p.Inflight != 0 {
		t.Fatalf("after completion: %+v", p)
	}
	// 2 shards left, 0.1s average, 2 live lanes → 0.1s.
	if math.Abs(p.ETASec-0.1) > 1e-9 {
		t.Fatalf("ETA = %v, want 0.1", p.ETASec)
	}
	if p.AvgShardSec != 0.1 {
		t.Fatalf("AvgShardSec = %v, want 0.1", p.AvgShardSec)
	}

	m.quarantine("b")
	p = m.Snapshot()
	if len(p.Quarantined) != 1 || p.Quarantined[0] != "b" {
		t.Fatalf("Quarantined = %v, want [b]", p.Quarantined)
	}
	// One lane left → the ETA doubles.
	if math.Abs(p.ETASec-0.2) > 1e-9 {
		t.Fatalf("ETA after quarantine = %v, want 0.2", p.ETASec)
	}

	m.finish()
	p = m.Snapshot()
	if !p.Finished || p.ETASec != 0 {
		t.Fatalf("after finish: %+v", p)
	}
}

// TestMonitorProgressUnderChaos is the live referee for the /progress
// contract: with a doomed worker (quarantined mid-sweep) and a flaky one,
// a concurrent poller must never see Done decrease or a non-finite ETA,
// and the final snapshot must report the quarantine — all while the
// sweep result stays byte-identical to the local baseline.
func TestMonitorProgressUnderChaos(t *testing.T) {
	jobs := testJobs(t, 12)
	want := mustJSON(t, baseline(t, jobs))

	mon := NewMonitor()
	opt := fastOpts()
	opt.ShardSize = 2
	opt.QuarantineAfter = 2
	opt.Log = io.Discard
	opt.Monitor = mon
	// The healthy lanes are slowed so the doomed one is guaranteed the
	// dispatches its quarantine needs before the queue drains.
	opt.Runners = []Runner{
		&Chaos{Inner: InProcessRunner{ID: 0}, Seed: 7, Crash: 1.0}, // every attempt dies
		slowEveryAttempt(&Chaos{Inner: InProcessRunner{ID: 1}, Seed: 11, Crash: 0.3}, 5*time.Millisecond),
		slowEveryAttempt(&Chaos{Inner: InProcessRunner{ID: 2}, Seed: 13}, 5*time.Millisecond),
	}

	stop := make(chan struct{})
	pollerDone := make(chan struct{})
	go func() {
		defer close(pollerDone)
		prevDone := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := mon.Snapshot()
			if p.Done < prevDone {
				t.Errorf("Done decreased: %d -> %d", prevDone, p.Done)
				return
			}
			prevDone = p.Done
			if math.IsNaN(p.ETASec) || math.IsInf(p.ETASec, 0) || p.ETASec < 0 {
				t.Errorf("non-finite ETA: %v", p.ETASec)
				return
			}
			if p.Inflight < 0 || p.Waiting < 0 || p.Done > p.Shards {
				t.Errorf("inconsistent snapshot: %+v", p)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	got, err := Run(context.Background(), jobs, opt)
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-pollerDone
	if !bytes.Equal(mustJSON(t, got), want) {
		t.Fatal("monitored chaos sweep diverges from local baseline")
	}

	p := mon.Snapshot()
	if p.Done != p.Shards || p.Shards != 6 {
		t.Fatalf("final Done/Shards = %d/%d, want 6/6", p.Done, p.Shards)
	}
	if !p.Finished || p.ETASec != 0 {
		t.Fatalf("final snapshot not finished: %+v", p)
	}
	found := false
	for _, q := range p.Quarantined {
		if q == "chaos(inproc-0)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("doomed worker not in Quarantined: %v", p.Quarantined)
	}
	for _, w := range p.Workers {
		if w.Name == "chaos(inproc-0)" && w.State != "quarantined" {
			t.Fatalf("doomed worker state = %q, want quarantined", w.State)
		}
	}
	if p.Failures == 0 || p.Retries == 0 {
		t.Fatalf("chaos sweep recorded no failures/retries: %+v", p)
	}
}
