package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Cross-process sweep tracing. The coordinator stamps every dispatched
// attempt with a trace context; transports that speak the wire protocol
// forward it inside the request frame, workers record per-job spans on
// their own clock relative to request receipt, and ship them back with
// the results. The coordinator re-anchors worker-local spans at its own
// dispatch timestamp and merges everything — dispatch, run, retry
// backoff, quarantine, local fallback, merge — into one Chrome/Perfetto
// timeline with one track per worker slot. Tracing is purely
// observational: spans ride alongside results, never inside them, so a
// traced sweep is byte-identical to an untraced one (pinned by test).

// Span is one traced interval, as recorded by a worker (StartUS relative
// to receipt of the shard request) or by the coordinator after merging
// (StartUS relative to the recorder's start).
type Span struct {
	// Name is the human label ("run shard 3", "job 17").
	Name string `json:"name"`
	// Cat classifies the span: dispatch, run, job, retry, quarantine,
	// local, merge.
	Cat     string  `json:"cat"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	Shard   int     `json:"shard"`
	Attempt int     `json:"attempt"`
	// Job is the global job index for per-job spans, -1 otherwise.
	Job int `json:"job,omitempty"`
}

// traceContext is the per-attempt trace state the coordinator threads
// through the Worker.Run context. Transports look it up to decide
// whether to request worker-side spans and where to deliver them.
type traceContext struct {
	Shard   int
	Attempt int
	// Base is the shard's first global job index, so worker-side per-job
	// spans carry sweep-global job numbers.
	Base int
	// collect receives the worker's spans before Run returns; called at
	// most once, from the slot goroutine.
	collect func([]Span)
}

type traceCtxKey struct{}

// withTraceContext attaches tc to ctx for the transport to find.
func withTraceContext(ctx context.Context, tc *traceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// traceContextFrom returns the attempt's trace context, or nil when the
// sweep is untraced — the transport's signal to skip span recording
// entirely.
func traceContextFrom(ctx context.Context) *traceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(*traceContext)
	return tc
}

// recordWorkerSpans is the worker-side span recorder shared by the wire
// protocol server and the in-process worker: one "run" span covering the
// whole shard plus one "job" span per job, timed on the worker's clock
// relative to t0 (request receipt).
type workerSpanRecorder struct {
	t0    time.Time
	spans []Span
}

func newWorkerSpanRecorder() *workerSpanRecorder {
	return &workerSpanRecorder{t0: time.Now()}
}

func (r *workerSpanRecorder) sinceUS() float64 {
	return float64(time.Since(r.t0)) / float64(time.Microsecond)
}

func (r *workerSpanRecorder) add(name, cat string, startUS float64, shard, attempt, job int) {
	r.spans = append(r.spans, Span{
		Name: name, Cat: cat,
		StartUS: startUS, DurUS: r.sinceUS() - startUS,
		Shard: shard, Attempt: attempt, Job: job,
	})
}

// TraceRecorder accumulates a sweep's merged timeline. Attach one via
// Options.Trace; nil disables tracing with zero overhead (no context
// values, no clock reads). All methods are safe for concurrent use by
// the slot goroutines.
type TraceRecorder struct {
	mu       sync.Mutex
	start    time.Time
	attempts map[int]int // per-shard dispatch counter
	events   []traceEvent
}

// traceEvent is one merged timeline entry: a span ("X") or instant ("i")
// on a named track.
type traceEvent struct {
	name  string
	cat   string
	ph    string
	ts    float64 // µs since recorder start
	dur   float64
	track string // worker slot name, or coordinator/local
	args  map[string]any
}

// Track names for coordinator-side events.
const (
	trackCoordinator = "coordinator"
	trackLocal       = "local fallback"
)

// NewTraceRecorder returns a recorder anchored at the current time.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{start: time.Now(), attempts: make(map[int]int)}
}

func (r *TraceRecorder) nowUS() float64 {
	return float64(time.Since(r.start)) / float64(time.Microsecond)
}

// attemptToken carries one dispatch's identity from attemptStart to
// attemptEnd.
type attemptToken struct {
	worker  string
	shard   int
	attempt int
	tsUS    float64
	spans   []Span // worker-reported, delivered via traceContext.collect
}

// attemptStart opens a dispatch span for shard on the named worker track
// and returns the token attemptEnd closes it with.
func (r *TraceRecorder) attemptStart(worker string, shard int) *attemptToken {
	r.mu.Lock()
	r.attempts[shard]++
	att := r.attempts[shard]
	r.mu.Unlock()
	return &attemptToken{worker: worker, shard: shard, attempt: att, tsUS: r.nowUS()}
}

// attemptEnd records the dispatch span and re-anchors any worker-side
// spans at the dispatch timestamp on the worker's track.
func (r *TraceRecorder) attemptEnd(tok *attemptToken, err error, timedOut bool) {
	end := r.nowUS()
	outcome := "ok"
	switch {
	case timedOut:
		outcome = "timeout"
	case err != nil:
		outcome = "error"
	}
	args := map[string]any{"shard": tok.shard, "attempt": tok.attempt, "outcome": outcome}
	if err != nil {
		args["error"] = err.Error()
	}
	name := fmt.Sprintf("dispatch shard %d", tok.shard)
	if tok.attempt > 1 {
		name = fmt.Sprintf("dispatch shard %d (attempt %d)", tok.shard, tok.attempt)
	}
	r.mu.Lock()
	r.events = append(r.events, traceEvent{
		name: name, cat: "dispatch", ph: "X",
		ts: tok.tsUS, dur: end - tok.tsUS, track: tok.worker, args: args,
	})
	for _, sp := range tok.spans {
		r.events = append(r.events, traceEvent{
			name: sp.Name, cat: sp.Cat, ph: "X",
			ts: tok.tsUS + sp.StartUS, dur: sp.DurUS, track: tok.worker,
			args: map[string]any{"shard": sp.Shard, "attempt": sp.Attempt, "job": sp.Job},
		})
	}
	r.mu.Unlock()
}

// retryWait records a shard's backoff window on the coordinator track.
func (r *TraceRecorder) retryWait(shard int, delay time.Duration) {
	ts := r.nowUS()
	r.mu.Lock()
	r.events = append(r.events, traceEvent{
		name: fmt.Sprintf("retry backoff shard %d", shard), cat: "retry", ph: "X",
		ts: ts, dur: float64(delay) / float64(time.Microsecond), track: trackCoordinator,
		args: map[string]any{"shard": shard},
	})
	r.mu.Unlock()
}

// quarantine records a worker slot's retirement as an instant on its
// track.
func (r *TraceRecorder) quarantine(worker string, failures int, err error) {
	ts := r.nowUS()
	args := map[string]any{"consecutive_failures": failures}
	if err != nil {
		args["last_error"] = err.Error()
	}
	r.mu.Lock()
	r.events = append(r.events, traceEvent{
		name: "quarantined", cat: "quarantine", ph: "i",
		ts: ts, track: worker, args: args,
	})
	r.mu.Unlock()
}

// localShard records one local-fallback shard execution.
func (r *TraceRecorder) localShard(shard int, startUS float64) {
	end := r.nowUS()
	r.mu.Lock()
	r.events = append(r.events, traceEvent{
		name: fmt.Sprintf("run shard %d", shard), cat: "local", ph: "X",
		ts: startUS, dur: end - startUS, track: trackLocal,
		args: map[string]any{"shard": shard},
	})
	r.mu.Unlock()
}

// mergeSpan records the final result-assembly step on the coordinator
// track.
func (r *TraceRecorder) mergeSpan(startUS float64, jobs int) {
	end := r.nowUS()
	r.mu.Lock()
	r.events = append(r.events, traceEvent{
		name: "merge results", cat: "merge", ph: "X",
		ts: startUS, dur: end - startUS, track: trackCoordinator,
		args: map[string]any{"jobs": jobs},
	})
	r.mu.Unlock()
}

// Len returns the number of recorded timeline events.
func (r *TraceRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Categories returns the set of recorded span categories (for tests and
// summaries).
func (r *TraceRecorder) Categories() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int)
	for _, e := range r.events {
		out[e.cat]++
	}
	return out
}

// chromeTraceEvent mirrors the Trace Event Format fields the viewers
// need (the same subset obs.ValidateChrome checks).
type chromeTraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome exports the merged timeline as Chrome trace-event JSON:
// pid 1 is the coordinator, pid 2 the local fallback, and each worker
// slot gets its own pid (sorted by name for a stable layout), labeled
// via process_name metadata so Perfetto shows one track per worker.
func (r *TraceRecorder) WriteChrome(w io.Writer) error {
	r.mu.Lock()
	events := append([]traceEvent(nil), r.events...)
	r.mu.Unlock()

	pids := map[string]int{trackCoordinator: 1, trackLocal: 2}
	var workers []string
	seen := map[string]bool{}
	for _, e := range events {
		if _, fixed := pids[e.track]; !fixed && !seen[e.track] {
			seen[e.track] = true
			workers = append(workers, e.track)
		}
	}
	sort.Strings(workers)
	for i, name := range workers {
		pids[name] = 10 + i
	}

	out := make([]chromeTraceEvent, 0, len(events)+len(pids))
	emitted := map[string]bool{}
	meta := func(track string) {
		if emitted[track] {
			return
		}
		emitted[track] = true
		out = append(out, chromeTraceEvent{
			Name: "process_name", Ph: "M", PID: pids[track],
			Args: map[string]any{"name": track},
		})
	}
	for _, e := range events {
		meta(e.track)
		ce := chromeTraceEvent{
			Name: e.name, Cat: e.cat, Ph: e.ph,
			TS: e.ts, Dur: e.dur, PID: pids[e.track], TID: 1, Args: e.args,
		}
		if e.ph == "i" {
			ce.S = "t"
		}
		out = append(out, ce)
	}
	return json.NewEncoder(w).Encode(out)
}
