package dist

import (
	"context"
	"fmt"

	"rocc/internal/core"
	"rocc/internal/scenario"
)

// This file is the grid-level face of the engine: turn a named scenario
// grid into the flat job list Run distributes, then fold the merged
// results back into per-cell replication blocks. The seed chain is
// core.FactorialReplicationSeeds — the same one the in-process experiment
// drivers use — so a distributed sweep of a grid reproduces the local
// runs byte for byte.

// SweepOptions selects a grid sweep.
type SweepOptions struct {
	// Grid names the scenario grid (see GridByName).
	Grid string
	// Reps is the replication count per cell (min 1).
	Reps int
	// DurationSec, when positive, overrides every cell's simulated
	// duration (seconds).
	DurationSec float64
	// Seed is the master seed the per-cell replication seeds derive from.
	Seed uint64
	// Dist tunes distribution and fault handling.
	Dist Options
}

// CellResult is one grid cell's replication block.
type CellResult struct {
	ID      string        `json:"id"`
	Label   string        `json:"label"`
	Results []core.Result `json:"results"`
}

// SweepReport is the merged output of a grid sweep. Its JSON form is the
// roccsweep output format, and is byte-identical for a given
// (grid, seed, reps, duration) regardless of worker topology or faults.
type SweepReport struct {
	Grid        string       `json:"grid"`
	Seed        uint64       `json:"seed"`
	Reps        int          `json:"reps"`
	DurationSec float64      `json:"duration_sec,omitempty"`
	Cells       []CellResult `json:"cells"`
}

// Replicated converts one cell's block to the analysis type.
func (c CellResult) Replicated() core.Replicated {
	return core.Replicated{Results: c.Results}
}

// GridByName resolves the sweepable scenario grids.
func GridByName(name string) (scenario.Grid, error) {
	switch name {
	case "smoke":
		return scenario.SmokeGrid(), nil
	case "paper":
		return scenario.PaperGrid(), nil
	case "full":
		return scenario.FullGrid(), nil
	case "table4":
		return scenario.Table4Grid(), nil
	case "table5":
		return scenario.Table5Grid(), nil
	case "table6":
		return scenario.Table6Grid(), nil
	}
	return scenario.Grid{}, fmt.Errorf("dist: unknown grid %q (want smoke, paper, full, table4, table5, or table6)", name)
}

// SweepJobs flattens a grid into the job list Run distributes: cells in
// grid order, reps consecutive jobs per cell, every model seed
// pre-derived from (master, cell index, replication index). The flat
// order is the contract that lets results merge back by index.
func SweepJobs(g scenario.Grid, master uint64, reps int, durationSec float64) []Job {
	if reps < 1 {
		reps = 1
	}
	jobs := make([]Job, 0, len(g.Cells)*reps)
	for i, cell := range g.Cells {
		spec := cell.Spec
		if durationSec > 0 {
			spec.Duration = durationSec * 1e6
		}
		for _, seed := range core.FactorialReplicationSeeds(master, i, reps) {
			jobs = append(jobs, Job{Spec: spec, Seed: seed})
		}
	}
	return jobs
}

// Sweep runs a full grid sweep through the distributed engine and folds
// the flat results back into per-cell blocks.
func Sweep(ctx context.Context, opt SweepOptions) (SweepReport, error) {
	g, err := GridByName(opt.Grid)
	if err != nil {
		return SweepReport{}, err
	}
	reps := opt.Reps
	if reps < 1 {
		reps = 1
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	jobs := SweepJobs(g, seed, reps, opt.DurationSec)
	results, err := Run(ctx, jobs, opt.Dist)
	if err != nil {
		return SweepReport{}, err
	}
	rep := SweepReport{Grid: g.Name, Seed: seed, Reps: reps, DurationSec: opt.DurationSec,
		Cells: make([]CellResult, len(g.Cells))}
	for i, cell := range g.Cells {
		rep.Cells[i] = CellResult{ID: cell.ID, Label: cell.Label,
			Results: results[i*reps : (i+1)*reps]}
	}
	return rep, nil
}
