package dist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"rocc/internal/core"
)

// The wire protocol between driver and worker: length-prefixed JSON
// frames over the worker's stdin/stdout. Each frame is a 4-byte
// big-endian payload length followed by one JSON document. The driver
// sends one request at a time per worker and waits for the matching
// response; a worker that answers with the wrong shard id, an oversized
// frame, or malformed JSON is treated as failed and replaced — the shard
// is simply retried, so protocol corruption can never corrupt results.

// wireVersion is bumped on any incompatible protocol change; mismatches
// fail the shard (and eventually drain it locally) rather than guessing.
const wireVersion = 1

// maxFrame bounds a frame payload (64 MiB) so a corrupt length prefix
// cannot make the driver attempt a multi-gigabyte allocation.
const maxFrame = 64 << 20

// request asks a worker to execute one shard: run every job, in order.
// Trace, when present, asks the worker to record per-job spans; it is an
// optional field, so tracing needs no version bump and an older worker
// simply ignores it.
type request struct {
	V     int        `json:"v"`
	ID    int        `json:"id"` // shard index, echoed in the response
	Jobs  []Job      `json:"jobs"`
	Trace *wireTrace `json:"trace,omitempty"`
}

// wireTrace is the trace context forwarded with a shard request: enough
// for the worker to label its spans with sweep-global coordinates.
type wireTrace struct {
	Shard   int `json:"shard"`
	Attempt int `json:"attempt"`
	// Base is the shard's first global job index.
	Base int `json:"base"`
}

// response carries a shard's results (one per job, in job order) or the
// error that stopped execution. Spans are the worker's trace spans when
// the request asked for them — they ride alongside Results and never
// influence them.
type response struct {
	V       int           `json:"v"`
	ID      int           `json:"id"`
	Results []core.Result `json:"results,omitempty"`
	Error   string        `json:"error,omitempty"`
	Spans   []Span        `json:"spans,omitempty"`
}

// writeFrame marshals v and writes one length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dist: encode frame: %w", err)
	}
	if len(b) > maxFrame {
		return fmt.Errorf("dist: frame of %d bytes exceeds %d-byte limit", len(b), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readFrame reads one length-prefixed frame into v. io.EOF is returned
// unwrapped when the stream ends cleanly between frames (worker
// shutdown); any mid-frame truncation is an unexpected-EOF error.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("dist: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("dist: frame of %d bytes exceeds %d-byte limit", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("dist: read frame payload: %w", err)
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("dist: decode frame: %w", err)
	}
	return nil
}

// ServeWorker runs the worker side of the protocol until the driver
// closes the connection (EOF on r): read a shard request, execute its
// jobs in order, write the response. Commands embedding the sweep engine
// dispatch their -worker flag here with os.Stdin/os.Stdout.
//
// Job errors are reported in-band (the driver retries the shard and, if
// it keeps failing, reproduces the error deterministically through the
// local fallback); only transport-level failures end the loop.
func ServeWorker(r io.Reader, w io.Writer) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	for {
		var req request
		switch err := readFrame(br, &req); {
		case err == io.EOF:
			return nil
		case err != nil:
			return err
		}
		resp := response{V: wireVersion, ID: req.ID}
		if req.V != wireVersion {
			resp.Error = fmt.Sprintf("dist: protocol version %d, worker speaks %d", req.V, wireVersion)
		} else if results, spans, err := executeShard(req.Jobs, req.Trace); err != nil {
			resp.Error = err.Error()
		} else {
			resp.Results = results
			resp.Spans = spans
		}
		if err := writeFrame(bw, resp); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// executeShard runs a shard's jobs in order, recording per-job and
// whole-shard spans when tc asks for them. Span recording is strictly
// observational — the result slice is the same executeAll would return.
func executeShard(jobs []Job, tc *wireTrace) ([]core.Result, []Span, error) {
	if tc == nil {
		res, err := executeAll(jobs)
		return res, nil, err
	}
	rec := newWorkerSpanRecorder()
	out := make([]core.Result, 0, len(jobs))
	for i, j := range jobs {
		t0 := rec.sinceUS()
		r, err := Execute(j)
		if err != nil {
			return nil, nil, fmt.Errorf("job %d: %w", i, err)
		}
		rec.add(fmt.Sprintf("job %d", tc.Base+i), "job", t0, tc.Shard, tc.Attempt, tc.Base+i)
		out = append(out, r)
	}
	rec.add(fmt.Sprintf("run shard %d", tc.Shard), "run", 0, tc.Shard, tc.Attempt, -1)
	return out, rec.spans, nil
}
