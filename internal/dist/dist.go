// Package dist is the fault-tolerant distributed sweep engine: it shards
// scenario×replication job lists across worker processes — local
// subprocesses or ssh-reached hosts speaking length-prefixed JSON on
// stdin/stdout — and merges their results in index order.
//
// Determinism is the load-bearing wall. Every job's model seed is
// pre-derived from the master seed (core.DeriveSeed streams) before any
// work is dispatched, each job is a share-nothing simulation, and results
// land at their job's index — so worker count, shard placement, retries,
// duplicated completions, and the local fallback can never change the
// merged output. A distributed sweep is byte-identical to a single-host
// par.Map run, which is what makes aggressive fault-handling safe.
//
// Fault-handling is the core of the design, not an afterthought:
//
//   - Per-shard deadlines sized from observed shard durations kill hung
//     workers instead of stalling the sweep.
//   - Failed shards retry with exponential backoff, jitter, and a bounded
//     budget; a shard that exhausts its budget drains through the local
//     fallback, where a genuine simulation error surfaces
//     deterministically (lowest shard first, like par.Map).
//   - Straggling shards are speculatively re-dispatched to idle workers;
//     the first completion wins and duplicates are discarded by shard
//     index.
//   - Worker slots that fail repeatedly are quarantined; replacement
//     workers are spawned for transient failures.
//   - A journal (Options.Journal/Resume) checkpoints completed shards, so
//     an interrupted sweep resumes recomputing only what is missing.
//   - When every remote worker is lost, the remaining shards drain
//     through par.Map locally with a clear warning — degraded, not dead.
package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"rocc/internal/core"
	"rocc/internal/obs"
	"rocc/internal/par"
	"rocc/internal/scenario"
)

// Job is one simulation unit: a fully specified scenario and the model
// seed to run it with. Seeds are pre-derived by the caller (see
// core.FactorialReplicationSeeds), so where — or how many times — a job
// executes cannot change its result.
type Job struct {
	Spec scenario.Spec `json:"spec"`
	Seed uint64        `json:"seed"`
}

// Execute runs one job in-process: the same code path a remote worker
// runs, used directly by the local fallback.
func Execute(j Job) (core.Result, error) {
	cfg, err := j.Spec.Config()
	if err != nil {
		return core.Result{}, err
	}
	if j.Seed != 0 {
		cfg.Seed = j.Seed
	}
	m, err := core.New(cfg)
	if err != nil {
		return core.Result{}, err
	}
	return m.Run(), nil
}

func executeAll(jobs []Job) ([]core.Result, error) {
	out := make([]core.Result, 0, len(jobs))
	for i, j := range jobs {
		r, err := Execute(j)
		if err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Options tunes the distribution and fault-handling of a run. The zero
// value is usable: no Runners means pure local execution (which still
// honors ShardSize, Journal, and Resume).
type Options struct {
	// Runners are the worker slots; empty runs everything locally.
	Runners []Runner
	// ShardSize is the number of consecutive jobs per shard — the unit of
	// dispatch, retry, and checkpointing (default 1).
	ShardSize int
	// LocalParallel sizes the par.Map pool for local execution and the
	// fallback (0 = one worker per core).
	LocalParallel int

	// MaxShardRetries bounds failed attempts per shard before it is
	// routed to the local fallback (default 3).
	MaxShardRetries int
	// MaxShardAttempts caps concurrent attempts per shard — 1 disables
	// speculative re-dispatch of stragglers (default 2).
	MaxShardAttempts int
	// RetryBaseDelay is the first retry's backoff; doubling per failure
	// with ±50% jitter, capped at RetryMaxDelay (defaults 100ms, 5s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// InitialDeadline is the per-attempt deadline before any shard has
	// completed (default 2m). Once shards complete, the deadline becomes
	// DeadlineFactor × the longest observed shard duration (default 8),
	// floored at MinDeadline (default 1s).
	InitialDeadline time.Duration
	MinDeadline     time.Duration
	DeadlineFactor  float64

	// QuarantineAfter retires a worker slot after that many consecutive
	// failures (default 3).
	QuarantineAfter int
	// WorkerStartRetries is how many extra times a slot re-attempts
	// starting a worker before retiring (default 2).
	WorkerStartRetries int

	// NoLocalFallback fails the run instead of draining unfinished
	// shards locally when workers are lost or budgets exhaust.
	NoLocalFallback bool

	// Journal, when set, checkpoints completed shards to this file;
	// Resume replays it first and recomputes only missing shards.
	Journal string
	Resume  bool

	// Seed drives retry jitter only; it never affects results.
	Seed uint64
	// Log receives warnings (worker failures, quarantines, fallback);
	// nil discards them.
	Log io.Writer
	// Metrics, when set, counts retries/redispatches/quarantines etc.
	Metrics *obs.SweepMetrics
	// Monitor, when set, receives live progress for the monitoring
	// endpoint (/progress); nil costs nothing.
	Monitor *Monitor
	// Trace, when set, merges per-shard spans — dispatch, run, retry,
	// quarantine, local fallback, merge — into a Chrome/Perfetto
	// timeline; nil costs nothing (no context values, no clock reads).
	Trace *TraceRecorder
}

func (o Options) normalized() Options {
	if o.ShardSize < 1 {
		o.ShardSize = 1
	}
	if o.MaxShardRetries <= 0 {
		o.MaxShardRetries = 3
	}
	if o.MaxShardAttempts < 1 {
		o.MaxShardAttempts = 2
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 100 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = 5 * time.Second
	}
	if o.InitialDeadline <= 0 {
		o.InitialDeadline = 2 * time.Minute
	}
	if o.MinDeadline <= 0 {
		o.MinDeadline = time.Second
	}
	if o.DeadlineFactor <= 1 {
		o.DeadlineFactor = 8
	}
	if o.QuarantineAfter <= 0 {
		o.QuarantineAfter = 3
	}
	if o.WorkerStartRetries < 0 {
		o.WorkerStartRetries = 0
	} else if o.WorkerStartRetries == 0 {
		o.WorkerStartRetries = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewSweepMetrics()
	}
	return o
}

// shardRange is jobs[lo:hi].
type shardRange struct{ lo, hi int }

func makeShards(n, size int) []shardRange {
	shards := make([]shardRange, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		shards = append(shards, shardRange{lo, hi})
	}
	return shards
}

type shardStatus uint8

const (
	statusPending  shardStatus = iota // queued for dispatch
	statusInflight                    // ≥1 active attempt
	statusWaiting                     // retry backoff timer pending
	statusDone                        // results recorded
	statusLocal                       // remote budget exhausted; local fallback
)

// Run executes jobs across the configured workers and returns one Result
// per job, in job order — byte-identical to par.Map over the same jobs,
// whatever faults the workers suffer. On error (context cancellation, or
// a genuine simulation error surfaced through the local fallback) the
// journal, if configured, still holds every completed shard for -resume.
func Run(ctx context.Context, jobs []Job, opt Options) ([]core.Result, error) {
	opt = opt.normalized()
	n := len(jobs)
	if n == 0 {
		return nil, nil
	}
	shards := makeShards(n, opt.ShardSize)
	c := &coord{
		opt:       opt,
		jobs:      jobs,
		shards:    shards,
		status:    make([]shardStatus, len(shards)),
		attempts:  make([]int, len(shards)),
		failures:  make([]int, len(shards)),
		lastErr:   make([]error, len(shards)),
		startedAt: make([]time.Time, len(shards)),
		results:   make([][]core.Result, len(shards)),
		jitter:    opt.Seed,
		m:         opt.Metrics,
		mon:       opt.Monitor,
		tr:        opt.Trace,
	}
	c.cond = sync.NewCond(&c.mu)

	recoveredN := 0
	if opt.Journal != "" {
		shardLen := func(si int) int { return shards[si].hi - shards[si].lo }
		hdr := journalHeader{V: 1, Jobs: n, ShardSize: opt.ShardSize, Fingerprint: fingerprint(jobs)}
		jr, recovered, err := openJournal(opt.Journal, opt.Resume, hdr, shardLen, len(shards))
		if err != nil {
			return nil, err
		}
		defer jr.close()
		c.journal = jr
		for si, res := range recovered {
			c.status[si] = statusDone
			c.results[si] = res
		}
		if len(recovered) > 0 {
			fmt.Fprintf(opt.Log, "dist: resumed %d/%d shards from journal %s\n",
				len(recovered), len(shards), opt.Journal)
		}
		recoveredN = len(recovered)
	}
	c.mon.begin(len(shards), recoveredN)

	for si := range shards {
		if c.status[si] != statusDone {
			c.queue = append(c.queue, si)
			c.remoteable++
		}
	}
	if c.remoteable == 0 {
		return c.finishMerged(), nil
	}

	if len(opt.Runners) > 0 {
		runCtx, cancel := context.WithCancel(ctx)
		go func() {
			<-runCtx.Done()
			c.close()
		}()
		var wg sync.WaitGroup
		c.slots = len(opt.Runners)
		for _, r := range opt.Runners {
			wg.Add(1)
			go func(r Runner) {
				defer wg.Done()
				c.slot(runCtx, r)
			}(r)
		}
		c.waitRemote()
		c.close()
		cancel()
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	left := c.leftover()
	if len(left) > 0 {
		if len(opt.Runners) > 0 {
			if opt.NoLocalFallback {
				si := left[0]
				err := c.lastErr[si]
				if err == nil {
					err = errors.New("workers lost before completion")
				}
				return nil, fmt.Errorf("dist: shard %d unfinished after %d failure(s) and local fallback disabled: %w",
					si, c.failures[si], err)
			}
			if c.slotsAlive() == 0 {
				fmt.Fprintf(opt.Log, "dist: WARNING: all %d worker slot(s) lost; draining %d remaining shard(s) locally\n",
					len(opt.Runners), len(left))
			} else {
				fmt.Fprintf(opt.Log, "dist: %d shard(s) exhausted their remote retry budget; draining locally\n", len(left))
			}
			// Shards that exhausted their retry budget were already counted
			// by onFailure; count only the ones stranded by a lost fleet.
			c.mu.Lock()
			stranded := 0
			for _, si := range left {
				if c.status[si] != statusLocal {
					stranded++
				}
			}
			c.mu.Unlock()
			for i := 0; i < stranded; i++ {
				c.mon.toLocal()
			}
		}
		if err := c.drainLocal(ctx, left, len(opt.Runners) > 0); err != nil {
			return nil, err
		}
	}
	return c.finishMerged(), nil
}

// finishMerged assembles the job-order results, recording the merge span
// and pinning the monitor's ETA to zero.
func (c *coord) finishMerged() []core.Result {
	var t0 float64
	if c.tr != nil {
		t0 = c.tr.nowUS()
	}
	out := c.merged()
	if c.tr != nil {
		c.tr.mergeSpan(t0, len(c.jobs))
	}
	c.mon.finish()
	return out
}

// coord is the driver's shared state: shard lifecycle, the dispatch
// queue, retry timers, and observed durations. One mutex guards it all —
// every transition is cheap next to a simulation run.
type coord struct {
	opt    Options
	jobs   []Job
	shards []shardRange
	m      *obs.SweepMetrics
	mon    *Monitor       // nil when progress is off
	tr     *TraceRecorder // nil when tracing is off

	mu        sync.Mutex
	cond      *sync.Cond
	status    []shardStatus
	attempts  []int // active attempts per shard
	failures  []int // accumulated failed attempts per shard
	lastErr   []error
	startedAt []time.Time // earliest active attempt start
	queue     []int       // pending shard indices, FIFO
	results   [][]core.Result
	remoteable int // shards not yet Done or Local
	slots      int // live slot goroutines
	closed     bool
	timers     []*time.Timer
	maxDur     time.Duration // longest successful shard duration
	jitter     uint64        // SplitMix64 state for backoff jitter

	journal *journal
}

func (c *coord) warnf(format string, args ...any) {
	fmt.Fprintf(c.opt.Log, format+"\n", args...)
}

// slot is one worker slot's lifecycle: start a worker, feed it shards,
// replace it on failure, retire on quarantine or persistent start
// failure.
func (c *coord) slot(ctx context.Context, r Runner) {
	defer c.slotExit()
	name := r.Name()
	defer c.mon.workerRetired(name)
	failStreak := 0
	started := false
	for {
		w := c.startWorker(ctx, r, started)
		if w == nil {
			return
		}
		started = true
		c.mon.workerReady(name)
		for {
			si, speculative, ok := c.next(ctx)
			if !ok {
				w.Close()
				return
			}
			sh := c.shards[si]
			c.mon.dispatched(name, si, speculative)
			actx, cancel := context.WithTimeout(ctx, c.attemptDeadline())
			var tok *attemptToken
			if c.tr != nil {
				tok = c.tr.attemptStart(name, si)
				actx = withTraceContext(actx, &traceContext{
					Shard: si, Attempt: tok.attempt, Base: sh.lo,
					collect: func(spans []Span) { tok.spans = spans },
				})
			}
			begin := time.Now()
			res, err := w.Run(actx, si, c.jobs[sh.lo:sh.hi])
			timedOut := actx.Err() == context.DeadlineExceeded && ctx.Err() == nil
			cancel()
			if err == nil && len(res) != sh.hi-sh.lo {
				err = fmt.Errorf("returned %d results, want %d", len(res), sh.hi-sh.lo)
			}
			if tok != nil {
				c.tr.attemptEnd(tok, err, timedOut)
			}
			if err != nil {
				c.mon.failed(name, timedOut)
				c.onFailure(si, name, err, timedOut)
				w.Close()
				if ctx.Err() != nil {
					return
				}
				c.m.WorkerFailures.Add(1)
				failStreak++
				if failStreak >= c.opt.QuarantineAfter {
					c.m.Quarantines.Add(1)
					c.mon.quarantine(name)
					if c.tr != nil {
						c.tr.quarantine(name, failStreak, err)
					}
					c.warnf("dist: worker %s quarantined after %d consecutive failures (last: %v)",
						name, failStreak, err)
					return
				}
				break // replace the worker
			}
			failStreak = 0
			c.onSuccess(si, name, res, time.Since(begin))
		}
	}
}

// startWorker launches a worker with bounded, backed-off retries.
// Returns nil when the slot should retire (persistent failure or
// shutdown).
func (c *coord) startWorker(ctx context.Context, r Runner, restart bool) Worker {
	c.mon.workerStarting(r.Name())
	for k := 0; ; k++ {
		if c.isClosed() || ctx.Err() != nil {
			return nil
		}
		w, err := r.Start(ctx)
		if err == nil {
			if restart {
				c.m.WorkerRestarts.Add(1)
			}
			return w
		}
		if k >= c.opt.WorkerStartRetries {
			c.warnf("dist: worker %s: start failed %d time(s), slot retired (last: %v)", r.Name(), k+1, err)
			return nil
		}
		c.warnf("dist: worker %s: start: %v (retrying)", r.Name(), err)
		if !sleepCtx(ctx, c.backoff(k+1)) {
			return nil
		}
	}
}

// next blocks until a shard is available for this worker: a queued shard
// first, else a speculative duplicate of the oldest straggler (reported
// in the second return). Returns false when the remote phase is over.
func (c *coord) next(ctx context.Context) (si int, speculative, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed || ctx.Err() != nil || c.remoteable == 0 {
			return 0, false, false
		}
		if len(c.queue) > 0 {
			si := c.queue[0]
			c.queue = c.queue[1:]
			c.status[si] = statusInflight
			c.attempts[si]++
			if c.attempts[si] == 1 {
				c.startedAt[si] = time.Now()
			}
			c.m.Dispatched.Add(1)
			return si, false, true
		}
		if si, ok := c.speculativeLocked(); ok {
			c.attempts[si]++
			c.m.Redispatches.Add(1)
			return si, true, true
		}
		c.cond.Wait()
	}
}

// speculativeLocked picks the oldest in-flight shard with attempt
// headroom — the straggler most worth duplicating on an idle worker.
func (c *coord) speculativeLocked() (int, bool) {
	best, ok := -1, false
	for si, st := range c.status {
		if st != statusInflight || c.attempts[si] >= c.opt.MaxShardAttempts {
			continue
		}
		if !ok || c.startedAt[si].Before(c.startedAt[best]) {
			best, ok = si, true
		}
	}
	return best, ok
}

// onSuccess records a completed shard; duplicate completions (from
// speculative re-dispatch) are discarded by shard index.
func (c *coord) onSuccess(si int, worker string, res []core.Result, dur time.Duration) {
	c.mu.Lock()
	if c.attempts[si] > 0 {
		c.attempts[si]--
	}
	if c.status[si] == statusDone {
		c.mu.Unlock()
		c.m.Duplicates.Add(1)
		c.mon.duplicate(worker)
		return
	}
	wasRemote := c.status[si] != statusLocal
	c.status[si] = statusDone
	c.results[si] = res
	if dur > c.maxDur {
		c.maxDur = dur
	}
	if wasRemote {
		c.remoteable--
	}
	jr := c.journal
	c.cond.Broadcast()
	c.mu.Unlock()
	c.m.Completed.Add(1)
	c.mon.completed(worker, si, dur)
	if jr != nil {
		if err := jr.append(si, res); err != nil {
			c.warnf("dist: %v", err)
		}
	}
}

// onFailure accounts one failed attempt. When it was the shard's last
// active attempt, the shard either requeues after a backoff delay or —
// budget exhausted — is routed to the local fallback.
func (c *coord) onFailure(si int, worker string, err error, timedOut bool) {
	if timedOut {
		c.m.Timeouts.Add(1)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.attempts[si] > 0 {
		c.attempts[si]--
	}
	if c.status[si] == statusDone || c.status[si] == statusLocal || c.closed {
		return
	}
	c.lastErr[si] = err
	c.failures[si]++
	fmt.Fprintf(c.opt.Log, "dist: shard %d failed on %s (failure %d/%d): %v\n",
		si, worker, c.failures[si], c.opt.MaxShardRetries+1, err)
	if c.attempts[si] > 0 {
		return // a speculative twin is still running; let it finish
	}
	if c.failures[si] > c.opt.MaxShardRetries {
		c.status[si] = statusLocal
		c.remoteable--
		c.cond.Broadcast()
		c.mon.toLocal()
		return
	}
	c.status[si] = statusWaiting
	c.m.Retries.Add(1)
	c.mon.backoff()
	delay := c.backoffLocked(c.failures[si])
	if c.tr != nil {
		c.tr.retryWait(si, delay)
	}
	t := time.AfterFunc(delay, func() { c.requeue(si) })
	c.timers = append(c.timers, t)
}

// requeue moves a shard from retry-wait back into the dispatch queue.
func (c *coord) requeue(si int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.status[si] != statusWaiting {
		return
	}
	c.status[si] = statusPending
	c.queue = append(c.queue, si)
	c.cond.Broadcast()
	c.mon.requeued()
}

// attemptDeadline sizes the per-attempt deadline from observed shard
// durations: generous before the first completion, then a multiple of
// the longest successful shard so hangs die fast without killing honest
// stragglers.
func (c *coord) attemptDeadline() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxDur == 0 {
		return c.opt.InitialDeadline
	}
	d := time.Duration(c.opt.DeadlineFactor * float64(c.maxDur))
	if d < c.opt.MinDeadline {
		d = c.opt.MinDeadline
	}
	return d
}

// backoff computes the k-th retry delay: exponential with ±50% jitter,
// capped at RetryMaxDelay.
func (c *coord) backoff(k int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backoffLocked(k)
}

func (c *coord) backoffLocked(k int) time.Duration {
	d := c.opt.RetryBaseDelay
	for i := 1; i < k && d < c.opt.RetryMaxDelay; i++ {
		d *= 2
	}
	if d > c.opt.RetryMaxDelay {
		d = c.opt.RetryMaxDelay
	}
	// SplitMix64 step for the jitter factor in [0.5, 1.5).
	c.jitter += 0x9e3779b97f4a7c15
	z := c.jitter
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z>>11) / (1 << 53)
	return time.Duration(float64(d) * (0.5 + frac))
}

func (c *coord) waitRemote() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.remoteable > 0 && c.slots > 0 && !c.closed {
		c.cond.Wait()
	}
}

func (c *coord) slotExit() {
	c.mu.Lock()
	c.slots--
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *coord) slotsAlive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slots
}

func (c *coord) close() {
	c.mu.Lock()
	c.closed = true
	for _, t := range c.timers {
		t.Stop()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *coord) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// leftover returns every unfinished shard index, ascending.
func (c *coord) leftover() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var left []int
	for si, st := range c.status {
		if st != statusDone {
			left = append(left, si)
		}
	}
	sort.Ints(left)
	return left
}

// drainLocal executes the given shards through par.Map on this host —
// the pure-local path and the graceful-degradation fallback. Results and
// journal entries are recorded per shard as they complete, so even a
// failing drain checkpoints its successes; the error reported is the
// lowest failing shard's, exactly as the serial path would surface it.
func (c *coord) drainLocal(ctx context.Context, left []int, fallback bool) error {
	_, err := par.Map(c.opt.LocalParallel, left, func(_ int, si int) (struct{}, error) {
		if err := ctx.Err(); err != nil {
			return struct{}{}, err
		}
		var t0 float64
		if c.tr != nil {
			t0 = c.tr.nowUS()
		}
		begin := time.Now()
		sh := c.shards[si]
		res, err := executeAll(c.jobs[sh.lo:sh.hi])
		if err != nil {
			return struct{}{}, fmt.Errorf("dist: shard %d (jobs %d-%d): %w", si, sh.lo, sh.hi-1, err)
		}
		c.mu.Lock()
		c.status[si] = statusDone
		c.results[si] = res
		c.mu.Unlock()
		if fallback {
			c.m.LocalShards.Add(1)
		}
		c.mon.completedLocal(time.Since(begin))
		if c.tr != nil {
			c.tr.localShard(si, t0)
		}
		if c.journal != nil {
			if jerr := c.journal.append(si, res); jerr != nil {
				c.warnf("dist: %v", jerr)
			}
		}
		return struct{}{}, nil
	})
	return err
}

// merged assembles the final job-order result slice.
func (c *coord) merged() []core.Result {
	out := make([]core.Result, len(c.jobs))
	for si, sh := range c.shards {
		copy(out[sh.lo:sh.hi], c.results[si])
	}
	return out
}

// sleepCtx sleeps d or until ctx is done; reports whether it slept fully.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
