package core

import (
	"testing"

	"rocc/internal/forward"
)

// Simulator-throughput benchmarks: events dispatched per wall second for
// representative model scales. These are the performance meta-metrics of
// the simulation engine itself.

func benchModel(b *testing.B, cfg Config) {
	b.Helper()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		m.Run()
		events += m.Sim.Dispatched
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

func BenchmarkModelNOW8(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Duration = 1e6
	benchModel(b, cfg)
}

func BenchmarkModelSMP16x32(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Arch = SMP
	cfg.Nodes = 16
	cfg.AppProcs = 32
	cfg.Duration = 1e6
	benchModel(b, cfg)
}

func BenchmarkModelMPP256Tree(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Arch = MPP
	cfg.Nodes = 256
	cfg.Policy = forward.BF
	cfg.BatchSize = 32
	cfg.Forwarding = forward.Tree
	cfg.Duration = 1e6
	benchModel(b, cfg)
}
