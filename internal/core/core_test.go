package core

import (
	"math"
	"reflect"
	"testing"

	"rocc/internal/forward"
)

// shortCfg returns a small, fast scenario for unit tests: 4 nodes, 10 s.
func shortCfg() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Duration = 10e6
	return cfg
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func TestValidateDefaults(t *testing.T) {
	cfg := Config{Nodes: 1, AppProcs: 1, Duration: 1e6}
	v, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.PipeCapacity != 256 || v.Quantum != 10000 || v.Pds != 1 {
		t.Fatalf("defaults not applied: %+v", v)
	}
	if v.Workload.AppCPU == nil || v.Cost.PerMsgCPU == nil {
		t.Fatal("workload/cost defaults not applied")
	}
	if v.BatchSize != 1 {
		t.Fatal("CF must force batch size 1")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []Config{
		{Nodes: 0, AppProcs: 1, Duration: 1},
		{Nodes: 1, AppProcs: 0, Duration: 1},
		{Nodes: 1, AppProcs: 1, Duration: 0},
		{Nodes: 1, AppProcs: 1, Duration: 1, SamplingPeriod: -1},
		{Nodes: 1, AppProcs: 1, Duration: 1, Policy: forward.BF, BatchSize: 0},
		{Nodes: 1, AppProcs: 1, Duration: 1, Arch: SMP, Pds: 5},
		{Nodes: 1, AppProcs: 1, Duration: 1, Arch: NOW, Forwarding: forward.Tree},
	}
	for i, c := range cases {
		if _, err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestArchAndAppTypeStrings(t *testing.T) {
	if NOW.String() != "NOW" || SMP.String() != "SMP" || MPP.String() != "MPP" {
		t.Fatal("arch strings")
	}
	if Arch(9).String() == "" {
		t.Fatal("unknown arch")
	}
	if ComputeIntensive.String() == CommIntensive.String() {
		t.Fatal("app type strings")
	}
	w := CommIntensive.Apply(DefaultWorkload())
	if w.AppNet.Mean() != 2000 {
		t.Fatalf("comm-intensive net mean %v", w.AppNet.Mean())
	}
	w = ComputeIntensive.Apply(DefaultWorkload())
	if w.AppNet.Mean() != 200 {
		t.Fatalf("compute-intensive net mean %v", w.AppNet.Mean())
	}
}

func TestModelAssemblyNOW(t *testing.T) {
	cfg := shortCfg()
	cfg.AppProcs = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.NodeCPUs) != 4 || len(m.Daemons) != 4 || len(m.Apps) != 8 {
		t.Fatalf("assembly: %d cpus, %d daemons, %d apps", len(m.NodeCPUs), len(m.Daemons), len(m.Apps))
	}
	if m.HostCPU == m.NodeCPUs[0] {
		t.Fatal("dedicated host should not alias node 0")
	}
	if len(m.Sources) != 8 { // pvm + other per node
		t.Fatalf("background sources %d", len(m.Sources))
	}
	for _, d := range m.Daemons {
		if len(d.Pipes) != 2 {
			t.Fatalf("daemon pipes %d, want 2", len(d.Pipes))
		}
	}
}

func TestModelAssemblySMP(t *testing.T) {
	cfg := shortCfg()
	cfg.Arch = SMP
	cfg.Nodes = 8    // CPUs
	cfg.AppProcs = 8 // total
	cfg.Pds = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.NodeCPUs) != 1 {
		t.Fatal("SMP should have one CPU pool")
	}
	if len(m.Daemons) != 2 || len(m.Apps) != 8 {
		t.Fatalf("%d daemons, %d apps", len(m.Daemons), len(m.Apps))
	}
	if len(m.Daemons[0].Pipes) != 4 || len(m.Daemons[1].Pipes) != 4 {
		t.Fatal("pipes not split across daemons")
	}
	if len(m.Sources) != 2 {
		t.Fatalf("SMP should have one pvm+other pair, got %d sources", len(m.Sources))
	}
}

func TestSamplesFlowEndToEnd(t *testing.T) {
	cfg := shortCfg()
	res := mustRun(t, cfg)
	// 4 nodes x 1 proc x (10s / 40ms) = ~1000 samples generated.
	if res.SamplesGenerated < 900 || res.SamplesGenerated > 1000 {
		t.Fatalf("generated %d", res.SamplesGenerated)
	}
	// Nearly all should be received under CF (low load).
	if res.SamplesReceived < res.SamplesGenerated*9/10 {
		t.Fatalf("received %d of %d", res.SamplesReceived, res.SamplesGenerated)
	}
	if res.MonitoringLatencySec <= 0 || res.ThroughputPerSec <= 0 {
		t.Fatal("latency/throughput not recorded")
	}
	if res.PdCPUTimePerNodeSec <= 0 || res.MainCPUTimeSec <= 0 {
		t.Fatal("IS overhead not recorded")
	}
	if res.AppCPUUtilPct < 50 {
		t.Fatalf("app CPU util %v suspiciously low", res.AppCPUUtilPct)
	}
}

func TestUninstrumentedBaseline(t *testing.T) {
	cfg := shortCfg()
	cfg.SamplingPeriod = 0
	res := mustRun(t, cfg)
	if res.SamplesGenerated != 0 || res.SamplesReceived != 0 {
		t.Fatal("uninstrumented run produced samples")
	}
	if res.PdCPUTimePerNodeSec != 0 || res.MainCPUTimeSec != 0 {
		t.Fatal("uninstrumented run has IS overhead")
	}
	if res.AppCPUUtilPct <= 0 {
		t.Fatal("app made no progress")
	}
}

// The headline result: BF cuts direct IS overhead by well over 60% at a
// short sampling period, and app throughput does not suffer.
func TestBFReducesOverheadVsCF(t *testing.T) {
	base := shortCfg()
	base.SamplingPeriod = 5000 // 5 ms: high sampling rate

	cf := base
	cf.Policy = forward.CF
	rcf := mustRun(t, cf)

	bf := base
	bf.Policy = forward.BF
	bf.BatchSize = 32
	rbf := mustRun(t, bf)

	if rcf.PdCPUTimePerNodeSec <= 0 {
		t.Fatal("CF overhead missing")
	}
	reduction := 1 - rbf.PdCPUTimePerNodeSec/rcf.PdCPUTimePerNodeSec
	if reduction < 0.6 {
		t.Fatalf("BF reduced Pd CPU by %.0f%%, want >60%% (CF %.3fs, BF %.3fs)",
			reduction*100, rcf.PdCPUTimePerNodeSec, rbf.PdCPUTimePerNodeSec)
	}
	// Main process overhead drops too (~80% in the paper's tests).
	mainRed := 1 - rbf.MainCPUTimeSec/rcf.MainCPUTimeSec
	if mainRed < 0.5 {
		t.Fatalf("main overhead reduction only %.0f%%", mainRed*100)
	}
	// BF trades latency for overhead: batching adds accumulation delay.
	if rbf.MonitoringLatencySec <= rcf.MonitoringLatencySec {
		t.Fatalf("expected BF latency (%v) > CF latency (%v)",
			rbf.MonitoringLatencySec, rcf.MonitoringLatencySec)
	}
}

func TestSmallerSamplingPeriodRaisesOverhead(t *testing.T) {
	fast := shortCfg()
	fast.SamplingPeriod = 5000
	slow := shortCfg()
	slow.SamplingPeriod = 50000
	rf, rs := mustRun(t, fast), mustRun(t, slow)
	if rf.PdCPUTimePerNodeSec <= rs.PdCPUTimePerNodeSec {
		t.Fatalf("overhead at 5ms (%v) not above 50ms (%v)",
			rf.PdCPUTimePerNodeSec, rs.PdCPUTimePerNodeSec)
	}
}

func TestTreeForwardingCostsExtraDaemonCPU(t *testing.T) {
	base := shortCfg()
	base.Arch = MPP
	base.Nodes = 15 // complete binary tree of depth 4
	base.Duration = 20e6
	direct := base
	direct.Forwarding = forward.Direct
	tree := base
	tree.Forwarding = forward.Tree

	rd, rt := mustRun(t, direct), mustRun(t, tree)
	if rt.MessagesMerged == 0 {
		t.Fatal("tree forwarding performed no merges")
	}
	if rd.MessagesMerged != 0 {
		t.Fatal("direct forwarding should not merge")
	}
	// §4.4.2: tree forwarding has higher direct overhead (merge CPU).
	if rt.PdCPUTimePerNodeSec <= rd.PdCPUTimePerNodeSec {
		t.Fatalf("tree overhead %v not above direct %v",
			rt.PdCPUTimePerNodeSec, rd.PdCPUTimePerNodeSec)
	}
	// Samples still all arrive.
	if rt.SamplesReceived < rt.SamplesGenerated*8/10 {
		t.Fatalf("tree lost samples: %d of %d", rt.SamplesReceived, rt.SamplesGenerated)
	}
	// Messages traverse multiple hops.
	if rt.MessagesReceived == 0 {
		t.Fatal("no messages at main")
	}
}

func TestSMPBusSaturationBlocksApps(t *testing.T) {
	// §4.3.3: with many CPUs sharing one bus, application communication
	// saturates the bus and application CPU utilization collapses.
	small := shortCfg()
	small.Arch = SMP
	small.Nodes = 2
	small.AppProcs = 2
	small.Workload = CommIntensive.Apply(DefaultWorkload())

	big := small
	big.Nodes = 32
	big.AppProcs = 32

	rs, rb := mustRun(t, small), mustRun(t, big)
	if rb.AppCPUUtilPct >= rs.AppCPUUtilPct {
		t.Fatalf("bus saturation missing: util %v at 32 CPUs vs %v at 2",
			rb.AppCPUUtilPct, rs.AppCPUUtilPct)
	}
	if rb.NetUtilPct < 95 {
		t.Fatalf("bus not saturated: %v%%", rb.NetUtilPct)
	}
}

func TestPipeBlockingAtTinySamplingPeriod(t *testing.T) {
	// §4.3.3: a small pipe and fast sampling block the application.
	cfg := shortCfg()
	cfg.Nodes = 1
	cfg.SamplingPeriod = 1000 // 1 ms
	cfg.PipeCapacity = 4
	// Make the daemon slow to drain: communication-heavy app steals CPU.
	res := mustRun(t, cfg)
	if res.BlockedPuts == 0 {
		t.Skip("no blocking at this parameterization") // tolerated; checked harder below
	}
	if res.SamplesGenerated >= int(cfg.Duration/cfg.SamplingPeriod) {
		t.Fatal("blocking should reduce sample generation")
	}
}

func TestBarrierReducesAppProgress(t *testing.T) {
	noBar := shortCfg()
	noBar.Arch = MPP
	withBar := noBar
	withBar.BarrierPeriod = 10000 // very frequent barriers

	rn, rb := mustRun(t, noBar), mustRun(t, withBar)
	if rb.BarrierReleases == 0 {
		t.Fatal("no barrier releases")
	}
	// Figure 28: frequent barriers cut application CPU occupancy.
	if rb.AppCPUUtilPct >= rn.AppCPUUtilPct {
		t.Fatalf("barriers did not reduce app CPU: %v vs %v",
			rb.AppCPUUtilPct, rn.AppCPUUtilPct)
	}
}

func TestWorkConservationAcrossOwners(t *testing.T) {
	cfg := shortCfg()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	// Per-node utilizations cannot exceed 100%.
	total := res.AppCPUUtilPct + res.PdCPUUtilPct + res.PvmCPUUtilPct + res.OtherCPUUtilPct
	if total > 100.001 {
		t.Fatalf("node CPU over-committed: %v%%", total)
	}
	for _, cpu := range m.NodeCPUs {
		if cpu.BusyTotal() > cfg.Duration+1 {
			t.Fatal("single-core node busier than elapsed time")
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := shortCfg()
	a, b := mustRun(t, cfg), mustRun(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed gave different results:\n%+v\n%+v", a, b)
	}
	cfg2 := cfg
	cfg2.Seed = 999
	c := mustRun(t, cfg2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds gave identical results")
	}
}

func TestRunReplicationsCI(t *testing.T) {
	cfg := shortCfg()
	cfg.Duration = 5e6
	rep, err := RunReplications(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 5 {
		t.Fatalf("%d results", len(rep.Results))
	}
	ci := rep.CI(MetricPdCPUTime, 0.90)
	if ci.Mean <= 0 || ci.HalfWidth <= 0 {
		t.Fatalf("CI %+v", ci)
	}
	if math.Abs(rep.Mean(MetricPdCPUTime)-ci.Mean) > 1e-12 {
		t.Fatal("mean mismatch")
	}
	// Single replication: zero half-width, no error.
	rep1, err := RunReplications(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci := rep1.CI(MetricLatency, 0.9); ci.HalfWidth != 0 {
		t.Fatal("single-rep CI should have zero half-width")
	}
	if _, err := RunReplications(Config{}, 2); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestMultipleDaemonsSMPShareLoad(t *testing.T) {
	cfg := shortCfg()
	cfg.Arch = SMP
	cfg.Nodes = 8
	cfg.AppProcs = 8
	cfg.Pds = 4
	cfg.SamplingPeriod = 5000
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	active := 0
	for _, d := range m.Daemons {
		if d.SamplesCollected > 0 {
			active++
		}
	}
	if active != 4 {
		t.Fatalf("%d of 4 daemons active", active)
	}
}

func TestMainOnNodeZeroWhenNotDedicated(t *testing.T) {
	cfg := shortCfg()
	cfg.DedicatedHost = false
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.HostCPU != m.NodeCPUs[0] {
		t.Fatal("main should share node 0's CPU")
	}
	res := m.Run()
	if res.MainCPUTimeSec <= 0 {
		t.Fatal("main did no work")
	}
}

func TestWarmupDiscardsTransient(t *testing.T) {
	cfg := shortCfg()
	cfg.Duration = 4e6
	cfg.Warmup = 2e6
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if m.Sim.Now() != 6e6 {
		t.Fatalf("clock %v, want 6e6 (warmup + duration)", m.Sim.Now())
	}
	// Metrics cover only the measured window: ~4 nodes x 4s/40ms samples.
	want := 4 * int(4e6/40000)
	if res.SamplesGenerated < want-8 || res.SamplesGenerated > want+4 {
		t.Fatalf("generated %d, want ~%d (warmup not discarded?)", res.SamplesGenerated, want)
	}
	// Occupancy denominators stay consistent: app util must be plausible,
	// not inflated by warmup-time busy credit.
	if res.AppCPUUtilPct > 100 {
		t.Fatalf("app util %v%% exceeds 100%%", res.AppCPUUtilPct)
	}
	// Warmup must not change steady-state estimates much vs a plain run.
	plain := cfg
	plain.Warmup = 0
	rp := mustRun(t, plain)
	if res.PdCPUUtilPct < rp.PdCPUUtilPct/2 || res.PdCPUUtilPct > rp.PdCPUUtilPct*2 {
		t.Fatalf("warmup distorted Pd util: %v vs %v", res.PdCPUUtilPct, rp.PdCPUUtilPct)
	}
	// Negative warmup is rejected.
	bad := cfg
	bad.Warmup = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative warmup should fail validation")
	}
}

func TestNoBackgroundOption(t *testing.T) {
	cfg := shortCfg()
	cfg.Background = false
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(m.Sources) != 0 || res.PvmCPUUtilPct != 0 || res.OtherCPUUtilPct != 0 {
		t.Fatal("background load present despite Background=false")
	}
}
