package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"rocc/internal/faults"
	"rocc/internal/forward"
	"rocc/internal/resources"
)

// provChaosConfigs are the fault cocktails the decomposition must survive
// with exact accounting. Duplication rides the direct topology only: on a
// tree, a duplicated copy can interleave with the original's relay legs
// in ways a per-identity record cannot always tell apart (see DESIGN.md).
func provChaosConfigs() map[string]Config {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Nodes = 4
		cfg.AppProcs = 2
		cfg.Duration = 4e6
		cfg.Warmup = 0 // exact in-flight identity needs no carryover
		cfg.Seed = 11
		cfg.Policy = forward.BF
		cfg.BatchSize = 8
		return cfg
	}

	direct := base()
	direct.Faults = &faults.Plan{Seed: 3, Loss: 0.1, Dup: 0.1, CrashMTBF: 1e6}

	retrans := base()
	retrans.Faults = &faults.Plan{
		Seed: 5, Loss: 0.15, AckLoss: 0.1, CrashMTBF: 1.5e6,
		Resilience: faults.Resilience{Retransmit: true, RetryBudget: 2},
	}

	tree := base()
	tree.Arch = MPP
	tree.Nodes = 8
	tree.Forwarding = forward.Tree
	tree.Faults = &faults.Plan{
		Seed: 7, Loss: 0.08, CrashMTBF: 1.2e6,
		Resilience: faults.Resilience{Retransmit: true, Degrade: true},
	}

	squeeze := base()
	squeeze.Overflow = resources.DropOldest
	squeeze.PipeCapacity = 16
	squeeze.Faults = &faults.Plan{
		Seed: 9, SqueezeMTBF: 4e5, CrashMTBF: 2e6,
		Resilience: faults.Resilience{Degrade: true},
	}

	return map[string]Config{
		"direct-dup": direct, "retransmit": retrans, "tree": tree, "squeeze-drop": squeeze,
	}
}

// The decomposition guarantee under fault injection: for every delivered
// sample the stage sum equals the measured latency (within float
// tolerance), the engine's totals reconcile exactly with the aggregate
// latency histogram (which sees every delivery, duplicates included), no
// in-flight record leaks, and the whole thing is deterministic.
func TestProvenanceChaosReconciliation(t *testing.T) {
	for name, cfg := range provChaosConfigs() {
		t.Run(name, func(t *testing.T) {
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := m.EnableObservability(ObsOptions{Metrics: true, Provenance: true})
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			eng := m.Provenance()
			if eng.Delivered() == 0 {
				t.Fatal("no deliveries; chaos config too hostile to test anything")
			}

			// Per-sample closure: Σ stages == latency for every sample.
			if errUS := eng.MaxCloseErrUS(); errUS > 1e-6 {
				t.Errorf("per-sample closure error %v us", errUS)
			}
			// Aggregate reconciliation with the latency histogram.
			hist := c.Metrics.Latency
			if got, want := eng.Delivered()+eng.DupDelivered(), hist.Count(); got != want {
				t.Errorf("deliveries %d (first %d + dup %d), histogram count %d",
					got, eng.Delivered(), eng.DupDelivered(), want)
			}
			histSum := hist.Snapshot().Sum
			provSum := eng.LatencySumUS() + eng.DupLatencySumUS()
			if diff := math.Abs(histSum - provSum); diff > 1e-6*(1+math.Abs(histSum)) {
				t.Errorf("latency totals: prov %v, histogram %v", provSum, histSum)
			}
			if diff := math.Abs(eng.StageSumUS() - eng.LatencySumUS()); diff > 1e-6*(1+eng.LatencySumUS()) {
				t.Errorf("stage total %v vs latency total %v", eng.StageSumUS(), eng.LatencySumUS())
			}
			// No leaks: every generated sample is delivered, dropped, lost,
			// or still in a pipe/daemon/network (in-flight), exactly.
			accounted := eng.Delivered() + eng.Dropped() + eng.LostTotal() + uint64(eng.InFlight())
			if accounted != eng.Generated() {
				t.Errorf("accounting leak: generated %d, accounted %d (delivered %d dropped %d lost %d in-flight %d)",
					eng.Generated(), accounted, eng.Delivered(), eng.Dropped(), eng.LostTotal(), eng.InFlight())
			}
			if name == "direct-dup" && eng.DupDelivered() == 0 {
				t.Error("dup plan delivered no duplicates; chaos coverage lost")
			}
			if res.SamplesReceived > 0 && len(res.LatencyStages) != 6 {
				t.Errorf("Result carries %d stages, want 6", len(res.LatencyStages))
			}

			// Determinism: an identical run decomposes byte-identically.
			m2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m2.EnableObservability(ObsOptions{Metrics: true, Provenance: true}); err != nil {
				t.Fatal(err)
			}
			res2 := m2.Run()
			if !reflect.DeepEqual(res, res2) {
				t.Errorf("results differ across identical runs:\n%+v\n%+v", res, res2)
			}
			if !reflect.DeepEqual(m.Provenance().Stages(), m2.Provenance().Stages()) {
				t.Errorf("stage summaries differ across identical runs")
			}
		})
	}
}

// Enabling provenance must not change the simulation: the Result of a
// provenance-observed run is byte-identical to a plain run once the
// LatencyStages field it adds is stripped.
func TestProvenanceLeavesResultUnchanged(t *testing.T) {
	cfgs := provChaosConfigs()
	plainCfg := DefaultConfig()
	plainCfg.Nodes = 4
	plainCfg.Duration = 4e6
	plainCfg.Warmup = 1e6
	plainCfg.Policy = forward.BF
	plainCfg.BatchSize = 16
	cfgs["plain-warmup"] = plainCfg

	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			m1, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			plain := m1.Run()

			m2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m2.EnableObservability(ObsOptions{Provenance: true}); err != nil {
				t.Fatal(err)
			}
			observed := m2.Run()
			if len(observed.LatencyStages) == 0 && observed.SamplesReceived > 0 {
				t.Fatal("provenance run carries no stages")
			}
			stripped := observed
			stripped.LatencyStages = nil
			if !reflect.DeepEqual(plain, stripped) {
				t.Fatalf("provenance changed the Result:\nplain:    %+v\nobserved: %+v", plain, stripped)
			}
			// Byte-level: the JSON encodings match exactly, so the CI cmp
			// gate (jq del(.results[].LatencyStages)) holds by construction.
			j1, err := json.Marshal(plain)
			if err != nil {
				t.Fatal(err)
			}
			j2, err := json.Marshal(stripped)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1, j2) {
				t.Fatalf("JSON differs:\n%s\n%s", j1, j2)
			}
		})
	}
}

// The Result's stage shares must sum to ~100% and the dominant stage of a
// dense BF cell must be batch residency — the experiment gate's claim,
// pinned here at unit scale.
func TestProvenanceStagesOnResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.AppProcs = 4
	cfg.Duration = 4e6
	cfg.SamplingPeriod = 10000
	cfg.Policy = forward.BF
	cfg.BatchSize = 64
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EnableObservability(ObsOptions{Provenance: true}); err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(res.LatencyStages) != 6 {
		t.Fatalf("got %d stages", len(res.LatencyStages))
	}
	share := map[string]float64{}
	total := 0.0
	for _, st := range res.LatencyStages {
		share[st.Stage] = st.SharePct
		total += st.SharePct
	}
	if math.Abs(total-100) > 1e-6 {
		t.Errorf("shares sum to %v, want 100", total)
	}
	if share["batch-residency"] <= share["daemon-service"] {
		t.Errorf("dense BF cell: batch-residency %v%% should dominate daemon-service %v%%",
			share["batch-residency"], share["daemon-service"])
	}
}
