package core

// Seed-derivation streams. Distinct streams partition the derived-seed
// space so that, for one base seed, replication seeds can never collide
// with factorial row seeds or fault-schedule seeds. Every experiment
// driver that varies the seed goes through DeriveSeed with one of these
// streams; ad-hoc arithmetic like base*1_000_003+i or base+i*7919 (whose
// images overlap for adjacent bases) is retired.
const (
	// SeedStreamReplication derives per-replication model seeds.
	SeedStreamReplication uint64 = iota + 1
	// SeedStreamFactorial derives per-row base seeds of a 2^k·r design.
	SeedStreamFactorial
	// SeedStreamFault derives per-intensity fault-plan seeds.
	SeedStreamFault
	// SeedStreamCrossVal derives per-cell base seeds of a cross-validation
	// grid run (internal/xval).
	SeedStreamCrossVal
	// SeedStreamAdaptive derives per-cell base seeds of the adaptive
	// batching sweep (ext-adaptive-bf). Every policy variant of a cell
	// replays the same replication seeds, so variant comparisons share
	// their workload randomness and common-mode noise cancels.
	SeedStreamAdaptive
	// SeedStreamLatency derives per-cell base seeds of the latency-
	// decomposition sweep (ext-latency-breakdown); like the adaptive
	// stream, every policy variant of a cell replays the same
	// replication seeds.
	SeedStreamLatency
)

// mixSeed is the SplitMix64 output finalizer: a bijective avalanche over
// the full 64-bit space (Steele, Lea & Flood; same constants as
// internal/rng's seed sequence).
func mixSeed(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed maps (base, stream, index) to a model seed with chained
// SplitMix64 finalizer rounds. Nearby bases, streams, and indices — the
// common case: adjacent master seeds, consecutive replications — yield
// seeds with no exploitable structure, and the three inputs are bound in
// separate rounds so distinct (base, stream, index) triples collide only
// with the ~2^-64 probability of any 64-bit hash.
func DeriveSeed(base, stream, index uint64) uint64 {
	z := mixSeed(base + 0x9e3779b97f4a7c15)
	z = mixSeed(z ^ (stream * 0xa0761d6478bd642f))
	return mixSeed(z ^ (index * 0xe7037ed1a0b428db))
}
