package core

import (
	"rocc/internal/par"
	"rocc/internal/stats"
)

// Replicated holds the results of r independent replications of one
// scenario (the paper uses r=50 with 90% confidence intervals).
type Replicated struct {
	Results []Result
}

// RunReplications runs reps independent replications of cfg, varying only
// the random seed (derived deterministically from cfg.Seed via DeriveSeed).
// Replications fan out across par.Workers() goroutines; results are
// identical to the serial path because every seed is pre-derived and each
// replication owns its model (simulator, RNG streams, resources).
func RunReplications(cfg Config, reps int) (Replicated, error) {
	return RunReplicationsParallel(cfg, reps, 0)
}

// ReplicationSeeds pre-derives the reps model seeds RunReplications uses
// for a scenario with the given base seed. Exposed so experiment drivers
// that flatten replications into larger work lists (the factorial designs)
// produce results byte-identical to the per-scenario path.
func ReplicationSeeds(base uint64, reps int) []uint64 {
	if reps < 1 {
		reps = 1
	}
	seeds := make([]uint64, reps)
	for i := range seeds {
		seeds[i] = DeriveSeed(base, SeedStreamReplication, uint64(i))
	}
	return seeds
}

// FactorialReplicationSeeds derives the reps model seeds of one row of a
// factorial (or grid) design from the master seed: the row's base seed
// comes from SeedStreamFactorial at the row index, and the per-replication
// seeds from SeedStreamReplication under it. The experiment drivers and
// the distributed sweep engine share this chain, so a row's results are
// identical no matter which driver — or which host — runs it.
func FactorialReplicationSeeds(master uint64, row, reps int) []uint64 {
	return ReplicationSeeds(DeriveSeed(master, SeedStreamFactorial, uint64(row)), reps)
}

// RunReplicationsParallel is RunReplications with an explicit worker-pool
// size: 1 forces the serial path, 0 uses the par.Workers() default. Any
// pool size yields identical Results for a fixed cfg.Seed.
func RunReplicationsParallel(cfg Config, reps, workers int) (Replicated, error) {
	seeds := ReplicationSeeds(cfg.Seed, reps)
	results, err := par.Map(workers, seeds, func(_ int, seed uint64) (Result, error) {
		c := cfg
		c.Seed = seed
		m, err := New(c)
		if err != nil {
			return Result{}, err
		}
		return m.Run(), nil
	})
	if err != nil {
		return Replicated{}, err
	}
	return Replicated{Results: results}, nil
}

// Metric extracts one scalar from a Result.
type Metric func(Result) float64

// Named metric extractors for the experiment harness.
var (
	MetricPdCPUTime    Metric = func(r Result) float64 { return r.PdCPUTimePerNodeSec }
	MetricPdCPUUtil    Metric = func(r Result) float64 { return r.PdCPUUtilPct }
	MetricISCPUUtil    Metric = func(r Result) float64 { return r.ISCPUUtilPct }
	MetricMainCPUUtil  Metric = func(r Result) float64 { return r.MainCPUUtilPct }
	MetricMainCPUTime  Metric = func(r Result) float64 { return r.MainCPUTimeSec }
	MetricAppCPUUtil   Metric = func(r Result) float64 { return r.AppCPUUtilPct }
	MetricAppCPUTime   Metric = func(r Result) float64 { return r.AppCPUTimePerNodeSec }
	MetricLatency      Metric = func(r Result) float64 { return r.MonitoringLatencySec }
	MetricLatencyP95   Metric = func(r Result) float64 { return r.MonitoringLatencyP95Sec }
	MetricLatencyMax   Metric = func(r Result) float64 { return r.MonitoringLatencyMaxSec }
	MetricFwdLatency   Metric = func(r Result) float64 { return r.ForwardLatencySec }
	MetricThroughput   Metric = func(r Result) float64 { return r.ThroughputPerSec }
	MetricPdThroughput Metric = func(r Result) float64 { return r.PdThroughputPerSec }
	MetricNetUtil      Metric = func(r Result) float64 { return r.NetUtilPct }
	MetricBlockedPuts  Metric = func(r Result) float64 { return float64(r.BlockedPuts) }
	MetricSamplesRecvd Metric = func(r Result) float64 { return float64(r.SamplesReceived) }
)

// Mean returns the replication mean of a metric.
func (rep Replicated) Mean(m Metric) float64 {
	vals := rep.values(m)
	return stats.MeanOf(vals)
}

// CI returns the Student-t confidence interval of a metric at the given
// level (e.g. 0.90). With a single replication the half-width is zero.
func (rep Replicated) CI(m Metric, level float64) stats.ConfidenceInterval {
	vals := rep.values(m)
	if len(vals) < 2 {
		mean := stats.MeanOf(vals)
		return stats.ConfidenceInterval{Mean: mean, Level: level}
	}
	ci, err := stats.MeanCI(vals, level)
	if err != nil {
		return stats.ConfidenceInterval{Mean: stats.MeanOf(vals), Level: level}
	}
	return ci
}

func (rep Replicated) values(m Metric) []float64 {
	vals := make([]float64, len(rep.Results))
	for i, r := range rep.Results {
		vals[i] = m(r)
	}
	return vals
}
