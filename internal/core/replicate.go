package core

import (
	"rocc/internal/stats"
)

// Replicated holds the results of r independent replications of one
// scenario (the paper uses r=50 with 90% confidence intervals).
type Replicated struct {
	Results []Result
}

// RunReplications runs reps independent replications of cfg, varying only
// the random seed (derived deterministically from cfg.Seed).
func RunReplications(cfg Config, reps int) (Replicated, error) {
	if reps < 1 {
		reps = 1
	}
	out := Replicated{Results: make([]Result, 0, reps)}
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed*1_000_003 + uint64(i)
		m, err := New(c)
		if err != nil {
			return Replicated{}, err
		}
		out.Results = append(out.Results, m.Run())
	}
	return out, nil
}

// Metric extracts one scalar from a Result.
type Metric func(Result) float64

// Named metric extractors for the experiment harness.
var (
	MetricPdCPUTime    Metric = func(r Result) float64 { return r.PdCPUTimePerNodeSec }
	MetricPdCPUUtil    Metric = func(r Result) float64 { return r.PdCPUUtilPct }
	MetricISCPUUtil    Metric = func(r Result) float64 { return r.ISCPUUtilPct }
	MetricMainCPUUtil  Metric = func(r Result) float64 { return r.MainCPUUtilPct }
	MetricMainCPUTime  Metric = func(r Result) float64 { return r.MainCPUTimeSec }
	MetricAppCPUUtil   Metric = func(r Result) float64 { return r.AppCPUUtilPct }
	MetricAppCPUTime   Metric = func(r Result) float64 { return r.AppCPUTimePerNodeSec }
	MetricLatency      Metric = func(r Result) float64 { return r.MonitoringLatencySec }
	MetricLatencyP95   Metric = func(r Result) float64 { return r.MonitoringLatencyP95Sec }
	MetricLatencyMax   Metric = func(r Result) float64 { return r.MonitoringLatencyMaxSec }
	MetricFwdLatency   Metric = func(r Result) float64 { return r.ForwardLatencySec }
	MetricThroughput   Metric = func(r Result) float64 { return r.ThroughputPerSec }
	MetricPdThroughput Metric = func(r Result) float64 { return r.PdThroughputPerSec }
	MetricNetUtil      Metric = func(r Result) float64 { return r.NetUtilPct }
	MetricBlockedPuts  Metric = func(r Result) float64 { return float64(r.BlockedPuts) }
	MetricSamplesRecvd Metric = func(r Result) float64 { return float64(r.SamplesReceived) }
)

// Mean returns the replication mean of a metric.
func (rep Replicated) Mean(m Metric) float64 {
	vals := rep.values(m)
	return stats.MeanOf(vals)
}

// CI returns the Student-t confidence interval of a metric at the given
// level (e.g. 0.90). With a single replication the half-width is zero.
func (rep Replicated) CI(m Metric, level float64) stats.ConfidenceInterval {
	vals := rep.values(m)
	if len(vals) < 2 {
		mean := stats.MeanOf(vals)
		return stats.ConfidenceInterval{Mean: mean, Level: level}
	}
	ci, err := stats.MeanCI(vals, level)
	if err != nil {
		return stats.ConfidenceInterval{Mean: stats.MeanOf(vals), Level: level}
	}
	return ci
}

func (rep Replicated) values(m Metric) []float64 {
	vals := make([]float64, len(rep.Results))
	for i, r := range rep.Results {
		vals[i] = m(r)
	}
	return vals
}
