package core

import (
	"testing"
	"testing/quick"

	"rocc/internal/forward"
)

// Property: across random configurations the model never panics and its
// metrics satisfy the structural invariants — utilizations bounded,
// received <= generated, per-node occupancy within capacity.
func TestQuickModelInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-model property test skipped in -short")
	}
	f := func(seed uint64, nodes8, procs4, pds3, sp16, batch8, archSel, flags uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Duration = 3e5 // 0.3 s keeps each case fast
		cfg.Nodes = int(nodes8)%12 + 1
		cfg.AppProcs = int(procs4)%4 + 1
		cfg.Pds = int(pds3)%3 + 1
		cfg.SamplingPeriod = float64(int(sp16)%64+1) * 1000
		switch archSel % 3 {
		case 0:
			cfg.Arch = NOW
		case 1:
			cfg.Arch = SMP
			cfg.AppProcs = cfg.Nodes // paper's SMP setup
			if cfg.Pds > cfg.AppProcs {
				cfg.Pds = cfg.AppProcs
			}
		case 2:
			cfg.Arch = MPP
			if flags&1 == 1 {
				cfg.Forwarding = forward.Tree
			}
		}
		if batch := int(batch8) % 65; batch > 1 {
			cfg.Policy = forward.BF
			cfg.BatchSize = batch
		}
		if flags&2 == 2 {
			cfg.BarrierPeriod = 20000
		}
		if flags&4 == 4 {
			cfg.EventTrace = true
		}
		if flags&8 == 8 {
			cfg.Detailed.IOProb = 0.1
		}
		if flags&16 == 16 {
			cfg.Warmup = 1e5
		}

		m, err := New(cfg)
		if err != nil {
			return false
		}
		res := m.Run()

		if res.SamplesReceived > res.SamplesGenerated+res.WarmupCarryover {
			return false
		}
		// With warmup, in-progress slices at the reset boundary are charged
		// to the measured window (see docs/MODEL.md), allowing up to one
		// quantum of occupancy overshoot per core.
		maxUtil := 100.001
		if cfg.Warmup > 0 {
			maxUtil += cfg.Quantum / cfg.Duration * 100
		}
		for _, u := range []float64{
			res.PdCPUUtilPct, res.AppCPUUtilPct,
			res.MainCPUUtilPct, res.PvmCPUUtilPct, res.OtherCPUUtilPct,
		} {
			if u < 0 || u > maxUtil {
				return false
			}
		}
		// Outside SMP, ISCPUUtilPct sums daemon utilization on the app
		// nodes with main's utilization of its own host, so its bound is
		// two full CPUs; on SMP it shares the one processor pool.
		maxIS := 2 * maxUtil
		if cfg.Arch == SMP {
			maxIS = maxUtil
		}
		if res.ISCPUUtilPct < 0 || res.ISCPUUtilPct > maxIS {
			return false
		}
		if res.MonitoringLatencySec < 0 || res.ThroughputPerSec < 0 {
			return false
		}
		if res.MonitoringLatencyMaxSec < res.MonitoringLatencySec-1e-12 &&
			res.SamplesReceived > 0 {
			return false // max below mean is impossible
		}
		// Node CPUs cannot be busier than elapsed capacity.
		measured := cfg.Duration
		for _, cpu := range m.NodeCPUs {
			cores := 1.0
			if cfg.Arch == SMP {
				cores = float64(cfg.Nodes)
			}
			if cpu.BusyTotal() > cores*(measured+cfg.Warmup)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
