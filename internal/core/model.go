package core

import (
	"rocc/internal/des"
	"rocc/internal/faults"
	"rocc/internal/forward"
	"rocc/internal/obs"
	"rocc/internal/obs/prov"
	"rocc/internal/procs"
	"rocc/internal/resources"
	"rocc/internal/rng"
)

// Model is an assembled ROCC simulation ready to run. All components are
// exported so tests and experiments can inspect internal state.
type Model struct {
	Cfg Config
	Sim *des.Simulator

	// NodeCPUs has one entry per node for NOW/MPP; for SMP it holds the
	// single shared multi-core CPU.
	NodeCPUs []*resources.CPU
	// HostCPU is where the main Paradyn process runs. It may alias
	// NodeCPUs[0] (shared) or be a dedicated host workstation CPU.
	HostCPU *resources.CPU
	// Net is the interconnect (shared network, bus, or contention-free).
	Net *resources.Network

	Apps    []*procs.AppProcess
	Daemons []*procs.PdDaemon
	Main    *procs.MainProcess
	Sources []*procs.OpenSource
	Barrier *procs.Barrier

	// Inj is the fault injector, non-nil only when Cfg.Faults is active.
	Inj *faults.Injector

	topo        forward.Topology
	nodeDaemons [][]*procs.PdDaemon // daemons indexed by node (NOW/MPP)
	nodeProcs   []int               // current application-process count per node
	master      *rng.Stream         // for mid-run spawns
	spawnSeq    int

	// PhaseFlips counts workload phase transitions (PhasePeriod option).
	PhaseFlips int
	inAltPhase bool

	warmupCarryover int

	// obsC is the attached observability collector (EnableObservability);
	// obsPipeSeq hands out pipe IDs for its lifecycle events; prov is the
	// per-sample latency-decomposition engine (ObsOptions.Provenance).
	obsC       *obs.Collector
	obsPipeSeq int
	prov       *prov.Engine
}

// Substream identifiers for reproducible per-entity random streams.
const (
	streamApp = iota + 1
	streamPd
	streamMain
	streamPvm
	streamOther
)

// cloneStrategy hands each daemon its own strategy instance; nil (the
// legacy Policy/BatchSize path) passes through so the daemon derives the
// equivalent built-in itself.
func cloneStrategy(s forward.Strategy) forward.Strategy {
	if s == nil {
		return nil
	}
	return s.Clone()
}

func streamID(kind, node, idx int) uint64 {
	return uint64(kind)<<40 | uint64(node)<<20 | uint64(idx)
}

// New assembles a model from a configuration (validated and normalized
// first).
func New(cfg Config) (*Model, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	cal := des.NewCalendarFor(cfg.Calendar, des.WorkloadHints{PendingEvents: cfg.expectedPending()})
	m := &Model{Cfg: cfg, Sim: des.NewWithCalendar(cal)}
	master := rng.New(cfg.Seed)
	m.master = master

	m.Net = resources.NewNetwork(m.Sim, cfg.contended())

	if cfg.Arch == SMP {
		m.buildSMP(master)
	} else {
		m.buildPerNode(master)
	}

	if cfg.Background {
		m.addBackground(master)
	}
	if cfg.MainThreads.enabled() {
		m.addMainThreads(master)
	}
	if err := m.wireFaults(); err != nil {
		return nil, err
	}
	return m, nil
}

// initPipe applies the model-wide pipe settings: the simulation clock for
// blocked-writer wait accounting and the configured overflow policy.
func (m *Model) initPipe(p *resources.Pipe) *resources.Pipe {
	p.SetClock(m.Sim.Now)
	p.SetPolicy(m.Cfg.Overflow)
	if m.obsC != nil { // pipes spawned after EnableObservability
		p.SetObserver(m.obsPipeSeq, m.obsC)
		m.obsPipeSeq++
	}
	return p
}

// wireFaults overlays the fault plan on the assembled model: every
// daemon's uplink is routed through a fault-injecting (and, if enabled,
// retransmitting) Link, the crash and pipe-squeeze schedules are armed,
// and degradation controllers are attached. A nil or inactive plan is a
// no-op — the model stays byte-identical to the fault-free baseline.
// Pipes created later by process forking are not covered by the squeeze
// schedule (it is fixed at build time).
func (m *Model) wireFaults() error {
	if !m.Cfg.Faults.Active() {
		return nil
	}
	inj, err := faults.NewInjector(m.Sim, *m.Cfg.Faults)
	if err != nil {
		return err
	}
	m.Inj = inj
	perNode := make(map[int]int)
	for _, d := range m.Daemons {
		node := d.Node
		idx := perNode[node]
		perNode[node]++
		dst := func(msg *forward.Message) bool {
			parent, toMain := m.topo.Next(node)
			if toMain {
				m.Main.Receive(msg)
				return true
			}
			return m.nodeDaemons[parent][0].Accept(msg)
		}
		link := inj.NewLink(node, idx, m.Net, m.Cfg.Cost, dst)
		d.Deliver = link.Send
		inj.AttachDegrader(d, link)
	}
	inj.ScheduleCrashes(m.Daemons)
	var pipes []*resources.Pipe
	for _, d := range m.Daemons {
		pipes = append(pipes, d.Pipes...)
	}
	inj.SchedulePipeSqueezes(pipes)
	return nil
}

// addMainThreads attaches the Performance Consultant and UI Manager
// threads of the multithreaded main Paradyn process as periodic CPU
// demand on the host CPU, accounted under the main-process owner class.
func (m *Model) addMainThreads(master *rng.Stream) {
	mt := m.Cfg.MainThreads
	if mt.ConsultantPeriod > 0 {
		m.Sources = append(m.Sources, &procs.OpenSource{
			Sim: m.Sim, CPU: m.HostCPU, Net: m.Net,
			R:               master.Derive(streamID(streamMain, 0, 1)),
			Owner:           procs.OwnerMain,
			CPUDist:         mt.ConsultantCPU,
			CPUInterarrival: rng.Constant{Value: mt.ConsultantPeriod},
		})
	}
	if mt.UIPeriod > 0 {
		m.Sources = append(m.Sources, &procs.OpenSource{
			Sim: m.Sim, CPU: m.HostCPU, Net: m.Net,
			R:               master.Derive(streamID(streamMain, 0, 2)),
			Owner:           procs.OwnerMain,
			CPUDist:         mt.UICPU,
			CPUInterarrival: rng.Constant{Value: mt.UIPeriod},
		})
	}
}

// buildPerNode assembles the NOW and MPP architectures: one CPU per node,
// one (or more) daemons per node, AppProcs application processes per node.
func (m *Model) buildPerNode(master *rng.Stream) {
	cfg := m.Cfg
	m.topo = forward.NewTopology(cfg.Forwarding, cfg.Nodes)

	m.NodeCPUs = make([]*resources.CPU, cfg.Nodes)
	for i := range m.NodeCPUs {
		m.NodeCPUs[i] = resources.NewCPU(m.Sim, 1, cfg.Quantum)
	}
	if cfg.DedicatedHost {
		m.HostCPU = resources.NewCPU(m.Sim, 1, cfg.Quantum)
	} else {
		m.HostCPU = m.NodeCPUs[0]
	}
	m.Main = &procs.MainProcess{
		Sim: m.Sim, CPU: m.HostCPU,
		R:       master.Derive(streamID(streamMain, 0, 0)),
		CPUDist: cfg.Workload.MainCPU,
	}

	totalApps := cfg.Nodes * cfg.AppProcs
	if cfg.BarrierPeriod > 0 {
		m.Barrier = &procs.Barrier{Participants: totalApps}
	}

	// Daemons first so pipes can be attached as apps are created.
	m.Daemons = make([]*procs.PdDaemon, 0, cfg.Nodes*cfg.Pds)
	m.nodeDaemons = make([][]*procs.PdDaemon, cfg.Nodes)
	for node := 0; node < cfg.Nodes; node++ {
		for k := 0; k < cfg.Pds; k++ {
			d := &procs.PdDaemon{
				Sim: m.Sim, CPU: m.NodeCPUs[node], Net: m.Net,
				R:            master.Derive(streamID(streamPd, node, k)),
				Policy:       cfg.Policy,
				BatchSize:    cfg.BatchSize,
				Strategy:     cloneStrategy(cfg.Strategy),
				Cost:         cfg.Cost,
				Node:         node,
				FlushTimeout: cfg.FlushTimeout,
			}
			m.wireDelivery(d)
			m.Daemons = append(m.Daemons, d)
			m.nodeDaemons[node] = append(m.nodeDaemons[node], d)
		}
	}

	for node := 0; node < cfg.Nodes; node++ {
		for j := 0; j < cfg.AppProcs; j++ {
			pipe := m.initPipe(resources.NewPipe(cfg.PipeCapacity))
			// Round-robin pipes over the node's daemons.
			d := m.nodeDaemons[node][j%len(m.nodeDaemons[node])]
			d.Pipes = append(d.Pipes, pipe)
			app := &procs.AppProcess{
				Sim: m.Sim, CPU: m.NodeCPUs[node], Net: m.Net, Pipe: pipe,
				R:              master.Derive(streamID(streamApp, node, j)),
				CPUDist:        cfg.Workload.AppCPU,
				NetDist:        cfg.Workload.AppNet,
				SamplingPeriod: cfg.SamplingPeriod,
				Barrier:        m.Barrier,
				BarrierPeriod:  cfg.BarrierPeriod,
				Node:           node, ID: j,
			}
			m.applyDetailed(app, d)
			m.Apps = append(m.Apps, app)
		}
	}
	m.nodeProcs = make([]int, cfg.Nodes)
	for i := range m.nodeProcs {
		m.nodeProcs[i] = cfg.AppProcs
	}
}

// wireDelivery routes a daemon's transmitted messages either to the main
// process or to the parent node's (first) daemon per the topology. Wiring
// is deferred via closure so it works while daemons are still being built.
func (m *Model) wireDelivery(d *procs.PdDaemon) {
	node := d.Node
	d.Deliver = func(msg *forward.Message) {
		parent, toMain := m.topo.Next(node)
		if toMain {
			m.Main.Receive(msg)
			return
		}
		m.nodeDaemons[parent][0].Receive(msg)
	}
}

// buildSMP assembles the shared-memory architecture: Nodes CPUs in one
// pool shared by all application processes, the daemons, and the main
// process; the interconnect is the shared bus.
func (m *Model) buildSMP(master *rng.Stream) {
	cfg := m.Cfg
	m.topo = forward.DirectTopology{}

	cpu := resources.NewCPU(m.Sim, cfg.Nodes, cfg.Quantum)
	m.NodeCPUs = []*resources.CPU{cpu}
	m.HostCPU = cpu
	m.Main = &procs.MainProcess{
		Sim: m.Sim, CPU: cpu,
		R:       master.Derive(streamID(streamMain, 0, 0)),
		CPUDist: cfg.Workload.MainCPU,
	}
	if cfg.BarrierPeriod > 0 {
		m.Barrier = &procs.Barrier{Participants: cfg.AppProcs}
	}

	m.Daemons = make([]*procs.PdDaemon, cfg.Pds)
	for k := range m.Daemons {
		d := &procs.PdDaemon{
			Sim: m.Sim, CPU: cpu, Net: m.Net,
			R:            master.Derive(streamID(streamPd, 0, k)),
			Policy:       cfg.Policy,
			BatchSize:    cfg.BatchSize,
			Strategy:     cloneStrategy(cfg.Strategy),
			Cost:         cfg.Cost,
			Node:         0,
			FlushTimeout: cfg.FlushTimeout,
			Deliver:      func(msg *forward.Message) { m.Main.Receive(msg) },
		}
		m.Daemons[k] = d
	}

	for j := 0; j < cfg.AppProcs; j++ {
		pipe := m.initPipe(resources.NewPipe(cfg.PipeCapacity))
		m.Daemons[j%cfg.Pds].Pipes = append(m.Daemons[j%cfg.Pds].Pipes, pipe)
		app := &procs.AppProcess{
			Sim: m.Sim, CPU: cpu, Net: m.Net, Pipe: pipe,
			R:              master.Derive(streamID(streamApp, 0, j)),
			CPUDist:        cfg.Workload.AppCPU,
			NetDist:        cfg.Workload.AppNet,
			SamplingPeriod: cfg.SamplingPeriod,
			Barrier:        m.Barrier,
			BarrierPeriod:  cfg.BarrierPeriod,
			Node:           0, ID: j,
		}
		m.applyDetailed(app, m.Daemons[j%cfg.Pds])
		m.Apps = append(m.Apps, app)
	}
	m.nodeProcs = []int{cfg.AppProcs}
}

// applyDetailed attaches the event-tracing and Figure 6 detailed-model
// behaviors to an application process.
func (m *Model) applyDetailed(app *procs.AppProcess, d *procs.PdDaemon) {
	cfg := m.Cfg
	app.EventTrace = cfg.EventTrace
	if cfg.Detailed.IOProb > 0 {
		app.IOProb = cfg.Detailed.IOProb
		app.IOBlock = cfg.Detailed.IOBlock
	}
	if cfg.Detailed.SpawnPeriod > 0 {
		app.SpawnPeriod = cfg.Detailed.SpawnPeriod
		app.OnSpawn = func(parent *procs.AppProcess) { m.spawnChild(parent, d) }
	}
}

// spawnChild implements the Fork transition: a running process creates a
// new instrumented application process on its node, whose samples flow
// through a fresh pipe registered with the node's daemon. Children do not
// fork further; MaxProcsPerNode caps growth.
func (m *Model) spawnChild(parent *procs.AppProcess, d *procs.PdDaemon) {
	node := parent.Node
	if node >= len(m.nodeProcs) || m.nodeProcs[node] >= m.Cfg.Detailed.MaxProcsPerNode {
		return
	}
	m.nodeProcs[node]++
	m.spawnSeq++
	pipe := m.initPipe(resources.NewPipe(m.Cfg.PipeCapacity))
	d.Pipes = append(d.Pipes, pipe)
	pipe.SetOnData(d.Wake)
	child := &procs.AppProcess{
		Sim: m.Sim, CPU: parent.CPU, Net: parent.Net, Pipe: pipe,
		R:              m.master.Derive(streamID(streamApp, node, 1000+m.spawnSeq)),
		CPUDist:        parent.CPUDist,
		NetDist:        parent.NetDist,
		SamplingPeriod: parent.SamplingPeriod,
		EventTrace:     parent.EventTrace,
		IOProb:         parent.IOProb,
		IOBlock:        parent.IOBlock,
		Node:           node, ID: 1000 + m.spawnSeq,
	}
	if m.obsC != nil {
		child.Obs = m.obsC
	}
	m.Apps = append(m.Apps, child)
	child.Start()
}

// addBackground attaches the PVM daemon and other user/system process
// request streams of Table 2: one of each per node (one pair total for
// SMP, which is a single machine).
func (m *Model) addBackground(master *rng.Stream) {
	cfg := m.Cfg
	for node, cpu := range m.NodeCPUs {
		pvm := &procs.OpenSource{
			Sim: m.Sim, CPU: cpu, Net: m.Net,
			R:       master.Derive(streamID(streamPvm, node, 0)),
			Owner:   procs.OwnerPvm,
			CPUDist: cfg.Workload.PvmCPU, NetDist: cfg.Workload.PvmNet,
			Chained:         true,
			CPUInterarrival: cfg.Workload.PvmInterarrival,
		}
		other := &procs.OpenSource{
			Sim: m.Sim, CPU: cpu, Net: m.Net,
			R:       master.Derive(streamID(streamOther, node, 0)),
			Owner:   procs.OwnerOther,
			CPUDist: cfg.Workload.OtherCPU, NetDist: cfg.Workload.OtherNet,
			CPUInterarrival: cfg.Workload.OtherCPUInterarrival,
			NetInterarrival: cfg.Workload.OtherNetInterarrival,
		}
		m.Sources = append(m.Sources, pvm, other)
	}
}

// Start launches every process in the model.
func (m *Model) Start() {
	for _, d := range m.Daemons {
		d.Start()
	}
	for _, a := range m.Apps {
		a.Start()
	}
	for _, s := range m.Sources {
		s.Start()
	}
	if m.Cfg.PhasePeriod > 0 {
		m.Sim.Schedule(m.Cfg.PhasePeriod, m.flipPhase)
	}
}

// flipPhase alternates every application process between the base and the
// phase workload; processes pick up the new distributions at their next
// burst.
func (m *Model) flipPhase() {
	m.inAltPhase = !m.inAltPhase
	w := m.Cfg.Workload
	if m.inAltPhase {
		w = *m.Cfg.PhaseWorkload
	}
	for _, a := range m.Apps {
		a.CPUDist = w.AppCPU
		a.NetDist = w.AppNet
	}
	m.PhaseFlips++
	m.Sim.Schedule(m.Cfg.PhasePeriod, m.flipPhase)
}

// Run starts the model, simulates for the configured duration (after any
// warmup period, whose activity is discarded), and returns the collected
// metrics.
func (m *Model) Run() Result {
	m.Start()
	if m.Cfg.Warmup > 0 {
		m.Sim.Run(m.Cfg.Warmup)
		m.resetAccounting()
	}
	m.Sim.Run(m.Cfg.Warmup + m.Cfg.Duration)
	return m.collect()
}

// resetAccounting discards warmup-period metrics across the model. Samples
// generated during warmup that are still buffered or in flight will be
// received during the measured window; their count is recorded as the
// warmup carryover so sample accounting stays exact.
func (m *Model) resetAccounting() {
	carry := 0
	for _, d := range m.Daemons {
		for _, p := range d.Pipes {
			carry += p.Len() + p.Blocked()
		}
		carry += d.SamplesCollected
	}
	carry -= m.Main.SamplesReceived
	if carry < 0 {
		carry = 0
	}
	m.warmupCarryover = carry
	for _, cpu := range m.NodeCPUs {
		cpu.ResetAccounting()
	}
	if m.Cfg.DedicatedHost && m.Cfg.Arch != SMP {
		m.HostCPU.ResetAccounting()
	}
	m.Net.ResetAccounting()
	m.Main.ResetAccounting()
	for _, d := range m.Daemons {
		d.ResetAccounting()
		for _, p := range d.Pipes {
			p.ResetAccounting()
		}
	}
	for _, a := range m.Apps {
		a.ResetAccounting()
	}
	if m.Barrier != nil {
		m.Barrier.Releases = 0
	}
	if m.Inj != nil {
		m.Inj.ResetAccounting()
	}
	if m.obsC != nil {
		m.obsC.ResetAccounting()
	}
}
