package core

import (
	"reflect"
	"testing"

	"rocc/internal/des"
	"rocc/internal/faults"
	"rocc/internal/forward"
	"rocc/internal/resources"
)

// calendarCases spans the model's behavior space: every architecture, CF
// and BF forwarding, tree topology, contended network, barriers, event
// tracing, the detailed process model, warmup, and an active fault plan.
// Each exercises a different scheduling pattern (cancellations, same-time
// bursts, long-idle timers), so together they pin the full Schedule/Cancel
// surface the calendar sees.
func calendarCases() map[string]Config {
	now := shortCfg()

	bf := shortCfg()
	bf.Policy = forward.BF
	bf.BatchSize = 10
	bf.FlushTimeout = 50000

	smp := shortCfg()
	smp.Arch = SMP
	smp.Nodes = 4
	smp.AppProcs = 8
	smp.Pds = 2
	smp.SamplingPeriod = 5000

	mpp := shortCfg()
	mpp.Arch = MPP
	mpp.Nodes = 16
	mpp.Forwarding = forward.Tree
	mpp.Policy = forward.BF
	mpp.BatchSize = 4

	barrier := shortCfg()
	barrier.BarrierPeriod = 200000
	barrier.Warmup = 1e6

	detailed := shortCfg()
	detailed.EventTrace = true
	detailed.Detailed = DetailedModel{IOProb: 0.05, SpawnPeriod: 2e6}

	faulty := shortCfg()
	faulty.Overflow = resources.DropOldest
	faulty.Faults = &faults.Plan{
		Seed:      3,
		Loss:      0.05,
		Dup:       0.02,
		CrashMTBF: 2e6,
		Resilience: faults.Resilience{
			Retransmit: true,
			Degrade:    true,
		},
	}

	return map[string]Config{
		"now-cf": now, "now-bf": bf, "smp": smp, "mpp-tree": mpp,
		"barrier-warmup": barrier, "detailed-trace": detailed, "faults": faulty,
	}
}

// The calendar choice is a pure performance knob: every implementation
// must produce the byte-identical Result for the same seed. Result is all
// scalar fields, so == is a full comparison. Run under -race in CI.
func TestCalendarKindsProduceIdenticalResults(t *testing.T) {
	for name, cfg := range calendarCases() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base := cfg
			base.Calendar = des.CalendarHeap
			want := mustRun(t, base)
			for _, k := range []des.CalendarKind{des.CalendarAuto, des.CalendarBucket} {
				c := cfg
				c.Calendar = k
				if got := mustRun(t, c); !reflect.DeepEqual(got, want) {
					t.Fatalf("calendar %v diverged from heap:\nheap:   %+v\n%v: %+v", k, want, k, got)
				}
			}
		})
	}
}

// expectedPending should put the default 8-node NOW config (and anything
// bigger) on the bucket calendar, and a minimal 1-node scenario on the
// heap — the two sides of the hold-model crossover.
func TestCalendarAutoSelection(t *testing.T) {
	big, err := DefaultConfig().Validate()
	if err != nil {
		t.Fatal(err)
	}
	if n := big.expectedPending(); n < 48 {
		t.Fatalf("default config expectedPending %d, want >= 48 (bucket)", n)
	}
	small := Config{Nodes: 1, AppProcs: 1, Duration: 1e6}
	small, err = small.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if n := small.expectedPending(); n >= 48 {
		t.Fatalf("minimal config expectedPending %d, want < 48 (heap)", n)
	}
	if _, ok := des.NewCalendarFor(des.CalendarAuto, des.WorkloadHints{PendingEvents: big.expectedPending()}).(*des.BucketCalendar); !ok {
		t.Fatal("auto did not pick the bucket calendar for the default config")
	}
	if _, ok := des.NewCalendarFor(des.CalendarAuto, des.WorkloadHints{PendingEvents: small.expectedPending()}).(*des.HeapCalendar); !ok {
		t.Fatal("auto did not pick the heap calendar for a minimal config")
	}
}
