package core

import (
	"math"
	"testing"

	"rocc/internal/trace"
)

func TestTraceRecordingRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.Duration = 20e6
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.EnableTraceRecording(0)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	recs := rec.Records()
	if len(recs) == 0 {
		t.Fatal("no records captured")
	}
	// Records are valid and sorted.
	for i, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		if i > 0 && r.StartUS < recs[i-1].StartUS {
			t.Fatal("records not sorted")
		}
	}
	// The recorded trace's per-class CPU totals must equal the model's
	// occupancy accounting exactly (same events, two views).
	an, err := trace.Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	appTot, _ := an.TotalsFor(trace.ProcApplication)
	if math.Abs(appTot.CPUTimeUS/1e6-res.AppCPUTimePerNodeSec) > 1e-9 {
		t.Fatalf("trace app CPU %v s != model %v s", appTot.CPUTimeUS/1e6, res.AppCPUTimePerNodeSec)
	}
	pdTot, _ := an.TotalsFor(trace.ProcPd)
	if math.Abs(pdTot.CPUTimeUS/1e6-res.PdCPUTimePerNodeSec) > 1e-9 {
		t.Fatalf("trace Pd CPU %v s != model %v s", pdTot.CPUTimeUS/1e6, res.PdCPUTimePerNodeSec)
	}
	// Main process traced on the dedicated host (Figure 29's second file).
	mainTot, ok := an.TotalsFor(trace.ProcParadyn)
	if !ok || math.Abs(mainTot.CPUTimeUS/1e6-res.MainCPUTimeSec) > 1e-9 {
		t.Fatalf("trace main CPU %+v != model %v s", mainTot, res.MainCPUTimeSec)
	}
	// CPU dispatch records never exceed the scheduling quantum.
	for _, r := range recs {
		if r.Resource == trace.CPU && r.DurationUS > cfg.Quantum+1e-9 {
			t.Fatalf("dispatch record longer than quantum: %v", r.DurationUS)
		}
	}
}

func TestTraceRecordingPdRequestStatistics(t *testing.T) {
	// Daemon requests (mean 267 << quantum) are rarely split, so the
	// recorded per-record mean approximates the Table 2 parameter.
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.SamplingPeriod = 5000
	cfg.Duration = 50e6
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.EnableTraceRecording(0)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	var pd []float64
	for _, r := range rec.Records() {
		if r.Process == trace.ProcPd && r.Resource == trace.CPU {
			pd = append(pd, r.DurationUS)
		}
	}
	if len(pd) < 1000 {
		t.Fatalf("only %d pd records", len(pd))
	}
	mean := 0.0
	for _, v := range pd {
		mean += v
	}
	mean /= float64(len(pd))
	if math.Abs(mean-267)/267 > 0.10 {
		t.Fatalf("recorded Pd CPU mean %v, want ~267", mean)
	}
}

func TestTraceRecordingErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 1e6
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EnableTraceRecording(99); err == nil {
		t.Fatal("out-of-range node should fail")
	}
	if _, err := m.EnableTraceRecording(-1); err == nil {
		t.Fatal("negative node should fail")
	}
}

func TestTraceRecordingUnknownOwnerLabel(t *testing.T) {
	// Owners outside the known set still record, with a fallback label.
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.Duration = 1e5
	cfg.Background = false
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.EnableTraceRecording(0)
	if err != nil {
		t.Fatal(err)
	}
	m.NodeCPUs[0].Submit("mystery", 500, nil)
	m.Run()
	found := false
	for _, r := range rec.Records() {
		if r.Process == "mystery" && r.PID == 999 {
			found = true
		}
	}
	if !found {
		t.Fatal("unknown owner not recorded")
	}
}
