package core

import (
	"testing"

	"rocc/internal/rng"
)

func TestEventTracingGeneratesPerIteration(t *testing.T) {
	cfg := shortCfg()
	cfg.Nodes = 1
	cfg.SamplingPeriod = 0 // tracing only
	cfg.EventTrace = true
	cfg.Duration = 5e6
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	// One sample per iteration: far more data than 25/s sampling.
	if res.SamplesGenerated < m.Apps[0].Iterations {
		t.Fatalf("generated %d < iterations %d", res.SamplesGenerated, m.Apps[0].Iterations)
	}
	if res.SamplesGenerated < 1000 {
		t.Fatalf("tracing produced only %d samples", res.SamplesGenerated)
	}
	if res.SamplesReceived == 0 {
		t.Fatal("no traced samples delivered")
	}
}

func TestTracingCostsMoreThanSampling(t *testing.T) {
	// The reason Paradyn samples rather than traces (§1: trace-based
	// tools' "space and time overheads"): event tracing multiplies the
	// daemon's direct overhead.
	sampled := shortCfg()
	sampled.Nodes = 2
	sampled.Duration = 5e6

	traced := sampled
	traced.SamplingPeriod = 0
	traced.EventTrace = true

	rs, rt := mustRun(t, sampled), mustRun(t, traced)
	if rt.PdCPUTimePerNodeSec < 5*rs.PdCPUTimePerNodeSec {
		t.Fatalf("tracing overhead %v not well above sampling %v",
			rt.PdCPUTimePerNodeSec, rs.PdCPUTimePerNodeSec)
	}
}

func TestDetailedIOBlocking(t *testing.T) {
	cfg := shortCfg()
	cfg.Nodes = 1
	cfg.Duration = 10e6
	cfg.Detailed.IOProb = 0.3
	cfg.Detailed.IOBlock = rng.Constant{Value: 3000}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	app := m.Apps[0]
	if app.IOBlocks == 0 {
		t.Fatal("no I/O blocks occurred")
	}
	// Roughly 30% of iterations block.
	frac := float64(app.IOBlocks) / float64(app.Iterations)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("I/O block fraction %v, want ~0.3", frac)
	}
	// Blocking lowers application CPU utilization vs the simplified model.
	plain := cfg
	plain.Detailed = DetailedModel{}
	rp := mustRun(t, plain)
	if res.AppCPUUtilPct >= rp.AppCPUUtilPct {
		t.Fatalf("I/O waits should cut app CPU: %v vs %v", res.AppCPUUtilPct, rp.AppCPUUtilPct)
	}
}

func TestDetailedSpawning(t *testing.T) {
	cfg := shortCfg()
	cfg.Nodes = 2
	cfg.Duration = 20e6
	cfg.Detailed.SpawnPeriod = 3e6 // fork every 3 s of work
	cfg.Detailed.MaxProcsPerNode = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if len(m.Apps) <= 2 {
		t.Fatal("no processes were spawned")
	}
	if len(m.Apps) > 2*4 {
		t.Fatalf("spawn cap violated: %d processes", len(m.Apps))
	}
	spawned := 0
	for _, a := range m.Apps[:2] {
		spawned += a.Spawned
	}
	if spawned == 0 {
		t.Fatal("parents recorded no forks")
	}
	// Spawned processes are instrumented: sample volume grows beyond the
	// initial population's rate.
	perProcess := int(cfg.Duration / cfg.SamplingPeriod)
	if res.SamplesGenerated <= 2*perProcess {
		t.Fatalf("children not sampling: %d samples", res.SamplesGenerated)
	}
	// All samples still flow to main.
	if res.SamplesReceived < res.SamplesGenerated*8/10 {
		t.Fatalf("lost samples: %d of %d", res.SamplesReceived, res.SamplesGenerated)
	}
}

func TestPhasedWorkloadAlternates(t *testing.T) {
	cfg := shortCfg()
	cfg.Nodes = 1
	cfg.Duration = 8e6
	cfg.PhasePeriod = 2e6
	// Alternate phase: communication-heavy (long network bursts).
	alt := CommIntensive.Apply(DefaultWorkload())
	alt.AppNet = rng.Exponential{MeanVal: 8000}
	cfg.PhaseWorkload = &alt
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if m.PhaseFlips != 4 { // flips at 2, 4, 6, and at the 8 s horizon
		t.Fatalf("phase flips %d, want 4", m.PhaseFlips)
	}
	// The comm phase halves app CPU utilization vs an unphased run.
	plain := cfg
	plain.PhasePeriod = 0
	plain.PhaseWorkload = nil
	rp := mustRun(t, plain)
	if res.AppCPUUtilPct >= rp.AppCPUUtilPct-3 {
		t.Fatalf("phasing had no effect: %v vs %v", res.AppCPUUtilPct, rp.AppCPUUtilPct)
	}
}

func TestMainThreadsAddHostLoad(t *testing.T) {
	base := shortCfg()
	base.Duration = 10e6
	plain := mustRun(t, base)

	threaded := base
	threaded.MainThreads = MainThreadModel{
		ConsultantPeriod: 100000, // W3 evaluation every 100 ms
		UIPeriod:         50000,  // display refresh every 50 ms
	}
	rt := mustRun(t, threaded)
	// The PC and UIM threads add main-process CPU time beyond the Data
	// Manager's per-message work.
	if rt.MainCPUTimeSec <= plain.MainCPUTimeSec {
		t.Fatalf("main threads added no load: %v vs %v", rt.MainCPUTimeSec, plain.MainCPUTimeSec)
	}
	// Roughly: 100 PC evals * 3208us + 200 UI refreshes * 2000us = ~0.72 s.
	added := rt.MainCPUTimeSec - plain.MainCPUTimeSec
	if added < 0.3 || added > 1.5 {
		t.Fatalf("added main CPU %v s implausible", added)
	}
	// Defaults applied by validation.
	v, err := threaded.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.MainThreads.ConsultantCPU == nil || v.MainThreads.UICPU == nil {
		t.Fatal("thread CPU defaults not applied")
	}
}

func TestPhasedValidate(t *testing.T) {
	cfg := shortCfg()
	cfg.PhasePeriod = 1e6
	if _, err := New(cfg); err == nil {
		t.Fatal("PhasePeriod without PhaseWorkload should fail")
	}
	cfg.PhasePeriod = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("negative PhasePeriod should fail")
	}
}

func TestDetailedValidate(t *testing.T) {
	cfg := shortCfg()
	cfg.Detailed.IOProb = 1.5
	if _, err := New(cfg); err == nil {
		t.Fatal("bad IOProb should fail")
	}
	cfg = shortCfg()
	cfg.Detailed.IOProb = 0.1
	v, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.Detailed.IOBlock == nil {
		t.Fatal("IOBlock default not applied")
	}
	cfg = shortCfg()
	cfg.Detailed.SpawnPeriod = 1e6
	v, err = cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.Detailed.MaxProcsPerNode != 8 {
		t.Fatal("MaxProcsPerNode default not applied")
	}
}
