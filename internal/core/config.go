// Package core assembles and runs the ROCC (Resource OCCupancy) model of
// the Paradyn instrumentation system — the paper's primary contribution.
// A Config selects the architecture (NOW, SMP, or MPP), the instrumentation
// workload factors of the 2^k·r experiments (number of nodes, sampling
// period, forwarding policy and batch size, application type, forwarding
// configuration), and the Table 2 workload parameterization. Model.Run
// executes the discrete-event simulation and reports the paper's metrics:
// direct IS overhead, monitoring latency, data-forwarding throughput, and
// per-class CPU and network utilizations.
package core

import (
	"errors"
	"fmt"

	"rocc/internal/des"
	"rocc/internal/faults"
	"rocc/internal/forward"
	"rocc/internal/resources"
	"rocc/internal/rng"
)

// Arch selects the system architecture being modeled.
type Arch int

const (
	// NOW is a network of workstations: one CPU per node, shared network.
	NOW Arch = iota
	// SMP is a shared-memory multiprocessor: all processes share one pool
	// of CPUs and a bus.
	SMP
	// MPP is a massively parallel processor: one CPU per node and a
	// high-speed, contention-free interconnect (§4.4).
	MPP
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case NOW:
		return "NOW"
	case SMP:
		return "SMP"
	case MPP:
		return "MPP"
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// Contention selects the network service discipline.
type Contention int

const (
	// ContentionAuto uses the architecture default: a contended bus for
	// SMP, contention-free otherwise (the figure-18/19 and §4.4 settings).
	ContentionAuto Contention = iota
	// ContentionOn forces a single contended channel.
	ContentionOn
	// ContentionOff forces contention-free transfers.
	ContentionOff
)

// Workload holds the stochastic workload parameterization of the ROCC
// model (Table 2); all times are microseconds.
type Workload struct {
	AppCPU rng.Dist // application Computation burst
	AppNet rng.Dist // application Communication burst

	PvmCPU          rng.Dist
	PvmNet          rng.Dist
	PvmInterarrival rng.Dist

	OtherCPU             rng.Dist
	OtherNet             rng.Dist
	OtherCPUInterarrival rng.Dist
	OtherNetInterarrival rng.Dist

	MainCPU rng.Dist // main Paradyn process per-message demand
}

// DefaultWorkload returns the Table 2 parameterization fitted from AIX
// traces of the NAS pvmbt benchmark on an IBM SP-2.
func DefaultWorkload() Workload {
	return Workload{
		AppCPU:               rng.Lognormal{MeanVal: 2213, SD: 3034},
		AppNet:               rng.Exponential{MeanVal: 223},
		PvmCPU:               rng.Lognormal{MeanVal: 294, SD: 206},
		PvmNet:               rng.Exponential{MeanVal: 58},
		PvmInterarrival:      rng.Exponential{MeanVal: 6485},
		OtherCPU:             rng.Lognormal{MeanVal: 367, SD: 819},
		OtherNet:             rng.Exponential{MeanVal: 92},
		OtherCPUInterarrival: rng.Exponential{MeanVal: 31485},
		OtherNetInterarrival: rng.Exponential{MeanVal: 5598903},
		MainCPU:              rng.Lognormal{MeanVal: 3208, SD: 3287},
	}
}

// AppType is the application-type factor of the 2^k experiments (§4.2.1):
// it sets the application's network occupancy requirement.
type AppType int

const (
	// ComputeIntensive sets the application network occupancy to 200 us.
	ComputeIntensive AppType = iota
	// CommIntensive sets it to 2000 us.
	CommIntensive
)

// String implements fmt.Stringer.
func (a AppType) String() string {
	if a == CommIntensive {
		return "communication-intensive"
	}
	return "compute-intensive"
}

// Apply returns a copy of w with the application network demand set per
// the application type.
func (a AppType) Apply(w Workload) Workload {
	switch a {
	case ComputeIntensive:
		w.AppNet = rng.Exponential{MeanVal: 200}
	case CommIntensive:
		w.AppNet = rng.Exponential{MeanVal: 2000}
	}
	return w
}

// Config describes one simulation scenario.
type Config struct {
	Arch Arch

	// Nodes is the number of system nodes; for SMP it is the number of
	// CPUs in the shared-memory machine.
	Nodes int

	// AppProcs is the number of application processes per node for
	// NOW/MPP, and the total number of application processes for SMP.
	AppProcs int

	// Pds is the number of Paradyn daemons: per node for NOW/MPP
	// (typically 1), total for SMP (the §4.3 multiple-daemon factor).
	Pds int

	// SamplingPeriod is the instrumentation sampling interval in
	// microseconds; zero runs the uninstrumented baseline.
	SamplingPeriod float64

	// Policy and BatchSize select CF or BF forwarding; CF forces an
	// effective batch of one. They are the legacy closed-enum surface:
	// Validate maps them onto the equivalent forward.Strategy when
	// Strategy is nil, byte-identically to the pre-strategy model.
	Policy    forward.Policy
	BatchSize int

	// Strategy, when non-nil, overrides Policy/BatchSize with a pluggable
	// forwarding strategy (forward.NewCF, forward.NewFixedBF,
	// forward.NewAdaptiveBF, or a custom implementation). The value is a
	// prototype: each daemon receives its own Clone, so stateful
	// controllers never share state across daemons. For informational
	// surfaces (scenario specs, result labels) Policy/BatchSize are kept
	// coherent when a built-in strategy is recognized.
	Strategy forward.Strategy

	// Forwarding selects direct or binary-tree forwarding (MPP).
	Forwarding forward.Config

	// Network selects the interconnect contention discipline.
	Network Contention

	// PipeCapacity is the per-pipe sample buffer size (default 256).
	PipeCapacity int

	// Overflow selects what a full pipe does with an incoming sample:
	// Block (the real write(2) behavior and the default), DropNewest, or
	// DropOldest. Drops are accounted in Result.PipeDropped.
	Overflow resources.OverflowPolicy

	// Faults, when non-nil and active, overlays a deterministic fault
	// schedule (message loss/duplication/delay, transient daemon crashes,
	// pipe capacity squeezes) and the configured resilience policies on
	// the model. A nil or inactive plan leaves the model completely
	// unwired and reproduces the fault-free baseline bit-identically.
	Faults *faults.Plan

	// Quantum is the CPU scheduling quantum in microseconds (Table 2:
	// 10,000).
	Quantum float64

	// Duration is the simulated run length in microseconds (measured
	// portion, excluding warmup).
	Duration float64

	// Warmup, when positive, simulates this many microseconds before
	// metric collection starts, discarding the initial transient
	// (standard steady-state methodology, Law & Kelton §9).
	Warmup float64

	// BarrierPeriod, when positive, makes application processes
	// synchronize at a global barrier every BarrierPeriod microseconds of
	// completed work (the Figure 28 factor).
	BarrierPeriod float64

	// FlushTimeout, when positive, lets BF forward partial batches after
	// this many microseconds (zero = pure count-based batching).
	FlushTimeout float64

	// PhasePeriod, when positive, alternates the application workload
	// between Workload and PhaseWorkload every PhasePeriod microseconds —
	// a phased application whose behavior changes over time, the target
	// of the W3 search's "when" axis.
	PhasePeriod   float64
	PhaseWorkload *Workload

	// EventTrace switches the instrumentation from periodic sampling to
	// event tracing: one sample per application Communication event (the
	// "occurrence of an event of interest" path of the Figure 6 model).
	// SamplingPeriod may still be set to combine both.
	EventTrace bool

	// Detailed enables the full Figure 6 process-behavior model on top of
	// the simplified two-state model: probabilistic I/O blocking and
	// periodic process forking.
	Detailed DetailedModel

	// MainThreads enables the main Paradyn process's sibling threads
	// (§2: "the main Paradyn process ... is implemented as a multithreaded
	// process"): beyond the Data Manager work charged per received
	// message, the Performance Consultant and User Interface Manager
	// periodically occupy the host CPU.
	MainThreads MainThreadModel

	// DedicatedHost places the main Paradyn process on its own host
	// workstation CPU (Figure 1); otherwise it shares node 0's CPU (for
	// SMP it always shares the CPU pool).
	DedicatedHost bool

	// Background enables the PVM daemon and other user/system processes.
	Background bool

	// Calendar selects the future-event-list implementation. The zero
	// value (CalendarAuto) picks heap or calendar-queue from the expected
	// pending-event population; all kinds produce byte-identical results
	// (proven by the calendar equivalence tests), so this is purely a
	// performance knob.
	Calendar des.CalendarKind

	Seed     uint64
	Workload Workload
	Cost     forward.CostModel
}

// MainThreadModel parameterizes the Performance Consultant and User
// Interface Manager threads of the main Paradyn process. Zero values
// disable a thread.
type MainThreadModel struct {
	// ConsultantPeriod and ConsultantCPU: every period, the Performance
	// Consultant evaluates its hypotheses (W3 search step).
	ConsultantPeriod float64
	ConsultantCPU    rng.Dist
	// UIPeriod and UICPU: periodic display refresh work.
	UIPeriod float64
	UICPU    rng.Dist
}

func (m MainThreadModel) enabled() bool {
	return m.ConsultantPeriod > 0 || m.UIPeriod > 0
}

// DetailedModel parameterizes the Figure 6 extensions to the process
// model. The zero value disables them (the paper's simplified model).
type DetailedModel struct {
	// IOProb is the per-iteration probability of entering the Blocked
	// (I/O wait) state.
	IOProb float64
	// IOBlock is the blocked-duration distribution; defaults to
	// exponential(5000) when IOProb > 0 and IOBlock is nil.
	IOBlock rng.Dist
	// SpawnPeriod, when positive, forks a new application process every
	// SpawnPeriod microseconds of completed work per process.
	SpawnPeriod float64
	// MaxProcsPerNode caps node population growth from forking
	// (default 8).
	MaxProcsPerNode int
}

// enabled reports whether any detailed-model feature is active.
func (d DetailedModel) enabled() bool { return d.IOProb > 0 || d.SpawnPeriod > 0 }

// DefaultConfig returns the "typical" configuration of Table 2: 8 nodes,
// 1 application process and 1 daemon per node, 40 ms sampling, CF policy,
// direct forwarding, 100-second run.
func DefaultConfig() Config {
	return Config{
		Arch:           NOW,
		Nodes:          8,
		AppProcs:       1,
		Pds:            1,
		SamplingPeriod: 40000,
		Policy:         forward.CF,
		BatchSize:      1,
		Forwarding:     forward.Direct,
		PipeCapacity:   256,
		Quantum:        10000,
		Duration:       100e6,
		DedicatedHost:  true,
		Background:     true,
		Seed:           1,
		Workload:       DefaultWorkload(),
		Cost:           forward.DefaultCostModel(),
	}
}

// Validate checks the configuration and applies defaults for zero-valued
// optional fields, returning the normalized configuration.
func (c Config) Validate() (Config, error) {
	if c.Nodes < 1 {
		return c, errors.New("core: Nodes must be >= 1")
	}
	if c.AppProcs < 1 {
		return c, errors.New("core: AppProcs must be >= 1")
	}
	if c.Pds < 1 {
		c.Pds = 1
	}
	if c.Arch == SMP && c.Pds > c.AppProcs {
		return c, errors.New("core: SMP daemons exceed application processes")
	}
	if c.SamplingPeriod < 0 {
		return c, errors.New("core: SamplingPeriod must be >= 0")
	}
	if c.Duration <= 0 {
		return c, errors.New("core: Duration must be positive")
	}
	if c.Warmup < 0 {
		return c, errors.New("core: Warmup must be >= 0")
	}
	if c.PipeCapacity <= 0 {
		c.PipeCapacity = 256
	}
	if c.Overflow < resources.Block || c.Overflow > resources.DropOldest {
		return c, errors.New("core: unknown pipe overflow policy")
	}
	if c.Faults.Active() {
		plan, err := c.Faults.Validate()
		if err != nil {
			return c, err
		}
		c.Faults = &plan
	}
	if c.Quantum <= 0 {
		c.Quantum = 10000
	}
	if c.Strategy == nil {
		if c.Policy == forward.CF {
			c.BatchSize = 1
		} else if c.BatchSize < 1 {
			return c, errors.New("core: BF policy needs BatchSize >= 1")
		}
	} else {
		if v, ok := c.Strategy.(forward.Validator); ok {
			if err := v.Validate(); err != nil {
				return c, err
			}
		}
		// Keep the legacy fields coherent for labels and scenario specs:
		// built-in strategies render as -policy specs, which recover the
		// equivalent Policy/BatchSize. Custom strategies label as BF.
		if spec, err := forward.ParseStrategySpec(c.Strategy.String()); err == nil {
			c.Policy = spec.Policy
			if !spec.Adaptive {
				if spec.Policy == forward.CF {
					c.BatchSize = 1
				} else if spec.Batch > 0 {
					c.BatchSize = spec.Batch
				}
			}
		} else {
			c.Policy = forward.BF
		}
	}
	if c.Workload == (Workload{}) {
		c.Workload = DefaultWorkload()
	}
	if c.Cost == (forward.CostModel{}) {
		c.Cost = forward.DefaultCostModel()
	}
	if c.Forwarding == forward.Tree && c.Arch != MPP {
		return c, errors.New("core: tree forwarding is modeled for MPP only")
	}
	if c.Detailed.IOProb < 0 || c.Detailed.IOProb > 1 {
		return c, errors.New("core: Detailed.IOProb must be in [0,1]")
	}
	if c.Detailed.IOProb > 0 && c.Detailed.IOBlock == nil {
		c.Detailed.IOBlock = rng.Exponential{MeanVal: 5000}
	}
	if c.Detailed.SpawnPeriod > 0 && c.Detailed.MaxProcsPerNode <= 0 {
		c.Detailed.MaxProcsPerNode = 8
	}
	if c.PhasePeriod < 0 {
		return c, errors.New("core: PhasePeriod must be >= 0")
	}
	if c.PhasePeriod > 0 && c.PhaseWorkload == nil {
		return c, errors.New("core: PhasePeriod needs a PhaseWorkload")
	}
	if c.MainThreads.ConsultantPeriod > 0 && c.MainThreads.ConsultantCPU == nil {
		c.MainThreads.ConsultantCPU = rng.Lognormal{MeanVal: 3208, SD: 3287}
	}
	if c.MainThreads.UIPeriod > 0 && c.MainThreads.UICPU == nil {
		c.MainThreads.UICPU = rng.Exponential{MeanVal: 2000}
	}
	return c, nil
}

// expectedPending estimates the steady-state future-event-list population
// for des.NewCalendarFor's auto-selection: every application process keeps
// one or two timers in flight (a burst completion plus a sampling or
// barrier tick), each daemon a flush timer, each background source an
// arrival timer, plus slack for in-flight network transfers and fault
// machinery. An estimate is all that's needed — the calendar choice only
// moves performance, never results.
func (c Config) expectedPending() int {
	apps := c.AppProcs
	if c.Arch != SMP {
		apps *= c.Nodes
	}
	pds := c.Pds
	if c.Arch != SMP {
		pds *= c.Nodes
	}
	n := 2*apps + pds + 8
	if c.Background {
		n += 2 * c.Nodes // PVM daemon + other-process sources per node
	}
	return n
}

// contended resolves the network discipline for the architecture.
func (c Config) contended() bool {
	switch c.Network {
	case ContentionOn:
		return true
	case ContentionOff:
		return false
	}
	return c.Arch == SMP
}
