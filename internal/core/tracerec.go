package core

import (
	"errors"

	"rocc/internal/procs"
	"rocc/internal/trace"
)

// TraceRecorder captures AIX-like occupancy records from a running model,
// closing the methodology loop: a simulation can be traced exactly like
// the real SP-2 system was, and the recorded trace fed back through the
// workload-characterization pipeline (internal/workload) to check that
// the model reproduces the statistics it was parameterized with.
type TraceRecorder struct {
	records []trace.Record
}

// ownerLabels maps resource-accounting owner classes to the trace
// process-class labels of Table 1.
var ownerLabels = map[string]struct {
	label string
	pid   int
}{
	procs.OwnerApp:   {trace.ProcApplication, 100},
	procs.OwnerPd:    {trace.ProcPd, 200},
	procs.OwnerPvm:   {trace.ProcPvmd, 300},
	procs.OwnerOther: {trace.ProcOther, 400},
	procs.OwnerMain:  {trace.ProcParadyn, 500},
}

// EnableTraceRecording attaches a recorder to one node's CPU (and, when
// the node hosts the main process, the host CPU) plus the shared
// interconnect — mirroring the Figure 29 setup, where the AIX tracer ran
// on one application node. Call before Start; node must be in range.
//
// CPU records are per scheduler dispatch (a request longer than the
// quantum appears as several records), exactly as a kernel tracer would
// see them.
func (m *Model) EnableTraceRecording(node int) (*TraceRecorder, error) {
	if node < 0 || node >= len(m.NodeCPUs) {
		return nil, errors.New("core: trace-recording node out of range")
	}
	rec := &TraceRecorder{}
	hook := func(res trace.Resource) func(owner string, start, length float64) {
		return func(owner string, start, length float64) {
			info, ok := ownerLabels[owner]
			if !ok {
				info.label, info.pid = owner, 999
			}
			rec.records = append(rec.records, trace.Record{
				StartUS:    start,
				PID:        info.pid,
				Process:    info.label,
				Resource:   res,
				DurationUS: length,
			})
		}
	}
	m.NodeCPUs[node].OnOccupancy = hook(trace.CPU)
	if m.HostCPU != m.NodeCPUs[node] && node == 0 {
		// The host workstation's tracer (second trace file of Figure 29).
		m.HostCPU.OnOccupancy = hook(trace.CPU)
	}
	m.Net.OnOccupancy = hook(trace.Network)
	return rec, nil
}

// Records returns the captured trace, sorted by start time.
func (r *TraceRecorder) Records() []trace.Record {
	out := append([]trace.Record(nil), r.records...)
	trace.SortByTime(out)
	return out
}

// Len returns the number of captured records.
func (r *TraceRecorder) Len() int { return len(r.records) }
