package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"rocc/internal/faults"
	"rocc/internal/obs"
	"rocc/internal/procs"
	"rocc/internal/trace"
)

func obsTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Duration = 2e6
	cfg.Seed = 7
	return cfg
}

// The acceptance criterion of the observability layer: a traced run
// exported as internal/trace records must, after rocctrace-style
// analysis, reproduce the run's own Result utilization per class within
// 1%. The sink records every CPU, so the trace is the Result's
// accounting seen through the other pipeline.
func TestTraceRecordsMatchResultWithinOnePercent(t *testing.T) {
	cfg := obsTestConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.EnableObservability(ObsOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()

	recs := c.Sink.TraceRecords()
	if len(recs) == 0 {
		t.Fatal("no occupancy records captured")
	}
	an, err := trace.Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}

	// Per-class CPU totals from the trace vs the Result's utilization,
	// both normalized to percent of total node-CPU capacity.
	capacityUS := float64(cfg.Nodes) * cfg.Duration
	check := func(class string, wantPct float64) {
		t.Helper()
		tot, _ := an.TotalsFor(class)
		gotPct := tot.CPUTimeUS / capacityUS * 100
		if diff := math.Abs(gotPct - wantPct); diff > wantPct*0.01+1e-9 {
			t.Errorf("%s CPU: trace %.4f%%, Result %.4f%% (diff > 1%%)", class, gotPct, wantPct)
		}
	}
	check(trace.ProcApplication, res.AppCPUUtilPct)
	check(trace.ProcPd, res.PdCPUUtilPct)
	check(trace.ProcPvmd, res.PvmCPUUtilPct)
	check(trace.ProcOther, res.OtherCPUUtilPct)
	// Main runs on NodeCPUs[0] here (no dedicated host), so its trace
	// total normalizes against a single CPU.
	mainTot, _ := an.TotalsFor(trace.ProcParadyn)
	gotMain := mainTot.CPUTimeUS / cfg.Duration * 100
	if diff := math.Abs(gotMain - res.MainCPUUtilPct); diff > res.MainCPUUtilPct*0.01+1e-9 {
		t.Errorf("main CPU: trace %.4f%%, Result %.4f%%", gotMain, res.MainCPUUtilPct)
	}
	// Network, same 1% band.
	var netUS float64
	for _, tot := range an.Totals {
		netUS += tot.NetTimeUS
	}
	gotNet := netUS / cfg.Duration * 100
	if diff := math.Abs(gotNet - res.NetUtilPct); diff > res.NetUtilPct*0.01+1e-9 {
		t.Errorf("network: trace %.4f%%, Result %.4f%%", gotNet, res.NetUtilPct)
	}
}

// The Chrome export of a real run must satisfy its own validator (the CI
// smoke step's check).
func TestChromeExportOfRunValidates(t *testing.T) {
	m, err := New(obsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.EnableObservability(ObsOptions{Trace: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	var buf bytes.Buffer
	if err := c.Sink.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1000 {
		t.Fatalf("suspiciously small trace: %d events", n)
	}
}

// Attaching the full observability layer must not perturb the simulation:
// samplers and observers only read state, so the Result (ignoring the
// observability-only quantile fields) is identical to an unobserved run.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Warmup = 2e5

	plain, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := plain.Run()

	observed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := observed.EnableObservability(ObsOptions{Trace: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	got := observed.Run()

	// Blank the fields only the observed run can fill, then demand
	// exact equality.
	got.MonitoringLatencyP50Sec = 0
	got.MonitoringLatencyP99Sec = 0
	if !reflect.DeepEqual(got, base) {
		t.Errorf("observability changed the Result:\nbase: %+v\ngot:  %+v", base, got)
	}
	if c.Metrics.Generated.Value() == 0 || c.Metrics.Delivered.Value() == 0 {
		t.Error("metrics half recorded nothing")
	}
	if len(c.Metrics.Series()) == 0 {
		t.Error("no sampler series registered")
	}
	for _, s := range c.Metrics.Series() {
		if len(s.T) == 0 {
			t.Errorf("series %s is empty", s.Name)
		}
	}
}

// Metrics counters agree with the model's own accounting, and the
// quantile Result fields are populated and ordered.
func TestMetricsAgreeWithResult(t *testing.T) {
	m, err := New(obsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.EnableObservability(ObsOptions{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	mt := c.Metrics
	if got := int(mt.Generated.Value()); got != res.SamplesGenerated {
		t.Errorf("generated counter %d, Result %d", got, res.SamplesGenerated)
	}
	if got := int(mt.Delivered.Value()); got != res.SamplesReceived {
		t.Errorf("delivered counter %d, Result %d", got, res.SamplesReceived)
	}
	if got := int(mt.DeliveredMsgs.Value()); got != res.MessagesReceived {
		t.Errorf("messages counter %d, Result %d", got, res.MessagesReceived)
	}
	if got := int(mt.Forwards.Value()); got != res.MessagesForwarded {
		t.Errorf("forwards counter %d, Result %d", got, res.MessagesForwarded)
	}
	if mt.Events.Value() != m.Sim.Dispatched {
		t.Errorf("events counter %d, simulator dispatched %d", mt.Events.Value(), m.Sim.Dispatched)
	}
	if res.MonitoringLatencyP50Sec <= 0 || res.MonitoringLatencyP99Sec < res.MonitoringLatencyP50Sec {
		t.Errorf("quantiles not populated/ordered: p50=%v p99=%v",
			res.MonitoringLatencyP50Sec, res.MonitoringLatencyP99Sec)
	}
	if res.MonitoringLatencyMaxSec < res.MonitoringLatencyP99Sec {
		t.Errorf("p99 %v exceeds observed max %v", res.MonitoringLatencyP99Sec, res.MonitoringLatencyMaxSec)
	}
}

// Warmup removal applies to the observability layer like everything else:
// sample events recorded before the warmup boundary are discarded.
func TestObservabilityWarmupReset(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Warmup = 5e5
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.EnableObservability(ObsOptions{Trace: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if got := int(c.Metrics.Generated.Value()); got != res.SamplesGenerated {
		t.Errorf("post-warmup generated counter %d, Result %d", got, res.SamplesGenerated)
	}
	for _, sp := range c.Sink.Spans() {
		if sp.StartUS+sp.DurUS <= cfg.Warmup {
			t.Fatalf("span entirely inside warmup survived reset: %+v", sp)
			break
		}
	}
}

// Guard rails: double-enable and empty options are errors; the retransmit
// observer wires through a fault plan.
func TestEnableObservabilityErrors(t *testing.T) {
	m, err := New(obsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EnableObservability(ObsOptions{}); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := m.EnableObservability(ObsOptions{Trace: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EnableObservability(ObsOptions{Trace: true}); err == nil {
		t.Error("double enable accepted")
	}
}

// Every lifecycle observer is attached: a faulty run with retransmissions
// reports them through the collector too.
func TestObservabilityCoversFaultLayer(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Faults = &faults.Plan{
		Seed:       11,
		Loss:       0.2,
		CrashMTBF:  3e5,
		Resilience: faults.Resilience{Retransmit: true},
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.EnableObservability(ObsOptions{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Retransmits == 0 {
		t.Skip("plan injected no retransmissions at this seed")
	}
	if got := int(c.Metrics.Retransmits.Value()); got != res.Retransmits {
		t.Errorf("retransmit counter %d, Result %d", got, res.Retransmits)
	}
	if got := int(c.Metrics.Crashes.Value()); got != res.Crashes {
		t.Errorf("crash counter %d, Result %d", got, res.Crashes)
	}
}

// ownerLabels (tracerec.go) and the sink's class mapping must stay in
// sync with the procs owner classes.
func TestSinkClassMappingMatchesTraceRecorder(t *testing.T) {
	for _, owner := range []string{procs.OwnerApp, procs.OwnerPd, procs.OwnerPvm, procs.OwnerOther, procs.OwnerMain} {
		info, ok := ownerLabels[owner]
		if !ok {
			t.Fatalf("owner %q missing from ownerLabels", owner)
		}
		s := obs.NewTraceSink()
		c := &obs.Collector{Sink: s}
		c.Occupancy(obs.OccCPU, 0, owner, 0, 1)
		recs := s.TraceRecords()
		if len(recs) != 1 || recs[0].Process != info.label || recs[0].PID != info.pid {
			t.Errorf("owner %q: sink gave %+v, recorder maps to %s/%d", owner, recs[0], info.label, info.pid)
		}
	}
}
