package core

import (
	"reflect"
	"testing"
)

// The determinism contract of the parallel replication engine: for a
// fixed base seed, every pool size — serial, wider than the replication
// count, or the per-core default — produces identical []Result, element
// for element. Run under -race in CI, this also proves the fan-out is
// data-race-free.
func TestRunReplicationsParallelEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 1e6
	cfg.Seed = 42
	const reps = 6

	serial, err := RunReplicationsParallel(cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != reps {
		t.Fatalf("%d results, want %d", len(serial.Results), reps)
	}
	for _, workers := range []int{0, 2, 8, 2 * reps} {
		par, err := RunReplicationsParallel(cfg, reps, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Results) != reps {
			t.Fatalf("workers=%d: %d results", workers, len(par.Results))
		}
		for i := range serial.Results {
			if !reflect.DeepEqual(par.Results[i], serial.Results[i]) {
				t.Fatalf("workers=%d: replication %d differs from the serial path", workers, i)
			}
		}
	}

	// The default entry point must agree with the explicit-pool one.
	def, err := RunReplications(cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Results {
		if !reflect.DeepEqual(def.Results[i], serial.Results[i]) {
			t.Fatalf("RunReplications diverges from RunReplicationsParallel at replication %d", i)
		}
	}
}

// ReplicationSeeds is the seed schedule the engine commits to before
// fanning out; it must be deterministic, collision-free, and route
// through DeriveSeed's replication stream.
func TestReplicationSeeds(t *testing.T) {
	seeds := ReplicationSeeds(7, 50)
	if len(seeds) != 50 {
		t.Fatalf("%d seeds", len(seeds))
	}
	seen := map[uint64]bool{}
	for i, s := range seeds {
		if s != DeriveSeed(7, SeedStreamReplication, uint64(i)) {
			t.Fatalf("seed %d not derived through SeedStreamReplication", i)
		}
		if seen[s] {
			t.Fatalf("duplicate replication seed at index %d", i)
		}
		seen[s] = true
	}
	if got := ReplicationSeeds(7, 0); len(got) != 1 {
		t.Fatalf("reps<1 must clamp to one replication, got %d", len(got))
	}
}

// An invalid configuration must fail identically at any pool size (the
// lowest-index error, matching the serial loop).
func TestRunReplicationsParallelError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if _, err := RunReplicationsParallel(Config{}, 3, workers); err == nil {
			t.Fatalf("workers=%d: invalid config did not error", workers)
		}
	}
}
