package core

import (
	"math"
	"testing"

	"rocc/internal/analytic"
	"rocc/internal/forward"
)

// At light load the simulation must agree with the Section 3 operational
// analysis — the cross-check that validated the model before the "what-if"
// studies (Table 3 spirit, automated).
func TestSimulationMatchesAnalyticLightLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Duration = 50e6
	cfg.Background = false // isolate the IS workload the equations model

	p := analytic.DefaultParams()
	p.Nodes = 4

	for _, spMS := range []float64{20, 40, 64} {
		cfg.SamplingPeriod = spMS * 1000
		p.SamplingPeriod = spMS * 1000
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		want := p.NOW()

		// Daemon CPU utilization: eq (2) vs measured, within 10%.
		got := res.PdCPUUtilPct / 100
		if rel := math.Abs(got-want.PdCPUUtil) / want.PdCPUUtil; rel > 0.10 {
			t.Errorf("SP=%vms: sim Pd util %v vs analytic %v (%.0f%% off)",
				spMS, got, want.PdCPUUtil, rel*100)
		}
		// Main-process utilization: eq (5), within 10%.
		gotMain := res.MainCPUUtilPct / 100
		if rel := math.Abs(gotMain-want.ParadynCPUUtil) / want.ParadynCPUUtil; rel > 0.10 {
			t.Errorf("SP=%vms: sim main util %v vs analytic %v", spMS, gotMain, want.ParadynCPUUtil)
		}
	}
}

// Equation (1) in the flesh: daemon message rate scales as
// appProcs / (samplingPeriod * batchSize).
func TestMessageRateFollowsEquationOne(t *testing.T) {
	base := DefaultConfig()
	base.Nodes = 1
	base.Duration = 40e6
	base.Background = false

	run := func(procs, batch int, spUS float64) float64 {
		cfg := base
		cfg.AppProcs = procs
		cfg.SamplingPeriod = spUS
		if batch > 1 {
			cfg.Policy = forward.BF
			cfg.BatchSize = batch
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		return float64(res.MessagesForwarded) / res.DurationSec
	}

	ref := run(1, 1, 40000) // 25 messages/s
	if math.Abs(ref-25) > 1.5 {
		t.Fatalf("reference rate %v, want ~25/s", ref)
	}
	if got := run(2, 1, 40000); math.Abs(got-2*ref) > 3 {
		t.Errorf("2 procs: %v msgs/s, want ~%v", got, 2*ref)
	}
	if got := run(1, 1, 20000); math.Abs(got-2*ref) > 3 {
		t.Errorf("half period: %v msgs/s, want ~%v", got, 2*ref)
	}
	if got := run(4, 4, 40000); math.Abs(got-ref) > 3 {
		t.Errorf("4 procs / batch 4: %v msgs/s, want ~%v", got, ref)
	}
}

// Sample conservation: in a quiesced CF run every generated sample is
// accounted for — received at main, buffered in a pipe, or in flight.
func TestSampleConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	cfg.AppProcs = 2
	cfg.SamplingPeriod = 7000
	cfg.Duration = 10e6
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Sim.Run(cfg.Duration)
	// Quiesce: let in-flight work finish (no new samples generated after
	// we stop the sampling timers by draining remaining events only up to
	// a grace horizon).
	m.Sim.Run(cfg.Duration + 1e6)

	generated := 0
	for _, a := range m.Apps {
		generated += a.Generated
	}
	buffered := 0
	for _, d := range m.Daemons {
		for _, p := range d.Pipes {
			buffered += p.Len() + p.Blocked()
		}
	}
	received := m.Main.SamplesReceived
	// Grace period generates a few more samples; received+buffered can
	// trail generated only by messages still in flight at the horizon,
	// bounded by nodes (one outstanding message per daemon) plus one
	// sampling tick per process.
	slack := cfg.Nodes*cfg.AppProcs + cfg.Nodes
	if received+buffered < generated-slack || received+buffered > generated {
		t.Fatalf("conservation: generated %d, received %d, buffered %d",
			generated, received, buffered)
	}
}
