package core

import (
	"rocc/internal/forward"
	"rocc/internal/procs"
)

// Result holds the metrics of one simulation run. Utilizations are
// percentages; times are seconds; latencies are seconds per sample.
// These are the quantities plotted in Figures 17-28 and tabulated in
// Tables 4-6 of the paper.
type Result struct {
	DurationSec float64

	// Direct IS overhead (local and global detail, §2.1 Metrics).
	PdCPUTimePerNodeSec float64 // daemon CPU time averaged over nodes
	PdCPUUtilPct        float64 // daemon CPU utilization per node
	MainCPUTimeSec      float64 // main Paradyn process CPU time
	MainCPUUtilPct      float64 // utilization of the CPU hosting main
	ISCPUUtilPct        float64 // daemons + main, per node (SMP metric)

	// Application progress.
	AppCPUTimePerNodeSec float64
	AppCPUUtilPct        float64
	AppIterations        int

	// Background load.
	PvmCPUUtilPct   float64
	OtherCPUUtilPct float64

	// Interconnect.
	NetUtilPct   float64 // all owners
	PdNetUtilPct float64 // instrumentation traffic only

	// Data forwarding performance.
	MonitoringLatencySec    float64 // mean generation-to-receipt per sample
	MonitoringLatencyP95Sec float64 // 95th percentile (P² estimate)
	MonitoringLatencyMaxSec float64 // worst case observed
	// P50/P99 come from the observability layer's latency histogram and
	// are populated only when EnableObservability ran with Metrics.
	MonitoringLatencyP50Sec float64
	MonitoringLatencyP99Sec float64
	ForwardLatencySec       float64 // mean transport delay (newest sample age)
	ThroughputPerSec        float64 // samples received at main per second
	PdThroughputPerSec      float64 // samples forwarded by daemons per second

	// Pipe overflow and blocked-writer accounting.
	PipeDropped        int     // samples discarded at full pipes (all causes)
	PipeDroppedNewest  int     // discarded on arrival (DropNewest, TryPut)
	PipeDroppedOldest  int     // evicted to admit newer data (DropOldest)
	PipeBlockedWaitSec float64 // cumulative time writers spent blocked

	// Fault injection and resilience (populated when Cfg.Faults is
	// active; zero otherwise).
	FaultLossInjected     int     // uplink deliveries destroyed in transit
	FaultDupInjected      int     // duplicate deliveries injected
	FaultDelayInjected    int     // deliveries given an extra transit delay
	FaultAcksLost         int     // acknowledgements destroyed
	MsgLossRatePct        float64 // injected losses per delivery attempt
	MsgDupRatePct         float64 // injected duplicates per forwarded message
	Retransmits           int     // retransmission attempts
	RetransmitGiveUps     int     // messages abandoned after the retry budget
	SamplesLostForwarding int     // samples lost for good on uplinks
	DupMessagesDiscarded  int     // duplicates suppressed at receivers
	RecoveredMessages     int     // messages that needed a retransmission
	RecoveryMeanSec       float64 // mean first-send-to-ack time of recovered
	RecoveryMaxSec        float64
	Crashes               int     // daemon crash events
	CrashDowntimeSec      float64 // total daemon downtime
	CrashLostSamples      int     // samples lost to crashed daemon state
	PipeSqueezes          int     // pipe capacity-squeeze windows opened
	SamplesThinned        int     // samples dropped by degradation thinning
	DegradedResidencySec  float64 // time daemons spent in degraded mode
	DegradeEngagements    int     // entries into degraded mode

	// Adaptive forwarding-strategy telemetry (populated only when the run
	// used forward.AdaptiveBFStrategy; zero — and omitted from JSON — for
	// CF/fixed-BF runs, keeping legacy output byte-identical).
	AdaptiveFinalBatchMean float64 `json:",omitempty"` // mean final batch target across daemons
	AdaptiveFinalBatchMin  int     `json:",omitempty"` // smallest final target
	AdaptiveFinalBatchMax  int     `json:",omitempty"` // largest final target
	AdaptiveAdjustments    int     `json:",omitempty"` // total control decisions taken

	// LatencyStages is the per-stage decomposition of the monitoring
	// latency (internal/obs/prov), populated only when EnableObservability
	// ran with Provenance — omitted from JSON otherwise, keeping plain
	// runs byte-identical.
	LatencyStages []StageLatency `json:",omitempty"`

	SamplesGenerated int
	SamplesReceived  int
	// WarmupCarryover counts samples generated during the warmup period
	// but still buffered or in flight when measurement began; they may be
	// received (and counted in SamplesReceived) during the measured
	// window, so SamplesReceived <= SamplesGenerated + WarmupCarryover.
	WarmupCarryover   int
	MessagesReceived  int
	MessagesForwarded int
	MessagesMerged    int
	BlockedPuts       int
	BarrierReleases   int
}

// StageLatency is one stage of the per-sample latency decomposition:
// where the generation→delivery delay accrued, aggregated over all
// delivered samples. Stages appear in path order (pipe-wait,
// batch-residency, daemon-service, network-transit, merge, main-receipt)
// and their SharePct values sum to 100 (when anything was delivered).
type StageLatency struct {
	Stage    string
	MeanSec  float64
	P50Sec   float64
	P95Sec   float64
	P99Sec   float64
	SharePct float64
}

// collect computes the Result from the model's resource accounting.
func (m *Model) collect() Result {
	cfg := m.Cfg
	durUS := cfg.Duration
	durSec := durUS / 1e6
	res := Result{DurationSec: durSec}

	nodes := float64(cfg.Nodes)
	// Total CPU capacity per "node": for SMP the pool has cfg.Nodes cores
	// in NodeCPUs[0], so summing busy time and dividing by nodes*duration
	// is uniform across architectures.
	var pdBusy, appBusy, pvmBusy, otherBusy float64
	for _, cpu := range m.NodeCPUs {
		pdBusy += cpu.Busy(procs.OwnerPd)
		appBusy += cpu.Busy(procs.OwnerApp)
		pvmBusy += cpu.Busy(procs.OwnerPvm)
		otherBusy += cpu.Busy(procs.OwnerOther)
	}
	mainBusy := m.HostCPU.Busy(procs.OwnerMain)

	res.PdCPUTimePerNodeSec = pdBusy / nodes / 1e6
	res.PdCPUUtilPct = pdBusy / (nodes * durUS) * 100
	res.MainCPUTimeSec = mainBusy / 1e6
	if cfg.Arch == SMP {
		res.MainCPUUtilPct = mainBusy / (nodes * durUS) * 100
		res.ISCPUUtilPct = (pdBusy + mainBusy) / (nodes * durUS) * 100
	} else {
		res.MainCPUUtilPct = mainBusy / durUS * 100
		res.ISCPUUtilPct = res.PdCPUUtilPct + mainBusy/(nodes*durUS)*100
	}
	res.AppCPUTimePerNodeSec = appBusy / nodes / 1e6
	res.AppCPUUtilPct = appBusy / (nodes * durUS) * 100
	res.PvmCPUUtilPct = pvmBusy / (nodes * durUS) * 100
	res.OtherCPUUtilPct = otherBusy / (nodes * durUS) * 100

	res.NetUtilPct = m.Net.BusyTotal() / durUS * 100
	res.PdNetUtilPct = m.Net.Busy(procs.OwnerPd) / durUS * 100

	res.MonitoringLatencySec = m.Main.Latency.Mean() / 1e6
	if m.Main.LatencyP95 != nil {
		res.MonitoringLatencyP95Sec = m.Main.LatencyP95.Value() / 1e6
	}
	res.MonitoringLatencyMaxSec = m.Main.LatencyMax / 1e6
	if m.obsC != nil && m.obsC.Metrics != nil {
		res.MonitoringLatencyP50Sec = m.obsC.Metrics.Latency.Quantile(0.50) / 1e6
		res.MonitoringLatencyP99Sec = m.obsC.Metrics.Latency.Quantile(0.99) / 1e6
	}
	if m.prov != nil {
		for _, s := range m.prov.Stages() {
			res.LatencyStages = append(res.LatencyStages, StageLatency{
				Stage:    s.Stage,
				MeanSec:  s.MeanUS / 1e6,
				P50Sec:   s.P50US / 1e6,
				P95Sec:   s.P95US / 1e6,
				P99Sec:   s.P99US / 1e6,
				SharePct: s.SharePct,
			})
		}
	}
	res.ForwardLatencySec = m.Main.ForwardLatency.Mean() / 1e6
	res.ThroughputPerSec = float64(m.Main.SamplesReceived) / durSec

	for _, a := range m.Apps {
		res.SamplesGenerated += a.Generated
		res.BlockedPuts += a.BlockedPuts
		res.AppIterations += a.Iterations
	}
	var pdSamples int
	for _, d := range m.Daemons {
		pdSamples += d.SamplesCollected // distinct samples, excluding relays
		res.MessagesForwarded += d.MessagesForwarded
		res.MessagesMerged += d.MessagesMerged
		res.SamplesThinned += d.SamplesThinned
		res.CrashLostSamples += d.CrashLostSamples
		for _, p := range d.Pipes {
			res.PipeDropped += p.Dropped()
			res.PipeDroppedNewest += p.DroppedNewest()
			res.PipeDroppedOldest += p.DroppedOldest()
			res.PipeBlockedWaitSec += p.BlockedWaitTotal() / 1e6
		}
	}
	res.PdThroughputPerSec = float64(pdSamples) / durSec

	var adaptiveDaemons int
	for _, d := range m.Daemons {
		ab, ok := d.Strategy.(*forward.AdaptiveBFStrategy)
		if !ok {
			continue
		}
		t := ab.Target()
		if adaptiveDaemons == 0 {
			res.AdaptiveFinalBatchMin, res.AdaptiveFinalBatchMax = t, t
		} else {
			if t < res.AdaptiveFinalBatchMin {
				res.AdaptiveFinalBatchMin = t
			}
			if t > res.AdaptiveFinalBatchMax {
				res.AdaptiveFinalBatchMax = t
			}
		}
		res.AdaptiveFinalBatchMean += float64(t)
		res.AdaptiveAdjustments += len(ab.Adjustments())
		adaptiveDaemons++
	}
	if adaptiveDaemons > 0 {
		res.AdaptiveFinalBatchMean /= float64(adaptiveDaemons)
	}

	if m.Inj != nil {
		t := m.Inj.Totals()
		res.FaultLossInjected = t.LossInjected
		res.FaultDupInjected = t.DupInjected
		res.FaultDelayInjected = t.DelayInjected
		res.FaultAcksLost = t.AcksLost
		res.Retransmits = t.Retransmits
		res.RetransmitGiveUps = t.GiveUps
		res.SamplesLostForwarding = t.SamplesLostForwarding
		res.DupMessagesDiscarded = t.DupMessagesDiscarded
		res.RecoveredMessages = t.Recovered
		res.RecoveryMeanSec = t.RecoveryMeanUS / 1e6
		res.RecoveryMaxSec = t.RecoveryMaxUS / 1e6
		res.Crashes = t.Crashes
		res.CrashDowntimeSec = t.DowntimeUS / 1e6
		res.PipeSqueezes = t.Squeezes
		res.DegradedResidencySec = t.DegradedResidencyUS / 1e6
		res.DegradeEngagements = t.DegradeEngagements
		if attempts := res.MessagesForwarded + t.Retransmits; attempts > 0 {
			res.MsgLossRatePct = float64(t.LossInjected) / float64(attempts) * 100
		}
		if res.MessagesForwarded > 0 {
			res.MsgDupRatePct = float64(t.DupInjected) / float64(res.MessagesForwarded) * 100
		}
	}

	res.SamplesReceived = m.Main.SamplesReceived
	res.WarmupCarryover = m.warmupCarryover
	res.MessagesReceived = m.Main.MessagesReceived
	if m.Barrier != nil {
		res.BarrierReleases = m.Barrier.Releases
	}
	return res
}
