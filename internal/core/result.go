package core

import (
	"rocc/internal/procs"
)

// Result holds the metrics of one simulation run. Utilizations are
// percentages; times are seconds; latencies are seconds per sample.
// These are the quantities plotted in Figures 17-28 and tabulated in
// Tables 4-6 of the paper.
type Result struct {
	DurationSec float64

	// Direct IS overhead (local and global detail, §2.1 Metrics).
	PdCPUTimePerNodeSec float64 // daemon CPU time averaged over nodes
	PdCPUUtilPct        float64 // daemon CPU utilization per node
	MainCPUTimeSec      float64 // main Paradyn process CPU time
	MainCPUUtilPct      float64 // utilization of the CPU hosting main
	ISCPUUtilPct        float64 // daemons + main, per node (SMP metric)

	// Application progress.
	AppCPUTimePerNodeSec float64
	AppCPUUtilPct        float64
	AppIterations        int

	// Background load.
	PvmCPUUtilPct   float64
	OtherCPUUtilPct float64

	// Interconnect.
	NetUtilPct   float64 // all owners
	PdNetUtilPct float64 // instrumentation traffic only

	// Data forwarding performance.
	MonitoringLatencySec    float64 // mean generation-to-receipt per sample
	MonitoringLatencyP95Sec float64 // 95th percentile (P² estimate)
	MonitoringLatencyMaxSec float64 // worst case observed
	ForwardLatencySec       float64 // mean transport delay (newest sample age)
	ThroughputPerSec        float64 // samples received at main per second
	PdThroughputPerSec      float64 // samples forwarded by daemons per second

	SamplesGenerated int
	SamplesReceived  int
	// WarmupCarryover counts samples generated during the warmup period
	// but still buffered or in flight when measurement began; they may be
	// received (and counted in SamplesReceived) during the measured
	// window, so SamplesReceived <= SamplesGenerated + WarmupCarryover.
	WarmupCarryover   int
	MessagesReceived  int
	MessagesForwarded int
	MessagesMerged    int
	BlockedPuts       int
	BarrierReleases   int
}

// collect computes the Result from the model's resource accounting.
func (m *Model) collect() Result {
	cfg := m.Cfg
	durUS := cfg.Duration
	durSec := durUS / 1e6
	res := Result{DurationSec: durSec}

	nodes := float64(cfg.Nodes)
	// Total CPU capacity per "node": for SMP the pool has cfg.Nodes cores
	// in NodeCPUs[0], so summing busy time and dividing by nodes*duration
	// is uniform across architectures.
	var pdBusy, appBusy, pvmBusy, otherBusy float64
	for _, cpu := range m.NodeCPUs {
		pdBusy += cpu.Busy(procs.OwnerPd)
		appBusy += cpu.Busy(procs.OwnerApp)
		pvmBusy += cpu.Busy(procs.OwnerPvm)
		otherBusy += cpu.Busy(procs.OwnerOther)
	}
	mainBusy := m.HostCPU.Busy(procs.OwnerMain)

	res.PdCPUTimePerNodeSec = pdBusy / nodes / 1e6
	res.PdCPUUtilPct = pdBusy / (nodes * durUS) * 100
	res.MainCPUTimeSec = mainBusy / 1e6
	if cfg.Arch == SMP {
		res.MainCPUUtilPct = mainBusy / (nodes * durUS) * 100
		res.ISCPUUtilPct = (pdBusy + mainBusy) / (nodes * durUS) * 100
	} else {
		res.MainCPUUtilPct = mainBusy / durUS * 100
		res.ISCPUUtilPct = res.PdCPUUtilPct + mainBusy/(nodes*durUS)*100
	}
	res.AppCPUTimePerNodeSec = appBusy / nodes / 1e6
	res.AppCPUUtilPct = appBusy / (nodes * durUS) * 100
	res.PvmCPUUtilPct = pvmBusy / (nodes * durUS) * 100
	res.OtherCPUUtilPct = otherBusy / (nodes * durUS) * 100

	res.NetUtilPct = m.Net.BusyTotal() / durUS * 100
	res.PdNetUtilPct = m.Net.Busy(procs.OwnerPd) / durUS * 100

	res.MonitoringLatencySec = m.Main.Latency.Mean() / 1e6
	if m.Main.LatencyP95 != nil {
		res.MonitoringLatencyP95Sec = m.Main.LatencyP95.Value() / 1e6
	}
	res.MonitoringLatencyMaxSec = m.Main.LatencyMax / 1e6
	res.ForwardLatencySec = m.Main.ForwardLatency.Mean() / 1e6
	res.ThroughputPerSec = float64(m.Main.SamplesReceived) / durSec

	for _, a := range m.Apps {
		res.SamplesGenerated += a.Generated
		res.BlockedPuts += a.BlockedPuts
		res.AppIterations += a.Iterations
	}
	var pdSamples int
	for _, d := range m.Daemons {
		pdSamples += d.SamplesCollected // distinct samples, excluding relays
		res.MessagesForwarded += d.MessagesForwarded
		res.MessagesMerged += d.MessagesMerged
	}
	res.PdThroughputPerSec = float64(pdSamples) / durSec

	res.SamplesReceived = m.Main.SamplesReceived
	res.WarmupCarryover = m.warmupCarryover
	res.MessagesReceived = m.Main.MessagesReceived
	if m.Barrier != nil {
		res.BarrierReleases = m.Barrier.Releases
	}
	return res
}
