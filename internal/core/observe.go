package core

import (
	"errors"
	"fmt"

	"rocc/internal/obs"
	"rocc/internal/obs/prov"
	"rocc/internal/resources"
)

// ObsOptions selects which halves of the observability layer to attach.
type ObsOptions struct {
	// Trace records occupancy spans (every CPU and the network, all
	// nodes) and sample-lifecycle events into a TraceSink.
	Trace bool
	// Metrics attaches the counter/histogram registry and the periodic
	// resource samplers.
	Metrics bool
	// Provenance attaches the per-sample latency-decomposition engine
	// (internal/obs/prov): per-stage dwell histograms surfaced as
	// Result.LatencyStages and rocc_latency_stage_* metric families.
	Provenance bool
	// SampleIntervalUS is the sampler period; 0 defaults to 1% of the
	// configured duration (100 points per run).
	SampleIntervalUS float64
}

// EnableObservability wires an obs.Collector through the assembled model:
// occupancy hooks on every CPU and the network, lifecycle observers on
// every pipe, application process, daemon, the main process, and (when a
// fault plan is active) the uplinks, plus — with Metrics — the engine
// observer and periodic utilization/queue/pipe-depth samplers.
//
// Call after New and before Start/Run, at most once. Unlike
// EnableTraceRecording (which mirrors the paper's single-node AIX tracer
// and claims the same OnOccupancy hooks), the trace here covers all
// nodes, so per-class totals match the run's Result accounting; the two
// recorders are mutually exclusive on one model.
//
// The samplers only read resource state; they never run model code or
// draw random numbers, so an observed run produces the same Result as an
// unobserved one.
func (m *Model) EnableObservability(o ObsOptions) (*obs.Collector, error) {
	if m.obsC != nil {
		return nil, errors.New("core: observability already enabled")
	}
	if !o.Trace && !o.Metrics && !o.Provenance {
		return nil, errors.New("core: enable at least one of Trace, Metrics, Provenance")
	}
	c := obs.NewCollector(o.Trace, o.Metrics)
	if o.Provenance {
		m.prov = prov.NewEngine()
		c.Flow = m.prov
	}
	m.obsC = c

	if c.Sink != nil {
		hookCPU := func(unit int, cpu *resources.CPU) {
			cpu.OnOccupancy = func(owner string, start, length float64) {
				c.Occupancy(obs.OccCPU, unit, owner, start, length)
			}
		}
		for i, cpu := range m.NodeCPUs {
			hookCPU(i, cpu)
		}
		if m.dedicatedHost() {
			hookCPU(len(m.NodeCPUs), m.HostCPU)
		}
		m.Net.OnOccupancy = func(owner string, start, length float64) {
			c.Occupancy(obs.OccNet, 0, owner, start, length)
		}
	}

	for _, d := range m.Daemons {
		for _, p := range d.Pipes {
			p.SetObserver(m.obsPipeSeq, c)
			m.obsPipeSeq++
		}
		d.Obs = c
	}
	for _, a := range m.Apps {
		a.Obs = c
	}
	m.Main.Obs = c
	if m.Inj != nil {
		m.Inj.SetObserver(c)
	}

	if c.Metrics != nil {
		m.Sim.Obs = c
		interval := o.SampleIntervalUS
		if interval <= 0 {
			interval = m.Cfg.Duration / 100
		}
		sampler := obs.NewSampler(m.Sim, interval)
		// Preallocate every probe series for the whole run — the tick
		// count follows from the run geometry — and batch latency
		// observations in a buffer sized to one instrumentation period's
		// expected deliveries, so steady-state metric recording appends
		// into flat storage without growth (see the obs allocs tests).
		sampler.SetExpectedTicks(int((m.Cfg.Warmup+m.Cfg.Duration)/interval) + 2)
		apps := m.Cfg.AppProcs
		if m.Cfg.Arch != SMP {
			apps *= m.Cfg.Nodes
		}
		staging := 2 * apps
		if staging < 64 {
			staging = 64
		}
		c.Metrics.Latency.EnableStaging(staging)
		m.addProbes(c, sampler, interval)
		sampler.Start()
	}
	return c, nil
}

// Collector returns the attached collector, nil when observability is
// not enabled.
func (m *Model) Collector() *obs.Collector { return m.obsC }

// Provenance returns the attached latency-decomposition engine, nil when
// ObsOptions.Provenance was not enabled.
func (m *Model) Provenance() *prov.Engine { return m.prov }

// dedicatedHost reports whether HostCPU is a CPU of its own rather than
// an alias of NodeCPUs[0] (or the SMP pool).
func (m *Model) dedicatedHost() bool {
	return m.Cfg.DedicatedHost && m.Cfg.Arch != SMP
}

// addProbes registers the standard resource samplers: windowed busy
// fraction and ready-queue length per CPU, the same for the network, and
// aggregate pipe depth and blocked-writer counts. Utilization probes
// report the busy time accumulated in each sampling window as a percent
// of the window (an SMP pool can exceed 100: it has Nodes cores). The
// first window after warmup reads low because accounting resets
// mid-window; every later window is exact.
func (m *Model) addProbes(c *obs.Collector, sampler *obs.Sampler, interval float64) {
	utilProbe := func(name string, busyTotal func() float64) {
		prev := 0.0
		sampler.Probe(c.Metrics, name, func(t float64) float64 {
			cur := busyTotal()
			d := cur - prev
			prev = cur
			if d < 0 {
				d = 0 // accounting was reset (warmup boundary) this window
			}
			return d / interval * 100
		})
	}
	queueProbe := func(name string, read func() int) {
		sampler.Probe(c.Metrics, name, func(t float64) float64 { return float64(read()) })
	}
	for i, cpu := range m.NodeCPUs {
		cpu := cpu
		utilProbe(fmt.Sprintf("cpu%d.util_pct", i), cpu.BusyTotal)
		queueProbe(fmt.Sprintf("cpu%d.ready", i), func() int { return cpu.QueueLen() + cpu.Running() })
	}
	if m.dedicatedHost() {
		utilProbe("host.util_pct", m.HostCPU.BusyTotal)
		queueProbe("host.ready", func() int { return m.HostCPU.QueueLen() + m.HostCPU.Running() })
	}
	utilProbe("net.util_pct", m.Net.BusyTotal)
	queueProbe("net.queue", m.Net.QueueLen)
	queueProbe("pipes.depth", func() int {
		n := 0
		for _, d := range m.Daemons {
			for _, p := range d.Pipes {
				n += p.Len()
			}
		}
		return n
	})
	queueProbe("pipes.blocked_writers", func() int {
		n := 0
		for _, d := range m.Daemons {
			for _, p := range d.Pipes {
				n += p.Blocked()
			}
		}
		return n
	})
}
