package core

import (
	"reflect"
	"testing"

	"rocc/internal/des"
	"rocc/internal/forward"
)

// shimShapes are the scenario shapes of the deprecation-shim contract:
// the operating points of the table4/fig16 factorial family, the fig19
// batch sweep, and the MPP tree configurations.
func shimShapes() []Config {
	base := DefaultConfig()
	base.Duration = 0.5e6

	now8cf := base
	now8cf.Policy = forward.CF

	now8bf16 := base
	now8bf16.Policy = forward.BF
	now8bf16.BatchSize = 16
	now8bf16.SamplingPeriod = 8000

	now4bf2 := base
	now4bf2.Nodes = 4
	now4bf2.Policy = forward.BF
	now4bf2.BatchSize = 2
	now4bf2.Warmup = 0.1e6

	now1bf128 := base
	now1bf128.Nodes = 1
	now1bf128.AppProcs = 8
	now1bf128.Policy = forward.BF
	now1bf128.BatchSize = 128
	now1bf128.SamplingPeriod = 1000

	smp16 := base
	smp16.Arch = SMP
	smp16.Nodes = 16
	smp16.AppProcs = 16
	smp16.Pds = 2
	smp16.Policy = forward.BF
	smp16.BatchSize = 32
	smp16.SamplingPeriod = 8000

	mpp8tree := base
	mpp8tree.Arch = MPP
	mpp8tree.Policy = forward.BF
	mpp8tree.BatchSize = 8
	mpp8tree.Forwarding = forward.Tree
	mpp8tree.SamplingPeriod = 20000

	return []Config{now8cf, now8bf16, now4bf2, now1bf128, smp16, mpp8tree}
}

// The deprecation shim: a legacy Config{Policy, BatchSize} and the same
// Config with the mapped Strategy installed explicitly must produce
// byte-identical Results on every scenario shape.
func TestLegacyPolicyEqualsExplicitStrategy(t *testing.T) {
	for _, cfg := range shimShapes() {
		legacy, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		explicit := cfg
		explicit.Strategy = forward.FromPolicy(cfg.Policy, cfg.BatchSize)
		mapped, err := New(explicit)
		if err != nil {
			t.Fatal(err)
		}
		a, b := legacy.Run(), mapped.Run()
		// The Cfg snapshots differ (one carries the Strategy field); the
		// metrics must not.
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s %s batch %d: legacy and explicit-strategy results differ\nlegacy:   %+v\nstrategy: %+v",
				cfg.Arch, cfg.Policy, cfg.BatchSize, a, b)
		}
	}
}

// Validate keeps the legacy Policy/BatchSize fields coherent with an
// installed Strategy, so downstream consumers (scenario serialization,
// result labeling) see the truth through either surface.
func TestValidateSyncsLegacyFieldsFromStrategy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 1e5
	cfg.Strategy = forward.NewFixedBF(9)
	v, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.Policy != forward.BF || v.BatchSize != 9 {
		t.Fatalf("bf:9 strategy synced to %v/%d", v.Policy, v.BatchSize)
	}
	cfg.Strategy = forward.NewCF()
	if v, err = cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.Policy != forward.CF || v.BatchSize != 1 {
		t.Fatalf("cf strategy synced to %v/%d", v.Policy, v.BatchSize)
	}
	cfg.Strategy = forward.NewAdaptiveBF(forward.ControllerConfig{})
	if v, err = cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if v.Policy != forward.BF {
		t.Fatalf("abf strategy synced to %v", v.Policy)
	}
}

// An invalid adaptive controller configuration surfaces from Validate,
// before any run starts.
func TestValidateRejectsInvalidController(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 1e5
	cfg.Strategy = forward.NewAdaptiveBF(forward.ControllerConfig{MinBatch: 9, MaxBatch: 3})
	if _, err := cfg.Validate(); err == nil {
		t.Fatal("invalid controller config passed Validate")
	}
}

// adaptiveOverloadConfig is a node-saturating operating point: dense
// sampling from several processes per node forces the controller off its
// seed target.
func adaptiveOverloadConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.AppProcs = 16 // per node: each daemon serves 16 heavily CPU-bound procs
	cfg.SamplingPeriod = 1000
	cfg.Duration = 2e6
	cfg.Strategy = forward.NewAdaptiveBF(forward.ControllerConfig{})
	return cfg
}

// The adaptive controller is a deterministic function of the simulated
// clock: identical Results — including the controller telemetry — under
// every calendar-queue implementation and at any replication worker
// count.
func TestAdaptiveDeterministicAcrossCalendarsAndWorkers(t *testing.T) {
	base := adaptiveOverloadConfig()

	var ref Result
	for i, kind := range []des.CalendarKind{des.CalendarHeap, des.CalendarBucket, des.CalendarList} {
		cfg := base
		cfg.Calendar = kind
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run()
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("calendar %v diverged from %v:\n%+v\n%+v",
				kind, des.CalendarHeap, ref, res)
		}
	}

	serial, err := RunReplicationsParallel(base, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunReplicationsParallel(base, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Results, pooled.Results) {
		t.Fatal("adaptive replications differ between worker counts")
	}
}

// Under sustained overload the controller surges off its seed (17 on the
// Table 2 costs) and reports its telemetry through the Result.
func TestAdaptiveSurgesUnderOverload(t *testing.T) {
	m, err := New(adaptiveOverloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.AdaptiveFinalBatchMean <= 17 {
		t.Fatalf("overload did not raise the batch target: final mean %v",
			res.AdaptiveFinalBatchMean)
	}
	if res.AdaptiveAdjustments == 0 {
		t.Fatal("overload recorded no control decisions")
	}
	if res.AdaptiveFinalBatchMax > 128 {
		t.Fatalf("target exceeded MaxBatch: %d", res.AdaptiveFinalBatchMax)
	}
	// A calm scenario, by contrast, rests at the seed with no adjustments.
	calm := DefaultConfig()
	calm.Duration = 2e6
	calm.Strategy = forward.NewAdaptiveBF(forward.ControllerConfig{})
	mc, err := New(calm)
	if err != nil {
		t.Fatal(err)
	}
	rc := mc.Run()
	if rc.AdaptiveFinalBatchMean != 17 || rc.AdaptiveAdjustments != 0 {
		t.Fatalf("calm run moved off the seed: mean %v, %d adjustments",
			rc.AdaptiveFinalBatchMean, rc.AdaptiveAdjustments)
	}
}

// adaptiveTargets snapshots every daemon controller's current batch
// target and total adjustment count.
func adaptiveTargets(t *testing.T, m *Model) (targets []int, adjustments int) {
	t.Helper()
	for _, d := range m.Daemons {
		s, ok := d.Strategy.(*forward.AdaptiveBFStrategy)
		if !ok {
			t.Fatalf("daemon strategy is %T, want *forward.AdaptiveBFStrategy", d.Strategy)
		}
		targets = append(targets, s.Target())
		adjustments += len(s.Adjustments())
	}
	return targets, adjustments
}

// Convergence under a bursty sampling-period schedule: calm traffic rests
// at the seed, a dense burst surges the target up, and the return to the
// calm period decays it back to the seed — where it stays, with no
// further control activity (no oscillation). The schedule is applied by
// mutating the application processes' sampling period between simulation
// segments, which they re-read at every tick.
func TestAdaptiveConvergesUnderBurstySchedule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.AppProcs = 16 // per node: each daemon serves 16 pipes
	cfg.SamplingPeriod = 40000
	cfg.Strategy = forward.NewAdaptiveBF(forward.ControllerConfig{})
	cfg.Duration = 1 // segments are driven manually below
	cfg, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()

	setSP := func(us float64) {
		for _, a := range m.Apps {
			a.SamplingPeriod = us
		}
	}

	// Calm phase: the controller must rest at the cost-model seed.
	m.Sim.Run(2e6)
	targets, adj := adaptiveTargets(t, m)
	for _, tgt := range targets {
		if tgt != 17 {
			t.Fatalf("calm phase target %d, want seed 17 (targets %v)", tgt, targets)
		}
	}
	if adj != 0 {
		t.Fatalf("calm phase recorded %d adjustments", adj)
	}

	// Burst: dense sampling from every process saturates the node CPUs.
	setSP(1000)
	m.Sim.Run(10e6)
	targets, _ = adaptiveTargets(t, m)
	surged := 0
	for _, tgt := range targets {
		if tgt > 17 {
			surged++
		}
	}
	if surged == 0 {
		t.Fatalf("burst did not raise any target: %v", targets)
	}

	// Back to the calm period: targets decay to the seed. The segment is
	// long because decay is deliberately slow — it is counted in forwarded
	// messages (3 halvings x CalmWindows x Window = 192 messages at ~9
	// messages/s per daemon), after the burst backlog drains and the
	// latency EWMA settles back to the floor.
	setSP(40000)
	m.Sim.Run(115e6)
	targets, adjAfterDecay := adaptiveTargets(t, m)
	for _, tgt := range targets {
		if tgt != 17 {
			t.Fatalf("post-burst target %d did not return to seed (targets %v)", tgt, targets)
		}
	}
	// ...and hold there: continued calm traffic produces no further
	// control decisions.
	m.Sim.Run(155e6)
	targets, adjFinal := adaptiveTargets(t, m)
	if adjFinal != adjAfterDecay {
		t.Fatalf("steady state oscillated: %d new adjustments", adjFinal-adjAfterDecay)
	}
	for _, tgt := range targets {
		if tgt != 17 {
			t.Fatalf("steady-state target %d, want 17", tgt)
		}
	}
}

// Legacy (nil-Strategy) runs must not report adaptive telemetry, keeping
// their JSON output byte-identical to the pre-redesign encoder.
func TestLegacyRunsOmitAdaptiveTelemetry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 0.5e6
	cfg.Policy = forward.BF
	cfg.BatchSize = 16
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.AdaptiveFinalBatchMean != 0 || res.AdaptiveFinalBatchMin != 0 ||
		res.AdaptiveFinalBatchMax != 0 || res.AdaptiveAdjustments != 0 {
		t.Fatalf("legacy run reports adaptive telemetry: %+v", res)
	}
}
