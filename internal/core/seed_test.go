package core

import "testing"

// The old ad-hoc derivations (base*1_000_003+i, base+i*7919) produced
// overlapping seed sets for adjacent base seeds. DeriveSeed must not: all
// seeds derived for nearby bases, across every stream and 10k indices,
// are pairwise distinct.
func TestDeriveSeedDisjointAcrossAdjacentBases(t *testing.T) {
	const indices = 10_000
	streams := []uint64{SeedStreamReplication, SeedStreamFactorial, SeedStreamFault}
	bases := []uint64{1, 2, 3}
	seen := make(map[uint64][3]uint64, len(bases)*len(streams)*indices)
	for _, base := range bases {
		for _, stream := range streams {
			for i := uint64(0); i < indices; i++ {
				s := DeriveSeed(base, stream, i)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (base=%d,stream=%d,i=%d) and (base=%d,stream=%d,i=%d) both derive %#x",
						base, stream, i, prev[0], prev[1], prev[2], s)
				}
				seen[s] = [3]uint64{base, stream, i}
			}
		}
	}
}

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(42, SeedStreamReplication, 7)
	b := DeriveSeed(42, SeedStreamReplication, 7)
	if a != b {
		t.Fatalf("DeriveSeed not deterministic: %#x vs %#x", a, b)
	}
	if DeriveSeed(42, SeedStreamReplication, 8) == a {
		t.Fatal("adjacent indices derived the same seed")
	}
	if DeriveSeed(42, SeedStreamFactorial, 7) == a {
		t.Fatal("distinct streams derived the same seed")
	}
	if DeriveSeed(43, SeedStreamReplication, 7) == a {
		t.Fatal("adjacent bases derived the same seed")
	}
}

// The zero base (normalized away elsewhere, but legal here) must still
// derive usable, distinct seeds.
func TestDeriveSeedZeroBase(t *testing.T) {
	a := DeriveSeed(0, SeedStreamReplication, 0)
	b := DeriveSeed(0, SeedStreamReplication, 1)
	if a == b {
		t.Fatal("zero base: indices 0 and 1 collide")
	}
}
