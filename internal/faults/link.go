package faults

import (
	"math"

	"rocc/internal/des"
	"rocc/internal/forward"
	"rocc/internal/procs"
	"rocc/internal/resources"
	"rocc/internal/rng"
)

// Link is one daemon uplink (to a parent daemon or to the main process)
// with fault injection and, optionally, ack/timeout/retransmission. It
// sits between a daemon's network-transmission completion and the
// destination's receive: the model routes each transmitted message
// through Send instead of delivering it directly.
//
// With Resilience.Retransmit enabled, each message gets a link-local id;
// the receiver acknowledges delivery (acks travel back after AckDelay and
// may themselves be lost), and an unacknowledged message is retransmitted
// after an exponentially backed-off timeout, up to RetryBudget times.
// Retransmissions re-occupy the network (the sender pays the transit cost
// again) and the receiver discards duplicates by id, so at-most-once
// delivery is preserved end to end.
type Link struct {
	sim  *des.Simulator
	plan *Plan
	node int // sending node, for accounting and cost streams

	net  *resources.Network
	cost forward.CostModel

	r     *rng.Stream // fault decisions (loss/dup/delay/ack-loss)
	costR *rng.Stream // retransmission network-cost draws

	// dst delivers a message to the receiver; it reports false when the
	// receiver refused it (crashed daemon), which suppresses the ack so
	// the retransmission timer covers the outage.
	dst func(msg *forward.Message) bool

	// obs, when non-nil, is notified of each retransmission attempt.
	obs procs.Observer

	nextID    uint64
	pending   map[uint64]*pendingMsg
	delivered map[uint64]bool

	// Accounting.
	LossInjected  int // deliveries destroyed in transit
	DupInjected   int // extra deliveries injected
	DelayInjected int // deliveries given an extra transit delay
	AcksLost      int // acknowledgements destroyed
	Retransmits   int // retransmission attempts made
	GiveUps       int // messages abandoned after the retry budget
	SamplesLost   int // samples in messages lost for good on this link
	DupDiscarded  int // duplicate deliveries suppressed at the receiver

	recovered    int     // messages that needed >= 1 retransmission to arrive
	recoveredSum float64 // total first-send-to-ack time of recovered messages
	recoveredMax float64
}

type pendingMsg struct {
	msg       *forward.Message
	firstSent des.Time
	attempts  int // retransmissions so far (0 = only the original send)
	timer     *des.Event
}

// NewLink creates an uplink for the daemon on node. idx disambiguates
// multiple links per node (unused today; every node has one uplink). dst
// delivers to the receiver and reports acceptance.
func (inj *Injector) NewLink(node, idx int, net *resources.Network, cost forward.CostModel, dst func(*forward.Message) bool) *Link {
	l := &Link{
		sim:   inj.Sim,
		plan:  &inj.Plan,
		node:  node,
		net:   net,
		cost:  cost,
		r:     inj.root.Derive(streamID(streamLink, node, idx)),
		costR: inj.root.Derive(streamID(streamLinkCost, node, idx)),
		dst:   dst,
	}
	if inj.Plan.Resilience.Retransmit {
		l.pending = make(map[uint64]*pendingMsg)
		l.delivered = make(map[uint64]bool)
	}
	inj.Links = append(inj.Links, l)
	return l
}

// Pending returns the number of unacknowledged messages (the retry
// queue); the degradation controller watches this as a pressure signal.
func (l *Link) Pending() int { return len(l.pending) }

// ResetAccounting clears the link's counters without disturbing pending
// retransmissions.
func (l *Link) ResetAccounting() {
	l.LossInjected, l.DupInjected, l.DelayInjected, l.AcksLost = 0, 0, 0, 0
	l.Retransmits, l.GiveUps, l.SamplesLost, l.DupDiscarded = 0, 0, 0, 0
	l.recovered, l.recoveredSum, l.recoveredMax = 0, 0, 0
}

// Send routes one transmitted message through the link's fault filter
// toward the receiver. Called when the sender's network occupancy for the
// original transmission completes.
func (l *Link) Send(msg *forward.Message) {
	id := l.nextID
	l.nextID++
	if l.pending != nil {
		l.pending[id] = &pendingMsg{msg: msg, firstSent: l.sim.Now()}
	}
	l.attempt(id, msg, 0)
}

// attempt is one delivery try: the fault filter may destroy, duplicate,
// or delay it. With retransmission enabled, an RTO timer backs the try.
func (l *Link) attempt(id uint64, msg *forward.Message, attempt int) {
	lost := l.plan.Loss > 0 && l.r.Bernoulli(l.plan.Loss)
	if lost {
		l.LossInjected++
		if l.pending == nil {
			l.SamplesLost += len(msg.Samples) // unprotected: gone for good
			if l.obs != nil {
				for _, s := range msg.Samples {
					l.obs.SampleLost(l.node, l.sim.Now(), s, procs.LossLink)
				}
			}
		}
	} else {
		delay := des.Time(0)
		if l.plan.DelayProb > 0 && l.r.Bernoulli(l.plan.DelayProb) {
			l.DelayInjected++
			delay = l.plan.Delay.Sample(l.r)
		}
		l.deliverAfter(delay, id, msg)
		if l.plan.Dup > 0 && l.r.Bernoulli(l.plan.Dup) {
			l.DupInjected++
			l.deliverAfter(delay, id, cloneMsg(msg))
		}
	}
	if l.pending != nil {
		if p, ok := l.pending[id]; ok {
			rto := l.plan.Resilience.RTO * math.Pow(l.plan.Resilience.Backoff, float64(attempt))
			p.timer = l.sim.Schedule(rto, func() { l.timeout(id) })
		}
	}
}

func (l *Link) deliverAfter(delay des.Time, id uint64, msg *forward.Message) {
	if delay > 0 {
		l.sim.Schedule(delay, func() { l.arrive(id, msg) })
		return
	}
	l.arrive(id, msg)
}

// arrive is a delivery reaching the receiver's side of the link.
func (l *Link) arrive(id uint64, msg *forward.Message) {
	if l.delivered != nil && l.delivered[id] {
		// Duplicate (injected, or a retransmission racing its original):
		// discard, but re-ack in case the earlier ack was lost.
		l.DupDiscarded++
		l.sendAck(id)
		return
	}
	if !l.dst(msg) {
		// Receiver down: with retransmission the timer covers the outage;
		// unprotected, the message is gone for good. The existing
		// SamplesLost counter deliberately stays untouched on the
		// unprotected path (it predates this hook), but provenance needs
		// the closure.
		if l.pending == nil && l.obs != nil {
			for _, s := range msg.Samples {
				l.obs.SampleLost(l.node, l.sim.Now(), s, procs.LossCrash)
			}
		}
		return
	}
	if l.delivered != nil {
		l.delivered[id] = true
		l.sendAck(id)
	}
}

func (l *Link) sendAck(id uint64) {
	if l.pending == nil {
		return
	}
	if l.plan.AckLoss > 0 && l.r.Bernoulli(l.plan.AckLoss) {
		l.AcksLost++
		return
	}
	l.sim.Schedule(l.plan.Resilience.AckDelay, func() { l.ack(id) })
}

func (l *Link) ack(id uint64) {
	p, ok := l.pending[id]
	if !ok {
		return
	}
	delete(l.pending, id)
	if p.timer != nil {
		p.timer.Cancel()
	}
	if p.attempts > 0 {
		l.recovered++
		rt := l.sim.Now() - p.firstSent
		l.recoveredSum += rt
		if rt > l.recoveredMax {
			l.recoveredMax = rt
		}
	}
}

// timeout fires when a delivery attempt went unacknowledged.
func (l *Link) timeout(id uint64) {
	p, ok := l.pending[id]
	if !ok {
		return
	}
	p.timer = nil
	if p.attempts >= l.plan.Resilience.RetryBudget {
		delete(l.pending, id)
		l.GiveUps++
		l.SamplesLost += len(p.msg.Samples)
		if l.obs != nil {
			for _, s := range p.msg.Samples {
				l.obs.SampleLost(l.node, l.sim.Now(), s, procs.LossGiveUp)
			}
		}
		return
	}
	p.attempts++
	l.Retransmits++
	attempt := p.attempts
	if l.obs != nil {
		l.obs.MessageRetransmitted(l.node, l.sim.Now(), attempt)
	}
	// The retransmission re-occupies the network for a fresh transit cost.
	l.net.Submit(procs.OwnerPd, l.cost.MsgNet(l.costR, len(p.msg.Samples)), func() {
		if _, still := l.pending[id]; still {
			l.attempt(id, p.msg, attempt)
		}
	})
}

// cloneMsg deep-copies a message so an injected duplicate cannot alias
// the original's Samples slice or Hops counter (tree relays mutate Hops).
func cloneMsg(m *forward.Message) *forward.Message {
	c := *m
	c.Samples = append([]resources.Sample(nil), m.Samples...)
	return &c
}
