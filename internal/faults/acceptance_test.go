package faults_test

import (
	"reflect"
	"testing"

	"rocc/internal/core"
	"rocc/internal/faults"
	"rocc/internal/resources"
	"rocc/internal/rng"
)

// shortCfg is the typical NOW configuration scaled down for test runs.
func shortCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Duration = 5e6
	cfg.Background = false
	return cfg
}

func run(t *testing.T, cfg core.Config) core.Result {
	t.Helper()
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

// TestInactivePlanMatchesBaseline is the byte-identity contract: building
// a model with a nil fault plan and with a zero (inactive) plan must
// produce bit-identical results — the fault layer adds no events and
// draws no random numbers unless it is active.
func TestInactivePlanMatchesBaseline(t *testing.T) {
	base := run(t, shortCfg())

	cfg := shortCfg()
	cfg.Faults = &faults.Plan{Seed: 99} // seeded but inactive
	withPlan := run(t, cfg)

	if !reflect.DeepEqual(base, withPlan) {
		t.Fatalf("inactive plan perturbed the baseline:\nbase=%+v\nplan=%+v", base, withPlan)
	}
	if base.SamplesReceived == 0 {
		t.Fatal("baseline run received no samples; scenario is vacuous")
	}
}

// TestSeededFaultReplayIsIdentical re-runs an all-faults-on scenario with
// the same pair of seeds and demands bit-identical results.
func TestSeededFaultReplayIsIdentical(t *testing.T) {
	cfg := shortCfg()
	cfg.Faults = &faults.Plan{
		Seed: 7, Loss: 0.05, Dup: 0.02, DelayProb: 0.1, AckLoss: 0.05,
		CrashMTBF: 2e6, SqueezeMTBF: 2e6,
		Resilience: faults.Resilience{Retransmit: true, Degrade: true},
	}
	a := run(t, cfg)
	b := run(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seeds diverged:\na=%+v\nb=%+v", a, b)
	}
	if a.FaultLossInjected == 0 || a.Crashes == 0 || a.PipeSqueezes == 0 {
		t.Fatalf("fault scenario too quiet to be meaningful: %+v", a)
	}
}

// TestFaultSeedIndependentOfModelSeed checks the stream separation:
// changing only the fault seed leaves the generated workload identical
// (same samples generated), while the fault pattern changes.
func TestFaultSeedIndependentOfModelSeed(t *testing.T) {
	mk := func(faultSeed uint64) core.Result {
		cfg := shortCfg()
		cfg.Faults = &faults.Plan{Seed: faultSeed, Loss: 0.05}
		return run(t, cfg)
	}
	a, b := mk(1), mk(2)
	if a.SamplesGenerated != b.SamplesGenerated {
		t.Fatalf("fault seed change perturbed the workload: %d vs %d generated",
			a.SamplesGenerated, b.SamplesGenerated)
	}
	if a.FaultLossInjected == b.FaultLossInjected {
		t.Logf("note: different fault seeds produced equal loss counts (%d); legal but unusual",
			a.FaultLossInjected)
	}
}

// TestRetransmitRecoversUnderLoss is the survivability acceptance
// criterion: under 5% message loss, the ack/retransmission policy
// delivers at least 99% of generated samples to the main process, where
// the unprotected system loses roughly the injected fraction.
func TestRetransmitRecoversUnderLoss(t *testing.T) {
	mk := func(retransmit bool) core.Result {
		cfg := shortCfg()
		cfg.Duration = 20e6
		cfg.SamplingPeriod = 20000
		cfg.Faults = &faults.Plan{
			Seed: 3, Loss: 0.05,
			Resilience: faults.Resilience{Retransmit: retransmit},
		}
		return run(t, cfg)
	}

	unprotected := mk(false)
	if unprotected.SamplesLostForwarding == 0 {
		t.Fatal("no losses at 5%; scenario is vacuous")
	}
	lossyRatio := float64(unprotected.SamplesReceived) / float64(unprotected.SamplesGenerated)
	if lossyRatio > 0.99 {
		t.Fatalf("unprotected run delivered %.4f; loss too mild to test recovery", lossyRatio)
	}

	protected := mk(true)
	ratio := float64(protected.SamplesReceived) / float64(protected.SamplesGenerated)
	if ratio < 0.99 {
		t.Fatalf("retransmission delivered only %.4f of samples, want >= 0.99 "+
			"(retransmits=%d giveups=%d)", ratio, protected.Retransmits, protected.RetransmitGiveUps)
	}
	if protected.Retransmits == 0 || protected.RecoveredMessages == 0 {
		t.Fatalf("recovery did not engage: %+v", protected)
	}
	if ratio <= lossyRatio {
		t.Fatalf("retransmission (%.4f) did not improve on unprotected (%.4f)", ratio, lossyRatio)
	}
}

// TestDegradationReducesBlocking is the graceful-degradation acceptance
// criterion: in an overloaded configuration where the daemon cannot keep
// up and full pipes block the application (§4.3.3), adaptive sample
// thinning keeps application blocking time below the unprotected Block
// baseline, at the price of thinned samples.
func TestDegradationReducesBlocking(t *testing.T) {
	mk := func(degrade bool) core.Result {
		cfg := shortCfg()
		cfg.Duration = 5e6
		cfg.Nodes = 2
		cfg.SamplingPeriod = 100 // sampling faster than the daemon can forward
		cfg.PipeCapacity = 4
		// A communication-heavy application keeps the node CPU free, so
		// blocking comes from pipe overflow against the daemon's service
		// rate rather than from CPU contention.
		cfg.Workload = core.Workload{
			AppCPU:  rng.Constant{Value: 50},
			AppNet:  rng.Exponential{MeanVal: 3000},
			MainCPU: rng.Constant{Value: 100},
		}
		if degrade {
			cfg.Faults = &faults.Plan{
				Seed: 5,
				Resilience: faults.Resilience{
					Degrade: true, DegradePeriod: 10000,
				},
			}
		}
		return run(t, cfg)
	}

	base := mk(false)
	if base.PipeBlockedWaitSec == 0 || base.BlockedPuts == 0 {
		t.Fatalf("baseline not overloaded (blockedWait=%v, blockedPuts=%d); scenario is vacuous",
			base.PipeBlockedWaitSec, base.BlockedPuts)
	}

	deg := mk(true)
	if deg.SamplesThinned == 0 || deg.DegradedResidencySec == 0 || deg.DegradeEngagements == 0 {
		t.Fatalf("degradation did not engage: %+v", deg)
	}
	if deg.PipeBlockedWaitSec >= base.PipeBlockedWaitSec {
		t.Fatalf("degraded blocking %.3fs not below unprotected baseline %.3fs",
			deg.PipeBlockedWaitSec, base.PipeBlockedWaitSec)
	}
}

// TestDropPoliciesAccountLosses checks the configurable overflow
// policies end to end: under overload, DropNewest and DropOldest keep
// the application from blocking and account every discarded sample.
func TestDropPoliciesAccountLosses(t *testing.T) {
	mk := func(p resources.OverflowPolicy) core.Result {
		cfg := shortCfg()
		cfg.Duration = 2e6
		cfg.Nodes = 2
		cfg.SamplingPeriod = 200
		cfg.PipeCapacity = 4
		cfg.Overflow = p
		return run(t, cfg)
	}

	newest := mk(resources.DropNewest)
	if newest.PipeDroppedNewest == 0 || newest.PipeDropped != newest.PipeDroppedNewest {
		t.Fatalf("DropNewest accounting: %+v", newest)
	}
	oldest := mk(resources.DropOldest)
	if oldest.PipeDroppedOldest == 0 || oldest.PipeDropped != oldest.PipeDroppedOldest {
		t.Fatalf("DropOldest accounting: %+v", oldest)
	}
	for _, r := range []core.Result{newest, oldest} {
		if r.BlockedPuts != 0 || r.PipeBlockedWaitSec != 0 {
			t.Fatalf("drop policy still blocked the application: %+v", r)
		}
	}
}
