package faults

import (
	"rocc/internal/procs"
)

// Degrader is the graceful-degradation control loop for one daemon. Every
// DegradePeriod it samples two pressure signals — occupancy of the
// daemon's pipes (buffered plus blocked writers against capacity) and the
// depth of the uplink retry queue — and while either is above its
// watermark it doubles the daemon's sample thinning factor (dropping
// resolution to preserve liveness, up to MaxThinning) and halves the BF
// batch size (smaller batches drain pipes sooner). When pressure clears
// it backs both off toward their configured values, one step per period.
type Degrader struct {
	inj  *Injector
	d    *procs.PdDaemon
	link *Link // may be nil (no uplink pressure signal)

	baseBatch int
	clear     int // consecutive unpressured ticks (decay hysteresis)

	// ResidencyUS accumulates simulated time spent in degraded mode
	// (thinning factor above 1); Engagements counts entries into it.
	ResidencyUS float64
	Engagements int
}

// AttachDegrader arms the degradation control loop on a daemon. link may
// be nil when the daemon has no resilient uplink.
func (inj *Injector) AttachDegrader(d *procs.PdDaemon, link *Link) *Degrader {
	if !inj.Plan.Resilience.Degrade {
		return nil
	}
	g := &Degrader{inj: inj, d: d, link: link, baseBatch: d.BatchSize}
	inj.degraders = append(inj.degraders, g)
	inj.Sim.Schedule(inj.Plan.Resilience.DegradePeriod, g.tick)
	return g
}

func (g *Degrader) pressured() bool {
	r := &g.inj.Plan.Resilience
	for _, p := range g.d.Pipes {
		if float64(p.Len()+p.Blocked()) >= r.PipeWatermark*float64(p.Cap()) {
			return true
		}
	}
	return g.link != nil && g.link.Pending() >= r.RetryWatermark
}

func (g *Degrader) tick() {
	r := &g.inj.Plan.Resilience
	if !g.d.Down() { // a crashed daemon keeps its settings frozen
		wasDegraded := g.d.Thinning > 1
		if g.pressured() {
			g.clear = 0
			thin := g.d.Thinning
			if thin < 1 {
				thin = 1
			}
			if thin < r.MaxThinning {
				thin *= 2
				if thin > r.MaxThinning {
					thin = r.MaxThinning
				}
			}
			g.d.Thinning = thin
			if g.d.BatchSize > 1 {
				g.d.BatchSize /= 2 // BF batch backoff: drain pipes sooner
			}
			if !wasDegraded && g.d.Thinning > 1 {
				g.Engagements++
			}
		} else if g.clear++; g.clear >= 3 {
			// Decay hysteresis: a degraded daemon drains its pipes, so a
			// single pressure-free observation does not mean the overload
			// has passed. Back off only after sustained calm; otherwise
			// the controller oscillates between thinning and congestion.
			if g.d.Thinning > 1 {
				g.d.Thinning /= 2
			}
			if g.d.BatchSize < g.baseBatch {
				g.d.BatchSize *= 2
				if g.d.BatchSize > g.baseBatch {
					g.d.BatchSize = g.baseBatch
				}
			}
		}
		if g.d.Thinning > 1 {
			g.ResidencyUS += r.DegradePeriod
		}
		g.d.Wake() // settings changed; there may be drainable work
	}
	g.inj.Sim.Schedule(r.DegradePeriod, g.tick)
}
