package faults

import (
	"testing"

	"rocc/internal/des"
	"rocc/internal/forward"
	"rocc/internal/procs"
	"rocc/internal/resources"
	"rocc/internal/rng"
)

// constCost returns a cost model with every term fixed, so link tests are
// independent of cost randomness.
func constCost() forward.CostModel {
	return forward.CostModel{
		PerMsgCPU:    rng.Constant{Value: 267},
		PerSampleCPU: 8,
		PerMsgNet:    rng.Constant{Value: 71},
		PerSampleNet: 2,
		Merge:        rng.Constant{Value: 100},
	}
}

func msg(n int) *forward.Message {
	return &forward.Message{Samples: make([]resources.Sample, n), FromNode: 1, Hops: 1}
}

func TestPlanActive(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Fatal("nil plan must be inactive")
	}
	if (&Plan{Seed: 42}).Active() {
		t.Fatal("seed alone must not activate the plan")
	}
	for _, p := range []Plan{
		{Loss: 0.1}, {Dup: 0.1}, {DelayProb: 0.1}, {AckLoss: 0.1},
		{CrashMTBF: 1e6}, {SqueezeMTBF: 1e6},
		{Resilience: Resilience{Retransmit: true}},
		{Resilience: Resilience{Degrade: true}},
	} {
		p := p
		if !(&p).Active() {
			t.Fatalf("plan %+v should be active", p)
		}
	}
}

func TestValidateRejectsBadProbabilities(t *testing.T) {
	if _, err := (Plan{Loss: 1.5}).Validate(); err == nil {
		t.Fatal("Loss > 1 must be rejected")
	}
	if _, err := (Plan{Dup: -0.1}).Validate(); err == nil {
		t.Fatal("negative Dup must be rejected")
	}
	if _, err := (Plan{CrashMTBF: -1}).Validate(); err == nil {
		t.Fatal("negative MTBF must be rejected")
	}
}

func TestValidateDefaults(t *testing.T) {
	p, err := Plan{
		Loss:        0.05,
		DelayProb:   0.1,
		CrashMTBF:   1e6,
		SqueezeMTBF: 1e6,
		Resilience:  Resilience{Retransmit: true, Degrade: true},
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if p.Delay == nil || p.CrashDowntime == nil || p.SqueezeDuration == nil {
		t.Fatal("distribution defaults not applied")
	}
	if p.SqueezeCapFrac != 0.25 {
		t.Fatalf("SqueezeCapFrac default = %v", p.SqueezeCapFrac)
	}
	r := p.Resilience
	if r.RTO != 20000 || r.Backoff != 2 || r.RetryBudget != 6 || r.AckDelay != 100 {
		t.Fatalf("retransmission defaults = %+v", r)
	}
	if r.DegradePeriod != 50000 || r.PipeWatermark != 0.75 || r.RetryWatermark != 8 || r.MaxThinning != 8 {
		t.Fatalf("degradation defaults = %+v", r)
	}
}

// TestLinkLossyUnprotected checks that without retransmission, injected
// loss destroys messages for good and the samples are accounted lost.
func TestLinkLossyUnprotected(t *testing.T) {
	sim := des.New()
	net := resources.NewNetwork(sim, false)
	inj, err := NewInjector(sim, Plan{Seed: 7, Loss: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	l := inj.NewLink(1, 0, net, constCost(), func(m *forward.Message) bool {
		got += len(m.Samples)
		return true
	})
	const n = 400
	for i := 0; i < n; i++ {
		l.Send(msg(1))
	}
	sim.RunAll()
	if l.LossInjected == 0 || l.LossInjected == n {
		t.Fatalf("loss injected %d of %d, want strictly between", l.LossInjected, n)
	}
	if got+l.SamplesLost != n {
		t.Fatalf("delivered %d + lost %d != sent %d", got, l.SamplesLost, n)
	}
	// ~50% loss: accept a wide deterministic-seed band.
	if l.LossInjected < n/4 || l.LossInjected > 3*n/4 {
		t.Fatalf("loss injected %d of %d at p=0.5", l.LossInjected, n)
	}
}

// TestLinkRetransmitRecoversAll checks that with retransmission and a
// sufficient budget, every message survives heavy loss, duplicates are
// suppressed, and recovery times are recorded.
func TestLinkRetransmitRecoversAll(t *testing.T) {
	sim := des.New()
	net := resources.NewNetwork(sim, false)
	inj, err := NewInjector(sim, Plan{
		Seed: 11, Loss: 0.3, Dup: 0.2, AckLoss: 0.1,
		Resilience: Resilience{Retransmit: true, RTO: 1000, RetryBudget: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	l := inj.NewLink(2, 0, net, constCost(), func(m *forward.Message) bool {
		got += len(m.Samples)
		return true
	})
	const n = 200
	for i := 0; i < n; i++ {
		l.Send(msg(3))
	}
	sim.RunAll()
	if got != 3*n {
		t.Fatalf("delivered %d samples, want all %d (giveups=%d pending=%d)",
			got, 3*n, l.GiveUps, l.Pending())
	}
	if l.Retransmits == 0 {
		t.Fatal("expected retransmissions under 30% loss")
	}
	if l.Pending() != 0 {
		t.Fatalf("%d messages still pending after RunAll", l.Pending())
	}
	tot := inj.Totals()
	if tot.Recovered == 0 || tot.RecoveryMeanUS <= 0 || tot.RecoveryMaxUS < tot.RecoveryMeanUS {
		t.Fatalf("recovery stats: %+v", tot)
	}
	if l.DupDiscarded == 0 {
		t.Fatal("expected duplicate deliveries to be discarded")
	}
}

// TestLinkRetryBudgetGivesUp checks that a link facing total loss stops
// after its retry budget and accounts the samples as lost.
func TestLinkRetryBudgetGivesUp(t *testing.T) {
	sim := des.New()
	net := resources.NewNetwork(sim, false)
	inj, err := NewInjector(sim, Plan{
		Seed: 3, Loss: 1.0,
		Resilience: Resilience{Retransmit: true, RTO: 1000, Backoff: 2, RetryBudget: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	l := inj.NewLink(0, 0, net, constCost(), func(*forward.Message) bool {
		t.Fatal("nothing can be delivered at 100% loss")
		return true
	})
	l.Send(msg(5))
	sim.RunAll()
	if l.GiveUps != 1 || l.SamplesLost != 5 {
		t.Fatalf("giveups=%d samplesLost=%d, want 1/5", l.GiveUps, l.SamplesLost)
	}
	if l.Retransmits != 4 {
		t.Fatalf("retransmits=%d, want the full budget of 4", l.Retransmits)
	}
	// Exponential backoff: timeouts at 1000, +2000, +4000, +8000, +16000
	// plus a 71us transit per retransmission.
	if now := sim.Now(); now < 31000 || now > 32000 {
		t.Fatalf("final give-up at t=%v, want ~31000+transit", now)
	}
}

// TestLinkRefusedDeliveryRetransmits checks the crash-outage path: a
// receiver that refuses messages generates no acks, so the sender keeps
// retransmitting and delivery succeeds once the receiver recovers.
func TestLinkRefusedDeliveryRetransmits(t *testing.T) {
	sim := des.New()
	net := resources.NewNetwork(sim, false)
	inj, err := NewInjector(sim, Plan{
		Seed:       5,
		Resilience: Resilience{Retransmit: true, RTO: 1000, Backoff: 1, RetryBudget: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	up := false
	got := 0
	l := inj.NewLink(1, 0, net, constCost(), func(m *forward.Message) bool {
		if !up {
			return false
		}
		got += len(m.Samples)
		return true
	})
	l.Send(msg(2))
	sim.Schedule(3500, func() { up = true })
	sim.RunAll()
	if got != 2 {
		t.Fatalf("delivered %d samples, want 2 after receiver recovery", got)
	}
	if l.Retransmits < 3 {
		t.Fatalf("retransmits=%d, want >=3 during a 3500us outage with RTO 1000", l.Retransmits)
	}
	if l.Pending() != 0 || l.GiveUps != 0 {
		t.Fatalf("pending=%d giveups=%d after recovery", l.Pending(), l.GiveUps)
	}
}

// TestScheduleCrashesAlternates checks the crash schedule takes daemons
// down and brings them back, with downtime accounted.
func TestScheduleCrashesAlternates(t *testing.T) {
	sim := des.New()
	cpu := resources.NewCPU(sim, 1, 10000)
	net := resources.NewNetwork(sim, false)
	d := &procs.PdDaemon{
		Sim: sim, CPU: cpu, Net: net, R: rng.New(1),
		Policy: forward.CF, Cost: constCost(), Node: 0,
	}
	inj, err := NewInjector(sim, Plan{
		Seed: 9, CrashMTBF: 10000, CrashDowntime: rng.Constant{Value: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.ScheduleCrashes([]*procs.PdDaemon{d})
	end := sim.Schedule(200000, func() {})
	for sim.Now() < 200000 {
		if !sim.Step() {
			break
		}
	}
	_ = end
	if inj.Crashes < 5 {
		t.Fatalf("crashes=%d over 200ms at MTBF 10ms, want several", inj.Crashes)
	}
	if d.CrashCount != inj.Crashes {
		t.Fatalf("daemon crash count %d != injector %d", d.CrashCount, inj.Crashes)
	}
	want := float64(inj.Crashes) * 2000
	if inj.DowntimeUS != want {
		t.Fatalf("downtime %v, want %v", inj.DowntimeUS, want)
	}
	if d.Down() {
		// Legal (mid-outage at cutoff) but with constant 2ms outages the
		// last restore is at most 2ms after the last crash; just note it.
		t.Logf("daemon down at cutoff (mid-outage)")
	}
}

// TestSchedulePipeSqueezes checks squeeze windows clamp and restore the
// pipe's effective capacity.
func TestSchedulePipeSqueezes(t *testing.T) {
	sim := des.New()
	p := resources.NewPipe(16)
	inj, err := NewInjector(sim, Plan{
		Seed:            13,
		SqueezeMTBF:     5000,
		SqueezeDuration: rng.Constant{Value: 1000},
		SqueezeCapFrac:  0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.SchedulePipeSqueezes([]*resources.Pipe{p})
	sawSqueeze := false
	for i := 0; i < 2000 && sim.Step(); i++ {
		if p.CapacityLimit() == 4 {
			sawSqueeze = true
		}
		if sim.Now() > 100000 {
			break
		}
	}
	if !sawSqueeze {
		t.Fatal("never observed the squeezed capacity limit of 4")
	}
	if inj.Squeezes == 0 {
		t.Fatal("no squeezes accounted")
	}
}

// TestDegraderEngagesAndBacksOff drives the controller directly: pressure
// on the daemon's pipe escalates thinning and shrinks the batch; relief
// decays both back.
func TestDegraderEngagesAndBacksOff(t *testing.T) {
	sim := des.New()
	cpu := resources.NewCPU(sim, 1, 10000)
	net := resources.NewNetwork(sim, false)
	pipe := resources.NewPipe(8)
	d := &procs.PdDaemon{
		Sim: sim, CPU: cpu, Net: net, R: rng.New(2),
		Pipes:  []*resources.Pipe{pipe},
		Policy: forward.BF, BatchSize: 8, Cost: constCost(), Node: 0,
		Deliver: func(*forward.Message) {},
	}
	inj, err := NewInjector(sim, Plan{
		Seed: 17,
		Resilience: Resilience{
			Degrade: true, DegradePeriod: 1000,
			PipeWatermark: 0.5, MaxThinning: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := inj.AttachDegrader(d, nil)
	if g == nil {
		t.Fatal("degrader not attached")
	}

	// Keep the pipe above the watermark without waking the daemon, so the
	// controller sees sustained pressure across ticks.
	refill := func() {
		for pipe.Len() < 6 {
			pipe.TryPut(resources.Sample{})
		}
	}
	refill()
	for i := 1; i <= 3; i++ {
		i := i
		sim.Schedule(float64(i)*1000-1, func() { refill() })
	}
	// The loop may step one tick past 3500 and see the controller already
	// decaying, so assert on the peak escalation observed between events.
	peakThin, minBatch := 0, 8
	for sim.Step() && sim.Now() <= 3500 {
		if d.Thinning > peakThin {
			peakThin = d.Thinning
		}
		if d.BatchSize < minBatch {
			minBatch = d.BatchSize
		}
	}
	if peakThin != 4 {
		t.Fatalf("peak thinning=%d after 3 pressured ticks with max 4, want 4", peakThin)
	}
	if minBatch >= 8 {
		t.Fatalf("batch size %d not backed off from 8", minBatch)
	}
	if g.Engagements != 1 {
		t.Fatalf("engagements=%d, want 1", g.Engagements)
	}
	if g.ResidencyUS == 0 {
		t.Fatal("no degraded residency accumulated")
	}

	// Relief: drain the pipe; after the 3-tick decay hysteresis the
	// controller steps settings back each tick.
	pipe.Drain(0)
	for sim.Step() && sim.Now() <= 15000 {
	}
	if d.Thinning > 1 {
		t.Fatalf("thinning=%d did not decay to 1 after pressure cleared", d.Thinning)
	}
	if d.BatchSize != 8 {
		t.Fatalf("batch size %d did not recover to 8", d.BatchSize)
	}
}

// TestInjectorDeterminism re-runs an identical lossy scenario and demands
// identical accounting — the core reproducibility contract.
func TestInjectorDeterminism(t *testing.T) {
	run := func() Totals {
		sim := des.New()
		net := resources.NewNetwork(sim, false)
		inj, err := NewInjector(sim, Plan{
			Seed: 21, Loss: 0.2, Dup: 0.1, DelayProb: 0.3,
			Delay:      rng.Exponential{MeanVal: 500},
			Resilience: Resilience{Retransmit: true, RTO: 2000, RetryBudget: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		l := inj.NewLink(4, 0, net, constCost(), func(*forward.Message) bool { return true })
		for i := 0; i < 300; i++ {
			l.Send(msg(2))
		}
		sim.RunAll()
		return inj.Totals()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
	if a.LossInjected == 0 || a.Retransmits == 0 {
		t.Fatalf("scenario too quiet to be meaningful: %+v", a)
	}
}

// TestResetAccountingClearsCounters checks warmup reset zeroes the
// aggregate without touching pending state.
func TestResetAccountingClearsCounters(t *testing.T) {
	sim := des.New()
	net := resources.NewNetwork(sim, false)
	inj, err := NewInjector(sim, Plan{Seed: 1, Loss: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	l := inj.NewLink(0, 0, net, constCost(), func(*forward.Message) bool { return true })
	for i := 0; i < 50; i++ {
		l.Send(msg(1))
	}
	sim.RunAll()
	if (inj.Totals() == Totals{}) {
		t.Fatal("expected non-zero accounting before reset")
	}
	inj.ResetAccounting()
	if got := inj.Totals(); got != (Totals{}) {
		t.Fatalf("reset left residue: %+v", got)
	}
}
