// Package faults is the deterministic fault-injection and resilience
// layer of the ROCC model. The paper's §4.3.3 analysis shows the
// instrumentation system degrading sharply under overload, but models a
// fault-free world; this package makes failure a first-class model input
// so experiments can ask how much monitoring data each forwarding policy
// preserves when the system itself misbehaves.
//
// A Plan is a reproducible fault schedule: message loss, duplication, and
// delay on daemon uplinks, transient daemon crash/restart windows, and
// pipe capacity squeezes. Every fault decision is drawn from a per-entity
// substream derived from the plan's own seed, independent of the model's
// workload streams — enabling or scaling one fault class never perturbs
// the application workload, and a fixed (model seed, fault seed) pair
// replays bit-identically.
//
// The Resilience policies respond to injected faults: per-uplink
// ack/timeout/retransmission with exponential backoff and a retry budget
// (Link), receiver-side duplicate suppression, and an adaptive
// degradation controller (Degrader) that engages sample thinning and
// batch-size backoff when pipe occupancy or the retry queue crosses a
// watermark.
package faults

import (
	"errors"

	"rocc/internal/des"
	"rocc/internal/procs"
	"rocc/internal/resources"
	"rocc/internal/rng"
)

// Plan describes a reproducible fault schedule plus the resilience
// policies that respond to it. The zero value is inert: a model built
// with a zero plan is byte-identical to the fault-free baseline.
type Plan struct {
	// Seed drives every fault decision through substreams derived from
	// it; it is independent of the model's Config.Seed.
	Seed uint64

	// Message-transit faults applied on every daemon uplink (daemon to
	// parent daemon or to the main process), per delivery attempt.
	Loss      float64  // P(message vanishes in transit)
	Dup       float64  // P(message is delivered twice)
	DelayProb float64  // P(message suffers an extra transit delay)
	Delay     rng.Dist // extra delay length (default exponential 5000 us)
	AckLoss   float64  // P(an acknowledgement vanishes) — retransmission mode

	// Transient daemon crashes: each daemon alternates exponential
	// up-times (mean CrashMTBF) with CrashDowntime-distributed outages.
	CrashMTBF     float64  // mean up-time between crashes (us); 0 = none
	CrashDowntime rng.Dist // outage length (default exponential 50000 us)

	// Pipe capacity squeezes: transient kernel buffer pressure windows
	// during which a pipe's effective capacity drops to SqueezeCapFrac of
	// its nominal size.
	SqueezeMTBF     float64  // mean time between windows per pipe; 0 = none
	SqueezeDuration rng.Dist // window length (default exponential 100000 us)
	SqueezeCapFrac  float64  // capacity fraction in a window (default 0.25)

	Resilience Resilience
}

// Resilience selects the mechanisms that respond to injected faults.
type Resilience struct {
	// Retransmit enables ack/timeout/retransmission with receiver-side
	// duplicate suppression on every daemon uplink.
	Retransmit  bool
	RTO         float64 // initial retransmission timeout (default 20000 us)
	Backoff     float64 // RTO multiplier per retry (default 2)
	RetryBudget int     // retransmissions per message before giving up (default 6)
	AckDelay    float64 // ack transit time (default 100 us)

	// Degrade enables the adaptive degradation controller: a periodic
	// loop per daemon that doubles sample thinning (and halves the BF
	// batch size) while pipe occupancy or the uplink retry queue is above
	// its watermark, and backs off when pressure clears.
	Degrade        bool
	DegradePeriod  float64 // control-loop period (default 50000 us)
	PipeWatermark  float64 // pipe occupancy fraction that engages thinning (default 0.75)
	RetryWatermark int     // unacked uplink messages that engage thinning (default 8)
	MaxThinning    int     // cap on the keep-1-in-n thinning factor (default 8)
}

// Active reports whether the plan injects any fault or enables any
// resilience mechanism. An inactive plan (nil or zero) leaves the model
// completely unwired.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.Loss > 0 || p.Dup > 0 || p.DelayProb > 0 || p.AckLoss > 0 ||
		p.CrashMTBF > 0 || p.SqueezeMTBF > 0 ||
		p.Resilience.Retransmit || p.Resilience.Degrade
}

// Validate checks probabilities and applies defaults for zero-valued
// optional fields, returning the normalized plan.
func (p Plan) Validate() (Plan, error) {
	for _, prob := range []float64{p.Loss, p.Dup, p.DelayProb, p.AckLoss} {
		if prob < 0 || prob > 1 {
			return p, errors.New("faults: probabilities must be in [0,1]")
		}
	}
	if p.CrashMTBF < 0 || p.SqueezeMTBF < 0 {
		return p, errors.New("faults: MTBF values must be >= 0")
	}
	if p.DelayProb > 0 && p.Delay == nil {
		p.Delay = rng.Exponential{MeanVal: 5000}
	}
	if p.CrashMTBF > 0 && p.CrashDowntime == nil {
		p.CrashDowntime = rng.Exponential{MeanVal: 50000}
	}
	if p.SqueezeMTBF > 0 {
		if p.SqueezeDuration == nil {
			p.SqueezeDuration = rng.Exponential{MeanVal: 100000}
		}
		if p.SqueezeCapFrac <= 0 || p.SqueezeCapFrac > 1 {
			p.SqueezeCapFrac = 0.25
		}
	}
	r := &p.Resilience
	if r.Retransmit {
		if r.RTO <= 0 {
			r.RTO = 20000
		}
		if r.Backoff < 1 {
			r.Backoff = 2
		}
		if r.RetryBudget <= 0 {
			r.RetryBudget = 6
		}
		if r.AckDelay < 0 {
			return p, errors.New("faults: AckDelay must be >= 0")
		}
		if r.AckDelay == 0 {
			r.AckDelay = 100
		}
	}
	if r.Degrade {
		if r.DegradePeriod <= 0 {
			r.DegradePeriod = 50000
		}
		if r.PipeWatermark <= 0 || r.PipeWatermark > 1 {
			r.PipeWatermark = 0.75
		}
		if r.RetryWatermark <= 0 {
			r.RetryWatermark = 8
		}
		if r.MaxThinning < 2 {
			r.MaxThinning = 8
		}
	}
	return p, nil
}

// Substream identifiers for reproducible per-entity fault streams,
// mirroring the scheme of internal/core.
const (
	streamLink = iota + 1
	streamLinkCost
	streamCrash
	streamSqueeze
)

func streamID(kind, node, idx int) uint64 {
	return uint64(kind)<<40 | uint64(node)<<20 | uint64(idx)
}

// Injector owns the fault streams, schedules, and aggregate accounting
// for one model instance.
type Injector struct {
	Sim  *des.Simulator
	Plan Plan

	root      *rng.Stream
	Links     []*Link
	degraders []*Degrader

	// Crash and squeeze accounting.
	Crashes    int
	DowntimeUS float64
	Squeezes   int
}

// NewInjector validates the plan and returns an injector bound to sim.
func NewInjector(sim *des.Simulator, plan Plan) (*Injector, error) {
	plan, err := plan.Validate()
	if err != nil {
		return nil, err
	}
	return &Injector{Sim: sim, Plan: plan, root: rng.New(plan.Seed)}, nil
}

// ScheduleCrashes arms the transient crash/restart schedule for every
// daemon: exponential up-times of mean CrashMTBF alternating with
// CrashDowntime outages, each daemon on its own substream.
func (inj *Injector) ScheduleCrashes(daemons []*procs.PdDaemon) {
	if inj.Plan.CrashMTBF <= 0 {
		return
	}
	for i, d := range daemons {
		d := d
		r := inj.root.Derive(streamID(streamCrash, d.Node, i))
		inj.scheduleCrash(d, r)
	}
}

func (inj *Injector) scheduleCrash(d *procs.PdDaemon, r *rng.Stream) {
	up := r.Exp(inj.Plan.CrashMTBF)
	inj.Sim.Schedule(up, func() {
		down := inj.Plan.CrashDowntime.Sample(r)
		inj.Crashes++
		inj.DowntimeUS += down
		d.Crash()
		inj.Sim.Schedule(down, func() {
			d.Restore()
			inj.scheduleCrash(d, r)
		})
	})
}

// SchedulePipeSqueezes arms transient capacity-squeeze windows on every
// pipe, each on its own substream.
func (inj *Injector) SchedulePipeSqueezes(pipes []*resources.Pipe) {
	if inj.Plan.SqueezeMTBF <= 0 {
		return
	}
	for i, p := range pipes {
		p := p
		r := inj.root.Derive(streamID(streamSqueeze, 0, i))
		inj.scheduleSqueeze(p, r)
	}
}

func (inj *Injector) scheduleSqueeze(p *resources.Pipe, r *rng.Stream) {
	gap := r.Exp(inj.Plan.SqueezeMTBF)
	inj.Sim.Schedule(gap, func() {
		limit := int(inj.Plan.SqueezeCapFrac * float64(p.Cap()))
		if limit < 1 {
			limit = 1
		}
		inj.Squeezes++
		p.SetCapacityLimit(limit)
		dur := inj.Plan.SqueezeDuration.Sample(r)
		inj.Sim.Schedule(dur, func() {
			p.SetCapacityLimit(0)
			inj.scheduleSqueeze(p, r)
		})
	})
}

// Totals is an aggregate snapshot of fault and resilience accounting
// across the injector's links, crash schedule, and degraders.
type Totals struct {
	LossInjected, DupInjected, DelayInjected, AcksLost int

	Retransmits, GiveUps  int
	SamplesLostForwarding int
	DupMessagesDiscarded  int
	Recovered             int // messages delivered only thanks to retransmission
	RecoveryMeanUS        float64
	RecoveryMaxUS         float64

	Crashes    int
	DowntimeUS float64
	Squeezes   int

	DegradedResidencyUS float64
	DegradeEngagements  int
}

// Totals aggregates current accounting.
func (inj *Injector) Totals() Totals {
	t := Totals{Crashes: inj.Crashes, DowntimeUS: inj.DowntimeUS, Squeezes: inj.Squeezes}
	var recSum float64
	for _, l := range inj.Links {
		t.LossInjected += l.LossInjected
		t.DupInjected += l.DupInjected
		t.DelayInjected += l.DelayInjected
		t.AcksLost += l.AcksLost
		t.Retransmits += l.Retransmits
		t.GiveUps += l.GiveUps
		t.SamplesLostForwarding += l.SamplesLost
		t.DupMessagesDiscarded += l.DupDiscarded
		t.Recovered += l.recovered
		recSum += l.recoveredSum
		if l.recoveredMax > t.RecoveryMaxUS {
			t.RecoveryMaxUS = l.recoveredMax
		}
	}
	if t.Recovered > 0 {
		t.RecoveryMeanUS = recSum / float64(t.Recovered)
	}
	for _, g := range inj.degraders {
		t.DegradedResidencyUS += g.ResidencyUS
		t.DegradeEngagements += g.Engagements
	}
	return t
}

// SetObserver attaches a lifecycle observer to every uplink created so
// far; retransmission attempts are reported to it. A nil observer
// detaches.
func (inj *Injector) SetObserver(o procs.Observer) {
	for _, l := range inj.Links {
		l.obs = o
	}
}

// ResetAccounting clears fault and resilience counters without disturbing
// pending retransmissions or schedules; used for warmup removal.
func (inj *Injector) ResetAccounting() {
	inj.Crashes = 0
	inj.DowntimeUS = 0
	inj.Squeezes = 0
	for _, l := range inj.Links {
		l.ResetAccounting()
	}
	for _, g := range inj.degraders {
		g.ResidencyUS = 0
		g.Engagements = 0
	}
}
