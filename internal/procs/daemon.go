package procs

import (
	"rocc/internal/des"
	"rocc/internal/forward"
	"rocc/internal/resources"
	"rocc/internal/rng"
)

// PdDaemon is a Paradyn daemon: it collects instrumentation samples from
// the pipes of its local application processes and forwards them toward
// the main Paradyn process under the CF or BF policy. Under tree
// forwarding a non-leaf daemon additionally receives, merges, and relays
// messages from its children.
//
// The daemon is a single OS process: it does one piece of CPU work at a
// time, and every message costs CPU (collection plus the forwarding system
// call) followed by network occupancy to transmit.
//
// The fault layer (internal/faults) can crash the daemon transiently
// (Crash/Restore) and engage graceful degradation via Thinning; both are
// inert in the fault-free baseline.
type PdDaemon struct {
	Sim *des.Simulator
	CPU *resources.CPU
	Net *resources.Network
	R   *rng.Stream

	Pipes     []*resources.Pipe
	Policy    forward.Policy
	BatchSize int
	Cost      forward.CostModel
	Node      int

	// Strategy schedules forwarding: each time the daemon is free it asks
	// the strategy whether to forward a batch, keep accumulating, or flush
	// everything, and reports completion feedback for every batch it
	// collects locally. Nil derives the strategy from the legacy
	// Policy/BatchSize pair (CF forces batch 1), which reproduces the
	// pre-strategy daemon byte for byte. Each daemon must own its instance
	// (the model wires one Clone per daemon).
	Strategy forward.Strategy

	// Deliver routes a fully transmitted message to its destination (the
	// parent daemon's Receive or the main process); wired up by the model.
	Deliver func(msg *forward.Message)

	// FlushTimeout, when positive, forwards a partial batch if the oldest
	// unforwarded sample has waited this long (microseconds). Zero keeps
	// the pure count-based BF of the paper's model.
	FlushTimeout float64

	// Thinning, when > 1, keeps only one of every Thinning collected
	// samples — the graceful-degradation mechanism the fault layer
	// engages under overload. Thinned samples still free pipe space (the
	// daemon read them); they are just not forwarded. 0 or 1 forwards
	// everything.
	Thinning int

	// Obs, when non-nil, receives batch/forward/crash notifications.
	Obs Observer

	busy       bool
	down       bool
	epoch      int // bumped on Crash; stale CPU callbacks check it
	relayQ     []*forward.Message
	nextPipe   int
	thinSeq    int
	flushTimer *des.Event

	// Metrics.
	MessagesForwarded int
	SamplesForwarded  int // includes relayed samples (counted per hop)
	SamplesCollected  int // distinct samples drained from local pipes
	MessagesMerged    int
	SamplesThinned    int // samples discarded by degradation thinning
	CrashCount        int
	CrashLostSamples  int // samples lost to crashes (relay queue, in-prep batch)
}

// ResetAccounting clears the daemon's metric counters; used for warmup
// (initial-transient) removal.
func (d *PdDaemon) ResetAccounting() {
	d.MessagesForwarded = 0
	d.SamplesForwarded = 0
	d.SamplesCollected = 0
	d.MessagesMerged = 0
	d.SamplesThinned = 0
	d.CrashCount = 0
	d.CrashLostSamples = 0
}

// Start registers the daemon's pipe wake-ups and resolves the forwarding
// strategy (deriving it from the legacy Policy/BatchSize fields if none
// was wired, and seeding cost-model-aware strategies).
func (d *PdDaemon) Start() {
	if cs, ok := d.strategy().(forward.CostSeeder); ok {
		cs.SeedFromCost(d.Cost)
	}
	for _, p := range d.Pipes {
		p.SetOnData(d.Wake)
	}
}

// strategy returns the daemon's forwarding strategy, deriving the legacy
// one on first use.
func (d *PdDaemon) strategy() forward.Strategy {
	if d.Strategy == nil {
		d.Strategy = forward.FromPolicy(d.Policy, d.BatchSize)
	}
	return d.Strategy
}

// Down reports whether the daemon is currently crashed.
func (d *PdDaemon) Down() bool { return d.down }

// Crash takes the daemon down transiently. In-memory state is lost: the
// relay queue and any batch whose collection CPU work is in progress are
// discarded (pipes are kernel buffers and survive, as does a message whose
// network transmission already started). Messages arriving while down are
// dropped without acknowledgement, so a resilient uplink retransmits them.
func (d *PdDaemon) Crash() {
	if d.down {
		return
	}
	d.down = true
	d.epoch++
	d.CrashCount++
	lost := 0
	for _, m := range d.relayQ {
		lost += len(m.Samples)
		if d.Obs != nil {
			for _, s := range m.Samples {
				d.Obs.SampleLost(d.Node, d.Sim.Now(), s, LossCrash)
			}
		}
	}
	d.CrashLostSamples += lost
	d.relayQ = nil
	d.cancelFlush()
	d.busy = false
	if d.Obs != nil {
		d.Obs.DaemonCrashed(d.Node, d.Sim.Now(), lost)
	}
}

// Restore brings a crashed daemon back up; it resumes draining its pipes.
func (d *PdDaemon) Restore() {
	if !d.down {
		return
	}
	d.down = false
	if d.Obs != nil {
		d.Obs.DaemonRestored(d.Node, d.Sim.Now())
	}
	d.Wake()
}

// capacity returns the daemon's total buffering — pipe capacities plus
// one blocked writer per pipe — the clamp that keeps any batch target
// reachable so forwarding cannot deadlock.
func (d *PdDaemon) capacity() int {
	capTotal := 0
	for _, p := range d.Pipes {
		capTotal += p.Cap() + 1 // +1: one blocked writer per pipe can refill
	}
	return capTotal
}

func (d *PdDaemon) available() int {
	n := 0
	for _, p := range d.Pipes {
		n += p.Len() + p.Blocked()
	}
	return n
}

// Receive accepts a message from a child daemon (tree forwarding). A
// crashed daemon drops the message (no acknowledgement is generated).
func (d *PdDaemon) Receive(msg *forward.Message) {
	if d.down {
		d.CrashLostSamples += len(msg.Samples)
		if d.Obs != nil {
			for _, s := range msg.Samples {
				d.Obs.SampleLost(d.Node, d.Sim.Now(), s, LossCrash)
			}
		}
		return
	}
	if d.Obs != nil {
		d.Obs.MessageReceived(d.Node, d.Sim.Now(), msg.Samples, msg.Hops)
	}
	d.relayQ = append(d.relayQ, msg)
	d.Wake()
}

// Accept is Receive with delivery feedback for resilient links: it reports
// false — message refused, no ack — while the daemon is down, so the
// sender's retransmission timer covers the outage.
func (d *PdDaemon) Accept(msg *forward.Message) bool {
	if d.down {
		return false
	}
	d.Receive(msg)
	return true
}

// Wake prompts the daemon to look for work. Safe to call at any time.
func (d *PdDaemon) Wake() {
	if d.busy || d.down {
		return
	}
	// Relaying children's data takes priority: it keeps the tree draining.
	if len(d.relayQ) > 0 {
		msg := d.relayQ[0]
		d.relayQ = d.relayQ[1:]
		d.busy = true
		epoch := d.epoch
		d.CPU.Submit(OwnerPd, d.Cost.MergeCPU(d.R), func() {
			if d.epoch != epoch { // crashed mid-merge: message lost
				d.CrashLostSamples += len(msg.Samples)
				if d.Obs != nil {
					for _, s := range msg.Samples {
						d.Obs.SampleLost(d.Node, d.Sim.Now(), s, LossCrash)
					}
				}
				return
			}
			d.MessagesMerged++
			msg.Hops++
			d.send(msg)
			d.busy = false
			d.Wake()
		})
		return
	}
	capTotal := d.capacity()
	strat := d.strategy()
	for {
		avail := d.available()
		if avail == 0 {
			break
		}
		act, want := strat.Decide(d.Sim.Now(), avail, capTotal)
		switch act {
		case forward.Accumulate:
			// Partial batch pending: arm the flush timer if configured.
			if d.FlushTimeout > 0 && d.flushTimer == nil {
				d.flushTimer = d.Sim.Schedule(d.FlushTimeout, d.flush)
			}
			return
		case forward.FlushAll:
			want = avail
		default: // ForwardNow: clamp to what is reachable
			if want < 1 {
				want = 1
			}
			if want > capTotal && capTotal > 0 {
				want = capTotal
			}
		}
		batch := d.drain(want)
		if len(batch) == 0 {
			continue // batch fully thinned away; keep draining
		}
		d.cancelFlush()
		d.busy = true
		epoch := d.epoch
		d.CPU.Submit(OwnerPd, d.Cost.MsgCPU(d.R, len(batch)), func() {
			if d.epoch != epoch { // crashed mid-collection: batch lost
				d.CrashLostSamples += len(batch)
				if d.Obs != nil {
					for _, s := range batch {
						d.Obs.SampleLost(d.Node, d.Sim.Now(), s, LossCrash)
					}
				}
				return
			}
			d.observe(strat, batch, capTotal)
			d.send(&forward.Message{Samples: batch, FromNode: d.Node, Hops: 1})
			d.busy = false
			d.Wake()
		})
		return
	}
}

// observe reports one locally collected batch's completion feedback to
// the strategy, at the simulated instant the message is handed to the
// network. Every input is a simulated-clock or buffer-state quantity, so
// feedback-driven strategies remain byte-reproducible.
func (d *PdDaemon) observe(strat forward.Strategy, batch []resources.Sample, capTotal int) {
	now := d.Sim.Now()
	newest, oldest := batch[0].GenTime, batch[0].GenTime
	for _, s := range batch[1:] {
		if s.GenTime > newest {
			newest = s.GenTime
		}
		if s.GenTime < oldest {
			oldest = s.GenTime
		}
	}
	strat.Observe(forward.Feedback{
		Now:         now,
		Samples:     len(batch),
		NewestAgeUS: now - newest,
		OldestAgeUS: now - oldest,
		Buffered:    d.available(),
		Capacity:    capTotal,
	})
}

// flush forwards whatever samples are buffered, regardless of batch size.
func (d *PdDaemon) flush() {
	d.flushTimer = nil
	if d.busy || d.down || d.available() == 0 {
		return
	}
	batch := d.drain(d.available())
	if len(batch) == 0 {
		return
	}
	capTotal := d.capacity()
	strat := d.strategy()
	d.busy = true
	epoch := d.epoch
	d.CPU.Submit(OwnerPd, d.Cost.MsgCPU(d.R, len(batch)), func() {
		if d.epoch != epoch {
			d.CrashLostSamples += len(batch)
			if d.Obs != nil {
				for _, s := range batch {
					d.Obs.SampleLost(d.Node, d.Sim.Now(), s, LossCrash)
				}
			}
			return
		}
		d.observe(strat, batch, capTotal)
		d.send(&forward.Message{Samples: batch, FromNode: d.Node, Hops: 1})
		d.busy = false
		d.Wake()
	})
}

func (d *PdDaemon) cancelFlush() {
	if d.flushTimer != nil {
		d.flushTimer.Cancel()
		d.flushTimer = nil
	}
}

// drain gathers up to want samples round-robin across the daemon's pipes,
// then applies degradation thinning to the collected batch.
func (d *PdDaemon) drain(want int) []resources.Sample {
	out := make([]resources.Sample, 0, want)
	if len(d.Pipes) == 0 {
		return out
	}
	empty := 0
	for len(out) < want && empty < len(d.Pipes) {
		p := d.Pipes[d.nextPipe%len(d.Pipes)]
		d.nextPipe++
		if s, ok := p.Get(); ok {
			out = append(out, s)
			empty = 0
		} else {
			empty++
		}
	}
	d.SamplesCollected += len(out)
	if d.Thinning > 1 {
		kept := out[:0]
		for _, s := range out {
			if d.thinSeq%d.Thinning == 0 {
				kept = append(kept, s)
			} else if d.Obs != nil {
				d.Obs.SampleLost(d.Node, d.Sim.Now(), s, LossThinned)
			}
			d.thinSeq++
		}
		d.SamplesThinned += len(out) - len(kept)
		out = kept
	}
	if d.Obs != nil && len(out) > 0 {
		d.Obs.BatchCollected(d.Node, d.Sim.Now(), len(out))
	}
	return out
}

// send transmits a message over the network; delivery happens when the
// network occupancy completes.
func (d *PdDaemon) send(msg *forward.Message) {
	d.MessagesForwarded++
	d.SamplesForwarded += len(msg.Samples)
	if d.Obs != nil {
		d.Obs.MessageForwarded(d.Node, d.Sim.Now(), msg.Samples, msg.Hops)
	}
	netLen := d.Cost.MsgNet(d.R, len(msg.Samples))
	deliver := d.Deliver
	d.Net.Submit(OwnerPd, netLen, func() {
		if deliver != nil {
			deliver(msg)
		}
	})
}
