package procs

import (
	"rocc/internal/des"
	"rocc/internal/forward"
	"rocc/internal/resources"
	"rocc/internal/rng"
	"rocc/internal/stats"
)

// MainProcess is the main Paradyn process: it receives forwarded messages
// and spends CPU consuming each one (delivering metrics to the Performance
// Consultant). Monitoring latency — generation to receipt at this central
// collection facility — is recorded on message arrival.
type MainProcess struct {
	Sim *des.Simulator
	CPU *resources.CPU
	R   *rng.Stream

	CPUDist rng.Dist // per-message processing demand

	// Obs, when non-nil, receives per-sample and per-message delivery
	// notifications.
	Obs Observer

	// Latency accumulates per-sample monitoring latency in microseconds.
	Latency stats.Accumulator
	// ForwardLatency accumulates latency excluding batch accumulation: the
	// age of the *newest* sample in each message, i.e. the transport and
	// processing delay alone.
	ForwardLatency stats.Accumulator
	// LatencyP95 streams the 95th-percentile monitoring latency (P²
	// estimator; nil until the first Receive).
	LatencyP95 *stats.P2Quantile
	// LatencyMax tracks the worst per-sample monitoring latency seen.
	LatencyMax float64

	SamplesReceived  int
	MessagesReceived int
	HopsTotal        int
}

// ResetAccounting clears the main process's metrics; used for warmup
// (initial-transient) removal.
func (m *MainProcess) ResetAccounting() {
	m.Latency = stats.Accumulator{}
	m.ForwardLatency = stats.Accumulator{}
	m.LatencyP95 = nil
	m.LatencyMax = 0
	m.SamplesReceived = 0
	m.MessagesReceived = 0
	m.HopsTotal = 0
}

// Receive accepts one forwarded message.
func (m *MainProcess) Receive(msg *forward.Message) {
	now := m.Sim.Now()
	if m.LatencyP95 == nil {
		m.LatencyP95, _ = stats.NewP2Quantile(0.95)
	}
	newest := 0.0
	for _, s := range msg.Samples {
		lat := now - s.GenTime
		m.Latency.Add(lat)
		m.LatencyP95.Add(lat)
		if lat > m.LatencyMax {
			m.LatencyMax = lat
		}
		if s.GenTime > newest {
			newest = s.GenTime
		}
		if m.Obs != nil {
			m.Obs.SampleDelivered(now, s, lat)
		}
	}
	if len(msg.Samples) > 0 {
		m.ForwardLatency.Add(now - newest)
	}
	m.SamplesReceived += len(msg.Samples)
	m.MessagesReceived++
	m.HopsTotal += msg.Hops
	if m.Obs != nil {
		m.Obs.MessageDelivered(now, len(msg.Samples), msg.Hops)
	}
	m.CPU.Submit(OwnerMain, m.CPUDist.Sample(m.R), nil)
}

// OpenSource generates an open stream of resource occupancy requests. It
// models the PVM daemon (chained: each arrival occupies CPU then the
// network) and "other user/system processes" (independent CPU and network
// arrival streams), per Table 2.
type OpenSource struct {
	Sim   *des.Simulator
	CPU   *resources.CPU
	Net   *resources.Network
	R     *rng.Stream
	Owner string

	CPUDist rng.Dist
	NetDist rng.Dist

	// Chained mode: arrivals spaced by CPUInterarrival each trigger a CPU
	// request followed by a network request (PVM daemon behavior).
	Chained bool

	CPUInterarrival rng.Dist
	NetInterarrival rng.Dist // used only when !Chained

	Arrivals int

	// Reusable continuations (method values and the chained-completion
	// hook allocate per use otherwise). chainNetFn samples the network
	// demand at CPU-completion time, exactly as the inline closure it
	// replaces did; it carries no per-arrival state, so overlapping
	// chained arrivals share it safely.
	cpuArrivalFn func()
	netArrivalFn func()
	chainNetFn   func()
}

// Start schedules the first arrival(s).
func (o *OpenSource) Start() {
	o.cpuArrivalFn = o.cpuArrival
	o.netArrivalFn = o.netArrival
	o.chainNetFn = func() {
		o.Net.Submit(o.Owner, o.NetDist.Sample(o.R), nil)
	}
	if o.CPUInterarrival != nil {
		o.Sim.Schedule(o.CPUInterarrival.Sample(o.R), o.cpuArrivalFn)
	}
	if !o.Chained && o.NetInterarrival != nil {
		o.Sim.Schedule(o.NetInterarrival.Sample(o.R), o.netArrivalFn)
	}
}

func (o *OpenSource) cpuArrival() {
	o.Arrivals++
	if o.Chained {
		o.CPU.Submit(o.Owner, o.CPUDist.Sample(o.R), o.chainNetFn)
	} else {
		o.CPU.Submit(o.Owner, o.CPUDist.Sample(o.R), nil)
	}
	o.Sim.Schedule(o.CPUInterarrival.Sample(o.R), o.cpuArrivalFn)
}

func (o *OpenSource) netArrival() {
	o.Net.Submit(o.Owner, o.NetDist.Sample(o.R), nil)
	o.Sim.Schedule(o.NetInterarrival.Sample(o.R), o.netArrivalFn)
}
