package procs

import (
	"testing"

	"rocc/internal/forward"
	"rocc/internal/resources"
	"rocc/internal/rng"
)

func TestAppEventTraceEmitsPerIteration(t *testing.T) {
	r := newRig(1024)
	app := newApp(r, 0)
	app.EventTrace = true
	app.Start()
	r.sim.Run(100000)
	if app.Generated != app.Iterations {
		t.Fatalf("generated %d, iterations %d", app.Generated, app.Iterations)
	}
	if r.pipe.Len() != app.Generated {
		t.Fatal("samples missing from pipe")
	}
}

func TestAppEventTraceBlocksOnFullPipe(t *testing.T) {
	r := newRig(2)
	app := newApp(r, 0)
	app.EventTrace = true
	app.Start()
	r.sim.Run(500000)
	if app.BlockedPuts == 0 {
		t.Fatal("tiny pipe with no reader should block the tracer")
	}
	iters := app.Iterations
	// Drain: the app resumes.
	for {
		if _, ok := r.pipe.Get(); !ok {
			break
		}
	}
	r.sim.Run(600000)
	if app.Iterations <= iters {
		t.Fatal("app did not resume after drain")
	}
}

func TestAppIOBlocking(t *testing.T) {
	r := newRig(64)
	app := newApp(r, 0)
	app.IOProb = 1.0 // block after every iteration
	app.IOBlock = rng.Constant{Value: 5000}
	app.Start()
	r.sim.Run(100000)
	// Each cycle: 2000 CPU + 200 net + 5000 blocked = 7200 us.
	want := int(100000 / 7200)
	if app.IOBlocks < want-1 || app.IOBlocks > want+1 {
		t.Fatalf("IO blocks %d, want ~%d", app.IOBlocks, want)
	}
	if app.IOBlocks != app.Iterations {
		t.Fatalf("every iteration should block: %d vs %d", app.IOBlocks, app.Iterations)
	}
}

func TestAppSpawnHook(t *testing.T) {
	r := newRig(64)
	app := newApp(r, 0)
	app.SpawnPeriod = 10000 // every ~10 ms of work
	var spawns int
	app.OnSpawn = func(parent *AppProcess) {
		if parent != app {
			t.Fatal("wrong parent")
		}
		spawns++
	}
	app.Start()
	r.sim.Run(100000)
	if spawns == 0 || spawns != app.Spawned {
		t.Fatalf("spawns %d, recorded %d", spawns, app.Spawned)
	}
	if spawns < 7 || spawns > 11 {
		t.Fatalf("spawn count %d implausible for 100 ms / 10 ms", spawns)
	}
}

func TestResetAccounting(t *testing.T) {
	r := newRig(64)
	app := newApp(r, 10000)
	app.Start()
	r.sim.Run(100000)
	if app.Generated == 0 || app.Iterations == 0 {
		t.Fatal("no activity to reset")
	}
	app.ResetAccounting()
	if app.Generated != 0 || app.Iterations != 0 || app.BlockedPuts != 0 ||
		app.IOBlocks != 0 || app.Spawned != 0 {
		t.Fatal("app reset incomplete")
	}
	if app.Blocked() || app.AtBarrier() {
		t.Fatal("state flags should be clear")
	}

	// Fresh rig: the app above keeps rescheduling itself, so its simulator
	// never drains; the daemon check needs a quiescent one.
	r2 := newRig(64)
	d, _ := newDaemon(r2, forward.CF, 1)
	r2.pipe.Put(resources.Sample{}, nil)
	r2.sim.RunAll()
	if d.SamplesForwarded == 0 {
		t.Fatal("daemon idle")
	}
	d.ResetAccounting()
	if d.SamplesForwarded != 0 || d.MessagesForwarded != 0 ||
		d.SamplesCollected != 0 || d.MessagesMerged != 0 {
		t.Fatal("daemon reset incomplete")
	}

	m := &MainProcess{Sim: r2.sim, CPU: r2.cpu, R: rng.New(1), CPUDist: rng.Constant{Value: 1}}
	m.Receive(&forward.Message{Samples: []resources.Sample{{GenTime: 0}}})
	if m.SamplesReceived != 1 || m.LatencyP95 == nil {
		t.Fatal("main idle")
	}
	m.ResetAccounting()
	if m.SamplesReceived != 0 || m.LatencyP95 != nil || m.LatencyMax != 0 ||
		m.Latency.N() != 0 {
		t.Fatal("main reset incomplete")
	}
}
