package procs

import (
	"rocc/internal/des"
	"rocc/internal/resources"
	"rocc/internal/rng"
)

// Barrier is a global synchronization barrier across all application
// processes (the barrier operations whose frequency Figure 28 varies).
// When every participant has arrived, all are released.
type Barrier struct {
	Participants int

	arrived  int
	waiters  []func()
	Releases int
}

// Arrive registers one participant at the barrier; resume runs when the
// barrier opens. A barrier with one participant opens immediately.
func (b *Barrier) Arrive(resume func()) {
	b.arrived++
	b.waiters = append(b.waiters, resume)
	if b.arrived >= b.Participants {
		ws := b.waiters
		b.arrived = 0
		b.waiters = nil
		b.Releases++
		for _, w := range ws {
			w()
		}
	}
}

// Waiting returns the number of processes currently blocked at the barrier.
func (b *Barrier) Waiting() int { return len(b.waiters) }

// AppProcess is one instrumented application process: a closed loop that
// alternates CPU occupancy (Computation) and network occupancy
// (Communication) requests per the simplified two-state model of Figure 7.
// A periodic sampling timer writes instrumentation samples into the pipe;
// if the pipe is full the process blocks, exactly the §4.3.3 effect.
type AppProcess struct {
	Sim  *des.Simulator
	CPU  *resources.CPU
	Net  *resources.Network
	Pipe *resources.Pipe
	R    *rng.Stream

	CPUDist rng.Dist // Computation burst length
	NetDist rng.Dist // Communication burst length

	// SamplingPeriod is the instrumentation sampling interval in
	// microseconds; zero disables sampling (the uninstrumented baseline).
	SamplingPeriod float64

	// Barrier, when non-nil, synchronizes this process with all others
	// every BarrierPeriod microseconds of completed work.
	Barrier       *Barrier
	BarrierPeriod float64

	// Detailed-model options (the full Figure 6 process behavior; all
	// zero values reproduce the simplified Figure 7 model).

	// IOProb is the probability an iteration ends in the Blocked state
	// (waiting for I/O) rather than returning to Ready.
	IOProb float64
	// IOBlock is the blocked-duration distribution (required if IOProb>0).
	IOBlock rng.Dist
	// EventTrace switches the instrumentation to event tracing: one
	// sample per Communication event (each iteration), instead of — or in
	// addition to — timer-driven sampling.
	EventTrace bool
	// SpawnPeriod, with OnSpawn, forks a new process every SpawnPeriod
	// microseconds of completed work (the Fork transition of Figure 6;
	// the instrumentation logs the new process).
	SpawnPeriod float64
	OnSpawn     func(parent *AppProcess)

	Node, ID int

	// Obs, when non-nil, receives sample-generation notifications.
	Obs Observer

	// Generated counts samples produced (including ones that blocked).
	Generated int
	// BlockedPuts counts samples whose pipe write blocked the process.
	BlockedPuts int
	// Iterations counts completed computation+communication cycles.
	Iterations int
	// IOBlocks counts entries into the Blocked (I/O) state.
	IOBlocks int
	// Spawned counts fork events this process performed.
	Spawned int

	blocked          bool // blocked writing a sample to a full pipe
	atBarrier        bool
	paused           bool // loop paused waiting for unblock/barrier release
	workSinceBarrier float64
	workSinceSpawn   float64

	// sampleSeq numbers this process's samples from run start; unlike
	// Generated it is never reset, so (Node, ID, Seq) stays a unique
	// sample identity across the warmup boundary.
	sampleSeq int

	// The process loop is strictly sequential — at most one CPU request,
	// one network request, one pipe write, and one barrier wait are
	// outstanding at any time — so its continuations are allocated once
	// (initFns) and the current burst lengths live in curCPU/curNet
	// instead of being captured by per-iteration closures.
	curCPU, curNet float64
	cpuDone        func() // Computation burst served → issue Communication
	netDone        func() // Communication served → end of iteration
	tickFn         func() // = sampleTick (method values allocate per use)
	mbtsFn         func() // = maybeBarrierThenStep
	unblockTick    func() // blocked timer-driven write accepted
	unblockEmit    func() // blocked event-trace write accepted
	barrierResume  func() // barrier opened
}

// initFns binds the loop's reusable continuations; idempotent so spawned
// processes started mid-run get them too.
func (a *AppProcess) initFns() {
	if a.cpuDone != nil {
		return
	}
	a.cpuDone = func() {
		a.workSinceBarrier += a.curCPU
		a.workSinceSpawn += a.curCPU
		a.curNet = a.NetDist.Sample(a.R)
		a.Net.Submit(OwnerApp, a.curNet, a.netDone)
	}
	a.netDone = func() {
		a.workSinceBarrier += a.curNet
		a.workSinceSpawn += a.curNet
		a.Iterations++
		a.afterIteration()
	}
	a.tickFn = a.sampleTick
	a.mbtsFn = a.maybeBarrierThenStep
	a.unblockTick = func() {
		// Space freed: the write completes and the process resumes.
		a.blocked = false
		if a.paused {
			a.step()
		}
		a.Sim.Schedule(a.SamplingPeriod, a.tickFn)
	}
	a.unblockEmit = func() {
		a.blocked = false
		if a.paused {
			a.maybeBarrierThenStep()
		}
	}
	a.barrierResume = func() {
		a.atBarrier = false
		if a.paused {
			a.step()
		}
	}
}

// ResetAccounting clears the process's metric counters; used for warmup
// (initial-transient) removal.
func (a *AppProcess) ResetAccounting() {
	a.Generated = 0
	a.BlockedPuts = 0
	a.Iterations = 0
	a.IOBlocks = 0
	a.Spawned = 0
}

// Blocked reports whether the process is currently blocked writing a
// sample into a full pipe.
func (a *AppProcess) Blocked() bool { return a.blocked }

// AtBarrier reports whether the process is currently waiting at the
// global barrier.
func (a *AppProcess) AtBarrier() bool { return a.atBarrier }

// Start launches the process loop and, if sampling is enabled, the
// sampling timer.
func (a *AppProcess) Start() {
	a.initFns()
	a.step()
	if a.SamplingPeriod > 0 {
		a.Sim.Schedule(a.SamplingPeriod, a.tickFn)
	}
}

// step issues the next Computation request unless the process is blocked.
func (a *AppProcess) step() {
	if a.blocked || a.atBarrier {
		a.paused = true
		return
	}
	a.paused = false
	a.curCPU = a.CPUDist.Sample(a.R)
	a.CPU.Submit(OwnerApp, a.curCPU, a.cpuDone)
}

// afterIteration handles the detailed-model transitions of Figure 6 that
// follow a Communication event — event-traced data collection, forking,
// and blocking for I/O — before the barrier check and next cycle.
func (a *AppProcess) afterIteration() {
	if a.EventTrace {
		a.emitSample()
		if a.blocked {
			a.paused = true
			return // resume via the pipe's onAccepted callback
		}
	}
	if a.OnSpawn != nil && a.SpawnPeriod > 0 && a.workSinceSpawn >= a.SpawnPeriod {
		a.workSinceSpawn = 0
		a.Spawned++
		a.OnSpawn(a)
	}
	if a.IOProb > 0 && a.IOBlock != nil && a.R.Bernoulli(a.IOProb) {
		a.IOBlocks++
		a.Sim.Schedule(a.IOBlock.Sample(a.R), a.mbtsFn)
		return
	}
	a.maybeBarrierThenStep()
}

// emitSample generates one instrumentation sample inline with execution
// (event tracing); a full pipe blocks the process exactly like the
// timer-driven path.
func (a *AppProcess) emitSample() {
	s := a.newSample()
	accepted := a.Pipe.Put(s, a.unblockEmit)
	if !accepted {
		a.blocked = true
		a.BlockedPuts++
	}
	if a.Obs != nil {
		a.Obs.SampleGenerated(s.GenTime, s, !accepted)
	}
}

// newSample builds the next instrumentation sample, assigning its
// sequence number.
func (a *AppProcess) newSample() resources.Sample {
	s := resources.Sample{GenTime: a.Sim.Now(), Node: a.Node, Proc: a.ID, Seq: a.sampleSeq}
	a.sampleSeq++
	a.Generated++
	return s
}

func (a *AppProcess) maybeBarrierThenStep() {
	if a.Barrier != nil && a.BarrierPeriod > 0 && a.workSinceBarrier >= a.BarrierPeriod {
		a.workSinceBarrier = 0
		a.atBarrier = true
		a.Barrier.Arrive(a.barrierResume)
		if a.atBarrier { // barrier did not open synchronously
			a.paused = true
			return
		}
	}
	a.step()
}

// sampleTick generates one instrumentation sample and reschedules itself.
// While the process is blocked on a full pipe, no further samples are
// generated (the write system call has not returned).
func (a *AppProcess) sampleTick() {
	if a.blocked {
		// The pending blocked write will reschedule the timer on release.
		return
	}
	s := a.newSample()
	accepted := a.Pipe.Put(s, a.unblockTick)
	if a.Obs != nil {
		a.Obs.SampleGenerated(s.GenTime, s, !accepted)
	}
	if accepted {
		a.Sim.Schedule(a.SamplingPeriod, a.tickFn)
		return
	}
	a.blocked = true
	a.BlockedPuts++
}
