// Package procs implements the process behavior models of the ROCC model
// (Figures 6 and 7 of the paper): instrumented application processes that
// alternate Computation and Communication states, Paradyn daemons that
// collect samples from pipes and forward them under the CF or BF policy,
// the main Paradyn process that consumes forwarded data, and the open
// arrival streams of the PVM daemon and other user/system processes.
package procs

// Owner-class labels used for resource-occupancy accounting. Direct IS
// overhead is the occupancy attributed to OwnerPd plus OwnerMain.
const (
	OwnerApp   = "app"
	OwnerPd    = "pd"
	OwnerPvm   = "pvmd"
	OwnerOther = "other"
	OwnerMain  = "paradyn"
)
