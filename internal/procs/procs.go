// Package procs implements the process behavior models of the ROCC model
// (Figures 6 and 7 of the paper): instrumented application processes that
// alternate Computation and Communication states, Paradyn daemons that
// collect samples from pipes and forward them under the CF or BF policy,
// the main Paradyn process that consumes forwarded data, and the open
// arrival streams of the PVM daemon and other user/system processes.
package procs

import "rocc/internal/resources"

// Owner-class labels used for resource-occupancy accounting. Direct IS
// overhead is the occupancy attributed to OwnerPd plus OwnerMain.
const (
	OwnerApp   = "app"
	OwnerPd    = "pd"
	OwnerPvm   = "pvmd"
	OwnerOther = "other"
	OwnerMain  = "paradyn"
)

// LossReason classifies why a sample left the system without reaching
// the main process. The provenance engine uses it to close in-flight
// records; the trace sink records it on EvSampleLost events.
type LossReason int

const (
	// LossThinned: discarded by graceful-degradation thinning in a
	// daemon's drain path.
	LossThinned LossReason = iota
	// LossCrash: discarded by a daemon crash (relay queue, in-prep batch,
	// message received while down, or delivery into a crashed receiver
	// over an unprotected link).
	LossCrash
	// LossLink: lost in transit on an unprotected (non-resilient) link.
	LossLink
	// LossGiveUp: a resilient link exhausted its retransmission budget.
	LossGiveUp
)

// String returns the loss reason's short label.
func (r LossReason) String() string {
	switch r {
	case LossThinned:
		return "thinned"
	case LossCrash:
		return "crash"
	case LossLink:
		return "link"
	case LossGiveUp:
		return "giveup"
	default:
		return "unknown"
	}
}

// Observer receives sample-lifecycle notifications from the process
// models: the full path of instrumentation data from generation at an
// application process to receipt at the main Paradyn process, plus
// daemon fault events. All times are simulated microseconds. Every hook
// site is nil-guarded, so an unattached observer costs one branch.
//
// Implementations must only record — they must not call back into the
// process models or the simulator. Batch slices passed to
// MessageForwarded and MessageReceived are owned by the caller and must
// not be retained past the call.
type Observer interface {
	// SampleGenerated fires when an application process writes a sample;
	// blocked reports that the write stalled on a full pipe (§4.3.3).
	SampleGenerated(t float64, s resources.Sample, blocked bool)
	// BatchCollected fires when a daemon finishes draining one batch of
	// samples from its local pipes (after degradation thinning).
	BatchCollected(node int, t float64, samples int)
	// MessageForwarded fires when a daemon starts transmitting a message
	// carrying batch; hops is the message's forwarding depth so far.
	MessageForwarded(node int, t float64, batch []resources.Sample, hops int)
	// MessageReceived fires when a relay daemon accepts a message from a
	// child for merging (tree forwarding only; direct-to-main delivery
	// fires MessageDelivered instead).
	MessageReceived(node int, t float64, batch []resources.Sample, hops int)
	// MessageDelivered fires when the main process receives a message.
	MessageDelivered(t float64, samples, hops int)
	// SampleDelivered fires once per sample in a received message with the
	// sample's end-to-end monitoring latency.
	SampleDelivered(t float64, s resources.Sample, latencyUS float64)
	// SampleLost fires once per sample that leaves the system without
	// reaching the main process; node is the daemon (or link endpoint)
	// where the loss happened.
	SampleLost(node int, t float64, s resources.Sample, reason LossReason)
	// DaemonCrashed fires when a daemon goes down; lostSamples counts the
	// in-memory samples discarded at the crash instant.
	DaemonCrashed(node int, t float64, lostSamples int)
	// DaemonRestored fires when a crashed daemon comes back up.
	DaemonRestored(node int, t float64)
	// MessageRetransmitted fires when a resilient uplink retries an
	// unacknowledged message; attempt counts from 1.
	MessageRetransmitted(node int, t float64, attempt int)
}
