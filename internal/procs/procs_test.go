package procs

import (
	"math"
	"testing"

	"rocc/internal/des"
	"rocc/internal/forward"
	"rocc/internal/resources"
	"rocc/internal/rng"
)

// rig bundles a one-node test fixture.
type rig struct {
	sim  *des.Simulator
	cpu  *resources.CPU
	net  *resources.Network
	pipe *resources.Pipe
}

func newRig(pipeCap int) *rig {
	sim := des.New()
	return &rig{
		sim:  sim,
		cpu:  resources.NewCPU(sim, 1, 10000),
		net:  resources.NewNetwork(sim, false),
		pipe: resources.NewPipe(pipeCap),
	}
}

func newApp(r *rig, samplingPeriod float64) *AppProcess {
	return &AppProcess{
		Sim:            r.sim,
		CPU:            r.cpu,
		Net:            r.net,
		Pipe:           r.pipe,
		R:              rng.New(42),
		CPUDist:        rng.Constant{Value: 2000},
		NetDist:        rng.Constant{Value: 200},
		SamplingPeriod: samplingPeriod,
	}
}

func TestAppProcessAlternatesStates(t *testing.T) {
	r := newRig(64)
	app := newApp(r, 0) // uninstrumented
	app.Start()
	r.sim.Run(100000)
	// Each iteration takes 2000 CPU + 200 net = 2200 us on idle resources.
	want := int(100000 / 2200)
	if app.Iterations < want-1 || app.Iterations > want+1 {
		t.Fatalf("iterations %d, want ~%d", app.Iterations, want)
	}
	if app.Generated != 0 {
		t.Fatal("uninstrumented process generated samples")
	}
	if got := r.cpu.Busy(OwnerApp); math.Abs(got-float64(app.Iterations+1)*2000) > 2001 {
		t.Fatalf("app CPU busy %v inconsistent with %d iterations", got, app.Iterations)
	}
}

func TestAppProcessGeneratesSamples(t *testing.T) {
	r := newRig(1024)
	app := newApp(r, 40000) // 40 ms
	app.Start()
	r.sim.Run(1e6) // 1 s
	want := int(1e6 / 40000)
	if app.Generated < want-1 || app.Generated > want {
		t.Fatalf("generated %d samples, want ~%d", app.Generated, want)
	}
	if r.pipe.Len() != app.Generated {
		t.Fatalf("pipe holds %d, generated %d", r.pipe.Len(), app.Generated)
	}
	first, _ := r.pipe.Get()
	if first.GenTime != 40000 {
		t.Fatalf("first sample at %v, want 40000", first.GenTime)
	}
}

func TestAppProcessBlocksOnFullPipe(t *testing.T) {
	r := newRig(2)
	app := newApp(r, 10000)
	app.Start()
	r.sim.Run(500000)
	// Pipe fills at 2 samples (plus one blocked write): the process must
	// have stopped iterating shortly after t=30000.
	if app.BlockedPuts == 0 {
		t.Fatal("expected blocked puts on a tiny pipe with no reader")
	}
	if app.Generated > 4 {
		t.Fatalf("generated %d samples while blocked", app.Generated)
	}
	iterationsWhenBlocked := app.Iterations
	if iterationsWhenBlocked > 20 {
		t.Fatalf("app kept iterating (%d) while blocked on pipe", iterationsWhenBlocked)
	}
	// Draining the pipe resumes the process.
	for {
		if _, ok := r.pipe.Get(); !ok {
			break
		}
	}
	r.sim.Run(1e6)
	if app.Iterations <= iterationsWhenBlocked {
		t.Fatal("app did not resume after pipe drained")
	}
}

func TestBarrierSynchronizesProcesses(t *testing.T) {
	sim := des.New()
	net := resources.NewNetwork(sim, false)
	b := &Barrier{Participants: 2}
	// Two processes with very different speeds; the barrier keeps their
	// iteration counts within one barrier period of each other.
	cpus := []*resources.CPU{resources.NewCPU(sim, 1, 10000), resources.NewCPU(sim, 1, 10000)}
	apps := make([]*AppProcess, 2)
	speeds := []float64{1000, 5000}
	for i := range apps {
		apps[i] = &AppProcess{
			Sim: sim, CPU: cpus[i], Net: net, Pipe: resources.NewPipe(64),
			R:       rng.New(uint64(i)),
			CPUDist: rng.Constant{Value: speeds[i]}, NetDist: rng.Constant{Value: 100},
			Barrier: b, BarrierPeriod: 20000,
		}
		apps[i].Start()
	}
	sim.Run(2e6)
	if b.Releases == 0 {
		t.Fatal("barrier never released")
	}
	// Without the barrier the fast process would do ~5x the iterations of
	// the slow one; with it, their completed work stays within a few
	// percent (bounded by per-cycle overshoot of one iteration each).
	w0 := float64(apps[0].Iterations) * (speeds[0] + 100)
	w1 := float64(apps[1].Iterations) * (speeds[1] + 100)
	if math.Abs(w0-w1) > 0.05*w0 {
		t.Fatalf("work drift across barrier: %v vs %v", w0, w1)
	}
}

func TestBarrierSingleParticipant(t *testing.T) {
	b := &Barrier{Participants: 1}
	ran := false
	b.Arrive(func() { ran = true })
	if !ran || b.Releases != 1 || b.Waiting() != 0 {
		t.Fatal("single-participant barrier should open immediately")
	}
}

func newDaemon(r *rig, policy forward.Policy, batch int) (*PdDaemon, *[]*forward.Message) {
	var delivered []*forward.Message
	d := &PdDaemon{
		Sim: r.sim, CPU: r.cpu, Net: r.net, R: rng.New(7),
		Pipes:     []*resources.Pipe{r.pipe},
		Policy:    policy,
		BatchSize: batch,
		Cost: forward.CostModel{
			PerMsgCPU:    rng.Constant{Value: 267},
			PerSampleCPU: 8,
			PerMsgNet:    rng.Constant{Value: 71},
			PerSampleNet: 2,
			Merge:        rng.Constant{Value: 100},
		},
		Deliver: func(m *forward.Message) { delivered = append(delivered, m) },
	}
	d.Start()
	return d, &delivered
}

func TestDaemonCFForwardsEachSample(t *testing.T) {
	r := newRig(64)
	d, delivered := newDaemon(r, forward.CF, 1)
	for i := 0; i < 5; i++ {
		r.pipe.Put(resources.Sample{GenTime: float64(i)}, nil)
	}
	r.sim.RunAll()
	if d.MessagesForwarded != 5 || d.SamplesForwarded != 5 {
		t.Fatalf("forwarded %d msgs / %d samples, want 5/5", d.MessagesForwarded, d.SamplesForwarded)
	}
	if len(*delivered) != 5 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	for i, m := range *delivered {
		if len(m.Samples) != 1 || m.Samples[0].GenTime != float64(i) {
			t.Fatalf("message %d wrong: %+v", i, m)
		}
		if m.Hops != 1 {
			t.Fatalf("hops %d", m.Hops)
		}
	}
	// CF CPU cost: one 267-us request per sample.
	if got := r.cpu.Busy(OwnerPd); got != 5*267 {
		t.Fatalf("Pd CPU %v, want %v", got, 5.0*267)
	}
}

func TestDaemonBFWaitsForBatch(t *testing.T) {
	r := newRig(64)
	d, delivered := newDaemon(r, forward.BF, 4)
	for i := 0; i < 3; i++ {
		r.pipe.Put(resources.Sample{GenTime: float64(i)}, nil)
	}
	r.sim.RunAll()
	if d.MessagesForwarded != 0 {
		t.Fatal("BF forwarded a partial batch without timeout")
	}
	r.pipe.Put(resources.Sample{GenTime: 3}, nil)
	r.sim.RunAll()
	if d.MessagesForwarded != 1 || d.SamplesForwarded != 4 {
		t.Fatalf("forwarded %d/%d, want 1 msg of 4", d.MessagesForwarded, d.SamplesForwarded)
	}
	if len(*delivered) != 1 || len((*delivered)[0].Samples) != 4 {
		t.Fatal("delivery wrong")
	}
	// BF CPU cost: 267 + 3*8 for the whole batch — far below 4*267.
	if got := r.cpu.Busy(OwnerPd); got != 267+3*8 {
		t.Fatalf("Pd CPU %v, want %v", got, 267+3*8.0)
	}
}

func TestDaemonBFOverheadReduction(t *testing.T) {
	// The headline claim: with batch 32, daemon CPU is cut by >60%.
	runPolicy := func(policy forward.Policy, batch int) float64 {
		r := newRig(256)
		_, _ = newDaemon(r, policy, batch)
		for i := 0; i < 320; i++ {
			r.pipe.Put(resources.Sample{GenTime: float64(i)}, nil)
			r.sim.RunAll()
		}
		return r.cpu.Busy(OwnerPd)
	}
	cf := runPolicy(forward.CF, 1)
	bf := runPolicy(forward.BF, 32)
	if reduction := 1 - bf/cf; reduction < 0.60 {
		t.Fatalf("BF reduced daemon CPU by only %.0f%%", reduction*100)
	}
}

func TestDaemonFlushTimeout(t *testing.T) {
	r := newRig(64)
	d, delivered := newDaemon(r, forward.BF, 100)
	d.FlushTimeout = 50000
	r.pipe.Put(resources.Sample{GenTime: 0}, nil)
	r.pipe.Put(resources.Sample{GenTime: 1}, nil)
	r.sim.Run(200000)
	if d.MessagesForwarded != 1 || d.SamplesForwarded != 2 {
		t.Fatalf("flush did not forward partial batch: %d/%d", d.MessagesForwarded, d.SamplesForwarded)
	}
	if len(*delivered) != 1 {
		t.Fatal("delivery missing")
	}
}

func TestDaemonBatchClampedToPipeCapacity(t *testing.T) {
	// Batch larger than total buffering must clamp, not deadlock.
	r := newRig(4)
	d, _ := newDaemon(r, forward.BF, 1000)
	if capTotal := d.capacity(); capTotal != 5 { // cap 4 + 1 blocked writer
		t.Fatalf("capacity %d, want 5", capTotal)
	}
	if _, thr := d.strategy().Decide(0, 5, d.capacity()); thr != 5 {
		t.Fatalf("threshold %d, want 5", thr)
	}
}

func TestDaemonRelayMergesAndForwards(t *testing.T) {
	r := newRig(8)
	d, delivered := newDaemon(r, forward.CF, 1)
	msg := &forward.Message{Samples: []resources.Sample{{GenTime: 5}}, FromNode: 3, Hops: 1}
	d.Receive(msg)
	r.sim.RunAll()
	if d.MessagesMerged != 1 {
		t.Fatal("merge not counted")
	}
	if len(*delivered) != 1 || (*delivered)[0].Hops != 2 {
		t.Fatalf("relayed message wrong: %+v", *delivered)
	}
	// Merge cost on CPU.
	if got := r.cpu.Busy(OwnerPd); got != 100 {
		t.Fatalf("merge CPU %v, want 100", got)
	}
}

func TestDaemonRelayPriority(t *testing.T) {
	r := newRig(8)
	d, delivered := newDaemon(r, forward.CF, 1)
	// Stage both local samples and a relayed message before any dispatch.
	r.pipe.SetOnData(func() {}) // suppress auto-wake to control ordering
	r.pipe.Put(resources.Sample{GenTime: 1}, nil)
	d.Receive(&forward.Message{Samples: []resources.Sample{{GenTime: 2}}, FromNode: 1, Hops: 1})
	r.sim.RunAll()
	if len(*delivered) != 2 {
		t.Fatalf("delivered %d", len(*delivered))
	}
	if (*delivered)[0].FromNode != 1 {
		t.Fatal("relay should be forwarded before local collection")
	}
}

func TestMainProcessLatencyAccounting(t *testing.T) {
	sim := des.New()
	cpu := resources.NewCPU(sim, 1, 10000)
	m := &MainProcess{Sim: sim, CPU: cpu, R: rng.New(1), CPUDist: rng.Constant{Value: 3208}}
	sim.Schedule(1000, func() {
		m.Receive(&forward.Message{Samples: []resources.Sample{{GenTime: 0}, {GenTime: 500}}, Hops: 1})
	})
	sim.RunAll()
	if m.SamplesReceived != 2 || m.MessagesReceived != 1 || m.HopsTotal != 1 {
		t.Fatal("counters wrong")
	}
	if got := m.Latency.Mean(); got != 750 { // (1000-0 + 1000-500)/2
		t.Fatalf("latency mean %v, want 750", got)
	}
	if got := m.ForwardLatency.Mean(); got != 500 { // newest sample age
		t.Fatalf("forward latency %v, want 500", got)
	}
	if got := cpu.Busy(OwnerMain); got != 3208 {
		t.Fatalf("main CPU %v", got)
	}
}

func TestOpenSourceChained(t *testing.T) {
	sim := des.New()
	cpu := resources.NewCPU(sim, 1, 10000)
	net := resources.NewNetwork(sim, false)
	o := &OpenSource{
		Sim: sim, CPU: cpu, Net: net, R: rng.New(3), Owner: OwnerPvm,
		CPUDist: rng.Constant{Value: 294}, NetDist: rng.Constant{Value: 58},
		Chained: true, CPUInterarrival: rng.Constant{Value: 6485},
	}
	o.Start()
	sim.Run(649000) // 100 arrivals
	if o.Arrivals != 100 {
		t.Fatalf("arrivals %d, want 100", o.Arrivals)
	}
	if got := cpu.Busy(OwnerPvm); math.Abs(got-100*294) > 294 {
		t.Fatalf("pvm CPU %v", got)
	}
	if got := net.Busy(OwnerPvm); math.Abs(got-100*58) > 60 {
		t.Fatalf("pvm net %v", got)
	}
}

func TestOpenSourceIndependentStreams(t *testing.T) {
	sim := des.New()
	cpu := resources.NewCPU(sim, 1, 10000)
	net := resources.NewNetwork(sim, false)
	o := &OpenSource{
		Sim: sim, CPU: cpu, Net: net, R: rng.New(4), Owner: OwnerOther,
		CPUDist: rng.Constant{Value: 367}, NetDist: rng.Constant{Value: 92},
		CPUInterarrival: rng.Constant{Value: 10000},
		NetInterarrival: rng.Constant{Value: 25000},
	}
	o.Start()
	sim.Run(100000)
	// Arrivals at 10k..100k; the one at t=100k has not completed service,
	// so 9 CPU requests and 3 network requests have accrued occupancy.
	if got := cpu.Busy(OwnerOther); got != 9*367 {
		t.Fatalf("other CPU %v", got)
	}
	if got := net.Busy(OwnerOther); got != 3*92 {
		t.Fatalf("other net %v", got)
	}
}

func TestDaemonCrashLosesInMemoryStateOnly(t *testing.T) {
	r := newRig(64)
	d, delivered := newDaemon(r, forward.CF, 1)
	// A relayed message and an in-preparation batch are both in memory.
	d.Receive(&forward.Message{Samples: make([]resources.Sample, 3), FromNode: 9, Hops: 1})
	r.pipe.Put(resources.Sample{GenTime: 1}, nil)
	// Crash before any CPU work completes: merge CPU is in flight.
	r.sim.Run(50) // < 100 us merge cost
	d.Crash()
	if !d.Down() || d.CrashCount != 1 {
		t.Fatal("crash state")
	}
	// A message arriving while down is refused without an ack.
	if d.Accept(&forward.Message{Samples: make([]resources.Sample, 2)}) {
		t.Fatal("down daemon accepted a message")
	}
	r.sim.RunAll()
	if len(*delivered) != 0 {
		t.Fatal("crashed daemon forwarded data")
	}
	// 3 relayed samples lost with the relay queue + 2 refused via Receive
	// path accounting happens only for Receive, not Accept: Accept refuses
	// before any state is taken. The pipe sample survives (kernel buffer).
	if d.CrashLostSamples != 3 {
		t.Fatalf("crash-lost samples %d, want 3", d.CrashLostSamples)
	}
	if r.pipe.Len() != 1 {
		t.Fatal("pipe contents must survive a daemon crash")
	}
	// Restore: the daemon drains the surviving pipe sample.
	d.Restore()
	r.sim.RunAll()
	if len(*delivered) != 1 || d.SamplesForwarded != 1 {
		t.Fatalf("restored daemon forwarded %d messages", len(*delivered))
	}
}

func TestDaemonThinningForwardsSubset(t *testing.T) {
	r := newRig(64)
	d, delivered := newDaemon(r, forward.CF, 1)
	d.Thinning = 4 // keep 1 in 4
	for i := 0; i < 8; i++ {
		r.pipe.Put(resources.Sample{GenTime: float64(i)}, nil)
	}
	r.sim.RunAll()
	if d.SamplesCollected != 8 {
		t.Fatalf("collected %d, want 8 (thinning must still drain the pipe)", d.SamplesCollected)
	}
	if d.SamplesThinned != 6 || d.SamplesForwarded != 2 {
		t.Fatalf("thinned %d forwarded %d, want 6/2", d.SamplesThinned, d.SamplesForwarded)
	}
	if r.pipe.Len() != 0 {
		t.Fatal("thinning must free pipe space")
	}
	if len(*delivered) != 2 {
		t.Fatalf("delivered %d messages", len(*delivered))
	}
}
