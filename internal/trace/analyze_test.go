package trace

import (
	"math"
	"testing"
)

func TestAnalyzeTotals(t *testing.T) {
	recs := []Record{
		{StartUS: 0, PID: 1, Process: ProcApplication, Resource: CPU, DurationUS: 100},
		{StartUS: 100, PID: 1, Process: ProcApplication, Resource: Network, DurationUS: 50},
		{StartUS: 150, PID: 2, Process: ProcApplication, Resource: CPU, DurationUS: 200},
		{StartUS: 350, PID: 3, Process: ProcPd, Resource: CPU, DurationUS: 30},
	}
	an, err := Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	if an.Records != 4 || an.DurationUS != 380 {
		t.Fatalf("records %d, duration %v", an.Records, an.DurationUS)
	}
	app, ok := an.TotalsFor(ProcApplication)
	if !ok {
		t.Fatal("application missing")
	}
	if app.CPUTimeUS != 300 || app.NetTimeUS != 50 || app.CPUCount != 2 || app.NetCount != 1 {
		t.Fatalf("app totals %+v", app)
	}
	if len(app.PIDs) != 2 || app.PIDs[0] != 1 || app.PIDs[1] != 2 {
		t.Fatalf("app pids %v", app.PIDs)
	}
	if app.FirstUS != 0 || app.LastEndUS != 350 {
		t.Fatalf("app span %v-%v", app.FirstUS, app.LastEndUS)
	}
	// Application first in the ordering, pd second.
	if an.Totals[0].Class != ProcApplication || an.Totals[1].Class != ProcPd {
		t.Fatalf("ordering %v, %v", an.Totals[0].Class, an.Totals[1].Class)
	}
	if got := an.CPUShare(ProcApplication); math.Abs(got-300.0/380) > 1e-12 {
		t.Fatalf("cpu share %v", got)
	}
	if an.CPUShare("missing") != 0 {
		t.Fatal("missing class share should be 0")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("empty should fail")
	}
	bad := []Record{{StartUS: 0, PID: 1, Process: "x", Resource: CPU, DurationUS: -1}}
	if _, err := Analyze(bad); err == nil {
		t.Fatal("invalid record should fail")
	}
}

func TestAnalyzeUnknownClassOrdering(t *testing.T) {
	recs := []Record{
		{StartUS: 0, PID: 1, Process: "zebra", Resource: CPU, DurationUS: 10},
		{StartUS: 0, PID: 1, Process: ProcPd, Resource: CPU, DurationUS: 10},
	}
	an, err := Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	if an.Totals[0].Class != ProcPd || an.Totals[1].Class != "zebra" {
		t.Fatalf("known classes must come first: %+v", an.Totals)
	}
}

func TestTimelineSplitsAcrossWindows(t *testing.T) {
	recs := []Record{
		// One 100-us CPU burst spanning the boundary of two 100-us windows.
		{StartUS: 50, PID: 1, Process: ProcApplication, Resource: CPU, DurationUS: 100},
		// Fixes the trace span at 200 us.
		{StartUS: 199, PID: 2, Process: ProcPd, Resource: CPU, DurationUS: 1},
	}
	classes, shares, err := Timeline(recs, CPU, 2)
	if err != nil {
		t.Fatal(err)
	}
	var appIdx int = -1
	for i, c := range classes {
		if c == ProcApplication {
			appIdx = i
		}
	}
	if appIdx < 0 {
		t.Fatal("application missing from timeline")
	}
	// 50 us in each window => 0.5 share in both.
	if math.Abs(shares[appIdx][0]-0.5) > 1e-12 || math.Abs(shares[appIdx][1]-0.5) > 1e-12 {
		t.Fatalf("split shares %v", shares[appIdx])
	}
}

func TestTimelineFiltersResource(t *testing.T) {
	recs := []Record{
		{StartUS: 0, PID: 1, Process: ProcApplication, Resource: Network, DurationUS: 100},
	}
	_, shares, err := Timeline(recs, CPU, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range shares {
		for _, v := range row {
			if v != 0 {
				t.Fatal("network records must not appear in CPU timeline")
			}
		}
	}
}

func TestTimelineErrors(t *testing.T) {
	if _, _, err := Timeline(nil, CPU, 4); err == nil {
		t.Fatal("empty trace")
	}
	recs := []Record{{StartUS: 0, PID: 1, Process: "a", Resource: CPU, DurationUS: 1}}
	if _, _, err := Timeline(recs, CPU, 0); err == nil {
		t.Fatal("zero windows")
	}
}

func TestTimelineConservation(t *testing.T) {
	// Total share*width across windows equals total occupancy.
	recs, err := Generate(GenConfig{Seed: 21, DurationUS: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	classes, shares, err := Timeline(recs, CPU, 37)
	if err != nil {
		t.Fatal(err)
	}
	width := an.DurationUS / 37
	for i, class := range classes {
		sum := 0.0
		for _, s := range shares[i] {
			sum += s * width
		}
		want, _ := an.TotalsFor(class)
		if math.Abs(sum-want.CPUTimeUS) > 1e-6*(1+want.CPUTimeUS) {
			t.Fatalf("%s: timeline total %v != analyzed %v", class, sum, want.CPUTimeUS)
		}
	}
}

func TestTimelineSingleWindow(t *testing.T) {
	// windows=1 collapses the whole trace into one bin: the share is
	// total class occupancy over the trace span.
	recs := []Record{
		{StartUS: 0, PID: 1, Process: ProcApplication, Resource: CPU, DurationUS: 60},
		{StartUS: 100, PID: 2, Process: ProcPd, Resource: CPU, DurationUS: 100},
	}
	classes, shares, err := Timeline(recs, CPU, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{ProcApplication: 60.0 / 200.0, ProcPd: 100.0 / 200.0}
	for i, class := range classes {
		if len(shares[i]) != 1 {
			t.Fatalf("%s: %d windows, want 1", class, len(shares[i]))
		}
		if math.Abs(shares[i][0]-want[class]) > 1e-12 {
			t.Errorf("%s share %v, want %v", class, shares[i][0], want[class])
		}
	}
}

func TestTimelineMoreWindowsThanRecords(t *testing.T) {
	// More windows than records: sparse bins stay zero, occupied bins
	// still conserve the total, and a burst narrower than a window fills
	// only its fraction.
	recs := []Record{
		{StartUS: 0, PID: 1, Process: ProcApplication, Resource: CPU, DurationUS: 10},
		{StartUS: 990, PID: 1, Process: ProcApplication, Resource: CPU, DurationUS: 10},
	}
	classes, shares, err := Timeline(recs, CPU, 100) // 10-us windows over a 1000-us span
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 1 || len(shares[0]) != 100 {
		t.Fatalf("classes=%v windows=%d", classes, len(shares[0]))
	}
	row := shares[0]
	if row[0] != 1 || row[99] != 1 {
		t.Errorf("edge windows = %v / %v, want fully occupied", row[0], row[99])
	}
	sum := 0.0
	for w, s := range row {
		if w != 0 && w != 99 && s != 0 {
			t.Errorf("window %d has share %v, want 0", w, s)
		}
		sum += s
	}
	if math.Abs(sum-2) > 1e-12 {
		t.Errorf("total occupied windows %v, want 2", sum)
	}
}
