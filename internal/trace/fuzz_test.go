package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText: the text parser must never panic, and anything it accepts
// must survive a write/read round trip.
func FuzzReadText(f *testing.F) {
	f.Add("# rocc-trace v1\n100.0 1 application cpu 50.0\n")
	f.Add("")
	f.Add("1 2 3\n")
	f.Add("100 1 application cpu 50\n200 2 pd net 7\n")
	f.Add("nan 1 application cpu 50\n")
	f.Add("1e300 1 application cpu 1e300\n")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, recs); err != nil {
			// Accepted records must be writable: Validate passed on read.
			t.Fatalf("accepted records failed to write: %v", err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
	})
}

// FuzzReadBinary: the binary parser must never panic or over-allocate on
// malformed input.
func FuzzReadBinary(f *testing.F) {
	var valid bytes.Buffer
	_ = WriteBinary(&valid, []Record{
		{StartUS: 1, PID: 2, Process: ProcApplication, Resource: CPU, DurationUS: 3},
	})
	f.Add(valid.Bytes())
	f.Add([]byte("RTR1"))
	f.Add([]byte{})
	f.Add([]byte("RTR1\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, input []byte) {
		recs, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		// Anything accepted must round trip.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, recs); err != nil {
			// Binary reader does not validate durations; writing may
			// legitimately reject, which is fine.
			return
		}
		again, err := ReadBinary(&buf)
		if err != nil || len(again) != len(recs) {
			t.Fatalf("round trip: %v (%d -> %d)", err, len(recs), len(again))
		}
	})
}
