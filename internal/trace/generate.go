package trace

import (
	"errors"

	"rocc/internal/rng"
)

// Process-class labels used by the generator and the characterization
// pipeline (the rows of Table 1).
const (
	ProcApplication = "application"
	ProcPd          = "pd"
	ProcPvmd        = "pvmd"
	ProcOther       = "other"
	ProcParadyn     = "paradyn"
)

// Classes lists the process classes in Table 1 row order.
var Classes = []string{ProcApplication, ProcPd, ProcPvmd, ProcOther, ProcParadyn}

// GenConfig parameterizes synthetic trace generation for one SP-2 node
// running an instrumented NAS benchmark under PVM, plus the host node
// running the main Paradyn process.
type GenConfig struct {
	Seed       uint64
	DurationUS float64

	// SamplingPeriodUS drives the Paradyn daemon's collection activity.
	SamplingPeriodUS float64

	// Distributions for each process class; zero values take the Table 2
	// defaults via Normalize.
	AppCPU, AppNet   rng.Dist
	PdCPU, PdNet     rng.Dist
	PvmCPU, PvmNet   rng.Dist
	PvmInterarrival  rng.Dist
	OtherCPU         rng.Dist
	OtherNet         rng.Dist
	OtherCPUGap      rng.Dist
	OtherNetGap      rng.Dist
	ParadynCPU       rng.Dist
	ParadynArrival   rng.Dist // message arrivals at the main process
	IncludeMainTrace bool     // also emit the host node's paradyn records
}

// Normalize fills defaults (Table 2) and validates.
func (g GenConfig) Normalize() (GenConfig, error) {
	if g.DurationUS <= 0 {
		return g, errors.New("trace: DurationUS must be positive")
	}
	if g.SamplingPeriodUS <= 0 {
		g.SamplingPeriodUS = 40000
	}
	def := func(d rng.Dist, fallback rng.Dist) rng.Dist {
		if d == nil {
			return fallback
		}
		return d
	}
	g.AppCPU = def(g.AppCPU, rng.Lognormal{MeanVal: 2213, SD: 3034})
	g.AppNet = def(g.AppNet, rng.Exponential{MeanVal: 223})
	g.PdCPU = def(g.PdCPU, rng.Exponential{MeanVal: 267})
	g.PdNet = def(g.PdNet, rng.Exponential{MeanVal: 71})
	g.PvmCPU = def(g.PvmCPU, rng.Lognormal{MeanVal: 294, SD: 206})
	g.PvmNet = def(g.PvmNet, rng.Exponential{MeanVal: 58})
	g.PvmInterarrival = def(g.PvmInterarrival, rng.Exponential{MeanVal: 6485})
	g.OtherCPU = def(g.OtherCPU, rng.Lognormal{MeanVal: 367, SD: 819})
	g.OtherNet = def(g.OtherNet, rng.Exponential{MeanVal: 92})
	g.OtherCPUGap = def(g.OtherCPUGap, rng.Exponential{MeanVal: 31485})
	g.OtherNetGap = def(g.OtherNetGap, rng.Exponential{MeanVal: 5598903})
	g.ParadynCPU = def(g.ParadynCPU, rng.Lognormal{MeanVal: 3208, SD: 3287})
	g.ParadynArrival = def(g.ParadynArrival, rng.Exponential{MeanVal: 5000})
	return g, nil
}

// Generate produces a synthetic AIX-like occupancy trace. Records are
// returned sorted by start time.
func Generate(cfg GenConfig) ([]Record, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	master := rng.New(cfg.Seed)
	var recs []Record

	// Application process: alternating CPU and network bursts.
	{
		r := master.Derive(1)
		t := 0.0
		for t < cfg.DurationUS {
			c := cfg.AppCPU.Sample(r)
			recs = append(recs, Record{StartUS: t, PID: 100, Process: ProcApplication, Resource: CPU, DurationUS: c})
			t += c
			if t >= cfg.DurationUS {
				break
			}
			n := cfg.AppNet.Sample(r)
			recs = append(recs, Record{StartUS: t, PID: 100, Process: ProcApplication, Resource: Network, DurationUS: n})
			t += n
		}
	}

	// Paradyn daemon: one collect-and-forward burst per sampling period.
	{
		r := master.Derive(2)
		for t := cfg.SamplingPeriodUS; t < cfg.DurationUS; t += cfg.SamplingPeriodUS {
			c := cfg.PdCPU.Sample(r)
			recs = append(recs, Record{StartUS: t, PID: 200, Process: ProcPd, Resource: CPU, DurationUS: c})
			recs = append(recs, Record{StartUS: t + c, PID: 200, Process: ProcPd, Resource: Network, DurationUS: cfg.PdNet.Sample(r)})
		}
	}

	// PVM daemon: chained CPU+network activity at exponential arrivals.
	{
		r := master.Derive(3)
		t := cfg.PvmInterarrival.Sample(r)
		for t < cfg.DurationUS {
			c := cfg.PvmCPU.Sample(r)
			recs = append(recs, Record{StartUS: t, PID: 300, Process: ProcPvmd, Resource: CPU, DurationUS: c})
			recs = append(recs, Record{StartUS: t + c, PID: 300, Process: ProcPvmd, Resource: Network, DurationUS: cfg.PvmNet.Sample(r)})
			t += cfg.PvmInterarrival.Sample(r)
		}
	}

	// Other user/system processes: independent CPU and network streams.
	{
		r := master.Derive(4)
		t := cfg.OtherCPUGap.Sample(r)
		for t < cfg.DurationUS {
			recs = append(recs, Record{StartUS: t, PID: 400, Process: ProcOther, Resource: CPU, DurationUS: cfg.OtherCPU.Sample(r)})
			t += cfg.OtherCPUGap.Sample(r)
		}
		t = cfg.OtherNetGap.Sample(r)
		for t < cfg.DurationUS {
			recs = append(recs, Record{StartUS: t, PID: 401, Process: ProcOther, Resource: Network, DurationUS: cfg.OtherNet.Sample(r)})
			t += cfg.OtherNetGap.Sample(r)
		}
	}

	// Main Paradyn process on the host node (second AIX trace file of the
	// Figure 29 setup).
	if cfg.IncludeMainTrace {
		r := master.Derive(5)
		t := cfg.ParadynArrival.Sample(r)
		for t < cfg.DurationUS {
			recs = append(recs, Record{StartUS: t, PID: 500, Process: ProcParadyn, Resource: CPU, DurationUS: cfg.ParadynCPU.Sample(r)})
			// Occasional network activity replying to daemons.
			if r.Bernoulli(0.3) {
				recs = append(recs, Record{StartUS: t, PID: 500, Process: ProcParadyn, Resource: Network, DurationUS: r.Exp(214)})
			}
			t += cfg.ParadynArrival.Sample(r)
		}
	}

	SortByTime(recs)
	return recs, nil
}
