package trace

import (
	"errors"
	"sort"
)

// ClassTotals aggregates occupancy for one process class within a trace —
// the per-class execution statistics the measurement experiments of
// Section 5 derive from the AIX trace files.
type ClassTotals struct {
	Class     string
	CPUTimeUS float64
	NetTimeUS float64
	CPUCount  int
	NetCount  int
	FirstUS   float64
	LastEndUS float64
	PIDs      []int
}

// Analysis is the product of Analyze.
type Analysis struct {
	// Totals per class, ordered per Classes (known classes first).
	Totals []ClassTotals
	// DurationUS is the observed trace span (max record end time).
	DurationUS float64
	// Records is the total record count.
	Records int
}

// TotalsFor returns the totals of one class, if present.
func (a Analysis) TotalsFor(class string) (ClassTotals, bool) {
	for _, t := range a.Totals {
		if t.Class == class {
			return t, true
		}
	}
	return ClassTotals{}, false
}

// CPUShare returns the fraction of observed trace time the class occupied
// the CPU (0 when the trace is empty).
func (a Analysis) CPUShare(class string) float64 {
	t, ok := a.TotalsFor(class)
	if !ok || a.DurationUS <= 0 {
		return 0
	}
	return t.CPUTimeUS / a.DurationUS
}

// Analyze computes per-class occupancy totals from a trace.
func Analyze(recs []Record) (Analysis, error) {
	if len(recs) == 0 {
		return Analysis{}, errors.New("trace: empty trace")
	}
	byClass := map[string]*ClassTotals{}
	pidSeen := map[string]map[int]bool{}
	var an Analysis
	an.Records = len(recs)
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return Analysis{}, err
		}
		t := byClass[r.Process]
		if t == nil {
			t = &ClassTotals{Class: r.Process, FirstUS: r.StartUS}
			byClass[r.Process] = t
			pidSeen[r.Process] = map[int]bool{}
		}
		switch r.Resource {
		case CPU:
			t.CPUTimeUS += r.DurationUS
			t.CPUCount++
		case Network:
			t.NetTimeUS += r.DurationUS
			t.NetCount++
		}
		if r.StartUS < t.FirstUS {
			t.FirstUS = r.StartUS
		}
		if end := r.StartUS + r.DurationUS; end > t.LastEndUS {
			t.LastEndUS = end
		}
		if !pidSeen[r.Process][r.PID] {
			pidSeen[r.Process][r.PID] = true
			t.PIDs = append(t.PIDs, r.PID)
		}
		if end := r.StartUS + r.DurationUS; end > an.DurationUS {
			an.DurationUS = end
		}
	}
	// Stable class ordering.
	var names []string
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	ordered := make([]string, 0, len(names))
	for _, known := range Classes {
		for _, name := range names {
			if name == known {
				ordered = append(ordered, name)
			}
		}
	}
	for _, name := range names {
		found := false
		for _, o := range ordered {
			if o == name {
				found = true
			}
		}
		if !found {
			ordered = append(ordered, name)
		}
	}
	for _, name := range ordered {
		t := byClass[name]
		sort.Ints(t.PIDs)
		an.Totals = append(an.Totals, *t)
	}
	return an, nil
}

// Timeline bins a trace's resource occupancy into fixed windows: result
// [class][window] = occupied fraction of the window. Occupancy spanning a
// window boundary is split proportionally.
func Timeline(recs []Record, res Resource, windows int) (classes []string, shares [][]float64, err error) {
	if windows < 1 {
		return nil, nil, errors.New("trace: need at least one window")
	}
	an, err := Analyze(recs)
	if err != nil {
		return nil, nil, err
	}
	width := an.DurationUS / float64(windows)
	if width <= 0 {
		return nil, nil, errors.New("trace: zero-duration trace")
	}
	index := map[string]int{}
	for _, t := range an.Totals {
		index[t.Class] = len(classes)
		classes = append(classes, t.Class)
	}
	shares = make([][]float64, len(classes))
	for i := range shares {
		shares[i] = make([]float64, windows)
	}
	for _, r := range recs {
		if r.Resource != res {
			continue
		}
		ci := index[r.Process]
		start, end := r.StartUS, r.StartUS+r.DurationUS
		for w := int(start / width); w < windows; w++ {
			wStart, wEnd := float64(w)*width, float64(w+1)*width
			if wStart >= end {
				break
			}
			lo, hi := start, end
			if lo < wStart {
				lo = wStart
			}
			if hi > wEnd {
				hi = wEnd
			}
			if hi > lo {
				shares[ci][w] += (hi - lo) / width
			}
		}
	}
	return classes, shares, nil
}
