// Package trace models the AIX operating-system tracing facility that the
// paper used to characterize the workload (§2.3.2): resource-occupancy
// records per process, a text and a compact binary file format, and a
// synthetic trace generator.
//
// Substitution note (see DESIGN.md): the paper parameterized the ROCC
// model from real AIX kernel traces of the NAS pvmbt benchmark on an IBM
// SP-2. Those traces (and the hardware) are unavailable, so Generate
// produces statistically equivalent synthetic traces from the same
// per-process distributions; the characterization pipeline in
// internal/workload then consumes them through the identical
// parse -> summarize -> fit code path the real traces would take.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Resource identifies the occupied resource.
type Resource int

const (
	// CPU occupancy (the Running state of the process model).
	CPU Resource = iota
	// Network occupancy (the Communication state).
	Network
)

// String implements fmt.Stringer.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Network:
		return "net"
	}
	return fmt.Sprintf("Resource(%d)", int(r))
}

// ParseResource inverts String.
func ParseResource(s string) (Resource, error) {
	switch s {
	case "cpu":
		return CPU, nil
	case "net":
		return Network, nil
	}
	return 0, fmt.Errorf("trace: unknown resource %q", s)
}

// Record is one resource-occupancy interval attributed to a process.
type Record struct {
	// StartUS is the interval start time in microseconds since trace start.
	StartUS float64
	// PID identifies the process within the trace.
	PID int
	// Process is the process-class label: "application", "pd", "pvmd",
	// "other", or "paradyn".
	Process string
	// Resource is the occupied resource.
	Resource Resource
	// DurationUS is the occupancy length in microseconds.
	DurationUS float64
}

// Validate reports malformed records.
func (r Record) Validate() error {
	if r.StartUS < 0 || math.IsNaN(r.StartUS) {
		return errors.New("trace: negative start time")
	}
	if r.DurationUS <= 0 || math.IsNaN(r.DurationUS) {
		return errors.New("trace: non-positive duration")
	}
	if r.Process == "" {
		return errors.New("trace: empty process label")
	}
	return nil
}

// SortByTime orders records by start time (stable).
func SortByTime(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].StartUS < recs[j].StartUS })
}

// WriteText writes records in the line-oriented text format:
//
//	# rocc-trace v1
//	<start_us> <pid> <process> <resource> <duration_us>
func WriteText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# rocc-trace v1"); err != nil {
		return err
	}
	for i, r := range recs {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		if strings.ContainsAny(r.Process, " \t\n") {
			return fmt.Errorf("record %d: process label %q contains whitespace", i, r.Process)
		}
		if _, err := fmt.Fprintf(bw, "%.3f %d %s %s %.3f\n",
			r.StartUS, r.PID, r.Process, r.Resource, r.DurationUS); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format, reporting the line number of any error.
func ReadText(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", line, len(fields))
		}
		start, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad start time: %w", line, err)
		}
		pid, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad pid: %w", line, err)
		}
		res, err := ParseResource(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		dur, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad duration: %w", line, err)
		}
		rec := Record{StartUS: start, PID: pid, Process: fields[2], Resource: res, DurationUS: dur}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// binaryMagic identifies the binary trace format.
var binaryMagic = [4]byte{'R', 'T', 'R', '1'}

// WriteBinary writes records in a compact little-endian binary format:
// magic, a string table of process labels, then fixed-size record entries.
func WriteBinary(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	// Build the label table.
	labels := make([]string, 0, 8)
	index := make(map[string]uint32)
	for _, r := range recs {
		if _, ok := index[r.Process]; !ok {
			index[r.Process] = uint32(len(labels))
			labels = append(labels, r.Process)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(labels))); err != nil {
		return err
	}
	for _, l := range labels {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(l))); err != nil {
			return err
		}
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(recs))); err != nil {
		return err
	}
	for i, r := range recs {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		entry := struct {
			Start, Dur float64
			PID        int64
			Label      uint32
			Resource   uint32
		}{r.StartUS, r.DurationUS, int64(r.PID), index[r.Process], uint32(r.Resource)}
		if err := binary.Write(bw, binary.LittleEndian, entry); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary trace format.
func ReadBinary(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, errors.New("trace: bad magic (not a rocc binary trace)")
	}
	var nLabels uint32
	if err := binary.Read(br, binary.LittleEndian, &nLabels); err != nil {
		return nil, err
	}
	if nLabels > 1<<20 {
		return nil, errors.New("trace: implausible label count")
	}
	labels := make([]string, nLabels)
	for i := range labels {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > 1<<16 {
			return nil, errors.New("trace: implausible label length")
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		labels[i] = string(buf)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count > 1<<32 {
		return nil, errors.New("trace: implausible record count")
	}
	// Never pre-allocate from an untrusted count: a short file with a huge
	// header would otherwise exhaust memory before the read fails.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	recs := make([]Record, 0, capHint)
	for i := uint64(0); i < count; i++ {
		var entry struct {
			Start, Dur float64
			PID        int64
			Label      uint32
			Resource   uint32
		}
		if err := binary.Read(br, binary.LittleEndian, &entry); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if entry.Label >= nLabels {
			return nil, fmt.Errorf("trace: record %d: label index out of range", i)
		}
		recs = append(recs, Record{
			StartUS:    entry.Start,
			DurationUS: entry.Dur,
			PID:        int(entry.PID),
			Process:    labels[entry.Label],
			Resource:   Resource(entry.Resource),
		})
	}
	return recs, nil
}
