package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rocc/internal/rng"
)

func sampleRecords() []Record {
	return []Record{
		{StartUS: 0, PID: 100, Process: ProcApplication, Resource: CPU, DurationUS: 2213.5},
		{StartUS: 2213.5, PID: 100, Process: ProcApplication, Resource: Network, DurationUS: 223},
		{StartUS: 2436.5, PID: 200, Process: ProcPd, Resource: CPU, DurationUS: 267},
		{StartUS: 2703.5, PID: 200, Process: ProcPd, Resource: Network, DurationUS: 71},
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	if err := WriteText(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n100.0 1 application cpu 50.0\n# trailing comment\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].DurationUS != 50 {
		t.Fatalf("%+v", got)
	}
}

func TestTextParseErrors(t *testing.T) {
	cases := []string{
		"1 2 3\n",                  // wrong field count
		"x 1 application cpu 5\n",  // bad start
		"1 y application cpu 5\n",  // bad pid
		"1 1 application disk 5\n", // bad resource
		"1 1 application cpu z\n",  // bad duration
		"1 1 application cpu -5\n", // invalid record
		"-1 1 application cpu 5\n", // negative start
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error for %q should cite line 1: %v", c, err)
		}
	}
}

func TestWriteTextRejectsBadRecords(t *testing.T) {
	if err := WriteText(&bytes.Buffer{}, []Record{{DurationUS: -1, Process: "x"}}); err == nil {
		t.Fatal("invalid record should fail")
	}
	if err := WriteText(&bytes.Buffer{}, []Record{{StartUS: 0, DurationUS: 1, Process: "two words"}}); err == nil {
		t.Fatal("whitespace in label should fail")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)-8])); err == nil {
		t.Fatal("truncated trace should fail")
	}
}

// Property: both codecs round-trip arbitrary well-formed records.
func TestQuickCodecsRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		labels := []string{ProcApplication, ProcPd, ProcPvmd, ProcOther, ProcParadyn}
		recs := make([]Record, int(n)%50+1)
		for i := range recs {
			recs[i] = Record{
				StartUS:    r.Float64() * 1e6,
				PID:        r.Intn(1000),
				Process:    labels[r.Intn(len(labels))],
				Resource:   Resource(r.Intn(2)),
				DurationUS: r.Float64()*1e4 + 0.001,
			}
		}
		var tb, bb bytes.Buffer
		if WriteBinary(&bb, recs) != nil {
			return false
		}
		gotB, err := ReadBinary(&bb)
		if err != nil || len(gotB) != len(recs) {
			return false
		}
		for i := range recs {
			if gotB[i] != recs[i] {
				return false
			}
		}
		// Text rounds to 3 decimals; compare with tolerance.
		if WriteText(&tb, recs) != nil {
			return false
		}
		gotT, err := ReadText(&tb)
		if err != nil || len(gotT) != len(recs) {
			return false
		}
		for i := range recs {
			if math.Abs(gotT[i].StartUS-recs[i].StartUS) > 0.001 ||
				math.Abs(gotT[i].DurationUS-recs[i].DurationUS) > 0.001 ||
				gotT[i].PID != recs[i].PID || gotT[i].Process != recs[i].Process {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateProducesAllClasses(t *testing.T) {
	recs, err := Generate(GenConfig{Seed: 1, DurationUS: 10e6, IncludeMainTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]map[Resource]int{}
	for _, r := range recs {
		if r.Validate() != nil {
			t.Fatalf("invalid generated record: %+v", r)
		}
		if seen[r.Process] == nil {
			seen[r.Process] = map[Resource]int{}
		}
		seen[r.Process][r.Resource]++
	}
	for _, class := range []string{ProcApplication, ProcPd, ProcPvmd, ProcOther, ProcParadyn} {
		if seen[class][CPU] == 0 {
			t.Errorf("no CPU records for %s", class)
		}
	}
	// Sorted by time.
	for i := 1; i < len(recs); i++ {
		if recs[i].StartUS < recs[i-1].StartUS {
			t.Fatal("records not sorted")
		}
	}
	// Pd records paced by the sampling period: ~250 collect bursts in 10 s
	// at 40 ms.
	if n := seen[ProcPd][CPU]; n < 245 || n > 250 {
		t.Fatalf("pd CPU bursts %d, want ~249", n)
	}
}

func TestGenerateMatchesTable1Means(t *testing.T) {
	recs, err := Generate(GenConfig{Seed: 7, DurationUS: 200e6})
	if err != nil {
		t.Fatal(err)
	}
	var appCPU []float64
	for _, r := range recs {
		if r.Process == ProcApplication && r.Resource == CPU {
			appCPU = append(appCPU, r.DurationUS)
		}
	}
	if len(appCPU) < 1000 {
		t.Fatalf("only %d app CPU records", len(appCPU))
	}
	mean := 0.0
	for _, v := range appCPU {
		mean += v
	}
	mean /= float64(len(appCPU))
	if math.Abs(mean-2213)/2213 > 0.1 {
		t.Fatalf("app CPU mean %v, want ~2213 (Table 1)", mean)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{Seed: 1}); err == nil {
		t.Fatal("zero duration should fail")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, _ := Generate(GenConfig{Seed: 3, DurationUS: 1e6})
	b, _ := Generate(GenConfig{Seed: 3, DurationUS: 1e6})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("records differ")
		}
	}
}

func TestResourceStrings(t *testing.T) {
	if CPU.String() != "cpu" || Network.String() != "net" {
		t.Fatal("strings")
	}
	if Resource(5).String() == "" {
		t.Fatal("unknown resource")
	}
	if _, err := ParseResource("bogus"); err == nil {
		t.Fatal("parse should fail")
	}
}
