package des

import (
	"sort"
	"testing"
	"testing/quick"

	"rocc/internal/rng"
)

func TestScheduleOrder(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dispatch order %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock %v, want 30", s.Now())
	}
	if s.Dispatched != 3 {
		t.Fatalf("dispatched %d", s.Dispatched)
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	for _, cal := range []Calendar{NewHeapCalendar(), NewListCalendar(), NewBucketCalendar()} {
		s := NewWithCalendar(cal)
		var got []int
		for i := 0; i < 10; i++ {
			i := i
			s.Schedule(5, func() { got = append(got, i) })
		}
		s.RunAll()
		for i, v := range got {
			if v != i {
				t.Fatalf("%T: equal-time events out of FIFO order: %v", cal, got)
			}
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(10, func() { fired = true })
	s.Schedule(5, func() { e.Cancel() })
	s.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() false after Cancel")
	}
	if s.Dispatched != 1 {
		t.Fatalf("dispatched %d, want 1", s.Dispatched)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var got []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		s.Schedule(d, func() { got = append(got, d) })
	}
	s.Run(12)
	if len(got) != 2 || s.Now() != 12 {
		t.Fatalf("after Run(12): events %v, now %v", got, s.Now())
	}
	// Event exactly at the horizon is dispatched.
	s.Run(15)
	if len(got) != 3 || got[2] != 15 {
		t.Fatalf("boundary event not dispatched: %v", got)
	}
	s.Run(100)
	if len(got) != 4 || s.Now() != 100 {
		t.Fatalf("final: events %v, now %v", got, s.Now())
	}
}

func TestScheduleDuringDispatch(t *testing.T) {
	s := New()
	var got []Time
	s.Schedule(10, func() {
		got = append(got, s.Now())
		s.Schedule(0, func() { got = append(got, s.Now()) }) // same-time follow-on
		s.Schedule(5, func() { got = append(got, s.Now()) })
	})
	s.RunAll()
	want := []Time{10, 10, 15}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPanicsOnBadSchedules(t *testing.T) {
	s := New()
	mustPanic(t, "negative delay", func() { s.Schedule(-1, func() {}) })
	s.Schedule(10, func() {})
	s.RunAll()
	mustPanic(t, "past At", func() { s.At(5, func() {}) })
	mustPanic(t, "past Run", func() { s.Run(5) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestStepEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty calendar returned true")
	}
	if s.Pending() != 0 {
		t.Fatal("Pending != 0")
	}
}

// Both calendar implementations must produce identical dispatch sequences
// on random workloads (the event-queue ablation must not change results).
func TestCalendarEquivalence(t *testing.T) {
	run := func(cal Calendar) []Time {
		s := NewWithCalendar(cal)
		r := rng.New(77)
		var got []Time
		var rec func()
		count := 0
		rec = func() {
			got = append(got, s.Now())
			count++
			if count < 500 {
				s.Schedule(r.Exp(100), rec)
				if r.Bernoulli(0.3) {
					s.Schedule(r.Exp(50), rec)
					count++ // keep total bounded
				}
			}
		}
		s.Schedule(0, rec)
		s.Run(1e6)
		return got
	}
	a := run(NewHeapCalendar())
	for _, other := range []Calendar{NewListCalendar(), NewBucketCalendar()} {
		b := run(other)
		if len(a) != len(b) {
			t.Fatalf("%T: dispatch counts differ: %d vs %d", other, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%T: dispatch %d differs: %v vs %v", other, i, a[i], b[i])
			}
		}
	}
}

// Property: events always come out of either calendar in sorted time order.
func TestQuickCalendarsSorted(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n)%200 + 1
		for _, mk := range []func() Calendar{
			func() Calendar { return NewHeapCalendar() },
			func() Calendar { return NewListCalendar() },
			func() Calendar { return NewBucketCalendar() },
		} {
			cal := mk()
			r := rng.New(seed)
			times := make([]Time, count)
			for i := range times {
				times[i] = r.Float64() * 1000
				cal.Push(&Event{time: times[i], seq: uint64(i), index: -1})
			}
			sort.Float64s(times)
			for i := 0; i < count; i++ {
				e := cal.Pop()
				if e == nil || e.time != times[i] {
					return false
				}
			}
			if cal.Pop() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved push/pop keeps the heap consistent.
func TestQuickHeapInterleaved(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		h := NewHeapCalendar()
		last := Time(-1)
		live := 0
		var seq uint64
		for op := 0; op < 500; op++ {
			if live == 0 || r.Bernoulli(0.6) {
				tm := last
				if tm < 0 {
					tm = 0
				}
				h.Push(&Event{time: tm + r.Float64()*100, seq: seq, index: -1})
				seq++
				live++
			} else {
				e := h.Pop()
				if e == nil || e.time < last {
					return false
				}
				last = e.time
				live--
			}
		}
		return h.Len() == live
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func benchCalendar(b *testing.B, mk func() Calendar) {
	r := rng.New(1)
	s := NewWithCalendar(mk())
	// Self-rescheduling event population of ~1000 concurrent timers.
	for i := 0; i < 1000; i++ {
		var rec func()
		rec = func() { s.Schedule(r.Exp(100), rec) }
		s.Schedule(r.Exp(100), rec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkHeapCalendar(b *testing.B) {
	benchCalendar(b, func() Calendar { return NewHeapCalendar() })
}
func BenchmarkListCalendar(b *testing.B) {
	benchCalendar(b, func() Calendar { return NewListCalendar() })
}
func BenchmarkBucketCalendar(b *testing.B) {
	benchCalendar(b, func() Calendar { return NewBucketCalendar() })
}

// The bucket calendar must uphold the same steady-state zero-alloc
// guarantee as the heap: once bucket storage has warmed up, Push/Pop
// recycle backing arrays instead of allocating.
func TestBucketSteadyStateDoesNotAllocate(t *testing.T) {
	s := NewWithCalendar(NewBucketCalendar())
	r := rng.New(9)
	for i := 0; i < 256; i++ {
		var rec func()
		rec = func() { s.Schedule(r.Exp(100), rec) }
		s.Schedule(r.Exp(100), rec)
	}
	// Warm up: let resizes settle and bucket capacity grow.
	for i := 0; i < 10000; i++ {
		s.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.Step()
	})
	if allocs > 0 {
		t.Fatalf("steady-state bucket Step allocated %.2f objects per event", allocs)
	}
}

// Regression (cancellation hygiene): canceling an event that has already
// fired must be a no-op that leaves the event marked fired (not canceled)
// and must not leave a stale heap index behind; canceling twice must be
// idempotent. Exercised on both Calendar implementations.
func TestCancelAfterFireAndCancelTwice(t *testing.T) {
	for _, mk := range []func() Calendar{
		func() Calendar { return NewHeapCalendar() },
		func() Calendar { return NewListCalendar() },
		func() Calendar { return NewBucketCalendar() },
	} {
		cal := mk()
		s := NewWithCalendar(cal)
		fired := 0
		e := s.Schedule(10, func() { fired++ })
		s.RunAll()
		if fired != 1 || !e.Fired() {
			t.Fatalf("%T: event did not fire exactly once", cal)
		}
		e.Cancel() // cancel-after-fire: no-op
		if e.Canceled() {
			t.Fatalf("%T: cancel-after-fire marked the event canceled", cal)
		}
		if e.index != -1 {
			t.Fatalf("%T: fired event kept stale heap index %d", cal, e.index)
		}

		e2 := s.Schedule(5, func() { fired += 10 })
		e2.Cancel()
		e2.Cancel() // cancel-twice: idempotent
		if !e2.Canceled() {
			t.Fatalf("%T: cancel-twice lost the canceled state", cal)
		}
		s.RunAll()
		if fired != 1 || e2.Fired() {
			t.Fatalf("%T: canceled event fired (count %d)", cal, fired)
		}
		if e2.index != -1 {
			t.Fatalf("%T: discarded canceled event kept heap index %d", cal, e2.index)
		}
	}
}

// Regression (clock semantics at the Run horizon): a canceled event at
// the head of the calendar that lies past `until` must not advance the
// clock beyond `until` — it stays queued for a later Run call and is
// discarded only when the horizon reaches it. A canceled event exactly at
// the horizon is discarded without dispatching.
func TestRunBoundaryWithCanceledHead(t *testing.T) {
	for _, mk := range []func() Calendar{
		func() Calendar { return NewHeapCalendar() },
		func() Calendar { return NewListCalendar() },
		func() Calendar { return NewBucketCalendar() },
	} {
		s := NewWithCalendar(mk())
		fired := 0
		past := s.Schedule(20, func() { fired++ }) // head event beyond the horizon
		past.Cancel()
		s.Run(10)
		if s.Now() != 10 {
			t.Fatalf("%T: canceled head past horizon moved clock to %v, want 10", s.cal, s.Now())
		}
		if s.Pending() != 1 {
			t.Fatalf("%T: canceled head past horizon was discarded early (pending %d)", s.cal, s.Pending())
		}

		at := s.Schedule(5, func() { fired++ }) // t = 15: exactly at the next horizon
		at.Cancel()
		s.Run(15)
		if s.Now() != 15 || fired != 0 {
			t.Fatalf("%T: canceled event at horizon: now %v fired %d", s.cal, s.Now(), fired)
		}
		if s.Pending() != 1 { // only the canceled t=20 event remains
			t.Fatalf("%T: canceled event at horizon not discarded (pending %d)", s.cal, s.Pending())
		}
		if s.Dispatched != 0 {
			t.Fatalf("%T: canceled events counted as dispatched", s.cal)
		}

		s.Run(30) // horizon passes the canceled t=20 event: discard, clock at 30
		if s.Now() != 30 || s.Pending() != 0 || fired != 0 {
			t.Fatalf("%T: final state now=%v pending=%d fired=%d", s.cal, s.Now(), s.Pending(), fired)
		}
	}
}

// The free list must recycle spent events: steady-state scheduling reuses
// the same structs instead of allocating, and a recycled event carries
// none of its previous incarnation's state.
func TestEventRecycling(t *testing.T) {
	s := New()
	e1 := s.Schedule(1, func() {})
	s.RunAll()
	e2 := s.Schedule(1, func() {})
	if e1 != e2 {
		t.Fatal("fired event was not recycled by the next Schedule")
	}
	if e2.Fired() || e2.Canceled() || e2.Time() != s.Now()+1 {
		t.Fatalf("recycled event carries stale state: fired=%v canceled=%v t=%v",
			e2.Fired(), e2.Canceled(), e2.Time())
	}
	e2.Cancel()
	s.RunAll()
	e3 := s.Schedule(2, func() {})
	if e3 != e2 {
		t.Fatal("discarded canceled event was not recycled")
	}
	if e3.Canceled() {
		t.Fatal("recycled event inherited the canceled flag")
	}
	s.RunAll()
}

// Steady-state self-rescheduling workloads must not allocate events: the
// free list turns the per-event allocation into reuse.
func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	s := New()
	var rec func()
	n := 0
	rec = func() {
		n++
		if n < 100 {
			s.Schedule(1, rec)
		}
	}
	s.Schedule(1, rec)
	allocs := testing.AllocsPerRun(10, func() {
		s.Step()
	})
	if allocs > 0 {
		t.Fatalf("steady-state Step allocated %.1f objects per event", allocs)
	}
}

// A fired event releases its callback closure so retained *Event handles
// (e.g. a daemon's flush timer) cannot pin captured state.
func TestFiredEventReleasesClosure(t *testing.T) {
	s := New()
	e := s.Schedule(1, func() {})
	s.RunAll()
	if e.fn != nil {
		t.Fatal("fired event retained its closure")
	}
	c := s.Schedule(1, func() {})
	c.Cancel()
	s.RunAll()
	if c.fn != nil {
		t.Fatal("discarded canceled event retained its closure")
	}
}

// countingObserver records dispatch notifications for the observer tests.
type countingObserver struct {
	events  int
	lastT   Time
	pending []int
}

func (o *countingObserver) EventDispatched(t Time, pending int) {
	o.events++
	o.lastT = t
	o.pending = append(o.pending, pending)
}

// An attached observer sees every executed event — from both Step and Run
// — with the dispatch-time clock, and never sees canceled events.
func TestObserverSeesDispatches(t *testing.T) {
	s := New()
	obs := &countingObserver{}
	s.Obs = obs
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	canceled := s.Schedule(3, func() {})
	canceled.Cancel()
	s.Schedule(4, func() {})

	s.Step()
	if obs.events != 1 || obs.lastT != 1 {
		t.Fatalf("after Step: events=%d lastT=%v, want 1 at t=1", obs.events, obs.lastT)
	}
	s.Run(10)
	if obs.events != 3 {
		t.Fatalf("observer saw %d events, want 3 (canceled one skipped)", obs.events)
	}
	if obs.lastT != 4 {
		t.Fatalf("last dispatch at t=%v, want 4", obs.lastT)
	}
	if int(s.Dispatched) != obs.events {
		t.Fatalf("observer count %d != Dispatched %d", obs.events, s.Dispatched)
	}
	// pending reflects the calendar after each dispatch, ending empty.
	if obs.pending[len(obs.pending)-1] != 0 {
		t.Fatalf("final pending %d, want 0", obs.pending[len(obs.pending)-1])
	}
}

// The steady-state zero-alloc guarantee (PR 2's free-list baseline) must
// hold with the observer hook compiled in but not attached.
func TestSteadyStateNilObserverDoesNotAllocate(t *testing.T) {
	s := New()
	var rec func()
	rec = func() { s.Schedule(1, rec) }
	s.Schedule(1, rec)
	allocs := testing.AllocsPerRun(100, func() {
		s.Step()
	})
	if allocs > 0 {
		t.Fatalf("nil-observer Step allocated %.1f objects per event", allocs)
	}
}

// benchStep measures the dispatch hot path of a self-rescheduling
// workload; the nil/attached pair quantifies the observer hook's cost.
func benchStep(b *testing.B, obs Observer) {
	s := New()
	s.Obs = obs
	var rec func()
	rec = func() { s.Schedule(1, rec) }
	s.Schedule(1, rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// tallyObserver is the cheapest possible attached observer, so the
// attached benchmark measures hook dispatch, not observer work.
type tallyObserver struct{ n uint64 }

func (o *tallyObserver) EventDispatched(t Time, pending int) { o.n++ }

// BenchmarkStepNilObserver is the zero-overhead-when-disabled proof: it
// must report 0 allocs/op and ns/op indistinguishable from the PR 2
// baseline (the hook adds one predicted-not-taken branch).
func BenchmarkStepNilObserver(b *testing.B)      { benchStep(b, nil) }
func BenchmarkStepAttachedObserver(b *testing.B) { benchStep(b, &tallyObserver{}) }
