package des

// HeapCalendar is a binary min-heap future event list keyed on (time, seq).
// It is the default calendar: O(log n) push/pop.
type HeapCalendar struct {
	events []*Event
}

// NewHeapCalendar returns an empty heap calendar.
func NewHeapCalendar() *HeapCalendar { return &HeapCalendar{} }

// Len implements Calendar.
func (h *HeapCalendar) Len() int { return len(h.events) }

// Peek implements Calendar: the next event without removing it.
func (h *HeapCalendar) Peek() *Event {
	if len(h.events) == 0 {
		return nil
	}
	return h.events[0]
}

func (h *HeapCalendar) less(i, j int) bool {
	a, b := h.events[i], h.events[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (h *HeapCalendar) swap(i, j int) {
	h.events[i], h.events[j] = h.events[j], h.events[i]
	h.events[i].index = i
	h.events[j].index = j
}

// Push implements Calendar.
func (h *HeapCalendar) Push(e *Event) {
	e.index = len(h.events)
	h.events = append(h.events, e)
	h.up(e.index)
}

// Pop implements Calendar.
func (h *HeapCalendar) Pop() *Event {
	if len(h.events) == 0 {
		return nil
	}
	top := h.events[0]
	last := len(h.events) - 1
	h.swap(0, last)
	h.events[last] = nil
	h.events = h.events[:last]
	if last > 0 {
		h.down(0)
	}
	top.index = -1
	return top
}

func (h *HeapCalendar) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *HeapCalendar) down(i int) {
	n := len(h.events)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// ListCalendar is a sorted doubly-linked-list future event list: O(n)
// insertion scanning from the tail (fast for mostly-increasing schedules),
// O(1) pop. Retained for the event-queue ablation study
// (BenchmarkAblationEventQueue); the heap wins on the ROCC workloads.
type ListCalendar struct {
	head, tail *listNode
	n          int
}

type listNode struct {
	e          *Event
	prev, next *listNode
}

// NewListCalendar returns an empty list calendar.
func NewListCalendar() *ListCalendar { return &ListCalendar{} }

// Len implements Calendar.
func (l *ListCalendar) Len() int { return l.n }

// Peek implements Calendar: the next event without removing it.
func (l *ListCalendar) Peek() *Event {
	if l.head == nil {
		return nil
	}
	return l.head.e
}

// Push implements Calendar.
func (l *ListCalendar) Push(e *Event) {
	node := &listNode{e: e}
	l.n++
	if l.tail == nil {
		l.head, l.tail = node, node
		return
	}
	// Scan backward for the insertion point: stable for equal times because
	// new events (higher seq) go after existing ones.
	cur := l.tail
	for cur != nil && after(cur.e, e) {
		cur = cur.prev
	}
	if cur == nil { // new head
		node.next = l.head
		l.head.prev = node
		l.head = node
		return
	}
	node.prev = cur
	node.next = cur.next
	if cur.next != nil {
		cur.next.prev = node
	} else {
		l.tail = node
	}
	cur.next = node
}

// after reports whether a sorts after b in (time, seq) order.
func after(a, b *Event) bool {
	if a.time != b.time {
		return a.time > b.time
	}
	return a.seq > b.seq
}

// Pop implements Calendar.
func (l *ListCalendar) Pop() *Event {
	if l.head == nil {
		return nil
	}
	node := l.head
	l.head = node.next
	if l.head != nil {
		l.head.prev = nil
	} else {
		l.tail = nil
	}
	l.n--
	node.e.index = -1
	return node.e
}
