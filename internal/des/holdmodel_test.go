package des

import (
	"fmt"
	"testing"

	"rocc/internal/rng"
)

// Hold-model calendar microbenchmarks (the classic event-list evaluation
// methodology, and the BenchmarkAblationEventQueue companion at controlled
// populations): keep a fixed population of n pending events and repeatedly
// pop the minimum and re-push it at popped.time + hold, with the hold time
// drawn from a distribution. Steady-state Push/Pop cost is isolated from
// model work, so these are what calibrate NewCalendarFor's
// autoBucketMinPending threshold. CI runs them in smoke mode
// (-benchtime=1x) to keep them compiling and crash-free; real comparisons
// want -benchtime=1s or more.
//
// Distributions:
//   - exponential: memoryless holds, the textbook case (uniform spread)
//   - bimodal: 90% short / 10% 100x-longer holds — clusters the near
//     future while a heavy tail stretches the year, stressing the bucket
//     width compromise
//   - burst: 95% near-zero holds with rare large jumps — many events pile
//     into the current bucket, stressing within-bucket insertion order
type holdDist struct {
	name string
	draw func(r *rng.Stream) float64
}

func holdDists() []holdDist {
	return []holdDist{
		{"exp", func(r *rng.Stream) float64 { return r.Exp(100) }},
		{"bimodal", func(r *rng.Stream) float64 {
			if r.Bernoulli(0.1) {
				return r.Exp(10000)
			}
			return r.Exp(100)
		}},
		{"burst", func(r *rng.Stream) float64 {
			if r.Bernoulli(0.05) {
				return r.Exp(5000)
			}
			return r.Exp(1)
		}},
	}
}

func benchHold(b *testing.B, mk func() Calendar, d holdDist, n int) {
	cal := mk()
	r := rng.New(7)
	var seq uint64
	for i := 0; i < n; i++ {
		cal.Push(&Event{time: d.draw(r), seq: seq, index: -1})
		seq++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := cal.Pop()
		e.time += d.draw(r)
		e.seq = seq
		seq++
		cal.Push(e)
	}
}

// BenchmarkHoldModel sweeps distribution x population x calendar. The
// sorted list is only run at the smallest population: its O(n) insert makes
// larger populations take hours, and the ablation point (it loses) is
// already made at 1e3.
func BenchmarkHoldModel(b *testing.B) {
	cals := []struct {
		name string
		mk   func() Calendar
		maxN int
	}{
		{"heap", func() Calendar { return NewHeapCalendar() }, 1 << 62},
		{"bucket", func() Calendar { return NewBucketCalendar() }, 1 << 62},
		{"list", func() Calendar { return NewListCalendar() }, 1000},
	}
	for _, d := range holdDists() {
		for _, n := range []int{1000, 100000, 1000000} {
			for _, c := range cals {
				if n > c.maxN {
					continue
				}
				b.Run(fmt.Sprintf("%s/n=%d/%s", d.name, n, c.name), func(b *testing.B) {
					benchHold(b, c.mk, d, n)
				})
			}
		}
	}
}
