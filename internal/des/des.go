// Package des is a deterministic discrete-event simulation engine using the
// classic event-scheduling world view. The ROCC model of the Paradyn
// instrumentation system executes on top of it: resources and processes
// schedule callbacks on a future event list, and the simulator dispatches
// them in non-decreasing time order.
//
// Time is a float64 in microseconds, matching the units of the workload
// characterization in Table 2 of the paper. Events at equal times are
// dispatched in scheduling order (FIFO), which keeps runs exactly
// reproducible for a fixed seed.
package des

import "math"

// Time is simulated time in microseconds.
type Time = float64

// Event is a scheduled callback. It can be canceled before it fires.
//
// Recycling contract: once an event has fired, or has been discarded by
// the dispatch loop after cancellation, the simulator may reuse the Event
// for a later Schedule/At call (a per-simulator free list keeps the hot
// path allocation-free). Holders must therefore drop or overwrite a
// retained *Event as soon as it fires or as soon as they cancel it —
// exactly the hygiene the model already practices (a daemon's flush timer
// is nil'd in its own callback and after Cancel; a link's retransmission
// timer is replaced inside its timeout). Querying or canceling a handle
// kept beyond that point may observe an unrelated, recycled event.
type Event struct {
	time     Time
	seq      uint64
	fn       func()
	canceled bool
	fired    bool
	index    int   // heap index; -1 when not queued
	bslot    int64 // virtual bucket index while queued in a BucketCalendar
}

// Time returns the simulated time at which the event fires.
func (e *Event) Time() Time { return e.time }

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired is a no-op that leaves the event marked fired, not
// canceled, so Canceled/Fired stay an accurate record of what happened;
// canceling twice is likewise a no-op.
func (e *Event) Cancel() {
	if e.fired {
		return
	}
	e.canceled = true
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

// Fired reports whether the event's callback has run.
func (e *Event) Fired() bool { return e.fired }

// Calendar is a future event list. Three implementations are provided: a
// binary heap (the New default), a calendar queue (BucketCalendar, the
// O(1)-amortized choice NewCalendarFor makes for non-trivial populations),
// and a sorted doubly-linked list (kept for the event-queue ablation
// benchmark). All three pop in identical (time, seq) order.
type Calendar interface {
	Push(*Event)
	Pop() *Event  // next event in (time, seq) order, nil when empty
	Peek() *Event // next event without removing it, nil when empty
	Len() int
}

// Observer receives engine-level notifications. Implementations must not
// schedule, cancel, or otherwise touch the simulator from the callback —
// observers watch the run, they don't steer it.
type Observer interface {
	// EventDispatched fires after each executed (non-canceled) event with
	// the event's time and the remaining calendar length.
	EventDispatched(t Time, pending int)
}

// Simulator owns the simulation clock and the future event list.
type Simulator struct {
	now Time
	cal Calendar
	seq uint64

	// free recycles fired and discarded-canceled events so steady-state
	// scheduling allocates nothing (see the Event recycling contract).
	free []*Event

	// Dispatched counts events actually executed (not canceled ones).
	Dispatched uint64

	// Obs, when non-nil, observes the dispatch loop. The nil check is the
	// whole disabled-path cost (see BenchmarkStepNilObserver).
	Obs Observer
}

// maxFree caps the free list so a burst of in-flight events cannot pin
// memory for the rest of a run.
const maxFree = 4096

// New returns a simulator with a heap calendar, clock at zero.
func New() *Simulator { return NewWithCalendar(NewHeapCalendar()) }

// NewWithCalendar returns a simulator using the supplied event calendar.
func NewWithCalendar(c Calendar) *Simulator { return &Simulator{cal: c} }

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of events in the future event list, including
// canceled events not yet discarded.
func (s *Simulator) Pending() int { return s.cal.Len() }

// Schedule queues fn to run delay microseconds from now. Negative delays
// panic: the ROCC model never schedules into the past, so a negative delay
// is a model bug worth failing loudly on.
func (s *Simulator) Schedule(delay Time, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic("des: negative or NaN delay")
	}
	return s.At(s.now+delay, fn)
}

// At queues fn to run at absolute time t >= Now(). The Event returned may
// be a recycled one (see the Event recycling contract).
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now || math.IsNaN(t) {
		panic("des: scheduling into the past")
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*e = Event{time: t, seq: s.seq, fn: fn, index: -1}
	} else {
		e = &Event{time: t, seq: s.seq, fn: fn, index: -1}
	}
	s.seq++
	s.cal.Push(e)
	return e
}

// release returns a spent event (fired, or canceled and discarded) to the
// free list. The closure is severed here for canceled events; fire already
// severed it for dispatched ones.
func (s *Simulator) release(e *Event) {
	e.fn = nil
	if len(s.free) < maxFree {
		s.free = append(s.free, e)
	}
}

// Step dispatches the next event. It returns false when the calendar is
// empty. Canceled events are discarded without advancing Dispatched, but do
// advance the clock to their timestamp (harmless: a later real event can
// only be at an equal or later time).
func (s *Simulator) Step() bool {
	for {
		e := s.cal.Pop()
		if e == nil {
			return false
		}
		if e.time < s.now {
			panic("des: calendar returned an event from the past")
		}
		s.now = e.time
		if e.canceled {
			s.release(e)
			continue
		}
		s.Dispatched++
		s.fire(e)
		s.release(e)
		if s.Obs != nil {
			s.Obs.EventDispatched(s.now, s.cal.Len())
		}
		return true
	}
}

// fire runs an event's callback exactly once, marking it fired and
// releasing the closure so a retained *Event cannot pin captured state or
// carry a stale heap index.
func (s *Simulator) fire(e *Event) {
	e.fired = true
	e.index = -1
	fn := e.fn
	e.fn = nil
	fn()
}

// Run dispatches events until the calendar is empty or the next event is
// after until; the clock finishes exactly at until and never exceeds it,
// even when the head of the calendar is a canceled event past the horizon
// (such events stay queued for a later Run call). Events scheduled at
// time == until are dispatched. Peek keeps the horizon check off the
// Pop/Push round-trip the old implementation paid at every Run boundary.
func (s *Simulator) Run(until Time) {
	if until < s.now {
		panic("des: Run target before current time")
	}
	for {
		e := s.cal.Peek()
		if e == nil || e.time > until {
			break
		}
		s.cal.Pop()
		s.now = e.time
		if e.canceled {
			s.release(e)
			continue
		}
		s.Dispatched++
		s.fire(e)
		s.release(e)
		if s.Obs != nil {
			s.Obs.EventDispatched(s.now, s.cal.Len())
		}
	}
	s.now = until
}

// RunAll dispatches every remaining event.
func (s *Simulator) RunAll() {
	for s.Step() {
	}
}
