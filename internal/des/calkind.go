package des

import "fmt"

// CalendarKind names a future-event-list implementation. The zero value
// (CalendarAuto) lets NewCalendarFor pick from workload hints.
type CalendarKind int

const (
	// CalendarAuto selects heap or bucket from WorkloadHints.
	CalendarAuto CalendarKind = iota
	// CalendarHeap is the binary min-heap (O(log n) push/pop).
	CalendarHeap
	// CalendarBucket is the calendar queue (O(1) amortized push/pop).
	CalendarBucket
	// CalendarList is the sorted doubly-linked list (O(n) push), retained
	// for the event-queue ablation; never chosen automatically.
	CalendarList
)

// String implements fmt.Stringer with the names ParseCalendarKind accepts.
func (k CalendarKind) String() string {
	switch k {
	case CalendarAuto:
		return "auto"
	case CalendarHeap:
		return "heap"
	case CalendarBucket:
		return "bucket"
	case CalendarList:
		return "list"
	}
	return fmt.Sprintf("CalendarKind(%d)", int(k))
}

// ParseCalendarKind resolves a -calendar flag value. "cq" is accepted as a
// synonym for "bucket" (calendar queue).
func ParseCalendarKind(s string) (CalendarKind, error) {
	switch s {
	case "", "auto":
		return CalendarAuto, nil
	case "heap":
		return CalendarHeap, nil
	case "bucket", "cq":
		return CalendarBucket, nil
	case "list":
		return CalendarList, nil
	}
	return CalendarAuto, fmt.Errorf("des: unknown calendar %q (auto, heap, bucket, list)", s)
}

// WorkloadHints describes the schedule a calendar will carry, so Auto can
// pick the implementation that wins on that shape.
type WorkloadHints struct {
	// PendingEvents is the expected steady-state future-event-list size
	// (0 = unknown, treated as large).
	PendingEvents int
}

// autoBucketMinPending is the population below which Auto keeps the binary
// heap. Calibrated from the hold-model ablation (BenchmarkHoldModel): below
// ~40 pending events the heap's log factor is a few levels of hot cache
// lines and edges out the calendar queue's year-scan bookkeeping; the
// crossover sits at ≈40 and the bucket calendar's lead grows with
// population (exponential holds: ~1.3x at 10^2, ~1.7x at 10^3, ~2.7x at
// 10^6; bimodal and burst similar at scale, with burst the one shape where
// the heap keeps a lead until ~10^4 because near-zero holds pile events
// into the head bucket).
const autoBucketMinPending = 48

// NewCalendarFor returns a calendar of the requested kind, resolving
// CalendarAuto from the workload hints.
func NewCalendarFor(k CalendarKind, h WorkloadHints) Calendar {
	switch k {
	case CalendarHeap:
		return NewHeapCalendar()
	case CalendarBucket:
		return NewBucketCalendar()
	case CalendarList:
		return NewListCalendar()
	}
	if h.PendingEvents > 0 && h.PendingEvents < autoBucketMinPending {
		return NewHeapCalendar()
	}
	return NewBucketCalendar()
}
