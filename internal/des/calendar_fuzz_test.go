package des

import (
	"testing"

	"rocc/internal/rng"
)

// FuzzCalendarDifferential drives one Push/Pop/Cancel op sequence, decoded
// from the fuzz input, through HeapCalendar, ListCalendar, and
// BucketCalendar in lockstep, and asserts that at every step all three
// agree on Len() and pop the same (time, seq, canceled) event. Events are
// distinct structs per calendar (each implementation owns its queued
// events' index/bslot fields) but share time, seq, and cancellation fate.
//
// Op byte decoding (two bytes consumed per op):
//   - b%4 == 0..1 → Push at a time derived from the second byte (equal
//     times are common on purpose, to stress the seq tie-break; time can
//     also fall below earlier pushes, stressing the bucket scan pull-back)
//   - b%4 == 2    → Pop from all three, compare
//   - b%4 == 3    → Cancel a pending event picked by the second byte
//     (canceled events still flow through the calendars; the simulator,
//     not the calendar, discards them)
func FuzzCalendarDifferential(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 2, 0, 3, 0, 2, 0, 2, 0})
	f.Add([]byte{0, 1, 4, 1, 8, 1, 2, 0, 2, 0, 2, 0, 2, 0})
	seed := make([]byte, 0, 120)
	r := rng.New(4242)
	for i := 0; i < 60; i++ {
		seed = append(seed, byte(r.Intn(256)), byte(r.Intn(256)))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		cals := []Calendar{NewHeapCalendar(), NewListCalendar(), NewBucketCalendar()}
		// pending[k] holds the queued events of calendar k, same order
		// across calendars, so "cancel the j-th pending event" is the
		// same logical event everywhere.
		pending := make([][]*Event, len(cals))
		var seq uint64
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 4 {
			case 0, 1:
				tm := Time(arg%32) * 7.5 // coarse grid → frequent time collisions
				for k, c := range cals {
					e := &Event{time: tm, seq: seq, index: -1}
					c.Push(e)
					pending[k] = append(pending[k], e)
				}
				seq++
			case 2:
				var got *Event
				for k, c := range cals {
					e := c.Pop()
					if k == 0 {
						got = e
						continue
					}
					switch {
					case (e == nil) != (got == nil):
						t.Fatalf("op %d: %T popped %v, heap popped %v", i, c, e, got)
					case e != nil && (e.time != got.time || e.seq != got.seq || e.canceled != got.canceled):
						t.Fatalf("op %d: %T popped (t=%v seq=%d canceled=%v), heap popped (t=%v seq=%d canceled=%v)",
							i, c, e.time, e.seq, e.canceled, got.time, got.seq, got.canceled)
					}
				}
				if got != nil {
					for k := range pending {
						for j, e := range pending[k] {
							if e.seq == got.seq {
								pending[k] = append(pending[k][:j], pending[k][j+1:]...)
								break
							}
						}
					}
				}
			case 3:
				if n := len(pending[0]); n > 0 {
					j := int(arg) % n
					for k := range pending {
						pending[k][j].Cancel()
					}
				}
			}
			for k := 1; k < len(cals); k++ {
				if cals[k].Len() != cals[0].Len() {
					t.Fatalf("op %d: %T Len %d != heap Len %d", i, cals[k], cals[k].Len(), cals[0].Len())
				}
			}
		}
		// Drain: the remaining pop order must agree too.
		for {
			e0 := cals[0].Pop()
			for k := 1; k < len(cals); k++ {
				e := cals[k].Pop()
				if (e == nil) != (e0 == nil) {
					t.Fatalf("drain: %T popped %v, heap popped %v", cals[k], e, e0)
				}
				if e != nil && (e.time != e0.time || e.seq != e0.seq) {
					t.Fatalf("drain: %T popped (t=%v seq=%d), heap popped (t=%v seq=%d)",
						cals[k], e.time, e.seq, e0.time, e0.seq)
				}
			}
			if e0 == nil {
				return
			}
		}
	})
}
