package des

// BucketCalendar is a calendar-queue future event list (Brown 1988, the
// structure behind PARSIR-style O(1) schedulers): events hash into
// time-ordered buckets of width `width`, and the dequeue scan walks the
// buckets of the current "year" in order. Push and Pop are O(1) amortized —
// the self-resizing policy keeps the average bucket near one pending event —
// while the binary heap pays O(log n) per operation plus a cache-hostile
// sift on every mutation.
//
// The calendar preserves the engine's exact total order: events pop in
// strictly increasing (time, seq), byte-identical to HeapCalendar (proven by
// TestCalendarEquivalence, FuzzCalendarDifferential, and the core-level
// differential tests). Cancel semantics are untouched — cancellation is a
// flag the Simulator checks at dispatch; canceled events flow through the
// buckets like any other.
//
// Storage is recycled: buckets are slices whose backing arrays survive
// pops (elements are nil'd, length truncated), so steady-state Push/Pop
// allocates nothing once bucket capacity has warmed up — the same contract
// the Simulator's event free list provides for Event structs. A resize
// keeps the previous bucket array as a spare so grow/shrink oscillation
// does not thrash the allocator.
type BucketCalendar struct {
	buckets [][]*Event
	mask    int64   // len(buckets)-1; bucket count is a power of two
	width   float64 // microseconds of simulated time per bucket
	n       int

	// cur is the dequeue scan position as a *virtual* bucket index
	// (floor(time/width), not reduced modulo the bucket count). Invariant:
	// cur <= bslot(e) for every queued event e, maintained by pulling cur
	// back on Push. Using the integer virtual index for the qualification
	// test (head.bslot <= cur) instead of a float bucket-top comparison
	// removes any chance of rounding disagreement between the Push mapping
	// and the Pop window.
	cur int64

	// peeked caches the minimum event located by Peek so the Pop that
	// Simulator.Run issues right after costs O(1). Invalidated by resize
	// and by removal; a Push that beats the cached minimum replaces it
	// (the new event is necessarily its bucket's head).
	peeked *Event

	// spare retains the bucket array released by the last resize so the
	// next resize to that size reuses it instead of reallocating.
	spare [][]*Event
}

const (
	// minBucketCount is the smallest bucket array; small populations
	// shouldn't pay year-scan overhead over more than a handful of slots.
	minBucketCount = 16
	// initialBucketWidth (µs) only matters until the first resize
	// recalibrates from the observed event span; 256 µs suits the ROCC
	// model's sub-millisecond burst scale.
	initialBucketWidth = 256
	// minBucketWidth guards the virtual index against float blowup from a
	// degenerate gap estimate (sub-nanosecond at microsecond time units).
	minBucketWidth = 1e-9
	// widthSample is how many head events the resize samples to estimate
	// local event density (Brown's newwidth rule): the bucket width follows
	// the average gap near the head of the queue, not the global span, so a
	// far-future tail cannot widen buckets under a dense near-term cluster.
	widthSample = 32
)

// NewBucketCalendar returns an empty calendar queue.
func NewBucketCalendar() *BucketCalendar {
	return &BucketCalendar{
		buckets: make([][]*Event, minBucketCount),
		mask:    minBucketCount - 1,
		width:   initialBucketWidth,
	}
}

// Len implements Calendar.
func (c *BucketCalendar) Len() int { return c.n }

// eventAfter reports whether a sorts after b in (time, seq) order.
func eventAfter(a, b *Event) bool {
	if a.time != b.time {
		return a.time > b.time
	}
	return a.seq > b.seq
}

// Push implements Calendar.
func (c *BucketCalendar) Push(e *Event) {
	vb := int64(e.time / c.width)
	e.bslot = vb
	if c.n == 0 || vb < c.cur {
		// Keep the scan invariant (cur <= every queued bslot). An empty
		// calendar jumps forward too, so a sparse schedule doesn't force
		// the next Pop to scan from a long-gone year.
		c.cur = vb
	}
	c.insert(e)
	c.n++
	if c.peeked != nil && eventAfter(c.peeked, e) {
		c.peeked = e
	}
	if c.n > 2*len(c.buckets) {
		c.resize(2 * len(c.buckets))
	}
}

// insert places e into its bucket keeping (time, seq) order, scanning from
// the tail: schedules are mostly time-increasing, so the common case is a
// plain append.
func (c *BucketCalendar) insert(e *Event) {
	idx := e.bslot & c.mask
	b := append(c.buckets[idx], e)
	i := len(b) - 1
	for i > 0 && eventAfter(b[i-1], e) {
		b[i] = b[i-1]
		i--
	}
	b[i] = e
	c.buckets[idx] = b
}

// Peek implements Calendar: the next event without removing it.
func (c *BucketCalendar) Peek() *Event { return c.locateMin() }

// Pop implements Calendar.
func (c *BucketCalendar) Pop() *Event {
	e := c.locateMin()
	if e == nil {
		return nil
	}
	c.removeHead(e)
	return e
}

// locateMin finds (and caches) the earliest queued event. The year scan
// starts at cur and visits each bucket at most once; a bucket's head is its
// minimum, and the head qualifies when its virtual index has been reached.
// If a whole year turns up nothing the queue is sparse relative to the
// bucket width, so one direct O(buckets) search finds the minimum and the
// scan position jumps straight to it.
func (c *BucketCalendar) locateMin() *Event {
	if c.n == 0 {
		return nil
	}
	if c.peeked != nil {
		return c.peeked
	}
	for i := 0; i < len(c.buckets); i++ {
		b := c.buckets[c.cur&c.mask]
		if len(b) > 0 && b[0].bslot <= c.cur {
			c.peeked = b[0]
			return b[0]
		}
		c.cur++
	}
	var min *Event
	for _, b := range c.buckets {
		if len(b) > 0 && (min == nil || eventAfter(min, b[0])) {
			min = b[0]
		}
	}
	c.cur = min.bslot
	c.peeked = min
	return min
}

// removeHead detaches e, which locateMin guarantees is the head of its
// bucket. The vacated tail slot is nil'd so truncated bucket storage never
// pins recycled events.
func (c *BucketCalendar) removeHead(e *Event) {
	idx := e.bslot & c.mask
	b := c.buckets[idx]
	copy(b, b[1:])
	b[len(b)-1] = nil
	c.buckets[idx] = b[:len(b)-1]
	c.n--
	c.peeked = nil
	e.index = -1
	if len(c.buckets) > minBucketCount && c.n < len(c.buckets)/2 {
		c.resize(len(c.buckets) / 2)
	}
}

// resize rebuilds the calendar with nb buckets (a power of two) and a
// width recalibrated to three times the average inter-event gap among the
// widthSample earliest queued events — Brown's rule of thumb, applied to
// the head of the queue. Sampling head density rather than the global
// span keeps the current year's buckets near one event each even when a
// sparse far-future tail coexists with a dense near-term cluster (burst
// and bimodal schedules); tail events just wrap modulo the bucket count
// and fail the year-scan qualification test until their year arrives.
func (c *BucketCalendar) resize(nb int) {
	old := c.buckets

	// head collects the widthSample smallest event times, sorted ascending
	// (insertion into a fixed array; the common case rejects in one
	// comparison against the current worst).
	var head [widthSample]float64
	hn := 0
	for _, b := range old {
		for _, e := range b {
			if hn == len(head) && e.time >= head[hn-1] {
				continue
			}
			i := hn
			if hn < len(head) {
				hn++
			} else {
				i--
			}
			for i > 0 && head[i-1] > e.time {
				head[i] = head[i-1]
				i--
			}
			head[i] = e.time
		}
	}
	minT := 0.0
	if hn > 0 {
		minT = head[0]
	}
	if hn > 1 {
		if span := head[hn-1] - head[0]; span > 0 {
			w := 3 * span / float64(hn-1)
			if w < minBucketWidth {
				w = minBucketWidth
			}
			c.width = w
		}
	}

	if len(c.spare) == nb {
		c.buckets, c.spare = c.spare, nil
	} else {
		c.buckets = make([][]*Event, nb)
	}
	c.mask = int64(nb - 1)
	c.peeked = nil
	c.cur = int64(minT / c.width)

	for _, b := range old {
		for _, e := range b {
			e.bslot = int64(e.time / c.width)
			c.insert(e)
		}
		clear(b)
	}
	for i := range old {
		old[i] = old[i][:0]
	}
	c.spare = old
}
