package scenario

import (
	"bytes"
	"reflect"
	"testing"
)

func grids() []Grid {
	return []Grid{PaperGrid(), SmokeGrid(), FullGrid(), Table4Grid(), Table5Grid(), Table6Grid()}
}

// Every grid constructor must be deterministic: two calls produce
// identical grids (the cell index seeds the per-cell RNG streams).
func TestGridConstructorsDeterministic(t *testing.T) {
	a, b := grids(), grids()
	for i := range a {
		if len(a[i].Cells) != len(b[i].Cells) {
			t.Fatalf("grid %s: %d vs %d cells", a[i].Name, len(a[i].Cells), len(b[i].Cells))
		}
		for j := range a[i].Cells {
			if !reflect.DeepEqual(a[i].Cells[j], b[i].Cells[j]) {
				t.Fatalf("grid %s cell %d differs between constructions", a[i].Name, j)
			}
		}
	}
}

func TestGridCellsValidateAndHaveUniqueIDs(t *testing.T) {
	for _, g := range grids() {
		seen := map[string]bool{}
		for _, c := range g.Cells {
			if seen[c.ID] {
				t.Errorf("grid %s: duplicate cell id %s", g.Name, c.ID)
			}
			seen[c.ID] = true
			if _, err := c.Spec.Config(); err != nil {
				t.Errorf("grid %s cell %s: %v", g.Name, c.ID, err)
			}
		}
	}
}

// Property: every PaperGrid cell round-trips through Save/Load
// byte-identically — the JSON form is a faithful, stable encoding of the
// operating point.
func TestPaperGridRoundTripsByteIdentical(t *testing.T) {
	for _, c := range FullGrid().Cells {
		var first bytes.Buffer
		if err := Save(&first, c.Spec); err != nil {
			t.Fatalf("%s: save: %v", c.ID, err)
		}
		loaded, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", c.ID, err)
		}
		var second bytes.Buffer
		if err := Save(&second, loaded); err != nil {
			t.Fatalf("%s: re-save: %v", c.ID, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: save→load→save not byte-identical:\n%s\nvs\n%s",
				c.ID, first.String(), second.String())
		}
	}
}

func TestGridSizes(t *testing.T) {
	for _, tc := range []struct {
		g    Grid
		want int
	}{
		{PaperGrid(), 90},
		{SmokeGrid(), 18},
		{FullGrid(), 122},
		{Table4Grid(), 16},
		{Table5Grid(), 16},
		{Table6Grid(), 16},
	} {
		if len(tc.g.Cells) != tc.want {
			t.Errorf("grid %s: %d cells, want %d", tc.g.Name, len(tc.g.Cells), tc.want)
		}
	}
}
