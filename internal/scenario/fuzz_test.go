package scenario

import (
	"bytes"
	"strings"
	"testing"

	"rocc/internal/core"
)

// FuzzLoad feeds malformed, truncated, and adversarial grid/scenario
// files through the full load path — JSON decoding plus Config
// materialization and distribution construction. The property: Load and
// Spec.Config must error on bad input, never panic. This complements the
// round-trip property test, which only exercises well-formed specs.
func FuzzLoad(f *testing.F) {
	// A well-formed spec, its truncations, and hand-picked corruptions.
	var valid bytes.Buffer
	if err := Save(&valid, FromConfig(core.DefaultConfig())); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	v := valid.String()
	for _, cut := range []int{1, len(v) / 4, len(v) / 2, len(v) - 2} {
		f.Add(v[:cut])
	}
	f.Add("")
	f.Add("{")
	f.Add("null")
	f.Add("[]")
	f.Add(`{"arch":"now"`)
	f.Add(`{"arch":5}`)
	f.Add(`{"arch":"now","nodes":"eight"}`)
	f.Add(`{"unknown_field":1}`)
	f.Add(`{"arch":"now","workload":{"app_cpu":{"type":"weibull","shape":-1}}}`)
	f.Add(`{"arch":"now","workload":{"app_cpu":{"type":"unknowndist"}}}`)
	f.Add(`{"arch":"now","duration_us":-1}`)
	f.Add(`{"arch":"now","sampling_period_us":1e309}`)
	f.Add("{\"arch\":\"now\"}{\"arch\":\"smp\"}")
	f.Add("\x00\x01\x02")

	f.Fuzz(func(t *testing.T, data string) {
		s, err := Load(strings.NewReader(data))
		if err != nil {
			return // malformed input must error — and it did
		}
		// A spec that decoded cleanly may still be semantically invalid;
		// materialization must reject it with an error, never a panic.
		_, _ = s.Config()
		for _, d := range []DistSpec{
			s.Workload.AppCPU, s.Workload.AppNet, s.Workload.PvmCPU,
			s.Workload.PvmInterarrival, s.Workload.MainCPU,
		} {
			_, _ = d.Dist()
		}
	})
}

// Truncated files must fail loudly: every strict prefix of a valid spec
// (except trailing-whitespace-only cuts) is a decode error.
func TestLoadTruncated(t *testing.T) {
	var valid bytes.Buffer
	if err := Save(&valid, FromConfig(core.DefaultConfig())); err != nil {
		t.Fatal(err)
	}
	v := strings.TrimRight(valid.String(), "\n")
	for _, cut := range []int{0, 1, len(v) / 3, len(v) / 2, len(v) - 1} {
		if _, err := Load(strings.NewReader(v[:cut])); err == nil {
			t.Errorf("Load of %d/%d-byte truncation succeeded, want error", cut, len(v))
		}
	}
}
