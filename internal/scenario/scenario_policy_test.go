package scenario

import (
	"strings"
	"testing"

	"rocc/internal/forward"
)

func minimalSpec(policy string, batch int) Spec {
	return Spec{
		Arch: "now", Nodes: 2, AppProcs: 1,
		SamplingPeriod: 8000, Duration: 1e6,
		Policy: policy, BatchSize: batch,
	}
}

// Policy specs survive the Spec -> Config -> Spec round trip: adaptive
// specs rebuild the same controller (distributed workers must reconstruct
// the strategy exactly), fixed specs keep the legacy fields engaged.
func TestSpecPolicyRoundTrip(t *testing.T) {
	cases := []struct {
		policy     string
		batch      int
		wantPolicy string
	}{
		{"cf", 0, "cf"},
		{"bf", 7, "bf"},
		{"bf:9", 4, "bf"},
		{"abf", 0, "abf"},
		{"abf:2", 0, "abf:2"},
	}
	for _, c := range cases {
		cfg, err := minimalSpec(c.policy, c.batch).Config()
		if err != nil {
			t.Errorf("policy %q: %v", c.policy, err)
			continue
		}
		back := FromConfig(cfg)
		if back.Policy != c.wantPolicy {
			t.Errorf("policy %q round-tripped to %q, want %q", c.policy, back.Policy, c.wantPolicy)
		}
	}
}

// An adaptive spec materializes the controller strategy; its String is
// the spec, so a re-parse reconstructs it bit for bit.
func TestSpecAdaptiveBuildsStrategy(t *testing.T) {
	cfg, err := minimalSpec("abf:1.5", 0).Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Strategy == nil {
		t.Fatal("abf spec did not install a Strategy")
	}
	if got := cfg.Strategy.String(); got != "abf:1.5" {
		t.Fatalf("strategy renders %q, want abf:1.5", got)
	}
	if cfg.Policy != forward.BF {
		t.Fatalf("Validate synced Policy to %v, want BF", cfg.Policy)
	}
}

// An explicit bf:<n> batch overrides the legacy BatchSize field; a bare
// bf keeps it.
func TestSpecBatchOverride(t *testing.T) {
	cfg, err := minimalSpec("bf:9", 4).Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy != forward.BF || cfg.BatchSize != 9 {
		t.Fatalf("bf:9 over BatchSize 4 gave %v/%d, want BF/9", cfg.Policy, cfg.BatchSize)
	}
	if cfg.Strategy != nil {
		t.Fatal("fixed bf spec must keep the legacy path (nil Strategy)")
	}
	cfg, err = minimalSpec("bf", 7).Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BatchSize != 7 {
		t.Fatalf("bare bf overrode BatchSize to %d, want 7", cfg.BatchSize)
	}
}

// A malformed policy spec is rejected with the parser's message.
func TestSpecRejectsMalformedPolicy(t *testing.T) {
	_, err := minimalSpec("bf:0", 0).Config()
	if err == nil || !strings.Contains(err.Error(), "batch size must be an integer >= 1") {
		t.Fatalf("bf:0 error = %v", err)
	}
}
