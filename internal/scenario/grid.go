package scenario

import (
	"fmt"

	"rocc/internal/core"
	"rocc/internal/forward"
)

// Cell is one operating point of a Grid: a fully specified scenario plus
// the identifiers the dashboards and experiment tables key on. The Label
// matches the row labels of the paper's factorial tables so grid-driven
// output is byte-identical to the historical ad-hoc loops.
type Cell struct {
	Group string // the paper artifact this point belongs to ("table4", "fig19", ...)
	ID    string // stable unique id, "<group>/<NN>" in iteration order
	Label string // human-readable factor settings
	Spec  Spec
}

// Grid is an ordered set of scenario operating points. Iteration order is
// the slice order and is part of the contract: experiment drivers derive
// per-cell seeds from the cell index, so two calls to the same constructor
// always produce identical grids, and any consumer that walks Cells in
// order reproduces the same runs.
type Grid struct {
	Name string
	// Factors names the 2^k design factors in doe standard order; nil for
	// non-factorial grids.
	Factors []string
	Cells   []Cell
}

// add appends a cell, assigning the next id within its group.
func (g *Grid) add(group, label string, cfg core.Config) {
	n := 0
	for _, c := range g.Cells {
		if c.Group == group {
			n++
		}
	}
	g.Cells = append(g.Cells, Cell{
		Group: group,
		ID:    fmt.Sprintf("%s/%02d", group, n),
		Label: label,
		Spec:  FromConfig(cfg),
	})
}

// append concatenates another grid's cells (ids keep their group numbering).
func (g *Grid) append(other Grid) {
	g.Cells = append(g.Cells, other.Cells...)
}

// Shared sweep axes of the paper's figures. Each call returns a fresh
// slice so callers may modify their copy. The analytic experiments
// (Figures 9-15) and the simulation experiments (Figures 17-28) plot the
// same axes; defining them once keeps the two pipelines comparable
// point-for-point.

// BatchAxis is the batch-size sweep of Figures 10 and 19.
func BatchAxis() []float64 { return []float64{1, 2, 4, 8, 16, 32, 64, 128} }

// SamplingPeriodAxisMS is the doubling sampling-period sweep (ms) of
// Figures 9(b), 14, 18(b), and 26.
func SamplingPeriodAxisMS() []float64 { return []float64{1, 2, 4, 8, 16, 32, 64} }

// SMPSamplingPeriodAxisMS is the sampling-period sweep (ms) of the SMP
// panels, Figures 12 and 23.
func SMPSamplingPeriodAxisMS() []float64 { return []float64{1, 2, 5, 10, 20, 40, 64} }

// LocalSamplingPeriodAxisMS is the linear sampling-period sweep (ms) of
// the local-detail panel, Figure 17(a).
func LocalSamplingPeriodAxisMS() []float64 { return []float64{5, 10, 20, 30, 40, 50} }

// NodeAxis is the node-count sweep of Figures 18(a) and 22.
func NodeAxis() []float64 { return []float64{2, 4, 8, 16, 32} }

// AnalyticNodeAxis is the node-count sweep of Figure 9(a).
func AnalyticNodeAxis() []float64 { return []float64{2, 4, 8, 16, 24, 32} }

// MPPNodeAxis is the node-count sweep of Figures 15 and 27.
func MPPNodeAxis() []float64 { return []float64{2, 4, 8, 16, 32, 64, 128, 256} }

// AppProcsAxis is the application-process sweep of Figure 17(b).
func AppProcsAxis() []float64 { return []float64{1, 2, 4, 8, 16, 32} }

// factorial16 builds the sixteen rows of a 2^4 design in doe standard
// order from per-row config and label constructors.
func factorial16(g *Grid, group string, levels [4][2]float64,
	build func(pick func(f int) float64) (core.Config, string)) {
	for i := 0; i < 16; i++ {
		pick := func(f int) float64 { return levels[f][i>>f&1] }
		cfg, label := build(pick)
		g.add(group, label, cfg)
	}
}

// Table4Grid is the NOW 2^4 factorial design of Table 4 / Figure 16:
// A = nodes (5/50), B = sampling period (2/32 ms), C = forwarding policy
// (batch 1/128), D = application type.
func Table4Grid() Grid {
	g := Grid{Name: "table4",
		Factors: []string{"nodes", "sampling period", "forwarding policy", "application type"}}
	factorial16(&g, "table4", [4][2]float64{{5, 50}, {2000, 32000}, {1, 128}, {0, 1}},
		func(pick func(int) float64) (core.Config, string) {
			cfg := core.DefaultConfig()
			cfg.Arch = core.NOW
			cfg.Nodes = int(pick(0))
			cfg.SamplingPeriod = pick(1)
			if pick(2) > 1 {
				cfg.Policy = forward.BF
				cfg.BatchSize = int(pick(2))
			}
			app := core.ComputeIntensive
			if pick(3) > 0 {
				app = core.CommIntensive
			}
			cfg.Workload = app.Apply(core.DefaultWorkload())
			return cfg, fmt.Sprintf("n=%d sp=%.0fms b=%d %s",
				cfg.Nodes, cfg.SamplingPeriod/1000, cfg.BatchSize, app)
		})
	return g
}

// Table5Grid is the SMP 2^4 factorial design of Table 5 / Figure 20:
// A = nodes (= app processes, 5/50), B = sampling period (1/32 ms),
// C = forwarding policy (batch 1/128), D = application type.
func Table5Grid() Grid {
	g := Grid{Name: "table5",
		Factors: []string{"nodes", "sampling period", "forwarding policy", "application type"}}
	factorial16(&g, "table5", [4][2]float64{{5, 50}, {1000, 32000}, {1, 128}, {0, 1}},
		func(pick func(int) float64) (core.Config, string) {
			cfg := core.DefaultConfig()
			cfg.Arch = core.SMP
			cfg.Nodes = int(pick(0))
			cfg.AppProcs = cfg.Nodes // paper: #app processes = #nodes
			cfg.SamplingPeriod = pick(1)
			if pick(2) > 1 {
				cfg.Policy = forward.BF
				cfg.BatchSize = int(pick(2))
			}
			app := core.ComputeIntensive
			if pick(3) > 0 {
				app = core.CommIntensive
			}
			cfg.Workload = app.Apply(core.DefaultWorkload())
			return cfg, fmt.Sprintf("n=%d sp=%.0fms b=%d %s",
				cfg.Nodes, cfg.SamplingPeriod/1000, cfg.BatchSize, app)
		})
	return g
}

// Table6Grid is the MPP 2^4 factorial design of Table 6 / Figure 25:
// A = nodes (2/256), B = sampling period (5/50 ms), C = forwarding policy
// (batch 1/128), D = network configuration (direct/tree).
func Table6Grid() Grid {
	g := Grid{Name: "table6",
		Factors: []string{"nodes", "sampling period", "forwarding policy", "network configuration"}}
	factorial16(&g, "table6", [4][2]float64{{2, 256}, {5000, 50000}, {1, 128}, {0, 1}},
		func(pick func(int) float64) (core.Config, string) {
			cfg := core.DefaultConfig()
			cfg.Arch = core.MPP
			cfg.Nodes = int(pick(0))
			cfg.SamplingPeriod = pick(1)
			if pick(2) > 1 {
				cfg.Policy = forward.BF
				cfg.BatchSize = int(pick(2))
			}
			fwd := forward.Direct
			if pick(3) > 0 {
				fwd = forward.Tree
			}
			cfg.Forwarding = fwd
			return cfg, fmt.Sprintf("n=%d sp=%.0fms b=%d %s",
				cfg.Nodes, cfg.SamplingPeriod/1000, cfg.BatchSize, fwd)
		})
	return g
}

// policyOf applies one of the two figure policies: CF, or BF with the
// given batch size when batch > 1.
func policyOf(cfg *core.Config, batch int) string {
	if batch > 1 {
		cfg.Policy = forward.BF
		cfg.BatchSize = batch
		return fmt.Sprintf("BF(%d)", batch)
	}
	cfg.Policy = forward.CF
	cfg.BatchSize = 1
	return "CF"
}

// PaperGrid covers the paper's NOW evaluation operating points — the
// Table 4 factorial plus every instrumented point of Figures 17-19, with
// the "typical configuration" baseline and the Table 3 validation point —
// in deterministic order. Uninstrumented (sampling period 0) series are
// excluded: the analytic equations require a positive sampling period.
func PaperGrid() Grid {
	g := Grid{Name: "paper"}

	// The Table 2 "typical configuration": 8-node NOW, 40 ms, CF.
	base := core.DefaultConfig()
	g.add("baseline", "n=8 sp=40ms CF (typical configuration)", base)

	// The Table 3 validation point: a single node, CF, 40 ms sampling.
	t3 := core.DefaultConfig()
	t3.Nodes = 1
	g.add("table3", "n=1 sp=40ms CF (validation)", t3)

	g.append(Table4Grid())

	// Figure 17(a): local detail, 1 node, 8 processes, sweep the sampling
	// period; CF vs BF(32).
	for _, batch := range []int{1, 32} {
		for _, spMS := range LocalSamplingPeriodAxisMS() {
			cfg := core.DefaultConfig()
			cfg.Nodes = 1
			cfg.AppProcs = 8
			cfg.SamplingPeriod = spMS * 1000
			pol := policyOf(&cfg, batch)
			g.add("fig17a", fmt.Sprintf("%s sp=%.0fms", pol, spMS), cfg)
		}
	}
	// Figure 17(b): local detail, 40 ms sampling, sweep the process count.
	for _, batch := range []int{1, 32} {
		for _, procs := range AppProcsAxis() {
			cfg := core.DefaultConfig()
			cfg.Nodes = 1
			cfg.AppProcs = int(procs)
			cfg.SamplingPeriod = 40000
			pol := policyOf(&cfg, batch)
			g.add("fig17b", fmt.Sprintf("%s procs=%d", pol, cfg.AppProcs), cfg)
		}
	}
	// Figure 18(a): global detail, 40 ms sampling, sweep the node count.
	for _, batch := range []int{1, 32} {
		for _, nodes := range NodeAxis() {
			cfg := core.DefaultConfig()
			cfg.Nodes = int(nodes)
			pol := policyOf(&cfg, batch)
			g.add("fig18a", fmt.Sprintf("%s n=%d", pol, cfg.Nodes), cfg)
		}
	}
	// Figure 18(b): global detail, 8 nodes, sweep the sampling period.
	for _, batch := range []int{1, 32} {
		for _, spMS := range SamplingPeriodAxisMS() {
			cfg := core.DefaultConfig()
			cfg.SamplingPeriod = spMS * 1000
			pol := policyOf(&cfg, batch)
			g.add("fig18b", fmt.Sprintf("%s sp=%.0fms", pol, spMS), cfg)
		}
	}
	// Figure 19: batch-size sweep at three sampling periods.
	for _, spMS := range []float64{1, 40, 64} {
		for _, batch := range BatchAxis() {
			cfg := core.DefaultConfig()
			cfg.SamplingPeriod = spMS * 1000
			policyOf(&cfg, int(batch))
			g.add("fig19", fmt.Sprintf("SP=%.0fms b=%d", spMS, int(batch)), cfg)
		}
	}
	return g
}

// SmokeGrid is the small cross-validation grid gated in CI: the baseline,
// the Table 3 validation point, and the Table 4 factorial.
func SmokeGrid() Grid {
	g := Grid{Name: "smoke"}
	p := PaperGrid()
	for _, c := range p.Cells {
		if c.Group == "baseline" || c.Group == "table3" || c.Group == "table4" {
			g.Cells = append(g.Cells, c)
		}
	}
	return g
}

// FullGrid extends PaperGrid with the SMP and MPP factorial designs
// (Tables 5 and 6), adding the architecture axis to the error surface.
func FullGrid() Grid {
	g := Grid{Name: "full"}
	g.append(PaperGrid())
	g.append(Table5Grid())
	g.append(Table6Grid())
	return g
}
