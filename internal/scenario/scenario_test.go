package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/rng"
)

func TestRoundTripDefaultConfig(t *testing.T) {
	orig := core.DefaultConfig()
	orig.Arch = core.MPP
	orig.Policy = forward.BF
	orig.BatchSize = 32
	orig.Forwarding = forward.Tree
	orig.Warmup = 1e6
	orig.Seed = 77

	var buf bytes.Buffer
	if err := Save(&buf, FromConfig(orig)); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if got.Arch != orig.Arch || got.Nodes != orig.Nodes || got.Policy != orig.Policy ||
		got.BatchSize != orig.BatchSize || got.Forwarding != orig.Forwarding ||
		got.Warmup != orig.Warmup || got.Seed != orig.Seed ||
		got.SamplingPeriod != orig.SamplingPeriod || got.DedicatedHost != orig.DedicatedHost {
		t.Fatalf("round trip changed config:\norig %+v\ngot  %+v", orig, got)
	}
	if got.Workload.AppCPU.Mean() != orig.Workload.AppCPU.Mean() {
		t.Fatal("workload lost in round trip")
	}
	// Round-tripped configs simulate identically.
	m1, err := core.New(orig)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := core.New(got)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := m1.Cfg, m2.Cfg
	c1.Duration, c2.Duration = 1e6, 1e6
	r1, err := core.RunReplications(c1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.RunReplications(c2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Results[0], r2.Results[0]) {
		t.Fatal("round-tripped scenario simulates differently")
	}
}

func TestMinimalSpec(t *testing.T) {
	in := `{"nodes": 4, "app_procs": 1, "sampling_period_us": 40000, "duration_us": 1000000}`
	spec, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Arch != core.NOW || cfg.Policy != forward.CF || cfg.Pds != 1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.Workload.AppCPU.Mean() != 2213 {
		t.Fatal("Table 2 workload default missing")
	}
	if !cfg.Background {
		t.Fatal("background should default on")
	}
}

func TestWorkloadOverride(t *testing.T) {
	in := `{
		"nodes": 1, "app_procs": 1, "sampling_period_us": 10000, "duration_us": 1,
		"workload": {
			"app_cpu": {"type": "gamma", "shape": 2, "scale": 1000},
			"app_net": {"type": "constant", "value": 50}
		}
	}`
	spec, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cfg.Workload.AppCPU.(rng.GammaDist); !ok {
		t.Fatalf("app cpu type %T", cfg.Workload.AppCPU)
	}
	if cfg.Workload.AppNet.Mean() != 50 {
		t.Fatal("constant override lost")
	}
	// Unspecified fields keep defaults.
	if cfg.Workload.PvmCPU.Mean() != 294 {
		t.Fatal("pvm default lost")
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []string{
		`{"arch": "vax", "nodes": 1, "app_procs": 1, "sampling_period_us": 1, "duration_us": 1}`,
		`{"policy": "xy", "nodes": 1, "app_procs": 1, "sampling_period_us": 1, "duration_us": 1}`,
		`{"forwarding": "ring", "nodes": 1, "app_procs": 1, "sampling_period_us": 1, "duration_us": 1}`,
		`{"nodes": 0, "app_procs": 1, "sampling_period_us": 1, "duration_us": 1}`,
		`{"nodes": 1, "app_procs": 1, "sampling_period_us": 1, "duration_us": 1,
		  "workload": {"app_cpu": {"type": "noise"}}}`,
		`{"unknown_field": 1}`,
	}
	for i, in := range bad {
		spec, err := Load(strings.NewReader(in))
		if err != nil {
			continue // rejected at decode (unknown field case)
		}
		if _, err := spec.Config(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDistSpecRoundTrips(t *testing.T) {
	dists := []rng.Dist{
		rng.Exponential{MeanVal: 223},
		rng.Lognormal{MeanVal: 2213, SD: 3034},
		rng.Weibull{Shape: 1.5, Scale: 100},
		rng.GammaDist{Shape: 2, Scale: 50},
		rng.UniformDist{Low: 1, High: 9},
		rng.Constant{Value: 5},
	}
	for _, d := range dists {
		spec := SpecOf(d)
		got, err := spec.Dist()
		if err != nil {
			t.Fatalf("%T: %v", d, err)
		}
		if got != d {
			t.Fatalf("%T round trip: %v != %v", d, got, d)
		}
	}
	// Empirical degrades to constant-at-mean.
	spec := SpecOf(rng.Empirical{Values: []float64{2, 4}})
	if spec.Type != "constant" || spec.Value != 3 {
		t.Fatalf("empirical degraded to %+v", spec)
	}
	// Nil distribution: empty spec, nil result.
	if s := SpecOf(nil); s.Type != "" {
		t.Fatalf("nil spec %+v", s)
	}
	d, err := DistSpec{}.Dist()
	if err != nil || d != nil {
		t.Fatal("empty spec should yield nil dist")
	}
	badSpecs := []DistSpec{
		{Type: "exponential"},
		{Type: "lognormal", Mean: -1},
		{Type: "weibull"},
		{Type: "gamma", Shape: -1},
		{Type: "uniform", Low: 5, High: 5},
	}
	for i, s := range badSpecs {
		if _, err := s.Dist(); err == nil {
			t.Errorf("bad spec %d should fail", i)
		}
	}
}
