// Package scenario provides a declarative JSON representation of ROCC
// simulation configurations, so experiment specifications can be saved,
// versioned, shared, and replayed exactly — the off-the-shelf packaging
// the paper's Discussion argues instrumentation-system components need.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/rng"
)

// DistSpec is the JSON form of a probability distribution, in the
// notation of Table 2.
type DistSpec struct {
	Type  string  `json:"type"` // exponential, lognormal, weibull, gamma, uniform, constant
	Mean  float64 `json:"mean,omitempty"`
	SD    float64 `json:"sd,omitempty"`
	Shape float64 `json:"shape,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	Low   float64 `json:"low,omitempty"`
	High  float64 `json:"high,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// Dist materializes the spec.
func (d DistSpec) Dist() (rng.Dist, error) {
	switch strings.ToLower(d.Type) {
	case "exponential":
		if d.Mean <= 0 {
			return nil, fmt.Errorf("scenario: exponential needs mean > 0")
		}
		return rng.Exponential{MeanVal: d.Mean}, nil
	case "lognormal":
		if d.Mean <= 0 || d.SD < 0 {
			return nil, fmt.Errorf("scenario: lognormal needs mean > 0, sd >= 0")
		}
		return rng.Lognormal{MeanVal: d.Mean, SD: d.SD}, nil
	case "weibull":
		if d.Shape <= 0 || d.Scale <= 0 {
			return nil, fmt.Errorf("scenario: weibull needs positive shape and scale")
		}
		return rng.Weibull{Shape: d.Shape, Scale: d.Scale}, nil
	case "gamma":
		if d.Shape <= 0 || d.Scale <= 0 {
			return nil, fmt.Errorf("scenario: gamma needs positive shape and scale")
		}
		return rng.GammaDist{Shape: d.Shape, Scale: d.Scale}, nil
	case "uniform":
		if d.High <= d.Low {
			return nil, fmt.Errorf("scenario: uniform needs high > low")
		}
		return rng.UniformDist{Low: d.Low, High: d.High}, nil
	case "constant":
		return rng.Constant{Value: d.Value}, nil
	case "":
		return nil, nil // absent: caller applies its default
	}
	return nil, fmt.Errorf("scenario: unknown distribution type %q", d.Type)
}

// SpecOf converts a distribution back to its JSON form. Unknown types
// (e.g. Empirical) degrade to a constant at the mean.
func SpecOf(d rng.Dist) DistSpec {
	switch v := d.(type) {
	case rng.Exponential:
		return DistSpec{Type: "exponential", Mean: v.MeanVal}
	case rng.Lognormal:
		return DistSpec{Type: "lognormal", Mean: v.MeanVal, SD: v.SD}
	case rng.Weibull:
		return DistSpec{Type: "weibull", Shape: v.Shape, Scale: v.Scale}
	case rng.GammaDist:
		return DistSpec{Type: "gamma", Shape: v.Shape, Scale: v.Scale}
	case rng.UniformDist:
		return DistSpec{Type: "uniform", Low: v.Low, High: v.High}
	case rng.Constant:
		return DistSpec{Type: "constant", Value: v.Value}
	case nil:
		return DistSpec{}
	}
	return DistSpec{Type: "constant", Value: d.Mean()}
}

// WorkloadSpec is the JSON form of a core.Workload; absent fields take
// the Table 2 defaults.
type WorkloadSpec struct {
	AppCPU               DistSpec `json:"app_cpu,omitempty"`
	AppNet               DistSpec `json:"app_net,omitempty"`
	PvmCPU               DistSpec `json:"pvm_cpu,omitempty"`
	PvmNet               DistSpec `json:"pvm_net,omitempty"`
	PvmInterarrival      DistSpec `json:"pvm_interarrival,omitempty"`
	OtherCPU             DistSpec `json:"other_cpu,omitempty"`
	OtherNet             DistSpec `json:"other_net,omitempty"`
	OtherCPUInterarrival DistSpec `json:"other_cpu_interarrival,omitempty"`
	OtherNetInterarrival DistSpec `json:"other_net_interarrival,omitempty"`
	MainCPU              DistSpec `json:"main_cpu,omitempty"`
}

// Spec is the JSON form of a core.Config.
type Spec struct {
	Arch           string       `json:"arch"` // now, smp, mpp
	Nodes          int          `json:"nodes"`
	AppProcs       int          `json:"app_procs"`
	Pds            int          `json:"pds,omitempty"`
	SamplingPeriod float64      `json:"sampling_period_us"`
	Policy         string       `json:"policy"` // a -policy spec: cf, bf, bf:<n>, abf, abf:<ms>
	BatchSize      int          `json:"batch_size,omitempty"`
	Forwarding     string       `json:"forwarding,omitempty"` // direct, tree
	PipeCapacity   int          `json:"pipe_capacity,omitempty"`
	Quantum        float64      `json:"quantum_us,omitempty"`
	Duration       float64      `json:"duration_us"`
	Warmup         float64      `json:"warmup_us,omitempty"`
	BarrierPeriod  float64      `json:"barrier_period_us,omitempty"`
	FlushTimeout   float64      `json:"flush_timeout_us,omitempty"`
	DedicatedHost  bool         `json:"dedicated_host,omitempty"`
	Background     *bool        `json:"background,omitempty"` // nil = true
	Seed           uint64       `json:"seed,omitempty"`
	Workload       WorkloadSpec `json:"workload,omitempty"`
}

// Config materializes the spec into a validated core.Config.
func (s Spec) Config() (core.Config, error) {
	cfg := core.DefaultConfig()
	switch strings.ToLower(s.Arch) {
	case "now", "":
		cfg.Arch = core.NOW
	case "smp":
		cfg.Arch = core.SMP
	case "mpp":
		cfg.Arch = core.MPP
	default:
		return cfg, fmt.Errorf("scenario: unknown arch %q", s.Arch)
	}
	cfg.Nodes = s.Nodes
	cfg.AppProcs = s.AppProcs
	if s.Pds > 0 {
		cfg.Pds = s.Pds
	}
	cfg.SamplingPeriod = s.SamplingPeriod
	if s.Policy != "" {
		pspec, err := forward.ParseStrategySpec(s.Policy)
		if err != nil {
			return cfg, fmt.Errorf("scenario: %w", err)
		}
		switch {
		case pspec.Adaptive:
			cfg.Strategy = pspec.NewStrategy(0)
		case pspec.Policy == forward.CF:
			cfg.Policy = forward.CF
		default:
			cfg.Policy = forward.BF
			cfg.BatchSize = s.BatchSize
			if pspec.Batch > 0 {
				cfg.BatchSize = pspec.Batch
			}
		}
	}
	if s.Forwarding != "" {
		fwd, err := forward.ParseConfig(s.Forwarding)
		if err != nil {
			return cfg, fmt.Errorf("scenario: %w", err)
		}
		cfg.Forwarding = fwd
	}
	if s.PipeCapacity > 0 {
		cfg.PipeCapacity = s.PipeCapacity
	}
	if s.Quantum > 0 {
		cfg.Quantum = s.Quantum
	}
	cfg.Duration = s.Duration
	cfg.Warmup = s.Warmup
	cfg.BarrierPeriod = s.BarrierPeriod
	cfg.FlushTimeout = s.FlushTimeout
	cfg.DedicatedHost = s.DedicatedHost
	if s.Background != nil {
		cfg.Background = *s.Background
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if err := applyWorkload(&cfg.Workload, s.Workload); err != nil {
		return cfg, err
	}
	return cfg.Validate()
}

func applyWorkload(w *core.Workload, s WorkloadSpec) error {
	fields := []struct {
		dst  *rng.Dist
		spec DistSpec
	}{
		{&w.AppCPU, s.AppCPU}, {&w.AppNet, s.AppNet},
		{&w.PvmCPU, s.PvmCPU}, {&w.PvmNet, s.PvmNet},
		{&w.PvmInterarrival, s.PvmInterarrival},
		{&w.OtherCPU, s.OtherCPU}, {&w.OtherNet, s.OtherNet},
		{&w.OtherCPUInterarrival, s.OtherCPUInterarrival},
		{&w.OtherNetInterarrival, s.OtherNetInterarrival},
		{&w.MainCPU, s.MainCPU},
	}
	for _, f := range fields {
		d, err := f.spec.Dist()
		if err != nil {
			return err
		}
		if d != nil {
			*f.dst = d
		}
	}
	return nil
}

// FromConfig converts a core.Config into its JSON form. A strategy whose
// String is a -policy spec (all built-ins) serializes as that spec, so
// distributed workers reconstruct it exactly; legacy Policy/BatchSize
// configs keep their pre-strategy serialization byte for byte. A custom
// strategy with an unparseable String degrades to the legacy fields.
func FromConfig(cfg core.Config) Spec {
	bg := cfg.Background
	policy := strings.ToLower(cfg.Policy.String())
	if cfg.Strategy != nil {
		if spec, err := forward.ParseStrategySpec(cfg.Strategy.String()); err == nil && spec.Adaptive {
			policy = spec.String()
		}
	}
	s := Spec{
		Arch:           strings.ToLower(cfg.Arch.String()),
		Nodes:          cfg.Nodes,
		AppProcs:       cfg.AppProcs,
		Pds:            cfg.Pds,
		SamplingPeriod: cfg.SamplingPeriod,
		Policy:         policy,
		BatchSize:      cfg.BatchSize,
		Forwarding:     cfg.Forwarding.String(),
		PipeCapacity:   cfg.PipeCapacity,
		Quantum:        cfg.Quantum,
		Duration:       cfg.Duration,
		Warmup:         cfg.Warmup,
		BarrierPeriod:  cfg.BarrierPeriod,
		FlushTimeout:   cfg.FlushTimeout,
		DedicatedHost:  cfg.DedicatedHost,
		Background:     &bg,
		Seed:           cfg.Seed,
		Workload: WorkloadSpec{
			AppCPU:               SpecOf(cfg.Workload.AppCPU),
			AppNet:               SpecOf(cfg.Workload.AppNet),
			PvmCPU:               SpecOf(cfg.Workload.PvmCPU),
			PvmNet:               SpecOf(cfg.Workload.PvmNet),
			PvmInterarrival:      SpecOf(cfg.Workload.PvmInterarrival),
			OtherCPU:             SpecOf(cfg.Workload.OtherCPU),
			OtherNet:             SpecOf(cfg.Workload.OtherNet),
			OtherCPUInterarrival: SpecOf(cfg.Workload.OtherCPUInterarrival),
			OtherNetInterarrival: SpecOf(cfg.Workload.OtherNetInterarrival),
			MainCPU:              SpecOf(cfg.Workload.MainCPU),
		},
	}
	return s
}

// Load reads a JSON scenario.
func Load(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return s, nil
}

// Save writes a JSON scenario, indented for human editing.
func Save(w io.Writer, s Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
