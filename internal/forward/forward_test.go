package forward

import (
	"testing"
	"testing/quick"

	"rocc/internal/rng"
)

func TestPolicyAndConfigStrings(t *testing.T) {
	if CF.String() != "CF" || BF.String() != "BF" {
		t.Fatal("policy strings")
	}
	if Direct.String() != "direct" || Tree.String() != "tree" {
		t.Fatal("config strings")
	}
	if Policy(9).String() == "" || Config(9).String() == "" {
		t.Fatal("unknown values should still render")
	}
}

func TestCostModelScalesWithBatch(t *testing.T) {
	cm := CostModel{
		PerMsgCPU:    rng.Constant{Value: 267},
		PerSampleCPU: 8,
		PerMsgNet:    rng.Constant{Value: 71},
		PerSampleNet: 2,
		Merge:        rng.Constant{Value: 100},
	}
	r := rng.New(1)
	if got := cm.MsgCPU(r, 1); got != 267 {
		t.Fatalf("single-sample CPU %v", got)
	}
	if got := cm.MsgCPU(r, 32); got != 267+8*31 {
		t.Fatalf("batch CPU %v", got)
	}
	if got := cm.MsgNet(r, 32); got != 71+2*31 {
		t.Fatalf("batch net %v", got)
	}
	if cm.MsgCPU(r, 0) != 0 || cm.MsgNet(r, 0) != 0 {
		t.Fatal("empty message should cost nothing")
	}
	if cm.MergeCPU(r) != 100 {
		t.Fatal("merge cost")
	}
	// The amortization that motivates BF: per-sample CPU at batch 128 is a
	// small fraction of the CF per-sample cost.
	perSampleBF := cm.MsgCPU(r, 128) / 128
	if perSampleBF > 0.05*267 {
		t.Fatalf("BF per-sample cost %v not well below CF 267", perSampleBF)
	}
}

func TestDefaultCostModelMeans(t *testing.T) {
	cm := DefaultCostModel()
	if cm.PerMsgCPU.Mean() != 267 || cm.PerMsgNet.Mean() != 71 {
		t.Fatal("Table 2 means wrong")
	}
}

func TestDirectTopology(t *testing.T) {
	top := NewTopology(Direct, 8)
	for node := 0; node < 8; node++ {
		if _, toMain := top.Next(node); !toMain {
			t.Fatalf("direct: node %d not sent to main", node)
		}
		if len(top.Children(node)) != 0 {
			t.Fatalf("direct: node %d has children", node)
		}
	}
}

func TestTreeTopologyStructure(t *testing.T) {
	top := NewTopology(Tree, 7).(TreeTopology)
	if _, toMain := top.Next(0); !toMain {
		t.Fatal("root must forward to main")
	}
	cases := []struct{ node, parent int }{
		{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {6, 2},
	}
	for _, c := range cases {
		p, toMain := top.Next(c.node)
		if toMain || p != c.parent {
			t.Fatalf("parent of %d = %d (toMain=%v), want %d", c.node, p, toMain, c.parent)
		}
	}
	if ch := top.Children(0); len(ch) != 2 || ch[0] != 1 || ch[1] != 2 {
		t.Fatalf("children of root: %v", ch)
	}
	if ch := top.Children(3); len(ch) != 0 {
		t.Fatalf("leaf has children: %v", ch)
	}
	if top.Depth(0) != 1 || top.Depth(1) != 2 || top.Depth(6) != 3 {
		t.Fatal("depth calculation wrong")
	}
}

func TestTreeTopologyPartialLevel(t *testing.T) {
	top := TreeTopology{Nodes: 6}
	if ch := top.Children(2); len(ch) != 1 || ch[0] != 5 {
		t.Fatalf("children of 2 in 6-node tree: %v", ch)
	}
}

// Property: in any tree, following Next from every node terminates at the
// main process within Depth hops, and parent/child relations agree.
func TestQuickTreeReachesMain(t *testing.T) {
	f := func(n uint8) bool {
		nodes := int(n)%255 + 1
		top := TreeTopology{Nodes: nodes}
		for node := 0; node < nodes; node++ {
			cur, hops := node, 0
			for {
				next, toMain := top.Next(cur)
				hops++
				if toMain {
					break
				}
				if next < 0 || next >= nodes || next >= cur {
					return false // parent must be a smaller index
				}
				cur = next
				if hops > nodes {
					return false // cycle
				}
			}
			if hops != top.Depth(node) {
				return false
			}
			// Parent agreement: node appears among its parent's children.
			if parent, toMain := top.Next(node); !toMain {
				found := false
				for _, c := range top.Children(parent) {
					if c == node {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
