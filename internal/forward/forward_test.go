package forward

import (
	"reflect"
	"testing"
	"testing/quick"

	"rocc/internal/des"
	"rocc/internal/rng"
)

func TestPolicyAndConfigStrings(t *testing.T) {
	if CF.String() != "CF" || BF.String() != "BF" {
		t.Fatal("policy strings")
	}
	if Direct.String() != "direct" || Tree.String() != "tree" {
		t.Fatal("config strings")
	}
	if Policy(9).String() == "" || Config(9).String() == "" {
		t.Fatal("unknown values should still render")
	}
}

func TestCostModelScalesWithBatch(t *testing.T) {
	cm := CostModel{
		PerMsgCPU:    rng.Constant{Value: 267},
		PerSampleCPU: 8,
		PerMsgNet:    rng.Constant{Value: 71},
		PerSampleNet: 2,
		Merge:        rng.Constant{Value: 100},
	}
	r := rng.New(1)
	if got := cm.MsgCPU(r, 1); got != 267 {
		t.Fatalf("single-sample CPU %v", got)
	}
	if got := cm.MsgCPU(r, 32); got != 267+8*31 {
		t.Fatalf("batch CPU %v", got)
	}
	if got := cm.MsgNet(r, 32); got != 71+2*31 {
		t.Fatalf("batch net %v", got)
	}
	if cm.MsgCPU(r, 0) != 0 || cm.MsgNet(r, 0) != 0 {
		t.Fatal("empty message should cost nothing")
	}
	if cm.MergeCPU(r) != 100 {
		t.Fatal("merge cost")
	}
	// The amortization that motivates BF: per-sample CPU at batch 128 is a
	// small fraction of the CF per-sample cost.
	perSampleBF := cm.MsgCPU(r, 128) / 128
	if perSampleBF > 0.05*267 {
		t.Fatalf("BF per-sample cost %v not well below CF 267", perSampleBF)
	}
}

func TestDefaultCostModelMeans(t *testing.T) {
	cm := DefaultCostModel()
	if cm.PerMsgCPU.Mean() != 267 || cm.PerMsgNet.Mean() != 71 {
		t.Fatal("Table 2 means wrong")
	}
}

func TestDirectTopology(t *testing.T) {
	top := NewTopology(Direct, 8)
	for node := 0; node < 8; node++ {
		if _, toMain := top.Next(node); !toMain {
			t.Fatalf("direct: node %d not sent to main", node)
		}
		if len(top.Children(node)) != 0 {
			t.Fatalf("direct: node %d has children", node)
		}
	}
}

func TestTreeTopologyStructure(t *testing.T) {
	top := NewTopology(Tree, 7).(TreeTopology)
	if _, toMain := top.Next(0); !toMain {
		t.Fatal("root must forward to main")
	}
	cases := []struct{ node, parent int }{
		{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {6, 2},
	}
	for _, c := range cases {
		p, toMain := top.Next(c.node)
		if toMain || p != c.parent {
			t.Fatalf("parent of %d = %d (toMain=%v), want %d", c.node, p, toMain, c.parent)
		}
	}
	if ch := top.Children(0); len(ch) != 2 || ch[0] != 1 || ch[1] != 2 {
		t.Fatalf("children of root: %v", ch)
	}
	if ch := top.Children(3); len(ch) != 0 {
		t.Fatalf("leaf has children: %v", ch)
	}
	if top.Depth(0) != 1 || top.Depth(1) != 2 || top.Depth(6) != 3 {
		t.Fatal("depth calculation wrong")
	}
}

func TestTreeTopologyPartialLevel(t *testing.T) {
	top := TreeTopology{Nodes: 6}
	if ch := top.Children(2); len(ch) != 1 || ch[0] != 5 {
		t.Fatalf("children of 2 in 6-node tree: %v", ch)
	}
}

// A single-node tree degenerates to the direct configuration: the only
// node is the root, forwards straight to main, and has no children.
func TestTreeTopologySingleNode(t *testing.T) {
	top := TreeTopology{Nodes: 1}
	if _, toMain := top.Next(0); !toMain {
		t.Fatal("single-node tree: node 0 must forward to main")
	}
	if ch := top.Children(0); len(ch) != 0 {
		t.Fatalf("single-node tree: root has children %v", ch)
	}
	if d := top.Depth(0); d != 1 {
		t.Fatalf("single-node tree: depth %d, want 1", d)
	}
}

// Children of a leaf must be empty for every leaf, including the last
// node of a partially filled level and trees of even and odd size.
func TestTreeTopologyLeafChildren(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 6, 7, 8, 31, 32} {
		top := TreeTopology{Nodes: nodes}
		for node := 0; node < nodes; node++ {
			left := 2*node + 1
			if left < nodes {
				continue // interior node
			}
			if ch := top.Children(node); len(ch) != 0 {
				t.Fatalf("nodes=%d: leaf %d has children %v", nodes, node, ch)
			}
		}
		// The last interior node may have one or two children, never more.
		for node := 0; node < nodes; node++ {
			if ch := top.Children(node); len(ch) > 2 {
				t.Fatalf("nodes=%d: node %d has %d children", nodes, node, len(ch))
			}
		}
	}
}

// Routing is deterministic under equal-time events: when every node
// emits a message at the same simulated instant, the per-hop arrival
// order at each parent (and at main) is fixed by FIFO tie-breaking in
// the event queue, so two identical runs observe identical orders.
func TestTreeRoutingDeterministicAtEqualTimes(t *testing.T) {
	route := func() []int {
		top := TreeTopology{Nodes: 7}
		sim := des.New()
		var arrivals []int // node ids in the order their traffic reaches main
		var hop func(at, from int)
		hop = func(at, from int) {
			next, toMain := top.Next(at)
			if toMain {
				arrivals = append(arrivals, from)
				return
			}
			// Identical per-hop latency keeps every relay at an equal
			// timestamp, forcing the queue to break ties by insertion order.
			sim.Schedule(10, func() { hop(next, from) })
		}
		for node := 0; node < top.Nodes; node++ {
			node := node
			sim.Schedule(5, func() { hop(node, node) })
		}
		sim.RunAll()
		return arrivals
	}

	a, b := route(), route()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("equal-time routing diverged between runs:\n%v\n%v", a, b)
	}
	if len(a) != 7 {
		t.Fatalf("lost traffic: %d of 7 messages reached main (%v)", len(a), a)
	}
	// The root's own sample needs no relay hop, so it must arrive first;
	// deeper nodes arrive strictly later, in node order within a level.
	want := []int{0, 1, 2, 3, 4, 5, 6}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("arrival order %v, want FIFO level order %v", a, want)
	}
}

// Property: in any tree, following Next from every node terminates at the
// main process within Depth hops, and parent/child relations agree.
func TestQuickTreeReachesMain(t *testing.T) {
	f := func(n uint8) bool {
		nodes := int(n)%255 + 1
		top := TreeTopology{Nodes: nodes}
		for node := 0; node < nodes; node++ {
			cur, hops := node, 0
			for {
				next, toMain := top.Next(cur)
				hops++
				if toMain {
					break
				}
				if next < 0 || next >= nodes || next >= cur {
					return false // parent must be a smaller index
				}
				cur = next
				if hops > nodes {
					return false // cycle
				}
			}
			if hops != top.Depth(node) {
				return false
			}
			// Parent agreement: node appears among its parent's children.
			if parent, toMain := top.Next(node); !toMain {
				found := false
				for _, c := range top.Children(parent) {
					if c == node {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
