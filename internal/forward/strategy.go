package forward

import (
	"errors"
	"fmt"
)

// Action is a Strategy's verdict for one forwarding decision point.
type Action int

const (
	// Accumulate keeps buffering: the daemon waits for more samples.
	Accumulate Action = iota
	// ForwardNow drains one batch of the size returned alongside the
	// action and forwards it as a single message.
	ForwardNow
	// FlushAll drains every buffered sample into one message regardless of
	// any batch target (a latency escape hatch for custom strategies).
	FlushAll
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Accumulate:
		return "accumulate"
	case ForwardNow:
		return "forward"
	case FlushAll:
		return "flush"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Feedback is the completion report a daemon feeds back to its Strategy
// for every locally collected batch, at the simulated instant the message
// is handed to the network. All quantities derive from the simulated clock
// and the daemon's own buffers — never from wall-clock time — so feedback-
// driven strategies stay byte-reproducible and replication-parallel-safe.
type Feedback struct {
	// Now is the simulated time (microseconds) of the network handoff.
	Now float64
	// Samples is the batch size forwarded.
	Samples int
	// NewestAgeUS is the age of the newest sample in the batch: the
	// collection CPU demand plus CPU queueing — the daemon-side component
	// of the forwarding latency the main process will observe.
	NewestAgeUS float64
	// OldestAgeUS is the age of the oldest sample; it additionally
	// includes the batch accumulation wait.
	OldestAgeUS float64
	// Buffered is the number of samples still readable after the drain —
	// the pipe-occupancy signal of the daemon's local backlog.
	Buffered int
	// Capacity is the daemon's total buffering (pipe capacities plus one
	// blocked writer per pipe).
	Capacity int
}

// Occupancy returns Buffered/Capacity in [0,1].
func (f Feedback) Occupancy() float64 {
	if f.Capacity <= 0 {
		return 0
	}
	return float64(f.Buffered) / float64(f.Capacity)
}

// Strategy is a pluggable forwarding-scheduling policy: it decides, each
// time a daemon is free to work and samples are buffered, whether to
// forward now, keep accumulating, or flush everything, and it receives
// completion feedback for every batch it forwarded. The built-ins are
// NewCF (collect-and-forward), NewFixedBF (batch-and-forward at a fixed
// batch size — the two policies of the paper's Figure 3), and
// NewAdaptiveBF (feedback-controlled batch size, the ROADMAP extension).
//
// Contract: Decide is called on the simulated clock with the number of
// readable samples and the daemon's total buffering; returning ForwardNow
// with a batch larger than either is safe (the daemon clamps), but a
// strategy that never returns a reachable batch stalls forwarding until
// the flush timeout (if any) fires. Strategies must be deterministic
// functions of their inputs and internal state: no wall-clock reads, no
// unseeded randomness, or byte-reproducibility across replications and
// worker counts is lost.
type Strategy interface {
	// Decide picks the action for the current decision point. The int is
	// the batch size to drain when the action is ForwardNow.
	Decide(now float64, buffered, capacity int) (Action, int)
	// Observe receives completion feedback for one forwarded batch.
	Observe(fb Feedback)
	// Clone returns the per-daemon instance wired into each daemon:
	// stateless strategies may return themselves, stateful ones must
	// return a fresh controller so daemons never share mutable state.
	Clone() Strategy
	// String renders the strategy in -policy spec form ("cf", "bf:32",
	// "abf", "abf:1.5").
	String() string
}

// CostSeeder is implemented by strategies that seed their internal model
// from the daemon's forwarding cost model; the daemon calls it once at
// Start, before any Decide.
type CostSeeder interface {
	SeedFromCost(CostModel)
}

// Validator is implemented by strategies whose configuration can be
// invalid; core.Config.Validate surfaces the error before a run starts.
type Validator interface {
	Validate() error
}

// cfStrategy forwards every sample as soon as it is collected.
type cfStrategy struct{}

// NewCF returns the collect-and-forward strategy: one message per sample,
// the policy of the pre-release Paradyn IS.
func NewCF() Strategy { return cfStrategy{} }

func (cfStrategy) Decide(now float64, buffered, capacity int) (Action, int) {
	return ForwardNow, 1
}
func (cfStrategy) Observe(Feedback)  {}
func (cfStrategy) Clone() Strategy   { return cfStrategy{} }
func (cfStrategy) String() string    { return "cf" }

// fixedBFStrategy accumulates a fixed batch before forwarding.
type fixedBFStrategy struct{ batch int }

// NewFixedBF returns the batch-and-forward strategy at a fixed batch
// size (>= 1), the policy added to Paradyn release 1.0. The daemon clamps
// the target to its total buffering, exactly like the legacy
// Config.BatchSize field, so an oversized batch cannot deadlock.
func NewFixedBF(batch int) Strategy {
	if batch < 1 {
		batch = 1
	}
	return fixedBFStrategy{batch: batch}
}

func (s fixedBFStrategy) Decide(now float64, buffered, capacity int) (Action, int) {
	thr := s.batch
	if thr > capacity && capacity > 0 {
		thr = capacity
	}
	if buffered >= thr {
		return ForwardNow, thr
	}
	return Accumulate, 0
}
func (s fixedBFStrategy) Observe(Feedback) {}
func (s fixedBFStrategy) Clone() Strategy  { return s }
func (s fixedBFStrategy) String() string   { return fmt.Sprintf("bf:%d", s.batch) }

// FromPolicy maps the legacy (Policy, BatchSize) pair onto the strategy
// it always denoted: CF ignores the batch size (it forces batch 1), BF
// yields a fixed batch. This is the deprecation shim that keeps every
// pre-redesign Config, experiment, and golden output byte-identical.
func FromPolicy(p Policy, batchSize int) Strategy {
	if p == CF {
		return NewCF()
	}
	return NewFixedBF(batchSize)
}

// ControllerConfig parameterizes the adaptive BF batch-size controller.
// The zero value selects the defaults, which are deliberately scenario-
// free: the controller seeds itself from the daemon's cost model and
// corrects from feedback, with no per-scenario tuning.
type ControllerConfig struct {
	// TargetLatencyUS is the per-message forwarding budget (microseconds)
	// the seed batch is solved from: the largest batch whose expected
	// collection-plus-transmission service time stays within the budget.
	// 0 derives the budget from the cost model as LatencyFactor times the
	// CF service baseline (mean per-message CPU + network demand).
	TargetLatencyUS float64
	// LatencyFactor scales the auto-derived budget (default 1.5: allow
	// 50% over the CF service floor, which buys an order of magnitude in
	// per-sample CPU amortization on the Table 2 cost model).
	LatencyFactor float64
	// MinBatch and MaxBatch bound the target (defaults 1 and 128, the
	// Figure 19 sweep range).
	MinBatch, MaxBatch int
	// Window is the control interval in forwarded messages (default 16).
	Window int
	// OccHigh is the buffer-occupancy fraction above which the target
	// doubles to drain backlog with better amortization (default 0.35).
	OccHigh float64
	// Surge is the ratio of the EWMA latency to its observed floor that
	// signals overload and doubles the target (default 3): when the
	// daemon-side delay grows to several times the best this scenario has
	// shown, the node is saturating and fewer, larger messages shed
	// per-message overhead. Latency alone only surges when occupancy is
	// at least OccHigh/2 — delay without backlog is application CPU
	// contention that batching cannot amortize.
	Surge float64
	// Relax is the latency-to-floor ratio the EWMA must come back under —
	// with occupancy also low — before an elevated target decays toward
	// the seed (default 1.5). The Surge/Relax gap is the hysteresis band
	// that prevents limit cycles.
	Relax float64
	// CalmWindows is how many consecutive calm control windows are
	// required before each decay step (default 4), damping boundary-load
	// flapping.
	CalmWindows int
}

// withDefaults fills zero fields.
func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.LatencyFactor == 0 {
		c.LatencyFactor = 1.5
	}
	if c.MinBatch == 0 {
		c.MinBatch = 1
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 128
	}
	if c.Window == 0 {
		c.Window = 16
	}
	if c.OccHigh == 0 {
		c.OccHigh = 0.35
	}
	if c.Surge == 0 {
		c.Surge = 3
	}
	if c.Relax == 0 {
		c.Relax = 1.5
	}
	if c.CalmWindows == 0 {
		c.CalmWindows = 4
	}
	return c
}

// Validate checks the configuration.
func (c ControllerConfig) Validate() error {
	d := c.withDefaults()
	switch {
	case c.TargetLatencyUS < 0:
		return errors.New("forward: adaptive TargetLatencyUS must be >= 0")
	case d.LatencyFactor <= 1:
		return errors.New("forward: adaptive LatencyFactor must be > 1")
	case d.MinBatch < 1 || d.MaxBatch < d.MinBatch:
		return errors.New("forward: adaptive needs 1 <= MinBatch <= MaxBatch")
	case d.Window < 1:
		return errors.New("forward: adaptive Window must be >= 1")
	case d.OccHigh <= 0 || d.OccHigh > 1:
		return errors.New("forward: adaptive OccHigh must be in (0,1]")
	case d.Surge <= 1:
		return errors.New("forward: adaptive Surge must be > 1")
	case d.Relax <= 1 || d.Relax >= d.Surge:
		return errors.New("forward: adaptive needs 1 < Relax < Surge")
	case d.CalmWindows < 1:
		return errors.New("forward: adaptive CalmWindows must be >= 1")
	}
	return nil
}

// BatchAdjustment records one control decision of the adaptive
// controller, for inspection by tests and the ext-adaptive-bf experiment.
type BatchAdjustment struct {
	Now       float64 // simulated time of the decision (microseconds)
	LatencyUS float64 // EWMA latency estimate driving it
	Occupancy float64 // EWMA buffer occupancy driving it
	From, To  int     // batch target before and after
}

// AdaptiveBFStrategy regulates the BF batch size with a deterministic
// hysteresis law driven by the same simulated-clock signals the
// observability samplers export — pipe occupancy and per-message
// forwarding latency — so the batch-size knee of Figure 19 is tracked
// instead of tuned per scenario.
//
// The seed target is solved from the cost model: the largest batch whose
// expected service time L(n) = E[msgCPU] + E[msgNet] + (cpu+net per extra
// sample)(n-1) stays within the budget. On the Table 2 costs that lands
// near the Figure 19 knee (the per-message cost dominates per-sample cost
// by ~30x, so most of the amortization is already banked there), while the
// forwarding latency a batch actually experiences is dominated by CPU
// scheduling waits the closed form cannot see. Feedback therefore corrects
// for load, not for the model: every Window messages the controller
// compares the EWMA of the measured daemon-side delay against the lowest
// EWMA this run has shown (the scenario's own latency floor — an absolute
// budget would be mis-scaled against queueing that varies by orders of
// magnitude across scenarios). Occupancy above OccHigh — or latency above
// Surge x floor with occupancy at least OccHigh/2, so that delay without
// backlog (application CPU contention batching cannot fix) is ignored —
// means the node is saturating: the target doubles, shedding per-message
// overhead. Once occupancy is low and latency is back under
// Relax x floor for CalmWindows consecutive windows, an elevated target
// halves back toward the seed. Inside the Surge/Relax band it holds — the
// hysteresis that prevents limit cycles. All inputs are simulated-clock
// quantities, so runs are byte-reproducible at any replication-worker
// count and under any calendar-queue implementation.
type AdaptiveBFStrategy struct {
	cfg    ControllerConfig
	cost   CostModel
	seeded bool

	budgetUS float64
	seed     int // the model-derived resting target
	target   int
	ewmaLat  float64
	ewmaOcc  float64
	latFloor float64
	warm     bool
	count    int
	calm     int

	history []BatchAdjustment
}

// NewAdaptiveBF returns an adaptive batch-and-forward strategy. The
// controller state is created per daemon by Clone; the returned value is
// the prototype.
func NewAdaptiveBF(cfg ControllerConfig) *AdaptiveBFStrategy {
	s := &AdaptiveBFStrategy{cfg: cfg.withDefaults()}
	s.SeedFromCost(DefaultCostModel())
	s.seeded = false // a real cost model may still re-seed at wiring time
	return s
}

// Validate implements Validator.
func (s *AdaptiveBFStrategy) Validate() error { return s.cfg.Validate() }

// SeedFromCost implements CostSeeder: it derives the latency budget and
// the initial batch target from the forwarding cost model. It is a no-op
// once feedback has arrived (re-wiring must not reset a live controller).
func (s *AdaptiveBFStrategy) SeedFromCost(cost CostModel) {
	if s.seeded && s.count > 0 {
		return
	}
	s.cost = cost
	base := cost.PerMsgCPU.Mean() + cost.PerMsgNet.Mean()
	s.budgetUS = s.cfg.TargetLatencyUS
	if s.budgetUS <= 0 {
		s.budgetUS = s.cfg.LatencyFactor * base
	}
	perExtra := cost.PerSampleCPU + cost.PerSampleNet
	n := s.cfg.MinBatch
	if perExtra > 0 && s.budgetUS > base {
		n = 1 + int((s.budgetUS-base)/perExtra)
	} else if s.budgetUS > base {
		n = s.cfg.MaxBatch
	}
	s.seed = clampInt(n, s.cfg.MinBatch, s.cfg.MaxBatch)
	s.target = s.seed
	s.seeded = true
}

// Decide implements Strategy.
func (s *AdaptiveBFStrategy) Decide(now float64, buffered, capacity int) (Action, int) {
	thr := s.target
	if thr > capacity && capacity > 0 {
		thr = capacity
	}
	if buffered >= thr {
		return ForwardNow, thr
	}
	return Accumulate, 0
}

// Observe implements Strategy: it folds one batch's completion feedback
// into the EWMAs and, at window boundaries, runs the control law.
func (s *AdaptiveBFStrategy) Observe(fb Feedback) {
	// Latency estimate: the measured daemon-side delay plus the expected
	// per-message network transmission. The network term uses the
	// distribution mean — a deterministic quantity — because the actual
	// transmission is sampled after the decision point. The deterministic
	// per-extra-sample marshaling cost is subtracted out: it grows
	// linearly with the batch, so leaving it in would bias the comparison
	// of an elevated target against a floor recorded at a smaller one and
	// pin the controller high after a surge. What remains — CPU queueing
	// wait plus the per-message service terms — is comparable across
	// batch sizes.
	lat := fb.NewestAgeUS - s.cost.PerSampleCPU*float64(fb.Samples-1) + s.cost.PerMsgNet.Mean()
	if lat < 0 {
		lat = 0
	}
	occ := fb.Occupancy()
	alpha := 2.0 / (float64(s.cfg.Window) + 1)
	if !s.warm {
		s.ewmaLat, s.ewmaOcc, s.warm = lat, occ, true
	} else {
		s.ewmaLat += alpha * (lat - s.ewmaLat)
		s.ewmaOcc += alpha * (occ - s.ewmaOcc)
	}
	s.count++
	if s.count%s.cfg.Window != 0 {
		return
	}
	// The floor is the lowest fully-warmed EWMA seen this run: the
	// scenario's own best-case daemon-side delay.
	if s.count >= s.cfg.Window && (s.latFloor == 0 || s.ewmaLat < s.latFloor) {
		s.latFloor = s.ewmaLat
	}
	from := s.target
	// The latency-surge condition is gated on at least moderate occupancy:
	// a larger batch sheds the daemon's own per-message overhead, which
	// only helps when samples are actually backing up. Latency spiking
	// over Surge x floor with near-empty buffers is contention from the
	// application processes' own CPU bursts — batching cannot amortize
	// that, and reacting to it would make heavy-tailed workloads oscillate.
	surging := s.ewmaOcc > s.cfg.OccHigh ||
		(s.ewmaOcc >= s.cfg.OccHigh/2 && s.latFloor > 0 && s.ewmaLat > s.cfg.Surge*s.latFloor)
	calm := s.ewmaOcc < s.cfg.OccHigh/2 &&
		(s.latFloor == 0 || s.ewmaLat < s.cfg.Relax*s.latFloor)
	switch {
	case surging:
		// Saturating: fewer, larger messages shed per-message overhead.
		s.calm = 0
		s.target = clampInt(s.target*2, s.cfg.MinBatch, s.cfg.MaxBatch)
	case calm && s.target > s.seed:
		// Load has receded: decay the elevated target toward the seed,
		// one halving per CalmWindows consecutive calm windows.
		s.calm++
		if s.calm < s.cfg.CalmWindows {
			return
		}
		s.calm = 0
		next := s.target / 2
		if next < s.seed {
			next = s.seed
		}
		s.target = clampInt(next, s.cfg.MinBatch, s.cfg.MaxBatch)
	default:
		s.calm = 0
		return // inside the hysteresis band, or already at the seed: hold
	}
	if s.target != from {
		s.history = append(s.history, BatchAdjustment{
			Now: fb.Now, LatencyUS: s.ewmaLat, Occupancy: s.ewmaOcc,
			From: from, To: s.target,
		})
	}
}

// Clone implements Strategy: each daemon gets an independent controller.
func (s *AdaptiveBFStrategy) Clone() Strategy {
	return &AdaptiveBFStrategy{cfg: s.cfg, cost: s.cost, seeded: s.seeded,
		budgetUS: s.budgetUS, seed: s.seed, target: s.target}
}

// String implements Strategy in -policy spec form: "abf" for the
// auto-derived budget, "abf:<ms>" for an explicit one.
func (s *AdaptiveBFStrategy) String() string {
	if s.cfg.TargetLatencyUS > 0 {
		return fmt.Sprintf("abf:%g", s.cfg.TargetLatencyUS/1000)
	}
	return "abf"
}

// Target returns the batch target currently in force.
func (s *AdaptiveBFStrategy) Target() int { return s.target }

// BudgetUS returns the latency budget in force (microseconds).
func (s *AdaptiveBFStrategy) BudgetUS() float64 { return s.budgetUS }

// Adjustments returns the control-decision history.
func (s *AdaptiveBFStrategy) Adjustments() []BatchAdjustment { return s.history }

// EWMALatencyUS returns the smoothed batch-size-comparable latency
// estimate (microseconds) currently driving the control law.
func (s *AdaptiveBFStrategy) EWMALatencyUS() float64 { return s.ewmaLat }

// EWMAOccupancy returns the smoothed post-drain buffer occupancy in
// [0,1] currently driving the control law.
func (s *AdaptiveBFStrategy) EWMAOccupancy() float64 { return s.ewmaOcc }

// FloorUS returns the lowest window-boundary latency EWMA seen this run
// (microseconds) — the scenario's own best-case daemon-side delay the
// surge and relax thresholds are relative to. Zero until the first full
// control window.
func (s *AdaptiveBFStrategy) FloorUS() float64 { return s.latFloor }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
