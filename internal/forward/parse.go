package forward

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePolicy parses a legacy forwarding-policy name ("cf" or "bf", any
// case). It is the inverse of Policy.String up to case.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cf":
		return CF, nil
	case "bf":
		return BF, nil
	}
	return CF, fmt.Errorf("forward: unknown policy %q (cf, bf)", s)
}

// ParseConfig parses a forwarding-configuration name ("direct" or
// "tree", any case). It is the inverse of Config.String up to case.
func ParseConfig(s string) (Config, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "direct":
		return Direct, nil
	case "tree":
		return Tree, nil
	}
	return Direct, fmt.Errorf("forward: unknown forwarding config %q (direct, tree)", s)
}

// StrategySpec is the parsed form of a -policy flag value. The grammar is
//
//	cf              collect-and-forward
//	bf              batch-and-forward at the tool's default batch size
//	bf:<n>          batch-and-forward at batch size n >= 1
//	abf             adaptive batch-and-forward, auto latency budget
//	abf:<ms>        adaptive batch-and-forward, explicit budget in ms
//
// A zero StrategySpec means "not specified" (Policy CF with Batch 0 is
// impossible to parse: bare "cf" yields Batch 1).
type StrategySpec struct {
	Policy   Policy  // CF or BF; BF also covers the adaptive variant
	Adaptive bool    // true for abf specs
	Batch    int     // fixed batch size; 0 after bare "bf" (tool default)
	TargetMS float64 // adaptive latency budget in ms; 0 = auto-derive
}

// ParseStrategySpec parses a -policy spec string. Malformed specs —
// unknown kinds, bf:0, abf:0, negative values, trailing garbage — are
// rejected here, at flag-parse time, with descriptive errors.
func ParseStrategySpec(s string) (StrategySpec, error) {
	kind, arg, hasArg := strings.Cut(strings.TrimSpace(s), ":")
	switch strings.ToLower(kind) {
	case "cf":
		if hasArg {
			return StrategySpec{}, fmt.Errorf("forward: policy spec %q: cf takes no argument", s)
		}
		return StrategySpec{Policy: CF, Batch: 1}, nil
	case "bf":
		spec := StrategySpec{Policy: BF}
		if hasArg {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return StrategySpec{}, fmt.Errorf("forward: policy spec %q: batch size must be an integer >= 1", s)
			}
			spec.Batch = n
		}
		return spec, nil
	case "abf":
		spec := StrategySpec{Policy: BF, Adaptive: true}
		if hasArg {
			ms, err := strconv.ParseFloat(arg, 64)
			if err != nil || ms <= 0 {
				return StrategySpec{}, fmt.Errorf("forward: policy spec %q: latency budget must be a positive number of ms", s)
			}
			spec.TargetMS = ms
		}
		return spec, nil
	}
	return StrategySpec{}, fmt.Errorf("forward: unknown policy spec %q (cf, bf[:<n>], abf[:<ms>])", s)
}

// String renders the spec back in -policy form; it round-trips through
// ParseStrategySpec.
func (s StrategySpec) String() string {
	switch {
	case s.Adaptive && s.TargetMS > 0:
		return fmt.Sprintf("abf:%g", s.TargetMS)
	case s.Adaptive:
		return "abf"
	case s.Policy == CF:
		return "cf"
	case s.Batch > 0:
		return fmt.Sprintf("bf:%d", s.Batch)
	default:
		return "bf"
	}
}

// NewStrategy builds the Strategy the spec denotes. defaultBatch supplies
// the tool's batch default for a bare "bf" spec.
func (s StrategySpec) NewStrategy(defaultBatch int) Strategy {
	if s.Adaptive {
		return NewAdaptiveBF(ControllerConfig{TargetLatencyUS: s.TargetMS * 1000})
	}
	if s.Policy == CF {
		return NewCF()
	}
	b := s.Batch
	if b == 0 {
		b = defaultBatch
	}
	return NewFixedBF(b)
}
