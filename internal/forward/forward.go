// Package forward defines the instrumentation-data forwarding machinery of
// the Paradyn IS model: the collect-and-forward (CF) and batch-and-forward
// (BF) scheduling policies (Figure 3 of the paper), the direct and
// binary-tree forwarding configurations (Figure 4), and the cost model that
// prices daemon CPU and network occupancy per forwarded message.
package forward

import (
	"fmt"

	"rocc/internal/resources"
	"rocc/internal/rng"
)

// Policy selects how a Paradyn daemon schedules data forwarding.
type Policy int

const (
	// CF is collect-and-forward: every sample is forwarded as soon as it is
	// collected, costing one system call per sample. This is the policy of
	// the pre-release Paradyn IS.
	CF Policy = iota
	// BF is batch-and-forward: samples accumulate in a buffer until a batch
	// is full, then are forwarded with a single system call. This policy was
	// added to Paradyn release 1.0 based on the feedback from this study.
	BF
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case CF:
		return "CF"
	case BF:
		return "BF"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config selects a forwarding configuration for the MPP case.
type Config int

const (
	// Direct forwarding: every daemon sends straight to the main process.
	Direct Config = iota
	// Tree forwarding: daemons are logically arranged as a binary tree;
	// non-leaf daemons receive, merge, and relay their children's data.
	Tree
)

// String implements fmt.Stringer.
func (c Config) String() string {
	switch c {
	case Direct:
		return "direct"
	case Tree:
		return "tree"
	}
	return fmt.Sprintf("Config(%d)", int(c))
}

// Message is one forwarding unit: a single sample under CF or a batch
// under BF. Hops counts store-and-forward stages for tree forwarding.
type Message struct {
	Samples  []resources.Sample
	FromNode int
	Hops     int
}

// CostModel prices the daemon work of forwarding. A message costs one
// fixed per-message term (the system call and protocol processing that CF
// pays per sample and BF amortizes over a batch) plus a small per-extra-
// sample term (marshaling each additional sample), on both the CPU and the
// network. Merge prices the extra CPU a non-leaf tree daemon spends
// receiving and merging one incoming message (the D_Pdm,CPU of eq. 13).
type CostModel struct {
	PerMsgCPU    rng.Dist // Table 2: exponential(267)
	PerSampleCPU float64  // incremental CPU per sample beyond the first
	PerMsgNet    rng.Dist // Table 2: exponential(71)
	PerSampleNet float64  // incremental network time per extra sample
	Merge        rng.Dist // tree-forwarding merge CPU per received message
}

// DefaultCostModel returns the Table 2 parameterization. The per-sample
// increments are chosen so that the per-sample CPU cost at batch size 128
// is a few percent of the CF cost, reproducing the super-linear initial
// drop and the leveling-off ("knee") of Figure 19.
func DefaultCostModel() CostModel {
	return CostModel{
		PerMsgCPU:    rng.Exponential{MeanVal: 267},
		PerSampleCPU: 8,
		PerMsgNet:    rng.Exponential{MeanVal: 71},
		PerSampleNet: 2,
		Merge:        rng.Exponential{MeanVal: 267},
	}
}

// MsgCPU samples the CPU demand to collect and forward a message of
// nsamples samples.
func (c CostModel) MsgCPU(r *rng.Stream, nsamples int) float64 {
	if nsamples <= 0 {
		return 0
	}
	return c.PerMsgCPU.Sample(r) + c.PerSampleCPU*float64(nsamples-1)
}

// MsgNet samples the network demand to transmit a message of nsamples
// samples.
func (c CostModel) MsgNet(r *rng.Stream, nsamples int) float64 {
	if nsamples <= 0 {
		return 0
	}
	return c.PerMsgNet.Sample(r) + c.PerSampleNet*float64(nsamples-1)
}

// MergeCPU samples the CPU demand for a non-leaf daemon to merge one
// received message.
func (c CostModel) MergeCPU(r *rng.Stream) float64 { return c.Merge.Sample(r) }

// Topology routes daemon output: either to another node's daemon or to the
// main Paradyn process.
type Topology interface {
	// Next returns the next hop for traffic leaving node. toMain reports
	// whether the destination is the main Paradyn process (in which case
	// parent is meaningless).
	Next(node int) (parent int, toMain bool)
	// Children returns the child nodes whose daemons forward to node
	// (empty for direct forwarding and for tree leaves).
	Children(node int) []int
}

// DirectTopology sends every daemon's output straight to the main process.
type DirectTopology struct{}

// Next implements Topology.
func (DirectTopology) Next(int) (int, bool) { return 0, true }

// Children implements Topology.
func (DirectTopology) Children(int) []int { return nil }

// TreeTopology arranges nodes 0..N-1 as a complete binary tree rooted at
// node 0; the root forwards to the main process. Node i's parent is
// (i-1)/2 and its children are 2i+1 and 2i+2 where those exist.
type TreeTopology struct{ Nodes int }

// Next implements Topology.
func (t TreeTopology) Next(node int) (int, bool) {
	if node <= 0 {
		return 0, true
	}
	return (node - 1) / 2, false
}

// Children implements Topology.
func (t TreeTopology) Children(node int) []int {
	var out []int
	if l := 2*node + 1; l < t.Nodes {
		out = append(out, l)
	}
	if r := 2*node + 2; r < t.Nodes {
		out = append(out, r)
	}
	return out
}

// Depth returns the number of store-and-forward hops from node to the main
// process (1 for the root, 2 for its children, ...).
func (t TreeTopology) Depth(node int) int {
	d := 1
	for node > 0 {
		node = (node - 1) / 2
		d++
	}
	return d
}

// NewTopology builds the topology for a forwarding configuration.
func NewTopology(cfg Config, nodes int) Topology {
	if cfg == Tree {
		return TreeTopology{Nodes: nodes}
	}
	return DirectTopology{}
}
