package forward

import (
	"strings"
	"testing"
)

func TestCFStrategyDecide(t *testing.T) {
	s := NewCF()
	for _, buffered := range []int{1, 5, 100} {
		act, n := s.Decide(0, buffered, 65)
		if act != ForwardNow || n != 1 {
			t.Fatalf("cf Decide(buffered=%d) = %v,%d, want forward,1", buffered, act, n)
		}
	}
	if s.Clone() != s {
		t.Fatal("cf must be stateless: Clone returns itself")
	}
	if s.String() != "cf" {
		t.Fatalf("cf String = %q", s.String())
	}
}

// FixedBF reproduces the legacy batch-threshold loop exactly: the target
// clamps to the daemon's total buffering, forwards only once the clamped
// threshold is reachable, and never returns a partial batch.
func TestFixedBFStrategyDecide(t *testing.T) {
	s := NewFixedBF(16)
	if act, _ := s.Decide(0, 15, 65); act != Accumulate {
		t.Fatal("below threshold must accumulate")
	}
	if act, n := s.Decide(0, 16, 65); act != ForwardNow || n != 16 {
		t.Fatalf("at threshold = %v,%d", act, n)
	}
	if act, n := s.Decide(0, 40, 65); act != ForwardNow || n != 16 {
		t.Fatalf("above threshold must still drain one batch, got %v,%d", act, n)
	}
	// Oversized batch clamps to capacity — the legacy anti-deadlock rule.
	big := NewFixedBF(1000)
	if act, n := big.Decide(0, 5, 5); act != ForwardNow || n != 5 {
		t.Fatalf("clamped Decide = %v,%d, want forward,5", act, n)
	}
	if act, _ := big.Decide(0, 4, 5); act != Accumulate {
		t.Fatal("below clamped threshold must accumulate")
	}
	if NewFixedBF(0).String() != "bf:1" || NewFixedBF(-3).String() != "bf:1" {
		t.Fatal("batch < 1 must clamp to 1")
	}
}

func TestFromPolicy(t *testing.T) {
	if got := FromPolicy(CF, 32).String(); got != "cf" {
		t.Fatalf("CF maps to %q", got)
	}
	if got := FromPolicy(BF, 32).String(); got != "bf:32" {
		t.Fatalf("BF/32 maps to %q", got)
	}
	if got := FromPolicy(BF, 0).String(); got != "bf:1" {
		t.Fatalf("BF/0 maps to %q", got)
	}
}

func TestFeedbackOccupancy(t *testing.T) {
	if occ := (Feedback{Buffered: 13, Capacity: 65}).Occupancy(); occ != 13.0/65 {
		t.Fatalf("occupancy %v", occ)
	}
	if occ := (Feedback{Buffered: 5, Capacity: 0}).Occupancy(); occ != 0 {
		t.Fatalf("zero capacity occupancy %v", occ)
	}
}

func TestControllerConfigValidate(t *testing.T) {
	if err := (ControllerConfig{}).Validate(); err != nil {
		t.Fatalf("zero config (defaults) must validate: %v", err)
	}
	cases := []struct {
		name string
		cfg  ControllerConfig
		sub  string
	}{
		{"negative budget", ControllerConfig{TargetLatencyUS: -1}, "TargetLatencyUS"},
		{"factor at 1", ControllerConfig{LatencyFactor: 1}, "LatencyFactor"},
		{"min over max", ControllerConfig{MinBatch: 8, MaxBatch: 4}, "MinBatch <= MaxBatch"},
		{"negative window", ControllerConfig{Window: -1}, "Window"},
		{"occ over 1", ControllerConfig{OccHigh: 1.5}, "OccHigh"},
		{"surge at 1", ControllerConfig{Surge: 1}, "Surge"},
		{"relax >= surge", ControllerConfig{Relax: 3, Surge: 2}, "Relax < Surge"},
		{"negative calm", ControllerConfig{CalmWindows: -2}, "CalmWindows"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q, want substring %q", c.name, err, c.sub)
		}
	}
}

// The seed batch solves the budget against the cost model: with the
// Table 2 costs (base 267+71=338 us, 10 us per extra sample) and the
// default 1.5x budget, the seed is 1 + (507-338)/10 = 17.
func TestAdaptiveSeedFromCost(t *testing.T) {
	s := NewAdaptiveBF(ControllerConfig{})
	s.SeedFromCost(DefaultCostModel())
	if s.Target() != 17 {
		t.Fatalf("default seed target %d, want 17", s.Target())
	}
	if s.BudgetUS() != 1.5*338 {
		t.Fatalf("budget %v, want 507", s.BudgetUS())
	}
	// An explicit 1 ms budget admits a larger batch.
	s2 := NewAdaptiveBF(ControllerConfig{TargetLatencyUS: 1000})
	s2.SeedFromCost(DefaultCostModel())
	if want := 67; s2.Target() != want { // 1 + floor((1000-338)/10)
		t.Fatalf("1ms-budget seed %d, want %d", s2.Target(), want)
	}
}

// feedN delivers n synthetic completion reports: the newest-sample age
// models a queueing wait plus the batch's own marshaling service (the
// Table 2 per-sample CPU term), which is what a real daemon measures.
func feedN(s *AdaptiveBFStrategy, n int, wait float64, occ float64) {
	for i := 0; i < n; i++ {
		batch := s.Target()
		s.Observe(Feedback{
			Now: float64(i), Samples: batch,
			NewestAgeUS: wait + 8*float64(batch-1),
			Buffered:    int(occ * 65), Capacity: 65,
		})
	}
}

// Step response: a calm baseline establishes the floor, a sustained
// surge doubles the target (possibly repeatedly), and a return to calm
// decays it back to the seed — where it then holds without oscillating.
func TestAdaptiveControlLawStepResponse(t *testing.T) {
	s := NewAdaptiveBF(ControllerConfig{})
	s.SeedFromCost(DefaultCostModel())
	seed := s.Target()

	// Calm baseline: 4 windows at low latency/occupancy fix the floor.
	feedN(s, 64, 500, 0.01)
	if s.Target() != seed {
		t.Fatalf("calm baseline moved the target: %d", s.Target())
	}
	if len(s.Adjustments()) != 0 {
		t.Fatalf("calm baseline recorded adjustments: %v", s.Adjustments())
	}

	// Surge: occupancy over OccHigh doubles the target each window.
	feedN(s, 32, 500, 0.9)
	if s.Target() != seed*4 {
		t.Fatalf("after 2 surge windows target %d, want %d", s.Target(), seed*4)
	}

	// A latency surge with moderate occupancy (over OccHigh/2 but under
	// OccHigh, EWMA over Surge x floor) also escalates. With near-empty
	// buffers it would not: delay without backlog is CPU contention the
	// batch size cannot amortize.
	feedN(s, 16, 50*500, 0.2)
	if s.Target() <= seed*4 {
		t.Fatalf("latency surge did not escalate: %d", s.Target())
	}
	peak := s.Target()

	// Calm again: each CalmWindows consecutive calm windows halve the
	// target until it rests at the seed.
	feedN(s, 16*4*8, 500, 0.01)
	if s.Target() != seed {
		t.Fatalf("decay did not return to seed: %d (peak %d)", s.Target(), peak)
	}

	// Holding at the seed under continued calm: no further adjustments —
	// the no-oscillation property.
	before := len(s.Adjustments())
	feedN(s, 16*16, 500, 0.01)
	if got := len(s.Adjustments()); got != before {
		t.Fatalf("steady state oscillated: %d new adjustments", got-before)
	}
	if s.Target() != seed {
		t.Fatalf("steady-state target %d, want seed %d", s.Target(), seed)
	}
}

// Inside the hysteresis band (latency between Relax and Surge x floor)
// an elevated target holds rather than flapping.
func TestAdaptiveHysteresisBandHolds(t *testing.T) {
	s := NewAdaptiveBF(ControllerConfig{})
	s.SeedFromCost(DefaultCostModel())
	feedN(s, 64, 500, 0.01) // floor ~500
	feedN(s, 16, 500, 0.9)  // one surge window: target doubles
	elevated := s.Target()
	if elevated <= 17 {
		t.Fatalf("surge did not elevate: %d", elevated)
	}
	// In-band: latency 2x floor (between Relax 1.5 and Surge 3), low occ.
	feedN(s, 16*20, 1000, 0.01)
	if s.Target() != elevated {
		t.Fatalf("in-band target moved: %d, want hold at %d", s.Target(), elevated)
	}
}

// The target respects MaxBatch under unbounded surge and MinBatch on
// decay, and a decay step never undershoots the seed.
func TestAdaptiveTargetBounds(t *testing.T) {
	s := NewAdaptiveBF(ControllerConfig{MaxBatch: 64})
	s.SeedFromCost(DefaultCostModel())
	feedN(s, 64, 500, 0.01)
	feedN(s, 16*20, 500, 0.99)
	if s.Target() != 64 {
		t.Fatalf("surge exceeded MaxBatch: %d", s.Target())
	}
	feedN(s, 16*4*20, 500, 0.01)
	if s.Target() != 17 {
		t.Fatalf("decay rested at %d, want seed 17", s.Target())
	}
}

// Clone hands each daemon an independent controller: feedback into the
// clone must not move the prototype, and vice versa.
func TestAdaptiveCloneIndependence(t *testing.T) {
	proto := NewAdaptiveBF(ControllerConfig{})
	proto.SeedFromCost(DefaultCostModel())
	clone := proto.Clone().(*AdaptiveBFStrategy)
	feedN(clone, 64, 500, 0.01)
	feedN(clone, 32, 500, 0.9)
	if clone.Target() == proto.Target() {
		t.Fatal("clone surge should not equal untouched prototype target")
	}
	if len(proto.Adjustments()) != 0 {
		t.Fatal("prototype accumulated the clone's history")
	}
	if proto.Target() != 17 {
		t.Fatalf("prototype target moved: %d", proto.Target())
	}
}

// Re-seeding is a no-op once feedback has arrived: wiring a live
// controller into a new daemon must not reset its learned state.
func TestAdaptiveReseedIsNoOpAfterFeedback(t *testing.T) {
	s := NewAdaptiveBF(ControllerConfig{})
	s.SeedFromCost(DefaultCostModel())
	feedN(s, 64, 500, 0.01)
	feedN(s, 16, 500, 0.9)
	elevated := s.Target()
	s.SeedFromCost(DefaultCostModel())
	if s.Target() != elevated {
		t.Fatalf("re-seed reset a live controller: %d, want %d", s.Target(), elevated)
	}
}

func TestActionString(t *testing.T) {
	if Accumulate.String() != "accumulate" || ForwardNow.String() != "forward" ||
		FlushAll.String() != "flush" {
		t.Fatal("action strings")
	}
	if Action(9).String() == "" {
		t.Fatal("unknown action should still render")
	}
}
