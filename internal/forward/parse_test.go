package forward

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    Policy
		wantErr bool
	}{
		{"cf", CF, false},
		{"CF", CF, false},
		{" bf ", BF, false},
		{"Bf", BF, false},
		{"", CF, true},
		{"batch", CF, true},
		{"bf:16", CF, true}, // specs are ParseStrategySpec's job
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParsePolicy(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
		if err != nil && !strings.Contains(err.Error(), "unknown policy") {
			t.Errorf("ParsePolicy(%q) error %q not descriptive", c.in, err)
		}
	}
}

// ParsePolicy inverts Policy.String for both defined policies.
func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{CF, BF} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, err %v", p, got, err)
		}
	}
}

func TestParseConfig(t *testing.T) {
	cases := []struct {
		in      string
		want    Config
		wantErr bool
	}{
		{"direct", Direct, false},
		{"Direct", Direct, false},
		{"tree", Tree, false},
		{" TREE ", Tree, false},
		{"", Direct, true},
		{"ring", Direct, true},
	}
	for _, c := range cases {
		got, err := ParseConfig(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseConfig(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseConfig(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, cfg := range []Config{Direct, Tree} {
		got, err := ParseConfig(cfg.String())
		if err != nil || got != cfg {
			t.Errorf("round trip %v: got %v, err %v", cfg, got, err)
		}
	}
}

func TestParseStrategySpec(t *testing.T) {
	cases := []struct {
		in   string
		want StrategySpec
	}{
		{"cf", StrategySpec{Policy: CF, Batch: 1}},
		{"CF", StrategySpec{Policy: CF, Batch: 1}},
		{"bf", StrategySpec{Policy: BF}},
		{"bf:1", StrategySpec{Policy: BF, Batch: 1}},
		{"bf:32", StrategySpec{Policy: BF, Batch: 32}},
		{"abf", StrategySpec{Policy: BF, Adaptive: true}},
		{"abf:1.5", StrategySpec{Policy: BF, Adaptive: true, TargetMS: 1.5}},
		{"ABF:2", StrategySpec{Policy: BF, Adaptive: true, TargetMS: 2}},
		{" bf:8 ", StrategySpec{Policy: BF, Batch: 8}},
	}
	for _, c := range cases {
		got, err := ParseStrategySpec(c.in)
		if err != nil {
			t.Errorf("ParseStrategySpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseStrategySpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseStrategySpecRejectsMalformed(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"bf:0", "batch size must be an integer >= 1"},
		{"bf:-4", "batch size must be an integer >= 1"},
		{"bf:2.5", "batch size must be an integer >= 1"},
		{"bf:many", "batch size must be an integer >= 1"},
		{"abf:0", "latency budget must be a positive number"},
		{"abf:-1", "latency budget must be a positive number"},
		{"abf:soon", "latency budget must be a positive number"},
		{"cf:1", "cf takes no argument"},
		{"", "unknown policy spec"},
		{"zz", "unknown policy spec"},
		{"bff:4", "unknown policy spec"},
	}
	for _, c := range cases {
		_, err := ParseStrategySpec(c.in)
		if err == nil {
			t.Errorf("ParseStrategySpec(%q): expected error", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseStrategySpec(%q) error %q, want substring %q", c.in, err, c.wantSub)
		}
	}
}

// Property: every spec that parses round-trips through String, and every
// built-in strategy's String parses back to a spec that renders the same.
func TestStrategySpecStringRoundTrip(t *testing.T) {
	f := func(batch uint8, tenthsMS uint8, kind uint8) bool {
		var spec StrategySpec
		switch kind % 3 {
		case 0:
			spec = StrategySpec{Policy: CF, Batch: 1}
		case 1:
			spec = StrategySpec{Policy: BF, Batch: int(batch)} // 0 = bare bf
		default:
			spec = StrategySpec{Policy: BF, Adaptive: true,
				TargetMS: float64(tenthsMS) / 10} // 0 = auto budget
		}
		back, err := ParseStrategySpec(spec.String())
		return err == nil && back.String() == spec.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Built-in strategies render as parseable -policy specs, and NewStrategy
// materializes each spec into the strategy that renders it.
func TestNewStrategyRoundTrip(t *testing.T) {
	for _, in := range []string{"cf", "bf:1", "bf:32", "abf", "abf:1.5"} {
		spec, err := ParseStrategySpec(in)
		if err != nil {
			t.Fatalf("ParseStrategySpec(%q): %v", in, err)
		}
		s := spec.NewStrategy(0)
		if s.String() != in {
			t.Errorf("NewStrategy(%q).String() = %q", in, s.String())
		}
		if _, err := ParseStrategySpec(s.String()); err != nil {
			t.Errorf("strategy %q does not render a parseable spec: %v", in, err)
		}
	}
	// A bare "bf" takes the tool's default batch.
	spec, _ := ParseStrategySpec("bf")
	if got := spec.NewStrategy(32).String(); got != "bf:32" {
		t.Errorf("bare bf with default 32 = %q, want bf:32", got)
	}
}
