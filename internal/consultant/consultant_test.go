package consultant

import (
	"testing"
)

func obsAllNodes(nodes int, cpu, net, blocked float64) []Observation {
	out := make([]Observation, nodes)
	for i := range out {
		out[i] = Observation{Node: i, CPUUtil: cpu, NetUtil: net, BlockedFrac: blocked}
	}
	return out
}

func TestConfirmsCPUBoundAndRefines(t *testing.T) {
	c, err := New(Config{Nodes: 4, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 is hot; others moderate. Global mean = (0.6*3+1.0)/4 = 0.7 <
	// 0.85 threshold... make all nodes hot enough for a global finding.
	for i := 0; i < 3; i++ {
		obs := obsAllNodes(4, 0.90, 0.1, 0.05)
		obs[2].CPUUtil = 0.99
		c.Ingest(obs)
	}
	fs := c.Findings()
	if len(fs) != 1 || fs[0].Hypothesis.Why != CPUBound || fs[0].Hypothesis.Node != WholeProgram {
		t.Fatalf("findings %v", fs)
	}
	if fs[0].MeanValue < 0.9 {
		t.Fatalf("evidence mean %v", fs[0].MeanValue)
	}
	// Refinement spawned per-node tests; three more hot intervals confirm
	// all four nodes (all are above threshold).
	for i := 0; i < 3; i++ {
		c.Ingest(obsAllNodes(4, 0.95, 0.1, 0.05))
	}
	nodeFs := c.NodeFindings()
	if len(nodeFs) != 4 {
		t.Fatalf("node findings %v", nodeFs)
	}
}

func TestWhereAxisIsolatesHotNode(t *testing.T) {
	c, err := New(Config{Nodes: 4, Window: 2, Thresholds: map[Why]float64{CPUBound: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	// Global mean 0.55 > 0.5 confirms the root; only node 0 (0.97)
	// confirms on refinement.
	hot := func() []Observation {
		obs := obsAllNodes(4, 0.41, 0, 0)
		obs[0].CPUUtil = 0.97
		return obs
	}
	for i := 0; i < 5; i++ {
		c.Ingest(hot())
	}
	nodeFs := c.NodeFindings()
	if len(nodeFs) != 1 || nodeFs[0].Hypothesis.Node != 0 {
		t.Fatalf("expected node 0 isolated, got %v", nodeFs)
	}
}

func TestConsecutiveWindowResetsOnDip(t *testing.T) {
	c, err := New(Config{Nodes: 1, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	hot := obsAllNodes(1, 0.99, 0, 0)
	cold := obsAllNodes(1, 0.1, 0, 0)
	c.Ingest(hot)
	c.Ingest(hot)
	c.Ingest(cold) // resets the streak
	c.Ingest(hot)
	c.Ingest(hot)
	if len(c.Findings()) != 0 {
		t.Fatal("non-consecutive exceedances must not confirm")
	}
	c.Ingest(hot)
	if len(c.Findings()) != 1 {
		t.Fatal("third consecutive exceedance should confirm")
	}
}

func TestDistinctWhyAxes(t *testing.T) {
	c, err := New(Config{Nodes: 2, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Sync-bound workload: high blocked fraction, low CPU/net.
	for i := 0; i < 2; i++ {
		c.Ingest(obsAllNodes(2, 0.3, 0.1, 0.6))
	}
	fs := c.Findings()
	if len(fs) != 1 || fs[0].Hypothesis.Why != SyncBound {
		t.Fatalf("findings %v", fs)
	}
	// Comm-bound next: bus saturated.
	for i := 0; i < 2; i++ {
		c.Ingest(obsAllNodes(2, 0.3, 0.95, 0.6))
	}
	found := map[Why]bool{}
	for _, f := range c.Findings() {
		if f.Hypothesis.Node == WholeProgram {
			found[f.Hypothesis.Why] = true
		}
	}
	if !found[SyncBound] || !found[CommBound] {
		t.Fatalf("whys found: %v", found)
	}
	if found[CPUBound] {
		t.Fatal("CPU-bound should not confirm")
	}
}

func TestActiveTestsGrowWithRefinement(t *testing.T) {
	c, err := New(Config{Nodes: 8, Window: 1, Thresholds: map[Why]float64{CPUBound: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	before := c.ActiveTests()
	if before != 3 {
		t.Fatalf("root tests %d", before)
	}
	c.Ingest(obsAllNodes(8, 0.9, 0, 0))
	// CPU root confirmed (removed) and 8 node tests spawned: 2 + 8.
	if got := c.ActiveTests(); got != 10 {
		t.Fatalf("active tests %d, want 10", got)
	}
}

func TestMissingNodesTreatedAsIdle(t *testing.T) {
	c, err := New(Config{Nodes: 4, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Only one node reports; global mean diluted below thresholds.
	c.Ingest([]Observation{{Node: 0, CPUUtil: 0.99}})
	if len(c.Findings()) != 0 {
		t.Fatal("diluted global metric must not confirm")
	}
}

func TestWhenAxisPhases(t *testing.T) {
	c, err := New(Config{Nodes: 1, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	hot := obsAllNodes(1, 0.95, 0, 0)
	cold := obsAllNodes(1, 0.1, 0, 0)
	// Intervals: hot hot (confirm at 1) hot cold cold hot hot.
	for _, o := range [][]Observation{hot, hot, hot, cold, cold, hot, hot} {
		c.Ingest(o)
	}
	h := Hypothesis{Why: CPUBound, Node: WholeProgram}
	phases := c.Phases(h)
	// Phase 1: intervals 0-2 (confirmation backdates to the window start);
	// phase 2: intervals 5.. still open.
	if len(phases) != 2 {
		t.Fatalf("phases %v", phases)
	}
	if phases[0].Start != 0 || phases[0].End != 2 {
		t.Fatalf("first phase %v", phases[0])
	}
	if phases[1].Start != 5 || phases[1].End != -1 {
		t.Fatalf("second phase %v", phases[1])
	}
	// Unconfirmed or unknown hypotheses have no phases.
	if c.Phases(Hypothesis{Why: CommBound, Node: WholeProgram}) != nil {
		t.Fatal("unconfirmed hypothesis should have no phases")
	}
}

func TestStageRefinement(t *testing.T) {
	c, err := New(Config{Nodes: 1, Window: 2, StageRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	// Comm-heavy and sync-heavy at once; shares point at network transit
	// and batch residency as the dominant candidates.
	c.SetStageShares(map[string]float64{
		"pipe-wait": 10, "batch-residency": 35, "daemon-service": 5,
		"network-transit": 40, "merge": 10, "main-receipt": 0,
	})
	for i := 0; i < 2; i++ {
		c.Ingest(obsAllNodes(1, 0.95, 0.9, 0.6))
	}
	byWhy := map[Why]Finding{}
	for _, f := range c.Findings() {
		byWhy[f.Hypothesis.Why] = f
	}
	if f := byWhy[CommBound]; f.Stage != "network-transit" || f.StageSharePct != 40 {
		t.Fatalf("CommBound refined to %q (%v%%), want network-transit 40%%", f.Stage, f.StageSharePct)
	}
	if f := byWhy[SyncBound]; f.Stage != "batch-residency" || f.StageSharePct != 35 {
		t.Fatalf("SyncBound refined to %q (%v%%), want batch-residency 35%%", f.Stage, f.StageSharePct)
	}
	// CPUBound has no stage candidates.
	if f := byWhy[CPUBound]; f.Stage != "" {
		t.Fatalf("CPUBound got stage %q, want none", f.Stage)
	}
}

func TestStageRefinementOffByDefault(t *testing.T) {
	c, err := New(Config{Nodes: 1, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.SetStageShares(map[string]float64{"network-transit": 90})
	c.Ingest(obsAllNodes(1, 0.1, 0.9, 0.1))
	fs := c.Findings()
	if len(fs) != 1 || fs[0].Stage != "" {
		t.Fatalf("refinement ran without StageRefine: %v", fs)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero nodes should fail")
	}
}

func TestStrings(t *testing.T) {
	if CPUBound.String() == "" || Why(9).String() == "" {
		t.Fatal("why strings")
	}
	h := Hypothesis{Why: CommBound, Node: WholeProgram}
	if h.String() != "CommunicationBound@WholeProgram" {
		t.Fatalf("%s", h)
	}
	h2 := Hypothesis{Why: SyncBound, Node: 3}
	if h2.String() != "SynchronizationBound@node3" {
		t.Fatalf("%s", h2)
	}
}
