package consultant

import (
	"errors"

	"rocc/internal/core"
)

// SearchResult is the outcome of a consultant run over a live simulation.
type SearchResult struct {
	Findings     []Finding
	NodeFindings []Finding
	Intervals    int
	// PeakActiveTests is the largest number of simultaneous hypothesis
	// tests — a proxy for the instrumentation demand the IS must carry.
	PeakActiveTests int
}

// Search runs the ROCC simulation in control intervals and feeds per-node
// metric observations to the Performance Consultant, returning the
// confirmed bottleneck hypotheses. This closes the loop the paper's
// introduction describes: "the Paradyn IS supports the W3 search algorithm
// ... by periodically providing instrumentation data to the main Paradyn
// process."
func Search(simCfg core.Config, cCfg Config, intervalUS float64, intervals int) (SearchResult, error) {
	if intervalUS <= 0 || intervals < 1 {
		return SearchResult{}, errors.New("consultant: need positive interval and count")
	}
	m, err := core.New(simCfg)
	if err != nil {
		return SearchResult{}, err
	}
	if cCfg.Nodes == 0 {
		cCfg.Nodes = len(m.NodeCPUs)
	}
	cons, err := New(cCfg)
	if err != nil {
		return SearchResult{}, err
	}
	if cCfg.StageRefine {
		// Stage refinement needs the per-sample latency decomposition;
		// the provenance engine only reads lifecycle hooks, so the
		// search's observations (and the run itself) are unchanged.
		if _, err := m.EnableObservability(core.ObsOptions{Provenance: true}); err != nil {
			return SearchResult{}, err
		}
	}
	m.Start()

	nodes := len(m.NodeCPUs)
	prevCPU := make([]float64, nodes)
	prevNet := 0.0
	var res SearchResult
	for i := 0; i < intervals; i++ {
		m.Sim.Run(intervalUS * float64(i+1))
		netBusy := m.Net.BusyTotal()
		netUtil := (netBusy - prevNet) / intervalUS
		prevNet = netBusy
		if netUtil > 1 {
			netUtil = 1 // contention-free networks can exceed channel time
		}

		obs := make([]Observation, nodes)
		for n := 0; n < nodes; n++ {
			busy := m.NodeCPUs[n].BusyTotal()
			cpuUtil := (busy - prevCPU[n]) / intervalUS
			prevCPU[n] = busy
			if cores := float64(coresOf(m, n)); cores > 1 {
				cpuUtil /= cores
			}
			obs[n] = Observation{Node: n, CPUUtil: cpuUtil, NetUtil: netUtil}
		}
		// Sync metric: fraction of application processes blocked on pipes
		// or waiting at the barrier, observed at the interval boundary.
		blockedPerNode := make([]int, nodes)
		appsPerNode := make([]int, nodes)
		for _, a := range m.Apps {
			node := a.Node
			if node >= nodes {
				node = 0
			}
			appsPerNode[node]++
			if a.Blocked() || a.AtBarrier() {
				blockedPerNode[node]++
			}
		}
		for n := 0; n < nodes; n++ {
			if appsPerNode[n] > 0 {
				obs[n].BlockedFrac = float64(blockedPerNode[n]) / float64(appsPerNode[n])
			}
		}
		if eng := m.Provenance(); eng != nil {
			shares := make(map[string]float64)
			for _, st := range eng.Stages() {
				shares[st.Stage] = st.SharePct
			}
			cons.SetStageShares(shares)
		}
		cons.Ingest(obs)
		if at := cons.ActiveTests(); at > res.PeakActiveTests {
			res.PeakActiveTests = at
		}
	}
	res.Findings = cons.Findings()
	res.NodeFindings = cons.NodeFindings()
	res.Intervals = intervals
	return res, nil
}

// coresOf returns the core count of node n's CPU (the SMP pool reports
// its full width through the model config).
func coresOf(m *core.Model, n int) int {
	if m.Cfg.Arch == core.SMP {
		return m.Cfg.Nodes
	}
	_ = n
	return 1
}
