package consultant

import (
	"testing"

	"rocc/internal/core"
)

func TestSearchFindsCPUBoundWorkload(t *testing.T) {
	// Compute-intensive NOW: application keeps the CPU busy.
	cfg := core.DefaultConfig()
	cfg.Nodes = 4
	cfg.Workload = core.ComputeIntensive.Apply(core.DefaultWorkload())
	res, err := Search(cfg, Config{Window: 3, Thresholds: map[Why]float64{CPUBound: 0.8}},
		1e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	foundCPU := false
	for _, f := range res.Findings {
		if f.Hypothesis.Why == CPUBound && f.Hypothesis.Node == WholeProgram {
			foundCPU = true
		}
	}
	if !foundCPU {
		t.Fatalf("CPU-bound not confirmed; findings: %v", res.Findings)
	}
	// Refinement should identify individual nodes too.
	if len(res.NodeFindings) == 0 {
		t.Fatal("no node-level findings after refinement")
	}
	if res.PeakActiveTests <= 3 {
		t.Fatalf("refinement should grow active tests: %d", res.PeakActiveTests)
	}
}

func TestSearchFindsCommBoundSMP(t *testing.T) {
	// Bus-saturated SMP (§4.3.3): communication-bound, not CPU-bound.
	cfg := core.DefaultConfig()
	cfg.Arch = core.SMP
	cfg.Nodes = 32
	cfg.AppProcs = 32
	cfg.Workload = core.CommIntensive.Apply(core.DefaultWorkload())
	res, err := Search(cfg, Config{Nodes: 1, Window: 3}, 1e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	found := map[Why]bool{}
	for _, f := range res.Findings {
		found[f.Hypothesis.Why] = true
	}
	if !found[CommBound] {
		t.Fatalf("comm-bound not confirmed; findings %v", res.Findings)
	}
	if found[CPUBound] {
		t.Fatal("saturated-bus workload must not be CPU-bound")
	}
}

func TestSearchStageRefinement(t *testing.T) {
	// Same saturated-bus workload with StageRefine: the confirmed
	// CommBound finding must name a communication-path stage, drawn from
	// the live provenance decomposition.
	cfg := core.DefaultConfig()
	cfg.Arch = core.SMP
	cfg.Nodes = 32
	cfg.AppProcs = 32
	cfg.Workload = core.CommIntensive.Apply(core.DefaultWorkload())
	res, err := Search(cfg, Config{Nodes: 1, Window: 3, StageRefine: true}, 1e6, 8)
	if err != nil {
		t.Fatal(err)
	}
	comm := []string{"daemon-service", "network-transit", "merge"}
	found := false
	for _, f := range res.Findings {
		if f.Hypothesis.Why != CommBound {
			continue
		}
		found = true
		ok := false
		for _, s := range comm {
			if f.Stage == s {
				ok = true
			}
		}
		if !ok || f.StageSharePct <= 0 {
			t.Fatalf("CommBound stage = %q (%v%%), want one of %v with positive share",
				f.Stage, f.StageSharePct, comm)
		}
	}
	if !found {
		t.Fatalf("comm-bound not confirmed; findings %v", res.Findings)
	}
}

func TestWhenAxisOnPhasedSimulation(t *testing.T) {
	// Workload alternates between compute-heavy and idle-ish
	// (communication-dominated) every 4 seconds: the confirmed CPU-bound
	// hypothesis should hold in phases, not continuously.
	cfg := core.DefaultConfig()
	cfg.Nodes = 2
	cfg.Workload = core.ComputeIntensive.Apply(core.DefaultWorkload())
	alt := core.DefaultWorkload()
	alt.AppNet = alt.AppCPU // long "network" bursts idle the CPU heavily
	alt.AppCPU = alt.PvmCPU // short compute bursts
	cfg.PhasePeriod = 4e6
	cfg.PhaseWorkload = &alt

	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := New(Config{Nodes: 2, Window: 2, Thresholds: map[Why]float64{CPUBound: 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	prev := make([]float64, 2)
	const intervalUS = 1e6
	for i := 0; i < 16; i++ {
		m.Sim.Run(intervalUS * float64(i+1))
		obs := make([]Observation, 2)
		for n := 0; n < 2; n++ {
			busy := m.NodeCPUs[n].BusyTotal()
			obs[n] = Observation{Node: n, CPUUtil: (busy - prev[n]) / intervalUS}
			prev[n] = busy
		}
		cons.Ingest(obs)
	}
	h := Hypothesis{Why: CPUBound, Node: WholeProgram}
	phases := cons.Phases(h)
	if len(phases) < 2 {
		t.Fatalf("phased workload should yield multiple when-axis phases, got %v", phases)
	}
	// Each closed phase should be roughly the 4-interval compute phase.
	for _, p := range phases {
		if p.End == -1 {
			continue
		}
		if width := p.End - p.Start + 1; width > 6 {
			t.Fatalf("phase %v too wide for a 4-interval workload phase", p)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	cfg := core.DefaultConfig()
	if _, err := Search(cfg, Config{}, 0, 3); err == nil {
		t.Fatal("zero interval")
	}
	if _, err := Search(cfg, Config{}, 1e6, 0); err == nil {
		t.Fatal("zero intervals")
	}
	bad := cfg
	bad.Nodes = 0
	if _, err := Search(bad, Config{}, 1e6, 1); err == nil {
		t.Fatal("bad sim config")
	}
}
