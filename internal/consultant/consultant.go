// Package consultant is a working miniature of Paradyn's Performance
// Consultant, the consumer that motivates the instrumentation system the
// paper models: the main Paradyn process runs the W3 search ("why is the
// program slow, where, and when" — Hollingsworth, Miller & Cargille,
// SHPCC '94) over the periodically forwarded instrumentation data.
//
// The miniature implements the why and where axes: global hypotheses
// (CPU-bound, communication-bound, synchronization-bound) are tested
// against thresholded metric streams; a hypothesis that holds for a
// window of consecutive intervals is confirmed and refined to per-node
// hypotheses, whose confirmations are the search's findings. It consumes
// exactly the kind of sampled, batched metric stream whose collection
// cost the ROCC model quantifies.
package consultant

import (
	"errors"
	"fmt"
	"sort"
)

// Why is the hypothesis axis: the candidate reasons a program is slow.
type Why int

const (
	// CPUBound: CPU utilization persistently above threshold.
	CPUBound Why = iota
	// CommBound: network/bus occupancy persistently above threshold.
	CommBound
	// SyncBound: time blocked (pipes, barriers) above threshold.
	SyncBound
)

// String implements fmt.Stringer.
func (w Why) String() string {
	switch w {
	case CPUBound:
		return "CPUBound"
	case CommBound:
		return "CommunicationBound"
	case SyncBound:
		return "SynchronizationBound"
	}
	return fmt.Sprintf("Why(%d)", int(w))
}

// WholeProgram is the root focus of the where axis.
const WholeProgram = -1

// Hypothesis is one (why, where) node of the search.
type Hypothesis struct {
	Why Why
	// Node is a node index, or WholeProgram.
	Node int
}

// String implements fmt.Stringer.
func (h Hypothesis) String() string {
	if h.Node == WholeProgram {
		return h.Why.String() + "@WholeProgram"
	}
	return fmt.Sprintf("%s@node%d", h.Why, h.Node)
}

// Observation is one interval's metrics for one node, each a fraction in
// [0, 1].
type Observation struct {
	Node        int
	CPUUtil     float64
	NetUtil     float64
	BlockedFrac float64
}

func (o Observation) metric(w Why) float64 {
	switch w {
	case CPUBound:
		return o.CPUUtil
	case CommBound:
		return o.NetUtil
	default:
		return o.BlockedFrac
	}
}

// Config parameterizes the search.
type Config struct {
	// Nodes is the number of nodes in the where axis.
	Nodes int
	// Thresholds per hypothesis type; a metric above its threshold counts
	// as an exceedance. Missing entries default to 0.85 (CPU), 0.5 (comm),
	// and 0.2 (sync) — the flavor of Paradyn's default hypothesis
	// thresholds.
	Thresholds map[Why]float64
	// Window is the number of consecutive exceedances needed to confirm a
	// hypothesis (default 3).
	Window int
	// StageRefine refines confirmed CommBound and SyncBound findings to
	// the dominant latency-decomposition stage (fed via SetStageShares):
	// the why-axis answer gets a "which part of the collection path"
	// qualifier. No effect until shares arrive.
	StageRefine bool
}

// stageCandidates maps a hypothesis type to the latency stages that can
// explain it: a communication bottleneck lives in daemon forwarding,
// network transit, or relay merging; a synchronization bottleneck lives
// in pipe blocking or batch residency. Order breaks share ties, so
// refinement stays deterministic.
func stageCandidates(w Why) []string {
	switch w {
	case CommBound:
		return []string{"daemon-service", "network-transit", "merge"}
	case SyncBound:
		return []string{"pipe-wait", "batch-residency"}
	default:
		return nil
	}
}

func (c Config) threshold(w Why) float64 {
	if t, ok := c.Thresholds[w]; ok {
		return t
	}
	switch w {
	case CPUBound:
		return 0.85
	case CommBound:
		return 0.5
	default:
		return 0.2
	}
}

// Finding is a confirmed hypothesis.
type Finding struct {
	Hypothesis Hypothesis
	// MeanValue is the mean of the metric over its confirming window.
	MeanValue float64
	// ConfirmedAt is the ingest interval index at which it confirmed.
	ConfirmedAt int
	// Stage names the dominant latency-decomposition stage at
	// confirmation time (Config.StageRefine with SetStageShares data);
	// empty when refinement is off, shares are absent, or the hypothesis
	// type has no stage candidates (CPUBound).
	Stage string
	// StageSharePct is that stage's share of total sample latency.
	StageSharePct float64
}

// Phase is one maximal run of intervals during which a confirmed
// hypothesis held — the "when" axis of the W3 search. End is inclusive;
// an ongoing phase has End = -1 until it closes.
type Phase struct {
	Start, End int
}

type testState struct {
	hyp       Hypothesis
	consec    int
	windowSum float64
	confirmed bool
	refined   bool

	phases     []Phase
	inPhase    bool
	phaseStart int
}

// Consultant runs the search. Not safe for concurrent use.
type Consultant struct {
	cfg      Config
	active   []*testState
	findings []Finding
	interval int
	// shares is the latest per-stage latency share (percent), keyed by
	// stage name, from SetStageShares.
	shares map[string]float64
}

// New creates a consultant with the three root hypotheses active.
func New(cfg Config) (*Consultant, error) {
	if cfg.Nodes < 1 {
		return nil, errors.New("consultant: Nodes must be >= 1")
	}
	if cfg.Window < 1 {
		cfg.Window = 3
	}
	c := &Consultant{cfg: cfg}
	for _, w := range []Why{CPUBound, CommBound, SyncBound} {
		c.active = append(c.active, &testState{hyp: Hypothesis{Why: w, Node: WholeProgram}})
	}
	return c, nil
}

// Ingest feeds one interval of per-node observations and advances the
// search. Nodes missing from obs contribute zeros.
func (c *Consultant) Ingest(obs []Observation) {
	byNode := map[int]Observation{}
	for _, o := range obs {
		byNode[o.Node] = o
	}
	// Global means for root hypotheses.
	global := Observation{Node: WholeProgram}
	for i := 0; i < c.cfg.Nodes; i++ {
		o := byNode[i]
		global.CPUUtil += o.CPUUtil / float64(c.cfg.Nodes)
		global.NetUtil += o.NetUtil / float64(c.cfg.Nodes)
		global.BlockedFrac += o.BlockedFrac / float64(c.cfg.Nodes)
	}

	var refinements []*testState
	for _, st := range c.active {
		var value float64
		if st.hyp.Node == WholeProgram {
			value = global.metric(st.hyp.Why)
		} else {
			value = byNode[st.hyp.Node].metric(st.hyp.Why)
		}
		exceeds := value > c.cfg.threshold(st.hyp.Why)

		if st.confirmed {
			// When-axis: track the phases over which the confirmed
			// hypothesis continues to hold.
			switch {
			case exceeds && !st.inPhase:
				st.inPhase = true
				st.phaseStart = c.interval
			case !exceeds && st.inPhase:
				st.inPhase = false
				st.phases = append(st.phases, Phase{Start: st.phaseStart, End: c.interval - 1})
			}
			continue
		}
		if exceeds {
			st.consec++
			st.windowSum += value
			if st.consec >= c.cfg.Window {
				st.confirmed = true
				st.inPhase = true
				st.phaseStart = c.interval - c.cfg.Window + 1
				f := Finding{
					Hypothesis:  st.hyp,
					MeanValue:   st.windowSum / float64(st.consec),
					ConfirmedAt: c.interval,
				}
				f.Stage, f.StageSharePct = c.dominantStage(st.hyp.Why)
				c.findings = append(c.findings, f)
				// Where-axis refinement: a confirmed global hypothesis
				// spawns per-node tests.
				if st.hyp.Node == WholeProgram && !st.refined && c.cfg.Nodes > 1 {
					st.refined = true
					for n := 0; n < c.cfg.Nodes; n++ {
						refinements = append(refinements, &testState{
							hyp: Hypothesis{Why: st.hyp.Why, Node: n},
						})
					}
				}
			}
		} else {
			st.consec = 0
			st.windowSum = 0
		}
	}
	c.active = append(c.active, refinements...)
	c.interval++
}

// SetStageShares feeds the latest per-stage latency decomposition
// (stage name → percent of total sample latency, e.g. from
// prov.Engine.Stages). Findings confirmed after this call carry the
// dominant candidate stage for their hypothesis type when
// Config.StageRefine is set. Call before Ingest each interval to keep
// refinement current.
func (c *Consultant) SetStageShares(shares map[string]float64) {
	if c.shares == nil {
		c.shares = make(map[string]float64, len(shares))
	}
	for k := range c.shares {
		delete(c.shares, k)
	}
	for k, v := range shares {
		c.shares[k] = v
	}
}

// dominantStage picks the candidate stage with the largest share for a
// hypothesis type; ties keep the earlier candidate.
func (c *Consultant) dominantStage(w Why) (string, float64) {
	if !c.cfg.StageRefine || len(c.shares) == 0 {
		return "", 0
	}
	best, bestShare := "", 0.0
	for _, s := range stageCandidates(w) {
		if v, ok := c.shares[s]; ok && (best == "" || v > bestShare) {
			best, bestShare = s, v
		}
	}
	return best, bestShare
}

// Phases returns the when-axis phases of a confirmed hypothesis: the
// interval ranges during which it held. A still-open phase is reported
// with End = -1.
func (c *Consultant) Phases(h Hypothesis) []Phase {
	for _, st := range c.active {
		if st.hyp != h || !st.confirmed {
			continue
		}
		out := append([]Phase(nil), st.phases...)
		if st.inPhase {
			out = append(out, Phase{Start: st.phaseStart, End: -1})
		}
		return out
	}
	return nil
}

// Findings returns the confirmed hypotheses in confirmation order.
func (c *Consultant) Findings() []Finding {
	out := append([]Finding(nil), c.findings...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ConfirmedAt < out[j].ConfirmedAt })
	return out
}

// NodeFindings returns only the refined (per-node) findings — the leaves
// the W3 search reports to the user.
func (c *Consultant) NodeFindings() []Finding {
	var out []Finding
	for _, f := range c.Findings() {
		if f.Hypothesis.Node != WholeProgram {
			out = append(out, f)
		}
	}
	return out
}

// ActiveTests returns the number of hypotheses currently under test —
// proportional to the instrumentation the IS must deliver, the link to
// the data-collection costs the paper models.
func (c *Consultant) ActiveTests() int {
	n := 0
	for _, st := range c.active {
		if !st.confirmed {
			n++
		}
	}
	return n
}
