package analytic

import "errors"

// Bounds holds asymptotic operational bounds for a closed queueing
// network (Denning & Buzen; Lazowska et al. ch. 5) — the quickest of the
// "back-of-the-envelope" checks Section 3 advocates before any
// simulation.
type Bounds struct {
	// DMax is the bottleneck demand, DSum the total demand per cycle.
	DMax, DSum float64
	// NStar is the saturation population DSum/DMax (with think time Z:
	// (DSum+Z)/DMax).
	NStar float64
	// XUpper returns the throughput upper bound at population n.
	// XLower is the pessimistic (fully serialized) bound.
	XUpperAt func(n float64) float64
	XLowerAt func(n float64) float64
	// RLowerAt returns the response-time lower bound at population n.
	RLowerAt func(n float64) float64
}

// AsymptoticBounds computes operational bounds for a closed network with
// per-cycle service demands and optional think time z.
func AsymptoticBounds(demands []float64, z float64) (Bounds, error) {
	if len(demands) == 0 {
		return Bounds{}, errors.New("analytic: bounds need at least one demand")
	}
	if z < 0 {
		return Bounds{}, errors.New("analytic: negative think time")
	}
	var dmax, dsum float64
	for _, d := range demands {
		if d < 0 {
			return Bounds{}, errors.New("analytic: negative demand")
		}
		dsum += d
		if d > dmax {
			dmax = d
		}
	}
	if dmax == 0 {
		return Bounds{}, errors.New("analytic: all demands zero")
	}
	b := Bounds{DMax: dmax, DSum: dsum, NStar: (dsum + z) / dmax}
	b.XUpperAt = func(n float64) float64 {
		bound := n / (dsum + z)
		if cap := 1 / dmax; cap < bound {
			return cap
		}
		return bound
	}
	b.XLowerAt = func(n float64) float64 {
		return n / (n*dsum + z)
	}
	b.RLowerAt = func(n float64) float64 {
		if r := n*dmax - z; r > dsum {
			return r
		}
		return dsum
	}
	return b, nil
}
