package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLambdaEq1(t *testing.T) {
	p := DefaultParams()
	// 1/40000 * 1/1 * 1 = 25 messages/second = 2.5e-5 per microsecond.
	if !almost(p.Lambda(), 2.5e-5, 1e-12) {
		t.Fatalf("lambda %v", p.Lambda())
	}
	p.BatchSize = 32
	if !almost(p.Lambda(), 2.5e-5/32, 1e-15) {
		t.Fatal("batching must divide lambda")
	}
	p.AppProcs = 4
	if !almost(p.Lambda(), 4*2.5e-5/32, 1e-15) {
		t.Fatal("app processes must multiply lambda")
	}
}

func TestNOWEquations(t *testing.T) {
	p := DefaultParams()
	m := p.NOW()
	l := 2.5e-5
	if !almost(m.PdCPUUtil, l*267, 1e-12) { // eq (2)
		t.Fatalf("uPd %v", m.PdCPUUtil)
	}
	if !almost(m.PdNetUtil, 8*l*71, 1e-12) { // eq (3)
		t.Fatalf("uNet %v", m.PdNetUtil)
	}
	if !almost(m.ParadynCPUUtil, 8*l*3208, 1e-12) { // eq (5)
		t.Fatalf("uMain %v", m.ParadynCPUUtil)
	}
	if !almost(m.AppCPUUtil, 1-l*267, 1e-12) { // eq (6)
		t.Fatalf("uApp %v", m.AppCPUUtil)
	}
	wantLat := 267/(1-l*267) + 71/(1-8*l*71) // eq (4)
	if !almost(m.LatencyUS, wantLat, 1e-9) {
		t.Fatalf("latency %v, want %v", m.LatencyUS, wantLat)
	}
}

func TestBFReducesAnalyticOverhead(t *testing.T) {
	cf := DefaultParams()
	cf.SamplingPeriod = 5000
	bf := cf
	bf.BatchSize = 32
	mcf, mbf := cf.NOW(), bf.NOW()
	if mbf.PdCPUUtil >= mcf.PdCPUUtil/10 {
		t.Fatalf("batching should cut utilization ~32x: %v vs %v",
			mbf.PdCPUUtil, mcf.PdCPUUtil)
	}
	if mbf.LatencyUS >= mcf.LatencyUS {
		t.Fatal("lower load should reduce queueing latency")
	}
}

func TestSaturationDivergesLatency(t *testing.T) {
	p := DefaultParams()
	p.SamplingPeriod = 100 // absurdly fast sampling: main CPU saturates
	p.Nodes = 64
	m := p.NOW()
	if m.PdNetUtil != 1 {
		t.Fatalf("network should saturate: %v", m.PdNetUtil)
	}
	if !math.IsInf(m.LatencyUS, 1) {
		t.Fatalf("latency should diverge at saturation: %v", m.LatencyUS)
	}
}

func TestSMPEquations(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 16
	p.AppProcs = 32
	p.Pds = 2
	m := p.SMP()
	l := (1.0 / 40000) * 32 * 2
	if !almost(m.PdCPUUtil, l*267/16, 1e-12) { // eq (7)
		t.Fatalf("uPd %v", m.PdCPUUtil)
	}
	if !almost(m.ParadynCPUUtil, l*3208/16, 1e-12) { // eq (8)
		t.Fatalf("uMain %v", m.ParadynCPUUtil)
	}
	wantIS := (2*m.PdCPUUtil + m.ParadynCPUUtil) / 3 // eq (9)
	if !almost(m.ISCPUUtil, wantIS, 1e-12) {
		t.Fatalf("uIS %v, want %v", m.ISCPUUtil, wantIS)
	}
	if !almost(m.AppCPUUtil, 1-wantIS, 1e-12) { // eq (10)
		t.Fatal("uApp")
	}
	if !almost(m.PdNetUtil, l*71, 1e-12) { // eq (11)
		t.Fatal("uBus")
	}
}

func TestSMPMoreDaemonsRaiseISLoad(t *testing.T) {
	p1 := DefaultParams()
	p1.Nodes = 16
	p1.AppProcs = 32
	p4 := p1
	p4.Pds = 4
	if p4.SMP().PdNetUtil <= p1.SMP().PdNetUtil {
		t.Fatal("more daemons should raise bus load (eq 1 SMP form)")
	}
}

func TestMPPDirectMatchesNOW(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 256
	if p.MPPDirect() != p.NOW() {
		t.Fatal("MPP direct must equal the NOW equations")
	}
}

func TestMPPTreeEquations(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 256
	direct := p.MPPDirect()
	tree := p.MPPTree()
	// §4.4.2: tree forwarding costs extra daemon CPU (merge work)...
	if tree.PdCPUUtil <= direct.PdCPUUtil {
		t.Fatalf("tree uPd %v not above direct %v", tree.PdCPUUtil, direct.PdCPUUtil)
	}
	// ...and the root delivers merged traffic, so main sees fewer, larger
	// messages: eq (14) gives 2*lambda*D rather than n*lambda*D.
	if tree.ParadynCPUUtil >= direct.ParadynCPUUtil {
		t.Fatalf("tree main util %v should be below direct %v at 256 nodes",
			tree.ParadynCPUUtil, direct.ParadynCPUUtil)
	}
	// eq (13) hand-check for n=4: [2*l*D + 1*(l*D+2*l*Dm) + l*Dm]/4.
	p4 := DefaultParams()
	p4.Nodes = 4
	l := p4.Lambda()
	want := (2*l*267 + (l*267 + 2*l*267) + l*267) / 4
	if got := p4.MPPTree().PdCPUUtil; !almost(got, want, 1e-12) {
		t.Fatalf("eq13 n=4: got %v want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{SamplingPeriod: 0, BatchSize: 1, AppProcs: 1, Nodes: 1, Pds: 1},
		{SamplingPeriod: 1, BatchSize: 0, AppProcs: 1, Nodes: 1, Pds: 1},
		{SamplingPeriod: 1, BatchSize: 1, AppProcs: 0, Nodes: 1, Pds: 1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if DefaultParams().Validate() != nil {
		t.Fatal("defaults must validate")
	}
}

// Property: utilizations are in [0,1] and latency positive for any sane
// parameterization.
func TestQuickMetricsBounded(t *testing.T) {
	f := func(sp16, bs8, ap8, nodes8, pds4 uint8) bool {
		p := DefaultParams()
		p.SamplingPeriod = float64(sp16)*500 + 500
		p.BatchSize = float64(bs8%128) + 1
		p.AppProcs = float64(ap8%32) + 1
		p.Nodes = float64(nodes8%255) + 2
		p.Pds = float64(pds4%4) + 1
		for _, m := range []Metrics{p.NOW(), p.SMP(), p.MPPTree()} {
			for _, u := range []float64{m.PdCPUUtil, m.ParadynCPUUtil, m.ISCPUUtil, m.PdNetUtil} {
				if u < 0 || u > 1 {
					return false
				}
			}
			if m.LatencyUS <= 0 {
				return false
			}
			if m.AppCPUUtil > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMVASingleQueue(t *testing.T) {
	// One queue, one customer: X = 1/D, U = 1.
	res, err := MVA(1, []Station{{Demand: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Throughput, 0.01, 1e-12) || !almost(res.Utilization[0], 1, 1e-12) {
		t.Fatalf("%+v", res)
	}
}

func TestMVAKnownTwoStation(t *testing.T) {
	// Classic example: demands 2 and 1, N=2.
	// N=1: R = 2+1=3, X=1/3, q=(2/3, 1/3).
	// N=2: R1=2*(1+2/3)=10/3, R2=1*(1+1/3)=4/3, R=14/3, X=2/(14/3)=3/7.
	res, err := MVA(2, []Station{{Demand: 2}, {Demand: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Throughput, 3.0/7, 1e-12) {
		t.Fatalf("X %v, want 3/7", res.Throughput)
	}
	if !almost(res.Utilization[0], 6.0/7, 1e-12) {
		t.Fatalf("U1 %v", res.Utilization[0])
	}
}

func TestMVAWithDelayStation(t *testing.T) {
	// Think-time station adds demand to response but never queues.
	res, err := MVA(3, []Station{{Demand: 50}, {Demand: 1000, Delay: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization[1] != 0 {
		t.Fatal("delay station must report zero utilization")
	}
	// Throughput bounded by both 1/D_queue and N/(D_total).
	if res.Throughput > 1.0/50 || res.Throughput > 3.0/1050 {
		t.Fatalf("X %v violates bounds", res.Throughput)
	}
}

// Property: MVA throughput increases with customers and respects the
// bottleneck bound 1/maxDemand.
func TestQuickMVAMonotone(t *testing.T) {
	f := func(d1, d2 uint8, n uint8) bool {
		stations := []Station{{Demand: float64(d1) + 1}, {Demand: float64(d2) + 1}}
		maxD := stations[0].Demand
		if stations[1].Demand > maxD {
			maxD = stations[1].Demand
		}
		prev := 0.0
		for k := 1; k <= int(n%20)+2; k++ {
			res, err := MVA(k, stations)
			if err != nil {
				return false
			}
			if res.Throughput < prev-1e-12 || res.Throughput > 1/maxD+1e-12 {
				return false
			}
			prev = res.Throughput
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMVAErrors(t *testing.T) {
	if _, err := MVA(0, []Station{{Demand: 1}}); err == nil {
		t.Fatal("want error for 0 customers")
	}
	if _, err := MVA(1, nil); err == nil {
		t.Fatal("want error for no stations")
	}
	if _, err := MVA(1, []Station{{Demand: -1}}); err == nil {
		t.Fatal("want error for negative demand")
	}
}
