// Package analytic implements the "back-of-the-envelope" operational
// analysis of Section 3 of the paper: equations (1)-(16) computing Paradyn
// daemon CPU utilization, main-process utilization, monitoring latency,
// and application CPU utilization for the NOW, SMP, and MPP (direct and
// binary-tree forwarding) cases under the flow-balance assumption, plus
// exact Mean Value Analysis for closed queueing networks (discussed and
// set aside in §3, implemented here for completeness).
//
// All times are microseconds; utilizations are fractions in [0, 1] unless
// the offered load exceeds capacity, in which case utilization saturates
// at 1 and latency diverges to +Inf — the analytic counterpart of an
// unstable queue.
package analytic

import (
	"errors"
	"math"
)

// Params parameterizes the operational model, mirroring Table 2.
type Params struct {
	SamplingPeriod float64 // microseconds between samples per app process
	BatchSize      float64 // samples per forwarded message (1 = CF)
	AppProcs       float64 // application processes per node (total for SMP)
	Nodes          float64 // number of nodes (CPUs for SMP)
	Pds            float64 // number of Paradyn daemons (SMP factor)

	DPdCPU      float64 // mean daemon CPU demand per message (267)
	DPdNet      float64 // mean daemon network demand per message (71)
	DPdmCPU     float64 // mean merge CPU demand per relayed message (tree)
	DParadynCPU float64 // mean main-process CPU demand per message (3208)
}

// DefaultParams returns the Table 2 parameterization with the typical
// configuration (8 nodes, 1 app process, 1 daemon, 40 ms sampling, CF).
func DefaultParams() Params {
	return Params{
		SamplingPeriod: 40000,
		BatchSize:      1,
		AppProcs:       1,
		Nodes:          8,
		Pds:            1,
		DPdCPU:         267,
		DPdNet:         71,
		DPdmCPU:        267,
		DParadynCPU:    3208,
	}
}

// Validate reports parameterization errors.
func (p Params) Validate() error {
	if p.SamplingPeriod <= 0 {
		return errors.New("analytic: SamplingPeriod must be positive")
	}
	if p.BatchSize < 1 {
		return errors.New("analytic: BatchSize must be >= 1")
	}
	if p.AppProcs < 1 || p.Nodes < 1 || p.Pds < 1 {
		return errors.New("analytic: AppProcs, Nodes, Pds must be >= 1")
	}
	return nil
}

// clamp1 saturates a utilization at 1.
func clamp1(u float64) float64 {
	if u > 1 {
		return 1
	}
	return u
}

// residence returns D/(1-u), diverging to +Inf at or beyond saturation.
func residence(d, u float64) float64 {
	if u >= 1 {
		return math.Inf(1)
	}
	return d / (1 - u)
}

// Lambda is equation (1): the per-node arrival rate of Paradyn daemon
// messages, in messages per microsecond.
func (p Params) Lambda() float64 {
	return (1 / p.SamplingPeriod) * (1 / p.BatchSize) * p.AppProcs
}

// Metrics is the set of analytic outputs plotted in Figures 9-15.
type Metrics struct {
	PdCPUUtil      float64 // daemon CPU utilization per node (fraction)
	ParadynCPUUtil float64 // main Paradyn process CPU utilization
	ISCPUUtil      float64 // overall IS utilization (SMP, eq. 9)
	AppCPUUtil     float64 // application CPU utilization per node
	PdNetUtil      float64 // network utilization by IS traffic
	LatencyUS      float64 // monitoring latency per sample (microseconds)
}

// NOW computes equations (1)-(6) for the network-of-workstations case
// (also the MPP direct-forwarding case, §3.3).
func (p Params) NOW() Metrics {
	l := p.Lambda()
	uPd := clamp1(l * p.DPdCPU)            // eq. (2)
	uNet := clamp1(p.Nodes * l * p.DPdNet) // eq. (3)
	lat := residence(p.DPdCPU, uPd) +      // eq. (4)
		residence(p.DPdNet, uNet)
	uMain := clamp1(p.Nodes * l * p.DParadynCPU) // eq. (5)
	return Metrics{
		PdCPUUtil:      uPd,
		ParadynCPUUtil: uMain,
		ISCPUUtil:      clamp1(uPd + uMain/p.Nodes),
		AppCPUUtil:     1 - uPd, // eq. (6)
		PdNetUtil:      uNet,
		LatencyUS:      lat,
	}
}

// SMP computes equations (7)-(12) for the shared-memory case: arrival
// rate scales with the number of daemons, demands are divided across the
// n CPUs, and the interconnect is the shared bus.
func (p Params) SMP() Metrics {
	l := p.Lambda() * p.Pds
	n := p.Nodes
	uPd := clamp1(l * p.DPdCPU / n)                  // eq. (7)
	uMain := clamp1(l * p.DParadynCPU / n)           // eq. (8)
	uIS := clamp1((p.Pds*uPd + uMain) / (p.Pds + 1)) // eq. (9)
	uBus := clamp1(l * p.DPdNet)                     // eq. (11)
	lat := residence(p.DPdCPU/n, uPd) +              // eq. (12)
		residence(p.DPdNet, uBus)
	return Metrics{
		PdCPUUtil:      uPd,
		ParadynCPUUtil: uMain,
		ISCPUUtil:      uIS,
		AppCPUUtil:     1 - uIS, // eq. (10)
		PdNetUtil:      uBus,
		LatencyUS:      lat,
	}
}

// MPPDirect is the MPP case with direct forwarding; per §3.3 it reduces
// to the NOW equations.
func (p Params) MPPDirect() Metrics { return p.NOW() }

// MPPTree computes equations (13)-(16) for binary-tree forwarding on an
// MPP with n nodes (n assumed a power of two by the paper's derivation):
// n/2 leaves forward only their own data; n/2-1 interior nodes also merge
// two children's streams; one node has a single child.
//
// Note: equation (15) as printed in the paper includes a D_Pd,CPU term in
// the network utilization, an evident typo for D_Pd,Network; the
// corrected form is implemented here.
func (p Params) MPPTree() Metrics {
	l := p.Lambda()
	n := p.Nodes
	half := n / 2
	// eq. (13)
	cpuNum := half*l*p.DPdCPU +
		(half-1)*(l*p.DPdCPU+2*l*p.DPdmCPU) +
		l*p.DPdmCPU
	uPd := clamp1(cpuNum / n)
	// eq. (14): the root delivers merged messages at twice the per-node rate.
	uMain := clamp1(2 * l * p.DParadynCPU)
	// eq. (15), corrected: interior nodes transmit their own message plus
	// two relayed messages.
	netNum := half*l*p.DPdNet +
		(half-1)*(l*p.DPdNet+2*l*p.DPdNet) +
		l*p.DPdNet
	uNet := clamp1(netNum / n)
	// eq. (16)
	lat := residence(p.DPdCPU+p.DPdmCPU, uPd) + residence(p.DPdNet, uNet)
	return Metrics{
		PdCPUUtil:      uPd,
		ParadynCPUUtil: uMain,
		ISCPUUtil:      clamp1(uPd + uMain/n),
		AppCPUUtil:     1 - uPd,
		PdNetUtil:      uNet,
		LatencyUS:      lat,
	}
}
