package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAsymptoticBoundsKnownCase(t *testing.T) {
	// Demands 2 and 1, no think time: Dmax=2, Dsum=3, N*=1.5.
	b, err := AsymptoticBounds([]float64{2, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.DMax != 2 || b.DSum != 3 || math.Abs(b.NStar-1.5) > 1e-12 {
		t.Fatalf("%+v", b)
	}
	// Below saturation: X <= n/Dsum; above: X <= 1/Dmax.
	if got := b.XUpperAt(1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("XUpper(1) = %v", got)
	}
	if got := b.XUpperAt(10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("XUpper(10) = %v", got)
	}
	// R lower: max(Dsum, n*Dmax - Z).
	if got := b.RLowerAt(1); got != 3 {
		t.Fatalf("RLower(1) = %v", got)
	}
	if got := b.RLowerAt(10); got != 20 {
		t.Fatalf("RLower(10) = %v", got)
	}
	// Pessimistic bound below optimistic.
	if b.XLowerAt(5) > b.XUpperAt(5) {
		t.Fatal("bounds crossed")
	}
}

func TestBoundsWithThinkTime(t *testing.T) {
	b, err := AsymptoticBounds([]float64{1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if b.NStar != 10 {
		t.Fatalf("N* = %v, want 10", b.NStar)
	}
	if got := b.XUpperAt(5); math.Abs(got-0.5) > 1e-12 { // 5/(1+9)
		t.Fatalf("XUpper(5) = %v", got)
	}
}

func TestBoundsErrors(t *testing.T) {
	if _, err := AsymptoticBounds(nil, 0); err == nil {
		t.Fatal("empty demands")
	}
	if _, err := AsymptoticBounds([]float64{1}, -1); err == nil {
		t.Fatal("negative think time")
	}
	if _, err := AsymptoticBounds([]float64{-1}, 0); err == nil {
		t.Fatal("negative demand")
	}
	if _, err := AsymptoticBounds([]float64{0, 0}, 0); err == nil {
		t.Fatal("all-zero demands")
	}
}

// Property: exact MVA throughput always falls within the operational
// bounds — the bounds and MVA validate each other.
func TestQuickMVAWithinBounds(t *testing.T) {
	f := func(d1, d2 uint8, n8 uint8) bool {
		demands := []float64{float64(d1) + 1, float64(d2) + 1}
		b, err := AsymptoticBounds(demands, 0)
		if err != nil {
			return false
		}
		n := int(n8)%15 + 1
		res, err := MVA(n, []Station{{Demand: demands[0]}, {Demand: demands[1]}})
		if err != nil {
			return false
		}
		nf := float64(n)
		return res.Throughput <= b.XUpperAt(nf)+1e-12 &&
			res.Throughput >= b.XLowerAt(nf)-1e-12 &&
			res.ResponseUS >= b.RLowerAt(nf)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
