package analytic

import "errors"

// Station is one service center in a closed product-form queueing network.
type Station struct {
	// Demand is the total service demand per customer visit cycle
	// (visit ratio x mean service time), in microseconds.
	Demand float64
	// Delay marks an infinite-server (think-time) station with no queueing.
	Delay bool
}

// MVAResult holds the outputs of exact Mean Value Analysis.
type MVAResult struct {
	Throughput   float64   // customers per microsecond
	ResponseUS   float64   // total response time per cycle
	Utilization  []float64 // per queueing station (Demand * X)
	QueueLengths []float64 // mean customers at each station
}

// MVA performs exact Mean Value Analysis for a closed network with n
// customers of a single class (Reiser & Lavenberg). Section 3 of the
// paper considers (and sets aside) MVA for the application workload; it
// is provided here as part of the operational-analysis toolkit.
func MVA(n int, stations []Station) (MVAResult, error) {
	if n < 1 {
		return MVAResult{}, errors.New("analytic: MVA needs at least one customer")
	}
	if len(stations) == 0 {
		return MVAResult{}, errors.New("analytic: MVA needs at least one station")
	}
	for _, s := range stations {
		if s.Demand < 0 {
			return MVAResult{}, errors.New("analytic: negative demand")
		}
	}
	q := make([]float64, len(stations)) // queue lengths at k-1 customers
	var x float64
	for k := 1; k <= n; k++ {
		var rTotal float64
		r := make([]float64, len(stations))
		for i, s := range stations {
			if s.Delay {
				r[i] = s.Demand
			} else {
				r[i] = s.Demand * (1 + q[i])
			}
			rTotal += r[i]
		}
		x = float64(k) / rTotal
		for i := range stations {
			q[i] = x * r[i]
		}
	}
	res := MVAResult{
		Throughput:   x,
		Utilization:  make([]float64, len(stations)),
		QueueLengths: q,
	}
	for i, s := range stations {
		res.ResponseUS += q[i] / x
		if !s.Delay {
			res.Utilization[i] = x * s.Demand
		}
	}
	return res, nil
}
