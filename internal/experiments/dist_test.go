package experiments

import (
	"reflect"
	"testing"

	"rocc/internal/core"
	"rocc/internal/dist"
	"rocc/internal/scenario"
)

// TestRunFactorialDistMatchesLocal pins the -dist wiring to the
// determinism contract: a factorial design fanned through the
// distributed engine — with worker crashes injected — produces exactly
// the values the in-process par.Map path produces.
func TestRunFactorialDistMatchesLocal(t *testing.T) {
	rows, err := gridRows(scenario.Table4Grid())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Seed: 5, DurationUS: 0.02e6, Reps: 2}
	ovLocal, latLocal, err := runFactorial(rows, opt, core.MetricPdCPUUtil, core.MetricLatency)
	if err != nil {
		t.Fatal(err)
	}

	// Workers run in-process (the test binary cannot self-exec as a
	// worker), with deterministic crash injection to exercise retries.
	orig := distRunners
	defer func() { distRunners = orig }()
	distRunners = func(n int) []dist.Runner {
		rs := make([]dist.Runner, n)
		for i := range rs {
			rs[i] = &dist.Chaos{Inner: dist.InProcessRunner{ID: i}, Seed: uint64(i + 1), Crash: 0.2}
		}
		return rs
	}
	opt.DistWorkers = 3
	ovDist, latDist, err := runFactorial(rows, opt, core.MetricPdCPUUtil, core.MetricLatency)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ovDist, ovLocal) {
		t.Fatal("distributed overhead values diverge from local path")
	}
	if !reflect.DeepEqual(latDist, latLocal) {
		t.Fatal("distributed latency values diverge from local path")
	}
}
