package experiments

import (
	"fmt"
	"io"

	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/par"
	"rocc/internal/report"
	"rocc/internal/stats"
)

func init() {
	register("ext-latency-breakdown",
		"Extension: per-stage latency decomposition of CF vs fixed BF vs adaptive BF across NOW/SMP/MPP",
		runExtLatencyBreakdown)
}

// LatencyBreakdownOptions parameterizes the decomposition sweep: which
// architecture cells to run and which policies to decompose in each.
type LatencyBreakdownOptions struct {
	// Archs are the architecture cells (default NOW, SMP, MPP-tree).
	Archs []string
	// Batch is the fixed BF batch size (default 64 — dense enough that
	// batch residency is the policy's visible latency price).
	Batch int
	// SamplingPeriodMS is the sampling period in milliseconds (default 1).
	SamplingPeriodMS float64
}

// DefaultLatencyBreakdown returns the default sweep.
func DefaultLatencyBreakdown() LatencyBreakdownOptions {
	return LatencyBreakdownOptions{
		Archs:            []string{"now", "smp", "mpp"},
		Batch:            64,
		SamplingPeriodMS: 1,
	}
}

// LatencyBreakdownPoint is one policy's reps-mean decomposition in one
// cell: the six stages in pipeline order plus the aggregate latency.
type LatencyBreakdownPoint struct {
	// Policy is the -policy spec of the variant ("cf", "bf:64", "abf").
	Policy string
	// Stages are the reps-mean per-stage summaries, in stage order.
	Stages []core.StageLatency
	// LatencySec is the reps-mean end-to-end sample latency.
	LatencySec float64
}

// Share returns the named stage's reps-mean share (percent), 0 if absent.
func (p LatencyBreakdownPoint) Share(stage string) float64 {
	for _, s := range p.Stages {
		if s.Stage == stage {
			return s.SharePct
		}
	}
	return 0
}

// LatencyBreakdownCell is one architecture cell's comparison.
type LatencyBreakdownCell struct {
	Arch   string
	Nodes  int
	Points []LatencyBreakdownPoint
}

// latencyCellConfig builds the base configuration of one architecture
// cell: an 8-node NOW, an 8-CPU SMP, or an 8-node MPP with tree
// forwarding.
func latencyCellConfig(arch string) (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Nodes = 8
	cfg.AppProcs = 2
	switch arch {
	case "now":
	case "smp":
		cfg.Arch = core.SMP
		cfg.AppProcs = 8
	case "mpp":
		cfg.Arch = core.MPP
		cfg.Forwarding = forward.Tree
	default:
		return cfg, fmt.Errorf("ext-latency-breakdown: unknown arch %q", arch)
	}
	return cfg, nil
}

// runProvenance mirrors runOne with the provenance engine attached, so
// the Result carries its LatencyStages decomposition. The engine only
// reads lifecycle hooks: every other Result field is byte-identical to
// the plain run (pinned by TestProvenanceLeavesResultUnchanged).
func runProvenance(cfg core.Config, opt Options) (core.Result, error) {
	cfg.Duration = opt.DurationUS
	cfg.Calendar = opt.Calendar
	if cfg.Seed == 0 {
		cfg.Seed = opt.Seed
	}
	m, err := core.New(cfg)
	if err != nil {
		return core.Result{}, err
	}
	if _, err := m.EnableObservability(core.ObsOptions{Provenance: true}); err != nil {
		return core.Result{}, err
	}
	return m.Run(), nil
}

// RunLatencyBreakdown decomposes end-to-end sample latency per stage for
// CF, a dense fixed BF, and the adaptive controller in each architecture
// cell. Per cell, every policy replays the same replication seeds
// (derived from SeedStreamLatency at the cell index); the flattened
// cell × policy × replication list fans out across opt.Parallel workers
// and aggregates in index order, so output is byte-identical at any pool
// size and calendar.
func RunLatencyBreakdown(opt Options, lb LatencyBreakdownOptions) ([]LatencyBreakdownCell, error) {
	opt = opt.normalized()
	def := DefaultLatencyBreakdown()
	if len(lb.Archs) == 0 {
		lb.Archs = def.Archs
	}
	if lb.Batch <= 0 {
		lb.Batch = def.Batch
	}
	if lb.SamplingPeriodMS <= 0 {
		lb.SamplingPeriodMS = def.SamplingPeriodMS
	}

	specs := []forward.StrategySpec{
		{Policy: forward.CF, Batch: 1},
		{Policy: forward.BF, Batch: lb.Batch},
		{Policy: forward.BF, Adaptive: true},
	}

	reps := opt.Reps
	type job struct {
		ci, vi, ri int
		cfg        core.Config
	}
	var jobs []job
	for ci, arch := range lb.Archs {
		base, err := latencyCellConfig(arch)
		if err != nil {
			return nil, err
		}
		base.SamplingPeriod = lb.SamplingPeriodMS * 1000
		seeds := core.ReplicationSeeds(
			core.DeriveSeed(opt.Seed, core.SeedStreamLatency, uint64(ci)), reps)
		for vi, spec := range specs {
			for ri, seed := range seeds {
				cfg := base
				cfg.Seed = seed
				switch {
				case spec.Adaptive:
					cfg.Policy = forward.BF
					cfg.Strategy = spec.NewStrategy(0)
				case spec.Policy == forward.CF:
					cfg.Policy = forward.CF
					cfg.BatchSize = 1
				default:
					cfg.Policy = forward.BF
					cfg.BatchSize = spec.Batch
				}
				jobs = append(jobs, job{ci, vi, ri, cfg})
			}
		}
	}
	flat, err := par.Map(opt.Parallel, jobs, func(_ int, j job) (core.Result, error) {
		res, err := runProvenance(j.cfg, opt)
		if err != nil {
			return core.Result{}, fmt.Errorf("ext-latency-breakdown %s %s: %w",
				lb.Archs[j.ci], specs[j.vi], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	// Aggregate replications per (cell, policy) in index order: per-stage
	// means over the replications that delivered samples.
	type agg struct {
		stages [][]core.StageLatency
		lat    []float64
	}
	aggs := make([]agg, len(lb.Archs)*len(specs))
	for k, j := range jobs {
		r := flat[k]
		a := &aggs[j.ci*len(specs)+j.vi]
		if len(r.LatencyStages) > 0 {
			a.stages = append(a.stages, r.LatencyStages)
		}
		a.lat = append(a.lat, r.MonitoringLatencySec)
	}
	point := func(ci, vi int) LatencyBreakdownPoint {
		a := aggs[ci*len(specs)+vi]
		p := LatencyBreakdownPoint{Policy: specs[vi].String(), LatencySec: stats.MeanOf(a.lat)}
		if len(a.stages) == 0 {
			return p
		}
		n := len(a.stages[0])
		p.Stages = make([]core.StageLatency, n)
		for si := 0; si < n; si++ {
			p.Stages[si].Stage = a.stages[0][si].Stage
			var mean, p50, p95, p99, share []float64
			for _, rep := range a.stages {
				mean = append(mean, rep[si].MeanSec)
				p50 = append(p50, rep[si].P50Sec)
				p95 = append(p95, rep[si].P95Sec)
				p99 = append(p99, rep[si].P99Sec)
				share = append(share, rep[si].SharePct)
			}
			p.Stages[si].MeanSec = stats.MeanOf(mean)
			p.Stages[si].P50Sec = stats.MeanOf(p50)
			p.Stages[si].P95Sec = stats.MeanOf(p95)
			p.Stages[si].P99Sec = stats.MeanOf(p99)
			p.Stages[si].SharePct = stats.MeanOf(share)
		}
		return p
	}

	cells := make([]LatencyBreakdownCell, 0, len(lb.Archs))
	for ci, arch := range lb.Archs {
		base, _ := latencyCellConfig(arch)
		c := LatencyBreakdownCell{Arch: arch, Nodes: base.Nodes}
		for vi := range specs {
			c.Points = append(c.Points, point(ci, vi))
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// StageRows converts a point's stages to waterfall rows (seconds → µs).
func (p LatencyBreakdownPoint) StageRows() []report.StageRow {
	rows := make([]report.StageRow, 0, len(p.Stages))
	for _, s := range p.Stages {
		rows = append(rows, report.StageRow{
			Stage:    s.Stage,
			MeanUS:   s.MeanSec * 1e6,
			P50US:    s.P50Sec * 1e6,
			P95US:    s.P95Sec * 1e6,
			P99US:    s.P99Sec * 1e6,
			SharePct: s.SharePct,
		})
	}
	return rows
}

func runExtLatencyBreakdown(w io.Writer, opt Options) error {
	opt = opt.normalized()
	lb := DefaultLatencyBreakdown()
	cells, err := RunLatencyBreakdown(opt, lb)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Latency decomposition: dominant stage per cell (r=%d, %.0f s runs)",
			opt.Reps, opt.DurationUS/1e6),
		"arch", "policy", "latency (ms)", "dominant stage", "share")
	for _, c := range cells {
		for _, p := range c.Points {
			dom, domShare := "", 0.0
			for _, s := range p.Stages {
				if s.SharePct > domShare {
					dom, domShare = s.Stage, s.SharePct
				}
			}
			t.AddRow(c.Arch, p.Policy, report.F(p.LatencySec*1000), dom, report.Pct(domShare))
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	for _, c := range cells {
		for _, p := range c.Points {
			wf := report.Waterfall{
				Title: fmt.Sprintf("%s / %s", c.Arch, p.Policy),
				Rows:  p.StageRows(),
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
			if err := wf.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}
