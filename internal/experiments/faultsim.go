package experiments

import (
	"fmt"
	"io"
	"strings"

	"rocc/internal/core"
	"rocc/internal/faults"
	"rocc/internal/forward"
	"rocc/internal/par"
	"rocc/internal/report"
)

func init() {
	register("fault-survivability",
		"Fault injection: IS survivability under message loss across architectures and policies",
		func(w io.Writer, opt Options) error {
			return FaultSweep(w, opt, DefaultFaultSweep())
		})
}

// FaultSweepOptions parameterizes the survivability sweep shared by the
// fault-survivability experiment and cmd/roccfault.
type FaultSweepOptions struct {
	// LossLevels are the injected per-attempt message-loss probabilities
	// swept as the fault-intensity axis.
	LossLevels []float64
	// DupFraction sets the duplication probability as a fraction of the
	// loss probability at each level.
	DupFraction float64
	// CrashMTBFUS, when positive, also injects transient daemon crashes
	// with this mean up-time (exponential) at every intensity level.
	CrashMTBFUS float64
	// SqueezeMTBFUS, when positive, also injects pipe capacity squeezes.
	SqueezeMTBFUS float64
	// SamplingPeriodUS is the instrumentation sampling period.
	SamplingPeriodUS float64
	// Nodes is the node count (CPU count for SMP).
	Nodes int
	// BatchSize is the BF batch size.
	BatchSize int
	// Policy, when non-nil, pins the policy axis (roccfault -policy):
	// only matrix rows of the matching family run (cf keeps the CF rows,
	// bf and abf the BF rows), an explicit bf:<n> overrides BatchSize, and
	// an adaptive spec installs the controller on the surviving rows. Nil
	// sweeps the full CF × BF matrix exactly as before.
	Policy *forward.StrategySpec
}

// DefaultFaultSweep returns the default sweep: 1%, 5%, and 10% loss with
// proportional duplication, on 8 nodes at a 20 ms sampling period.
func DefaultFaultSweep() FaultSweepOptions {
	return FaultSweepOptions{
		LossLevels:       []float64{0.01, 0.05, 0.10},
		DupFraction:      0.5,
		SamplingPeriodUS: 20000,
		Nodes:            8,
		BatchSize:        16,
	}
}

// faultVariant is one architecture × policy × forwarding combination.
type faultVariant struct {
	arch   core.Arch
	policy forward.Policy
	fwd    forward.Config
}

func (v faultVariant) label() (string, string, string) {
	return v.arch.String(), v.policy.String(), v.fwd.String()
}

// faultVariants enumerates the survivability matrix: CF and BF on each
// architecture, plus tree forwarding for MPP (the only architecture the
// model supports it on). A non-nil pin keeps only the rows of its policy
// family (abf pins to the BF rows).
func faultVariants(pin *forward.StrategySpec) []faultVariant {
	all := []faultVariant{
		{core.NOW, forward.CF, forward.Direct},
		{core.NOW, forward.BF, forward.Direct},
		{core.SMP, forward.CF, forward.Direct},
		{core.SMP, forward.BF, forward.Direct},
		{core.MPP, forward.CF, forward.Direct},
		{core.MPP, forward.CF, forward.Tree},
		{core.MPP, forward.BF, forward.Direct},
		{core.MPP, forward.BF, forward.Tree},
	}
	if pin == nil {
		return all
	}
	var out []faultVariant
	for _, v := range all {
		if v.policy == pin.Policy {
			out = append(out, v)
		}
	}
	return out
}

// FaultSweep runs the survivability table: for every architecture ×
// policy × forwarding variant and every fault-intensity level, one run
// without resilience and one with ack/retransmission plus graceful
// degradation, reporting the fraction of generated samples that survived
// to the main Paradyn process. Identical options and seeds reproduce the
// table byte-identically.
func FaultSweep(w io.Writer, opt Options, sw FaultSweepOptions) error {
	opt = opt.normalized()
	if len(sw.LossLevels) == 0 {
		sw.LossLevels = DefaultFaultSweep().LossLevels
	}
	if sw.Nodes <= 0 {
		sw.Nodes = 8
	}
	if sw.SamplingPeriodUS <= 0 {
		sw.SamplingPeriodUS = 20000
	}
	if sw.BatchSize <= 0 {
		sw.BatchSize = 16
	}
	if sw.Policy != nil && sw.Policy.Batch > 0 {
		sw.BatchSize = sw.Policy.Batch
	}

	title := "IS survivability under injected faults"
	if sw.CrashMTBFUS > 0 {
		title += fmt.Sprintf(" (+ daemon crashes, MTBF %.0f ms)", sw.CrashMTBFUS/1000)
	}
	if sw.SqueezeMTBFUS > 0 {
		title += " (+ pipe squeezes)"
	}
	t := report.NewTable(title,
		"arch", "policy", "fwd", "loss %",
		"delivered % (bare)", "delivered % (resilient)",
		"retransmits", "giveups", "recovery (ms)", "crashes", "degraded (s)")

	// Flatten the variant × intensity × {bare, resilient} cube into one
	// work list and fan it out; each cell is a share-nothing model run.
	// Rows are composed afterwards in the fixed enumeration order, so the
	// table stays byte-identical at any pool size.
	type cell struct {
		v    faultVariant
		loss float64
		plan faults.Plan
	}
	var cells []cell
	for _, v := range faultVariants(sw.Policy) {
		for li, loss := range sw.LossLevels {
			plan := faults.Plan{
				Seed:        core.DeriveSeed(opt.Seed, core.SeedStreamFault, uint64(li)),
				Loss:        loss,
				Dup:         loss * sw.DupFraction,
				CrashMTBF:   sw.CrashMTBFUS,
				SqueezeMTBF: sw.SqueezeMTBFUS,
			}
			cells = append(cells, cell{v: v, loss: loss, plan: plan})
			plan.Resilience = faults.Resilience{Retransmit: true, Degrade: true}
			cells = append(cells, cell{v: v, loss: loss, plan: plan})
		}
	}
	results, err := par.Map(opt.Parallel, cells, func(_ int, c cell) (core.Result, error) {
		return runFaultVariant(c.v, sw, opt, c.plan)
	})
	if err != nil {
		return err
	}
	for k := 0; k < len(cells); k += 2 {
		bare, res := results[k], results[k+1]
		arch, pol, fwd := cells[k].v.label()
		if sw.Policy != nil && sw.Policy.Adaptive {
			pol = strings.ToUpper(sw.Policy.String())
		}
		t.AddRow(arch, pol, fwd, report.F(cells[k].loss*100),
			report.F(delivered(bare)), report.F(delivered(res)),
			fmt.Sprintf("%d", res.Retransmits),
			fmt.Sprintf("%d", res.RetransmitGiveUps),
			report.F(res.RecoveryMeanSec*1000),
			fmt.Sprintf("%d", res.Crashes),
			report.F(res.DegradedResidencySec))
	}
	return t.Render(w)
}

// delivered is the survivability metric: the percentage of generated
// samples received at the main process.
func delivered(r core.Result) float64 {
	if r.SamplesGenerated == 0 {
		return 0
	}
	return float64(r.SamplesReceived) / float64(r.SamplesGenerated) * 100
}

func runFaultVariant(v faultVariant, sw FaultSweepOptions, opt Options, plan faults.Plan) (core.Result, error) {
	cfg := core.DefaultConfig()
	cfg.Arch = v.arch
	cfg.Nodes = sw.Nodes
	cfg.Policy = v.policy
	cfg.Forwarding = v.fwd
	if v.policy == forward.BF {
		cfg.BatchSize = sw.BatchSize
	}
	if sw.Policy != nil && sw.Policy.Adaptive && v.policy == forward.BF {
		cfg.Strategy = sw.Policy.NewStrategy(sw.BatchSize)
	}
	if v.arch == core.SMP {
		// SMP: AppProcs is the machine total, one process per CPU.
		cfg.AppProcs = sw.Nodes
	}
	cfg.SamplingPeriod = sw.SamplingPeriodUS
	cfg.Faults = &plan
	return runOne(cfg, opt)
}
