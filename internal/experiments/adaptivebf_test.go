package experiments

import (
	"reflect"
	"testing"
)

// The ISSUE 9 acceptance gate: on the statistically dense cells of the
// Figure 19 grid, the default adaptive controller reaches a mean
// forwarding latency within 15% of the best per-cell fixed batch while
// keeping daemon per-sample CPU within 10% of it — with no per-scenario
// tuning.
//
// The gate runs the 1 ms and 8 ms sampling periods only: at 40/64 ms a
// 10-second replication carries just tens of forwarded messages, so the
// per-cell argmin over five fixed batches is an order statistic of noise
// (its winner can sit below the true mean), not a meaningful oracle.
// The dense cells give the oracle hundreds-to-thousands of messages per
// replication.
func TestAdaptiveBFMeetsGateOnDenseCells(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replication sweep")
	}
	opt := Options{DurationUS: 10e6, Reps: 3}
	ab := DefaultAdaptiveBF()
	ab.SamplingPeriodsMS = []float64{1, 8}
	cells, err := RunAdaptiveBFSweep(opt, ab)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expected 4 cells, got %d", len(cells))
	}
	for _, c := range cells {
		latRatio, cpuRatio := c.Ratios()
		if c.Adaptive.ForwardLatencySec <= 0 {
			t.Errorf("sp=%v nodes=%d: adaptive candidate delivered no data",
				c.SamplingPeriodMS, c.Nodes)
			continue
		}
		if latRatio > 1.15 {
			t.Errorf("sp=%v nodes=%d: adaptive latency ratio %.3f vs %s exceeds 1.15",
				c.SamplingPeriodMS, c.Nodes, latRatio, c.Best.Policy)
		}
		if cpuRatio > 1.10 {
			t.Errorf("sp=%v nodes=%d: adaptive CPU ratio %.3f vs %s exceeds 1.10",
				c.SamplingPeriodMS, c.Nodes, cpuRatio, c.Best.Policy)
		}
	}
}

// The sweep is byte-reproducible at any worker-pool size: seeds are
// pre-derived per cell and results aggregate in index order.
func TestAdaptiveBFSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replication sweep")
	}
	opt := Options{DurationUS: 2e6, Reps: 2}
	ab := AdaptiveBFOptions{
		SamplingPeriodsMS: []float64{8},
		Nodes:             []int{2},
		Batches:           []int{4, 16},
	}
	opt.Parallel = 1
	serial, err := RunAdaptiveBFSweep(opt, ab)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = 4
	pooled, err := RunAdaptiveBFSweep(opt, ab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatalf("sweep differs between worker counts:\n%+v\n%+v", serial, pooled)
	}
}
