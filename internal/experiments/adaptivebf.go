package experiments

import (
	"fmt"
	"io"

	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/par"
	"rocc/internal/report"
	"rocc/internal/stats"
)

func init() {
	register("ext-adaptive-bf",
		"Extension: adaptive batch-size controller vs CF and fixed BF on the Figure 19 grid",
		runExtAdaptiveBF)
}

// AdaptiveBFOptions parameterizes the adaptive-batching sweep: the
// Figure 19 operating grid (sampling period × node count) and the fixed
// batch sizes the adaptive controller competes against.
type AdaptiveBFOptions struct {
	// SamplingPeriodsMS is the sampling-period axis in milliseconds.
	SamplingPeriodsMS []float64
	// Nodes is the node-count axis.
	Nodes []int
	// Batches are the fixed BF batch sizes swept per cell; the best
	// (lowest reps-mean forwarding latency) becomes the per-cell oracle
	// the adaptive candidate is judged against.
	Batches []int
	// Candidate overrides the adaptive strategy under test (default bare
	// "abf"); roccbench -policy feeds this through Options.Policy.
	Candidate *forward.StrategySpec
}

// DefaultAdaptiveBF returns the default sweep: the Figure 19 sampling
// periods and node counts with batch sizes spanning the knee.
func DefaultAdaptiveBF() AdaptiveBFOptions {
	return AdaptiveBFOptions{
		SamplingPeriodsMS: []float64{1, 8, 40, 64},
		Nodes:             []int{2, 8},
		Batches:           []int{1, 4, 16, 32, 128},
	}
}

// AdaptiveBFPoint is one policy variant's reps-mean metrics in one cell.
type AdaptiveBFPoint struct {
	// Policy is the -policy spec of the variant ("cf", "bf:16", "abf").
	Policy string
	// ForwardLatencySec is the reps-mean forwarding latency.
	ForwardLatencySec float64
	// PdUSPerSample is the reps-mean daemon CPU cost per delivered
	// sample, in microseconds.
	PdUSPerSample float64
	// FinalBatchMean and Adjustments are adaptive-only telemetry: the
	// reps-mean final batch target and total control decisions taken.
	FinalBatchMean float64
	Adjustments    int
}

// AdaptiveBFCell is one grid cell's comparison: CF, every fixed batch,
// the best fixed batch (the per-cell oracle), and the adaptive candidate.
type AdaptiveBFCell struct {
	SamplingPeriodMS float64
	Nodes            int
	CF               AdaptiveBFPoint
	Fixed            []AdaptiveBFPoint
	Best             AdaptiveBFPoint
	Adaptive         AdaptiveBFPoint
}

// RunAdaptiveBFSweep runs the adaptive-batching comparison over the grid.
// Per cell, every policy variant replays the same replication seeds
// (derived from SeedStreamAdaptive at the cell index), so the variants
// see identical workload randomness and the latency/CPU ratios are free
// of common-mode noise. The flattened cell × variant × replication work
// list fans out across opt.Parallel workers; results aggregate in index
// order, so output is byte-identical at any pool size.
func RunAdaptiveBFSweep(opt Options, ab AdaptiveBFOptions) ([]AdaptiveBFCell, error) {
	opt = opt.normalized()
	def := DefaultAdaptiveBF()
	if len(ab.SamplingPeriodsMS) == 0 {
		ab.SamplingPeriodsMS = def.SamplingPeriodsMS
	}
	if len(ab.Nodes) == 0 {
		ab.Nodes = def.Nodes
	}
	if len(ab.Batches) == 0 {
		ab.Batches = def.Batches
	}
	cand := forward.StrategySpec{Policy: forward.BF, Adaptive: true}
	switch {
	case ab.Candidate != nil:
		cand = *ab.Candidate
	case opt.Policy != nil:
		cand = *opt.Policy
	}

	// Variant order: CF, the fixed batches, then the candidate.
	specs := []forward.StrategySpec{{Policy: forward.CF, Batch: 1}}
	for _, b := range ab.Batches {
		specs = append(specs, forward.StrategySpec{Policy: forward.BF, Batch: b})
	}
	specs = append(specs, cand)

	type cellKey struct {
		spMS  float64
		nodes int
	}
	var keys []cellKey
	for _, sp := range ab.SamplingPeriodsMS {
		for _, n := range ab.Nodes {
			keys = append(keys, cellKey{sp, n})
		}
	}

	reps := opt.Reps
	type job struct {
		ci, vi, ri int
		cfg        core.Config
	}
	var jobs []job
	for ci, k := range keys {
		seeds := core.ReplicationSeeds(
			core.DeriveSeed(opt.Seed, core.SeedStreamAdaptive, uint64(ci)), reps)
		for vi, spec := range specs {
			for ri, seed := range seeds {
				cfg := core.DefaultConfig()
				cfg.Nodes = k.nodes
				cfg.SamplingPeriod = k.spMS * 1000
				cfg.Seed = seed
				switch {
				case spec.Adaptive:
					cfg.Policy = forward.BF
					cfg.Strategy = spec.NewStrategy(0)
				case spec.Policy == forward.CF:
					cfg.Policy = forward.CF
				default:
					cfg.Policy = forward.BF
					cfg.BatchSize = spec.Batch
				}
				jobs = append(jobs, job{ci, vi, ri, cfg})
			}
		}
	}
	flat, err := par.Map(opt.Parallel, jobs, func(_ int, j job) (core.Result, error) {
		res, err := runOne(j.cfg, opt)
		if err != nil {
			return core.Result{}, fmt.Errorf("ext-adaptive-bf sp=%v nodes=%d %s: %w",
				keys[j.ci].spMS, keys[j.ci].nodes, specs[j.vi], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	// Aggregate replications per (cell, variant) in index order.
	type agg struct {
		lat, cpu, batch []float64
		adjustments     int
	}
	aggs := make([]agg, len(keys)*len(specs))
	for k, j := range jobs {
		r := flat[k]
		a := &aggs[j.ci*len(specs)+j.vi]
		a.lat = append(a.lat, r.ForwardLatencySec)
		a.cpu = append(a.cpu, pdUSPerSample(r, keys[j.ci].nodes))
		if r.AdaptiveFinalBatchMean > 0 {
			a.batch = append(a.batch, r.AdaptiveFinalBatchMean)
		}
		a.adjustments += r.AdaptiveAdjustments
	}
	point := func(ci, vi int) AdaptiveBFPoint {
		a := aggs[ci*len(specs)+vi]
		return AdaptiveBFPoint{
			Policy:            specs[vi].String(),
			ForwardLatencySec: stats.MeanOf(a.lat),
			PdUSPerSample:     stats.MeanOf(a.cpu),
			FinalBatchMean:    stats.MeanOf(a.batch),
			Adjustments:       a.adjustments,
		}
	}

	cells := make([]AdaptiveBFCell, 0, len(keys))
	for ci, k := range keys {
		c := AdaptiveBFCell{SamplingPeriodMS: k.spMS, Nodes: k.nodes}
		c.CF = point(ci, 0)
		for bi := range ab.Batches {
			c.Fixed = append(c.Fixed, point(ci, 1+bi))
		}
		// Best is the lowest reps-mean latency among fixed batches that
		// actually delivered data: a batch too large for the cell's sample
		// rate never fills within the run, reports zero latency, and would
		// otherwise win the argmin with an empty result.
		for _, p := range c.Fixed {
			if p.ForwardLatencySec <= 0 {
				continue
			}
			if c.Best.ForwardLatencySec <= 0 || p.ForwardLatencySec < c.Best.ForwardLatencySec {
				c.Best = p
			}
		}
		if c.Best.Policy == "" {
			c.Best = c.Fixed[0]
		}
		c.Adaptive = point(ci, len(specs)-1)
		cells = append(cells, c)
	}
	return cells, nil
}

// pdUSPerSample is the daemon CPU cost per delivered sample in
// microseconds: total daemon busy time over all nodes divided by the
// samples that reached the main process.
func pdUSPerSample(r core.Result, nodes int) float64 {
	if r.SamplesReceived == 0 {
		return 0
	}
	return r.PdCPUTimePerNodeSec * float64(nodes) * 1e6 / float64(r.SamplesReceived)
}

func runExtAdaptiveBF(w io.Writer, opt Options) error {
	opt = opt.normalized()
	cells, err := RunAdaptiveBFSweep(opt, DefaultAdaptiveBF())
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Adaptive batching vs CF and fixed BF (r=%d, %.0f s runs)",
			opt.Reps, opt.DurationUS/1e6),
		"SP (ms)", "nodes", "policy", "fwd latency (ms)", "Pd CPU (us/sample)",
		"final batch", "adjustments")
	for _, c := range cells {
		sp, nodes := report.F(c.SamplingPeriodMS), fmt.Sprint(c.Nodes)
		row := func(p AdaptiveBFPoint) {
			batch, adj := "", ""
			if p.FinalBatchMean > 0 {
				batch = report.F(p.FinalBatchMean)
				adj = fmt.Sprint(p.Adjustments)
			}
			t.AddRow(sp, nodes, p.Policy,
				report.F(p.ForwardLatencySec*1000), report.F(p.PdUSPerSample), batch, adj)
		}
		row(c.CF)
		for _, p := range c.Fixed {
			row(p)
		}
		row(c.Adaptive)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	s := report.NewTable("Adaptive candidate vs per-cell best fixed batch",
		"SP (ms)", "nodes", "best fixed", "latency ratio", "CPU ratio")
	for _, c := range cells {
		latRatio, cpuRatio := c.Ratios()
		s.AddRow(report.F(c.SamplingPeriodMS), fmt.Sprint(c.Nodes), c.Best.Policy,
			report.F(latRatio), report.F(cpuRatio))
	}
	return s.Render(w)
}

// Ratios returns the adaptive candidate's forwarding-latency and
// per-sample CPU cost relative to the cell's best fixed batch (1.0 =
// parity; lower is better). A zero denominator yields 0.
func (c AdaptiveBFCell) Ratios() (lat, cpu float64) {
	if c.Best.ForwardLatencySec > 0 {
		lat = c.Adaptive.ForwardLatencySec / c.Best.ForwardLatencySec
	}
	if c.Best.PdUSPerSample > 0 {
		cpu = c.Adaptive.PdUSPerSample / c.Best.PdUSPerSample
	}
	return lat, cpu
}
