package experiments

import (
	"io"

	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/report"
	"rocc/internal/scenario"
)

func init() {
	register("table6", "MPP: 2^4·r factorial simulation results", runTable6)
	register("fig25", "MPP: allocation of variation", runFig25)
	register("fig26", "MPP: four metrics over sampling period, direct vs tree (256 nodes)", runFig26)
	register("fig27", "MPP: four metrics over number of nodes, direct vs tree", runFig27)
	register("fig28", "MPP: effect of barrier-operation frequency (256 nodes)", runFig28)
}

// mppFactorialRows materializes the Table 6 design from the shared
// scenario grid (A = nodes, B = sampling period, C = policy, D = network
// configuration).
func mppFactorialRows() ([]string, []factorialRow, error) {
	g := scenario.Table6Grid()
	rows, err := gridRows(g)
	return g.Factors, rows, err
}

func runTable6(w io.Writer, opt Options) error {
	opt = opt.normalized()
	_, rows, err := mppFactorialRows()
	if err != nil {
		return err
	}
	ov, lat, err := runFactorial(rows, opt, core.MetricPdCPUTime, core.MetricLatency)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 6: MPP simulation results",
		"configuration", "Pd CPU time/node (sec)", "±", "latency/sample (msec)", "±")
	for i, row := range rows {
		ovCI := ciOf(ov[i])
		latCI := ciOf(lat[i])
		t.AddRow(row.label,
			report.F(ovCI.Mean), report.F(ovCI.HalfWidth),
			report.F(latCI.Mean*1000), report.F(latCI.HalfWidth*1000))
	}
	return t.Render(w)
}

func runFig25(w io.Writer, opt Options) error {
	opt = opt.normalized()
	factors, rows, err := mppFactorialRows()
	if err != nil {
		return err
	}
	ov, lat, err := runFactorial(rows, opt, core.MetricPdCPUTime, core.MetricLatency)
	if err != nil {
		return err
	}
	return renderAllocation(w, "Figure 25 (MPP)", factors, "Pd CPU time", ov, lat)
}

// mppVariants builds direct / tree / uninstrumented series.
func mppVariants(nodes int, modify func(cfg *core.Config, x float64)) []simVariant {
	mk := func(fwd forward.Config, sampling bool) func(float64) core.Config {
		return func(x float64) core.Config {
			cfg := core.DefaultConfig()
			cfg.Arch = core.MPP
			cfg.Nodes = nodes
			cfg.Policy = forward.BF
			cfg.BatchSize = 32
			cfg.SamplingPeriod = 40000
			cfg.Forwarding = fwd
			modify(&cfg, x)
			if !sampling {
				cfg.SamplingPeriod = 0
				cfg.Forwarding = forward.Direct
			}
			return cfg
		}
	}
	return []simVariant{
		{"direct", mk(forward.Direct, true)},
		{"tree", mk(forward.Tree, true)},
		{"uninstrumented", mk(forward.Direct, false)},
	}
}

func runFig26(w io.Writer, opt Options) error {
	opt = opt.normalized()
	return simSweep(w, opt, "Figure 26: MPP, 256 nodes, BF", "sampling_period_ms",
		scenario.SamplingPeriodAxisMS(),
		mppVariants(256, func(cfg *core.Config, x float64) {
			if cfg.SamplingPeriod > 0 {
				cfg.SamplingPeriod = x * 1000
			}
		}))
}

func runFig27(w io.Writer, opt Options) error {
	opt = opt.normalized()
	return simSweep(w, opt, "Figure 27: MPP, SP = 40 ms, BF", "nodes",
		scenario.MPPNodeAxis(),
		mppVariants(0, func(cfg *core.Config, x float64) { cfg.Nodes = int(x) }))
}

func runFig28(w io.Writer, opt Options) error {
	opt = opt.normalized()
	// Barrier period in msec, logarithmic axis as in the paper.
	periods := []float64{0.1, 1, 10, 100, 1000, 10000}
	if err := simSweep(w, opt, "Figure 28: MPP, 256 nodes, SP = 40 ms, BF", "barrier_period_ms",
		periods,
		mppVariants(256, func(cfg *core.Config, x float64) { cfg.BarrierPeriod = x * 1000 })); err != nil {
		return err
	}
	// Supplementary panel at a contention-limited operating point (CF,
	// 5 ms sampling): here the daemon competes with the application for
	// the CPU, so frequent barriers — which idle the application — make
	// the daemon's work complete sooner, the §4.4.3 mechanism.
	return simSweep(w, opt, "Figure 28 (supplement): CF, 4 procs/node, SP = 1 ms — contention-limited daemon",
		"barrier_period_ms", periods,
		[]simVariant{{"direct-CF", func(x float64) core.Config {
			cfg := core.DefaultConfig()
			cfg.Arch = core.MPP
			cfg.Nodes = 16
			cfg.AppProcs = 4
			cfg.SamplingPeriod = 1000
			cfg.PipeCapacity = 16
			cfg.BarrierPeriod = x * 1000
			return cfg
		}}})
}
