package experiments

import (
	"io"

	"rocc/internal/scenario"
	"rocc/internal/xval"
)

func init() {
	register("ext-crossval", "Extension: cross-validation dashboard — analytic vs simulation vs paper", runExtCrossVal)
}

// runExtCrossVal runs the cross-validation dashboard over the smoke grid
// (baseline + Table 3 + Table 4) at the experiment scale. The standalone
// roccxval command covers the larger paper/full grids.
func runExtCrossVal(w io.Writer, opt Options) error {
	opt = opt.normalized()
	xopt := xval.DefaultOptions()
	xopt.Seed = opt.Seed
	xopt.DurationUS = opt.DurationUS
	xopt.Reps = opt.Reps
	xopt.Workers = opt.Parallel
	rep, err := xval.Run(scenario.SmokeGrid(), xval.DefaultEvaluators(xopt), xopt)
	if err != nil {
		return err
	}
	return rep.RenderText(w)
}
