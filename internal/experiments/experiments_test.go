package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"

	"rocc/internal/core"
)

// tinyOptions shrinks every experiment far enough to run in CI.
func tinyOptions() Options {
	return Options{
		Seed:            1,
		DurationUS:      2e5, // 0.2 simulated seconds
		Reps:            2,
		TestbedDuration: 40 * time.Millisecond,
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be present.
	want := []string{
		"table1", "fig8", "table2", "table3",
		"fig9", "fig10", "fig12", "fig13", "fig14", "fig15",
		"table4", "fig16", "fig17", "fig18", "fig19",
		"table5", "fig20", "fig21", "fig22", "fig23", "fig24",
		"table6", "fig25", "fig26", "fig27", "fig28",
		"fig30", "table7", "fig31", "table8",
		"ext-adaptive", "ext-consultant", "ext-cluster", "ext-tracing", "ext-phases",
		"ext-crossval",
		"ablation-pipecap", "ablation-quantum", "ablation-eventqueue",
		"ablation-netcontention", "ablation-fitting", "ablation-detailed",
		"fault-survivability",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id should not resolve")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatal("IDs() inconsistent with All()")
	}
}

// Each fast (non-simulation-heavy) experiment runs and produces output.
func TestAnalyticExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig9", "fig10", "fig12", "fig13", "fig14", "fig15"} {
		e, _ := ByID(id)
		var buf bytes.Buffer
		if err := e.Run(&buf, tinyOptions()); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
		if !strings.Contains(buf.String(), "Pd CPU utilization") {
			t.Fatalf("%s missing metric panel", id)
		}
	}
}

func TestCharacterizationExperimentsRun(t *testing.T) {
	for _, id := range []string{"table1", "table2", "fig8", "table3"} {
		e, _ := ByID(id)
		var buf bytes.Buffer
		if err := e.Run(&buf, tinyOptions()); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestTable1MentionsAllClasses(t *testing.T) {
	e, _ := ByID("table1")
	var buf bytes.Buffer
	if err := e.Run(&buf, tinyOptions()); err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"application", "pd", "pvmd", "other", "paradyn"} {
		if !strings.Contains(buf.String(), class) {
			t.Errorf("table1 missing class %s:\n%s", class, buf.String())
		}
	}
}

func TestSimulationExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments skipped in -short")
	}
	for _, id := range []string{"fig17", "fig18", "fig19", "table4", "fig16"} {
		e, _ := ByID(id)
		var buf bytes.Buffer
		if err := e.Run(&buf, tinyOptions()); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

func TestSMPAndMPPExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments skipped in -short")
	}
	opt := tinyOptions()
	opt.DurationUS = 1e5
	for _, id := range []string{"table5", "fig20", "fig21", "table6", "fig25"} {
		e, _ := ByID(id)
		var buf bytes.Buffer
		if err := e.Run(&buf, opt); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestRemainingSimulationExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments skipped in -short")
	}
	opt := tinyOptions()
	opt.DurationUS = 5e4 // 50 simulated ms: exercises the code paths only
	for _, id := range []string{"fig22", "fig23", "fig24", "fig26", "fig27", "fig28",
		"ext-adaptive", "ext-consultant", "ext-phases", "ablation-fitting", "ablation-detailed",
		"fault-survivability"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf, opt); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

// TestFaultSweepByteIdentical is the reproducibility contract for the
// survivability table: same options and seed, byte-identical output.
func TestFaultSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments skipped in -short")
	}
	opt := tinyOptions()
	opt.DurationUS = 1e5
	sw := DefaultFaultSweep()
	sw.LossLevels = []float64{0.05}
	var a, b bytes.Buffer
	if err := FaultSweep(&a, opt, sw); err != nil {
		t.Fatal(err)
	}
	if err := FaultSweep(&b, opt, sw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("fault sweep not reproducible:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "delivered % (resilient)") {
		t.Fatalf("sweep table missing survivability columns:\n%s", a.String())
	}
}

// The end-to-end determinism contract of the parallel sweep engine: a
// full experiment (fig16: a 2^k·r factorial with replications, plus
// allocation-of-variation tables) renders byte-identical output whether
// the runs execute serially or fan out one goroutine per core. Run under
// -race in CI, this also exercises the fan-out for data races.
func TestFig16ParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments skipped in -short")
	}
	e, _ := ByID("fig16")
	opt := tinyOptions()
	opt.DurationUS = 1e5

	render := func(parallel int) string {
		o := opt
		o.Parallel = parallel
		var buf bytes.Buffer
		if err := e.Run(&buf, o); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return buf.String()
	}
	serial := render(1)
	for _, workers := range []int{0, runtime.NumCPU(), 8} {
		if got := render(workers); got != serial {
			t.Fatalf("parallel=%d output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, got)
		}
	}
}

// The fault-survivability table must also be pool-size independent (its
// cells fan out across a flattened variant × intensity × resilience cube).
func TestFaultSweepParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments skipped in -short")
	}
	opt := tinyOptions()
	opt.DurationUS = 1e5
	sw := DefaultFaultSweep()
	sw.LossLevels = []float64{0.05}
	var serial, parallel bytes.Buffer
	opt.Parallel = 1
	if err := FaultSweep(&serial, opt, sw); err != nil {
		t.Fatal(err)
	}
	opt.Parallel = 8
	if err := FaultSweep(&parallel, opt, sw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("fault sweep depends on pool size:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

// The flattened factorial fan-out must reproduce the per-row
// RunReplications path bit for bit: same DeriveSeed chain, same results.
func TestFactorialMatchesReplicationPath(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments skipped in -short")
	}
	opt := tinyOptions()
	opt.DurationUS = 1e5
	cfg := core.DefaultConfig()
	cfg.Nodes = 2
	rows := []factorialRow{{label: "row0", cfg: cfg}}

	ov, _, err := runFactorial(rows, opt, core.MetricPdCPUTime, core.MetricLatency)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg
	want.Duration = opt.DurationUS
	want.Seed = core.DeriveSeed(opt.Seed, core.SeedStreamFactorial, 0)
	rep, err := core.RunReplicationsParallel(want, opt.Reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ov[0]) != len(rep.Results) {
		t.Fatalf("replicate counts differ: %d vs %d", len(ov[0]), len(rep.Results))
	}
	for i, r := range rep.Results {
		if ov[0][i] != core.MetricPdCPUTime(r) {
			t.Fatalf("replicate %d: factorial %v vs replication path %v",
				i, ov[0][i], core.MetricPdCPUTime(r))
		}
	}
}

func TestMeasurementExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed experiments skipped in -short")
	}
	opt := tinyOptions()
	opt.Reps = 1
	for _, id := range []string{"fig30", "fig31"} {
		e, _ := ByID(id)
		var buf bytes.Buffer
		if err := e.Run(&buf, opt); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "CF") || !strings.Contains(buf.String(), "BF") {
			t.Fatalf("%s missing policy rows:\n%s", id, buf.String())
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations skipped in -short")
	}
	for _, id := range []string{"ablation-pipecap", "ablation-quantum", "ablation-netcontention"} {
		e, _ := ByID(id)
		var buf bytes.Buffer
		if err := e.Run(&buf, tinyOptions()); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestCSVMode(t *testing.T) {
	e, _ := ByID("fig9")
	opt := tinyOptions()
	opt.CSV = true
	var buf bytes.Buffer
	if err := e.Run(&buf, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodes,CF,BF(32)") {
		t.Fatalf("CSV header missing:\n%s", buf.String())
	}
}

func TestOptionsNormalization(t *testing.T) {
	var o Options
	n := o.normalized()
	if n.DurationUS <= 0 || n.Reps < 1 || n.TestbedDuration <= 0 || n.Seed == 0 {
		t.Fatalf("normalized zero options invalid: %+v", n)
	}
	if Paper().Reps != 50 {
		t.Fatal("paper scale should use 50 replications")
	}
	if Default().Reps < 1 {
		t.Fatal("default reps")
	}
}
