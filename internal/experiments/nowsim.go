package experiments

import (
	"io"

	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/report"
	"rocc/internal/scenario"
	"rocc/internal/stats"
)

func init() {
	register("table4", "NOW: 2^4·r factorial simulation results", runTable4)
	register("fig16", "NOW: allocation of variation (principal factors)", runFig16)
	register("fig17", "NOW local: Pd CPU time and forwarding throughput, CF vs BF", runFig17)
	register("fig18", "NOW global: four metrics over nodes and sampling period, CF vs BF", runFig18)
	register("fig19", "NOW: batch-size sweep (knee of the latency curve)", runFig19)
}

// nowFactorialRows materializes the Table 4 design (doe standard order)
// from the shared scenario grid, so the factorial table, the figure-16
// allocation, and the cross-validation dashboard all run the exact same
// operating points.
func nowFactorialRows() ([]string, []factorialRow, error) {
	g := scenario.Table4Grid()
	rows, err := gridRows(g)
	return g.Factors, rows, err
}

func runTable4(w io.Writer, opt Options) error {
	opt = opt.normalized()
	_, rows, err := nowFactorialRows()
	if err != nil {
		return err
	}
	ov, lat, err := runFactorial(rows, opt, core.MetricPdCPUTime, core.MetricLatency)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 4: NOW simulation results (means of r replications, 90% CI half-widths)",
		"configuration", "Pd CPU time/node (sec)", "±", "latency/sample (msec)", "±")
	for i, row := range rows {
		ovCI := ciOf(ov[i])
		latCI := ciOf(lat[i])
		t.AddRow(row.label,
			report.F(ovCI.Mean), report.F(ovCI.HalfWidth),
			report.F(latCI.Mean*1000), report.F(latCI.HalfWidth*1000))
	}
	return t.Render(w)
}

func ciOf(xs []float64) stats.ConfidenceInterval {
	if len(xs) < 2 {
		return stats.ConfidenceInterval{Mean: stats.MeanOf(xs)}
	}
	ci, err := stats.MeanCI(xs, 0.90)
	if err != nil {
		return stats.ConfidenceInterval{Mean: stats.MeanOf(xs)}
	}
	return ci
}

func runFig16(w io.Writer, opt Options) error {
	opt = opt.normalized()
	factors, rows, err := nowFactorialRows()
	if err != nil {
		return err
	}
	ov, lat, err := runFactorial(rows, opt, core.MetricPdCPUTime, core.MetricLatency)
	if err != nil {
		return err
	}
	return renderAllocation(w, "Figure 16 (NOW)", factors, "Pd CPU time", ov, lat)
}

func runFig17(w io.Writer, opt Options) error {
	opt = opt.normalized()
	localVariants := func(procs int, sp float64) []simVariant {
		mk := func(policy forward.Policy, batch int) func(float64) core.Config {
			return func(x float64) core.Config {
				cfg := core.DefaultConfig()
				cfg.Nodes = 1 // local level of detail: a single node
				cfg.Policy = policy
				cfg.BatchSize = batch
				if procs < 0 { // x is the process count
					cfg.AppProcs = int(x)
					cfg.SamplingPeriod = sp
				} else { // x is the sampling period in ms
					cfg.AppProcs = procs
					cfg.SamplingPeriod = x * 1000
				}
				return cfg
			}
		}
		return []simVariant{
			{"CF", mk(forward.CF, 1)},
			{"BF(32)", mk(forward.BF, 32)},
		}
	}
	panels := []struct {
		title  string
		xlabel string
		xs     []float64
		vs     []simVariant
	}{
		{"Figure 17(a): 8 application processes", "sampling_period_ms",
			scenario.LocalSamplingPeriodAxisMS(), localVariants(8, 0)},
		{"Figure 17(b): sampling period = 40 ms", "app_processes",
			scenario.AppProcsAxis(), localVariants(-1, 40000)},
	}
	metrics := []struct {
		name string
		get  core.Metric
	}{
		{"CPU time (sec)", core.MetricPdCPUTime},
		{"Throughput (samples/sec)", core.MetricPdThroughput},
	}
	for _, p := range panels {
		results, err := runGrid(opt, p.xs, p.vs)
		if err != nil {
			return err
		}
		for _, metric := range metrics {
			fig := report.NewFigure(p.title, p.xlabel, metric.name, p.xs)
			for vi, v := range p.vs {
				ys := make([]float64, len(p.xs))
				for xi := range p.xs {
					ys[xi] = metric.get(results[vi][xi])
				}
				if err := fig.Add(v.name, ys); err != nil {
					return err
				}
			}
			if err := renderFigure(w, opt, fig); err != nil {
				return err
			}
		}
	}
	return nil
}

// nowGlobalVariants builds the CF / BF / uninstrumented series.
func nowGlobalVariants(modify func(cfg *core.Config, x float64)) []simVariant {
	mk := func(policy forward.Policy, batch int, sp float64) func(float64) core.Config {
		return func(x float64) core.Config {
			cfg := core.DefaultConfig()
			cfg.Policy = policy
			cfg.BatchSize = batch
			cfg.SamplingPeriod = sp
			modify(&cfg, x)
			return cfg
		}
	}
	return []simVariant{
		{"CF", mk(forward.CF, 1, 40000)},
		{"BF(32)", mk(forward.BF, 32, 40000)},
		{"uninstrumented", func(x float64) core.Config {
			cfg := core.DefaultConfig()
			cfg.SamplingPeriod = 0
			modify(&cfg, x)
			cfg.SamplingPeriod = 0
			return cfg
		}},
	}
}

func runFig18(w io.Writer, opt Options) error {
	opt = opt.normalized()
	if err := simSweep(w, opt, "Figure 18(a): sampling period = 40 ms", "nodes",
		scenario.NodeAxis(),
		nowGlobalVariants(func(cfg *core.Config, x float64) { cfg.Nodes = int(x) })); err != nil {
		return err
	}
	return simSweep(w, opt, "Figure 18(b): number of nodes = 8", "sampling_period_ms",
		scenario.SamplingPeriodAxisMS(),
		nowGlobalVariants(func(cfg *core.Config, x float64) {
			if cfg.SamplingPeriod > 0 {
				cfg.SamplingPeriod = x * 1000
			}
		}))
}

func runFig19(w io.Writer, opt Options) error {
	opt = opt.normalized()
	batches := scenario.BatchAxis()
	mk := func(spMS float64) func(float64) core.Config {
		return func(b float64) core.Config {
			cfg := core.DefaultConfig()
			cfg.SamplingPeriod = spMS * 1000
			if b > 1 {
				cfg.Policy = forward.BF
				cfg.BatchSize = int(b)
			}
			return cfg
		}
	}
	return simSweep(w, opt, "Figure 19: batch-size sweep (8 nodes)", "batch_size", batches,
		[]simVariant{
			{"SP=1ms", mk(1)},
			{"SP=40ms", mk(40)},
			{"SP=64ms", mk(64)},
		})
}
