package experiments

import (
	"io"
	"time"

	"rocc/internal/core"
	"rocc/internal/des"
	"rocc/internal/forward"
	"rocc/internal/report"
	"rocc/internal/rng"
	"rocc/internal/trace"
	"rocc/internal/workload"
)

func init() {
	register("ablation-pipecap", "Ablation: pipe capacity vs application blocking (§4.3.3 mechanism)", runAblationPipeCap)
	register("ablation-quantum", "Ablation: CPU scheduling quantum sensitivity", runAblationQuantum)
	register("ablation-eventqueue", "Ablation: heap vs sorted-list vs calendar-queue event calendar", runAblationEventQueue)
	register("ablation-netcontention", "Ablation: contended vs contention-free MPP network", runAblationNetContention)
	register("ablation-fitting", "Ablation: fitted distributions vs trace-driven (empirical) workload", runAblationFitting)
}

// runAblationFitting quantifies the §2.3.2 fitting step: simulate under
// the fitted Table 2 distributions and under a trace-driven workload that
// resamples the raw observations, and compare the headline metrics.
func runAblationFitting(w io.Writer, opt Options) error {
	opt = opt.normalized()
	recs, err := trace.Generate(trace.GenConfig{
		Seed:             opt.Seed,
		DurationUS:       opt.DurationUS * 5,
		SamplingPeriodUS: 40000,
		IncludeMainTrace: true,
	})
	if err != nil {
		return err
	}
	c, err := workload.Characterize(recs)
	if err != nil {
		return err
	}
	clustered, err := c.ClusteredWorkload(8)
	if err != nil {
		return err
	}
	t := report.NewTable("Workload-fitting ablation (2-node NOW, 40 ms sampling, CF)",
		"workload", "Pd CPU util (%)", "app CPU util (%)", "latency (sec)", "throughput (/sec)")
	for _, mode := range []struct {
		name string
		wl   core.Workload
	}{
		{"fitted (Table 2 pipeline)", c.Workload()},
		{"trace-driven (empirical)", c.EmpiricalWorkload()},
		{"clustered (Hughes [13], k=8)", clustered},
	} {
		cfg := core.DefaultConfig()
		cfg.Nodes = 2
		cfg.Workload = mode.wl
		res, err := runOne(cfg, opt)
		if err != nil {
			return err
		}
		t.AddRow(mode.name, report.F(res.PdCPUUtilPct), report.F(res.AppCPUUtilPct),
			report.F(res.MonitoringLatencySec), report.F(res.ThroughputPerSec))
	}
	return t.Render(w)
}

func runAblationPipeCap(w io.Writer, opt Options) error {
	opt = opt.normalized()
	caps := []float64{2, 4, 8, 16, 64, 256}
	t := report.NewTable("Pipe capacity ablation (1 node, SP = 1 ms, CF)",
		"pipe capacity", "blocked puts", "samples generated", "app CPU util (%)", "latency (sec)")
	for _, c := range caps {
		cfg := core.DefaultConfig()
		cfg.Nodes = 1
		cfg.SamplingPeriod = 1000
		cfg.PipeCapacity = int(c)
		res, err := runOne(cfg, opt)
		if err != nil {
			return err
		}
		t.AddFloats(report.F(c),
			float64(res.BlockedPuts), float64(res.SamplesGenerated),
			res.AppCPUUtilPct, res.MonitoringLatencySec)
	}
	return t.Render(w)
}

func runAblationQuantum(w io.Writer, opt Options) error {
	opt = opt.normalized()
	quanta := []float64{1000, 5000, 10000, 20000, 50000}
	t := report.NewTable("Scheduling-quantum ablation (8 nodes, SP = 5 ms, CF)",
		"quantum (us)", "Pd CPU util (%)", "app CPU util (%)", "latency (sec)")
	for _, q := range quanta {
		cfg := core.DefaultConfig()
		cfg.SamplingPeriod = 5000
		cfg.Quantum = q
		res, err := runOne(cfg, opt)
		if err != nil {
			return err
		}
		t.AddFloats(report.F(q), res.PdCPUUtilPct, res.AppCPUUtilPct, res.MonitoringLatencySec)
	}
	return t.Render(w)
}

func runAblationEventQueue(w io.Writer, opt Options) error {
	opt = opt.normalized()
	// Same self-rescheduling event population on both calendars; report
	// wall time per dispatched event.
	t := report.NewTable("Event-calendar ablation (1000 concurrent timers, 200k dispatches)",
		"calendar", "wall time", "ns/event")
	for _, cal := range []struct {
		name string
		mk   func() des.Calendar
	}{
		{"binary heap", func() des.Calendar { return des.NewHeapCalendar() }},
		{"sorted list", func() des.Calendar { return des.NewListCalendar() }},
		{"calendar queue", func() des.Calendar { return des.NewBucketCalendar() }},
	} {
		sim := des.NewWithCalendar(cal.mk())
		r := rng.New(opt.Seed)
		for i := 0; i < 1000; i++ {
			var rec func()
			rec = func() { sim.Schedule(r.Exp(100), rec) }
			sim.Schedule(r.Exp(100), rec)
		}
		const dispatches = 200000
		start := time.Now()
		for i := 0; i < dispatches; i++ {
			sim.Step()
		}
		elapsed := time.Since(start)
		t.AddRow(cal.name, elapsed.String(),
			report.F(float64(elapsed.Nanoseconds())/dispatches))
	}
	return t.Render(w)
}

func runAblationNetContention(w io.Writer, opt Options) error {
	opt = opt.normalized()
	t := report.NewTable("Network-contention ablation (MPP, 32 nodes, SP = 5 ms, CF)",
		"network", "Pd CPU util (%)", "app CPU util (%)", "net util (%)", "latency (sec)")
	for _, mode := range []struct {
		name string
		c    core.Contention
	}{
		{"contention-free (paper §4.4)", core.ContentionOff},
		{"single shared channel", core.ContentionOn},
	} {
		cfg := core.DefaultConfig()
		cfg.Arch = core.MPP
		cfg.Nodes = 32
		cfg.SamplingPeriod = 5000
		cfg.Network = mode.c
		cfg.Forwarding = forward.Direct
		res, err := runOne(cfg, opt)
		if err != nil {
			return err
		}
		t.AddRow(mode.name, report.F(res.PdCPUUtilPct), report.F(res.AppCPUUtilPct),
			report.F(res.NetUtilPct), report.F(res.MonitoringLatencySec))
	}
	return t.Render(w)
}
