package experiments

import (
	"fmt"
	"io"

	"rocc/internal/core"
	"rocc/internal/report"
	"rocc/internal/trace"
)

func init() {
	register("ext-observability", "Extension: in-simulator telemetry — lifecycle counters, latency quantiles, occupancy timeline", runExtObservability)
}

// runExtObservability demonstrates the observability layer the way the
// paper's Section 5 uses AIX traces: one instrumented run, then the
// sample-lifecycle counters, the latency distribution's quantiles, and a
// windowed CPU occupancy timeline recovered purely from the emitted trace.
func runExtObservability(w io.Writer, opt Options) error {
	opt = opt.normalized()
	cfg := core.DefaultConfig()
	cfg.Nodes = 4
	cfg.Duration = opt.DurationUS
	cfg.Seed = opt.Seed
	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	c, err := m.EnableObservability(core.ObsOptions{Trace: true, Metrics: true})
	if err != nil {
		return err
	}
	res := m.Run()

	ct := report.NewTable("Sample lifecycle counters (4-node NOW, CF)", "counter", "count")
	for _, cnt := range c.Metrics.Counters() {
		ct.AddRow(cnt.Name, fmt.Sprint(cnt.Value()))
	}
	if err := ct.Render(w); err != nil {
		return err
	}

	qt := report.NewTable("Monitoring latency distribution (sec)", "quantile", "latency")
	for _, q := range []struct {
		name string
		p    float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		qt.AddRow(q.name, report.F(c.Metrics.Latency.Quantile(q.p)/1e6))
	}
	qt.AddRow("mean", report.F(res.MonitoringLatencySec))
	qt.AddRow("max", report.F(res.MonitoringLatencyMaxSec))
	if err := qt.Render(w); err != nil {
		return err
	}

	// The timeline below comes from the exported trace records alone —
	// the same pipeline rocctrace applies to measured AIX traces.
	recs := c.Sink.TraceRecords()
	const windows = 10
	classes, shares, err := trace.Timeline(recs, trace.CPU, windows)
	if err != nil {
		return err
	}
	an, err := trace.Analyze(recs)
	if err != nil {
		return err
	}
	width := an.DurationUS / windows
	xs := make([]float64, windows)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) * width / 1e6
	}
	fig := report.NewFigure(
		fmt.Sprintf("CPU occupancy share per %.2f-s window (from the run's own trace)", width/1e6),
		"t_sec", "share", xs)
	for i, class := range classes {
		if err := fig.Add(class, shares[i]); err != nil {
			return err
		}
	}
	if opt.CSV {
		return fig.RenderCSV(w)
	}
	return fig.Render(w)
}
