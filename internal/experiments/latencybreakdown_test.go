package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The ISSUE 10 acceptance gate: on dense cells (1 ms sampling, batch 64)
// the dominant fixed-BF latency stage must be batch residency — samples
// wait for their batch to fill — not daemon service. This is the
// decomposition's headline claim: BF's latency price is residency, not
// processing.
func TestLatencyBreakdownGateOnDenseCells(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replication sweep")
	}
	opt := Options{DurationUS: 10e6, Reps: 2}
	cells, err := RunLatencyBreakdown(opt, DefaultLatencyBreakdown())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("expected 3 cells, got %d", len(cells))
	}
	for _, c := range cells {
		var bf LatencyBreakdownPoint
		for _, p := range c.Points {
			if strings.HasPrefix(p.Policy, "bf:") {
				bf = p
			}
		}
		if bf.Policy == "" || len(bf.Stages) == 0 {
			t.Fatalf("%s: no fixed-BF decomposition in %+v", c.Arch, c.Points)
		}
		res, svc := bf.Share("batch-residency"), bf.Share("daemon-service")
		if res <= svc {
			t.Errorf("%s %s: batch-residency %.2f%% must dominate daemon-service %.2f%%",
				c.Arch, bf.Policy, res, svc)
		}
		// CF has no batch to wait for: its residency share must be far
		// below BF's.
		cf := c.Points[0]
		if cfRes := cf.Share("batch-residency"); cfRes >= res {
			t.Errorf("%s: CF residency %.2f%% >= BF residency %.2f%%", c.Arch, cfRes, res)
		}
		// Shares are percentages of a complete decomposition.
		for _, p := range c.Points {
			total := 0.0
			for _, s := range p.Stages {
				total += s.SharePct
			}
			if len(p.Stages) > 0 && (total < 99.9 || total > 100.1) {
				t.Errorf("%s %s: shares sum to %.3f%%", c.Arch, p.Policy, total)
			}
		}
	}
}

// Byte-determinism at any worker count: serial and parallel sweeps agree
// exactly.
func TestLatencyBreakdownDeterministicAcrossWorkers(t *testing.T) {
	opt := Options{DurationUS: 2e6, Reps: 2, Parallel: 1}
	lb := LatencyBreakdownOptions{Archs: []string{"now", "mpp"}, Batch: 16}
	serial, err := RunLatencyBreakdown(opt, lb)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = 4
	par4, err := RunLatencyBreakdown(opt, lb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par4) {
		t.Fatalf("sweep differs across worker counts:\n%+v\n%+v", serial, par4)
	}
}

func TestLatencyBreakdownRejectsUnknownArch(t *testing.T) {
	_, err := RunLatencyBreakdown(Options{DurationUS: 1e5},
		LatencyBreakdownOptions{Archs: []string{"vax"}})
	if err == nil {
		t.Fatal("unknown arch accepted")
	}
}
