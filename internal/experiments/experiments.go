// Package experiments contains one generator per table and figure of the
// paper's evaluation (Tables 1-8, Figures 8-31), plus the ablation studies
// called out in DESIGN.md. Each generator reruns the underlying experiment
// — workload characterization, operational analysis, ROCC simulation, or
// the real measurement testbed — and prints the same rows/series the paper
// reports, through internal/report.
//
// Scale: the paper simulated 100-second runs with r=50 replications and
// measured multi-minute benchmark executions. Options scales these down
// (default 10 simulated seconds, r=3, 250 ms testbed runs) so the full
// suite regenerates in minutes; pass larger values for paper-scale runs.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rocc/internal/des"
	"rocc/internal/dist"
	"rocc/internal/forward"
	"rocc/internal/obs"
)

// Options scales the experiments.
type Options struct {
	Seed uint64
	// DurationUS is simulated time per run in microseconds.
	DurationUS float64
	// Reps is the replication count for factorial designs.
	Reps int
	// TestbedDuration is wall-clock time per measurement run (Section 5).
	TestbedDuration time.Duration
	// CSV renders figures as CSV rather than aligned text.
	CSV bool
	// Plot additionally renders each figure as an ASCII line chart.
	Plot bool
	// Parallel is the worker-pool size for simulation fan-out: 0 uses
	// every core (par.Workers()), 1 forces the serial path. Output is
	// byte-identical at any setting — seeds are pre-derived and results
	// collected in index order.
	Parallel int
	// DistWorkers, when positive, fans the factorial designs across that
	// many worker processes through the fault-tolerant distributed engine
	// (internal/dist) instead of in-process goroutines. The seed chain is
	// shared with the local path, so output stays byte-identical.
	DistWorkers int
	// Calendar overrides the simulator's future-event-list implementation
	// for every local run (roccbench/roccsim -calendar). Purely a
	// performance knob: results are byte-identical for every kind, so
	// distributed workers — which always run the auto selection — stay
	// output-compatible regardless of this setting.
	Calendar des.CalendarKind
	// Policy, when non-nil, overrides the candidate forwarding strategy of
	// the experiments that take one (roccbench -policy): ext-adaptive-bf
	// swaps its adaptive candidate for this spec. Experiments whose policy
	// axis the paper pins (the tables and figures) ignore it, so their
	// output stays byte-identical.
	Policy *forward.StrategySpec
	// SweepMetrics, Monitor, and Trace attach live telemetry to the
	// distributed factorial runs (DistWorkers > 0): fault counters for a
	// /metrics exposition, shard progress for /progress, and the merged
	// per-worker shard timeline. All three are nil-safe and purely
	// observational — results stay byte-identical with or without them.
	SweepMetrics *obs.SweepMetrics
	Monitor      *dist.Monitor
	Trace        *dist.TraceRecorder
}

// Default returns the fast default scaling.
func Default() Options {
	return Options{
		Seed:            1,
		DurationUS:      10e6,
		Reps:            3,
		TestbedDuration: 250 * time.Millisecond,
	}
}

// Paper returns the paper-scale options (slow: minutes per experiment).
func Paper() Options {
	return Options{
		Seed:            1,
		DurationUS:      100e6,
		Reps:            50,
		TestbedDuration: 5 * time.Second,
	}
}

func (o Options) normalized() Options {
	if o.DurationUS <= 0 {
		o.DurationUS = 10e6
	}
	if o.Reps < 1 {
		o.Reps = 1
	}
	if o.TestbedDuration <= 0 {
		o.TestbedDuration = 250 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Experiment is one runnable table/figure generator.
type Experiment struct {
	// ID is the lookup key, e.g. "table1", "fig17", "ablation-quantum".
	ID string
	// Title describes the experiment.
	Title string
	// Run regenerates the experiment and writes its output.
	Run func(w io.Writer, opt Options) error
}

var registry = map[string]Experiment{}
var order []string

func register(id, title string, run func(io.Writer, Options) error) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = Experiment{ID: id, Title: title, Run: run}
	order = append(order, id)
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// RunAll executes every experiment in order, writing a banner before each.
func RunAll(w io.Writer, opt Options) error {
	for _, e := range All() {
		if _, err := fmt.Fprintf(w, "\n########## %s — %s ##########\n", e.ID, e.Title); err != nil {
			return err
		}
		if err := e.Run(w, opt); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
