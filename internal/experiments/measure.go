package experiments

import (
	"fmt"
	"io"
	"time"

	"rocc/internal/doe"
	"rocc/internal/forward"
	"rocc/internal/report"
	"rocc/internal/testbed"
)

func init() {
	register("fig30", "Measurement: Pd and main CPU overhead, CF vs BF, two sampling periods", runFig30)
	register("table7", "Measurement: allocation of variation, policy vs sampling period", runTable7)
	register("fig31", "Measurement: normalized CPU occupancy, pvmbt vs pvmis", runFig31)
	register("table8", "Measurement: allocation of variation, policy vs application", runTable8)
	register("ext-cluster", "Measurement: multi-node testbed, direct vs tree over real sockets", runExtCluster)
}

// runExtCluster runs the Figure 29 multi-node setup for real: several
// instrumented application+daemon pairs forwarding to one collector,
// directly and through a binary tree of relays (Figure 4), measuring the
// extra merge work tree forwarding costs on real sockets.
func runExtCluster(w io.Writer, opt Options) error {
	opt = opt.normalized()
	sp := time.Millisecond
	if opt.TestbedDuration >= 10*time.Second {
		sp = 10 * time.Millisecond
	}
	t := report.NewTable("Multi-node testbed: 7 nodes, CF, real TCP",
		"configuration", "avg daemon CPU (sec/node)", "relay merge work (sec)",
		"samples", "mean latency (sec)")
	for _, tree := range []bool{false, true} {
		res, err := testbed.RunCluster(testbed.ClusterConfig{
			Nodes:          7,
			Kernel:         "is",
			Policy:         forward.CF,
			SamplingPeriod: sp,
			Duration:       opt.TestbedDuration,
			Seed:           opt.Seed,
			Tree:           tree,
		})
		if err != nil {
			return err
		}
		name := "direct"
		if tree {
			name = "tree"
		}
		t.AddRow(name, report.F(res.MeanDaemonBusySec), report.F(res.TotalRelayBusySec),
			fmt.Sprint(res.Collector.Samples), report.F(res.Collector.MeanLatencySec))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "Tree forwarding adds real relay (merge) work on interior nodes — the §4.4.2 cost, measured.")
	return err
}

// measureCell runs one testbed experiment r times and returns the daemon
// and collector overhead replicates in seconds.
func measureCell(cfg testbed.ExpConfig, reps int) (pd, main []float64, err error) {
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		res, err := testbed.Run(c)
		if err != nil {
			return nil, nil, err
		}
		pd = append(pd, res.Daemon.BusySec)
		main = append(main, res.Collector.BusySec)
	}
	return pd, main, nil
}

// fig30Design is the 2^2 design of Section 5.2: A = scheduling policy
// (CF/BF), B = sampling period (10/30 ms — scaled to the testbed run
// length so each cell still sees hundreds of samples).
func fig30Design(opt Options) []testbed.ExpConfig {
	// Scale sampling periods to the run length: the paper used 10/30 ms
	// over minutes; for sub-second runs use 1/3 ms to keep sample counts
	// statistically useful.
	spLow, spHigh := 10*time.Millisecond, 30*time.Millisecond
	if opt.TestbedDuration < 10*time.Second {
		spLow, spHigh = time.Millisecond, 3*time.Millisecond
	}
	base := testbed.ExpConfig{
		Kernel:         "bt",
		Duration:       opt.TestbedDuration,
		PipeCapacity:   256,
		Seed:           opt.Seed,
		SamplingPeriod: spLow,
	}
	var cells []testbed.ExpConfig
	for i := 0; i < 4; i++ {
		c := base
		if i>>0&1 == 1 {
			c.Policy = forward.BF
			c.BatchSize = 32
		}
		if i>>1&1 == 1 {
			c.SamplingPeriod = spHigh
		}
		cells = append(cells, c)
	}
	return cells
}

func runFig30(w io.Writer, opt Options) error {
	opt = opt.normalized()
	cells := fig30Design(opt)
	t := report.NewTable("Figure 30: measured IS overhead (real testbed, pvmbt kernel)",
		"policy", "sampling period", "Pd CPU time (sec)", "main CPU time (sec)", "writes", "samples")
	for _, c := range cells {
		res, err := testbed.Run(c)
		if err != nil {
			return err
		}
		t.AddRow(c.Policy.String(), c.SamplingPeriod.String(),
			report.F(res.Daemon.BusySec), report.F(res.Collector.BusySec),
			fmt.Sprint(res.Daemon.Writes), fmt.Sprint(res.Collector.Samples))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	// Headline: overhead reduction under BF at the faster sampling period.
	cfRes, err := testbed.Run(cells[0])
	if err != nil {
		return err
	}
	bfRes, err := testbed.Run(cells[1])
	if err != nil {
		return err
	}
	if cfRes.Daemon.BusySec > 0 {
		red := (1 - bfRes.Daemon.BusySec/cfRes.Daemon.BusySec) * 100
		fmt.Fprintf(w, "BF reduces measured Pd overhead by %.0f%% at the fast sampling period\n", red)
	}
	return nil
}

func runTable7(w io.Writer, opt Options) error {
	opt = opt.normalized()
	cells := fig30Design(opt)
	var pdRows, mainRows [][]float64
	for _, c := range cells {
		pd, main, err := measureCell(c, opt.Reps)
		if err != nil {
			return err
		}
		pdRows = append(pdRows, pd)
		mainRows = append(mainRows, main)
	}
	factors := []string{"scheduling policy", "sampling period"}
	for _, part := range []struct {
		name string
		data [][]float64
	}{
		{"Paradyn daemon CPU time", pdRows},
		{"main Paradyn process CPU time", mainRows},
	} {
		an, err := doe.Analyze2KR(factors, part.data)
		if err != nil {
			return err
		}
		t := report.NewTable("Table 7: variation explained for "+part.name, "factor", "fraction")
		for _, e := range an.Effects {
			t.AddRow(e.Term, report.Pct(e.Fraction*100))
		}
		t.AddRow("error", report.Pct(an.ErrorFraction*100))
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "factors: %s\n", factorLegend(factors))
	}
	return nil
}

// fig31Design is the 2^2 design of the second measurement set:
// A = scheduling policy, B = application program (pvmbt / pvmis).
func fig31Design(opt Options) []testbed.ExpConfig {
	sp := 10 * time.Millisecond
	if opt.TestbedDuration < 10*time.Second {
		sp = time.Millisecond
	}
	base := testbed.ExpConfig{
		Duration:       opt.TestbedDuration,
		PipeCapacity:   256,
		Seed:           opt.Seed,
		SamplingPeriod: sp,
		Kernel:         "bt",
	}
	var cells []testbed.ExpConfig
	for i := 0; i < 4; i++ {
		c := base
		if i>>0&1 == 1 {
			c.Policy = forward.BF
			c.BatchSize = 32
		}
		if i>>1&1 == 1 {
			c.Kernel = "is"
		}
		cells = append(cells, c)
	}
	return cells
}

func runFig31(w io.Writer, opt Options) error {
	opt = opt.normalized()
	cells := fig31Design(opt)
	t := report.NewTable("Figure 31: normalized CPU occupancy (real testbed, SP = 10 ms class)",
		"application", "policy", "Pd occupancy (%)", "app occupancy (%)", "samples")
	for _, c := range cells {
		res, err := testbed.Run(c)
		if err != nil {
			return err
		}
		t.AddRow(c.Kernel, c.Policy.String(),
			report.F(res.NormalizedPdPct), report.F(100-res.NormalizedPdPct),
			fmt.Sprint(res.Collector.Samples))
	}
	return t.Render(w)
}

func runTable8(w io.Writer, opt Options) error {
	opt = opt.normalized()
	cells := fig31Design(opt)
	var pdRows, mainRows [][]float64
	for _, c := range cells {
		var pd, main []float64
		for i := 0; i < opt.Reps; i++ {
			cc := c
			cc.Seed = c.Seed + uint64(i)
			res, err := testbed.Run(cc)
			if err != nil {
				return err
			}
			pd = append(pd, res.NormalizedPdPct)
			main = append(main, res.NormalizedMainPct)
		}
		pdRows = append(pdRows, pd)
		mainRows = append(mainRows, main)
	}
	factors := []string{"scheduling policy", "application program"}
	for _, part := range []struct {
		name string
		data [][]float64
	}{
		{"Paradyn daemon normalized CPU time", pdRows},
		{"main process normalized CPU time", mainRows},
	} {
		an, err := doe.Analyze2KR(factors, part.data)
		if err != nil {
			return err
		}
		t := report.NewTable("Table 8: variation explained for "+part.name, "factor", "fraction")
		for _, e := range an.Effects {
			t.AddRow(e.Term, report.Pct(e.Fraction*100))
		}
		t.AddRow("error", report.Pct(an.ErrorFraction*100))
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "factors: %s\n", factorLegend(factors))
	}
	return nil
}
