package experiments

import (
	"fmt"
	"io"

	"rocc/internal/adaptive"
	"rocc/internal/consultant"
	"rocc/internal/core"
	"rocc/internal/report"
)

func init() {
	register("ext-adaptive", "Extension (§6): model-seeded feedback regulation of IS overhead", runExtAdaptive)
	register("ext-consultant", "Extension: W3 bottleneck search consuming the forwarded data", runExtConsultant)
	register("ext-tracing", "Extension: event tracing vs periodic sampling IS overhead", runExtTracing)
	register("ext-phases", "Extension: W3 when-axis phase detection on a phased workload", runExtPhases)
	register("ablation-detailed", "Ablation: simplified (Fig 7) vs detailed (Fig 6) process model", runAblationDetailed)
}

// runExtTracing compares periodic sampling against event tracing — the
// two data-collection triggers of the Figure 6 model — quantifying why
// Paradyn's designers chose sampling ("without incurring the space and
// time overheads typically associated with trace-based tools", §2).
func runExtTracing(w io.Writer, opt Options) error {
	opt = opt.normalized()
	t := report.NewTable("Sampling vs event tracing (4-node NOW, CF)",
		"instrumentation", "samples/sec", "Pd CPU util (%)", "main CPU util (%)", "latency (sec)")
	modes := []struct {
		name  string
		sp    float64
		trace bool
	}{
		{"sampling @ 40 ms", 40000, false},
		{"sampling @ 5 ms", 5000, false},
		{"event tracing", 0, true},
	}
	for _, mode := range modes {
		cfg := core.DefaultConfig()
		cfg.Nodes = 4
		cfg.SamplingPeriod = mode.sp
		cfg.EventTrace = mode.trace
		cfg.Seed = opt.Seed
		res, err := runOne(cfg, opt)
		if err != nil {
			return err
		}
		t.AddRow(mode.name,
			report.F(float64(res.SamplesGenerated)/res.DurationSec),
			report.F(res.PdCPUUtilPct), report.F(res.MainCPUUtilPct),
			report.F(res.MonitoringLatencySec))
	}
	return t.Render(w)
}

// runExtPhases demonstrates the when axis of the W3 search: a workload
// that alternates between compute-heavy and communication-heavy phases is
// diagnosed CPU-bound only during its compute phases.
func runExtPhases(w io.Writer, opt Options) error {
	opt = opt.normalized()
	interval := opt.DurationUS / 16
	if interval < 2.5e5 {
		interval = 2.5e5
	}
	cfg := core.DefaultConfig()
	cfg.Nodes = 2
	cfg.Seed = opt.Seed
	cfg.Workload = core.ComputeIntensive.Apply(core.DefaultWorkload())
	alt := core.DefaultWorkload()
	alt.AppNet = alt.AppCPU // communication-dominated phase
	alt.AppCPU = alt.PvmCPU
	cfg.PhasePeriod = 4 * interval
	cfg.PhaseWorkload = &alt

	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	cons, err := consultant.New(consultant.Config{
		Nodes: 2, Window: 2,
		Thresholds: map[consultant.Why]float64{consultant.CPUBound: 0.8},
	})
	if err != nil {
		return err
	}
	m.Start()
	prev := make([]float64, 2)
	for i := 0; i < 16; i++ {
		m.Sim.Run(interval * float64(i+1))
		obs := make([]consultant.Observation, 2)
		for n := 0; n < 2; n++ {
			busy := m.NodeCPUs[n].BusyTotal()
			obs[n] = consultant.Observation{Node: n, CPUUtil: (busy - prev[n]) / interval}
			prev[n] = busy
		}
		cons.Ingest(obs)
	}
	h := consultant.Hypothesis{Why: consultant.CPUBound, Node: consultant.WholeProgram}
	t := report.NewTable("When-axis phases of CPUBound@WholeProgram (phased workload, 16 intervals)",
		"phase", "intervals")
	for i, p := range cons.Phases(h) {
		end := fmt.Sprint(p.End)
		if p.End == -1 {
			end = "open"
		}
		t.AddRow(fmt.Sprintf("phase %d", i+1), fmt.Sprintf("%d .. %s", p.Start, end))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "workload phase flips: %d — the search localizes the bottleneck in time.\n", m.PhaseFlips)
	return err
}

// runAblationDetailed compares the simplified two-state process model the
// paper adopts (§2.3.1, "this simplification facilitates obtaining
// measurements") against the full Figure 6 model with I/O blocking and
// forking, on the IS metrics of interest.
func runAblationDetailed(w io.Writer, opt Options) error {
	opt = opt.normalized()
	t := report.NewTable("Process-model ablation (2-node NOW, 40 ms sampling, CF)",
		"process model", "Pd CPU util (%)", "app CPU util (%)", "latency (sec)", "processes")
	modes := []struct {
		name     string
		detailed core.DetailedModel
	}{
		{"simplified (Figure 7)", core.DetailedModel{}},
		{"detailed: +I/O blocking", core.DetailedModel{IOProb: 0.2}},
		{"detailed: +I/O +forking", core.DetailedModel{IOProb: 0.2, SpawnPeriod: opt.DurationUS / 4, MaxProcsPerNode: 4}},
	}
	for _, mode := range modes {
		cfg := core.DefaultConfig()
		cfg.Nodes = 2
		cfg.Detailed = mode.detailed
		cfg.Seed = opt.Seed
		cfg.Duration = opt.DurationUS
		m, err := core.New(cfg)
		if err != nil {
			return err
		}
		res := m.Run()
		t.AddRow(mode.name, report.F(res.PdCPUUtilPct), report.F(res.AppCPUUtilPct),
			report.F(res.MonitoringLatencySec), fmt.Sprint(len(m.Apps)))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "I/O blocking changes application metrics but not the IS overhead — the\n"+
		"§2.3.1 simplification is justified. Forking raises IS overhead only\n"+
		"because it adds instrumented processes (more samples), not because the\n"+
		"model detail itself matters.")
	return err
}

// runExtAdaptive demonstrates the Discussion-section extension: the IS
// regulates its own sampling period to hold direct overhead at a
// user-specified budget, seeded by the operational model and corrected by
// feedback from the running (simulated) system.
func runExtAdaptive(w io.Writer, opt Options) error {
	opt = opt.normalized()
	simCfg := core.DefaultConfig()
	simCfg.Nodes = 4
	simCfg.Seed = opt.Seed

	interval := opt.DurationUS / 5
	if interval < 5e5 {
		interval = 5e5
	}

	t := report.NewTable("Adaptive overhead regulation (4-node NOW, CF)",
		"overhead budget (%)", "final period (ms)", "final overhead (%)", "converged")
	for _, target := range []float64{0.005, 0.01, 0.02, 0.05} {
		res, err := adaptive.Regulate(simCfg, adaptive.Config{
			TargetOverhead: target,
			MinPeriodUS:    200,
			MaxPeriodUS:    1e6,
			Gain:           0.7,
		}, interval, 10)
		if err != nil {
			return err
		}
		conv := "no"
		if res.Converged {
			conv = "yes"
		}
		t.AddRow(report.F(target*100), report.F(res.FinalPeriodUS/1000),
			report.F(res.FinalOverhead*100), conv)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := io.WriteString(w,
		"Tighter budgets force longer sampling periods; the controller is seeded\n"+
			"by inverting equation (2) and corrected by closed-loop feedback (§6).\n")
	return err
}

// runExtConsultant runs the miniature Performance Consultant (the W3
// search the Paradyn IS exists to feed) against two live simulations with
// known bottlenecks and reports what it diagnoses.
func runExtConsultant(w io.Writer, opt Options) error {
	opt = opt.normalized()
	interval := opt.DurationUS / 8
	if interval < 2.5e5 {
		interval = 2.5e5
	}

	cases := []struct {
		name string
		cfg  func() core.Config
		cons consultant.Config
	}{
		{
			name: "compute-intensive NOW (expected: CPU-bound)",
			cfg: func() core.Config {
				cfg := core.DefaultConfig()
				cfg.Nodes = 4
				cfg.Seed = opt.Seed
				cfg.Workload = core.ComputeIntensive.Apply(core.DefaultWorkload())
				return cfg
			},
			cons: consultant.Config{Window: 3, Thresholds: map[consultant.Why]float64{consultant.CPUBound: 0.8}},
		},
		{
			name: "bus-saturated SMP (expected: communication-bound)",
			cfg: func() core.Config {
				cfg := core.DefaultConfig()
				cfg.Arch = core.SMP
				cfg.Nodes = 32
				cfg.AppProcs = 32
				cfg.Seed = opt.Seed
				cfg.Workload = core.CommIntensive.Apply(core.DefaultWorkload())
				return cfg
			},
			cons: consultant.Config{Nodes: 1, Window: 3},
		},
	}
	for _, c := range cases {
		res, err := consultant.Search(c.cfg(), c.cons, interval, 8)
		if err != nil {
			return err
		}
		t := report.NewTable("W3 search: "+c.name, "finding", "evidence", "interval")
		for _, f := range res.Findings {
			t.AddRow(f.Hypothesis.String(), report.Pct(f.MeanValue*100), fmt.Sprint(f.ConfirmedAt))
		}
		if len(res.Findings) == 0 {
			t.AddRow("(no bottleneck confirmed)", "", "")
		}
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "peak simultaneous hypothesis tests: %d\n", res.PeakActiveTests); err != nil {
			return err
		}
	}
	return nil
}
