package experiments

import (
	"io"

	"rocc/internal/analytic"
	"rocc/internal/report"
	"rocc/internal/scenario"
)

func init() {
	register("fig9", "Analytic: NOW, CF vs BF over number of nodes and sampling period", runFig9)
	register("fig10", "Analytic: NOW, batch-size sweep (8 nodes)", runFig10)
	register("fig12", "Analytic: SMP, multiple daemons over sampling period", runFig12)
	register("fig13", "Analytic: SMP, multiple daemons over number of application processes", runFig13)
	register("fig14", "Analytic: MPP, direct vs tree over sampling period (256 nodes)", runFig14)
	register("fig15", "Analytic: MPP, direct vs tree over number of nodes", runFig15)
}

// analyticMetrics extracts the four panels of the analytic figures.
var analyticMetrics = []struct {
	name string
	get  func(analytic.Metrics) float64
}{
	{"Pd CPU utilization/node (%)", func(m analytic.Metrics) float64 { return m.PdCPUUtil * 100 }},
	{"Paradyn CPU utilization (%)", func(m analytic.Metrics) float64 { return m.ParadynCPUUtil * 100 }},
	{"Appl. CPU utilization/node (%)", func(m analytic.Metrics) float64 { return m.AppCPUUtil * 100 }},
	{"Monitoring latency/sample (sec)", func(m analytic.Metrics) float64 { return m.LatencyUS / 1e6 }},
}

// analyticSweep renders one figure per metric: x-axis values, one series
// per named variant.
func analyticSweep(w io.Writer, opt Options, title, xlabel string, xs []float64,
	variants []struct {
		name string
		at   func(x float64) analytic.Metrics
	}) error {
	for _, metric := range analyticMetrics {
		fig := report.NewFigure(title, xlabel, metric.name, xs)
		for _, v := range variants {
			ys := make([]float64, len(xs))
			for i, x := range xs {
				ys[i] = metric.get(v.at(x))
			}
			if err := fig.Add(v.name, ys); err != nil {
				return err
			}
		}
		if err := renderFigure(w, opt, fig); err != nil {
			return err
		}
	}
	return nil
}

type analyticVariant = struct {
	name string
	at   func(x float64) analytic.Metrics
}

func runFig9(w io.Writer, opt Options) error {
	opt = opt.normalized()
	// (a) vary nodes at 40 ms sampling.
	nodes := scenario.AnalyticNodeAxis()
	mkNodes := func(batch float64) func(float64) analytic.Metrics {
		return func(n float64) analytic.Metrics {
			p := analytic.DefaultParams()
			p.Nodes = n
			p.BatchSize = batch
			return p.NOW()
		}
	}
	if err := analyticSweep(w, opt, "Figure 9(a): sampling period = 40 ms", "nodes", nodes,
		[]analyticVariant{
			{"CF", mkNodes(1)},
			{"BF(32)", mkNodes(32)},
		}); err != nil {
		return err
	}
	// (b) vary sampling period at 8 nodes.
	sps := scenario.SamplingPeriodAxisMS() // msec
	mkSP := func(batch float64) func(float64) analytic.Metrics {
		return func(sp float64) analytic.Metrics {
			p := analytic.DefaultParams()
			p.SamplingPeriod = sp * 1000
			p.BatchSize = batch
			return p.NOW()
		}
	}
	return analyticSweep(w, opt, "Figure 9(b): number of nodes = 8", "sampling_period_ms", sps,
		[]analyticVariant{
			{"CF", mkSP(1)},
			{"BF(32)", mkSP(32)},
		})
}

func runFig10(w io.Writer, opt Options) error {
	opt = opt.normalized()
	batches := scenario.BatchAxis()
	mk := func(spMS float64) func(float64) analytic.Metrics {
		return func(b float64) analytic.Metrics {
			p := analytic.DefaultParams()
			p.SamplingPeriod = spMS * 1000
			p.BatchSize = b
			return p.NOW()
		}
	}
	return analyticSweep(w, opt, "Figure 10: batch-size sweep (8 nodes)", "batch_size", batches,
		[]analyticVariant{
			{"SP=1ms", mk(1)},
			{"SP=40ms", mk(40)},
			{"SP=64ms", mk(64)},
		})
}

func smpVariants(batch float64, apply func(p *analytic.Params, x float64)) []analyticVariant {
	out := make([]analyticVariant, 0, 4)
	for pds := 1; pds <= 4; pds++ {
		pds := pds
		out = append(out, analyticVariant{
			name: smpName(pds),
			at: func(x float64) analytic.Metrics {
				p := analytic.DefaultParams()
				p.Nodes = 16
				p.AppProcs = 32
				p.Pds = float64(pds)
				p.BatchSize = batch
				apply(&p, x)
				return p.SMP()
			},
		})
	}
	return out
}

func smpName(pds int) string {
	if pds == 1 {
		return "1 Pd"
	}
	return string(rune('0'+pds)) + " Pds"
}

func runFig12(w io.Writer, opt Options) error {
	opt = opt.normalized()
	sps := scenario.SMPSamplingPeriodAxisMS()
	bySP := func(p *analytic.Params, sp float64) { p.SamplingPeriod = sp * 1000 }
	if err := analyticSweep(w, opt, "Figure 12(a): SMP, CF policy", "sampling_period_ms", sps,
		smpVariants(1, bySP)); err != nil {
		return err
	}
	return analyticSweep(w, opt, "Figure 12(b): SMP, BF policy (batch 32)", "sampling_period_ms", sps,
		smpVariants(32, bySP))
}

func runFig13(w io.Writer, opt Options) error {
	opt = opt.normalized()
	procs := []float64{1, 2, 3, 4, 5, 6}
	byProcs := func(p *analytic.Params, n float64) { p.AppProcs = n }
	if err := analyticSweep(w, opt, "Figure 13(a): SMP, CF policy (SP = 40 ms)", "app_processes", procs,
		smpVariants(1, byProcs)); err != nil {
		return err
	}
	return analyticSweep(w, opt, "Figure 13(b): SMP, BF policy (SP = 40 ms, batch 32)", "app_processes", procs,
		smpVariants(32, byProcs))
}

func runFig14(w io.Writer, opt Options) error {
	opt = opt.normalized()
	sps := scenario.SamplingPeriodAxisMS()
	mk := func(tree bool) func(float64) analytic.Metrics {
		return func(sp float64) analytic.Metrics {
			p := analytic.DefaultParams()
			p.Nodes = 256
			p.BatchSize = 32
			p.SamplingPeriod = sp * 1000
			if tree {
				return p.MPPTree()
			}
			return p.MPPDirect()
		}
	}
	return analyticSweep(w, opt, "Figure 14: MPP (256 nodes, BF)", "sampling_period_ms", sps,
		[]analyticVariant{
			{"direct", mk(false)},
			{"tree", mk(true)},
		})
}

func runFig15(w io.Writer, opt Options) error {
	opt = opt.normalized()
	nodes := scenario.MPPNodeAxis()
	mk := func(tree bool) func(float64) analytic.Metrics {
		return func(n float64) analytic.Metrics {
			p := analytic.DefaultParams()
			p.Nodes = n
			p.BatchSize = 32
			if tree {
				return p.MPPTree()
			}
			return p.MPPDirect()
		}
	}
	return analyticSweep(w, opt, "Figure 15: MPP (SP = 40 ms, BF)", "nodes", nodes,
		[]analyticVariant{
			{"direct", mk(false)},
			{"tree", mk(true)},
		})
}
