package experiments

import (
	"io"

	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/report"
	"rocc/internal/scenario"
)

func init() {
	register("table5", "SMP: 2^4·r factorial simulation results", runTable5)
	register("fig20", "SMP: allocation of variation", runFig20)
	register("fig21", "SMP: daemon throughput vs CPUs, 1-4 daemons, CF vs BF", runFig21)
	register("fig22", "SMP: four metrics over number of nodes, 1-4 daemons", runFig22)
	register("fig23", "SMP: four metrics over sampling period, 1-4 daemons", runFig23)
	register("fig24", "SMP: four metrics over number of application processes, 1-4 daemons", runFig24)
}

// smpFactorialRows materializes the Table 5 design from the shared
// scenario grid (A = nodes = app processes, B = sampling period,
// C = policy, D = app type).
func smpFactorialRows() ([]string, []factorialRow, error) {
	g := scenario.Table5Grid()
	rows, err := gridRows(g)
	return g.Factors, rows, err
}

func runTable5(w io.Writer, opt Options) error {
	opt = opt.normalized()
	_, rows, err := smpFactorialRows()
	if err != nil {
		return err
	}
	ov, lat, err := runFactorial(rows, opt, core.MetricPdCPUTime, core.MetricLatency)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 5: SMP simulation results (number of app processes = number of nodes)",
		"configuration", "IS CPU time/node (sec)", "±", "latency/sample (msec)", "±")
	for i, row := range rows {
		ovCI := ciOf(ov[i])
		latCI := ciOf(lat[i])
		t.AddRow(row.label,
			report.F(ovCI.Mean), report.F(ovCI.HalfWidth),
			report.F(latCI.Mean*1000), report.F(latCI.HalfWidth*1000))
	}
	return t.Render(w)
}

func runFig20(w io.Writer, opt Options) error {
	opt = opt.normalized()
	factors, rows, err := smpFactorialRows()
	if err != nil {
		return err
	}
	ov, lat, err := runFactorial(rows, opt, core.MetricPdCPUTime, core.MetricLatency)
	if err != nil {
		return err
	}
	return renderAllocation(w, "Figure 20 (SMP)", factors, "IS CPU time", ov, lat)
}

func runFig21(w io.Writer, opt Options) error {
	opt = opt.normalized()
	cpus := []float64{1, 2, 4, 8, 12, 16}
	variants := func(policy forward.Policy, batch int) []simVariant {
		var out []simVariant
		for pds := 1; pds <= 4; pds++ {
			pds := pds
			out = append(out, simVariant{
				name: smpName(pds),
				cfg: func(x float64) core.Config {
					cfg := core.DefaultConfig()
					cfg.Arch = core.SMP
					cfg.Nodes = int(x)
					cfg.AppProcs = int(x)
					if pds > cfg.AppProcs {
						// Cannot have more daemons than pipes; clamp like
						// the paper's setup (extra daemons would idle).
						cfg.Pds = cfg.AppProcs
					} else {
						cfg.Pds = pds
					}
					cfg.Policy = policy
					cfg.BatchSize = batch
					cfg.SamplingPeriod = 40000
					return cfg
				},
			})
		}
		return out
	}
	panels := []struct {
		title string
		vs    []simVariant
	}{
		{"Figure 21(a): CF policy (SP = 40 ms)", variants(forward.CF, 1)},
		{"Figure 21(b): BF policy (batch = 32)", variants(forward.BF, 32)},
	}
	for _, p := range panels {
		results, err := runGrid(opt, cpus, p.vs)
		if err != nil {
			return err
		}
		fig := report.NewFigure(p.title, "cpus", "Throughput_pd (samples/sec)", cpus)
		for vi, v := range p.vs {
			ys := make([]float64, len(cpus))
			for xi := range cpus {
				ys[xi] = results[vi][xi].PdThroughputPerSec
			}
			if err := fig.Add(v.name, ys); err != nil {
				return err
			}
		}
		if err := renderFigure(w, opt, fig); err != nil {
			return err
		}
	}
	return nil
}

// smpSimVariants builds the 1-4 daemon series plus an uninstrumented
// baseline for one SMP panel.
func smpSimVariants(policy forward.Policy, batch int, modify func(cfg *core.Config, x float64)) []simVariant {
	var out []simVariant
	for pds := 1; pds <= 4; pds++ {
		pds := pds
		out = append(out, simVariant{
			name: smpName(pds),
			cfg: func(x float64) core.Config {
				cfg := core.DefaultConfig()
				cfg.Arch = core.SMP
				cfg.Nodes = 16
				cfg.AppProcs = 32
				cfg.Pds = pds
				cfg.Policy = policy
				cfg.BatchSize = batch
				cfg.SamplingPeriod = 40000
				modify(&cfg, x)
				return cfg
			},
		})
	}
	out = append(out, simVariant{
		name: "uninstrumented",
		cfg: func(x float64) core.Config {
			cfg := core.DefaultConfig()
			cfg.Arch = core.SMP
			cfg.Nodes = 16
			cfg.AppProcs = 32
			cfg.SamplingPeriod = 40000
			modify(&cfg, x)
			cfg.SamplingPeriod = 0
			return cfg
		},
	})
	return out
}

// smpPanelPair renders the CF and BF versions of one SMP figure.
func smpPanelPair(w io.Writer, opt Options, figName, xlabel string, xs []float64,
	modify func(cfg *core.Config, x float64)) error {
	if err := simSweep(w, opt, figName+"(a): CF policy", xlabel, xs,
		smpSimVariants(forward.CF, 1, modify)); err != nil {
		return err
	}
	return simSweep(w, opt, figName+"(b): BF policy (batch 32)", xlabel, xs,
		smpSimVariants(forward.BF, 32, modify))
}

func runFig22(w io.Writer, opt Options) error {
	opt = opt.normalized()
	return smpPanelPair(w, opt, "Figure 22", "nodes",
		scenario.NodeAxis(),
		func(cfg *core.Config, x float64) { cfg.Nodes = int(x) })
}

func runFig23(w io.Writer, opt Options) error {
	opt = opt.normalized()
	return smpPanelPair(w, opt, "Figure 23", "sampling_period_ms",
		scenario.SMPSamplingPeriodAxisMS(),
		func(cfg *core.Config, x float64) {
			if cfg.SamplingPeriod > 0 {
				cfg.SamplingPeriod = x * 1000
			}
		})
}

func runFig24(w io.Writer, opt Options) error {
	opt = opt.normalized()
	return smpPanelPair(w, opt, "Figure 24", "app_processes",
		[]float64{4, 8, 16, 32, 64},
		func(cfg *core.Config, x float64) { cfg.AppProcs = int(x) })
}
