package experiments

import (
	"context"
	"fmt"
	"io"
	"os"

	"rocc/internal/core"
	"rocc/internal/dist"
	"rocc/internal/doe"
	"rocc/internal/par"
	"rocc/internal/report"
	"rocc/internal/scenario"
)

// distRunners builds the worker fleet for Options.DistWorkers — local
// subprocesses re-executing the current binary with -worker. A variable
// so tests (whose binary is the test runner, not a worker) substitute
// in-process runners.
var distRunners = func(n int) []dist.Runner { return dist.LocalRunners(n) }

// simMetrics are the four panels of the simulation figures (18, 19, 22-24,
// 26-28).
var simMetrics = []struct {
	name string
	get  core.Metric
}{
	{"Pd CPU utilization/node (%)", core.MetricPdCPUUtil},
	{"Paradyn CPU utilization (%)", core.MetricMainCPUUtil},
	{"Appl. CPU utilization/node (%)", core.MetricAppCPUUtil},
	{"Monitoring latency/samp. (sec)", core.MetricLatency},
}

// simVariant is one line of a simulation figure.
type simVariant struct {
	name string
	cfg  func(x float64) core.Config
}

// runOne runs a single replication of cfg at the option scale.
func runOne(cfg core.Config, opt Options) (core.Result, error) {
	cfg.Duration = opt.DurationUS
	cfg.Calendar = opt.Calendar
	if cfg.Seed == 0 {
		cfg.Seed = opt.Seed
	}
	m, err := core.New(cfg)
	if err != nil {
		return core.Result{}, err
	}
	return m.Run(), nil
}

// runGrid executes the variants × xs simulation grid, fanning the
// share-nothing runs across opt.Parallel workers, and returns the results
// indexed [variant][x]. Collection order is fixed by the grid, not by
// completion, so the grid is deterministic at any pool size.
func runGrid(opt Options, xs []float64, variants []simVariant) ([][]core.Result, error) {
	type point struct{ vi, xi int }
	grid := make([]point, 0, len(variants)*len(xs))
	for vi := range variants {
		for xi := range xs {
			grid = append(grid, point{vi, xi})
		}
	}
	flat, err := par.Map(opt.Parallel, grid, func(_ int, p point) (core.Result, error) {
		res, err := runOne(variants[p.vi].cfg(xs[p.xi]), opt)
		if err != nil {
			return core.Result{}, fmt.Errorf("%s @ %v: %w", variants[p.vi].name, xs[p.xi], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	results := make([][]core.Result, len(variants))
	for vi := range variants {
		results[vi] = flat[vi*len(xs) : (vi+1)*len(xs)]
	}
	return results, nil
}

// simSweep renders one figure per metric across the x values and variants
// (single replication per point; the factorial tables carry the
// replicated, CI-bearing runs).
func simSweep(w io.Writer, opt Options, title, xlabel string, xs []float64, variants []simVariant) error {
	// Cache runs: every metric reuses the same simulations.
	results, err := runGrid(opt, xs, variants)
	if err != nil {
		return err
	}
	for _, metric := range simMetrics {
		fig := report.NewFigure(title, xlabel, metric.name, xs)
		for vi, v := range variants {
			ys := make([]float64, len(xs))
			for xi := range xs {
				ys[xi] = metric.get(results[vi][xi])
			}
			if err := fig.Add(v.name, ys); err != nil {
				return err
			}
		}
		if err := renderFigure(w, opt, fig); err != nil {
			return err
		}
	}
	return nil
}

// factorialRow is one run of a 2^k design.
type factorialRow struct {
	label string
	cfg   core.Config
}

// gridRows materializes a scenario grid's cells as factorial rows, in
// grid order (which fixes the SeedStreamFactorial row indices).
func gridRows(g scenario.Grid) ([]factorialRow, error) {
	rows := make([]factorialRow, 0, len(g.Cells))
	for _, cell := range g.Cells {
		cfg, err := cell.Spec.Config()
		if err != nil {
			return nil, fmt.Errorf("grid %s cell %s: %w", g.Name, cell.ID, err)
		}
		rows = append(rows, factorialRow{label: cell.Label, cfg: cfg})
	}
	return rows, nil
}

// runFactorial executes the 2^k·r design and returns, per row, the
// replicate values of the two reported metrics (direct overhead and
// monitoring latency), in the standard order expected by doe.Analyze2KR.
//
// The rows × reps grid is flattened into one work list so all runs fan
// out together across opt.Parallel workers. Seeds chain through
// core.DeriveSeed exactly as the per-row RunReplications path would
// derive them (row seed from SeedStreamFactorial, replication seeds from
// the row seed), so the flattened fan-out reproduces that path's results
// bit for bit.
func runFactorial(rows []factorialRow, opt Options, overhead, latency core.Metric) (ov, lat [][]float64, err error) {
	reps := opt.Reps
	if reps < 1 {
		reps = 1
	}
	type job struct {
		row int
		cfg core.Config
	}
	jobs := make([]job, 0, len(rows)*reps)
	for i, row := range rows {
		cfg := row.cfg
		cfg.Duration = opt.DurationUS
		cfg.Calendar = opt.Calendar
		for _, seed := range core.FactorialReplicationSeeds(opt.Seed, i, reps) {
			c := cfg
			c.Seed = seed
			jobs = append(jobs, job{row: i, cfg: c})
		}
	}
	var flat []core.Result
	if opt.DistWorkers > 0 {
		djobs := make([]dist.Job, len(jobs))
		for k, j := range jobs {
			djobs[k] = dist.Job{Spec: scenario.FromConfig(j.cfg), Seed: j.cfg.Seed}
		}
		dopt := dist.Options{
			Runners:       distRunners(opt.DistWorkers),
			LocalParallel: opt.Parallel,
			Log:           os.Stderr,
			Monitor:       opt.Monitor,
			Trace:         opt.Trace,
		}
		if opt.SweepMetrics != nil {
			dopt.Metrics = opt.SweepMetrics
		}
		flat, err = dist.Run(context.Background(), djobs, dopt)
	} else {
		flat, err = par.Map(opt.Parallel, jobs, func(_ int, j job) (core.Result, error) {
			m, err := core.New(j.cfg)
			if err != nil {
				return core.Result{}, fmt.Errorf("row %s: %w", rows[j.row].label, err)
			}
			return m.Run(), nil
		})
	}
	if err != nil {
		return nil, nil, err
	}
	ov = make([][]float64, len(rows))
	lat = make([][]float64, len(rows))
	for k, j := range jobs {
		ov[j.row] = append(ov[j.row], overhead(flat[k]))
		lat[j.row] = append(lat[j.row], latency(flat[k]))
	}
	return ov, lat, nil
}

// renderAllocation prints the allocation-of-variation chart data (the
// pie-chart percentages of Figures 16, 20, and 25).
func renderAllocation(w io.Writer, title string, factorNames []string, overheadName string,
	ov, lat [][]float64) error {
	for _, part := range []struct {
		metric string
		data   [][]float64
	}{
		{"monitoring latency", lat},
		{overheadName, ov},
	} {
		an, err := doe.Analyze2KR(factorNames, part.data)
		if err != nil {
			return err
		}
		t := report.NewTable(fmt.Sprintf("%s — variation explained for %s", title, part.metric),
			"term", "fraction")
		for _, e := range an.TopEffects(6) {
			t.AddRow(e.Term, report.Pct(e.Fraction*100))
		}
		t.AddRow("error/rest", report.Pct(an.ErrorFraction*100))
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "factors: %s\n", factorLegend(factorNames)); err != nil {
			return err
		}
	}
	return nil
}

func factorLegend(names []string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%c=%s", 'A'+i, n)
	}
	return s
}
