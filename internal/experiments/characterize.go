package experiments

import (
	"fmt"
	"io"

	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/report"
	"rocc/internal/stats"
	"rocc/internal/trace"
	"rocc/internal/workload"
)

func init() {
	register("table1", "Summary statistics of pvmbt trace on an SP-2 (CPU/network occupancy by process type)", runTable1)
	register("fig8", "Histograms, fitted pdfs, and Q-Q plots of application CPU and network requests", runFig8)
	register("table2", "ROCC model parameters fitted from the trace", runTable2)
	register("table3", "Validation: measured vs simulated CPU time (NAS pvmbt, one node)", runTable3)
}

// characterizedTrace generates the synthetic AIX trace and characterizes
// it; shared by the Table 1/2, Figure 8, and Table 3 experiments.
func characterizedTrace(opt Options) (*workload.Characterization, []trace.Record, error) {
	recs, err := trace.Generate(trace.GenConfig{
		Seed:             opt.Seed,
		DurationUS:       opt.DurationUS * 10, // characterization wants many requests
		SamplingPeriodUS: 40000,
		IncludeMainTrace: true,
	})
	if err != nil {
		return nil, nil, err
	}
	c, err := workload.Characterize(recs)
	if err != nil {
		return nil, nil, err
	}
	return c, recs, nil
}

func runTable1(w io.Writer, opt Options) error {
	opt = opt.normalized()
	c, _, err := characterizedTrace(opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 1: occupancy statistics (microseconds)",
		"process", "resource", "n", "mean", "sd", "min", "max")
	for _, class := range c.Classes() {
		for _, res := range []trace.Resource{trace.CPU, trace.Network} {
			s, ok := c.Stats[workload.ClassResource{Class: class, Resource: res}]
			if !ok {
				continue
			}
			t.AddRow(class, res.String(), fmt.Sprint(s.N),
				report.F(s.Mean), report.F(s.SD), report.F(s.Min), report.F(s.Max))
		}
	}
	return t.Render(w)
}

func runFig8(w io.Writer, opt Options) error {
	opt = opt.normalized()
	c, _, err := characterizedTrace(opt)
	if err != nil {
		return err
	}
	parts := []struct {
		label string
		key   workload.ClassResource
	}{
		{"(a) CPU occupancy requests", workload.ClassResource{Class: trace.ProcApplication, Resource: trace.CPU}},
		{"(b) network occupancy requests", workload.ClassResource{Class: trace.ProcApplication, Resource: trace.Network}},
	}
	for _, part := range parts {
		xs := c.Samples[part.key]
		fit := c.Fits[part.key]
		// Histogram limited to the bulk of the data, as in the figure.
		q95, err := stats.Quantile(xs, 0.95)
		if err != nil {
			return err
		}
		hist, err := stats.NewHistogram(xs, 0, q95, 16)
		if err != nil {
			return err
		}
		centers := hist.BinCenters()
		fig := report.NewFigure("Figure 8"+part.label, "length_us", "relative frequency / density", centers)
		if err := fig.Add("observed", hist.RelativeFrequencies()); err != nil {
			return err
		}
		for _, cand := range fit.Candidates {
			ys := make([]float64, len(centers))
			for i, x := range centers {
				ys[i] = cand.Dist.PDF(x)
			}
			if err := fig.Add(cand.Dist.Name()+"_pdf", ys); err != nil {
				return err
			}
		}
		if err := renderFigure(w, opt, fig); err != nil {
			return err
		}
		// Q-Q plot of the best-fitting distribution, subsampled.
		qq, err := stats.QQSeries(xs, fit.Best.Dist.InvCDF)
		if err != nil {
			return err
		}
		const points = 20
		xsQ := make([]float64, 0, points)
		obs := make([]float64, 0, points)
		for i := 0; i < points; i++ {
			idx := i * (len(qq) - 1) / (points - 1)
			xsQ = append(xsQ, qq[idx].Theoretical)
			obs = append(obs, qq[idx].Observed)
		}
		qfig := report.NewFigure(
			fmt.Sprintf("Figure 8%s Q-Q vs %s (r=%.4f)", part.label, fit.Best.Dist.Name(), fit.Best.QQvsR),
			fit.Best.Dist.Name()+"_quantile", "observed quantile", xsQ)
		if err := qfig.Add("observed", obs); err != nil {
			return err
		}
		if err := qfig.Add("ideal", xsQ); err != nil {
			return err
		}
		if err := renderFigure(w, opt, qfig); err != nil {
			return err
		}
	}
	return nil
}

func runTable2(w io.Writer, opt Options) error {
	opt = opt.normalized()
	c, _, err := characterizedTrace(opt)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 2: fitted ROCC model parameters",
		"parameter", "fitted distribution", "KS stat")
	name := map[string]string{
		trace.ProcApplication: "Application process",
		trace.ProcPd:          "Paradyn daemon",
		trace.ProcPvmd:        "PVM daemon",
		trace.ProcOther:       "Other processes",
		trace.ProcParadyn:     "Main Paradyn process",
	}
	for _, class := range c.Classes() {
		for _, res := range []trace.Resource{trace.CPU, trace.Network} {
			key := workload.ClassResource{Class: class, Resource: res}
			fit, ok := c.Fits[key]
			if !ok {
				continue
			}
			t.AddRow(fmt.Sprintf("%s: length of %s request", name[class], res),
				fit.Best.Dist.String(), report.F(fit.Best.KS))
		}
	}
	for _, ia := range []struct {
		key string
		m   float64
	}{
		{"Paradyn daemon: inter-arrival (sampling period)", c.SamplingPeriod()},
		{"PVM daemon: inter-arrival", c.Interarrival[workload.ClassResource{Class: trace.ProcPvmd, Resource: trace.CPU}]},
		{"Other: inter-arrival of CPU requests", c.Interarrival[workload.ClassResource{Class: trace.ProcOther, Resource: trace.CPU}]},
		{"Other: inter-arrival of network requests", c.Interarrival[workload.ClassResource{Class: trace.ProcOther, Resource: trace.Network}]},
	} {
		t.AddRow(ia.key, fmt.Sprintf("exponential(%s)", report.F(ia.m)), "")
	}
	return t.Render(w)
}

func runTable3(w io.Writer, opt Options) error {
	opt = opt.normalized()
	// "Measurement": the synthetic AIX trace of one instrumented node
	// (standing in for the SP-2 measurement, see DESIGN.md).
	dur := opt.DurationUS * 10
	recs, err := trace.Generate(trace.GenConfig{
		Seed: opt.Seed, DurationUS: dur, SamplingPeriodUS: 40000,
	})
	if err != nil {
		return err
	}
	c, err := workload.Characterize(recs)
	if err != nil {
		return err
	}

	// Simulation of the same case: one node, one app process, CF, 40 ms.
	cfg := core.DefaultConfig()
	cfg.Nodes = 1
	cfg.SamplingPeriod = 40000
	cfg.Policy = forward.CF
	cfg.Duration = dur
	cfg.Seed = opt.Seed
	m, err := core.New(cfg)
	if err != nil {
		return err
	}
	res := m.Run()

	t := report.NewTable(
		fmt.Sprintf("Table 3: measured vs simulated CPU time over %.0f s", dur/1e6),
		"type of experiment", "application CPU time (sec)", "Pd CPU time (sec)")
	t.AddRow("Measurement based (trace)",
		report.F(c.CPUSeconds(trace.ProcApplication)), report.F(c.CPUSeconds(trace.ProcPd)))
	t.AddRow("Simulation model based",
		report.F(res.AppCPUTimePerNodeSec), report.F(res.PdCPUTimePerNodeSec))
	return t.Render(w)
}

// renderFigure renders per the CSV/Plot options.
func renderFigure(w io.Writer, opt Options, f *report.Figure) error {
	if opt.CSV {
		if _, err := fmt.Fprintf(w, "# %s\n", f.Title); err != nil {
			return err
		}
		if err := f.RenderCSV(w); err != nil {
			return err
		}
	} else if err := f.Render(w); err != nil {
		return err
	}
	if opt.Plot {
		return f.Plot(w, report.PlotOptions{})
	}
	return nil
}
