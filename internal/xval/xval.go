// Package xval cross-validates the repo's three evaluation routes — the
// closed-form operational analysis of Section 3 (equations (1)-(16)), the
// discrete-event ROCC simulation of Section 4, and the values published in
// the paper — over a shared scenario grid, and renders the disagreement as
// an error surface: per-metric relative error, CI coverage (does the
// analytic prediction fall inside the simulation confidence interval?),
// and worst-case divergence per architecture/policy cell. This turns the
// paper's Section 4 validation argument into a single regenerable,
// CI-gated artifact.
//
// Every backend is accessed only through the Evaluator interface, so
// future routes (the measured testbed, MVA bounds) drop in without
// touching the dashboard.
package xval

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"rocc/internal/analytic"
	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/par"
	"rocc/internal/scenario"
	"rocc/internal/stats"
)

// usPerSec is the single, explicit latency unit conversion: core.Result
// reports latencies in seconds, analytic.Metrics in microseconds, and the
// paper's figures in milliseconds-to-seconds depending on the panel.
// Estimates normalizes everything to microseconds.
const usPerSec = 1e6

// OptFloat is a float64 metric value that may be missing (NaN: the
// backend does not report this metric) or diverged (±Inf: the analytic
// queue is at or beyond saturation). It marshals missing values as JSON
// null and infinities as the strings "+inf"/"-inf", since JSON numbers
// cannot encode either.
type OptFloat float64

// Missing returns the missing-value marker.
func Missing() OptFloat { return OptFloat(math.NaN()) }

// IsMissing reports whether the value is absent.
func (o OptFloat) IsMissing() bool { return math.IsNaN(float64(o)) }

// Finite reports whether the value is present and finite.
func (o OptFloat) Finite() bool {
	f := float64(o)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// V returns the raw float64 (NaN when missing).
func (o OptFloat) V() float64 { return float64(o) }

// MarshalJSON implements json.Marshaler.
func (o OptFloat) MarshalJSON() ([]byte, error) {
	f := float64(o)
	switch {
	case math.IsNaN(f):
		return []byte("null"), nil
	case math.IsInf(f, 1):
		return []byte(`"+inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-inf"`), nil
	}
	return json.Marshal(f)
}

// UnmarshalJSON implements json.Unmarshaler, accepting the MarshalJSON
// encodings.
func (o *OptFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case "null":
		*o = Missing()
		return nil
	case `"+inf"`:
		*o = OptFloat(math.Inf(1))
		return nil
	case `"-inf"`:
		*o = OptFloat(math.Inf(-1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*o = OptFloat(f)
	return nil
}

// Estimates is the common output schema every evaluation backend maps
// onto: per-class CPU and network utilizations as percentages, sample
// latencies in microseconds. Metrics a backend cannot produce are Missing.
// The HW fields are confidence-interval half-widths (simulation only;
// closed forms and published point values carry no interval).
type Estimates struct {
	PdCPUUtilPct   OptFloat `json:"pd_cpu_util_pct"`   // daemon CPU / node
	MainCPUUtilPct OptFloat `json:"main_cpu_util_pct"` // main Paradyn process CPU
	AppCPUUtilPct  OptFloat `json:"app_cpu_util_pct"`  // application CPU / node
	PdNetUtilPct   OptFloat `json:"pd_net_util_pct"`   // IS network traffic
	LatencyMeanUS  OptFloat `json:"latency_mean_us"`   // monitoring latency / sample
	LatencyP50US   OptFloat `json:"latency_p50_us"`
	LatencyP99US   OptFloat `json:"latency_p99_us"`

	PdCPUUtilHW   OptFloat `json:"pd_cpu_util_hw"`
	MainCPUUtilHW OptFloat `json:"main_cpu_util_hw"`
	AppCPUUtilHW  OptFloat `json:"app_cpu_util_hw"`
	PdNetUtilHW   OptFloat `json:"pd_net_util_hw"`
	LatencyMeanHW OptFloat `json:"latency_mean_hw"`
}

// emptyEstimates returns an Estimates with every field Missing.
func emptyEstimates() Estimates {
	m := Missing()
	return Estimates{
		PdCPUUtilPct: m, MainCPUUtilPct: m, AppCPUUtilPct: m, PdNetUtilPct: m,
		LatencyMeanUS: m, LatencyP50US: m, LatencyP99US: m,
		PdCPUUtilHW: m, MainCPUUtilHW: m, AppCPUUtilHW: m, PdNetUtilHW: m,
		LatencyMeanHW: m,
	}
}

// MetricNames enumerates the cross-validated metrics in render order.
// (P50/P99 latency appear in Estimates but are not compared: only the
// simulation backend can produce them.)
var MetricNames = []string{
	"pd_cpu_util_pct",
	"main_cpu_util_pct",
	"app_cpu_util_pct",
	"pd_net_util_pct",
	"latency_mean_us",
}

// Metric returns the named metric value (Missing for unknown names).
func (e Estimates) Metric(name string) OptFloat {
	switch name {
	case "pd_cpu_util_pct":
		return e.PdCPUUtilPct
	case "main_cpu_util_pct":
		return e.MainCPUUtilPct
	case "app_cpu_util_pct":
		return e.AppCPUUtilPct
	case "pd_net_util_pct":
		return e.PdNetUtilPct
	case "latency_mean_us":
		return e.LatencyMeanUS
	case "latency_p50_us":
		return e.LatencyP50US
	case "latency_p99_us":
		return e.LatencyP99US
	}
	return Missing()
}

// HalfWidth returns the named metric's CI half-width (Missing when the
// backend carries no interval).
func (e Estimates) HalfWidth(name string) OptFloat {
	switch name {
	case "pd_cpu_util_pct":
		return e.PdCPUUtilHW
	case "main_cpu_util_pct":
		return e.MainCPUUtilHW
	case "app_cpu_util_pct":
		return e.AppCPUUtilHW
	case "pd_net_util_pct":
		return e.PdNetUtilHW
	case "latency_mean_us":
		return e.LatencyMeanHW
	}
	return Missing()
}

// Evaluator is one evaluation backend: it maps a scenario to metric
// estimates. Implementations must be deterministic for a fixed scenario
// (including its Seed) — the dashboard's byte-identical-output contract
// rests on it.
type Evaluator interface {
	Name() string
	Evaluate(scenario.Spec) (Estimates, error)
}

// ErrNoData reports that a backend has no value for an operating point
// (the paper tabulates only some cells). The dashboard records the cell
// as missing rather than failing the run.
var ErrNoData = errors.New("xval: no data for operating point")

// SimEvaluator runs the discrete-event ROCC simulation: Reps independent
// replications (seeds derived from the scenario's Seed exactly as
// core.RunReplications derives them), observability metrics enabled so
// the latency histogram yields p50/p99, and Student-t confidence
// intervals at CILevel across replications.
type SimEvaluator struct {
	// Reps is the replication count (default 1; CIs need >= 2).
	Reps int
	// DurationUS, when positive, overrides the scenario's duration.
	DurationUS float64
	// Workers sizes the replication worker pool: 0 = one per core,
	// 1 = serial. The cross-validation runner fans grid cells out itself
	// and passes 1 here to keep the pools from nesting.
	Workers int
	// CILevel is the confidence level (default 0.90, the paper's choice).
	CILevel float64
}

// Name implements Evaluator.
func (e SimEvaluator) Name() string { return "simulation" }

// Evaluate implements Evaluator.
func (e SimEvaluator) Evaluate(sp scenario.Spec) (Estimates, error) {
	cfg, err := sp.Config()
	if err != nil {
		return Estimates{}, err
	}
	if e.DurationUS > 0 {
		cfg.Duration = e.DurationUS
	}
	reps := e.Reps
	if reps < 1 {
		reps = 1
	}
	level := e.CILevel
	if level <= 0 || level >= 1 {
		level = 0.90
	}
	seeds := core.ReplicationSeeds(cfg.Seed, reps)
	results, err := par.Map(e.Workers, seeds, func(_ int, seed uint64) (core.Result, error) {
		c := cfg
		c.Seed = seed
		m, err := core.New(c)
		if err != nil {
			return core.Result{}, err
		}
		if _, err := m.EnableObservability(core.ObsOptions{Metrics: true}); err != nil {
			return core.Result{}, err
		}
		return m.Run(), nil
	})
	if err != nil {
		return Estimates{}, err
	}
	return estimatesFromResults(results, level), nil
}

// estimatesFromResults aggregates replication Results into Estimates,
// converting core.Result's seconds to microseconds and computing mean and
// CI half-width per metric. With fewer than two replications the
// half-widths are Missing.
func estimatesFromResults(results []core.Result, level float64) Estimates {
	est := emptyEstimates()
	agg := func(f func(core.Result) float64) (OptFloat, OptFloat) {
		if len(results) == 0 {
			return Missing(), Missing()
		}
		vals := make([]float64, len(results))
		for i, r := range results {
			vals[i] = f(r)
		}
		if len(vals) < 2 {
			return OptFloat(vals[0]), Missing()
		}
		ci, err := stats.MeanCI(vals, level)
		if err != nil {
			return OptFloat(stats.MeanOf(vals)), Missing()
		}
		return OptFloat(ci.Mean), OptFloat(ci.HalfWidth)
	}
	est.PdCPUUtilPct, est.PdCPUUtilHW = agg(func(r core.Result) float64 { return r.PdCPUUtilPct })
	est.MainCPUUtilPct, est.MainCPUUtilHW = agg(func(r core.Result) float64 { return r.MainCPUUtilPct })
	est.AppCPUUtilPct, est.AppCPUUtilHW = agg(func(r core.Result) float64 { return r.AppCPUUtilPct })
	est.PdNetUtilPct, est.PdNetUtilHW = agg(func(r core.Result) float64 { return r.PdNetUtilPct })
	est.LatencyMeanUS, est.LatencyMeanHW = agg(func(r core.Result) float64 { return r.MonitoringLatencySec * usPerSec })
	est.LatencyP50US, _ = agg(func(r core.Result) float64 { return r.MonitoringLatencyP50Sec * usPerSec })
	est.LatencyP99US, _ = agg(func(r core.Result) float64 { return r.MonitoringLatencyP99Sec * usPerSec })
	return est
}

// AnalyticEvaluator evaluates the Section 3 operational-analysis
// equations for the scenario's architecture and forwarding configuration,
// taking the demand parameters from the scenario's cost model and
// workload (so a re-parameterized scenario cross-validates against the
// matching analytic prediction, not the Table 2 constants).
type AnalyticEvaluator struct{}

// Name implements Evaluator.
func (AnalyticEvaluator) Name() string { return "analytic" }

// Params maps a validated configuration onto the analytic parameters.
func (AnalyticEvaluator) Params(cfg core.Config) analytic.Params {
	return analytic.Params{
		SamplingPeriod: cfg.SamplingPeriod,
		BatchSize:      float64(cfg.BatchSize),
		AppProcs:       float64(cfg.AppProcs),
		Nodes:          float64(cfg.Nodes),
		Pds:            float64(cfg.Pds),
		DPdCPU:         cfg.Cost.PerMsgCPU.Mean(),
		DPdNet:         cfg.Cost.PerMsgNet.Mean(),
		DPdmCPU:        cfg.Cost.Merge.Mean(),
		DParadynCPU:    cfg.Workload.MainCPU.Mean(),
	}
}

// Evaluate implements Evaluator.
func (e AnalyticEvaluator) Evaluate(sp scenario.Spec) (Estimates, error) {
	cfg, err := sp.Config()
	if err != nil {
		return Estimates{}, err
	}
	if cfg.SamplingPeriod <= 0 {
		return Estimates{}, errors.New("xval: analytic model needs a positive sampling period (uninstrumented cell)")
	}
	p := e.Params(cfg)
	if err := p.Validate(); err != nil {
		return Estimates{}, err
	}
	var m analytic.Metrics
	switch {
	case cfg.Arch == core.SMP:
		m = p.SMP()
	case cfg.Arch == core.MPP && cfg.Forwarding == forward.Tree:
		m = p.MPPTree()
	case cfg.Arch == core.MPP:
		m = p.MPPDirect()
	default:
		m = p.NOW()
	}
	est := emptyEstimates()
	est.PdCPUUtilPct = OptFloat(m.PdCPUUtil * 100)
	est.MainCPUUtilPct = OptFloat(m.ParadynCPUUtil * 100)
	est.AppCPUUtilPct = OptFloat(m.AppCPUUtil * 100)
	est.PdNetUtilPct = OptFloat(m.PdNetUtil * 100)
	est.LatencyMeanUS = OptFloat(m.LatencyUS) // already microseconds
	return est, nil
}

// PaperDataEvaluator serves the embedded dataset of the paper's values
// for the grid operating points (see paperdata.go for provenance);
// operating points the paper does not cover return ErrNoData.
type PaperDataEvaluator struct{}

// Name implements Evaluator.
func (PaperDataEvaluator) Name() string { return "paper" }

// Evaluate implements Evaluator.
func (PaperDataEvaluator) Evaluate(sp scenario.Spec) (Estimates, error) {
	key, err := Key(sp)
	if err != nil {
		return Estimates{}, err
	}
	p, ok := paperPoints[key]
	if !ok {
		return Estimates{}, fmt.Errorf("%w: %s", ErrNoData, key)
	}
	est := emptyEstimates()
	est.PdCPUUtilPct = OptFloat(p.PdCPUUtilPct)
	est.MainCPUUtilPct = OptFloat(p.MainCPUUtilPct)
	est.AppCPUUtilPct = OptFloat(p.AppCPUUtilPct)
	est.PdNetUtilPct = OptFloat(p.PdNetUtilPct)
	est.LatencyMeanUS = OptFloat(p.LatencyMeanUS)
	return est, nil
}

// Key canonicalizes a scenario to the operating-point identity the paper
// dataset is keyed on: architecture, population, sampling period, policy
// and batch, forwarding configuration, and application type (via the
// application network demand). Run-control fields — duration, warmup,
// seed — are deliberately excluded: the paper's values describe the
// operating point, not one run of it.
func Key(sp scenario.Spec) (string, error) {
	cfg, err := sp.Config()
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s|n=%d|p=%d|pds=%d|sp=%g|%s%d|%s|appnet=%g",
		strings.ToLower(cfg.Arch.String()), cfg.Nodes, cfg.AppProcs, cfg.Pds,
		cfg.SamplingPeriod, strings.ToLower(cfg.Policy.String()), cfg.BatchSize,
		cfg.Forwarding.String(), cfg.Workload.AppNet.Mean()), nil
}
