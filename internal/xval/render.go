package xval

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"rocc/internal/report"
)

// optF formats an OptFloat for the text tables: "-" when missing.
func optF(o OptFloat) string {
	if o.IsMissing() {
		return "-"
	}
	return report.F(float64(o))
}

// coveredStr renders a CI-coverage verdict.
func coveredStr(c *bool) string {
	switch {
	case c == nil:
		return "-"
	case *c:
		return "in"
	}
	return "OUT"
}

// comparedBackends returns the non-reference backend names in report
// order.
func (r *Report) comparedBackends() []string {
	var out []string
	for _, b := range r.Backends {
		if b != r.Reference {
			out = append(out, b)
		}
	}
	return out
}

// RenderText writes the full dashboard: per-group detail tables covering
// every cell and metric, the relative-error heatmap, the per-group
// summaries, and the per-architecture/policy worst-case table.
func (r *Report) RenderText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"ROCC cross-validation: grid=%s reference=%s seed=%d duration=%gs reps=%d ci=%g%%\n\n",
		r.Grid, r.Reference, r.Seed, r.DurationSec, r.Reps, r.CILevel*100); err != nil {
		return err
	}

	others := r.comparedBackends()
	cols := []string{"cell", "metric", r.Reference, "±CI"}
	for _, b := range others {
		cols = append(cols, b, "err", "ci?")
	}
	group := ""
	var t *report.Table
	flush := func() error {
		if t == nil {
			return nil
		}
		if err := t.Render(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	for _, cell := range r.Cells {
		if cell.Group != group {
			if err := flush(); err != nil {
				return err
			}
			group = cell.Group
			t = report.NewTable("group "+group, cols...)
		}
		label := fmt.Sprintf("%s (%s)", cell.ID, cell.Label)
		for _, mc := range cell.Metrics {
			row := []string{label, mc.Metric, optF(mc.Reference), optF(mc.HalfWidth)}
			label = "" // only on the first metric row of the cell
			for _, bc := range mc.Backends {
				errStr := optF(bc.RelError)
				if bc.Diverged {
					errStr = "DIVERGED"
				}
				row = append(row, optF(bc.Value), errStr, coveredStr(bc.CICovered))
			}
			t.AddRow(row...)
		}
	}
	if err := flush(); err != nil {
		return err
	}

	for _, b := range others {
		if err := r.heatmap(b).Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}

	if err := renderSummaries(w, "summary by grid group (vs "+r.Reference+")",
		"group", r.GroupSummaries); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return renderSummaries(w, "worst-case divergence by architecture/policy",
		"arch/policy", r.ArchPolicySummaries)
}

// heatmap builds the relative-error surface of one backend vs the
// reference: rows are grid cells, columns the compared metrics; diverged
// cells are +Inf ('!'), incomparable cells NaN (blank).
func (r *Report) heatmap(backend string) *report.Heatmap {
	h := &report.Heatmap{
		Title:     fmt.Sprintf("relative error heatmap: %s vs %s", backend, r.Reference),
		ColLabels: MetricNames,
	}
	for _, cell := range r.Cells {
		row := make([]float64, 0, len(cell.Metrics))
		for _, mc := range cell.Metrics {
			v := math.NaN()
			for _, bc := range mc.Backends {
				if bc.Backend != backend {
					continue
				}
				if bc.Diverged {
					v = math.Inf(1)
				} else {
					v = float64(bc.RelError)
				}
			}
			row = append(row, v)
		}
		h.RowLabels = append(h.RowLabels, cell.ID)
		h.Values = append(h.Values, row)
	}
	return h
}

func renderSummaries(w io.Writer, title, scopeCol string, sums []Summary) error {
	t := report.NewTable(title, scopeCol, "backend", "metric", "cells", "compared",
		"mean err", "max err", "worst cell", "ci cover", "diverged", "missing")
	for _, s := range sums {
		cover := "-"
		if s.CIEligible > 0 {
			cover = fmt.Sprintf("%d/%d", s.CICovered, s.CIEligible)
		}
		t.AddRow(s.Scope, s.Backend, s.Metric,
			fmt.Sprint(s.Cells), fmt.Sprint(s.Compared),
			optF(s.MeanRelErr), optF(s.MaxRelErr), s.WorstCell,
			cover, fmt.Sprint(s.Diverged), fmt.Sprint(s.MissingData))
	}
	return t.Render(w)
}

// WriteJSON writes the report as indented, deterministic JSON (struct
// field order; OptFloat encodes missing as null and infinities as
// "+inf"/"-inf").
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
