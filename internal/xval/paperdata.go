package xval

import (
	"math"

	"rocc/internal/core"
	"rocc/internal/scenario"
)

// paperPoint holds the paper's values for one operating point, in the
// Estimates units (percent, microseconds). NaN marks a metric the paper
// does not report for that point.
//
// Provenance, recorded per entry in Source:
//
//   - "eqs (1)-(16)" entries are the operating-point predictions the
//     paper's analytic curves (Figures 9-15) and validation discussion are
//     drawn from, reconstructed exactly from the printed equations with
//     the Table 2 parameters and frozen here as literals by
//     tools/genpaperdata. Freezing them decouples the dashboard's "paper"
//     column from internal/analytic: if the solver drifts, the golden
//     tests catch it against these published-formula values.
//   - "Table 3 (measured)" fields are the genuinely measured utilizations
//     of the paper's validation run (100 s, 1 node, CF, 40 ms sampling:
//     application 85.71%, daemon 0.74% of a CPU) and overlay the
//     reconstructed entry for that cell.
type paperPoint struct {
	PdCPUUtilPct   float64
	MainCPUUtilPct float64
	AppCPUUtilPct  float64
	PdNetUtilPct   float64
	LatencyMeanUS  float64
	Source         string
}

// nan marks a metric the paper does not report; inf a saturated queue
// (residence time diverges at utilization 1 in the closed forms).
var (
	nan = math.NaN()
	inf = math.Inf(1)
)

func init() {
	// Overlay the measured anchors on the reconstructed predictions:
	// measured fields win, everything else keeps the printed-equation
	// value.
	for key, m := range paperMeasured() {
		p, ok := paperPoints[key]
		if !ok {
			p = paperPoint{PdCPUUtilPct: nan, MainCPUUtilPct: nan,
				AppCPUUtilPct: nan, PdNetUtilPct: nan, LatencyMeanUS: nan}
		}
		override := func(dst *float64, v float64) {
			if !math.IsNaN(v) {
				*dst = v
			}
		}
		override(&p.PdCPUUtilPct, m.PdCPUUtilPct)
		override(&p.MainCPUUtilPct, m.MainCPUUtilPct)
		override(&p.AppCPUUtilPct, m.AppCPUUtilPct)
		override(&p.PdNetUtilPct, m.PdNetUtilPct)
		override(&p.LatencyMeanUS, m.LatencyMeanUS)
		if p.Source != "" {
			p.Source = m.Source + "; otherwise " + p.Source
		} else {
			p.Source = m.Source
		}
		paperPoints[key] = p
	}
}

// paperMeasured returns the measured values of Table 3 keyed like
// paperPoints: the single-node validation run the paper uses to
// corroborate the model (application 85.71 s and daemon 0.74 s of CPU
// time per 100 s run — i.e. 85.71% and 0.74% utilization).
func paperMeasured() map[string]paperPoint {
	cfg := core.DefaultConfig()
	cfg.Nodes = 1
	key, err := Key(scenario.FromConfig(cfg))
	if err != nil {
		panic("xval: table3 key: " + err.Error())
	}
	return map[string]paperPoint{
		key: {
			PdCPUUtilPct:   0.74,
			AppCPUUtilPct:  85.71,
			MainCPUUtilPct: nan,
			PdNetUtilPct:   nan,
			LatencyMeanUS:  nan,
			Source:         "Table 3 (measured)",
		},
	}
}
