package xval

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"rocc/internal/core"
	"rocc/internal/forward"
	"rocc/internal/par"
	"rocc/internal/scenario"
)

// Options scales a cross-validation run.
type Options struct {
	// Seed is the master seed; each grid cell gets an independent base
	// seed via DeriveSeed(Seed, SeedStreamCrossVal, cellIndex), so the
	// error surface regenerates byte-identically for a fixed Seed at any
	// Workers setting.
	Seed uint64
	// DurationUS, when positive, overrides every cell's simulated
	// duration (microseconds).
	DurationUS float64
	// Reps is the simulation replication count per cell.
	Reps int
	// Workers sizes the cell × backend worker pool: 0 = one per core,
	// 1 = serial.
	Workers int
	// CILevel is the confidence level for simulation CIs (default 0.90).
	CILevel float64
	// Reference names the backend whose estimates anchor relative errors
	// and whose CIs define coverage (default "simulation"); falls back to
	// the first evaluator if absent.
	Reference string
}

// DefaultOptions returns the default cross-validation scaling: 10
// simulated seconds, 3 replications, 90% CIs, simulation as reference.
func DefaultOptions() Options {
	return Options{Seed: 1, DurationUS: 10e6, Reps: 3, CILevel: 0.90, Reference: "simulation"}
}

func (o Options) normalized() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Reps < 1 {
		o.Reps = 1
	}
	if o.CILevel <= 0 || o.CILevel >= 1 {
		o.CILevel = 0.90
	}
	if o.Reference == "" {
		o.Reference = "simulation"
	}
	return o
}

// DefaultEvaluators returns the three standard backends at the option
// scale: analytic, simulation, paper. The simulation evaluator runs its
// replications serially (Workers 1) because Run fans grid cells out
// across Options.Workers already.
func DefaultEvaluators(opt Options) []Evaluator {
	opt = opt.normalized()
	return []Evaluator{
		AnalyticEvaluator{},
		SimEvaluator{Reps: opt.Reps, DurationUS: opt.DurationUS, Workers: 1, CILevel: opt.CILevel},
		PaperDataEvaluator{},
	}
}

// BackendEstimates is one backend's output for one cell.
type BackendEstimates struct {
	Backend string `json:"backend"`
	// Missing marks an operating point the backend has no data for
	// (ErrNoData); Estimates is all-Missing then.
	Missing   bool      `json:"missing,omitempty"`
	Estimates Estimates `json:"estimates"`
}

// BackendComparison compares one non-reference backend's value for one
// metric against the reference.
type BackendComparison struct {
	Backend string   `json:"backend"`
	Value   OptFloat `json:"value"`
	// RelError is |value - ref| / |ref|; Missing when either side is
	// absent or non-finite.
	RelError OptFloat `json:"rel_error"`
	// Diverged marks exactly one side non-finite — the analytic queue
	// saturated where the (finite-duration) simulation still measured a
	// value, or vice versa. Two same-signed infinities agree and are not
	// divergence.
	Diverged bool `json:"diverged,omitempty"`
	// CICovered reports whether the value lies inside the reference
	// confidence interval; nil when the reference carries no interval or
	// either side is non-finite.
	CICovered *bool `json:"ci_covered,omitempty"`
}

// MetricComparison is the error-surface row for one metric of one cell.
type MetricComparison struct {
	Metric    string              `json:"metric"`
	Reference OptFloat            `json:"reference"`
	HalfWidth OptFloat            `json:"ci_half_width"`
	Backends  []BackendComparison `json:"backends"`
}

// CellReport is the full cross-validation record of one grid cell.
type CellReport struct {
	ID        string             `json:"id"`
	Group     string             `json:"group"`
	Label     string             `json:"label"`
	Arch      string             `json:"arch"`
	Policy    string             `json:"policy"`
	Estimates []BackendEstimates `json:"estimates"`
	Metrics   []MetricComparison `json:"metrics"`
}

// Summary aggregates one (scope, backend, metric) slice of the error
// surface: the scope is either a grid group or an architecture/policy
// cell.
type Summary struct {
	Scope       string   `json:"scope"`
	Backend     string   `json:"backend"`
	Metric      string   `json:"metric"`
	Cells       int      `json:"cells"`
	Compared    int      `json:"compared"`
	MeanRelErr  OptFloat `json:"mean_rel_error"`
	MaxRelErr   OptFloat `json:"max_rel_error"`
	WorstCell   string   `json:"worst_cell,omitempty"`
	CICovered   int      `json:"ci_covered"`
	CIEligible  int      `json:"ci_eligible"`
	Diverged    int      `json:"diverged"`
	MissingData int      `json:"missing_data"`
}

// Report is the cross-validation error surface for one grid run.
type Report struct {
	Grid        string       `json:"grid"`
	Seed        uint64       `json:"seed"`
	DurationSec float64      `json:"duration_sec"`
	Reps        int          `json:"reps"`
	CILevel     float64      `json:"ci_level"`
	Reference   string       `json:"reference"`
	Backends    []string     `json:"backends"`
	Cells       []CellReport `json:"cells"`
	// GroupSummaries aggregates per grid group; ArchPolicySummaries per
	// architecture/policy cell (the worst-case-divergence view).
	GroupSummaries      []Summary `json:"group_summaries"`
	ArchPolicySummaries []Summary `json:"arch_policy_summaries"`
}

// Run executes every evaluator over every grid cell (fanned across
// Options.Workers; results collected in index order, so output is
// identical at any pool size) and assembles the error surface.
func Run(g scenario.Grid, evals []Evaluator, opt Options) (*Report, error) {
	if len(evals) == 0 {
		return nil, errors.New("xval: no evaluators")
	}
	if len(g.Cells) == 0 {
		return nil, errors.New("xval: empty grid")
	}
	opt = opt.normalized()

	names := make([]string, len(evals))
	for i, ev := range evals {
		names[i] = ev.Name()
	}
	refIdx := 0
	for i, n := range names {
		if n == opt.Reference {
			refIdx = i
			break
		}
	}

	// Pre-derive per-cell seeds and pin durations so every backend of a
	// cell sees the identical spec.
	specs := make([]scenario.Spec, len(g.Cells))
	for i, c := range g.Cells {
		s := c.Spec
		s.Seed = core.DeriveSeed(opt.Seed, core.SeedStreamCrossVal, uint64(i))
		if opt.DurationUS > 0 {
			s.Duration = opt.DurationUS
		}
		specs[i] = s
	}

	type job struct{ ci, ei int }
	jobs := make([]job, 0, len(g.Cells)*len(evals))
	for ci := range g.Cells {
		for ei := range evals {
			jobs = append(jobs, job{ci, ei})
		}
	}
	flat, err := par.Map(opt.Workers, jobs, func(_ int, j job) (BackendEstimates, error) {
		est, err := evals[j.ei].Evaluate(specs[j.ci])
		if err != nil {
			if errors.Is(err, ErrNoData) {
				return BackendEstimates{Backend: names[j.ei], Missing: true, Estimates: emptyEstimates()}, nil
			}
			return BackendEstimates{}, fmt.Errorf("%s on %s: %w", names[j.ei], g.Cells[j.ci].ID, err)
		}
		return BackendEstimates{Backend: names[j.ei], Estimates: est}, nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Grid:        g.Name,
		Seed:        opt.Seed,
		DurationSec: opt.DurationUS / 1e6,
		Reps:        opt.Reps,
		CILevel:     opt.CILevel,
		Reference:   opt.Reference,
		Backends:    names,
	}
	for ci, cell := range g.Cells {
		ests := flat[ci*len(evals) : (ci+1)*len(evals)]
		cr := CellReport{
			ID:        cell.ID,
			Group:     cell.Group,
			Label:     cell.Label,
			Arch:      strings.ToUpper(cell.Spec.Arch),
			Policy:    policyLabel(cell.Spec),
			Estimates: ests,
		}
		ref := ests[refIdx].Estimates
		for _, metric := range MetricNames {
			mc := MetricComparison{
				Metric:    metric,
				Reference: ref.Metric(metric),
				HalfWidth: ref.HalfWidth(metric),
			}
			for ei, be := range ests {
				if ei == refIdx {
					continue
				}
				mc.Backends = append(mc.Backends, compareOne(be, mc.Reference, mc.HalfWidth, metric))
			}
			cr.Metrics = append(cr.Metrics, mc)
		}
		rep.Cells = append(rep.Cells, cr)
	}
	rep.GroupSummaries = rep.summarize(func(c CellReport) string { return c.Group })
	rep.ArchPolicySummaries = rep.summarize(func(c CellReport) string { return c.Arch + "/" + c.Policy })
	return rep, nil
}

// policyLabel renders a spec's policy axis ("CF", "BF(32)", "ABF"). The
// policy field is a -policy spec, so bf:32 and abf:5 label correctly; an
// unparseable label degrades to CF, matching the pre-spec behavior.
func policyLabel(s scenario.Spec) string {
	spec, err := forward.ParseStrategySpec(s.Policy)
	if err != nil || spec.Policy == forward.CF {
		return "CF"
	}
	if spec.Adaptive {
		return strings.ToUpper(spec.String())
	}
	if spec.Batch > 0 {
		return fmt.Sprintf("BF(%d)", spec.Batch)
	}
	return fmt.Sprintf("BF(%d)", s.BatchSize)
}

// compareOne computes one backend-vs-reference comparison.
func compareOne(be BackendEstimates, ref, hw OptFloat, metric string) BackendComparison {
	bc := BackendComparison{
		Backend:  be.Backend,
		Value:    be.Estimates.Metric(metric),
		RelError: Missing(),
	}
	v, r := float64(bc.Value), float64(ref)
	switch {
	case math.IsNaN(v) || math.IsNaN(r):
		// Missing on either side: nothing to compare.
	case math.IsInf(v, 0) != math.IsInf(r, 0):
		bc.Diverged = true
	case math.IsInf(v, 0): // both infinite
		if math.Signbit(v) != math.Signbit(r) {
			bc.Diverged = true
		}
		// Same-signed infinities agree; RelError stays Missing.
	case r == 0:
		if v == 0 {
			bc.RelError = 0
		}
	default:
		bc.RelError = OptFloat(math.Abs(v-r) / math.Abs(r))
	}
	if bc.Value.Finite() && ref.Finite() && hw.Finite() {
		in := math.Abs(v-r) <= float64(hw)
		bc.CICovered = &in
	}
	return bc
}

// summarize aggregates the error surface by a scope function, in
// first-seen scope order, backend order, metric order — fully
// deterministic.
func (r *Report) summarize(scope func(CellReport) string) []Summary {
	type key struct{ scope, backend, metric string }
	acc := map[key]*Summary{}
	var order []key
	for _, cell := range r.Cells {
		sc := scope(cell)
		for _, mc := range cell.Metrics {
			for _, bc := range mc.Backends {
				k := key{sc, bc.Backend, mc.Metric}
				s, ok := acc[k]
				if !ok {
					s = &Summary{Scope: sc, Backend: bc.Backend, Metric: mc.Metric,
						MeanRelErr: Missing(), MaxRelErr: Missing()}
					acc[k] = s
					order = append(order, k)
				}
				s.Cells++
				if bc.Diverged {
					s.Diverged++
				}
				if bc.Value.IsMissing() {
					s.MissingData++
				}
				if bc.CICovered != nil {
					s.CIEligible++
					if *bc.CICovered {
						s.CICovered++
					}
				}
				if re := float64(bc.RelError); !math.IsNaN(re) {
					s.Compared++
					// Accumulate the mean in MeanRelErr; finalized below.
					if s.Compared == 1 {
						s.MeanRelErr = bc.RelError
						s.MaxRelErr = bc.RelError
						s.WorstCell = cell.ID
					} else {
						s.MeanRelErr += bc.RelError
						if re > float64(s.MaxRelErr) {
							s.MaxRelErr = bc.RelError
							s.WorstCell = cell.ID
						}
					}
				}
			}
		}
	}
	out := make([]Summary, 0, len(order))
	for _, k := range order {
		s := acc[k]
		if s.Compared > 1 {
			s.MeanRelErr = OptFloat(float64(s.MeanRelErr) / float64(s.Compared))
		}
		out = append(out, *s)
	}
	return out
}

// MaxRelError returns the maximum finite relative error of the named
// backend vs the reference for one metric across every cell, with the
// worst cell's id; Missing when no cell was comparable.
func (r *Report) MaxRelError(backend, metric string) (OptFloat, string) {
	max, worst := Missing(), ""
	for _, cell := range r.Cells {
		for _, mc := range cell.Metrics {
			if mc.Metric != metric {
				continue
			}
			for _, bc := range mc.Backends {
				if bc.Backend != backend || bc.RelError.IsMissing() {
					continue
				}
				if max.IsMissing() || float64(bc.RelError) > float64(max) {
					max, worst = bc.RelError, cell.ID
				}
			}
		}
	}
	return max, worst
}

// Coverage returns the CI-coverage counts of the named backend across
// every cell and metric: how many comparisons had a reference interval,
// and how many of those the backend value fell inside.
func (r *Report) Coverage(backend string) (covered, eligible int) {
	for _, cell := range r.Cells {
		for _, mc := range cell.Metrics {
			for _, bc := range mc.Backends {
				if bc.Backend != backend || bc.CICovered == nil {
					continue
				}
				eligible++
				if *bc.CICovered {
					covered++
				}
			}
		}
	}
	return covered, eligible
}

// Tolerance is the committed CI gate for a cross-validation run: the run
// parameters that produced the reference surface and the per-metric
// relative-error ceilings (plus a CI-coverage floor) the gated backend
// must stay within.
type Tolerance struct {
	Grid          string             `json:"grid"`
	DurationSec   float64            `json:"duration_sec"`
	Reps          int                `json:"reps"`
	Seed          uint64             `json:"seed"`
	Backend       string             `json:"backend"`
	MaxRelError   map[string]float64 `json:"max_rel_error"`
	MinCICoverage float64            `json:"min_ci_coverage"`
}

// Check verifies the report against the tolerance, returning an error
// naming every violated metric.
func (r *Report) Check(tol Tolerance) error {
	var problems []string
	for _, metric := range MetricNames {
		limit, ok := tol.MaxRelError[metric]
		if !ok {
			continue
		}
		max, worst := r.MaxRelError(tol.Backend, metric)
		if max.IsMissing() {
			problems = append(problems, fmt.Sprintf("%s: no comparable cells", metric))
			continue
		}
		if float64(max) > limit {
			problems = append(problems, fmt.Sprintf("%s: max rel error %.4f > %.4f (worst cell %s)",
				metric, float64(max), limit, worst))
		}
	}
	if tol.MinCICoverage > 0 {
		covered, eligible := r.Coverage(tol.Backend)
		if eligible == 0 {
			problems = append(problems, "ci coverage: no eligible comparisons")
		} else if frac := float64(covered) / float64(eligible); frac < tol.MinCICoverage {
			problems = append(problems, fmt.Sprintf("ci coverage %.3f (%d/%d) < %.3f",
				frac, covered, eligible, tol.MinCICoverage))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("xval: tolerance exceeded for backend %q:\n  %s",
			tol.Backend, strings.Join(problems, "\n  "))
	}
	return nil
}

// LoadTolerance reads a Tolerance JSON file.
func LoadTolerance(rd io.Reader) (Tolerance, error) {
	var t Tolerance
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Tolerance{}, fmt.Errorf("xval: tolerance: %w", err)
	}
	if t.Backend == "" {
		t.Backend = "analytic"
	}
	return t, nil
}
