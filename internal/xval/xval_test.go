package xval

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"rocc/internal/core"
	"rocc/internal/scenario"
)

// Hand-computed eq (1)-(6) values for the Table 2 "typical configuration"
// (NOW, 8 nodes, 1 process/node, 40 ms sampling, CF): the golden anchors
// of the unit-conversion and paper-dataset contracts. Written as the
// arithmetic of the printed equations, not computed via internal/analytic.
func baselineExpected() Estimates {
	const (
		sp      = 40000.0 // µs
		nodes   = 8.0
		dPdCPU  = 267.0
		dPdNet  = 71.0
		dParCPU = 3208.0
	)
	lambda := 1.0 / sp // (1/SP)(1/B)·procs, eq (1)
	uPd := lambda * dPdCPU
	uNet := nodes * lambda * dPdNet
	uMain := nodes * lambda * dParCPU
	lat := dPdCPU/(1-uPd) + dPdNet/(1-uNet)
	e := emptyEstimates()
	e.PdCPUUtilPct = OptFloat(uPd * 100)
	e.MainCPUUtilPct = OptFloat(uMain * 100)
	e.AppCPUUtilPct = OptFloat((1 - uPd) * 100)
	e.PdNetUtilPct = OptFloat(uNet * 100)
	e.LatencyMeanUS = OptFloat(lat)
	return e
}

func wantClose(t *testing.T, name string, got, want OptFloat, tol float64) {
	t.Helper()
	if math.Abs(float64(got)-float64(want)) > tol {
		t.Errorf("%s = %v, want %v (±%g)", name, float64(got), float64(want), tol)
	}
}

// The analytic evaluator must reproduce the documented equation values
// for the baseline to 1e-9 (satellite 4's golden test).
func TestGoldenBaselineAnalytic(t *testing.T) {
	sp := scenario.FromConfig(core.DefaultConfig())
	got, err := AnalyticEvaluator{}.Evaluate(sp)
	if err != nil {
		t.Fatal(err)
	}
	want := baselineExpected()
	for _, m := range MetricNames {
		wantClose(t, "analytic "+m, got.Metric(m), want.Metric(m), 1e-9)
	}
}

// The frozen paper dataset must agree with the printed equations at the
// baseline to 1e-9 — it was generated at full float precision.
func TestGoldenBaselinePaperData(t *testing.T) {
	sp := scenario.FromConfig(core.DefaultConfig())
	got, err := PaperDataEvaluator{}.Evaluate(sp)
	if err != nil {
		t.Fatal(err)
	}
	want := baselineExpected()
	for _, m := range MetricNames {
		wantClose(t, "paper "+m, got.Metric(m), want.Metric(m), 1e-9)
	}
}

// The Table 3 measured utilizations overlay the reconstructed entry for
// the single-node validation point; the unmeasured metrics keep the
// equation values.
func TestPaperDataTable3Overlay(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Nodes = 1
	got, err := PaperDataEvaluator{}.Evaluate(scenario.FromConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	wantClose(t, "pd_cpu_util_pct", got.PdCPUUtilPct, 0.74, 1e-12)
	wantClose(t, "app_cpu_util_pct", got.AppCPUUtilPct, 85.71, 1e-12)
	if got.MainCPUUtilPct.IsMissing() || got.LatencyMeanUS.IsMissing() {
		t.Errorf("unmeasured metrics should keep equation values, got main=%v latency=%v",
			float64(got.MainCPUUtilPct), float64(got.LatencyMeanUS))
	}
}

// Key identifies the operating point, not the run: duration, warmup, and
// seed must not affect it.
func TestKeyExcludesRunControls(t *testing.T) {
	a := scenario.FromConfig(core.DefaultConfig())
	b := a
	b.Duration = 1
	b.Warmup = 0.5
	b.Seed = 999
	ka, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := Key(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("run-control fields leaked into the key:\n%s\n%s", ka, kb)
	}
}

// core.Result reports latencies in seconds; Estimates must carry
// microseconds (satellite 4's unit contract).
func TestEstimatesUnitConversion(t *testing.T) {
	res := core.Result{
		PdCPUUtilPct:            1.5,
		MonitoringLatencySec:    0.002,
		MonitoringLatencyP50Sec: 0.001,
		MonitoringLatencyP99Sec: 0.004,
	}
	est := estimatesFromResults([]core.Result{res}, 0.90)
	wantClose(t, "latency_mean_us", est.LatencyMeanUS, 2000, 1e-12)
	wantClose(t, "latency_p50_us", est.LatencyP50US, 1000, 1e-12)
	wantClose(t, "latency_p99_us", est.LatencyP99US, 4000, 1e-12)
	wantClose(t, "pd_cpu_util_pct", est.PdCPUUtilPct, 1.5, 1e-12)
	if !est.LatencyMeanHW.IsMissing() {
		t.Error("single replication must not carry a CI half-width")
	}
	est2 := estimatesFromResults([]core.Result{res, {MonitoringLatencySec: 0.004}}, 0.90)
	wantClose(t, "2-rep latency mean", est2.LatencyMeanUS, 3000, 1e-9)
	if est2.LatencyMeanHW.IsMissing() {
		t.Error("two replications must carry a CI half-width")
	}
}

func TestOptFloatJSON(t *testing.T) {
	in := []OptFloat{Missing(), OptFloat(math.Inf(1)), OptFloat(math.Inf(-1)), 1.25}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(b), `[null,"+inf","-inf",1.25]`; got != want {
		t.Fatalf("marshal = %s, want %s", got, want)
	}
	var out []OptFloat
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !out[0].IsMissing() || !math.IsInf(float64(out[1]), 1) ||
		!math.IsInf(float64(out[2]), -1) || out[3] != 1.25 {
		t.Fatalf("round trip = %v", out)
	}
}

func TestCompareOneSemantics(t *testing.T) {
	est := func(v float64) BackendEstimates {
		e := emptyEstimates()
		e.PdCPUUtilPct = OptFloat(v)
		return BackendEstimates{Backend: "b", Estimates: e}
	}
	inf := math.Inf(1)

	bc := compareOne(est(1.1), 1.0, 0.2, "pd_cpu_util_pct")
	wantClose(t, "rel error", bc.RelError, 0.1, 1e-12)
	if bc.CICovered == nil || !*bc.CICovered {
		t.Error("value inside the interval must be covered")
	}
	bc = compareOne(est(1.5), 1.0, 0.2, "pd_cpu_util_pct")
	if bc.CICovered == nil || *bc.CICovered {
		t.Error("value outside the interval must not be covered")
	}
	bc = compareOne(est(1.5), 1.0, Missing(), "pd_cpu_util_pct")
	if bc.CICovered != nil {
		t.Error("no interval → coverage undefined")
	}
	bc = compareOne(est(0), 0, Missing(), "pd_cpu_util_pct")
	wantClose(t, "0 vs 0", bc.RelError, 0, 1e-12)
	bc = compareOne(est(1), 0, Missing(), "pd_cpu_util_pct")
	if !bc.RelError.IsMissing() {
		t.Error("nonzero vs zero reference has no relative error")
	}
	bc = compareOne(est(inf), 1.0, Missing(), "pd_cpu_util_pct")
	if !bc.Diverged || !bc.RelError.IsMissing() || bc.CICovered != nil {
		t.Error("one-sided infinity must be flagged as diverged")
	}
	bc = compareOne(est(inf), OptFloat(inf), Missing(), "pd_cpu_util_pct")
	if bc.Diverged {
		t.Error("matching infinities agree in divergence")
	}
	bc = compareOne(est(math.NaN()), 1.0, 0.2, "pd_cpu_util_pct")
	if bc.Diverged || !bc.RelError.IsMissing() || bc.CICovered != nil {
		t.Error("missing value compares as missing")
	}
}

// tinyOptions keeps the full pipeline fast in tests.
func tinyOptions() Options {
	opt := DefaultOptions()
	opt.DurationUS = 0.2e6
	opt.Reps = 2
	return opt
}

// The dashboard contract: for a fixed seed the JSON error surface is
// byte-identical at any worker-pool size (the PR 2 order-preservation
// pattern, extended over cells × backends).
func TestRunJSONByteIdenticalAcrossWorkers(t *testing.T) {
	g := scenario.SmokeGrid()
	render := func(workers int) string {
		opt := tinyOptions()
		opt.Workers = workers
		rep, err := Run(g, DefaultEvaluators(opt), opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	for _, workers := range []int{0, 8} {
		if got := render(workers); got != serial {
			t.Errorf("JSON output differs between -parallel 1 and -parallel %d", workers)
		}
	}
}

func TestRunReportShapeAndTolerance(t *testing.T) {
	g := scenario.SmokeGrid()
	opt := tinyOptions()
	rep, err := Run(g, DefaultEvaluators(opt), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != len(g.Cells) {
		t.Fatalf("%d cell reports, want %d", len(rep.Cells), len(g.Cells))
	}
	for _, cell := range rep.Cells {
		if len(cell.Metrics) != len(MetricNames) {
			t.Fatalf("cell %s: %d metric rows, want %d", cell.ID, len(cell.Metrics), len(MetricNames))
		}
		if len(cell.Estimates) != 3 {
			t.Fatalf("cell %s: %d backends, want 3", cell.ID, len(cell.Estimates))
		}
	}
	// Every smoke cell is in the paper dataset: no missing backends.
	for _, s := range rep.GroupSummaries {
		if s.MissingData != 0 {
			t.Errorf("summary %s/%s/%s: %d missing cells", s.Scope, s.Backend, s.Metric, s.MissingData)
		}
	}

	// A permissive tolerance passes; a zero tolerance fails and names the
	// metric.
	pass := Tolerance{Backend: "analytic",
		MaxRelError: map[string]float64{"pd_cpu_util_pct": 1e6}}
	if err := rep.Check(pass); err != nil {
		t.Errorf("permissive tolerance failed: %v", err)
	}
	fail := Tolerance{Backend: "analytic",
		MaxRelError: map[string]float64{"pd_cpu_util_pct": 0}}
	err = rep.Check(fail)
	if err == nil || !strings.Contains(err.Error(), "pd_cpu_util_pct") {
		t.Errorf("zero tolerance must fail naming the metric, got %v", err)
	}

	// RenderText covers every cell and metric.
	var buf bytes.Buffer
	if err := rep.RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, cell := range rep.Cells {
		if !strings.Contains(text, cell.ID) {
			t.Errorf("rendered text missing cell %s", cell.ID)
		}
	}
	for _, m := range MetricNames {
		if !strings.Contains(text, m) {
			t.Errorf("rendered text missing metric %s", m)
		}
	}
}

func TestLoadTolerance(t *testing.T) {
	tol, err := LoadTolerance(strings.NewReader(`{
		"grid": "smoke", "duration_sec": 2, "reps": 3, "seed": 1,
		"backend": "analytic",
		"max_rel_error": {"pd_cpu_util_pct": 0.5},
		"min_ci_coverage": 0.1
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if tol.Grid != "smoke" || tol.MaxRelError["pd_cpu_util_pct"] != 0.5 {
		t.Fatalf("loaded %+v", tol)
	}
	if _, err := LoadTolerance(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown fields must be rejected")
	}
}
