package testbed

import (
	"errors"
	"fmt"
	"time"

	"rocc/internal/forward"
	"rocc/internal/nas"
)

// AppStats summarizes the instrumented application's run.
type AppStats struct {
	Steps            int64
	Ops              int64
	SamplesGenerated int
	// BlockedSec is time the application spent blocked writing samples
	// into a full pipe (the §4.3.3 effect, real this time).
	BlockedSec float64
	RunSec     float64
}

// runApp executes the kernel for duration, generating one sample per
// sampling period inline with the computation (Paradyn instruments the
// application code itself, so sample writes happen on the application's
// own thread and block it when the pipe is full).
func runApp(kernel nas.Kernel, pipe chan<- Sample, samplingPeriod, duration time.Duration) AppStats {
	var st AppStats
	start := time.Now()
	nextSample := start.Add(samplingPeriod)
	var seq uint64
	for {
		now := time.Now()
		if now.Sub(start) >= duration {
			break
		}
		kernel.Step()
		st.Steps++
		if samplingPeriod > 0 {
			for now = time.Now(); !now.Before(nextSample); nextSample = nextSample.Add(samplingPeriod) {
				s := Sample{GenTime: now, Seq: seq}
				seq++
				st.SamplesGenerated++
				blockStart := time.Now()
				pipe <- s // blocks when the pipe is full
				st.BlockedSec += time.Since(blockStart).Seconds()
			}
		}
	}
	st.Ops = kernel.Ops()
	st.RunSec = time.Since(start).Seconds()
	return st
}

// ExpConfig describes one measurement experiment (one cell of the
// Figure 30 / Figure 31 designs).
type ExpConfig struct {
	// Kernel selects the application: "bt" (pvmbt) or "is" (pvmis).
	Kernel string
	// KernelSize scales the kernel (BT grid edge / IS key count); zero
	// picks a default sized so one step takes ~a millisecond.
	KernelSize int

	Policy    forward.Policy
	BatchSize int

	SamplingPeriod time.Duration
	Duration       time.Duration
	PipeCapacity   int
	Seed           uint64
}

// ExpResult is the outcome of one measurement experiment.
type ExpResult struct {
	App       AppStats
	Daemon    DaemonStats
	Collector CollectorStats

	// NormalizedPdPct is daemon busy time normalized by total observed
	// CPU occupancy at the node (daemon + application), the Figure 31
	// normalization.
	NormalizedPdPct float64
	// NormalizedMainPct is collector busy time normalized the same way.
	NormalizedMainPct float64
}

// NewKernel builds the named NAS kernel.
func NewKernel(name string, size int, seed uint64) (nas.Kernel, error) {
	switch name {
	case "bt":
		if size <= 0 {
			size = 12
		}
		return nas.NewBT(size, seed)
	case "is":
		if size <= 0 {
			size = 1 << 15
		}
		return nas.NewIS(size, 1<<11, seed)
	}
	return nil, fmt.Errorf("testbed: unknown kernel %q", name)
}

// Run executes one measurement experiment end to end: collector, daemon,
// and instrumented application on real goroutines and sockets.
func Run(cfg ExpConfig) (ExpResult, error) {
	if cfg.Duration <= 0 {
		return ExpResult{}, errors.New("testbed: Duration must be positive")
	}
	if cfg.SamplingPeriod <= 0 {
		return ExpResult{}, errors.New("testbed: SamplingPeriod must be positive")
	}
	if cfg.PipeCapacity <= 0 {
		cfg.PipeCapacity = 256
	}
	if cfg.Policy == forward.BF && cfg.BatchSize < 1 {
		return ExpResult{}, errors.New("testbed: BF needs BatchSize >= 1")
	}
	kernel, err := NewKernel(cfg.Kernel, cfg.KernelSize, cfg.Seed)
	if err != nil {
		return ExpResult{}, err
	}

	collector, err := NewCollector()
	if err != nil {
		return ExpResult{}, err
	}
	defer collector.Close()

	pipe := make(chan Sample, cfg.PipeCapacity)
	daemon := &Daemon{Policy: cfg.Policy, BatchSize: cfg.BatchSize}
	daemonDone := make(chan struct{})
	var dstats DaemonStats
	var derr error
	go func() {
		defer close(daemonDone)
		dstats, derr = daemon.Run(collector.Addr(), pipe)
	}()

	appStats := runApp(kernel, pipe, cfg.SamplingPeriod, cfg.Duration)
	close(pipe)
	<-daemonDone
	if derr != nil {
		return ExpResult{}, derr
	}
	if err := kernel.Verify(); err != nil {
		return ExpResult{}, fmt.Errorf("testbed: kernel verification: %w", err)
	}
	// Give in-flight messages a moment to land, then settle.
	deadline := time.Now().Add(2 * time.Second)
	var cstats CollectorStats
	for {
		cstats = collector.Stats()
		if cstats.Samples >= dstats.SamplesForwarded || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	res := ExpResult{App: appStats, Daemon: dstats, Collector: cstats}
	total := appStats.RunSec + dstats.BusySec
	if total > 0 {
		res.NormalizedPdPct = dstats.BusySec / total * 100
		res.NormalizedMainPct = cstats.BusySec / total * 100
	}
	return res, nil
}
