// Package testbed is a working miniature of the Paradyn instrumentation
// system used for the measurement-based validation of Section 5: a real
// instrumented application (a NAS-like kernel from internal/nas) generates
// timestamped samples through a bounded pipe to a daemon goroutine, which
// forwards them over real loopback TCP to a collector standing in for the
// main Paradyn process, under either the collect-and-forward (CF) or
// batch-and-forward (BF) policy.
//
// Substitution note (see DESIGN.md): the paper measured the production
// Paradyn IS on an IBM SP-2 with the AIX kernel tracing facility. Here,
// direct IS overhead is measured as monotonic time spent inside the
// instrumented daemon and collector code regions; the CF-vs-BF phenomenon
// under study — per-sample system-call cost versus batched amortization —
// is exercised with genuine write(2) system calls on a real socket.
package testbed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rocc/internal/forward"
	"rocc/internal/stats"
)

// Sample is one instrumentation data sample.
type Sample struct {
	// GenTime is the generation timestamp.
	GenTime time.Time
	// Seq is the per-application sequence number.
	Seq uint64
}

const sampleWireBytes = 16 // int64 unix-nanos + uint64 seq

// encodeMessage appends a length-prefixed batch to buf and returns it.
func encodeMessage(buf []byte, batch []Sample) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(batch)))
	buf = append(buf, hdr[:]...)
	for _, s := range batch {
		var rec [sampleWireBytes]byte
		binary.LittleEndian.PutUint64(rec[0:8], uint64(s.GenTime.UnixNano()))
		binary.LittleEndian.PutUint64(rec[8:16], s.Seq)
		buf = append(buf, rec[:]...)
	}
	return buf
}

// CollectorStats summarizes what the collector observed.
type CollectorStats struct {
	Samples  int
	Messages int
	// BusySec is the monotonic time spent in the collector's receive and
	// decode path — the main-process direct overhead proxy.
	BusySec float64
	// MeanLatencySec is mean generation-to-receipt monitoring latency.
	MeanLatencySec float64
	MaxLatencySec  float64
}

// Collector is the main-Paradyn-process stand-in: a loopback TCP server
// that receives forwarded sample messages.
type Collector struct {
	ln net.Listener

	mu       sync.Mutex
	samples  int
	messages int
	busy     time.Duration
	latency  stats.Accumulator
	maxLat   float64

	wg sync.WaitGroup
}

// NewCollector starts a collector listening on an ephemeral loopback port.
func NewCollector() (*Collector, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	c := &Collector{ln: ln}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the collector's dial address.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serve(conn)
		}()
	}
}

func (c *Collector) serve(conn net.Conn) {
	defer conn.Close()
	var hdr [4]byte
	body := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		start := time.Now()
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > 1<<20 {
			return
		}
		need := int(n) * sampleWireBytes
		if cap(body) < need {
			body = make([]byte, need)
		}
		body = body[:need]
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		now := time.Now()
		c.mu.Lock()
		for i := 0; i < int(n); i++ {
			genNanos := int64(binary.LittleEndian.Uint64(body[i*sampleWireBytes:]))
			lat := float64(now.UnixNano()-genNanos) / 1e9
			if lat < 0 {
				lat = 0
			}
			c.latency.Add(lat)
			if lat > c.maxLat {
				c.maxLat = lat
			}
		}
		c.samples += int(n)
		c.messages++
		c.busy += time.Since(start)
		c.mu.Unlock()
	}
}

// Stats returns a snapshot of the collector's accounting.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectorStats{
		Samples:        c.samples,
		Messages:       c.messages,
		BusySec:        c.busy.Seconds(),
		MeanLatencySec: c.latency.Mean(),
		MaxLatencySec:  c.maxLat,
	}
}

// Close stops the collector and waits for connection handlers to finish.
func (c *Collector) Close() error {
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

// DaemonStats summarizes the daemon's work.
type DaemonStats struct {
	// BusySec is the monotonic time spent collecting, encoding, and
	// writing — the Paradyn daemon direct overhead proxy.
	BusySec float64
	// Writes counts write system calls issued (one per sample under CF,
	// one per batch under BF — the mechanism behind Figure 30).
	Writes            int
	SamplesForwarded  int
	MessagesForwarded int
}

// Daemon forwards samples from the pipe to the collector until the pipe
// is closed, then flushes any partial batch.
type Daemon struct {
	Policy    forward.Policy
	BatchSize int

	stats DaemonStats
}

// Run drains pipe into a TCP connection to addr. It returns the daemon's
// statistics when the pipe closes.
func (d *Daemon) Run(addr string, pipe <-chan Sample) (DaemonStats, error) {
	if d.Policy == forward.BF && d.BatchSize < 1 {
		return DaemonStats{}, errors.New("testbed: BF daemon needs BatchSize >= 1")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return DaemonStats{}, fmt.Errorf("testbed: %w", err)
	}
	defer conn.Close()

	batchSize := d.BatchSize
	if d.Policy == forward.CF {
		batchSize = 1
	}
	batch := make([]Sample, 0, batchSize)
	buf := make([]byte, 0, 4+batchSize*sampleWireBytes)

	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		start := time.Now()
		buf = encodeMessage(buf[:0], batch)
		_, err := conn.Write(buf)
		d.stats.Writes++
		d.stats.SamplesForwarded += len(batch)
		d.stats.MessagesForwarded++
		d.stats.BusySec += time.Since(start).Seconds()
		batch = batch[:0]
		return err
	}

	for s := range pipe {
		start := time.Now()
		batch = append(batch, s)
		d.stats.BusySec += time.Since(start).Seconds()
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return d.stats, fmt.Errorf("testbed: forwarding: %w", err)
			}
		}
	}
	if err := flush(); err != nil {
		return d.stats, fmt.Errorf("testbed: final flush: %w", err)
	}
	return d.stats, nil
}
