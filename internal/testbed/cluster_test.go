package testbed

import (
	"testing"
	"time"

	"rocc/internal/forward"
)

func clusterCfg(nodes int, tree bool) ClusterConfig {
	return ClusterConfig{
		Nodes:          nodes,
		Kernel:         "is",
		KernelSize:     1 << 11,
		Policy:         forward.CF,
		SamplingPeriod: 2 * time.Millisecond,
		Duration:       150 * time.Millisecond,
		Seed:           1,
		Tree:           tree,
	}
}

func TestClusterDirect(t *testing.T) {
	res, err := RunCluster(clusterCfg(3, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("%d node results", len(res.Nodes))
	}
	total := 0
	for i, nr := range res.Nodes {
		if nr.App.Steps == 0 {
			t.Fatalf("node %d did no work", i)
		}
		if nr.Daemon.SamplesForwarded != nr.App.SamplesGenerated {
			t.Fatalf("node %d forwarded %d of %d", i, nr.Daemon.SamplesForwarded, nr.App.SamplesGenerated)
		}
		total += nr.Daemon.SamplesForwarded
	}
	if res.Collector.Samples != total {
		t.Fatalf("collector got %d of %d", res.Collector.Samples, total)
	}
	if res.MeanDaemonBusySec <= 0 {
		t.Fatal("no average daemon overhead")
	}
	if len(res.Relays) != 0 || res.TotalRelayBusySec != 0 {
		t.Fatal("direct forwarding should have no relays")
	}
}

func TestClusterTree(t *testing.T) {
	res, err := RunCluster(clusterCfg(7, true))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, nr := range res.Nodes {
		total += nr.Daemon.SamplesForwarded
	}
	if res.Collector.Samples != total {
		t.Fatalf("tree delivered %d of %d samples", res.Collector.Samples, total)
	}
	if len(res.Relays) != 7 {
		t.Fatalf("%d relays", len(res.Relays))
	}
	// Non-leaf relays did real merge work (§4.4.2's extra tree cost).
	if res.TotalRelayBusySec <= 0 {
		t.Fatal("tree relays recorded no merge work")
	}
	// The root relay (node 0) carries its subtree's traffic: nodes 1..6
	// route through relays 0-2, so relay 0 must have seen messages.
	if res.Relays[0].Messages == 0 {
		t.Fatal("root relay idle")
	}
	// Every non-root sample passes >= 1 relay: total relayed samples must
	// be at least the samples of nodes 1..6.
	relayed := 0
	for _, r := range res.Relays {
		relayed += r.Samples
	}
	nonRoot := total - res.Nodes[0].Daemon.SamplesForwarded
	if relayed < nonRoot {
		t.Fatalf("relays carried %d samples, want >= %d", relayed, nonRoot)
	}
}

func TestClusterBFReducesMeanOverheadWrites(t *testing.T) {
	cf := clusterCfg(2, false)
	cfRes, err := RunCluster(cf)
	if err != nil {
		t.Fatal(err)
	}
	bf := cf
	bf.Policy = forward.BF
	bf.BatchSize = 16
	bfRes, err := RunCluster(bf)
	if err != nil {
		t.Fatal(err)
	}
	cfWrites, bfWrites := 0, 0
	for i := range cfRes.Nodes {
		cfWrites += cfRes.Nodes[i].Daemon.Writes
		bfWrites += bfRes.Nodes[i].Daemon.Writes
	}
	if cfWrites < 8*bfWrites {
		t.Fatalf("batching not amortizing cluster syscalls: %d vs %d", cfWrites, bfWrites)
	}
}

func TestClusterErrors(t *testing.T) {
	bad := []ClusterConfig{
		{},
		{Nodes: 1},
		{Nodes: 1, Duration: time.Millisecond},
		{Nodes: 1, Duration: time.Millisecond, SamplingPeriod: time.Millisecond,
			Kernel: "is", Policy: forward.BF},
		{Nodes: 1, Duration: time.Millisecond, SamplingPeriod: time.Millisecond,
			Kernel: "nope"},
	}
	for i, cfg := range bad {
		if _, err := RunCluster(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestClusterSingleNodeTree(t *testing.T) {
	// Tree with one node degenerates to direct.
	res, err := RunCluster(clusterCfg(1, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Collector.Samples == 0 {
		t.Fatal("no samples")
	}
}
