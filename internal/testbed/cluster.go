package testbed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"rocc/internal/forward"
)

// Relay is a non-leaf Paradyn daemon in the binary-tree forwarding
// configuration (Figure 4b), realized over real sockets: it accepts
// messages from its children, accounts the merge work, and re-forwards
// each message upstream.
type Relay struct {
	ln       net.Listener
	upstream net.Conn

	mu       sync.Mutex
	busy     time.Duration
	messages int
	samples  int

	wg sync.WaitGroup
}

// RelayStats summarizes a relay's work.
type RelayStats struct {
	BusySec  float64
	Messages int
	Samples  int
}

// NewRelay starts a relay listening on an ephemeral loopback port and
// forwarding to upstreamAddr.
func NewRelay(upstreamAddr string) (*Relay, error) {
	up, err := net.Dial("tcp", upstreamAddr)
	if err != nil {
		return nil, fmt.Errorf("testbed: relay upstream: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		up.Close()
		return nil, fmt.Errorf("testbed: relay listen: %w", err)
	}
	r := &Relay{ln: ln, upstream: up}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the relay's dial address.
func (r *Relay) Addr() string { return r.ln.Addr().String() }

func (r *Relay) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.serve(conn)
		}()
	}
}

func (r *Relay) serve(conn net.Conn) {
	defer conn.Close()
	var hdr [4]byte
	body := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		start := time.Now()
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > 1<<20 {
			return
		}
		need := int(n) * sampleWireBytes
		if cap(body) < need {
			body = make([]byte, need)
		}
		body = body[:need]
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		// Merge and re-forward: one upstream write per received message
		// (the paper's note that a merged sample costs the same network
		// occupancy as a local one).
		r.mu.Lock()
		_, werr := r.upstream.Write(hdr[:])
		if werr == nil {
			_, werr = r.upstream.Write(body)
		}
		r.messages++
		r.samples += int(n)
		r.busy += time.Since(start)
		r.mu.Unlock()
		if werr != nil {
			return
		}
	}
}

// Stats returns a snapshot of the relay's accounting.
func (r *Relay) Stats() RelayStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RelayStats{BusySec: r.busy.Seconds(), Messages: r.messages, Samples: r.samples}
}

// Close stops the relay (listener first, then the upstream link).
func (r *Relay) Close() error {
	err := r.ln.Close()
	r.wg.Wait()
	r.upstream.Close()
	return err
}

// ClusterConfig describes a multi-node measurement experiment: the
// Figure 29 setup, with one instrumented application and one daemon per
// node, all forwarding to a single collector — directly or through a
// binary tree of relays (Figure 4).
type ClusterConfig struct {
	Nodes int

	Kernel     string
	KernelSize int

	Policy    forward.Policy
	BatchSize int

	SamplingPeriod time.Duration
	Duration       time.Duration
	PipeCapacity   int
	Seed           uint64

	// Tree routes node i's daemon through a relay chain following the
	// binary-tree parent relation (node 0's traffic goes straight to the
	// collector).
	Tree bool
}

// NodeResult is one node's application and daemon statistics.
type NodeResult struct {
	App    AppStats
	Daemon DaemonStats
}

// ClusterResult is the outcome of a cluster run.
type ClusterResult struct {
	Nodes     []NodeResult
	Relays    []RelayStats
	Collector CollectorStats

	// MeanDaemonBusySec is the per-node average daemon overhead — the
	// "average direct overhead" global metric of §2.1.
	MeanDaemonBusySec float64
	// TotalRelayBusySec is the extra merge work of tree forwarding.
	TotalRelayBusySec float64
}

// RunCluster executes a multi-node measurement experiment.
func RunCluster(cfg ClusterConfig) (ClusterResult, error) {
	if cfg.Nodes < 1 {
		return ClusterResult{}, errors.New("testbed: cluster needs at least one node")
	}
	if cfg.Duration <= 0 || cfg.SamplingPeriod <= 0 {
		return ClusterResult{}, errors.New("testbed: Duration and SamplingPeriod must be positive")
	}
	if cfg.PipeCapacity <= 0 {
		cfg.PipeCapacity = 256
	}
	if cfg.Policy == forward.BF && cfg.BatchSize < 1 {
		return ClusterResult{}, errors.New("testbed: BF needs BatchSize >= 1")
	}

	collector, err := NewCollector()
	if err != nil {
		return ClusterResult{}, err
	}
	defer collector.Close()

	// Build relays: relay[i] carries traffic arriving at node i from its
	// children; it forwards to node i's own destination.
	var relays []*Relay
	dest := make([]string, cfg.Nodes) // where node i's daemon dials
	if cfg.Tree && cfg.Nodes > 1 {
		relays = make([]*Relay, cfg.Nodes)
		// Create relays top-down so parents exist before children.
		for i := 0; i < cfg.Nodes; i++ {
			up := collector.Addr()
			if i > 0 {
				up = relays[(i-1)/2].Addr()
			}
			r, err := NewRelay(up)
			if err != nil {
				closeRelays(relays[:i])
				return ClusterResult{}, err
			}
			relays[i] = r
		}
		for i := 0; i < cfg.Nodes; i++ {
			if i == 0 {
				dest[i] = collector.Addr()
			} else {
				dest[i] = relays[(i-1)/2].Addr()
			}
		}
	} else {
		for i := range dest {
			dest[i] = collector.Addr()
		}
	}

	results := make([]NodeResult, cfg.Nodes)
	errs := make([]error, cfg.Nodes)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			kernel, err := NewKernel(cfg.Kernel, cfg.KernelSize, cfg.Seed+uint64(i))
			if err != nil {
				errs[i] = err
				return
			}
			pipe := make(chan Sample, cfg.PipeCapacity)
			daemon := &Daemon{Policy: cfg.Policy, BatchSize: cfg.BatchSize}
			done := make(chan struct{})
			var dstats DaemonStats
			var derr error
			go func() {
				defer close(done)
				dstats, derr = daemon.Run(dest[i], pipe)
			}()
			results[i].App = runApp(kernel, pipe, cfg.SamplingPeriod, cfg.Duration)
			close(pipe)
			<-done
			if derr != nil {
				errs[i] = derr
				return
			}
			results[i].Daemon = dstats
			errs[i] = kernel.Verify()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			closeRelays(relays)
			return ClusterResult{}, err
		}
	}

	// Wait for in-flight messages (bounded).
	wantSamples := 0
	for _, nr := range results {
		wantSamples += nr.Daemon.SamplesForwarded
	}
	deadline := time.Now().Add(3 * time.Second)
	for collector.Stats().Samples < wantSamples && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	// Relays closed only after traffic has drained.
	out := ClusterResult{Nodes: results, Collector: collector.Stats()}
	for _, r := range relays {
		st := r.Stats()
		out.Relays = append(out.Relays, st)
		out.TotalRelayBusySec += st.BusySec
	}
	closeRelays(relays)
	for _, nr := range results {
		out.MeanDaemonBusySec += nr.Daemon.BusySec
	}
	out.MeanDaemonBusySec /= float64(cfg.Nodes)
	return out, nil
}

func closeRelays(relays []*Relay) {
	// Close children before parents so upstream writes drain.
	for i := len(relays) - 1; i >= 0; i-- {
		if relays[i] != nil {
			relays[i].Close()
		}
	}
}
