package testbed

import (
	"testing"
	"time"

	"rocc/internal/forward"
)

func runExp(t *testing.T, cfg ExpConfig) ExpResult {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseCfg() ExpConfig {
	return ExpConfig{
		Kernel:         "is",
		KernelSize:     1 << 12,
		Policy:         forward.CF,
		SamplingPeriod: 2 * time.Millisecond,
		Duration:       250 * time.Millisecond,
		Seed:           1,
	}
}

func TestEndToEndCF(t *testing.T) {
	res := runExp(t, baseCfg())
	if res.App.Steps == 0 {
		t.Fatal("application did no work")
	}
	if res.App.SamplesGenerated < 50 {
		t.Fatalf("only %d samples generated", res.App.SamplesGenerated)
	}
	if res.Daemon.SamplesForwarded != res.App.SamplesGenerated {
		t.Fatalf("forwarded %d of %d", res.Daemon.SamplesForwarded, res.App.SamplesGenerated)
	}
	// CF: one write per sample.
	if res.Daemon.Writes != res.Daemon.SamplesForwarded {
		t.Fatalf("CF writes %d != samples %d", res.Daemon.Writes, res.Daemon.SamplesForwarded)
	}
	if res.Collector.Samples != res.Daemon.SamplesForwarded {
		t.Fatalf("collector got %d of %d", res.Collector.Samples, res.Daemon.SamplesForwarded)
	}
	if res.Collector.MeanLatencySec <= 0 || res.Collector.MeanLatencySec > 1 {
		t.Fatalf("implausible latency %v", res.Collector.MeanLatencySec)
	}
	if res.Daemon.BusySec <= 0 {
		t.Fatal("daemon overhead not measured")
	}
}

func TestEndToEndBF(t *testing.T) {
	cfg := baseCfg()
	cfg.Policy = forward.BF
	cfg.BatchSize = 16
	res := runExp(t, cfg)
	if res.Daemon.SamplesForwarded != res.App.SamplesGenerated {
		t.Fatalf("forwarded %d of %d (flush missing?)", res.Daemon.SamplesForwarded, res.App.SamplesGenerated)
	}
	// BF: roughly samples/16 writes (+1 for the final partial flush).
	maxWrites := res.App.SamplesGenerated/16 + 2
	if res.Daemon.Writes > maxWrites {
		t.Fatalf("BF writes %d exceed %d", res.Daemon.Writes, maxWrites)
	}
	if res.Collector.Samples != res.App.SamplesGenerated {
		t.Fatalf("collector got %d of %d", res.Collector.Samples, res.App.SamplesGenerated)
	}
}

// The Section 5 headline on real execution: BF needs far fewer system
// calls than CF for the same sample stream, and its measured daemon
// overhead is lower.
func TestBFBeatsCFOnRealSyscalls(t *testing.T) {
	cf := baseCfg()
	cf.Duration = 400 * time.Millisecond
	cf.SamplingPeriod = time.Millisecond
	rcf := runExp(t, cf)

	bf := cf
	bf.Policy = forward.BF
	bf.BatchSize = 32
	rbf := runExp(t, bf)

	if rcf.Daemon.Writes < 10*rbf.Daemon.Writes {
		t.Fatalf("CF writes %d vs BF %d: batching not amortizing syscalls",
			rcf.Daemon.Writes, rbf.Daemon.Writes)
	}
	// Timing comparisons on shared CI machines are noisy; require only
	// that BF is not slower overall.
	if rbf.Daemon.BusySec > rcf.Daemon.BusySec {
		t.Logf("warning: BF busy %v > CF busy %v (noisy host?)",
			rbf.Daemon.BusySec, rcf.Daemon.BusySec)
	}
}

func TestBTKernelRunsInTestbed(t *testing.T) {
	cfg := baseCfg()
	cfg.Kernel = "bt"
	cfg.KernelSize = 6
	res := runExp(t, cfg)
	if res.App.Steps == 0 || res.App.Ops == 0 {
		t.Fatal("bt did no work")
	}
	if res.Collector.Samples == 0 {
		t.Fatal("no samples collected")
	}
}

func TestPipeBlockingWithSlowDrain(t *testing.T) {
	// A tiny pipe and rapid sampling: the app must block on sample writes
	// at least transiently (daemon still drains, so just require the
	// accounting to be present and non-negative).
	cfg := baseCfg()
	cfg.PipeCapacity = 1
	cfg.SamplingPeriod = 500 * time.Microsecond
	res := runExp(t, cfg)
	if res.App.BlockedSec < 0 {
		t.Fatal("negative blocked time")
	}
	if res.Collector.Samples == 0 {
		t.Fatal("no samples")
	}
}

func TestRunConfigErrors(t *testing.T) {
	bad := []ExpConfig{
		{},
		{Kernel: "is", Duration: time.Millisecond},                                     // no sampling period
		{Kernel: "nope", Duration: time.Millisecond, SamplingPeriod: time.Millisecond}, // bad kernel
		{Kernel: "is", Duration: time.Millisecond, SamplingPeriod: time.Millisecond,
			Policy: forward.BF}, // BF without batch size
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestNewKernel(t *testing.T) {
	for _, name := range []string{"bt", "is"} {
		k, err := NewKernel(name, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if k.Name() != name {
			t.Fatalf("kernel %s has name %s", name, k.Name())
		}
	}
	if _, err := NewKernel("xyz", 0, 1); err == nil {
		t.Fatal("unknown kernel should fail")
	}
}

func TestEncodeMessageLayout(t *testing.T) {
	now := time.Unix(0, 123456789)
	buf := encodeMessage(nil, []Sample{{GenTime: now, Seq: 7}, {GenTime: now, Seq: 8}})
	if len(buf) != 4+2*sampleWireBytes {
		t.Fatalf("message length %d", len(buf))
	}
	if buf[0] != 2 || buf[1] != 0 {
		t.Fatal("count header wrong")
	}
}

func TestCollectorRejectsOversizedMessage(t *testing.T) {
	c, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d := &Daemon{Policy: forward.CF}
	pipe := make(chan Sample, 1)
	pipe <- Sample{GenTime: time.Now()}
	close(pipe)
	if _, err := d.Run(c.Addr(), pipe); err != nil {
		t.Fatal(err)
	}
	// Allow delivery.
	deadline := time.Now().Add(time.Second)
	for c.Stats().Samples == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Stats().Samples; got != 1 {
		t.Fatalf("collector samples %d", got)
	}
}

func TestDaemonDialFailure(t *testing.T) {
	d := &Daemon{Policy: forward.CF}
	pipe := make(chan Sample)
	close(pipe)
	if _, err := d.Run("127.0.0.1:1", pipe); err == nil {
		t.Fatal("dial to closed port should fail")
	}
}
