package workload

import (
	"math"
	"testing"

	"rocc/internal/core"
	"rocc/internal/rng"
	"rocc/internal/stats"
	"rocc/internal/trace"
)

func genTrace(t *testing.T, durUS float64) []trace.Record {
	t.Helper()
	recs, err := trace.Generate(trace.GenConfig{Seed: 11, DurationUS: durUS, IncludeMainTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestCharacterizeTable1Shape(t *testing.T) {
	recs := genTrace(t, 100e6) // 100 s, like the paper's runs
	c, err := Characterize(recs)
	if err != nil {
		t.Fatal(err)
	}
	classes := c.Classes()
	if len(classes) != 5 || classes[0] != trace.ProcApplication {
		t.Fatalf("classes %v", classes)
	}
	appCPU := c.Stats[ClassResource{trace.ProcApplication, trace.CPU}]
	if appCPU.N < 1000 {
		t.Fatalf("too few app CPU requests: %d", appCPU.N)
	}
	// Table 1 row 1: mean ~2213, sd ~3034.
	if math.Abs(appCPU.Mean-2213)/2213 > 0.15 {
		t.Fatalf("app CPU mean %v", appCPU.Mean)
	}
	if math.Abs(appCPU.SD-3034)/3034 > 0.25 {
		t.Fatalf("app CPU sd %v", appCPU.SD)
	}
	pdCPU := c.Stats[ClassResource{trace.ProcPd, trace.CPU}]
	if math.Abs(pdCPU.Mean-267)/267 > 0.15 {
		t.Fatalf("pd CPU mean %v", pdCPU.Mean)
	}
}

func TestCharacterizeFitsMatchFigure8(t *testing.T) {
	recs := genTrace(t, 100e6)
	c, err := Characterize(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8a: application CPU requests are lognormal.
	appFit := c.Fits[ClassResource{trace.ProcApplication, trace.CPU}]
	if appFit.Best.Dist.Name() != "lognormal" {
		t.Fatalf("app CPU best fit %s, want lognormal", appFit.Best.Dist.Name())
	}
	if len(appFit.Candidates) != 4 {
		t.Fatalf("want 4 candidates, got %d", len(appFit.Candidates))
	}
	// Figure 8b: application network requests are exponential (the Weibull
	// family nests the exponential, so accept shape~1 Weibull too).
	netFit := c.Fits[ClassResource{trace.ProcApplication, trace.Network}]
	switch d := netFit.Best.Dist.(type) {
	case stats.ExpFit:
	case stats.WeibullFit:
		if math.Abs(d.Shape-1) > 0.1 {
			t.Fatalf("net fit weibull shape %v", d.Shape)
		}
	default:
		t.Fatalf("app net best fit %s", netFit.Best.Dist.Name())
	}
}

func TestWorkloadParamsTable2(t *testing.T) {
	recs := genTrace(t, 100e6)
	c, err := Characterize(recs)
	if err != nil {
		t.Fatal(err)
	}
	w := c.Workload()
	if math.Abs(w.AppCPU.Mean()-2213)/2213 > 0.15 {
		t.Fatalf("AppCPU mean %v", w.AppCPU.Mean())
	}
	if math.Abs(w.AppNet.Mean()-223)/223 > 0.15 {
		t.Fatalf("AppNet mean %v", w.AppNet.Mean())
	}
	if math.Abs(w.PvmInterarrival.Mean()-6485)/6485 > 0.2 {
		t.Fatalf("Pvm interarrival %v", w.PvmInterarrival.Mean())
	}
	if math.Abs(w.MainCPU.Mean()-3208)/3208 > 0.2 {
		t.Fatalf("MainCPU mean %v", w.MainCPU.Mean())
	}
	// Sampling period recovered from the Pd activity cadence.
	sp := c.SamplingPeriod()
	if math.Abs(sp-40000)/40000 > 0.1 {
		t.Fatalf("sampling period %v, want ~40000", sp)
	}
}

func TestCPUSecondsMatchesOccupancy(t *testing.T) {
	recs := []trace.Record{
		{StartUS: 0, PID: 1, Process: trace.ProcApplication, Resource: trace.CPU, DurationUS: 2e6},
		{StartUS: 3e6, PID: 1, Process: trace.ProcApplication, Resource: trace.CPU, DurationUS: 1e6},
		{StartUS: 0, PID: 2, Process: trace.ProcPd, Resource: trace.CPU, DurationUS: 5e5},
	}
	c, err := Characterize(recs)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CPUSeconds(trace.ProcApplication); math.Abs(got-3) > 1e-9 {
		t.Fatalf("app CPU seconds %v", got)
	}
	if got := c.CPUSeconds(trace.ProcPd); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("pd CPU seconds %v", got)
	}
	if c.CPUSeconds("absent") != 0 {
		t.Fatal("absent class should be 0")
	}
}

func TestCharacterizeErrors(t *testing.T) {
	if _, err := Characterize(nil); err == nil {
		t.Fatal("empty trace should fail")
	}
	bad := []trace.Record{{StartUS: 0, PID: 1, Process: "x", Resource: trace.CPU, DurationUS: -1}}
	if _, err := Characterize(bad); err == nil {
		t.Fatal("invalid record should fail")
	}
}

func TestWorkloadFallbacksForMissingClasses(t *testing.T) {
	// Trace with only an application process: all other classes fall back
	// to published Table 2 values.
	recs := []trace.Record{
		{StartUS: 0, PID: 1, Process: trace.ProcApplication, Resource: trace.CPU, DurationUS: 100},
		{StartUS: 100, PID: 1, Process: trace.ProcApplication, Resource: trace.CPU, DurationUS: 150},
		{StartUS: 300, PID: 1, Process: trace.ProcApplication, Resource: trace.CPU, DurationUS: 120},
	}
	c, err := Characterize(recs)
	if err != nil {
		t.Fatal(err)
	}
	w := c.Workload()
	if w.PvmCPU.Mean() != 294 {
		t.Fatalf("pvm fallback %v", w.PvmCPU.Mean())
	}
	if w.OtherNetInterarrival.Mean() != 5598903 {
		t.Fatalf("other net interarrival fallback %v", w.OtherNetInterarrival.Mean())
	}
	if c.SamplingPeriod() != 0 {
		t.Fatal("no Pd in trace: sampling period should be 0")
	}
}

func TestDistConversion(t *testing.T) {
	cases := []struct {
		fit  stats.Fitted
		want string
	}{
		{stats.ExpFit{MeanVal: 100}, "exponential(100)"},
		{stats.LognormalFit{Mu: 5, Sigma: 0.5}, "lognormal"},
		{stats.WeibullFit{Shape: 2, Scale: 10}, "weibull"},
	}
	for _, c := range cases {
		d := dist(c.fit)
		if d == nil {
			t.Fatal("nil dist")
		}
		if math.Abs(d.Mean()-c.fit.Mean()) > 1e-6*c.fit.Mean() {
			t.Fatalf("%s: mean %v != %v", c.want, d.Mean(), c.fit.Mean())
		}
	}
	// Unknown fitted type falls back to a constant at the mean.
	d := dist(fakeFit{})
	if _, ok := d.(rng.Constant); !ok {
		t.Fatal("unknown fit should become Constant")
	}
}

func TestEmpiricalWorkload(t *testing.T) {
	recs := genTrace(t, 50e6)
	c, err := Characterize(recs)
	if err != nil {
		t.Fatal(err)
	}
	w := c.EmpiricalWorkload()
	// Trace-driven distributions resample the observed lengths: means
	// match the raw sample means exactly.
	appCPU := c.Stats[ClassResource{trace.ProcApplication, trace.CPU}]
	if math.Abs(w.AppCPU.Mean()-appCPU.Mean) > 1e-9*appCPU.Mean {
		t.Fatalf("empirical mean %v != sample mean %v", w.AppCPU.Mean(), appCPU.Mean)
	}
	if _, ok := w.AppCPU.(rng.Empirical); !ok {
		t.Fatalf("AppCPU should be empirical, is %T", w.AppCPU)
	}
	// Empirical samples come from the observed set.
	r := rng.New(1)
	v := w.AppCPU.Sample(r)
	found := false
	for _, x := range c.Samples[ClassResource{trace.ProcApplication, trace.CPU}] {
		if x == v {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("empirical sample not in observed set")
	}
	// Missing classes fall back to fitted/published parameters.
	only := []trace.Record{
		{StartUS: 0, PID: 1, Process: trace.ProcApplication, Resource: trace.CPU, DurationUS: 5},
		{StartUS: 10, PID: 1, Process: trace.ProcApplication, Resource: trace.CPU, DurationUS: 7},
	}
	c2, err := Characterize(only)
	if err != nil {
		t.Fatal(err)
	}
	w2 := c2.EmpiricalWorkload()
	if w2.PvmCPU.Mean() != 294 {
		t.Fatalf("fallback broken: %v", w2.PvmCPU.Mean())
	}
}

func TestClusteredWorkload(t *testing.T) {
	recs := genTrace(t, 50e6)
	c, err := Characterize(recs)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.ClusteredWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.AppCPU.(rng.Mixture); !ok {
		t.Fatalf("AppCPU should be a mixture, is %T", w.AppCPU)
	}
	// The mixture mean preserves the sample mean exactly (weighted cluster
	// centers reconstruct the total).
	appCPU := c.Stats[ClassResource{trace.ProcApplication, trace.CPU}]
	if math.Abs(w.AppCPU.Mean()-appCPU.Mean) > 1e-6*appCPU.Mean {
		t.Fatalf("mixture mean %v != sample mean %v", w.AppCPU.Mean(), appCPU.Mean)
	}
	if _, err := c.ClusteredWorkload(0); err == nil {
		t.Fatal("k=0 should fail")
	}
	// Missing classes fall back.
	only := []trace.Record{
		{StartUS: 0, PID: 1, Process: trace.ProcApplication, Resource: trace.CPU, DurationUS: 5},
		{StartUS: 10, PID: 1, Process: trace.ProcApplication, Resource: trace.CPU, DurationUS: 7},
	}
	c2, err := Characterize(only)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := c2.ClusteredWorkload(4)
	if err != nil {
		t.Fatal(err)
	}
	if w2.PvmCPU.Mean() != 294 {
		t.Fatal("fallback broken")
	}
}

// Simulations under the fitted and empirical workloads must agree on the
// headline metrics within a modest tolerance — the §2.3.2 fitting step
// preserves the behavior that matters.
func TestFittedVsEmpiricalSimulation(t *testing.T) {
	recs := genTrace(t, 50e6)
	c, err := Characterize(recs)
	if err != nil {
		t.Fatal(err)
	}
	run := func(w core.Workload) core.Result {
		cfg := core.DefaultConfig()
		cfg.Nodes = 2
		cfg.Duration = 10e6
		cfg.Workload = w
		m, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.Run()
	}
	fitted := run(c.Workload())
	empirical := run(c.EmpiricalWorkload())
	if rel := math.Abs(fitted.AppCPUUtilPct-empirical.AppCPUUtilPct) / fitted.AppCPUUtilPct; rel > 0.10 {
		t.Fatalf("app util: fitted %v vs empirical %v", fitted.AppCPUUtilPct, empirical.AppCPUUtilPct)
	}
	if rel := math.Abs(fitted.PdCPUTimePerNodeSec-empirical.PdCPUTimePerNodeSec) / fitted.PdCPUTimePerNodeSec; rel > 0.25 {
		t.Fatalf("Pd time: fitted %v vs empirical %v", fitted.PdCPUTimePerNodeSec, empirical.PdCPUTimePerNodeSec)
	}
}

type fakeFit struct{}

func (fakeFit) Name() string           { return "fake" }
func (fakeFit) CDF(float64) float64    { return 0 }
func (fakeFit) InvCDF(float64) float64 { return 0 }
func (fakeFit) PDF(float64) float64    { return 0 }
func (fakeFit) Mean() float64          { return 42 }
func (fakeFit) String() string         { return "fake" }
