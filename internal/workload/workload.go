// Package workload implements the measurement-based workload
// characterization of §2.3: it consumes AIX-like occupancy traces
// (internal/trace), produces the per-process summary statistics of
// Table 1, fits candidate probability distributions by maximum likelihood
// and ranks them as in Figure 8, estimates request inter-arrival times,
// and emits the ROCC model parameterization of Table 2 as a
// core.Workload.
package workload

import (
	"errors"
	"fmt"
	"sort"

	"rocc/internal/core"
	"rocc/internal/rng"
	"rocc/internal/stats"
	"rocc/internal/trace"
)

// ClassResource keys statistics by process class and resource.
type ClassResource struct {
	Class    string
	Resource trace.Resource
}

// Characterization is the full output of the pipeline.
type Characterization struct {
	// Samples holds raw request lengths per class/resource.
	Samples map[ClassResource][]float64
	// Stats is Table 1: summary statistics per class/resource.
	Stats map[ClassResource]stats.Summary
	// Fits holds the best fitted distribution per class/resource plus all
	// candidates considered.
	Fits map[ClassResource]FitChoice
	// Interarrival is the fitted exponential mean of request inter-arrival
	// times per class/resource (microseconds).
	Interarrival map[ClassResource]float64
}

// FitChoice records the chosen distribution and the candidates it beat.
type FitChoice struct {
	Best       stats.FitResult
	Candidates []stats.FitResult
}

// Characterize runs the pipeline over a trace.
func Characterize(recs []trace.Record) (*Characterization, error) {
	if len(recs) == 0 {
		return nil, errors.New("workload: empty trace")
	}
	c := &Characterization{
		Samples:      map[ClassResource][]float64{},
		Stats:        map[ClassResource]stats.Summary{},
		Fits:         map[ClassResource]FitChoice{},
		Interarrival: map[ClassResource]float64{},
	}
	starts := map[ClassResource][]float64{}
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		key := ClassResource{Class: r.Process, Resource: r.Resource}
		c.Samples[key] = append(c.Samples[key], r.DurationUS)
		starts[key] = append(starts[key], r.StartUS)
	}
	for key, xs := range c.Samples {
		c.Stats[key] = stats.Summarize(xs)
		best, all, err := stats.FitBest(xs)
		if err != nil {
			return nil, fmt.Errorf("workload: fitting %s/%s: %w", key.Class, key.Resource, err)
		}
		c.Fits[key] = FitChoice{Best: best, Candidates: all}
		// Inter-arrival: mean gap between request start times (the paper
		// approximates all inter-arrival processes as exponential, §2.3.2).
		ts := starts[key]
		sort.Float64s(ts)
		if len(ts) > 1 {
			var gaps []float64
			for i := 1; i < len(ts); i++ {
				if g := ts[i] - ts[i-1]; g > 0 {
					gaps = append(gaps, g)
				}
			}
			if len(gaps) > 0 {
				c.Interarrival[key] = stats.MeanOf(gaps)
			}
		}
	}
	return c, nil
}

// Classes returns the process classes present, in Table 1 row order where
// known, then alphabetically.
func (c *Characterization) Classes() []string {
	seen := map[string]bool{}
	for key := range c.Stats {
		seen[key.Class] = true
	}
	var out []string
	for _, cls := range trace.Classes {
		if seen[cls] {
			out = append(out, cls)
			delete(seen, cls)
		}
	}
	var rest []string
	for cls := range seen {
		rest = append(rest, cls)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// dist converts a fitted distribution into a sampleable rng.Dist of the
// Table 2 notation.
func dist(f stats.Fitted) rng.Dist {
	switch d := f.(type) {
	case stats.ExpFit:
		return rng.Exponential{MeanVal: d.MeanVal}
	case stats.LognormalFit:
		return rng.Lognormal{MeanVal: d.Mean(), SD: d.SD()}
	case stats.WeibullFit:
		return rng.Weibull{Shape: d.Shape, Scale: d.Scale}
	case stats.GammaFit:
		return rng.GammaDist{Shape: d.Shape, Scale: d.Scale}
	}
	return rng.Constant{Value: f.Mean()}
}

// bestDist returns the fitted distribution for a class/resource, or a
// fallback when the class is absent from the trace.
func (c *Characterization) bestDist(class string, res trace.Resource, fallback rng.Dist) rng.Dist {
	if f, ok := c.Fits[ClassResource{Class: class, Resource: res}]; ok {
		return dist(f.Best.Dist)
	}
	return fallback
}

// Workload assembles a core.Workload (the Table 2 parameterization) from
// the characterization, falling back to published Table 2 values for any
// class missing from the trace.
func (c *Characterization) Workload() core.Workload {
	def := core.DefaultWorkload()
	w := core.Workload{
		AppCPU:   c.bestDist(trace.ProcApplication, trace.CPU, def.AppCPU),
		AppNet:   c.bestDist(trace.ProcApplication, trace.Network, def.AppNet),
		PvmCPU:   c.bestDist(trace.ProcPvmd, trace.CPU, def.PvmCPU),
		PvmNet:   c.bestDist(trace.ProcPvmd, trace.Network, def.PvmNet),
		OtherCPU: c.bestDist(trace.ProcOther, trace.CPU, def.OtherCPU),
		OtherNet: c.bestDist(trace.ProcOther, trace.Network, def.OtherNet),
		MainCPU:  c.bestDist(trace.ProcParadyn, trace.CPU, def.MainCPU),
	}
	w.PvmInterarrival = c.interarrivalDist(trace.ProcPvmd, trace.CPU, def.PvmInterarrival)
	w.OtherCPUInterarrival = c.interarrivalDist(trace.ProcOther, trace.CPU, def.OtherCPUInterarrival)
	w.OtherNetInterarrival = c.interarrivalDist(trace.ProcOther, trace.Network, def.OtherNetInterarrival)
	return w
}

// ClusteredWorkload assembles a core.Workload in the style of Hughes's
// cluster-based drive-workload generation (reference [13] of the paper):
// each request-length distribution becomes a k-cluster mixture of
// constants at the cluster centers, weighted by cluster populations. It
// preserves multimodality that a single fitted family can miss.
func (c *Characterization) ClusteredWorkload(k int) (core.Workload, error) {
	if k < 1 {
		return core.Workload{}, errors.New("workload: need k >= 1 clusters")
	}
	w := c.Workload() // inter-arrivals and fallbacks from the fitted path
	clustered := func(class string, res trace.Resource, fallback rng.Dist) (rng.Dist, error) {
		xs := c.Samples[ClassResource{Class: class, Resource: res}]
		if len(xs) == 0 {
			return fallback, nil
		}
		clusters, err := stats.KMeans1D(xs, k)
		if err != nil {
			return nil, err
		}
		m := rng.Mixture{}
		for _, cl := range clusters {
			m.Components = append(m.Components, rng.Constant{Value: cl.Center})
			m.Weights = append(m.Weights, float64(cl.Count))
		}
		return m, nil
	}
	fields := []struct {
		dst   *rng.Dist
		class string
		res   trace.Resource
	}{
		{&w.AppCPU, trace.ProcApplication, trace.CPU},
		{&w.AppNet, trace.ProcApplication, trace.Network},
		{&w.PvmCPU, trace.ProcPvmd, trace.CPU},
		{&w.PvmNet, trace.ProcPvmd, trace.Network},
		{&w.OtherCPU, trace.ProcOther, trace.CPU},
		{&w.OtherNet, trace.ProcOther, trace.Network},
		{&w.MainCPU, trace.ProcParadyn, trace.CPU},
	}
	for _, f := range fields {
		d, err := clustered(f.class, f.res, *f.dst)
		if err != nil {
			return core.Workload{}, err
		}
		*f.dst = d
	}
	return w, nil
}

// EmpiricalWorkload assembles a trace-driven core.Workload: request
// lengths are resampled directly from the observed trace rather than from
// fitted distributions. Comparing simulations under the fitted and
// empirical workloads quantifies how much the distribution-fitting step
// of §2.3.2 matters.
func (c *Characterization) EmpiricalWorkload() core.Workload {
	w := c.Workload() // start from fitted (covers inter-arrivals/fallbacks)
	emp := func(class string, res trace.Resource, fallback rng.Dist) rng.Dist {
		if xs := c.Samples[ClassResource{Class: class, Resource: res}]; len(xs) > 0 {
			return rng.Empirical{Values: xs}
		}
		return fallback
	}
	w.AppCPU = emp(trace.ProcApplication, trace.CPU, w.AppCPU)
	w.AppNet = emp(trace.ProcApplication, trace.Network, w.AppNet)
	w.PvmCPU = emp(trace.ProcPvmd, trace.CPU, w.PvmCPU)
	w.PvmNet = emp(trace.ProcPvmd, trace.Network, w.PvmNet)
	w.OtherCPU = emp(trace.ProcOther, trace.CPU, w.OtherCPU)
	w.OtherNet = emp(trace.ProcOther, trace.Network, w.OtherNet)
	w.MainCPU = emp(trace.ProcParadyn, trace.CPU, w.MainCPU)
	return w
}

func (c *Characterization) interarrivalDist(class string, res trace.Resource, fallback rng.Dist) rng.Dist {
	if m, ok := c.Interarrival[ClassResource{Class: class, Resource: res}]; ok && m > 0 {
		return rng.Exponential{MeanVal: m}
	}
	return fallback
}

// SamplingPeriod estimates the instrumentation sampling period from the
// Paradyn daemon's CPU request inter-arrival times; zero if absent.
func (c *Characterization) SamplingPeriod() float64 {
	return c.Interarrival[ClassResource{Class: trace.ProcPd, Resource: trace.CPU}]
}

// CPUSeconds totals the CPU occupancy of a process class in seconds — the
// quantity compared in Table 3 (measured vs simulated CPU time).
func (c *Characterization) CPUSeconds(class string) float64 {
	s, ok := c.Stats[ClassResource{Class: class, Resource: trace.CPU}]
	if !ok {
		return 0
	}
	return s.Sum / 1e6
}
