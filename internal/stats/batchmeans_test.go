package stats

import (
	"math"
	"testing"

	"rocc/internal/rng"
)

func TestBatchMeansCICoversTrueMean(t *testing.T) {
	// AR(1) series with known mean 50: batch means handles the
	// autocorrelation that a naive per-observation CI would ignore.
	r := rng.New(71)
	const n = 40000
	xs := make([]float64, n)
	prev := 0.0
	for i := range xs {
		prev = 0.8*prev + r.Normal(0, 1)
		xs[i] = 50 + prev
	}
	ci, err := BatchMeansCI(xs, 20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(50) {
		t.Fatalf("CI [%v, %v] misses true mean 50", ci.Low(), ci.High())
	}
	// Naive CI from raw observations would be far narrower than the batch
	// CI for positively correlated data.
	naive, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.HalfWidth < 2*naive.HalfWidth {
		t.Fatalf("batch CI %v not appropriately wider than naive %v", ci.HalfWidth, naive.HalfWidth)
	}
}

func TestBatchMeansErrors(t *testing.T) {
	xs := make([]float64, 10)
	if _, err := BatchMeansCI(xs, 1, 0.9); err == nil {
		t.Fatal("1 batch")
	}
	if _, err := BatchMeansCI(xs, 8, 0.9); err == nil {
		t.Fatal("too few observations")
	}
	if _, err := BatchMeansCI(make([]float64, 100), 5, 1.5); err == nil {
		t.Fatal("bad level")
	}
}

func TestLag1Autocorrelation(t *testing.T) {
	// Strongly positively correlated series.
	r := rng.New(72)
	xs := make([]float64, 10000)
	prev := 0.0
	for i := range xs {
		prev = 0.9*prev + r.Normal(0, 1)
		xs[i] = prev
	}
	rho, err := Lag1Autocorrelation(xs)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.85 || rho > 0.95 {
		t.Fatalf("AR(0.9) lag-1 autocorrelation %v", rho)
	}
	// IID series: near zero.
	for i := range xs {
		xs[i] = r.Normal(0, 1)
	}
	rho, err = Lag1Autocorrelation(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho) > 0.05 {
		t.Fatalf("iid lag-1 autocorrelation %v", rho)
	}
	// Constant series: zero by convention.
	rho, err = Lag1Autocorrelation([]float64{3, 3, 3, 3})
	if err != nil || rho != 0 {
		t.Fatalf("constant series: %v, %v", rho, err)
	}
	if _, err := Lag1Autocorrelation([]float64{1, 2}); err == nil {
		t.Fatal("too short")
	}
}
