package stats

import (
	"errors"
	"math"
	"sort"
)

// KSStatistic returns the two-sided Kolmogorov-Smirnov statistic D_n, the
// maximum absolute distance between the empirical CDF of xs and the
// theoretical CDF. Smaller is a better fit.
func KSStatistic(xs []float64, cdf func(float64) float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		dPlus := (float64(i)+1)/n - f
		dMinus := f - float64(i)/n
		if dPlus > d {
			d = dPlus
		}
		if dMinus > d {
			d = dMinus
		}
	}
	return d
}

// KSCriticalValue returns the approximate critical value of the K-S
// statistic for sample size n at significance alpha (two-sided), using the
// asymptotic c(alpha)/sqrt(n) form. Supported alphas: 0.10, 0.05, 0.01.
func KSCriticalValue(n int, alpha float64) (float64, error) {
	if n <= 0 {
		return 0, ErrEmptySample
	}
	var c float64
	switch alpha {
	case 0.10:
		c = 1.224
	case 0.05:
		c = 1.358
	case 0.01:
		c = 1.628
	default:
		return 0, errors.New("stats: unsupported K-S alpha (use 0.10, 0.05, or 0.01)")
	}
	return c / math.Sqrt(float64(n)), nil
}

// ChiSquareGOF performs a chi-square goodness-of-fit test by binning xs
// into equal-probability cells of the theoretical distribution (Law &
// Kelton's recommended construction). It returns the test statistic and its
// degrees of freedom (cells - 1 - paramsEstimated).
func ChiSquareGOF(xs []float64, invCDF func(float64) float64, cells, paramsEstimated int) (stat float64, df int, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmptySample
	}
	if cells < 2 {
		return 0, 0, errors.New("stats: chi-square needs at least 2 cells")
	}
	expected := float64(len(xs)) / float64(cells)
	// Cell boundaries at equal-probability quantiles.
	bounds := make([]float64, cells-1)
	for i := range bounds {
		bounds[i] = invCDF(float64(i+1) / float64(cells))
	}
	counts := make([]int, cells)
	for _, x := range xs {
		i := sort.SearchFloat64s(bounds, x)
		counts[i]++
	}
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	df = cells - 1 - paramsEstimated
	if df < 1 {
		df = 1
	}
	return stat, df, nil
}

// ChiSquareCritical returns an approximate upper critical value of the
// chi-square distribution with df degrees of freedom at significance alpha,
// via the Wilson-Hilferty normal approximation.
func ChiSquareCritical(df int, alpha float64) float64 {
	if df <= 0 {
		return 0
	}
	z := NormalInvCDF(1 - alpha)
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}
