package stats

import (
	"errors"
	"sort"
)

// Cluster is one cluster of a one-dimensional k-means partition.
type Cluster struct {
	Center float64
	Count  int
	// Low and High bound the member values.
	Low, High float64
}

// KMeans1D partitions xs into k clusters with Lloyd's algorithm,
// deterministically seeded at equally spaced sample quantiles — the
// cluster-based workload characterization of Hughes [13], used to build
// drive workloads from measured request lengths. Clusters are returned in
// increasing center order; empty clusters are dropped.
func KMeans1D(xs []float64, k int) ([]Cluster, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	if k < 1 {
		return nil, errors.New("stats: k must be >= 1")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if k > len(sorted) {
		k = len(sorted)
	}

	centers := make([]float64, k)
	for i := range centers {
		q := (float64(i) + 0.5) / float64(k)
		centers[i] = sorted[int(q*float64(len(sorted)-1))]
	}

	assign := make([]int, len(sorted))
	for iter := 0; iter < 200; iter++ {
		// Assignment: for sorted data and sorted centers, boundaries are
		// midpoints between adjacent centers.
		changed := false
		ci := 0
		for i, x := range sorted {
			for ci < k-1 && x > (centers[ci]+centers[ci+1])/2 {
				ci++
			}
			if assign[i] != ci {
				assign[i] = ci
				changed = true
			}
		}
		// Update.
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, x := range sorted {
			sums[assign[i]] += x
			counts[assign[i]]++
		}
		for i := range centers {
			if counts[i] > 0 {
				centers[i] = sums[i] / float64(counts[i])
			}
		}
		sort.Float64s(centers)
		if !changed && iter > 0 {
			break
		}
	}

	out := make([]Cluster, 0, k)
	for ci := 0; ci < k; ci++ {
		var c Cluster
		first := true
		for i, x := range sorted {
			if assign[i] != ci {
				continue
			}
			if first {
				c.Low, c.High = x, x
				first = false
			}
			c.Center += x
			c.Count++
			if x < c.Low {
				c.Low = x
			}
			if x > c.High {
				c.High = x
			}
		}
		if c.Count > 0 {
			c.Center /= float64(c.Count)
			out = append(out, c)
		}
	}
	return out, nil
}

// WithinClusterSS returns the total within-cluster sum of squares of a
// partition applied to xs — the elbow-curve quantity used to pick k.
func WithinClusterSS(xs []float64, clusters []Cluster) float64 {
	ss := 0.0
	for _, x := range xs {
		best := 0.0
		for i, c := range clusters {
			d := (x - c.Center) * (x - c.Center)
			if i == 0 || d < best {
				best = d
			}
		}
		ss += best
	}
	return ss
}
