package stats

import (
	"errors"
	"math"
)

// BatchMeansCI estimates a confidence interval for the steady-state mean
// of a single long simulation run using the method of batch means (Law &
// Kelton §9.5.3): the observation series is split into nbatches
// contiguous batches, whose means are treated as approximately
// independent replicates. Complements the independent-replications CIs
// used by the factorial experiments.
func BatchMeansCI(xs []float64, nbatches int, level float64) (ConfidenceInterval, error) {
	if nbatches < 2 {
		return ConfidenceInterval{}, errors.New("stats: batch means needs >= 2 batches")
	}
	if len(xs) < 2*nbatches {
		return ConfidenceInterval{}, errors.New("stats: too few observations for batch count")
	}
	if level <= 0 || level >= 1 {
		return ConfidenceInterval{}, errors.New("stats: confidence level must be in (0,1)")
	}
	batchSize := len(xs) / nbatches
	means := make([]float64, nbatches)
	for b := 0; b < nbatches; b++ {
		sum := 0.0
		for i := b * batchSize; i < (b+1)*batchSize; i++ {
			sum += xs[i]
		}
		means[b] = sum / float64(batchSize)
	}
	return MeanCI(means, level)
}

// Lag1Autocorrelation returns the lag-1 autocorrelation of xs, the usual
// diagnostic for whether batches are large enough (batch means should
// have low lag-1 correlation).
func Lag1Autocorrelation(xs []float64) (float64, error) {
	if len(xs) < 3 {
		return 0, errors.New("stats: need at least 3 observations")
	}
	mean := MeanOf(xs)
	var num, den float64
	for i := 0; i < len(xs); i++ {
		d := xs[i] - mean
		den += d * d
		if i > 0 {
			num += d * (xs[i-1] - mean)
		}
	}
	if den == 0 {
		return 0, nil
	}
	r := num / den
	if math.IsNaN(r) {
		return 0, errors.New("stats: autocorrelation undefined")
	}
	return r, nil
}
