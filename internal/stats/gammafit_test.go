package stats

import (
	"math"
	"testing"

	"rocc/internal/rng"
)

func TestGammaVariateMoments(t *testing.T) {
	r := rng.New(31)
	for _, c := range []struct{ shape, scale float64 }{
		{0.5, 200}, {1, 100}, {2.5, 80}, {9, 30},
	} {
		var sum, sum2 float64
		const n = 100000
		for i := 0; i < n; i++ {
			v := r.Gamma(c.shape, c.scale)
			if v <= 0 {
				t.Fatalf("non-positive gamma variate %v", v)
			}
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean)/wantMean > 0.03 {
			t.Errorf("gamma(%v,%v) mean %v, want %v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.08 {
			t.Errorf("gamma(%v,%v) var %v, want %v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaDistInterface(t *testing.T) {
	g := rng.GammaDist{Shape: 2, Scale: 50}
	if g.Mean() != 100 {
		t.Fatal("mean")
	}
	if g.String() == "" {
		t.Fatal("string")
	}
	if v := g.Sample(rng.New(1)); v <= 0 {
		t.Fatal("sample")
	}
}

func TestFitGammaRecovers(t *testing.T) {
	r := rng.New(32)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Gamma(2.5, 120)
	}
	fit, err := FitGamma(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape-2.5)/2.5 > 0.05 {
		t.Fatalf("shape %v, want ~2.5", fit.Shape)
	}
	if math.Abs(fit.Scale-120)/120 > 0.05 {
		t.Fatalf("scale %v, want ~120", fit.Scale)
	}
	if fit.Name() != "gamma" || fit.String() == "" {
		t.Fatal("metadata")
	}
}

func TestFitGammaErrors(t *testing.T) {
	if _, err := FitGamma(nil); err == nil {
		t.Fatal("empty")
	}
	if _, err := FitGamma([]float64{1, -1}); err == nil {
		t.Fatal("non-positive data")
	}
	// Nearly constant data: degenerate high-shape fit, no error.
	fit, err := FitGamma([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mean()-5) > 1e-6 {
		t.Fatalf("degenerate mean %v", fit.Mean())
	}
}

func TestGammaCDFKnownValues(t *testing.T) {
	// Gamma(1, 1) is Exp(1): CDF(x) = 1 - e^-x.
	g := GammaFit{Shape: 1, Scale: 1}
	for _, x := range []float64{0.1, 0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := g.CDF(x); math.Abs(got-want) > 1e-10 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
	// Gamma(k, theta) at the mean for large k approaches 0.5.
	big := GammaFit{Shape: 400, Scale: 1}
	if got := big.CDF(400); math.Abs(got-0.5) > 0.02 {
		t.Errorf("large-shape median CDF %v", got)
	}
	if g.CDF(-1) != 0 || g.PDF(-1) != 0 {
		t.Error("negative support")
	}
}

func TestGammaInvCDFRoundTrip(t *testing.T) {
	g := GammaFit{Shape: 2.5, Scale: 120}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := g.InvCDF(p)
		if got := g.CDF(x); math.Abs(got-p) > 1e-8 {
			t.Errorf("round trip p=%v: got %v", p, got)
		}
	}
	if g.InvCDF(0) != 0 || !math.IsInf(g.InvCDF(1), 1) {
		t.Error("boundary quantiles")
	}
}

func TestGammaPDFIntegratesToCDF(t *testing.T) {
	g := GammaFit{Shape: 3, Scale: 10}
	upper := g.InvCDF(0.9)
	const steps = 20000
	h := upper / steps
	integral := 0.0
	for i := 0; i < steps; i++ {
		a, b := float64(i)*h, float64(i+1)*h
		integral += (g.PDF(a) + g.PDF(b)) / 2 * h
	}
	if math.Abs(integral-0.9) > 1e-3 {
		t.Fatalf("pdf integral to q90 = %v", integral)
	}
}

func TestDigammaTrigamma(t *testing.T) {
	// psi(1) = -gamma (Euler-Mascheroni).
	if got := digamma(1); math.Abs(got+0.5772156649015329) > 1e-10 {
		t.Fatalf("digamma(1) = %v", got)
	}
	// psi(2) = 1 - gamma.
	if got := digamma(2); math.Abs(got-(1-0.5772156649015329)) > 1e-10 {
		t.Fatalf("digamma(2) = %v", got)
	}
	// psi'(1) = pi^2/6.
	if got := trigamma(1); math.Abs(got-math.Pi*math.Pi/6) > 1e-10 {
		t.Fatalf("trigamma(1) = %v", got)
	}
}

func TestFitBestIncludesGamma(t *testing.T) {
	r := rng.New(33)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Gamma(4, 50) // distinctly non-exponential, non-lognormal
	}
	best, all, err := FitBest(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("want 4 candidates, got %d", len(all))
	}
	// Gamma data: the gamma fit should win or essentially tie (Weibull can
	// come close); require gamma to be within 1.5x of the winner's KS.
	var gammaKS float64
	for _, f := range all {
		if f.Dist.Name() == "gamma" {
			gammaKS = f.KS
		}
	}
	if gammaKS == 0 {
		t.Fatal("gamma candidate missing")
	}
	if gammaKS > 1.5*best.KS {
		t.Fatalf("gamma KS %v far from best %v (%s)", gammaKS, best.KS, best.Dist.Name())
	}
}
