package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"rocc/internal/rng"
)

func p2Estimate(t *testing.T, p float64, xs []float64) float64 {
	t.Helper()
	e, err := NewP2Quantile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		e.Add(x)
	}
	if e.N() != len(xs) {
		t.Fatalf("N = %d", e.N())
	}
	return e.Value()
}

func TestP2AgainstExactQuantiles(t *testing.T) {
	r := rng.New(81)
	const n = 100000
	for _, dist := range []struct {
		name string
		gen  func() float64
	}{
		{"normal", func() float64 { return r.Normal(100, 15) }},
		{"exponential", func() float64 { return r.Exp(50) }},
		{"lognormal", func() float64 { return r.Lognormal(2213, 3034) }},
	} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = dist.gen()
		}
		for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
			got := p2Estimate(t, p, xs)
			want, err := Quantile(xs, p)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(got-want) / (math.Abs(want) + 1); rel > 0.05 {
				t.Errorf("%s q%.2f: P2 %v vs exact %v (%.1f%% off)",
					dist.name, p, got, want, rel*100)
			}
		}
	}
}

func TestP2SmallSamples(t *testing.T) {
	e, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Value() != 0 {
		t.Fatal("empty stream should be 0")
	}
	for _, x := range []float64{3, 1, 2} {
		e.Add(x)
	}
	if got := e.Value(); got != 2 {
		t.Fatalf("median of {1,2,3} = %v", got)
	}
}

func TestP2Errors(t *testing.T) {
	if _, err := NewP2Quantile(0); err == nil {
		t.Fatal("p=0")
	}
	if _, err := NewP2Quantile(1); err == nil {
		t.Fatal("p=1")
	}
}

// Property: the P2 estimate is always within the observed range and
// non-decreasing in p for the same data.
func TestQuickP2Bounded(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16)%2000 + 10
		r := rng.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Exp(100)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := -math.MaxFloat64
		for _, p := range []float64{0.25, 0.5, 0.75, 0.95} {
			e, err := NewP2Quantile(p)
			if err != nil {
				return false
			}
			for _, x := range xs {
				e.Add(x)
			}
			v := e.Value()
			if v < sorted[0]-1e-9 || v > sorted[len(sorted)-1]+1e-9 {
				return false
			}
			// Allow tiny non-monotonicity from independent estimators.
			if v < prev-0.05*(sorted[len(sorted)-1]-sorted[0]) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
