package stats

import (
	"errors"
	"math"
)

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalInvCDF is the standard normal quantile function (Acklam's rational
// approximation, relative error < 1.15e-9). p must lie in (0, 1).
func NormalInvCDF(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One step of Halley refinement for full double precision.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// TInvCDF returns the quantile of Student's t distribution with df degrees
// of freedom at probability p, using the Cornish-Fisher expansion around
// the normal quantile (accurate to ~1e-4 for df >= 3, ample for
// confidence-interval construction).
func TInvCDF(p float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df == 1 {
		return math.Tan(math.Pi * (p - 0.5))
	}
	if df == 2 {
		a := 2*p - 1
		return a * math.Sqrt(2/(1-a*a))
	}
	z := NormalInvCDF(p)
	n := float64(df)
	z3, z5, z7 := z*z*z, math.Pow(z, 5), math.Pow(z, 7)
	g1 := (z3 + z) / 4
	g2 := (5*z5 + 16*z3 + 3*z) / 96
	g3 := (3*z7 + 19*z5 + 17*z3 - 15*z) / 384
	return z + g1/n + g2/(n*n) + g3/(n*n*n)
}

// ConfidenceInterval is a two-sided interval around a sample mean.
type ConfidenceInterval struct {
	Mean      float64
	HalfWidth float64
	Level     float64 // e.g. 0.90
}

// Low returns the lower bound of the interval.
func (ci ConfidenceInterval) Low() float64 { return ci.Mean - ci.HalfWidth }

// High returns the upper bound of the interval.
func (ci ConfidenceInterval) High() float64 { return ci.Mean + ci.HalfWidth }

// Contains reports whether v lies within the interval.
func (ci ConfidenceInterval) Contains(v float64) bool {
	return v >= ci.Low() && v <= ci.High()
}

// MeanCI builds a Student-t confidence interval for the mean of xs at the
// given two-sided level (e.g. 0.90 for the paper's 90% intervals over r=50
// replications). It needs at least two observations.
func MeanCI(xs []float64, level float64) (ConfidenceInterval, error) {
	if len(xs) < 2 {
		return ConfidenceInterval{}, errors.New("stats: confidence interval needs n >= 2")
	}
	if level <= 0 || level >= 1 {
		return ConfidenceInterval{}, errors.New("stats: confidence level must be in (0,1)")
	}
	s := Summarize(xs)
	t := TInvCDF(0.5+level/2, s.N-1)
	return ConfidenceInterval{
		Mean:      s.Mean,
		HalfWidth: t * s.SD / math.Sqrt(float64(s.N)),
		Level:     level,
	}, nil
}
