package stats

import (
	"math"
	"testing"

	"rocc/internal/rng"
)

func sampleFrom(seed uint64, n int, f func(r *rng.Stream) float64) []float64 {
	r := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = f(r)
	}
	return xs
}

func TestFitExponentialRecovers(t *testing.T) {
	xs := sampleFrom(1, 50000, func(r *rng.Stream) float64 { return r.Exp(223) })
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.MeanVal-223)/223 > 0.02 {
		t.Fatalf("fitted mean %v, want ~223", fit.MeanVal)
	}
	if fit.Name() != "exponential" || fit.String() == "" {
		t.Fatal("metadata wrong")
	}
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential(nil); err == nil {
		t.Fatal("want error on empty")
	}
	if _, err := FitExponential([]float64{-1, -2}); err == nil {
		t.Fatal("want error on non-positive mean")
	}
}

func TestFitLognormalRecovers(t *testing.T) {
	// Application CPU requests from Table 2: lognormal(2213, 3034).
	xs := sampleFrom(2, 50000, func(r *rng.Stream) float64 { return r.Lognormal(2213, 3034) })
	fit, err := FitLognormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mean()-2213)/2213 > 0.03 {
		t.Fatalf("fitted mean %v, want ~2213", fit.Mean())
	}
	if math.Abs(fit.SD()-3034)/3034 > 0.06 {
		t.Fatalf("fitted sd %v, want ~3034", fit.SD())
	}
}

func TestFitLognormalErrors(t *testing.T) {
	if _, err := FitLognormal(nil); err == nil {
		t.Fatal("want error on empty")
	}
	if _, err := FitLognormal([]float64{1, 0}); err == nil {
		t.Fatal("want error on non-positive data")
	}
	// Degenerate one-point sample should still produce a usable fit.
	fit, err := FitLognormal([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(fit.CDF(5)) {
		t.Fatal("degenerate fit has NaN CDF")
	}
}

func TestFitWeibullRecovers(t *testing.T) {
	xs := sampleFrom(3, 50000, func(r *rng.Stream) float64 { return r.Weibull(1.7, 400) })
	fit, err := FitWeibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape-1.7)/1.7 > 0.03 {
		t.Fatalf("fitted shape %v, want ~1.7", fit.Shape)
	}
	if math.Abs(fit.Scale-400)/400 > 0.03 {
		t.Fatalf("fitted scale %v, want ~400", fit.Scale)
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull(nil); err == nil {
		t.Fatal("want error on empty")
	}
	if _, err := FitWeibull([]float64{1, -1}); err == nil {
		t.Fatal("want error on non-positive data")
	}
}

func TestCDFInvCDFRoundTrips(t *testing.T) {
	fits := []Fitted{
		ExpFit{MeanVal: 223},
		LognormalFit{Mu: 7, Sigma: 0.9},
		WeibullFit{Shape: 1.5, Scale: 300},
	}
	for _, f := range fits {
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			x := f.InvCDF(p)
			if got := f.CDF(x); math.Abs(got-p) > 1e-6 {
				t.Errorf("%s: CDF(InvCDF(%v)) = %v", f.Name(), p, got)
			}
		}
		if f.CDF(-1) != 0 || f.PDF(-1) != 0 {
			t.Errorf("%s: negative support should be zero", f.Name())
		}
	}
}

func TestPDFIntegratesToCDF(t *testing.T) {
	// Trapezoidal integral of the PDF should approximate the CDF.
	fits := []Fitted{
		ExpFit{MeanVal: 100},
		LognormalFit{Mu: 4, Sigma: 0.5},
		WeibullFit{Shape: 2, Scale: 100},
	}
	for _, f := range fits {
		upper := f.InvCDF(0.9)
		const steps = 20000
		h := upper / steps
		integral := 0.0
		for i := 0; i < steps; i++ {
			a, b := float64(i)*h, float64(i+1)*h
			integral += (f.PDF(a) + f.PDF(b)) / 2 * h
		}
		if math.Abs(integral-0.9) > 1e-3 {
			t.Errorf("%s: integral of pdf to q90 = %v, want 0.9", f.Name(), integral)
		}
	}
}

func TestFitBestSelectsCorrectFamily(t *testing.T) {
	// Figure 8a: application CPU requests are best matched by lognormal.
	cpu := sampleFrom(4, 20000, func(r *rng.Stream) float64 { return r.Lognormal(2213, 3034) })
	best, all, err := FitBest(cpu)
	if err != nil {
		t.Fatal(err)
	}
	if best.Dist.Name() != "lognormal" {
		t.Fatalf("best fit for lognormal data is %s (KS=%v)", best.Dist.Name(), best.KS)
	}
	if len(all) != 4 {
		t.Fatalf("expected 4 candidates, got %d", len(all))
	}

	// Figure 8b: application network requests are best matched by exponential.
	// Note the Weibull family contains the exponential (shape=1), so the
	// Weibull MLE can tie or marginally beat it; accept either but require
	// an exponential-like fit.
	net := sampleFrom(5, 20000, func(r *rng.Stream) float64 { return r.Exp(223) })
	best, _, err = FitBest(net)
	if err != nil {
		t.Fatal(err)
	}
	switch d := best.Dist.(type) {
	case ExpFit:
		// fine
	case WeibullFit:
		if math.Abs(d.Shape-1) > 0.05 {
			t.Fatalf("weibull fit to exponential data has shape %v", d.Shape)
		}
	default:
		t.Fatalf("best fit for exponential data is %s", best.Dist.Name())
	}
}

func TestFitBestEmpty(t *testing.T) {
	if _, _, err := FitBest(nil); err == nil {
		t.Fatal("want error on empty sample")
	}
}

func TestQQCorrelationNearOneForGoodFit(t *testing.T) {
	xs := sampleFrom(6, 5000, func(r *rng.Stream) float64 { return r.Exp(100) })
	fit, _ := FitExponential(xs)
	qq, err := QQSeries(xs, fit.InvCDF)
	if err != nil {
		t.Fatal(err)
	}
	if r := QQCorrelation(qq); r < 0.995 {
		t.Fatalf("QQ correlation %v for matching family", r)
	}
}
