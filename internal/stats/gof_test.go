package stats

import (
	"math"
	"testing"

	"rocc/internal/rng"
)

func TestKSStatisticSmallForTrueDistribution(t *testing.T) {
	xs := sampleFrom(10, 10000, func(r *rng.Stream) float64 { return r.Exp(50) })
	fit := ExpFit{MeanVal: 50}
	d := KSStatistic(xs, fit.CDF)
	crit, err := KSCriticalValue(len(xs), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d > crit {
		t.Fatalf("KS %v exceeds 1%% critical value %v for true distribution", d, crit)
	}
}

func TestKSStatisticLargeForWrongDistribution(t *testing.T) {
	xs := sampleFrom(11, 10000, func(r *rng.Stream) float64 { return r.Lognormal(100, 300) })
	fit := ExpFit{MeanVal: 100}
	d := KSStatistic(xs, fit.CDF)
	crit, _ := KSCriticalValue(len(xs), 0.01)
	if d < crit {
		t.Fatalf("KS %v did not reject badly wrong distribution (crit %v)", d, crit)
	}
}

func TestKSEdgeCases(t *testing.T) {
	if KSStatistic(nil, func(float64) float64 { return 0 }) != 0 {
		t.Fatal("empty sample should give 0")
	}
	if _, err := KSCriticalValue(0, 0.05); err == nil {
		t.Fatal("want error for n=0")
	}
	if _, err := KSCriticalValue(10, 0.123); err == nil {
		t.Fatal("want error for unsupported alpha")
	}
}

func TestChiSquareGOFAcceptsTrueDistribution(t *testing.T) {
	xs := sampleFrom(12, 20000, func(r *rng.Stream) float64 { return r.Weibull(1.5, 200) })
	fit := WeibullFit{Shape: 1.5, Scale: 200}
	stat, df, err := ChiSquareGOF(xs, fit.InvCDF, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if crit := ChiSquareCritical(df, 0.01); stat > crit {
		t.Fatalf("chi-square %v (df %d) exceeds crit %v for true distribution", stat, df, crit)
	}
}

func TestChiSquareGOFRejectsWrongDistribution(t *testing.T) {
	xs := sampleFrom(13, 20000, func(r *rng.Stream) float64 { return r.Lognormal(100, 300) })
	fit := ExpFit{MeanVal: 100}
	stat, df, err := ChiSquareGOF(xs, fit.InvCDF, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if crit := ChiSquareCritical(df, 0.01); stat < crit {
		t.Fatalf("chi-square %v (df %d) failed to reject (crit %v)", stat, df, crit)
	}
}

func TestChiSquareErrors(t *testing.T) {
	inv := ExpFit{MeanVal: 1}.InvCDF
	if _, _, err := ChiSquareGOF(nil, inv, 10, 0); err == nil {
		t.Fatal("want error on empty")
	}
	if _, _, err := ChiSquareGOF([]float64{1}, inv, 1, 0); err == nil {
		t.Fatal("want error on one cell")
	}
	// df floor at 1.
	_, df, err := ChiSquareGOF([]float64{1, 2, 3}, inv, 2, 5)
	if err != nil || df != 1 {
		t.Fatalf("df floor: %d, %v", df, err)
	}
}

func TestChiSquareCriticalReasonable(t *testing.T) {
	// Known value: chi2(0.05, 10) = 18.307.
	if got := ChiSquareCritical(10, 0.05); math.Abs(got-18.307) > 0.1 {
		t.Fatalf("chi2 crit(10, .05) = %v, want ~18.307", got)
	}
	if ChiSquareCritical(0, 0.05) != 0 {
		t.Fatal("df=0 should give 0")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.6448536269514722, 0.95},
		{-1.6448536269514722, 0.05},
		{1.959963984540054, 0.975},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalInvCDFRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-6, 0.001, 0.025, 0.05, 0.3, 0.5, 0.7, 0.95, 0.999, 1 - 1e-6} {
		z := NormalInvCDF(p)
		if got := NormalCDF(z); math.Abs(got-p) > 1e-9 {
			t.Errorf("round trip p=%v: got %v", p, got)
		}
	}
	if !math.IsInf(NormalInvCDF(0), -1) || !math.IsInf(NormalInvCDF(1), 1) {
		t.Fatal("boundary quantiles should be infinite")
	}
}

func TestTInvCDFKnownValues(t *testing.T) {
	// Standard t-table values (two-sided 90% -> p = 0.95).
	cases := []struct {
		p    float64
		df   int
		want float64
		tol  float64
	}{
		{0.95, 1, 6.3138, 1e-3},
		{0.95, 2, 2.9200, 1e-3},
		{0.95, 5, 2.0150, 5e-3},
		{0.95, 10, 1.8125, 2e-3},
		{0.95, 49, 1.6766, 1e-3}, // the paper's r=50 experiments
		{0.975, 30, 2.0423, 2e-3},
	}
	for _, c := range cases {
		if got := TInvCDF(c.p, c.df); math.Abs(got-c.want) > c.tol {
			t.Errorf("t(%v, df=%d) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
	if !math.IsNaN(TInvCDF(0.95, 0)) {
		t.Fatal("df=0 should be NaN")
	}
}

func TestMeanCI(t *testing.T) {
	xs := sampleFrom(14, 50, func(r *rng.Stream) float64 { return r.Normal(100, 10) })
	ci, err := MeanCI(xs, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(100) {
		// A 90% CI can miss, but with this seed it should not; treat as regression.
		t.Fatalf("CI [%v, %v] misses true mean 100", ci.Low(), ci.High())
	}
	if ci.HalfWidth <= 0 {
		t.Fatal("nonpositive half-width")
	}
	if _, err := MeanCI([]float64{1}, 0.9); err == nil {
		t.Fatal("want error for n<2")
	}
	if _, err := MeanCI(xs, 1.5); err == nil {
		t.Fatal("want error for bad level")
	}
}

func TestMeanCICoverage(t *testing.T) {
	// Across many replications, the 90% CI should cover the true mean
	// roughly 90% of the time.
	master := rng.New(99)
	hits := 0
	const reps = 2000
	for i := 0; i < reps; i++ {
		r := master.Derive(uint64(i))
		xs := make([]float64, 20)
		for j := range xs {
			xs[j] = r.Normal(5, 2)
		}
		ci, err := MeanCI(xs, 0.90)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(5) {
			hits++
		}
	}
	cover := float64(hits) / reps
	if cover < 0.87 || cover > 0.93 {
		t.Fatalf("90%% CI empirical coverage = %v", cover)
	}
}

func TestHistogramBasics(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.6, 2.5, 3.5, -1, 10}
	h, err := NewHistogram(xs, 0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 7 || h.Under != 1 || h.Over != 1 {
		t.Fatalf("totals %d/%d/%d", h.Total, h.Under, h.Over)
	}
	want := []int{1, 2, 1, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bin %d = %d, want %d", i, c, want[i])
		}
	}
	centers := h.BinCenters()
	if centers[0] != 0.5 || centers[3] != 3.5 {
		t.Fatalf("centers %v", centers)
	}
	// Density integrates to in-range fraction.
	fs := h.RelativeFrequencies()
	integral := 0.0
	for _, f := range fs {
		integral += f * h.Width
	}
	if math.Abs(integral-5.0/7) > 1e-12 {
		t.Fatalf("density integral %v", integral)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Fatal("want error for 0 bins")
	}
	if _, err := NewHistogram(nil, 1, 1, 3); err == nil {
		t.Fatal("want error for empty range")
	}
	if _, err := AutoHistogram(nil); err == nil {
		t.Fatal("want error for empty sample")
	}
}

func TestAutoHistogramCoversSample(t *testing.T) {
	xs := sampleFrom(15, 1000, func(r *rng.Stream) float64 { return r.Exp(10) })
	h, err := AutoHistogram(xs)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 0 || h.Over != 0 {
		t.Fatalf("auto histogram dropped %d+%d observations", h.Under, h.Over)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != len(xs) {
		t.Fatalf("binned %d of %d", sum, len(xs))
	}
}

func TestAutoHistogramConstantSample(t *testing.T) {
	h, err := AutoHistogram([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 4 {
		t.Fatalf("constant sample binned %d of 4", sum)
	}
}

func TestECDF(t *testing.T) {
	f, err := ECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := f(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if _, err := ECDF(nil); err == nil {
		t.Fatal("want error on empty")
	}
}

func TestQQSeriesEmpty(t *testing.T) {
	if _, err := QQSeries(nil, func(p float64) float64 { return p }); err == nil {
		t.Fatal("want error on empty")
	}
	if QQCorrelation(nil) != 0 {
		t.Fatal("correlation of empty should be 0")
	}
	if QQCorrelation([]QQPoint{{1, 1}, {1, 2}}) != 0 {
		t.Fatal("degenerate x-variance should give 0")
	}
}
