package stats

import (
	"errors"
	"fmt"
	"math"
)

// Fitted is a continuous distribution fitted to data, exposing what the
// goodness-of-fit machinery and Q-Q plots need.
type Fitted interface {
	// Name identifies the family ("exponential", "lognormal", "weibull").
	Name() string
	// CDF evaluates the cumulative distribution function.
	CDF(x float64) float64
	// InvCDF evaluates the quantile function for p in (0, 1).
	InvCDF(p float64) float64
	// PDF evaluates the density.
	PDF(x float64) float64
	// Mean returns the distribution mean.
	Mean() float64
	// String renders the fitted parameters.
	String() string
}

// ExpFit is an exponential distribution fitted by maximum likelihood
// (the MLE of the mean is the sample mean, Law & Kelton §6.5).
type ExpFit struct{ MeanVal float64 }

// FitExponential fits an exponential distribution to xs by MLE.
func FitExponential(xs []float64) (ExpFit, error) {
	if len(xs) == 0 {
		return ExpFit{}, ErrEmptySample
	}
	m := MeanOf(xs)
	if m <= 0 {
		return ExpFit{}, errors.New("stats: exponential fit needs positive mean")
	}
	return ExpFit{MeanVal: m}, nil
}

// Name implements Fitted.
func (e ExpFit) Name() string { return "exponential" }

// CDF implements Fitted.
func (e ExpFit) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-x/e.MeanVal)
}

// InvCDF implements Fitted.
func (e ExpFit) InvCDF(p float64) float64 { return -e.MeanVal * math.Log(1-p) }

// PDF implements Fitted.
func (e ExpFit) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Exp(-x/e.MeanVal) / e.MeanVal
}

// Mean implements Fitted.
func (e ExpFit) Mean() float64 { return e.MeanVal }

func (e ExpFit) String() string { return fmt.Sprintf("exponential(%.4g)", e.MeanVal) }

// LognormalFit is a lognormal distribution with underlying normal
// parameters Mu and Sigma, fitted by MLE on the logs.
type LognormalFit struct{ Mu, Sigma float64 }

// FitLognormal fits a lognormal distribution by MLE: Mu and Sigma are the
// mean and standard deviation of ln(x). All observations must be positive.
func FitLognormal(xs []float64) (LognormalFit, error) {
	if len(xs) == 0 {
		return LognormalFit{}, ErrEmptySample
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LognormalFit{}, errors.New("stats: lognormal fit needs positive data")
		}
		logs[i] = math.Log(x)
	}
	s := Summarize(logs)
	// MLE uses the n-denominator variance of the logs.
	sigma := s.SD
	if s.N > 1 {
		sigma = s.SD * math.Sqrt(float64(s.N-1)/float64(s.N))
	}
	if sigma == 0 {
		sigma = 1e-12 // degenerate one-point sample; keep CDF well defined
	}
	return LognormalFit{Mu: s.Mean, Sigma: sigma}, nil
}

// Name implements Fitted.
func (l LognormalFit) Name() string { return "lognormal" }

// CDF implements Fitted.
func (l LognormalFit) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// InvCDF implements Fitted.
func (l LognormalFit) InvCDF(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*NormalInvCDF(p))
}

// PDF implements Fitted.
func (l LognormalFit) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// Mean implements Fitted.
func (l LognormalFit) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// SD returns the standard deviation of the fitted lognormal variate, the
// second parameter of the "lognormal(a, b)" notation in Table 2.
func (l LognormalFit) SD() float64 {
	v := (math.Exp(l.Sigma*l.Sigma) - 1) * math.Exp(2*l.Mu+l.Sigma*l.Sigma)
	return math.Sqrt(v)
}

func (l LognormalFit) String() string {
	return fmt.Sprintf("lognormal(%.4g, %.4g)", l.Mean(), l.SD())
}

// WeibullFit is a Weibull distribution fitted by MLE.
type WeibullFit struct{ Shape, Scale float64 }

// FitWeibull fits a Weibull distribution by maximum likelihood, solving the
// profile-likelihood shape equation with Newton's method (Law & Kelton
// §6.5). All observations must be positive.
func FitWeibull(xs []float64) (WeibullFit, error) {
	if len(xs) == 0 {
		return WeibullFit{}, ErrEmptySample
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return WeibullFit{}, errors.New("stats: weibull fit needs positive data")
		}
		logs[i] = math.Log(x)
	}
	n := float64(len(xs))
	meanLog := MeanOf(logs)

	// g(k) = sum(x^k ln x)/sum(x^k) - 1/k - meanLog = 0.
	g := func(k float64) (val, deriv float64) {
		var s0, s1, s2 float64
		for i, x := range xs {
			xk := math.Pow(x, k)
			s0 += xk
			s1 += xk * logs[i]
			s2 += xk * logs[i] * logs[i]
		}
		val = s1/s0 - 1/k - meanLog
		deriv = (s2*s0-s1*s1)/(s0*s0) + 1/(k*k)
		return val, deriv
	}

	// Menon's moment-based starting point: shape ~ pi/(sd(ln x)*sqrt(6)).
	sLog := Summarize(logs)
	k := 1.0
	if sLog.SD > 0 {
		k = math.Pi / (sLog.SD * math.Sqrt(6))
	}
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		k = 1
	}
	for i := 0; i < 100; i++ {
		val, deriv := g(k)
		if deriv == 0 {
			break
		}
		next := k - val/deriv
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-10*k {
			k = next
			break
		}
		k = next
	}
	if k <= 0 || math.IsNaN(k) {
		return WeibullFit{}, errors.New("stats: weibull MLE did not converge")
	}
	var sk float64
	for _, x := range xs {
		sk += math.Pow(x, k)
	}
	scale := math.Pow(sk/n, 1/k)
	return WeibullFit{Shape: k, Scale: scale}, nil
}

// Name implements Fitted.
func (w WeibullFit) Name() string { return "weibull" }

// CDF implements Fitted.
func (w WeibullFit) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Scale, w.Shape))
}

// InvCDF implements Fitted.
func (w WeibullFit) InvCDF(p float64) float64 {
	return w.Scale * math.Pow(-math.Log(1-p), 1/w.Shape)
}

// PDF implements Fitted.
func (w WeibullFit) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x / w.Scale
	return (w.Shape / w.Scale) * math.Pow(z, w.Shape-1) * math.Exp(-math.Pow(z, w.Shape))
}

// Mean implements Fitted.
func (w WeibullFit) Mean() float64 {
	lg, _ := math.Lgamma(1 + 1/w.Shape)
	return w.Scale * math.Exp(lg)
}

func (w WeibullFit) String() string {
	return fmt.Sprintf("weibull(shape=%.4g, scale=%.4g)", w.Shape, w.Scale)
}

// FitResult pairs a fitted candidate with its goodness-of-fit measures.
type FitResult struct {
	Dist  Fitted
	KS    float64 // Kolmogorov-Smirnov statistic
	QQvsR float64 // Q-Q correlation coefficient
}

// FitBest fits the exponential, lognormal, and Weibull families (the three
// candidates compared in Figure 8) plus the gamma family (a standard
// fourth candidate for service-time data) and returns the best fit — the
// smallest K-S statistic — along with every candidate considered.
func FitBest(xs []float64) (best FitResult, all []FitResult, err error) {
	if len(xs) == 0 {
		return FitResult{}, nil, ErrEmptySample
	}
	var cands []Fitted
	if e, err := FitExponential(xs); err == nil {
		cands = append(cands, e)
	}
	if l, err := FitLognormal(xs); err == nil {
		cands = append(cands, l)
	}
	if w, err := FitWeibull(xs); err == nil {
		cands = append(cands, w)
	}
	if g, err := FitGamma(xs); err == nil {
		cands = append(cands, g)
	}
	if len(cands) == 0 {
		return FitResult{}, nil, errors.New("stats: no candidate distribution could be fitted")
	}
	for _, c := range cands {
		ks := KSStatistic(xs, c.CDF)
		qq, qerr := QQSeries(xs, c.InvCDF)
		r := 0.0
		if qerr == nil {
			r = QQCorrelation(qq)
		}
		all = append(all, FitResult{Dist: c, KS: ks, QQvsR: r})
	}
	best = all[0]
	for _, f := range all[1:] {
		if f.KS < best.KS {
			best = f
		}
	}
	return best, all, nil
}
