// Package stats provides the statistics toolkit used throughout the study:
// descriptive summaries (Table 1), histogram and Q-Q series (Figure 8),
// maximum-likelihood distribution fitting (Table 2, per Law & Kelton),
// Kolmogorov-Smirnov and chi-square goodness-of-fit tests, and Student-t
// confidence intervals for the 2^k·r factorial simulation experiments
// (90% intervals from r=50 replications, per Jain).
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample, the quantities reported
// in Table 1 of the paper for each process type and resource.
type Summary struct {
	N    int
	Mean float64
	SD   float64 // sample standard deviation (n-1 denominator)
	Min  float64
	Max  float64
	Sum  float64
}

// Summarize computes descriptive statistics with Welford's numerically
// stable one-pass algorithm. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	if len(xs) == 0 {
		return s
	}
	s.N = len(xs)
	s.Min = xs[0]
	s.Max = xs[0]
	mean, m2 := 0.0, 0.0
	for i, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		delta := x - mean
		mean += delta / float64(i+1)
		m2 += delta * (x - mean)
	}
	s.Mean = mean
	if s.N > 1 {
		s.SD = math.Sqrt(m2 / float64(s.N-1))
	}
	return s
}

// Variance returns the sample variance.
func (s Summary) Variance() float64 { return s.SD * s.SD }

// CV returns the coefficient of variation (SD/Mean), or 0 for a zero mean.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.SD / s.Mean
}

// Accumulator computes running statistics without retaining the sample;
// the simulator uses one per metric so that 50-replication experiments do
// not hold all observations in memory.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations recorded.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean.
func (a *Accumulator) Mean() float64 { return a.mean }

// SD returns the running sample standard deviation.
func (a *Accumulator) SD() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Summary converts the accumulator into a Summary value.
func (a *Accumulator) Summary() Summary {
	return Summary{N: a.n, Mean: a.mean, SD: a.SD(), Min: a.min, Max: a.max, Sum: a.mean * float64(a.n)}
}

// ErrEmptySample reports an operation that needs at least one observation.
var ErrEmptySample = errors.New("stats: empty sample")

// Quantile returns the p-th sample quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
// xs need not be sorted; it is not modified.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	if p < 0 || p > 1 {
		return 0, errors.New("stats: quantile p out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1], nil
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the sample median.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// MeanOf returns the arithmetic mean, or 0 for an empty slice.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
