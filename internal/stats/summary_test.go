package stats

import (
	"math"
	"testing"
	"testing/quick"

	"rocc/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean)
	}
	// Sample SD with n-1: variance = 32/7.
	if !almost(s.SD, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("SD = %v", s.SD)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almost(s.Sum, 40, 1e-12) {
		t.Fatalf("Sum = %v", s.Sum)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.SD != 0 {
		t.Fatal("empty summary not zero")
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.SD != 0 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("single summary wrong: %+v", s)
	}
}

func TestSummaryDerived(t *testing.T) {
	s := Summary{Mean: 10, SD: 2}
	if !almost(s.Variance(), 4, 1e-12) {
		t.Fatal("variance")
	}
	if !almost(s.CV(), 0.2, 1e-12) {
		t.Fatal("cv")
	}
	if (Summary{}).CV() != 0 {
		t.Fatal("cv of zero-mean should be 0")
	}
}

func TestAccumulatorMatchesSummarize(t *testing.T) {
	r := rng.New(8)
	xs := make([]float64, 5000)
	var acc Accumulator
	for i := range xs {
		xs[i] = r.Lognormal(2213, 3034)
		acc.Add(xs[i])
	}
	want := Summarize(xs)
	got := acc.Summary()
	if got.N != want.N || !almost(got.Mean, want.Mean, 1e-9) ||
		!almost(got.SD, want.SD, 1e-9) || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("accumulator %+v != summarize %+v", got, want)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.SD() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	acc.Add(5)
	if acc.SD() != 0 {
		t.Fatal("single-observation SD should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.p)
		if err != nil || !almost(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, %v; want %v", c.p, got, err, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("expected error on empty sample")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("expected error on p out of range")
	}
	m, err := Median([]float64{9})
	if err != nil || m != 9 {
		t.Fatal("median of singleton")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

// Property: mean lies within [min, max] and SD >= 0 for any sample.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.SD >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: accumulator and batch summary agree on any sane input.
func TestQuickAccumulatorAgrees(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var acc Accumulator
		for _, v := range xs {
			acc.Add(v)
		}
		want := Summarize(xs)
		tol := 1e-6 * (1 + math.Abs(want.Mean))
		return acc.N() == want.N && almost(acc.Mean(), want.Mean, tol)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
