package stats

import (
	"errors"
	"math"
	"sort"
)

// P2Quantile is the P² (P-squared) streaming quantile estimator of Jain &
// Chlamtac (1985) — fittingly, by the same Jain whose experiment-design
// methodology the paper uses. It estimates a single quantile in O(1)
// space, letting the simulator report monitoring-latency percentiles
// without retaining per-sample observations.
type P2Quantile struct {
	p float64
	// marker heights, positions, and desired positions
	q  [5]float64
	n  [5]float64
	np [5]float64
	dn [5]float64

	count int
	init  []float64
}

// NewP2Quantile creates an estimator for the p-quantile (0 < p < 1).
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, errors.New("stats: P2 quantile p must be in (0,1)")
	}
	e := &P2Quantile{p: p}
	e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e, nil
}

// Add feeds one observation.
func (e *P2Quantile) Add(x float64) {
	if e.count < 5 {
		e.init = append(e.init, x)
		e.count++
		if e.count == 5 {
			sort.Float64s(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.n[i] = float64(i + 1)
			}
			e.np = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
			e.init = nil
		}
		return
	}
	e.count++

	// Find the cell containing x and update extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < e.q[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}

	// Adjust interior markers with the parabolic (or linear) formula.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			sign := math.Copysign(1, d)
			qNew := e.parabolic(i, sign)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.n[i] += sign
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	return e.q[i] + d*(e.q[i+int(d)]-e.q[i])/(e.n[i+int(d)]-e.n[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it returns the sample quantile of what has been seen (0
// for an empty stream).
func (e *P2Quantile) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		sorted := append([]float64(nil), e.init...)
		sort.Float64s(sorted)
		v, _ := Quantile(sorted, e.p)
		return v
	}
	return e.q[2]
}

// N returns the number of observations seen.
func (e *P2Quantile) N() int { return e.count }
