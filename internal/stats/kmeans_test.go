package stats

import (
	"math"
	"testing"

	"rocc/internal/rng"
)

func TestKMeans1DSeparatesModes(t *testing.T) {
	// Two tight modes at 10 and 100.
	r := rng.New(91)
	xs := make([]float64, 2000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = r.Normal(10, 1)
		} else {
			xs[i] = r.Normal(100, 2)
		}
	}
	clusters, err := KMeans1D(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("%d clusters", len(clusters))
	}
	if math.Abs(clusters[0].Center-10) > 1 || math.Abs(clusters[1].Center-100) > 2 {
		t.Fatalf("centers %v, %v", clusters[0].Center, clusters[1].Center)
	}
	if clusters[0].Count+clusters[1].Count != len(xs) {
		t.Fatal("members lost")
	}
	if clusters[0].Count < 900 || clusters[1].Count < 900 {
		t.Fatalf("unbalanced: %d/%d", clusters[0].Count, clusters[1].Count)
	}
	if clusters[0].High >= clusters[1].Low {
		t.Fatal("cluster ranges overlap for well-separated modes")
	}
}

func TestKMeans1DMoreClustersReduceSS(t *testing.T) {
	r := rng.New(92)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = r.Lognormal(2213, 3034)
	}
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		clusters, err := KMeans1D(xs, k)
		if err != nil {
			t.Fatal(err)
		}
		ss := WithinClusterSS(xs, clusters)
		if ss > prev+1e-6 {
			t.Fatalf("k=%d: SS %v exceeds previous %v", k, ss, prev)
		}
		prev = ss
	}
}

func TestKMeans1DEdgeCases(t *testing.T) {
	if _, err := KMeans1D(nil, 2); err == nil {
		t.Fatal("empty sample")
	}
	if _, err := KMeans1D([]float64{1}, 0); err == nil {
		t.Fatal("k=0")
	}
	// k greater than n clamps.
	clusters, err := KMeans1D([]float64{5, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) > 2 {
		t.Fatalf("%d clusters for 2 points", len(clusters))
	}
	// k=1 gives the mean.
	clusters, err = KMeans1D([]float64{2, 4, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || math.Abs(clusters[0].Center-4) > 1e-12 {
		t.Fatalf("%+v", clusters)
	}
	// Constant data.
	clusters, err = KMeans1D([]float64{3, 3, 3, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range clusters {
		total += c.Count
		if c.Center != 3 {
			t.Fatalf("constant center %v", c.Center)
		}
	}
	if total != 4 {
		t.Fatal("members lost on constant data")
	}
}

func TestMixtureDist(t *testing.T) {
	m := rng.Mixture{
		Components: []rng.Dist{rng.Constant{Value: 10}, rng.Constant{Value: 100}},
		Weights:    []float64{3, 1},
	}
	if math.Abs(m.Mean()-32.5) > 1e-12 { // (3*10 + 1*100)/4
		t.Fatalf("mixture mean %v", m.Mean())
	}
	r := rng.New(93)
	counts := map[float64]int{}
	for i := 0; i < 40000; i++ {
		counts[m.Sample(r)]++
	}
	frac := float64(counts[10]) / 40000
	if math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("component weighting off: %v", frac)
	}
	// Degenerate mixtures.
	if (rng.Mixture{}).Mean() != 0 || (rng.Mixture{}).Sample(r) != 0 {
		t.Fatal("empty mixture")
	}
	zero := rng.Mixture{Components: []rng.Dist{rng.Constant{Value: 5}}, Weights: []float64{0}}
	if zero.Sample(r) != 5 {
		t.Fatal("zero-weight mixture should fall back to uniform choice")
	}
	if zero.Mean() != 0 {
		t.Fatal("zero-total weights mean convention")
	}
	if m.String() == "" {
		t.Fatal("string")
	}
}
