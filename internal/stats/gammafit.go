package stats

import (
	"errors"
	"fmt"
	"math"
)

// GammaFit is a gamma distribution fitted by maximum likelihood.
type GammaFit struct{ Shape, Scale float64 }

// FitGamma fits a gamma distribution by MLE: the shape solves
// ln(k) - psi(k) = ln(mean) - mean(ln x) via Newton iterations started at
// Minka's closed-form approximation; the scale is mean/shape.
func FitGamma(xs []float64) (GammaFit, error) {
	if len(xs) == 0 {
		return GammaFit{}, ErrEmptySample
	}
	var sum, sumLog float64
	for _, x := range xs {
		if x <= 0 {
			return GammaFit{}, errors.New("stats: gamma fit needs positive data")
		}
		sum += x
		sumLog += math.Log(x)
	}
	n := float64(len(xs))
	mean := sum / n
	s := math.Log(mean) - sumLog/n // always >= 0 by Jensen
	if s <= 1e-12 {
		// Nearly degenerate sample: huge shape, tiny CV.
		return GammaFit{Shape: 1e6, Scale: mean / 1e6}, nil
	}
	// Minka's initial estimate.
	k := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	if k <= 0 || math.IsNaN(k) {
		k = 1
	}
	for i := 0; i < 100; i++ {
		f := math.Log(k) - digamma(k) - s
		fp := 1/k - trigamma(k)
		if fp == 0 {
			break
		}
		next := k - f/fp
		if next <= 0 {
			next = k / 2
		}
		if math.Abs(next-k) < 1e-12*k {
			k = next
			break
		}
		k = next
	}
	if k <= 0 || math.IsNaN(k) {
		return GammaFit{}, errors.New("stats: gamma MLE did not converge")
	}
	return GammaFit{Shape: k, Scale: mean / k}, nil
}

// Name implements Fitted.
func (g GammaFit) Name() string { return "gamma" }

// CDF implements Fitted via the regularized lower incomplete gamma.
func (g GammaFit) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(g.Shape, x/g.Scale)
}

// InvCDF implements Fitted by bisection on the CDF (monotone), refined to
// ~1e-10 relative accuracy — ample for Q-Q plots and chi-square cells.
func (g GammaFit) InvCDF(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Bracket: mean * 2^k.
	lo, hi := 0.0, g.Shape*g.Scale
	for g.CDF(hi) < p {
		hi *= 2
		if math.IsInf(hi, 1) {
			return hi
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*hi {
			break
		}
	}
	return (lo + hi) / 2
}

// PDF implements Fitted.
func (g GammaFit) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(g.Shape)
	logPDF := (g.Shape-1)*math.Log(x) - x/g.Scale - g.Shape*math.Log(g.Scale) - lg
	return math.Exp(logPDF)
}

// Mean implements Fitted.
func (g GammaFit) Mean() float64 { return g.Shape * g.Scale }

func (g GammaFit) String() string {
	return fmt.Sprintf("gamma(shape=%.4g, scale=%.4g)", g.Shape, g.Scale)
}

// digamma computes psi(x) via the recurrence to x >= 6 plus the
// asymptotic series.
func digamma(x float64) float64 {
	result := 0.0
	for x < 10 {
		result -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - inv/2 -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2/240)))
	return result
}

// trigamma computes psi'(x) the same way.
func trigamma(x float64) float64 {
	result := 0.0
	for x < 10 {
		result += 1 / (x * x)
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += inv * (1 + inv/2 + inv2*(1.0/6-inv2*(1.0/30-inv2/42)))
	return result
}

// regIncGammaLower computes P(a, x), the regularized lower incomplete
// gamma function, via the series (x < a+1) or continued fraction
// (x >= a+1) — Numerical Recipes' gammp.
func regIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a, x).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}
