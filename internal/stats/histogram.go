package stats

import (
	"errors"
	"math"
	"sort"
)

// Histogram is a fixed-width-bin frequency histogram over [Low, High), the
// form plotted on the left of Figure 8.
type Histogram struct {
	Low, High float64
	Width     float64
	Counts    []int
	Total     int // all observations, including any outside [Low, High)
	Under     int // observations below Low
	Over      int // observations at or above High
}

// NewHistogram bins xs into nbins equal-width bins spanning [low, high).
func NewHistogram(xs []float64, low, high float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(high > low) {
		return nil, errors.New("stats: histogram needs high > low")
	}
	h := &Histogram{
		Low:    low,
		High:   high,
		Width:  (high - low) / float64(nbins),
		Counts: make([]int, nbins),
	}
	for _, x := range xs {
		h.Total++
		switch {
		case x < low:
			h.Under++
		case x >= high:
			h.Over++
		default:
			i := int((x - low) / h.Width)
			if i >= nbins { // guard float rounding at the upper edge
				i = nbins - 1
			}
			h.Counts[i]++
		}
	}
	return h, nil
}

// AutoHistogram bins xs with Sturges' rule over the observed range.
func AutoHistogram(xs []float64) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	s := Summarize(xs)
	nbins := int(math.Ceil(math.Log2(float64(len(xs))))) + 1
	if nbins < 1 {
		nbins = 1
	}
	high := s.Max
	if high == s.Min {
		high = s.Min + 1
	}
	// Nudge the top edge so the maximum lands inside the last bin.
	high += (high - s.Min) * 1e-9
	return NewHistogram(xs, s.Min, high, nbins)
}

// BinCenters returns the midpoints of the bins, for plotting.
func (h *Histogram) BinCenters() []float64 {
	cs := make([]float64, len(h.Counts))
	for i := range cs {
		cs[i] = h.Low + (float64(i)+0.5)*h.Width
	}
	return cs
}

// RelativeFrequencies returns counts normalized so the histogram integrates
// to one (a density estimate), matching the "relative frequency" axes of
// Figure 8.
func (h *Histogram) RelativeFrequencies() []float64 {
	fs := make([]float64, len(h.Counts))
	if h.Total == 0 || h.Width == 0 {
		return fs
	}
	norm := 1 / (float64(h.Total) * h.Width)
	for i, c := range h.Counts {
		fs[i] = float64(c) * norm
	}
	return fs
}

// ECDF returns the empirical cumulative distribution function of xs as a
// function usable for plotting and goodness-of-fit testing.
func ECDF(xs []float64) (func(float64) float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	return func(x float64) float64 {
		// Number of observations <= x.
		i := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
		return float64(i) / n
	}, nil
}

// QQPoint is one point of a quantile-quantile plot.
type QQPoint struct {
	Theoretical float64 // quantile of the fitted distribution
	Observed    float64 // order statistic of the sample
}

// QQSeries returns the Q-Q plot of xs against a theoretical distribution
// given by its inverse CDF, the right-hand plots of Figure 8. The i-th
// order statistic is paired with the ((i-0.5)/n)-quantile.
func QQSeries(xs []float64, invCDF func(p float64) float64) ([]QQPoint, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := len(sorted)
	pts := make([]QQPoint, n)
	for i, obs := range sorted {
		p := (float64(i) + 0.5) / float64(n)
		pts[i] = QQPoint{Theoretical: invCDF(p), Observed: obs}
	}
	return pts, nil
}

// QQCorrelation returns the Pearson correlation between the theoretical and
// observed coordinates of a Q-Q series — a scalar measure of linearity used
// to rank candidate distributions (1.0 is a perfect fit).
func QQCorrelation(pts []QQPoint) float64 {
	if len(pts) < 2 {
		return 0
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.Theoretical
		sy += p.Observed
	}
	mx, my := sx/float64(len(pts)), sy/float64(len(pts))
	var sxy, sxx, syy float64
	for _, p := range pts {
		dx, dy := p.Theoretical-mx, p.Observed-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
