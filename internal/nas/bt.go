package nas

import (
	"fmt"
	"math"

	"rocc/internal/rng"
)

// blockSize is the NAS BT block dimension: the systems are block
// tridiagonal with 5x5 blocks.
const blockSize = 5

// block is a dense 5x5 matrix.
type block [blockSize][blockSize]float64

// vec5 is a length-5 vector.
type vec5 [blockSize]float64

// BT is a simplified pvmbt: each Step assembles and solves three sets of
// uncoupled block-tridiagonal systems — first in the x, then the y, then
// the z direction (the structure described in §5.2 of the paper) — over an
// n x n x n grid of 5-vectors.
type BT struct {
	n    int
	grid [][][]vec5 // solution state, updated every sweep
	r    *rng.Stream
	ops  int64

	// lastResidual records the verification residual of the most recent
	// line solve, updated during Step.
	lastResidual float64
}

// NewBT creates a BT kernel on an n^3 grid (n >= 2).
func NewBT(n int, seed uint64) (*BT, error) {
	if n < 2 {
		return nil, fmt.Errorf("nas: BT grid size %d too small", n)
	}
	b := &BT{n: n, r: rng.New(seed)}
	b.grid = make([][][]vec5, n)
	for i := range b.grid {
		b.grid[i] = make([][]vec5, n)
		for j := range b.grid[i] {
			b.grid[i][j] = make([]vec5, n)
			for k := range b.grid[i][j] {
				for c := 0; c < blockSize; c++ {
					b.grid[i][j][k][c] = b.r.Uniform(0, 1)
				}
			}
		}
	}
	return b, nil
}

// Name implements Kernel.
func (b *BT) Name() string { return "bt" }

// Ops implements Kernel.
func (b *BT) Ops() int64 { return b.ops }

// Step performs one ADI-style sweep: for every line of the grid in each of
// the three directions, assemble a diagonally dominant block-tridiagonal
// system whose right-hand side is the current line state, solve it with
// the Thomas algorithm on 5x5 blocks, and write the solution back.
func (b *BT) Step() {
	n := b.n
	line := make([]vec5, n)
	for dir := 0; dir < 3; dir++ {
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				// Gather the line.
				for s := 0; s < n; s++ {
					line[s] = b.at(dir, p, q, s)
				}
				sol := b.solveLine(line)
				for s := 0; s < n; s++ {
					b.set(dir, p, q, s, sol[s])
				}
			}
		}
	}
}

// at reads grid cell (p, q, s) where s runs along direction dir.
func (b *BT) at(dir, p, q, s int) vec5 {
	switch dir {
	case 0:
		return b.grid[s][p][q]
	case 1:
		return b.grid[p][s][q]
	default:
		return b.grid[p][q][s]
	}
}

func (b *BT) set(dir, p, q, s int, v vec5) {
	switch dir {
	case 0:
		b.grid[s][p][q] = v
	case 1:
		b.grid[p][s][q] = v
	default:
		b.grid[p][q][s] = v
	}
}

// systemCoeffs builds the constant diagonally dominant block stencil
// (sub, diag, super) used for every line solve.
func systemCoeffs() (sub, diag, super block) {
	for i := 0; i < blockSize; i++ {
		for j := 0; j < blockSize; j++ {
			sub[i][j] = -0.1 / float64(1+abs(i-j))
			super[i][j] = -0.15 / float64(1+abs(i-j))
			diag[i][j] = 0.05 / float64(1+abs(i-j))
		}
		diag[i][i] = 4 // dominance keeps the Thomas algorithm stable
	}
	return sub, diag, super
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// solveLine solves the block-tridiagonal system A x = rhs with the block
// Thomas algorithm (forward elimination, back substitution) and records
// the residual for Verify.
func (b *BT) solveLine(rhs []vec5) []vec5 {
	n := len(rhs)
	sub, diag, super := systemCoeffs()

	cPrime := make([]block, n)
	dPrime := make([]vec5, n)

	den := diag
	denInv, ok := invert(den)
	if !ok {
		panic("nas: singular diagonal block")
	}
	cPrime[0] = mul(denInv, super)
	dPrime[0] = mulVec(denInv, rhs[0])
	for i := 1; i < n; i++ {
		den = subBlock(diag, mul(sub, cPrime[i-1]))
		denInv, ok = invert(den)
		if !ok {
			panic("nas: singular elimination block")
		}
		if i < n-1 {
			cPrime[i] = mul(denInv, super)
		}
		dPrime[i] = mulVec(denInv, subVec(rhs[i], mulVec(sub, dPrime[i-1])))
	}
	x := make([]vec5, n)
	x[n-1] = dPrime[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = subVec(dPrime[i], mulVec(cPrime[i], x[i+1]))
	}
	b.ops += int64(n * blockSize * blockSize * blockSize)

	// Residual check of the first equation: diag*x0 + super*x1 = rhs0.
	res := subVec(rhs[0], addVec(mulVec(diag, x[0]), mulVec(super, x[1])))
	b.lastResidual = norm(res)
	return x
}

// Verify implements Kernel: the most recent line solve must satisfy its
// first block equation to near machine precision, and the grid must be
// finite.
func (b *BT) Verify() error {
	if b.lastResidual > 1e-8 {
		return fmt.Errorf("nas: BT residual %g exceeds tolerance", b.lastResidual)
	}
	for i := range b.grid {
		for j := range b.grid[i] {
			for k := range b.grid[i][j] {
				for c := 0; c < blockSize; c++ {
					if v := b.grid[i][j][k][c]; math.IsNaN(v) || math.IsInf(v, 0) {
						return fmt.Errorf("nas: BT grid cell (%d,%d,%d,%d) is %v", i, j, k, c, v)
					}
				}
			}
		}
	}
	return nil
}

// --- 5x5 block arithmetic ---

func mul(a, b block) block {
	var out block
	for i := 0; i < blockSize; i++ {
		for k := 0; k < blockSize; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			for j := 0; j < blockSize; j++ {
				out[i][j] += aik * b[k][j]
			}
		}
	}
	return out
}

func mulVec(a block, v vec5) vec5 {
	var out vec5
	for i := 0; i < blockSize; i++ {
		for j := 0; j < blockSize; j++ {
			out[i] += a[i][j] * v[j]
		}
	}
	return out
}

func subBlock(a, b block) block {
	var out block
	for i := range out {
		for j := range out[i] {
			out[i][j] = a[i][j] - b[i][j]
		}
	}
	return out
}

func subVec(a, b vec5) vec5 {
	var out vec5
	for i := range out {
		out[i] = a[i] - b[i]
	}
	return out
}

func addVec(a, b vec5) vec5 {
	var out vec5
	for i := range out {
		out[i] = a[i] + b[i]
	}
	return out
}

func norm(v vec5) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// invert computes the inverse of a 5x5 block by Gauss-Jordan elimination
// with partial pivoting; ok is false for a singular block.
func invert(a block) (block, bool) {
	var aug [blockSize][2 * blockSize]float64
	for i := 0; i < blockSize; i++ {
		for j := 0; j < blockSize; j++ {
			aug[i][j] = a[i][j]
		}
		aug[i][blockSize+i] = 1
	}
	for col := 0; col < blockSize; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < blockSize; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-14 {
			return block{}, false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := 1 / aug[col][col]
		for j := 0; j < 2*blockSize; j++ {
			aug[col][j] *= inv
		}
		for r := 0; r < blockSize; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*blockSize; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	var out block
	for i := 0; i < blockSize; i++ {
		for j := 0; j < blockSize; j++ {
			out[i][j] = aug[i][blockSize+j]
		}
	}
	return out, true
}
