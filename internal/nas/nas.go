// Package nas provides working, small-scale Go implementations of the two
// NAS Parallel Benchmark kernels the paper's measurement experiments use:
// BT (pvmbt), which solves block-tridiagonal systems with 5x5 blocks in
// the x, y, and z directions, and IS (pvmis), an integer-sort kernel.
//
// Substitution note (see DESIGN.md): the paper ran the PVM Fortran codes
// on an IBM SP-2. These kernels perform the same class of real computation
// (dense 5x5 block LU solves and key ranking) so the measurement testbed
// in internal/testbed instruments genuine work rather than sleeps; they
// are not tuned reproductions of the NPB reference outputs.
package nas

// Kernel is a unit of real application work the testbed can instrument.
type Kernel interface {
	// Name returns the benchmark name ("bt" or "is").
	Name() string
	// Step performs one iteration of work.
	Step()
	// Verify checks internal consistency after any number of steps.
	Verify() error
	// Ops returns an operation count since creation, for throughput
	// normalization.
	Ops() int64
}
