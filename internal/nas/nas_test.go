package nas

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTSolvesAndVerifies(t *testing.T) {
	b, err := NewBT(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b.Step()
		if err := b.Verify(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if b.Ops() == 0 {
		t.Fatal("no operations counted")
	}
	if b.Name() != "bt" {
		t.Fatal("name")
	}
}

func TestBTLineSolveExact(t *testing.T) {
	// Construct rhs = A*x for a known x, solve, and compare.
	b, err := NewBT(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := 4
	sub, diag, super := systemCoeffs()
	want := make([]vec5, n)
	for i := range want {
		for c := 0; c < blockSize; c++ {
			want[i][c] = float64(i*blockSize+c) / 7
		}
	}
	rhs := make([]vec5, n)
	for i := 0; i < n; i++ {
		v := mulVec(diag, want[i])
		if i > 0 {
			v = addVec(v, mulVec(sub, want[i-1]))
		}
		if i < n-1 {
			v = addVec(v, mulVec(super, want[i+1]))
		}
		rhs[i] = v
	}
	got := b.solveLine(rhs)
	for i := range want {
		for c := 0; c < blockSize; c++ {
			if math.Abs(got[i][c]-want[i][c]) > 1e-10 {
				t.Fatalf("x[%d][%d] = %v, want %v", i, c, got[i][c], want[i][c])
			}
		}
	}
}

func TestBTTooSmall(t *testing.T) {
	if _, err := NewBT(1, 1); err == nil {
		t.Fatal("n=1 should fail")
	}
}

func TestInvert(t *testing.T) {
	// Invert the stencil diagonal block and check A * A^-1 = I.
	_, diag, _ := systemCoeffs()
	inv, ok := invert(diag)
	if !ok {
		t.Fatal("diagonal block should be invertible")
	}
	prod := mul(diag, inv)
	for i := 0; i < blockSize; i++ {
		for j := 0; j < blockSize; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod[i][j]-want) > 1e-12 {
				t.Fatalf("A*A^-1 [%d][%d] = %v", i, j, prod[i][j])
			}
		}
	}
	// Singular matrix.
	var sing block
	if _, ok := invert(sing); ok {
		t.Fatal("zero matrix should be singular")
	}
}

func TestInvertWithPivoting(t *testing.T) {
	// A matrix needing row swaps: zero on the leading diagonal.
	var a block
	for i := 0; i < blockSize; i++ {
		a[i][(i+1)%blockSize] = 1 // permutation matrix
	}
	inv, ok := invert(a)
	if !ok {
		t.Fatal("permutation matrix is invertible")
	}
	prod := mul(a, inv)
	for i := 0; i < blockSize; i++ {
		if math.Abs(prod[i][i]-1) > 1e-12 {
			t.Fatalf("pivot inversion failed: %v", prod)
		}
	}
}

func TestISRanksCorrectly(t *testing.T) {
	s, err := NewIS(1024, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Full check against a reference sort: sorting keys by rank must give
	// a non-decreasing sequence.
	keys, ranks := s.Keys(), s.Ranks()
	byRank := make([]int, len(keys))
	for i, rk := range ranks {
		byRank[rk] = keys[i]
	}
	if !sort.IntsAreSorted(byRank) {
		t.Fatal("ranking does not sort the keys")
	}
	if s.Name() != "is" || s.Ops() == 0 {
		t.Fatal("metadata")
	}
}

func TestISRepeatedSteps(t *testing.T) {
	s, err := NewIS(256, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Step()
		if err := s.Verify(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// Verify twice: cached result.
		if err := s.Verify(); err != nil {
			t.Fatal("cached verify differs")
		}
	}
}

func TestISErrors(t *testing.T) {
	if _, err := NewIS(1, 10, 1); err == nil {
		t.Fatal("n too small")
	}
	if _, err := NewIS(10, 1, 1); err == nil {
		t.Fatal("maxKey too small")
	}
}

// Property: IS ranking is always a valid permutation for any size/seed.
func TestQuickISPermutation(t *testing.T) {
	f := func(seed uint64, n16 uint16, mk8 uint8) bool {
		n := int(n16)%500 + 2
		mk := int(mk8)%100 + 2
		s, err := NewIS(n, mk, seed)
		if err != nil {
			return false
		}
		s.Step()
		return s.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: BT sweeps keep the grid finite and verifiable for random
// seeds and sizes.
func TestQuickBTStable(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8)%4 + 2
		b, err := NewBT(n, seed)
		if err != nil {
			return false
		}
		b.Step()
		b.Step()
		return b.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBTStep(b *testing.B) {
	bt, err := NewBT(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Step()
	}
}

func BenchmarkISStep(b *testing.B) {
	is, err := NewIS(1<<14, 1<<10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		is.Step()
	}
}
