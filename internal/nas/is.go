package nas

import (
	"fmt"

	"rocc/internal/rng"
)

// IS is a simplified pvmis: each Step generates a fresh batch of integer
// keys with the NAS IS near-Gaussian key distribution (the average of four
// uniforms), computes every key's rank by counting sort, and partially
// verifies the ranking.
type IS struct {
	n      int
	maxKey int
	r      *rng.Stream
	keys   []int
	ranks  []int
	counts []int
	ops    int64

	verified bool
	lastErr  error
}

// NewIS creates an IS kernel ranking n keys in [0, maxKey).
func NewIS(n, maxKey int, seed uint64) (*IS, error) {
	if n < 2 {
		return nil, fmt.Errorf("nas: IS needs n >= 2, got %d", n)
	}
	if maxKey < 2 {
		return nil, fmt.Errorf("nas: IS needs maxKey >= 2, got %d", maxKey)
	}
	return &IS{
		n:      n,
		maxKey: maxKey,
		r:      rng.New(seed),
		keys:   make([]int, n),
		ranks:  make([]int, n),
		counts: make([]int, maxKey),
	}, nil
}

// Name implements Kernel.
func (s *IS) Name() string { return "is" }

// Ops implements Kernel.
func (s *IS) Ops() int64 { return s.ops }

// Step implements Kernel.
func (s *IS) Step() {
	// Key generation: average of four uniforms, as in NAS IS.
	for i := range s.keys {
		k := (s.r.Intn(s.maxKey) + s.r.Intn(s.maxKey) + s.r.Intn(s.maxKey) + s.r.Intn(s.maxKey)) / 4
		s.keys[i] = k
	}
	// Counting sort ranking.
	for i := range s.counts {
		s.counts[i] = 0
	}
	for _, k := range s.keys {
		s.counts[k]++
	}
	// Prefix sum: counts[k] = number of keys < k.
	prev := 0
	for k := 0; k < s.maxKey; k++ {
		c := s.counts[k]
		s.counts[k] = prev
		prev += c
	}
	for i, k := range s.keys {
		s.ranks[i] = s.counts[k]
		s.counts[k]++
	}
	s.ops += int64(s.n + s.maxKey)
	s.verified = false
	s.lastErr = nil
}

// Verify implements Kernel: ranks must be a permutation of 0..n-1 and
// consistent with key ordering.
func (s *IS) Verify() error {
	if s.verified {
		return s.lastErr
	}
	s.verified = true
	seen := make([]bool, s.n)
	for i, rk := range s.ranks {
		if rk < 0 || rk >= s.n || seen[rk] {
			s.lastErr = fmt.Errorf("nas: IS rank %d of key %d invalid or duplicated", rk, i)
			return s.lastErr
		}
		seen[rk] = true
	}
	// Spot-check ordering: key with smaller value must have smaller rank.
	stride := s.n / 16
	if stride < 1 {
		stride = 1
	}
	for i := 1; i < s.n; i += stride {
		a, b := s.keys[i-1], s.keys[i]
		ra, rb := s.ranks[i-1], s.ranks[i]
		if a < b && ra > rb {
			s.lastErr = fmt.Errorf("nas: IS rank order violated: key %d<%d but rank %d>%d", a, b, ra, rb)
			return s.lastErr
		}
		if a > b && ra < rb {
			s.lastErr = fmt.Errorf("nas: IS rank order violated: key %d>%d but rank %d<%d", a, b, ra, rb)
			return s.lastErr
		}
	}
	return nil
}

// Ranks exposes the most recent ranking (for tests).
func (s *IS) Ranks() []int { return s.ranks }

// Keys exposes the most recent key batch (for tests).
func (s *IS) Keys() []int { return s.keys }
