package doe

import (
	"errors"
	"math"

	"rocc/internal/stats"
)

// EffectCI is a confidence interval for one effect estimate of a
// replicated 2^k·r design (Jain §18.5): the standard deviation of effects
// is s_e / sqrt(2^k · r) with s_e^2 = SSE / (2^k · (r-1)).
type EffectCI struct {
	Term      string
	Estimate  float64
	HalfWidth float64
	Level     float64
	// Significant reports whether the interval excludes zero — whether
	// the effect is statistically distinguishable from experimental error.
	Significant bool
}

// EffectCIs returns confidence intervals for every non-mean effect at the
// given two-sided level. The design must have r >= 2 replications,
// otherwise experimental error cannot be estimated.
func (a Analysis) EffectCIs(level float64) ([]EffectCI, error) {
	if a.Replications < 2 {
		return nil, errors.New("doe: effect CIs need r >= 2 replications")
	}
	if level <= 0 || level >= 1 {
		return nil, errors.New("doe: confidence level must be in (0,1)")
	}
	runs := 1 << len(a.FactorNames)
	df := runs * (a.Replications - 1)
	se2 := a.SSE / float64(df)
	seEffect := math.Sqrt(se2 / float64(runs*a.Replications))
	t := stats.TInvCDF(0.5+level/2, df)
	out := make([]EffectCI, 0, len(a.Effects))
	for _, e := range a.Effects {
		hw := t * seEffect
		out = append(out, EffectCI{
			Term:        e.Term,
			Estimate:    e.Estimate,
			HalfWidth:   hw,
			Level:       level,
			Significant: math.Abs(e.Estimate) > hw,
		})
	}
	return out, nil
}

// SignificantEffects returns the terms whose effects are distinguishable
// from experimental error at the given level, largest first (inherits the
// Fraction ordering of Effects).
func (a Analysis) SignificantEffects(level float64) ([]EffectCI, error) {
	cis, err := a.EffectCIs(level)
	if err != nil {
		return nil, err
	}
	var out []EffectCI
	for _, ci := range cis {
		if ci.Significant {
			out = append(out, ci)
		}
	}
	return out, nil
}
